//===- AwfyMicro.cpp - AWFY micro benchmarks in MiniJava --------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// MiniJava ports of the nine "Are We Fast Yet?" micro benchmarks
// (Marr et al., DLS'16). Problem sizes are scaled down so a simulated
// cold-start run stays in the low millions of interpreted instructions;
// the algorithms and object/array behaviour match the originals.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/WorkloadSources.h"

using namespace nimg;

std::string workloads::bounceSource() {
  return R"MJ(
class Ball {
  int x; int y; int xVel; int yVel;
  Ball(SomRandom random) {
    x = random.next() % 500;
    y = random.next() % 500;
    xVel = (random.next() % 300) - 150;
    yVel = (random.next() % 300) - 150;
  }
  boolean bounce() {
    int xLimit = 500;
    int yLimit = 500;
    boolean bounced = false;
    x = x + xVel;
    y = y + yVel;
    if (x > xLimit) { x = xLimit; xVel = 0 - SomUtil.abs(xVel); bounced = true; }
    if (x < 0) { x = 0; xVel = SomUtil.abs(xVel); bounced = true; }
    if (y > yLimit) { y = yLimit; yVel = 0 - SomUtil.abs(yVel); bounced = true; }
    if (y < 0) { y = 0; yVel = SomUtil.abs(yVel); bounced = true; }
    return bounced;
  }
}
class Bounce {
  static int benchmark() {
    SomRandom random = new SomRandom();
    int ballCount = 100;
    int bounces = 0;
    Ball[] balls = new Ball[ballCount];
    for (int i = 0; i < ballCount; i = i + 1) { balls[i] = new Ball(random); }
    for (int i = 0; i < 50; i = i + 1) {
      for (int b = 0; b < ballCount; b = b + 1) {
        if (balls[b].bounce()) { bounces = bounces + 1; }
      }
    }
    return bounces;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Bounce.benchmark();
    Sys.print("Bounce: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::listSource() {
  return R"MJ(
class ListElement {
  int val;
  ListElement next;
  ListElement(int v) { val = v; next = null; }
  int length() {
    if (next == null) { return 1; }
    return 1 + next.length();
  }
}
class ListBench {
  static ListElement makeList(int length) {
    if (length == 0) { return null; }
    ListElement e = new ListElement(length);
    e.next = makeList(length - 1);
    return e;
  }
  static boolean isShorterThan(ListElement x, ListElement y) {
    ListElement xTail = x;
    ListElement yTail = y;
    while (yTail != null) {
      if (xTail == null) { return true; }
      xTail = xTail.next;
      yTail = yTail.next;
    }
    return false;
  }
  static ListElement tail(ListElement x, ListElement y, ListElement z) {
    if (isShorterThan(y, x)) {
      return tail(tail(x.next, y, z), tail(y.next, z, x), tail(z.next, x, y));
    }
    return z;
  }
  static int benchmark() {
    ListElement result = tail(makeList(15), makeList(10), makeList(6));
    return result.length();
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = ListBench.benchmark();
    Sys.print("List: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::mandelbrotSource() {
  return R"MJ(
class Mandelbrot {
  static int benchmark(int size) {
    int sum = 0;
    int byteAcc = 0;
    int bitNum = 0;
    int y = 0;
    while (y < size) {
      double ci = (2.0 * y / size) - 1.0;
      int x = 0;
      while (x < size) {
        double zr = 0.0; double zrzr = 0.0;
        double zi = 0.0; double zizi = 0.0;
        double cr = (2.0 * x / size) - 1.5;
        int z = 0;
        boolean notDone = true;
        int escape = 0;
        while (notDone && z < 50) {
          zr = zrzr - zizi + cr;
          zi = 2.0 * zr * zi + ci;
          zrzr = zr * zr;
          zizi = zi * zi;
          if (zrzr + zizi > 4.0) { notDone = false; escape = 1; }
          z = z + 1;
        }
        byteAcc = (byteAcc << 1) + escape;
        bitNum = bitNum + 1;
        if (bitNum == 8) {
          sum = sum ^ byteAcc;
          byteAcc = 0;
          bitNum = 0;
        } else if (x == size - 1) {
          byteAcc = byteAcc << (8 - bitNum);
          sum = sum ^ byteAcc;
          byteAcc = 0;
          bitNum = 0;
        }
        x = x + 1;
      }
      y = y + 1;
    }
    return sum;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Mandelbrot.benchmark(64);
    Sys.print("Mandelbrot: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::nbodySource() {
  return R"MJ(
class Body {
  double x; double y; double z;
  double vx; double vy; double vz;
  double mass;
  Body(double x, double y, double z, double vx, double vy, double vz,
       double mass) {
    this.x = x; this.y = y; this.z = z;
    double dpy = 365.24;
    this.vx = vx * dpy; this.vy = vy * dpy; this.vz = vz * dpy;
    this.mass = mass * 39.47841760435743;
  }
  void offsetMomentum(double px, double py, double pz) {
    double sm = 39.47841760435743;
    vx = 0.0 - (px / sm);
    vy = 0.0 - (py / sm);
    vz = 0.0 - (pz / sm);
  }
}
class NBodySystem {
  Body[] bodies;
  NBodySystem() {
    bodies = createBodies();
    double px = 0.0; double py = 0.0; double pz = 0.0;
    for (int i = 0; i < bodies.length; i = i + 1) {
      px = px + bodies[i].vx * bodies[i].mass;
      py = py + bodies[i].vy * bodies[i].mass;
      pz = pz + bodies[i].vz * bodies[i].mass;
    }
    bodies[0].offsetMomentum(px, py, pz);
  }
  Body[] createBodies() {
    Body[] bs = new Body[5];
    bs[0] = new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
    bs[1] = new Body(4.841431442464721, -1.1603200440274284,
                     -0.10362204447112311, 0.001660076642744037,
                     0.007699011184197404, -0.0000690892245246,
                     0.0009547919384243266);
    bs[2] = new Body(8.34336671824458, 4.124798564124305,
                     -0.4035234171143214, -0.002767425107268624,
                     0.004998528012349172, 0.0000230417297573763,
                     0.0002858859806661308);
    bs[3] = new Body(12.894369562139131, -15.111115081092523,
                     -0.22330757889265573, 0.002964601375647616,
                     0.0023784717395948095, -0.0000296589568540237,
                     0.0000436624404335156);
    bs[4] = new Body(15.379697114850917, -25.919314609987964,
                     0.17925877295037118, 0.002680677724903893,
                     0.001628241700382423, -0.0000951592254519715,
                     0.0000515138902046611);
    return bs;
  }
  void advance(double dt) {
    for (int i = 0; i < bodies.length; i = i + 1) {
      Body iBody = bodies[i];
      for (int j = i + 1; j < bodies.length; j = j + 1) {
        Body jBody = bodies[j];
        double dx = iBody.x - jBody.x;
        double dy = iBody.y - jBody.y;
        double dz = iBody.z - jBody.z;
        double dSquared = dx * dx + dy * dy + dz * dz;
        double distance = Sys.sqrt(dSquared);
        double mag = dt / (dSquared * distance);
        iBody.vx = iBody.vx - dx * jBody.mass * mag;
        iBody.vy = iBody.vy - dy * jBody.mass * mag;
        iBody.vz = iBody.vz - dz * jBody.mass * mag;
        jBody.vx = jBody.vx + dx * iBody.mass * mag;
        jBody.vy = jBody.vy + dy * iBody.mass * mag;
        jBody.vz = jBody.vz + dz * iBody.mass * mag;
      }
      iBody.x = iBody.x + dt * iBody.vx;
      iBody.y = iBody.y + dt * iBody.vy;
      iBody.z = iBody.z + dt * iBody.vz;
    }
  }
  double energy() {
    double e = 0.0;
    for (int i = 0; i < bodies.length; i = i + 1) {
      Body iBody = bodies[i];
      e = e + 0.5 * iBody.mass *
              (iBody.vx * iBody.vx + iBody.vy * iBody.vy +
               iBody.vz * iBody.vz);
      for (int j = i + 1; j < bodies.length; j = j + 1) {
        Body jBody = bodies[j];
        double dx = iBody.x - jBody.x;
        double dy = iBody.y - jBody.y;
        double dz = iBody.z - jBody.z;
        double distance = Sys.sqrt(dx * dx + dy * dy + dz * dz);
        e = e - (iBody.mass * jBody.mass) / distance;
      }
    }
    return e;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    NBodySystem system = new NBodySystem();
    for (int i = 0; i < 500; i = i + 1) { system.advance(0.01); }
    double e = system.energy();
    Sys.print("NBody: " + e);
    return (int) (e * -1000.0);
  }
}
)MJ";
}

std::string workloads::permuteSource() {
  return R"MJ(
class Permute {
  static int count;
  static int[] v;
  static void swap(int i, int j) {
    int tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
  static void permute(int n) {
    count = count + 1;
    if (n != 0) {
      int n1 = n - 1;
      permute(n1);
      for (int i = n1; i >= 0; i = i - 1) {
        swap(n1, i);
        permute(n1);
        swap(n1, i);
      }
    }
  }
  static int benchmark() {
    count = 0;
    v = new int[6];
    permute(6);
    return count;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Permute.benchmark();
    Sys.print("Permute: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::queensSource() {
  return R"MJ(
class Queens {
  boolean[] freeMaxs;
  boolean[] freeRows;
  boolean[] freeMins;
  int[] queenRows;

  boolean queens() {
    freeRows = new boolean[8];
    freeMaxs = new boolean[16];
    freeMins = new boolean[16];
    queenRows = new int[8];
    for (int i = 0; i < 8; i = i + 1) { freeRows[i] = true; queenRows[i] = -1; }
    for (int i = 0; i < 16; i = i + 1) { freeMaxs[i] = true; freeMins[i] = true; }
    return placeQueen(0);
  }
  boolean placeQueen(int c) {
    for (int r = 0; r < 8; r = r + 1) {
      if (getRowColumn(r, c)) {
        queenRows[r] = c;
        setRowColumn(r, c, false);
        if (c == 7) { return true; }
        if (placeQueen(c + 1)) { return true; }
        setRowColumn(r, c, true);
      }
    }
    return false;
  }
  boolean getRowColumn(int r, int c) {
    return freeRows[r] && freeMaxs[c + r] && freeMins[c - r + 7];
  }
  void setRowColumn(int r, int c, boolean v) {
    freeRows[r] = v;
    freeMaxs[c + r] = v;
    freeMins[c - r + 7] = v;
  }
  static boolean benchmark() {
    boolean result = true;
    for (int i = 0; i < 10; i = i + 1) {
      Queens q = new Queens();
      result = result && q.queens();
    }
    return result;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    boolean ok = Queens.benchmark();
    int result = 0;
    if (ok) { result = 1; }
    Sys.print("Queens: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::sieveSource() {
  return R"MJ(
class Sieve {
  static int sieve(boolean[] flags, int size) {
    int primeCount = 0;
    for (int i = 2; i <= size; i = i + 1) {
      if (flags[i - 1]) {
        primeCount = primeCount + 1;
        int k = i + i;
        while (k <= size) {
          flags[k - 1] = false;
          k = k + i;
        }
      }
    }
    return primeCount;
  }
  static int benchmark() {
    int result = 0;
    for (int round = 0; round < 5; round = round + 1) {
      boolean[] flags = new boolean[5000];
      for (int i = 0; i < flags.length; i = i + 1) { flags[i] = true; }
      result = sieve(flags, 5000);
    }
    return result;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Sieve.benchmark();
    Sys.print("Sieve: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::storageSource() {
  return R"MJ(
class Storage {
  static int count;
  static Object[] buildTreeDepth(int depth, SomRandom random) {
    count = count + 1;
    if (depth == 1) {
      return new Object[(random.next() % 10) + 1];
    }
    Object[] arr = new Object[4];
    for (int i = 0; i < 4; i = i + 1) {
      arr[i] = buildTreeDepth(depth - 1, random);
    }
    return arr;
  }
  static int benchmark() {
    SomRandom random = new SomRandom();
    count = 0;
    buildTreeDepth(7, random);
    return count;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Storage.benchmark();
    Sys.print("Storage: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::towersSource() {
  return R"MJ(
class TowersDisk {
  int size;
  TowersDisk next;
  TowersDisk(int size) { this.size = size; next = null; }
}
class Towers {
  TowersDisk[] piles;
  int movesDone;

  void pushDisk(TowersDisk disk, int pile) {
    TowersDisk top = piles[pile];
    disk.next = top;
    piles[pile] = disk;
  }
  TowersDisk popDiskFrom(int pile) {
    TowersDisk top = piles[pile];
    piles[pile] = top.next;
    top.next = null;
    return top;
  }
  void moveTopDisk(int fromPile, int toPile) {
    pushDisk(popDiskFrom(fromPile), toPile);
    movesDone = movesDone + 1;
  }
  void buildTowerAt(int pile, int disks) {
    for (int i = disks; i >= 0; i = i - 1) {
      pushDisk(new TowersDisk(i), pile);
    }
  }
  void moveDisks(int disks, int fromPile, int toPile) {
    if (disks == 1) {
      moveTopDisk(fromPile, toPile);
    } else {
      int otherPile = (3 - fromPile) - toPile;
      moveDisks(disks - 1, fromPile, otherPile);
      moveTopDisk(fromPile, toPile);
      moveDisks(disks - 1, otherPile, toPile);
    }
  }
  static int benchmark() {
    Towers t = new Towers();
    t.piles = new TowersDisk[3];
    t.movesDone = 0;
    t.buildTowerAt(0, 13);
    t.moveDisks(13, 0, 1);
    return t.movesDone;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Towers.benchmark();
    Sys.print("Towers: " + result);
    return result;
  }
}
)MJ";
}
