//===- Workloads.cpp - Workload registry and compilation --------------------===//

#include "src/workloads/Workloads.h"

#include "src/lang/Compile.h"
#include "src/workloads/WorkloadSources.h"

#include <cassert>

using namespace nimg;

const std::vector<std::string> &nimg::awfyBenchmarkNames() {
  static const std::vector<std::string> Names = {
      "Bounce", "CD",      "DeltaBlue", "Havlak",  "Json",
      "List",   "Mandelbrot", "NBody",  "Permute", "Queens",
      "Richards", "Sieve", "Storage",   "Towers"};
  return Names;
}

const std::vector<std::string> &nimg::microserviceNames() {
  static const std::vector<std::string> Names = {"micronaut", "quarkus",
                                                 "spring"};
  return Names;
}

BenchmarkSpec nimg::awfyBenchmark(const std::string &Name) {
  BenchmarkSpec Spec;
  Spec.Name = Name;
  Spec.Sources.push_back(somLibrarySource());
  Spec.Sources.push_back(runtimePreludeSource());
  if (Name == "Bounce")
    Spec.Sources.push_back(workloads::bounceSource());
  else if (Name == "CD")
    Spec.Sources.push_back(workloads::cdSource());
  else if (Name == "DeltaBlue")
    Spec.Sources.push_back(workloads::deltaBlueSource());
  else if (Name == "Havlak")
    Spec.Sources.push_back(workloads::havlakSource());
  else if (Name == "Json")
    Spec.Sources.push_back(workloads::jsonSource());
  else if (Name == "List")
    Spec.Sources.push_back(workloads::listSource());
  else if (Name == "Mandelbrot")
    Spec.Sources.push_back(workloads::mandelbrotSource());
  else if (Name == "NBody")
    Spec.Sources.push_back(workloads::nbodySource());
  else if (Name == "Permute")
    Spec.Sources.push_back(workloads::permuteSource());
  else if (Name == "Queens")
    Spec.Sources.push_back(workloads::queensSource());
  else if (Name == "Richards")
    Spec.Sources.push_back(workloads::richardsSource());
  else if (Name == "Sieve")
    Spec.Sources.push_back(workloads::sieveSource());
  else if (Name == "Storage")
    Spec.Sources.push_back(workloads::storageSource());
  else if (Name == "Towers")
    Spec.Sources.push_back(workloads::towersSource());
  else
    assert(false && "unknown AWFY benchmark name");
  return Spec;
}

static std::string configResource(const std::string &Framework, int Lines) {
  std::string Yml;
  Yml += "service.name=" + Framework + "-hello-world\n";
  Yml += "server.port=8080\n";
  Yml += "server.host=0.0.0.0\n";
  for (int I = 0; I < Lines; ++I)
    Yml += Framework + ".module" + std::to_string(I) +
           ".enabled=true;poolSize=" + std::to_string(4 + I % 12) +
           ";timeoutMs=" + std::to_string(250 + 10 * I) + "\n";
  return Yml;
}

BenchmarkSpec nimg::microserviceBenchmark(const std::string &Name) {
  BenchmarkSpec Spec;
  Spec.Name = Name;
  Spec.Microservice = true;
  Spec.Sources.push_back(somLibrarySource());
  Spec.Sources.push_back(runtimePreludeSource());
  // The three frameworks differ in scale and shape, mirroring the real
  // frameworks' relative footprints: spring largest, micronaut mid-sized,
  // quarkus smaller but with the most build-time-initialized state.
  if (Name == "micronaut") {
    Spec.Sources.push_back(
        workloads::microserviceSource("micronaut", 60, 46, 30, 3));
    Spec.Resources.emplace_back("application.yml",
                                configResource("micronaut", 40));
  } else if (Name == "quarkus") {
    Spec.Sources.push_back(
        workloads::microserviceSource("quarkus", 44, 36, 24, 2));
    Spec.Resources.emplace_back("application.yml",
                                configResource("quarkus", 64));
  } else if (Name == "spring") {
    Spec.Sources.push_back(
        workloads::microserviceSource("spring", 80, 66, 42, 3));
    Spec.Resources.emplace_back("application.yml",
                                configResource("spring", 52));
  } else {
    assert(false && "unknown microservice benchmark name");
  }
  return Spec;
}

std::unique_ptr<Program>
nimg::compileBenchmark(const BenchmarkSpec &Spec,
                       std::vector<std::string> &Errors) {
  auto P = std::make_unique<Program>();
  if (!compileSources(Spec.Sources, *P, Errors))
    return nullptr;
  if (P->MainMethod == -1) {
    Errors.push_back("benchmark " + Spec.Name + " has no Main.main()");
    return nullptr;
  }
  for (const auto &[Name, Contents] : Spec.Resources)
    P->Resources.emplace_back(Name, Contents);
  return P;
}
