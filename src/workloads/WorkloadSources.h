//===- WorkloadSources.h - Internal workload source functions --*- C++ -*-===//
//
// Part of the nimage project. Internal header: per-benchmark MiniJava
// source providers, combined by Workloads.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef NIMG_WORKLOADS_WORKLOADSOURCES_H
#define NIMG_WORKLOADS_WORKLOADSOURCES_H

#include <string>

namespace nimg {
namespace workloads {

// AWFY micro benchmarks.
std::string bounceSource();
std::string listSource();
std::string mandelbrotSource();
std::string nbodySource();
std::string permuteSource();
std::string queensSource();
std::string sieveSource();
std::string storageSource();
std::string towersSource();

// AWFY macro benchmarks (reduced, structure-preserving ports).
std::string cdSource();
std::string deltaBlueSource();
std::string havlakSource();
std::string jsonSource();
std::string richardsSource();

// Microservice frameworks (generated).
std::string microserviceSource(const std::string &Framework,
                               int Controllers, int Services,
                               int Repositories, int Workers);

} // namespace workloads
} // namespace nimg

#endif // NIMG_WORKLOADS_WORKLOADSOURCES_H
