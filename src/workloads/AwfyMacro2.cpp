//===- AwfyMacro2.cpp - AWFY macro benchmarks: DeltaBlue, Havlak -----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// DeltaBlue is a port of the classic one-way constraint solver (chain and
// projection tests, reduced chain lengths); Havlak ports the loop-
// recognition benchmark's union-find-based algorithm over a generated CFG
// (reduced graph sizes). Both preserve the originals' class structure and
// virtual-dispatch behaviour.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/WorkloadSources.h"

using namespace nimg;

std::string workloads::deltaBlueSource() {
  return R"MJ(
class Strength {
  int value;
  Strength(int value) { this.value = value; }

  static Strength REQUIRED;
  static Strength STRONG_PREFERRED;
  static Strength PREFERRED;
  static Strength STRONG_DEFAULT;
  static Strength NORMAL;
  static Strength WEAK_DEFAULT;
  static Strength WEAKEST;

  static {
    REQUIRED = new Strength(0);
    STRONG_PREFERRED = new Strength(1);
    PREFERRED = new Strength(2);
    STRONG_DEFAULT = new Strength(3);
    NORMAL = new Strength(4);
    WEAK_DEFAULT = new Strength(5);
    WEAKEST = new Strength(6);
  }

  boolean stronger(Strength s) { return value < s.value; }
  boolean weaker(Strength s) { return value > s.value; }
  Strength weakest(Strength s) {
    if (s.stronger(this)) { return this; }
    return s;
  }
  Strength nextWeaker() {
    if (value == 0) { return STRONG_PREFERRED; }
    if (value == 1) { return PREFERRED; }
    if (value == 2) { return STRONG_DEFAULT; }
    if (value == 3) { return NORMAL; }
    if (value == 4) { return WEAK_DEFAULT; }
    return WEAKEST;
  }
}

class Variable {
  int value;
  Vector constraints;
  Constraint determinedBy;
  int mark;
  Strength walkStrength;
  boolean stay;

  Variable(int value) {
    this.value = value;
    constraints = new Vector(2);
    determinedBy = null;
    mark = 0;
    walkStrength = Strength.WEAKEST;
    stay = true;
  }
  void addConstraint(Constraint c) { constraints.append(c); }
  void removeConstraint(Constraint c) {
    constraints.removeObj(c);
    if (determinedBy == c) { determinedBy = null; }
  }
}

abstract class Constraint {
  Strength strength;

  abstract boolean isSatisfied();
  abstract void addToGraph();
  abstract void removeFromGraph();
  abstract void chooseMethod(int mark);
  abstract void execute();
  abstract boolean inputsKnown(int mark);
  abstract void markUnsatisfied();
  abstract void markInputs(int mark);
  abstract Variable output();
  abstract void recalculate();

  boolean isInput() { return false; }

  void addConstraint(Planner planner) {
    addToGraph();
    planner.incrementalAdd(this);
  }
  void destroyConstraint(Planner planner) {
    if (isSatisfied()) { planner.incrementalRemove(this); }
    else { removeFromGraph(); }
  }
  Constraint satisfy(int mark, Planner planner) {
    chooseMethod(mark);
    if (!isSatisfied()) {
      return null;
    }
    markInputs(mark);
    Variable out = output();
    Constraint overridden = out.determinedBy;
    if (overridden != null) { overridden.markUnsatisfied(); }
    out.determinedBy = this;
    out.mark = mark;
    return overridden;
  }
}

abstract class UnaryConstraint extends Constraint {
  Variable myOutput;
  boolean satisfied;

  void init(Variable v, Strength s, Planner planner) {
    strength = s;
    myOutput = v;
    satisfied = false;
    addConstraint(planner);
  }
  boolean isSatisfied() { return satisfied; }
  void addToGraph() { myOutput.addConstraint(this); satisfied = false; }
  void removeFromGraph() {
    if (myOutput != null) { myOutput.removeConstraint(this); }
    satisfied = false;
  }
  void chooseMethod(int mark) {
    satisfied = myOutput.mark != mark &&
                strength.stronger(myOutput.walkStrength);
  }
  boolean inputsKnown(int mark) { return true; }
  void markUnsatisfied() { satisfied = false; }
  void markInputs(int mark) { }
  Variable output() { return myOutput; }
  void recalculate() {
    myOutput.walkStrength = strength;
    myOutput.stay = !isInput();
    if (myOutput.stay) { execute(); }
  }
}

class StayConstraint extends UnaryConstraint {
  StayConstraint(Variable v, Strength s, Planner planner) {
    init(v, s, planner);
  }
  void execute() { }
}

class EditConstraint extends UnaryConstraint {
  EditConstraint(Variable v, Strength s, Planner planner) {
    init(v, s, planner);
  }
  boolean isInput() { return true; }
  void execute() { }
}

abstract class BinaryConstraint extends Constraint {
  Variable v1;
  Variable v2;
  int direction; // 0 none, 1 forward (v2 output), 2 backward (v1 output)

  void init2(Variable var1, Variable var2, Strength s, Planner planner) {
    strength = s;
    v1 = var1;
    v2 = var2;
    direction = 0;
    addConstraint(planner);
  }
  boolean isSatisfied() { return direction != 0; }
  void addToGraph() {
    v1.addConstraint(this);
    v2.addConstraint(this);
    direction = 0;
  }
  void removeFromGraph() {
    if (v1 != null) { v1.removeConstraint(this); }
    if (v2 != null) { v2.removeConstraint(this); }
    direction = 0;
  }
  void chooseMethod(int mark) {
    if (v1.mark == mark) {
      if (v2.mark != mark && strength.stronger(v2.walkStrength)) {
        direction = 1;
      } else { direction = 0; }
      return;
    }
    if (v2.mark == mark) {
      if (v1.mark != mark && strength.stronger(v1.walkStrength)) {
        direction = 2;
      } else { direction = 0; }
      return;
    }
    if (v1.walkStrength.weaker(v2.walkStrength)) {
      if (strength.stronger(v1.walkStrength)) { direction = 2; }
      else { direction = 0; }
    } else {
      if (strength.stronger(v2.walkStrength)) { direction = 1; }
      else { direction = 0; }
    }
  }
  void markUnsatisfied() { direction = 0; }
  void markInputs(int mark) { input().mark = mark; }
  boolean inputsKnown(int mark) {
    Variable i = input();
    return i.mark == mark || i.stay || i.determinedBy == null;
  }
  Variable input() {
    if (direction == 1) { return v1; }
    return v2;
  }
  Variable output() {
    if (direction == 1) { return v2; }
    return v1;
  }
  void recalculate() {
    Variable in = input();
    Variable out = output();
    out.walkStrength = strength.weakest(in.walkStrength);
    out.stay = in.stay;
    if (out.stay) { execute(); }
  }
}

class EqualityConstraint extends BinaryConstraint {
  EqualityConstraint(Variable var1, Variable var2, Strength s,
                     Planner planner) {
    init2(var1, var2, s, planner);
  }
  void execute() { output().value = input().value; }
}

class ScaleConstraint extends BinaryConstraint {
  Variable scale;
  Variable offset;
  ScaleConstraint(Variable src, Variable scale, Variable offset,
                  Variable dest, Strength s, Planner planner) {
    this.scale = scale;
    this.offset = offset;
    init2(src, dest, s, planner);
  }
  void addToGraph() {
    v1.addConstraint(this);
    v2.addConstraint(this);
    scale.addConstraint(this);
    offset.addConstraint(this);
    direction = 0;
  }
  void removeFromGraph() {
    if (v1 != null) { v1.removeConstraint(this); }
    if (v2 != null) { v2.removeConstraint(this); }
    if (scale != null) { scale.removeConstraint(this); }
    if (offset != null) { offset.removeConstraint(this); }
    direction = 0;
  }
  void markInputs(int mark) {
    input().mark = mark;
    scale.mark = mark;
    offset.mark = mark;
  }
  void execute() {
    if (direction == 1) {
      v2.value = v1.value * scale.value + offset.value;
    } else {
      v1.value = (v2.value - offset.value) / scale.value;
    }
  }
  void recalculate() {
    Variable in = input();
    Variable out = output();
    out.walkStrength = strength.weakest(in.walkStrength);
    out.stay = in.stay && scale.stay && offset.stay;
    if (out.stay) { execute(); }
  }
}

class Plan {
  Vector constraints;
  Plan() { constraints = new Vector(); }
  void addConstraint(Constraint c) { constraints.append(c); }
  void execute() {
    for (int i = 0; i < constraints.size(); i = i + 1) {
      Constraint c = (Constraint) constraints.at(i);
      c.execute();
    }
  }
}

class Planner {
  int currentMark;
  Planner() { currentMark = 0; }

  int newMark() {
    currentMark = currentMark + 1;
    return currentMark;
  }

  void incrementalAdd(Constraint c) {
    int mark = newMark();
    Constraint overridden = c.satisfy(mark, this);
    while (overridden != null) {
      overridden = overridden.satisfy(mark, this);
    }
  }

  void incrementalRemove(Constraint c) {
    Variable out = c.output();
    c.markUnsatisfied();
    c.removeFromGraph();
    Vector unsatisfied = removePropagateFrom(out);
    for (int i = 0; i < unsatisfied.size(); i = i + 1) {
      Constraint u = (Constraint) unsatisfied.at(i);
      incrementalAdd(u);
    }
  }

  boolean addPropagate(Constraint c, int mark) {
    Vector todo = new Vector();
    todo.append(c);
    while (!todo.isEmpty()) {
      Constraint d = (Constraint) todo.removeLast();
      if (d.output().mark == mark) { return false; }
      d.recalculate();
      addConstraintsConsumingTo(d.output(), todo);
    }
    return true;
  }

  Vector removePropagateFrom(Variable out) {
    out.determinedBy = null;
    out.walkStrength = Strength.WEAKEST;
    out.stay = true;
    Vector unsatisfied = new Vector();
    Vector todo = new Vector();
    todo.append(out);
    while (!todo.isEmpty()) {
      Variable v = (Variable) todo.removeLast();
      for (int i = 0; i < v.constraints.size(); i = i + 1) {
        Constraint c = (Constraint) v.constraints.at(i);
        if (!c.isSatisfied()) { unsatisfied.append(c); }
      }
      Constraint determining = v.determinedBy;
      for (int i = 0; i < v.constraints.size(); i = i + 1) {
        Constraint next = (Constraint) v.constraints.at(i);
        if (next != determining && next.isSatisfied()) {
          next.recalculate();
          todo.append(next.output());
        }
      }
    }
    return unsatisfied;
  }

  void addConstraintsConsumingTo(Variable v, Vector coll) {
    Constraint determining = v.determinedBy;
    for (int i = 0; i < v.constraints.size(); i = i + 1) {
      Constraint c = (Constraint) v.constraints.at(i);
      if (c != determining && c.isSatisfied()) { coll.append(c); }
    }
  }

  Plan makePlan(Vector sources) {
    int mark = newMark();
    Plan plan = new Plan();
    Vector todo = sources;
    while (!todo.isEmpty()) {
      Constraint c = (Constraint) todo.removeLast();
      if (c.output().mark != mark && c.inputsKnown(mark)) {
        plan.addConstraint(c);
        c.output().mark = mark;
        addConstraintsConsumingTo(c.output(), todo);
      }
    }
    return plan;
  }

  Plan extractPlanFromConstraints(Vector constraints) {
    Vector sources = new Vector();
    for (int i = 0; i < constraints.size(); i = i + 1) {
      Constraint c = (Constraint) constraints.at(i);
      if (c.isInput() && c.isSatisfied()) { sources.append(c); }
    }
    return makePlan(sources);
  }
}

class DeltaBlue {
  static int chainTest(int n) {
    Planner planner = new Planner();
    Variable[] vars = new Variable[n + 1];
    for (int i = 0; i <= n; i = i + 1) { vars[i] = new Variable(0); }
    for (int i = 0; i < n; i = i + 1) {
      EqualityConstraint eq =
          new EqualityConstraint(vars[i], vars[i + 1], Strength.REQUIRED,
                                 planner);
    }
    StayConstraint stay =
        new StayConstraint(vars[n], Strength.STRONG_DEFAULT, planner);
    EditConstraint edit =
        new EditConstraint(vars[0], Strength.PREFERRED, planner);
    Vector editV = new Vector();
    editV.append(edit);
    Plan plan = planner.extractPlanFromConstraints(editV);
    int check = 0;
    for (int i = 0; i < 20; i = i + 1) {
      vars[0].value = i;
      plan.execute();
      if (vars[n].value == i) { check = check + 1; }
    }
    edit.destroyConstraint(planner);
    return check;
  }

  static int projectionTest(int n) {
    Planner planner = new Planner();
    Variable scale = new Variable(10);
    Variable offset = new Variable(1000);
    Variable src = null;
    Variable dst = null;
    Vector dests = new Vector();
    for (int i = 0; i < n; i = i + 1) {
      src = new Variable(i);
      dst = new Variable(i);
      dests.append(dst);
      StayConstraint st = new StayConstraint(src, Strength.NORMAL, planner);
      ScaleConstraint sc = new ScaleConstraint(src, scale, offset, dst,
                                               Strength.REQUIRED, planner);
    }
    change(planner, src, 17);
    int check = 0;
    if (dst.value == 1170) { check = check + 1; }
    change(planner, scale, 5);
    for (int i = 0; i < n - 1; i = i + 1) {
      Variable d = (Variable) dests.at(i);
      if (d.value == i * 5 + 1000) { check = check + 1; }
    }
    change(planner, offset, 2000);
    for (int i = 0; i < n - 1; i = i + 1) {
      Variable d = (Variable) dests.at(i);
      if (d.value == i * 5 + 2000) { check = check + 1; }
    }
    return check;
  }

  static void change(Planner planner, Variable v, int newValue) {
    EditConstraint edit = new EditConstraint(v, Strength.PREFERRED, planner);
    Vector editV = new Vector();
    editV.append(edit);
    Plan plan = planner.extractPlanFromConstraints(editV);
    for (int i = 0; i < 10; i = i + 1) {
      v.value = newValue;
      plan.execute();
    }
    edit.destroyConstraint(planner);
  }

  static int benchmark() {
    int a = chainTest(40);
    int b = projectionTest(40);
    return a * 1000 + b;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = DeltaBlue.benchmark();
    Sys.print("DeltaBlue: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::havlakSource() {
  return R"MJ(
class BasicBlock {
  int name;
  Vector inEdges;
  Vector outEdges;
  BasicBlock(int name) {
    this.name = name;
    inEdges = new Vector(2);
    outEdges = new Vector(2);
  }
  int numPred() { return inEdges.size(); }
  void addInEdge(BasicBlock bb) { inEdges.append(bb); }
  void addOutEdge(BasicBlock bb) { outEdges.append(bb); }
}

class Cfg {
  Vector basicBlocks;
  BasicBlock startNode;
  Cfg() {
    basicBlocks = new Vector();
    startNode = null;
  }
  BasicBlock createNode(int name) {
    while (basicBlocks.size() <= name) { basicBlocks.append(null); }
    BasicBlock node = (BasicBlock) basicBlocks.at(name);
    if (node == null) {
      node = new BasicBlock(name);
      basicBlocks.atPut(name, node);
    }
    if (startNode == null) { startNode = node; }
    return node;
  }
  void addEdge(int from, int to) {
    BasicBlock f = createNode(from);
    BasicBlock t = createNode(to);
    f.addOutEdge(t);
    t.addInEdge(f);
  }
  int getNumNodes() { return basicBlocks.size(); }
}

class SimpleLoop {
  Vector basicBlocks;
  Vector children;
  SimpleLoop parent;
  BasicBlock header;
  boolean isReducible;
  int counter;
  int nestingLevel;

  SimpleLoop(BasicBlock bb, boolean reducible) {
    basicBlocks = new Vector(2);
    children = new Vector(2);
    parent = null;
    isReducible = reducible;
    nestingLevel = 0;
    header = bb;
    if (bb != null) { basicBlocks.append(bb); }
  }
  void addNode(BasicBlock bb) { basicBlocks.append(bb); }
  void addChildLoop(SimpleLoop loop) { children.append(loop); }
  void setParent(SimpleLoop p) {
    parent = p;
    p.addChildLoop(this);
  }
}

class Lsg {
  Vector loops;
  SimpleLoop root;
  int loopCounter;
  Lsg() {
    loops = new Vector();
    loopCounter = 0;
    root = createNewLoop(null, true);
    addLoop(root);
  }
  SimpleLoop createNewLoop(BasicBlock bb, boolean reducible) {
    SimpleLoop loop = new SimpleLoop(bb, reducible);
    loop.counter = loopCounter;
    loopCounter = loopCounter + 1;
    return loop;
  }
  void addLoop(SimpleLoop loop) { loops.append(loop); }
  int getNumLoops() { return loops.size(); }
}

class UnionFindNode {
  UnionFindNode parent;
  BasicBlock bb;
  SimpleLoop loop;
  int dfsNumber;

  void initNode(BasicBlock bb, int dfsNumber) {
    parent = this;
    this.bb = bb;
    this.dfsNumber = dfsNumber;
    loop = null;
  }
  UnionFindNode findSet() {
    Vector nodeList = new Vector(2);
    UnionFindNode node = this;
    while (node != node.parent) {
      if (node.parent != node.parent.parent) { nodeList.append(node); }
      node = node.parent;
    }
    for (int i = 0; i < nodeList.size(); i = i + 1) {
      UnionFindNode n = (UnionFindNode) nodeList.at(i);
      n.parent = node.parent;
    }
    return node;
  }
  void unionSet(UnionFindNode other) { parent = other; }
}

class HavlakLoopFinder {
  Cfg cfg;
  Lsg lsg;
  int[] number;
  int[] header;
  int[] types;
  int[] last;
  UnionFindNode[] nodes;
  IntVector[] nonBackPreds;
  IntVector[] backPreds;

  static int BB_NONHEADER = 1;
  static int BB_REDUCIBLE = 2;
  static int BB_SELF = 3;
  static int BB_IRREDUCIBLE = 4;
  static int BB_DEAD = 5;
  static int UNVISITED = -1;

  HavlakLoopFinder(Cfg cfg, Lsg lsg) {
    this.cfg = cfg;
    this.lsg = lsg;
  }

  boolean isAncestor(int w, int v) {
    return w <= v && v <= last[w];
  }

  int doDfs(BasicBlock currentNode, int current) {
    nodes[current].initNode(currentNode, current);
    number[currentNode.name] = current;
    int lastId = current;
    for (int i = 0; i < currentNode.outEdges.size(); i = i + 1) {
      BasicBlock target = (BasicBlock) currentNode.outEdges.at(i);
      if (number[target.name] == UNVISITED) {
        lastId = doDfs(target, lastId + 1);
      }
    }
    last[number[currentNode.name]] = lastId;
    return lastId;
  }

  int findLoops() {
    if (cfg.startNode == null) { return 0; }
    int size = cfg.getNumNodes();
    nonBackPreds = new IntVector[size];
    backPreds = new IntVector[size];
    number = new int[size];
    header = new int[size];
    types = new int[size];
    last = new int[size];
    nodes = new UnionFindNode[size];
    for (int i = 0; i < size; i = i + 1) {
      nonBackPreds[i] = new IntVector();
      backPreds[i] = new IntVector();
      number[i] = UNVISITED;
      nodes[i] = new UnionFindNode();
    }
    doDfs(cfg.startNode, 0);

    for (int w = 0; w < size; w = w + 1) {
      header[w] = 0;
      types[w] = BB_NONHEADER;
      BasicBlock nodeW = nodes[w].bb;
      if (nodeW == null) {
        types[w] = BB_DEAD;
      } else {
        if (nodeW.numPred() > 0) {
          for (int i = 0; i < nodeW.inEdges.size(); i = i + 1) {
            BasicBlock nodeV = (BasicBlock) nodeW.inEdges.at(i);
            int v = number[nodeV.name];
            if (v != UNVISITED) {
              if (isAncestor(w, v)) { backPreds[w].append(v); }
              else { nonBackPreds[w].append(v); }
            }
          }
        }
      }
    }
    header[0] = 0;

    for (int w = size - 1; w >= 0; w = w - 1) {
      Vector nodePool = new Vector();
      BasicBlock nodeW = nodes[w].bb;
      if (nodeW != null) {
        for (int i = 0; i < backPreds[w].size(); i = i + 1) {
          int v = backPreds[w].at(i);
          if (v != w) { nodePool.append(nodes[v].findSet()); }
          else { types[w] = BB_SELF; }
        }
        Vector workList = new Vector();
        for (int i = 0; i < nodePool.size(); i = i + 1) {
          workList.append(nodePool.at(i));
        }
        if (nodePool.size() != 0) { types[w] = BB_REDUCIBLE; }
        while (!workList.isEmpty()) {
          UnionFindNode x = (UnionFindNode) workList.removeFirst();
          for (int i = 0; i < nonBackPreds[x.dfsNumber].size(); i = i + 1) {
            UnionFindNode y = nodes[nonBackPreds[x.dfsNumber].at(i)];
            UnionFindNode ydash = y.findSet();
            if (!isAncestor(w, ydash.dfsNumber)) {
              types[w] = BB_IRREDUCIBLE;
              if (!nonBackPreds[w].contains(ydash.dfsNumber)) {
                nonBackPreds[w].append(ydash.dfsNumber);
              }
            } else {
              if (ydash.dfsNumber != w) {
                boolean seen = false;
                for (int k = 0; k < nodePool.size(); k = k + 1) {
                  if (nodePool.at(k) == ydash) { seen = true; }
                }
                if (!seen) {
                  workList.append(ydash);
                  nodePool.append(ydash);
                }
              }
            }
          }
        }
        if (nodePool.size() > 0 || types[w] == BB_SELF) {
          SimpleLoop loop =
              lsg.createNewLoop(nodeW, types[w] != BB_IRREDUCIBLE);
          for (int i = 0; i < nodePool.size(); i = i + 1) {
            UnionFindNode node = (UnionFindNode) nodePool.at(i);
            header[node.dfsNumber] = w;
            node.unionSet(nodes[w]);
            if (node.loop != null) { node.loop.setParent(loop); }
            else { loop.addNode(node.bb); }
          }
          nodes[w].loop = loop;
          lsg.addLoop(loop);
        }
      }
    }
    return lsg.getNumLoops();
  }
}

class LoopTesterApp {
  Cfg cfg;
  int blockCounter;

  LoopTesterApp() {
    cfg = new Cfg();
    blockCounter = 1;
    cfg.createNode(0);
  }

  int buildDiamond(int start) {
    int bb0 = start;
    cfg.addEdge(bb0, bb0 + 1);
    cfg.addEdge(bb0, bb0 + 2);
    cfg.addEdge(bb0 + 1, bb0 + 3);
    cfg.addEdge(bb0 + 2, bb0 + 3);
    blockCounter = SomUtil.max(blockCounter, bb0 + 4);
    return bb0 + 3;
  }

  void buildConnect(int start, int end) { cfg.addEdge(start, end); }

  int buildStraight(int start, int n) {
    for (int i = 0; i < n; i = i + 1) {
      buildConnect(start + i, start + i + 1);
    }
    blockCounter = SomUtil.max(blockCounter, start + n + 1);
    return start + n;
  }

  int buildBaseLoop(int from) {
    int header = buildStraight(from, 1);
    int diamond1 = buildDiamond(header);
    int d11 = buildStraight(diamond1, 1);
    int diamond2 = buildDiamond(d11);
    int footer = buildStraight(diamond2, 1);
    buildConnect(diamond2, d11);
    buildConnect(diamond1, header);
    buildConnect(footer, from);
    return buildStraight(footer, 1);
  }

  int run(int parentLoops, int baseLoops) {
    cfg.addEdge(0, 2);
    int n = 2;
    for (int parent = 0; parent < parentLoops; parent = parent + 1) {
      int top = buildStraight(n, 1);
      for (int i = 0; i < baseLoops; i = i + 1) {
        top = buildBaseLoop(top);
      }
      int bottom = buildStraight(top, 1);
      buildConnect(bottom, n);
      n = buildStraight(bottom, 1);
    }
    int total = 0;
    for (int round = 0; round < 3; round = round + 1) {
      Lsg lsg = new Lsg();
      HavlakLoopFinder finder = new HavlakLoopFinder(cfg, lsg);
      total = finder.findLoops();
    }
    return total;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    LoopTesterApp app = new LoopTesterApp();
    int result = app.run(4, 6);
    Sys.print("Havlak: " + result);
    return result;
  }
}
)MJ";
}
