//===- Prelude.cpp - Generated runtime-library prelude ----------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Every Native-Image binary links a large runtime and class library of
// which startup executes only a part, and the conservative points-to
// analysis compiles far more than what runs (Sec. 2). This generator
// produces that substrate: "core" library classes whose code and static
// state the Runtime.initialize() startup path actually uses, interleaved
// (alphabetically, and therefore in the default .text layout) with "ext"
// classes that are compiled and snapshotted but never executed. The
// hot/cold interleaving is what profile-guided reordering exploits.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace nimg;

static std::string libClassName(int I) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "Lib%03d", I);
  return Buf;
}

std::string nimg::runtimePreludeSource(int Classes) {
  std::string Src;
  Src.reserve(size_t(Classes) * 2600);

  // Small immutable value objects: exactly the shape partial escape
  // analysis scalar-replaces or constant-folds away in some builds but not
  // others (Sec. 2) — the PEA-elision pass targets these.
  // A registry handing out ids in class-initialization order: because the
  // build permutes that order (parallel class initialization, Sec. 2),
  // everything derived from these ids diverges between builds — the
  // content-level nondeterminism that defeats structural hashing and, when
  // it changes object counts, incremental ids.
  Src += "class GlobalCounter {\n"
         "  static int n = 0;\n"
         "  static int next() { n = n + 1; return n; }\n"
         "}\n";

  // Linked metadata chains: the nodes near the head have identical content
  // in every class, so shallow structural hashes collide across classes;
  // the third node carries the class id (resolving collisions at
  // MAX_DEPTH = 2) and the fourth carries the build-divergent registration
  // rank (so deeper hashes stop matching across builds) — reproducing the
  // trade-off that makes the paper settle on MAX_DEPTH = 2 (Sec. 5.2).
  Src += "class MetaNode {\n"
         "  int key;\n"
         "  MetaNode next;\n"
         "  MetaNode(int key, MetaNode next) {\n"
         "    this.key = key;\n"
         "    this.next = next;\n"
         "  }\n"
         "}\n";

  Src += "class VersionInfo {\n"
         "  int major; int minor; int patch; String qualifier;\n"
         "  VersionInfo(int major, int minor, int patch, String qualifier) {\n"
         "    this.major = major; this.minor = minor;\n"
         "    this.patch = patch; this.qualifier = qualifier;\n"
         "  }\n"
         "  int encode() { return major * 10000 + minor * 100 + patch; }\n"
         "}\n";

  for (int I = 0; I < Classes; ++I) {
    std::string Name = libClassName(I);
    std::string IStr = std::to_string(I);
    // Even classes are startup-hot (code); odd are cold. Only a subset of
    // the hot classes also reads its static string data at startup
    // ("data-hot"): most of that subset is contiguous in class-id order —
    // the default object layout groups statics-reached objects by class —
    // with a sparse scattered remainder, giving the paper's profile: a
    // small fraction of snapshot objects accessed (Sec. 7.2), partially
    // co-located by the default order, partially scattered.
    bool Core = I % 2 == 0;
    bool DataHot = Core && (I < Classes / 3 || I % 16 == 2);
    Src += "class " + Name + " {\n";
    Src += "  static VersionInfo version = new VersionInfo(1, " + IStr +
           ", " + std::to_string((I * 7) % 10) + ", \"release-" + IStr +
           "\");\n";
    // Build-time-initialized static state: the metadata, string tables,
    // and maps that dominate Native-Image heap snapshots (Sec. 7.2).
    Src += "  static String tag = \"module:" + Name +
           ";version=1." + IStr + ".0;flags=preinit,aot,startup;"
           "provides=api,impl,spi;requires=base,logging\";\n";
    Src += "  static String[] table = new String[10];\n";
    Src += "  static int checksum = 0;\n";
    Src += "  static int regId = GlobalCounter.next();\n";
    Src += "  static MetaNode chain = new MetaNode(0, new MetaNode(0, "
           "new MetaNode(" + IStr + ", new MetaNode(regId, null))));\n";
    Src += "  static String[] cache;\n";
    Src += "  static {\n";
    Src += "    for (int i = 0; i < table.length; i = i + 1) {\n";
    Src += "      table[i] = tag + \"#entry-\" + i + \"-of-" + Name +
           "\";\n";
    Src += "      checksum = checksum + Str.length(table[i]);\n";
    Src += "    }\n";
    // Rarely, a class's registration rank makes it allocate extra cache
    // strings. Which class does so differs per build (the rank depends on
    // the permuted initialization order), so the *number* of String
    // objects in the snapshot differs across builds — shifting every later
    // incremental id of that type (Sec. 5.1's inaccuracy).
    if (I >= Classes / 3) {
      Src += "    if (regId % 256 == 3) {\n";
      Src += "      cache = new String[2];\n";
      Src += "      cache[0] = tag + \"!warm\";\n";
      Src += "      cache[1] = tag + \"!probe\";\n";
      Src += "    } else {\n";
      Src += "      cache = new String[0];\n";
      Src += "    }\n";
    } else {
      Src += "    cache = new String[0];\n";
    }
    Src += "  }\n";

    if (Core) {
      // Startup executes every method of a core class; its static state
      // (tag, table strings) is read, making its snapshot objects hot.
      Src += "  static int verify(int x) {\n";
      Src += "    int acc = x + version.encode();\n";
      if (DataHot) {
        Src += "    acc = acc + Str.length(tag);\n";
        Src += "    for (int i = 0; i < 4; i = i + 1) {\n";
        Src += "      acc = acc + Str.length(table[i]) + i * " + IStr + ";\n";
        Src += "      acc = (acc * 33) % 1048573;\n";
        Src += "    }\n";
      } else {
        Src += "    for (int i = 0; i < 10; i = i + 1) {\n";
        Src += "      acc = (acc * 33 + i * " + IStr + ") % 1048573;\n";
        Src += "      acc = acc ^ (acc << 2);\n";
        Src += "    }\n";
      }
      Src += "    return acc;\n";
      Src += "  }\n";
      Src += "  static int touch(int x) {\n";
      Src += "    int acc = checksum + x;\n";
      Src += "    acc = acc + verify(acc);\n";
      Src += "    if (acc % 2 == 0) { acc = acc + configure(acc); }\n";
      Src += "    else { acc = acc + configure(acc + 1); }\n";
      Src += "    acc = acc + audit(acc);\n";
      Src += "    return acc;\n";
      Src += "  }\n";
      Src += "  static int audit(int x) {\n";
      Src += "    int lo = x & 65535;\n";
      Src += "    int hi = (x >> 16) & 65535;\n";
      Src += "    int acc = lo ^ hi;\n";
      Src += "    for (int i = 0; i < 6; i = i + 1) {\n";
      Src += "      acc = (acc * 131 + lo) % 262139;\n";
      Src += "      lo = (lo + hi) & 65535;\n";
      Src += "      hi = (hi * 3 + i) & 65535;\n";
      Src += "    }\n";
      Src += "    return acc;\n";
      Src += "  }\n";
      Src += "  static int configure(int x) {\n";
      Src += "    int acc = x;\n";
      Src += "    for (int i = 0; i < 8; i = i + 1) {\n";
      Src += "      acc = (acc * 31 + i) % 65521;\n";
      Src += "      acc = acc ^ (acc << 2);\n";
      Src += "    }\n";
      Src += "    return acc;\n";
      Src += "  }\n";
    } else {
      // Ext classes: reachable (cold diagnostics path) but never executed;
      // their code and snapshot objects stay untouched at run time.
      Src += "  static int touch(int x) { return checksum + x; }\n";
      for (int M = 0; M < 4; ++M) {
        std::string MStr = std::to_string(M);
        Src += "  static int cold" + MStr + "(int x) {\n";
        Src += "    int acc = x;\n";
        Src += "    for (int i = 0; i < 20; i = i + 1) {\n";
        Src += "      acc = (acc * 31 + i * " + std::to_string(M + 3) +
               ") % 65521;\n";
        Src += "      if (acc % 7 == " + MStr + ") { acc = acc + "
               "Str.length(table[i % table.length]); }\n";
        Src += "      acc = acc ^ (acc << 3);\n";
        Src += "    }\n";
        if (I > 1)
          Src += "    if (acc == -1) { acc = " + libClassName(I - 2) +
                 ".cold" + std::to_string((M + 1) % 4) + "(acc); }\n";
        Src += "    return acc;\n";
        Src += "  }\n";
      }
    }
    Src += "}\n";
  }

  // The runtime entry point: startup executes every core class's methods —
  // scattered across the alphabetical .text layout — and keeps the whole
  // library reachable through a dead diagnostics path.
  Src += "class Runtime {\n";
  Src += "  static int initialized = 0;\n";
  Src += "  static String banner = \"nimage runtime 21.0 (aot)\";\n";
  Src += "  static Vector startupLog;\n";
  Src += "  static {\n";
  Src += "    startupLog = new Vector(16);\n";
  Src += "    startupLog.append(banner);\n";
  Src += "  }\n";
  Src += "  static int initialize() {\n";
  Src += "    int acc = Str.length(banner);\n";
  for (int I = 0; I < Classes; I += 2)
    Src += "    acc = acc + " + libClassName(I) + ".touch(" +
           std::to_string(I) + ");\n";
  Src += "    initialized = 1;\n";
  Src += "    if (acc < -2000000000) { acc = dumpDiagnostics(acc); }\n";
  Src += "    return acc;\n";
  Src += "  }\n";
  Src += "  static int dumpDiagnostics(int x) {\n";
  for (int I = 1; I < Classes; I += 2)
    for (int M = 0; M < 4; ++M)
      Src += "    x = x + " + libClassName(I) + ".cold" + std::to_string(M) +
             "(x);\n";
  Src += "    return x;\n";
  Src += "  }\n";
  Src += "}\n";
  return Src;
}
