//===- SomLib.cpp - som-style core library in MiniJava ----------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// The AWFY benchmarks share a small core library (Vector, Dictionary,
// Random, ...) originally ported from SOM; this is its MiniJava port. It
// is prepended to every workload, so its methods are part of every image
// and its unused parts are part of every image's cold code.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/Workloads.h"

using namespace nimg;

std::string nimg::somLibrarySource() {
  return R"SOM(
// --- som core library --------------------------------------------------

class SomRandom {
  int seed;
  SomRandom() { seed = 74755; }
  int next() {
    seed = ((seed * 1309) + 13849) & 65535;
    return seed;
  }
}

class Vector {
  Object[] storage;
  int firstIdx;
  int lastIdx;

  Vector() {
    storage = new Object[8];
    firstIdx = 0;
    lastIdx = 0;
  }
  Vector(int cap) {
    storage = new Object[cap];
    firstIdx = 0;
    lastIdx = 0;
  }

  int size() { return lastIdx - firstIdx; }
  boolean isEmpty() { return lastIdx == firstIdx; }

  Object at(int idx) {
    return storage[firstIdx + idx];
  }

  void atPut(int idx, Object val) {
    int pos = firstIdx + idx;
    while (pos >= storage.length) { grow(); }
    storage[pos] = val;
    if (lastIdx < pos + 1) { lastIdx = pos + 1; }
  }

  void append(Object val) {
    if (lastIdx >= storage.length) { grow(); }
    storage[lastIdx] = val;
    lastIdx = lastIdx + 1;
  }

  void grow() {
    Object[] ns = new Object[storage.length * 2];
    for (int i = 0; i < storage.length; i = i + 1) { ns[i] = storage[i]; }
    storage = ns;
  }

  Object first() {
    if (isEmpty()) { return null; }
    return storage[firstIdx];
  }

  Object removeFirst() {
    if (isEmpty()) { return null; }
    Object v = storage[firstIdx];
    storage[firstIdx] = null;
    firstIdx = firstIdx + 1;
    return v;
  }

  Object removeLast() {
    if (isEmpty()) { return null; }
    lastIdx = lastIdx - 1;
    Object v = storage[lastIdx];
    storage[lastIdx] = null;
    return v;
  }

  boolean removeObj(Object obj) {
    for (int i = firstIdx; i < lastIdx; i = i + 1) {
      if (storage[i] == obj) {
        for (int j = i; j < lastIdx - 1; j = j + 1) {
          storage[j] = storage[j + 1];
        }
        lastIdx = lastIdx - 1;
        storage[lastIdx] = null;
        return true;
      }
    }
    return false;
  }

  void removeAll() {
    storage = new Object[storage.length];
    firstIdx = 0;
    lastIdx = 0;
  }
}

class IntVector {
  int[] storage;
  int sz;
  IntVector() { storage = new int[8]; sz = 0; }
  int size() { return sz; }
  int at(int i) { return storage[i]; }
  void atPut(int i, int v) { storage[i] = v; }
  void append(int v) {
    if (sz >= storage.length) {
      int[] ns = new int[storage.length * 2];
      for (int i = 0; i < storage.length; i = i + 1) { ns[i] = storage[i]; }
      storage = ns;
    }
    storage[sz] = v;
    sz = sz + 1;
  }
  boolean contains(int v) {
    for (int i = 0; i < sz; i = i + 1) {
      if (storage[i] == v) { return true; }
    }
    return false;
  }
}

// An int-keyed hash dictionary with chained buckets, in the style of the
// AWFY CD benchmark's RedBlackTree usage sites (reduced to hashing).
class DictEntry {
  int key;
  Object value;
  DictEntry next;
  DictEntry(int key, Object value) {
    this.key = key;
    this.value = value;
    next = null;
  }
}

class Dictionary {
  DictEntry[] buckets;
  int sz;

  Dictionary() { buckets = new DictEntry[97]; sz = 0; }
  Dictionary(int cap) { buckets = new DictEntry[cap]; sz = 0; }

  int hash(int key) {
    int h = key % buckets.length;
    if (h < 0) { return -h; }
    return h;
  }

  Object at(int key) {
    DictEntry e = buckets[hash(key)];
    while (e != null) {
      if (e.key == key) { return e.value; }
      e = e.next;
    }
    return null;
  }

  boolean containsKey(int key) {
    DictEntry e = buckets[hash(key)];
    while (e != null) {
      if (e.key == key) { return true; }
      e = e.next;
    }
    return false;
  }

  void atPut(int key, Object value) {
    int h = hash(key);
    DictEntry e = buckets[h];
    while (e != null) {
      if (e.key == key) { e.value = value; return; }
      e = e.next;
    }
    DictEntry ne = new DictEntry(key, value);
    ne.next = buckets[h];
    buckets[h] = ne;
    sz = sz + 1;
  }

  int size() { return sz; }

  Vector values() {
    Vector out = new Vector(sz + 1);
    for (int i = 0; i < buckets.length; i = i + 1) {
      DictEntry e = buckets[i];
      while (e != null) {
        out.append(e.value);
        e = e.next;
      }
    }
    return out;
  }

  Vector keys() {
    Vector out = new Vector(sz + 1);
    for (int i = 0; i < buckets.length; i = i + 1) {
      DictEntry e = buckets[i];
      while (e != null) {
        out.append(new IntBox(e.key));
        e = e.next;
      }
    }
    return out;
  }
}

class IntBox {
  int value;
  IntBox(int value) { this.value = value; }
}

class SomUtil {
  static int max(int a, int b) { if (a > b) { return a; } return b; }
  static int min(int a, int b) { if (a < b) { return a; } return b; }
  static int abs(int a) { if (a < 0) { return -a; } return a; }
  static double dmax(double a, double b) { if (a > b) { return a; } return b; }
  static double dmin(double a, double b) { if (a < b) { return a; } return b; }
  static double dabs(double a) { if (a < 0.0) { return -a; } return a; }
}
)SOM";
}
