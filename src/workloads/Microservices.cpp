//===- Microservices.cpp - Generated microservice hello-world workloads ----===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Three synthetic microservice frameworks stand in for micronaut, quarkus,
// and spring (Sec. 7.1 evaluates hello-world on each): framework-scale
// generated class sets with build-time-initialized metadata, a DI
// container booted at startup, config parsing from an embedded resource,
// route registration, worker threads, and one handled request — at which
// point the workload responds and the harness SIGKILLs it.
//
//===----------------------------------------------------------------------===//

#include "src/workloads/WorkloadSources.h"

#include <cstdio>

using namespace nimg;

namespace {

std::string className(const std::string &Prefix, const char *Kind, int I) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s%s%03d", Prefix.c_str(), Kind, I);
  return Buf;
}

} // namespace

std::string workloads::microserviceSource(const std::string &Framework,
                                          int Controllers, int Services,
                                          int Repositories, int Workers) {
  // Class-name prefix makes the three frameworks' alphabetical .text
  // layouts (and thus their default orders) distinct.
  std::string Pfx;
  if (Framework == "micronaut")
    Pfx = "Mn";
  else if (Framework == "quarkus")
    Pfx = "Qk";
  else
    Pfx = "Sp";

  std::string Src;
  Src.reserve(size_t(Controllers + Services + Repositories) * 1600);

  // --- Server core -----------------------------------------------------------
  Src += R"MJ(
class HttpRequest {
  String path;
  String method;
  HttpRequest(String path, String method) {
    this.path = path;
    this.method = method;
  }
}
class HttpResponse {
  int status;
  String body;
  HttpResponse(int status, String body) {
    this.status = status;
    this.body = body;
  }
}
abstract class RequestHandler {
  abstract HttpResponse handle(HttpRequest request);
}
class Route {
  String path;
  RequestHandler handler;
  Route(String path, RequestHandler handler) {
    this.path = path;
    this.handler = handler;
  }
}
class Router {
  static Vector routes;
  static { routes = new Vector(64); }
  static void register(String path, RequestHandler handler) {
    routes.append(new Route(path, handler));
  }
  static HttpResponse dispatch(HttpRequest request) {
    for (int i = 0; i < routes.size(); i = i + 1) {
      Route r = (Route) routes.at(i);
      if (Str.equals(r.path, request.path)) {
        return r.handler.handle(request);
      }
    }
    return new HttpResponse(404, "not found: " + request.path);
  }
}
class ServerState {
  static int ready = 0;
  static int done = 0;
  static int requestsServed = 0;
}
class Config {
  static Dictionary settings;
  static int parsed = 0;
  static void load() {
    settings = new Dictionary(127);
    String blob = Sys.readResource("application.yml");
    int n = Str.length(blob);
    int lineStart = 0;
    int key = 0;
    for (int i = 0; i < n; i = i + 1) {
      if (Str.charAt(blob, i) == 10) {
        if (i > lineStart) {
          settings.atPut(key, Str.substring(blob, lineStart, i));
          key = key + 1;
        }
        lineStart = i + 1;
      }
    }
    parsed = key;
  }
}
)MJ";

  // --- Repositories ------------------------------------------------------------
  for (int I = 0; I < Repositories; ++I) {
    std::string Name = className(Pfx, "Repo", I);
    std::string IStr = std::to_string(I);
    Src += "class " + Name + " {\n";
    Src += "  static String entity = \"" + Pfx + ".entity.Table" + IStr +
           ";columns=id,name,created,updated,flags\";\n";
    Src += "  static String[] schema = new String[5];\n";
    Src += "  static {\n    for (int i = 0; i < 5; i = i + 1) {\n"
           "      schema[i] = entity + \".col\" + i;\n    }\n  }\n";
    Src += "  int queries;\n";
    Src += "  " + Name + "() { queries = 0; }\n";
    Src += "  String findById(int id) {\n"
           "    queries = queries + 1;\n"
           "    return schema[id % schema.length];\n  }\n";
    // Cold bulk operations.
    Src += "  int bulkMigrate(int rows) {\n"
           "    int acc = 0;\n"
           "    for (int i = 0; i < rows; i = i + 1) {\n"
           "      acc = acc + Str.length(schema[i % schema.length]) + i;\n"
           "      acc = (acc * 131) % 1000003;\n"
           "    }\n    return acc;\n  }\n";
    Src += "}\n";
  }

  // --- Services -------------------------------------------------------------------
  for (int I = 0; I < Services; ++I) {
    std::string Name = className(Pfx, "Svc", I);
    std::string Repo = className(Pfx, "Repo", I % (Repositories > 0 ? Repositories : 1));
    std::string IStr = std::to_string(I);
    Src += "class " + Name + " {\n";
    Src += "  static String meta = \"" + Pfx + ".service." + Name +
           ";scope=singleton;lazy=false;order=" + IStr + "\";\n";
    Src += "  static int[] methodTable = new int[48];\n";
    Src += "  static {\n    for (int i = 0; i < methodTable.length; "
           "i = i + 1) {\n      methodTable[i] = i * " + IStr +
           " + 17;\n    }\n  }\n";
    Src += "  " + Repo + " repository;\n";
    Src += "  " + Name + "(" + Repo + " repository) { "
           "this.repository = repository; }\n";
    Src += "  String greet(String who) {\n"
           "    return \"hello, \" + who + \" [\" + "
           "repository.findById(" + IStr + ") + \"]\";\n  }\n";
    Src += "  int coldReport(int depth) {\n"
           "    int acc = depth + Str.length(meta);\n"
           "    for (int i = 0; i < 24; i = i + 1) {\n"
           "      acc = (acc * 31 + i) % 65521;\n"
           "    }\n    return acc + repository.bulkMigrate(depth);\n  }\n";
    Src += "}\n";
  }

  // --- Controllers --------------------------------------------------------------------
  for (int I = 0; I < Controllers; ++I) {
    std::string Name = className(Pfx, "Ctrl", I);
    std::string Svc = className(Pfx, "Svc", I % (Services > 0 ? Services : 1));
    std::string IStr = std::to_string(I);
    std::string Path = I == 0 ? "/hello" : ("/api/v1/resource" + IStr);
    Src += "class " + Name + " extends RequestHandler {\n";
    Src += "  static String route = \"" + Path + "\";\n";
    // beanId embeds a registration rank from the permuted build-time
    // initialization order: its content differs across builds, which is
    // what collapses structural-hash matching on microservices (Sec. 7.2:
    // 1.03x) while heap-path matching — keyed on the stable static-field
    // path — keeps working.
    Src += "  static String beanId = \"bean#\" + GlobalCounter.next() + "
           "\":" + Pfx + "." + Name + "\";\n";
    Src += "  static String[] annotations = new String[6];\n";
    Src += "  static int[] dispatchTable = new int[64];\n";
    Src += "  static {\n"
           "    annotations[0] = \"@Controller(\" + route + \")\";\n"
           "    annotations[1] = \"@Produces(application/json)\";\n"
           "    annotations[2] = \"@Version(" + IStr + ")\";\n"
           "    annotations[3] = \"@Timed(" + Pfx + "." + Name + ")\";\n"
           "    annotations[4] = \"@Secured(role=user,scope=read)\";\n"
           "    annotations[5] = \"@RateLimited(100/s," + Pfx + ")\";\n"
           "    for (int i = 0; i < dispatchTable.length; i = i + 1) {\n"
           "      dispatchTable[i] = (i * 2654435761) % 1048573;\n"
           "    }\n"
           "  }\n";
    Src += "  " + Svc + " service;\n";
    Src += "  " + Name + "(" + Svc + " service) { this.service = service; }\n";
    Src += "  HttpResponse handle(HttpRequest request) {\n"
           "    return new HttpResponse(200, service.greet(\"world\"));\n"
           "  }\n";
    // Cold admin endpoint.
    Src += "  HttpResponse admin(HttpRequest request) {\n"
           "    int acc = service.coldReport(64);\n"
           "    return new HttpResponse(200, \"admin:\" + acc);\n  }\n";
    Src += "}\n";
  }

  // --- Container: boots repositories, services, controllers, routes ------------
  Src += "class Container {\n";
  Src += "  static Vector beans;\n";
  Src += "  static int booted = 0;\n";
  Src += "  static int bootChecksum = 0;\n";
  Src += "  static void boot() {\n";
  Src += "    beans = new Vector(" +
         std::to_string(Controllers + Services + Repositories + 8) + ");\n";
  for (int I = 0; I < Repositories; ++I)
    Src += "    " + className(Pfx, "Repo", I) + " repo" + std::to_string(I) +
           " = new " + className(Pfx, "Repo", I) + "();\n" +
           "    beans.append(repo" + std::to_string(I) + ");\n";
  for (int I = 0; I < Services; ++I) {
    int R = Repositories > 0 ? I % Repositories : 0;
    Src += "    " + className(Pfx, "Svc", I) + " svc" + std::to_string(I) +
           " = new " + className(Pfx, "Svc", I) + "(repo" +
           std::to_string(R) + ");\n" + "    beans.append(svc" +
           std::to_string(I) + ");\n";
  }
  for (int I = 0; I < Controllers; ++I) {
    int S = Services > 0 ? I % Services : 0;
    Src += "    " + className(Pfx, "Ctrl", I) + " ctrl" + std::to_string(I) +
           " = new " + className(Pfx, "Ctrl", I) + "(svc" +
           std::to_string(S) + ");\n";
    Src += "    Router.register(" + className(Pfx, "Ctrl", I) +
           ".route, ctrl" + std::to_string(I) + ");\n";
    Src += "    bootChecksum = bootChecksum + Str.length(" +
           className(Pfx, "Ctrl", I) + ".beanId);\n";
  }
  Src += "    booted = 1;\n";
  Src += "  }\n";
  // Cold diagnostics path keeps admin endpoints reachable.
  Src += "  static int diagnostics() {\n";
  Src += "    int acc = 0;\n";
  Src += "    HttpRequest probe = new HttpRequest(\"/probe\", \"GET\");\n";
  for (int I = 0; I < Controllers; ++I)
    Src += "    acc = acc + ((" + className(Pfx, "Ctrl", I) +
           ") Router.routes.at(" + std::to_string(I) +
           ")).admin(probe).status;\n";
  Src += "    return acc;\n  }\n";
  Src += "}\n";

  // --- Workers and main ------------------------------------------------------------
  Src += R"MJ(
class RequestWorker {
  static void run() {
    while (ServerState.ready == 0) { Sys.yield(); }
    HttpRequest request = new HttpRequest("/hello", "GET");
    HttpResponse response = Router.dispatch(request);
    ServerState.requestsServed = ServerState.requestsServed + 1;
    Sys.respond(response.body);
    ServerState.done = 1;
  }
}
class MetricsWorker {
  static int samples = 0;
  static void run() {
    while (ServerState.done == 0) {
      samples = samples + 1;
      Sys.yield();
    }
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    Config.load();
    Container.boot();
)MJ";
  for (int W = 0; W < Workers; ++W)
    Src += W % 2 == 0 ? "    Sys.spawn(\"RequestWorker.run\");\n"
                      : "    Sys.spawn(\"MetricsWorker.run\");\n";
  Src += R"MJ(
    ServerState.ready = 1;
    if (Container.booted < 0) {
      int ignored = Container.diagnostics();
    }
    return Config.parsed;
  }
}
)MJ";
  return Src;
}
