//===- AwfyMacro1.cpp - AWFY macro benchmarks: Richards, Json, CD ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// MiniJava ports of three AWFY macro benchmarks. Richards is a faithful
// port of the classic OS-simulation benchmark; Json parses an embedded
// document with the benchmark's recursive-descent parser and DOM; CD is a
// reduced collision-detection kernel preserving the original's aircraft
// motion + spatial-voxel-hashing structure (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "src/workloads/WorkloadSources.h"

using namespace nimg;

std::string workloads::richardsSource() {
  return R"MJ(
class Packet {
  Packet link;
  int id;
  int kind;
  int a1;
  int[] a2;
  Packet(Packet link, int id, int kind) {
    this.link = link;
    this.id = id;
    this.kind = kind;
    a1 = 0;
    a2 = new int[4];
  }
  Packet addTo(Packet queue) {
    link = null;
    if (queue == null) { return this; }
    Packet peek = queue;
    Packet next = peek.link;
    while (next != null) { peek = next; next = peek.link; }
    peek.link = this;
    return queue;
  }
}

abstract class Task {
  Scheduler scheduler;
  abstract Packet run(Packet packet);
}

class IdleTask extends Task {
  int v1;
  int count;
  IdleTask(Scheduler s, int v1, int count) {
    scheduler = s;
    this.v1 = v1;
    this.count = count;
  }
  Packet run(Packet packet) {
    count = count - 1;
    if (count == 0) { return scheduler.holdCurrent(); }
    if ((v1 & 1) == 0) {
      v1 = v1 >> 1;
      return scheduler.release(Rich.DEVICE_A);
    }
    v1 = (v1 >> 1) ^ 53256;
    return scheduler.release(Rich.DEVICE_B);
  }
}

class DeviceTask extends Task {
  Packet v1;
  DeviceTask(Scheduler s) { scheduler = s; v1 = null; }
  Packet run(Packet packet) {
    if (packet == null) {
      if (v1 == null) { return scheduler.suspendCurrent(); }
      Packet v = v1;
      v1 = null;
      return scheduler.queue(v);
    }
    v1 = packet;
    return scheduler.holdCurrent();
  }
}

class WorkerTask extends Task {
  int v1;
  int v2;
  WorkerTask(Scheduler s, int v1, int v2) {
    scheduler = s;
    this.v1 = v1;
    this.v2 = v2;
  }
  Packet run(Packet packet) {
    if (packet == null) { return scheduler.suspendCurrent(); }
    if (v1 == Rich.HANDLER_A) { v1 = Rich.HANDLER_B; }
    else { v1 = Rich.HANDLER_A; }
    packet.id = v1;
    packet.a1 = 0;
    for (int i = 0; i < 4; i = i + 1) {
      v2 = v2 + 1;
      if (v2 > 26) { v2 = 1; }
      packet.a2[i] = v2;
    }
    return scheduler.queue(packet);
  }
}

class HandlerTask extends Task {
  Packet v1;
  Packet v2;
  HandlerTask(Scheduler s) { scheduler = s; v1 = null; v2 = null; }
  Packet run(Packet packet) {
    if (packet != null) {
      if (packet.kind == Rich.KIND_WORK) { v1 = packet.addTo(v1); }
      else { v2 = packet.addTo(v2); }
    }
    if (v1 != null) {
      int count = v1.a1;
      if (count < 4) {
        if (v2 != null) {
          Packet v = v2;
          v2 = v2.link;
          v.a1 = v1.a2[count];
          v1.a1 = count + 1;
          return scheduler.queue(v);
        }
      } else {
        Packet v = v1;
        v1 = v1.link;
        return scheduler.queue(v);
      }
    }
    return scheduler.suspendCurrent();
  }
}

class Tcb {
  Tcb link;
  int id;
  int priority;
  Packet queue;
  int state;
  Task task;

  Tcb(Tcb link, int id, int priority, Packet queue, int state, Task task) {
    this.link = link;
    this.id = id;
    this.priority = priority;
    this.queue = queue;
    this.state = state;
    this.task = task;
  }
  void setRunning() { state = 0; }
  void markAsNotHeld() { state = state & Rich.STATE_NOT_HELD; }
  void markAsHeld() { state = state | Rich.STATE_HELD; }
  boolean isHeldOrSuspended() {
    return (state & Rich.STATE_HELD) != 0 ||
           state == Rich.STATE_SUSPENDED;
  }
  void markAsSuspended() { state = state | Rich.STATE_SUSPENDED; }
  void markAsRunnable() { state = state | Rich.STATE_RUNNABLE; }

  Packet takePacket() {
    Packet p = queue;
    queue = p.link;
    if (queue == null) { state = Rich.STATE_RUNNING; }
    else { state = Rich.STATE_RUNNABLE; }
    return p;
  }
  Packet checkPriorityAdd(Tcb task, Packet packet) {
    if (queue == null) {
      queue = packet;
      markAsRunnable();
      if (priority > task.priority) { return this.asPacketHolder(); }
    } else {
      queue = packet.addTo(queue);
    }
    return task.asPacketHolder();
  }
  Packet asPacketHolder() { return null; }
  Tcb runTcb(Packet packet) { return null; }
  Packet runTask() {
    Packet packet;
    if (isWaitingWithPacket()) { packet = takePacket(); }
    else { packet = null; }
    return task.run(packet);
  }
  boolean isWaitingWithPacket() {
    return state == Rich.STATE_WAIT_PACKET;
  }
}

class Scheduler {
  Tcb[] blocks;
  Tcb list;
  Tcb currentTcb;
  int currentId;
  int queueCount;
  int holdCount;

  Scheduler() {
    blocks = new Tcb[6];
    list = null;
    queueCount = 0;
    holdCount = 0;
  }

  void addTask(int id, int priority, Packet queue, Task task, int state) {
    Tcb tcb = new Tcb(list, id, priority, queue, state, task);
    list = tcb;
    blocks[id] = tcb;
  }

  void schedule() {
    currentTcb = list;
    while (currentTcb != null) {
      if (currentTcb.isHeldOrSuspended()) {
        currentTcb = currentTcb.link;
      } else {
        currentId = currentTcb.id;
        // runTask returns the next tcb (as encoded by the helpers below).
        nextTcb = null;
        currentTcb.runTask();
        if (nextTcb != null) { currentTcb = nextTcb; }
      }
    }
  }

  Tcb nextTcb;

  Packet holdCurrent() {
    holdCount = holdCount + 1;
    currentTcb.markAsHeld();
    nextTcb = currentTcb.link;
    return null;
  }
  Packet suspendCurrent() {
    currentTcb.markAsSuspended();
    nextTcb = currentTcb;
    return null;
  }
  Packet release(int id) {
    Tcb tcb = blocks[id];
    if (tcb == null) { nextTcb = null; return null; }
    tcb.markAsNotHeld();
    if (tcb.priority > currentTcb.priority) { nextTcb = tcb; }
    else { nextTcb = currentTcb; }
    return null;
  }
  Packet queue(Packet packet) {
    Tcb t = blocks[packet.id];
    if (t == null) { nextTcb = null; return null; }
    queueCount = queueCount + 1;
    packet.link = null;
    packet.id = currentId;
    if (t.queue == null) {
      t.queue = packet;
      t.markAsRunnable();
      if (t.priority > currentTcb.priority) { nextTcb = t; }
      else { nextTcb = currentTcb; }
    } else {
      t.queue = packet.addTo(t.queue);
      nextTcb = currentTcb;
    }
    return null;
  }
}

class Rich {
  static int IDLE = 0;
  static int WORKER = 1;
  static int HANDLER_A = 2;
  static int HANDLER_B = 3;
  static int DEVICE_A = 4;
  static int DEVICE_B = 5;

  static int KIND_DEVICE = 0;
  static int KIND_WORK = 1;

  static int STATE_RUNNING = 0;
  static int STATE_RUNNABLE = 1;
  static int STATE_WAIT_PACKET = 3;
  static int STATE_SUSPENDED = 2;
  static int STATE_HELD = 4;
  static int STATE_SUSPENDED_RUNNABLE = 3;
  static int STATE_NOT_HELD = -5;

  static int benchmark() {
    Scheduler s = new Scheduler();
    s.addTask(IDLE, 0, null, new IdleTask(s, 1, 1000), STATE_RUNNING);

    Packet wq = new Packet(null, WORKER, KIND_WORK);
    wq = new Packet(wq, WORKER, KIND_WORK);
    s.addTask(WORKER, 1000, wq, new WorkerTask(s, HANDLER_A, 0),
              STATE_WAIT_PACKET);

    wq = new Packet(null, DEVICE_A, KIND_DEVICE);
    wq = new Packet(wq, DEVICE_A, KIND_DEVICE);
    wq = new Packet(wq, DEVICE_A, KIND_DEVICE);
    s.addTask(HANDLER_A, 2000, wq, new HandlerTask(s), STATE_WAIT_PACKET);

    wq = new Packet(null, DEVICE_B, KIND_DEVICE);
    wq = new Packet(wq, DEVICE_B, KIND_DEVICE);
    wq = new Packet(wq, DEVICE_B, KIND_DEVICE);
    s.addTask(HANDLER_B, 3000, wq, new HandlerTask(s), STATE_WAIT_PACKET);

    s.addTask(DEVICE_A, 4000, null, new DeviceTask(s), STATE_SUSPENDED);
    s.addTask(DEVICE_B, 5000, null, new DeviceTask(s), STATE_SUSPENDED);

    s.schedule();

    return s.queueCount * 100000 + s.holdCount;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = Rich.benchmark();
    Sys.print("Richards: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::jsonSource() {
  return R"MJ(
abstract class JsonValue {
  abstract int weigh();
}
class JsonString extends JsonValue {
  String value;
  JsonString(String v) { value = v; }
  int weigh() { return 1 + Str.length(value); }
}
class JsonNumber extends JsonValue {
  String text;
  JsonNumber(String t) { text = t; }
  int weigh() { return 1; }
}
class JsonLiteral extends JsonValue {
  String name;
  JsonLiteral(String n) { name = n; }
  int weigh() { return 1; }
}
class JsonArray extends JsonValue {
  Vector values;
  JsonArray() { values = new Vector(); }
  void add(JsonValue v) { values.append(v); }
  int weigh() {
    int w = 1;
    for (int i = 0; i < values.size(); i = i + 1) {
      JsonValue v = (JsonValue) values.at(i);
      w = w + v.weigh();
    }
    return w;
  }
}
class JsonObject extends JsonValue {
  Vector names;
  Vector values;
  JsonObject() { names = new Vector(); values = new Vector(); }
  void add(String name, JsonValue v) {
    names.append(new JsonString(name));
    values.append(v);
  }
  int weigh() {
    int w = 1;
    for (int i = 0; i < values.size(); i = i + 1) {
      JsonValue v = (JsonValue) values.at(i);
      w = w + v.weigh();
    }
    return w;
  }
}

class JsonParser {
  String input;
  int index;
  int current;

  JsonParser(String input) {
    this.input = input;
    index = -1;
    current = 0;
    read();
  }

  void read() {
    index = index + 1;
    if (index < Str.length(input)) { current = Str.charAt(input, index); }
    else { current = -1; }
  }

  void skipWhiteSpace() {
    while (current == 32 || current == 10 || current == 9 || current == 13) {
      read();
    }
  }

  boolean readChar(int ch) {
    if (current != ch) { return false; }
    read();
    return true;
  }

  JsonValue parse() {
    skipWhiteSpace();
    JsonValue result = readValue();
    skipWhiteSpace();
    return result;
  }

  JsonValue readValue() {
    if (current == 123) { return readObject(); }    // {
    if (current == 91) { return readArray(); }      // [
    if (current == 34) { return readString(); }     // "
    if (current == 116 || current == 102 || current == 110) {
      return readLiteral();
    }
    return readNumber();
  }

  JsonValue readObject() {
    JsonObject obj = new JsonObject();
    read();
    skipWhiteSpace();
    if (readChar(125)) { return obj; }               // }
    boolean more = true;
    while (more) {
      skipWhiteSpace();
      String name = readStringInternal();
      skipWhiteSpace();
      readChar(58);                                  // :
      skipWhiteSpace();
      obj.add(name, readValue());
      skipWhiteSpace();
      if (!readChar(44)) { more = false; }           // ,
    }
    readChar(125);
    return obj;
  }

  JsonValue readArray() {
    JsonArray arr = new JsonArray();
    read();
    skipWhiteSpace();
    if (readChar(93)) { return arr; }                // ]
    boolean more = true;
    while (more) {
      skipWhiteSpace();
      arr.add(readValue());
      skipWhiteSpace();
      if (!readChar(44)) { more = false; }
    }
    readChar(93);
    return arr;
  }

  JsonValue readString() { return new JsonString(readStringInternal()); }

  String readStringInternal() {
    read();                                          // opening quote
    int start = index;
    while (current != 34 && current != -1) { read(); }
    String s = Str.substring(input, start, index);
    read();                                          // closing quote
    return s;
  }

  JsonValue readLiteral() {
    int start = index;
    while (current >= 97 && current <= 122) { read(); }
    return new JsonLiteral(Str.substring(input, start, index));
  }

  JsonValue readNumber() {
    int start = index;
    if (current == 45) { read(); }                   // -
    while ((current >= 48 && current <= 57) || current == 46 ||
           current == 101 || current == 69 || current == 43 ||
           current == 45) {
      read();
    }
    return new JsonNumber(Str.substring(input, start, index));
  }
}

class JsonBench {
  static String document() {
    return "{\"head\":{\"requestCounter\":4,\"agent\":\"nimage\"},"
           + "\"operations\":[[\"destroy\",\"w54\"],[\"set\",\"w2\","
           + "{\"activeControl\":\"w99\"}],[\"set\",\"w21\",{"
           + "\"customVariant\":\"variant_navigation\",\"styles\":"
           + "[\"BORDER\",\"SHADOW\"],\"bounds\":[0,0,800,600],"
           + "\"children\":[\"w3\",\"w4\",\"w5\",\"w6\",\"w7\"]}],"
           + "[\"create\",\"w339\",\"rwt.widgets.Label\",{\"parent\":"
           + "\"w21\",\"visible\":true,\"enabled\":false,\"count\":17,"
           + "\"ratio\":0.125,\"offset\":-42,\"title\":null,"
           + "\"matrix\":[[1,0,0],[0,1,0],[0,0,1]],\"tags\":["
           + "\"alpha\",\"beta\",\"gamma\",\"delta\"]}],"
           + "[\"listen\",\"w339\",{\"selection\":true,\"fake\":false}]]}";
  }
  static int benchmark() {
    int weight = 0;
    for (int i = 0; i < 5; i = i + 1) {
      JsonParser p = new JsonParser(document());
      JsonValue v = p.parse();
      weight = v.weigh();
    }
    return weight;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = JsonBench.benchmark();
    Sys.print("Json: " + result);
    return result;
  }
}
)MJ";
}

std::string workloads::cdSource() {
  return R"MJ(
class Vector3D {
  double x; double y; double z;
  Vector3D(double x, double y, double z) {
    this.x = x; this.y = y; this.z = z;
  }
  Vector3D minus(Vector3D other) {
    return new Vector3D(x - other.x, y - other.y, z - other.z);
  }
  double squaredLength() { return x * x + y * y + z * z; }
}

class Aircraft {
  int callsign;
  Vector3D position;
  Aircraft(int callsign) {
    this.callsign = callsign;
    position = new Vector3D(0.0, 0.0, 0.0);
  }
  void fly(double time) {
    double t = time + callsign;
    double lane = callsign % 8;
    position = new Vector3D(
        lane * 10.0 + 5.0 * Sys.cos(t / 10.0),
        1000.0 + 4.0 * Sys.sin(t / 10.0 + callsign),
        (time * 2.0) + (callsign % 3));
  }
}

class Collision {
  int first;
  int second;
  Collision(int first, int second) {
    this.first = first;
    this.second = second;
  }
}

class CollisionDetector {
  static double GOOD_VOXEL_SIZE = 10.0;

  static int voxelKey(Vector3D pos) {
    int vx = (int) (pos.x / GOOD_VOXEL_SIZE);
    int vz = (int) (pos.z / GOOD_VOXEL_SIZE);
    return vx * 4096 + vz;
  }

  // Reduces the original's voxel map + RedBlackTree to the som Dictionary:
  // bucket aircraft by voxel, then test pairs within a voxel.
  static Vector handleNewFrame(Aircraft[] fleet) {
    Dictionary voxelMap = new Dictionary(257);
    for (int i = 0; i < fleet.length; i = i + 1) {
      int key = voxelKey(fleet[i].position);
      Vector bucket = (Vector) voxelMap.at(key);
      if (bucket == null) {
        bucket = new Vector();
        voxelMap.atPut(key, bucket);
      }
      bucket.append(fleet[i]);
    }
    Vector collisions = new Vector();
    Vector buckets = voxelMap.values();
    for (int b = 0; b < buckets.size(); b = b + 1) {
      Vector bucket = (Vector) buckets.at(b);
      for (int i = 0; i < bucket.size(); i = i + 1) {
        for (int j = i + 1; j < bucket.size(); j = j + 1) {
          Aircraft one = (Aircraft) bucket.at(i);
          Aircraft two = (Aircraft) bucket.at(j);
          Vector3D diff = one.position.minus(two.position);
          if (diff.squaredLength() < 16.0) {
            collisions.append(new Collision(one.callsign, two.callsign));
          }
        }
      }
    }
    return collisions;
  }
}

class CdBench {
  static int benchmark(int numAircraft, int numFrames) {
    Aircraft[] fleet = new Aircraft[numAircraft];
    for (int i = 0; i < numAircraft; i = i + 1) {
      fleet[i] = new Aircraft(i);
    }
    int actualCollisions = 0;
    for (int frame = 0; frame < numFrames; frame = frame + 1) {
      double time = frame / 10.0;
      for (int i = 0; i < numAircraft; i = i + 1) {
        fleet[i].fly(time);
      }
      Vector collisions = CollisionDetector.handleNewFrame(fleet);
      actualCollisions = actualCollisions + collisions.size();
    }
    return actualCollisions;
  }
}
class Main {
  static int main() {
    Runtime.initialize();
    int result = CdBench.benchmark(40, 20);
    Sys.print("CD: " + result);
    return result;
  }
}
)MJ";
}
