//===- Workloads.h - Evaluation workloads ------------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation workloads, reimplemented in MiniJava (Sec. 7.1):
///
///  - the 14 "Are We Fast Yet?" benchmarks (micro: Bounce, List,
///    Mandelbrot, NBody, Permute, Queens, Sieve, Storage, Towers; macro:
///    CD, DeltaBlue, Havlak, Json, Richards), backed by a som-style core
///    library (Vector, Dictionary, Random) also written in MiniJava. The
///    macro benchmarks are reduced-but-structure-preserving ports (see
///    DESIGN.md);
///  - three synthetic microservice frameworks standing in for micronaut,
///    quarkus, and spring: generated framework-scale class sets with a DI
///    container, route registration, config resources, worker threads, and
///    a hello-world endpoint;
///  - a generated "runtime library" prelude linked into every workload.
///    Only a fraction of it executes, reproducing the conservative
///    points-to analysis's cold code and the metadata-dominated heap
///    snapshot (Sec. 7.2 reports ~4 % of snapshot objects accessed).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_WORKLOADS_WORKLOADS_H
#define NIMG_WORKLOADS_WORKLOADS_H

#include "src/ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace nimg {

struct BenchmarkSpec {
  std::string Name;
  std::vector<std::string> Sources;
  bool Microservice = false;
  /// Embedded resources (name -> contents), included in the snapshot with
  /// reason "Resource".
  std::vector<std::pair<std::string, std::string>> Resources;
};

/// The som-style core library (Vector, Dictionary, Random, util classes).
std::string somLibrarySource();

/// The generated runtime-library prelude: \p Classes library classes plus
/// a Runtime.initialize() entry that the workloads call on startup.
std::string runtimePreludeSource(int Classes = 140);

/// Names of the 14 AWFY benchmarks, in the paper's order.
const std::vector<std::string> &awfyBenchmarkNames();

/// Builds the spec of one AWFY benchmark (asserts on unknown names).
BenchmarkSpec awfyBenchmark(const std::string &Name);

/// Names of the three microservice workloads.
const std::vector<std::string> &microserviceNames();

/// Builds the spec of one microservice hello-world workload.
BenchmarkSpec microserviceBenchmark(const std::string &Name);

/// Compiles a spec into a Program (registers resources too). Returns null
/// and fills \p Errors on failure.
std::unique_ptr<Program> compileBenchmark(const BenchmarkSpec &Spec,
                                          std::vector<std::string> &Errors);

} // namespace nimg

#endif // NIMG_WORKLOADS_WORKLOADS_H
