//===- ExtTsp.cpp - Ext-TSP basic-block ordering --------------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "src/ordering/ExtTsp.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

using namespace nimg;

namespace {

/// Credit of one edge given the source's end offset and the target's
/// start offset in a linear layout.
double edgeCredit(uint64_t SrcEnd, uint64_t DstStart,
                  const ExtTspOptions &Opts) {
  if (DstStart == SrcEnd)
    return Opts.FallthroughWeight;
  if (DstStart > SrcEnd) {
    uint64_t D = DstStart - SrcEnd;
    if (D < Opts.ForwardWindow)
      return Opts.JumpWeight * (1.0 - double(D) / double(Opts.ForwardWindow));
    return 0.0;
  }
  uint64_t D = SrcEnd - DstStart;
  if (D < Opts.BackwardWindow)
    return Opts.JumpWeight * (1.0 - double(D) / double(Opts.BackwardWindow));
  return 0.0;
}

/// Aggregates raw edges: drops self-edges, out-of-range endpoints and
/// zero weights; sums duplicates. Sorted by (From, To) so everything
/// downstream iterates deterministically.
std::vector<ExtTspEdge> cleanEdges(size_t N,
                                   const std::vector<ExtTspEdge> &Edges) {
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> Agg;
  for (const ExtTspEdge &E : Edges) {
    if (E.From == E.To || E.From >= N || E.To >= N || E.Weight == 0)
      continue;
    Agg[{E.From, E.To}] += E.Weight;
  }
  std::vector<ExtTspEdge> Out;
  Out.reserve(Agg.size());
  for (const auto &[Key, W] : Agg)
    Out.push_back({Key.first, Key.second, W});
  return Out;
}

/// One growing chain of blocks. Offsets are the per-block start offsets
/// within the chain; Bytes is the chain's total size.
struct Chain {
  std::vector<uint32_t> Blocks;
  uint64_t Bytes = 0;
  bool Alive = true;
};

} // namespace

double nimg::extTspScore(const std::vector<uint32_t> &Order,
                         const std::vector<uint32_t> &Sizes,
                         const std::vector<ExtTspEdge> &Edges,
                         const ExtTspOptions &Opts) {
  assert(Order.size() == Sizes.size() && "order must cover every block");
  std::vector<uint64_t> Start(Sizes.size(), 0);
  uint64_t Cur = 0;
  for (uint32_t B : Order) {
    Start[B] = Cur;
    Cur += Sizes[B];
  }
  double Score = 0;
  for (const ExtTspEdge &E : Edges) {
    if (E.From == E.To || E.From >= Sizes.size() || E.To >= Sizes.size())
      continue;
    Score += double(E.Weight) *
             edgeCredit(Start[E.From] + Sizes[E.From], Start[E.To], Opts);
  }
  return Score;
}

ExtTspResult nimg::extTspOrder(const std::vector<uint32_t> &Sizes,
                               const std::vector<ExtTspEdge> &Edges,
                               const ExtTspOptions &Opts) {
  const size_t N = Sizes.size();
  ExtTspResult R;
  R.Order.resize(N);
  std::iota(R.Order.begin(), R.Order.end(), 0);
  R.IdentityScore = extTspScore(R.Order, Sizes, Edges, Opts);
  R.Score = R.IdentityScore;
  R.KeptIdentity = true;

  // A 2-block fragment has only one order with the entry pinned, and a
  // pathologically huge fragment is not worth the quadratic pass (real
  // hot fragments are tens of blocks).
  std::vector<ExtTspEdge> Work = cleanEdges(N, Edges);
  if (N < 3 || N > 4096 || Work.empty())
    return R;

  // Every block starts as its own chain; chain id == initial block index.
  std::vector<Chain> Chains(N);
  std::vector<uint32_t> ChainOf(N), OffsetIn(N, 0);
  for (uint32_t B = 0; B < N; ++B) {
    Chains[B].Blocks = {B};
    Chains[B].Bytes = Sizes[B];
    ChainOf[B] = B;
  }
  size_t Merges = 0;

  // Greedy: each round scores every ordered chain pair (A then B) that at
  // least one edge crosses, by the credit its crossing edges would earn if
  // B were appended after A. Merge the best positive pair; stop when no
  // pair gains. Edges within a chain keep their relative offsets under
  // concatenation, so the crossing credit IS the score delta.
  while (true) {
    std::map<std::pair<uint32_t, uint32_t>, double> Gain;
    for (const ExtTspEdge &E : Work) {
      uint32_t CF = ChainOf[E.From], CT = ChainOf[E.To];
      if (CF == CT)
        continue;
      // A = chain of From, B = chain of To: the edge runs forward across
      // the junction (or falls through when From ends A and To starts B).
      {
        uint64_t SrcEnd = OffsetIn[E.From] + Sizes[E.From];
        uint64_t DstStart = Chains[CF].Bytes + OffsetIn[E.To];
        double C = edgeCredit(SrcEnd, DstStart, Opts);
        if (C > 0)
          Gain[{CF, CT}] += double(E.Weight) * C;
      }
      // A = chain of To, B = chain of From: the edge jumps backward.
      {
        uint64_t SrcEnd = Chains[CT].Bytes + OffsetIn[E.From] + Sizes[E.From];
        uint64_t DstStart = OffsetIn[E.To];
        double C = edgeCredit(SrcEnd, DstStart, Opts);
        if (C > 0)
          Gain[{CT, CF}] += double(E.Weight) * C;
      }
    }

    // Deterministic argmax: the std::map iterates pairs in ascending
    // (A, B), so equal gains resolve to the smallest pair.
    double Best = 0;
    std::pair<uint32_t, uint32_t> BestPair{0, 0};
    for (const auto &[Pair, G] : Gain) {
      if (Pair.second == ChainOf[0]) // Nothing may precede the entry chain.
        continue;
      if (G > Best) {
        Best = G;
        BestPair = Pair;
      }
    }
    if (Best <= 0)
      break;

    Chain &A = Chains[BestPair.first];
    Chain &B = Chains[BestPair.second];
    for (uint32_t Blk : B.Blocks) {
      ChainOf[Blk] = BestPair.first;
      OffsetIn[Blk] += A.Bytes;
    }
    A.Blocks.insert(A.Blocks.end(), B.Blocks.begin(), B.Blocks.end());
    A.Bytes += B.Bytes;
    B.Blocks.clear();
    B.Bytes = 0;
    B.Alive = false;
    ++Merges;
  }

  // Final order: the entry chain first, then surviving chains by their
  // head block's index.
  std::vector<uint32_t> Candidate;
  Candidate.reserve(N);
  uint32_t EntryChain = ChainOf[0];
  Candidate.insert(Candidate.end(), Chains[EntryChain].Blocks.begin(),
                   Chains[EntryChain].Blocks.end());
  for (uint32_t C = 0; C < N; ++C)
    if (C != EntryChain && Chains[C].Alive)
      Candidate.insert(Candidate.end(), Chains[C].Blocks.begin(),
                       Chains[C].Blocks.end());
  assert(Candidate.size() == N && Candidate[0] == 0 &&
         "chain concatenation must be an entry-first permutation");

  // Safety net: never emit an order the objective does not strictly
  // prefer over leaving the blocks alone.
  double CandidateScore = extTspScore(Candidate, Sizes, Edges, Opts);
  if (CandidateScore > R.IdentityScore) {
    R.Order = std::move(Candidate);
    R.Score = CandidateScore;
    R.ChainMerges = Merges;
    R.KeptIdentity = false;
  }
  return R;
}
