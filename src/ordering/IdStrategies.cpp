//===- IdStrategies.cpp - Object-identity strategies (Alg. 1-3) -----------===//

#include "src/ordering/IdStrategies.h"

#include "src/support/ByteBuffer.h"
#include "src/support/Murmur3.h"
#include "src/support/ThreadPool.h"

#include <memory>
#include <mutex>
#include <unordered_map>

using namespace nimg;

const char *nimg::heapStrategyName(HeapStrategy S) {
  switch (S) {
  case HeapStrategy::IncrementalId:
    return "incremental id";
  case HeapStrategy::StructuralHash:
    return "structural hash";
  case HeapStrategy::HeapPath:
    return "heap path";
  }
  return "?";
}

namespace {

/// 32-bit type identifier stable across builds: a hash of the fully
/// qualified type name (Alg. 1: "types can be uniquely identified by their
/// fully qualified names even between compilations").
uint32_t typeId32(const std::string &Name) {
  return uint32_t(murmurHash3(Name, /*Seed=*/0x717e5));
}

/// Memoizes typeId32 per class / array type so a snapshot with a million
/// instances of som.Vector hashes "som.Vector" once, not a million times.
/// Used only by the sequential incremental-id pass.
class TypeIdCache {
public:
  TypeIdCache(const Program &P, const Heap &H)
      : H(H), ClassIds(P.numClasses(), Unset), TypeIds(P.numTypes(), Unset) {}

  uint32_t of(CellIdx Cell) {
    const HeapCell &C = H.cell(Cell);
    switch (C.Kind) {
    case CellKind::Object:
      return cached(ClassIds, size_t(C.Class), Cell);
    case CellKind::Array:
      return cached(TypeIds, size_t(C.ArrayType), Cell);
    case CellKind::String:
      if (StringId == Unset)
        StringId = typeId32(H.cellTypeName(Cell));
      return uint32_t(StringId);
    }
    return typeId32(H.cellTypeName(Cell));
  }

private:
  static constexpr uint64_t Unset = ~0ull;

  uint32_t cached(std::vector<uint64_t> &Slots, size_t Key, CellIdx Cell) {
    if (Slots[Key] == Unset)
      Slots[Key] = typeId32(H.cellTypeName(Cell));
    return uint32_t(Slots[Key]);
  }

  const Heap &H;
  std::vector<uint64_t> ClassIds, TypeIds;
  uint64_t StringId = Unset;
};

/// Sharded memo of sub-object encodings keyed by (cell, depth). Shared by
/// the parallel structural-hash pass: many entries reach the same hot
/// sub-objects (interned strings, shared config objects) at the same
/// depth, and the encoding is a pure function of the immutable build heap,
/// so reusing a memoized encoding cannot change any hash — outputs stay
/// byte-identical with or without hits, at any worker count.
class StructuralMemo {
public:
  const std::vector<uint8_t> *lookup(CellIdx Cell, int Depth) const {
    const Shard &S = shard(Cell, Depth);
    std::lock_guard<std::mutex> G(S.Mu);
    auto It = S.Map.find(key(Cell, Depth));
    return It == S.Map.end() ? nullptr : It->second.get();
  }

  /// Inserts a copy of \p Bytes; the first insert for a key wins (races
  /// between workers encoding the same sub-object are benign because every
  /// encoding of a key is identical). Oversized encodings are not kept.
  void insert(CellIdx Cell, int Depth, const std::vector<uint8_t> &Bytes) {
    if (Bytes.size() > MaxEntryBytes)
      return;
    Shard &S = shard(Cell, Depth);
    std::lock_guard<std::mutex> G(S.Mu);
    S.Map.try_emplace(key(Cell, Depth),
                      std::make_unique<std::vector<uint8_t>>(Bytes));
  }

  /// Memoize only depths the 3-bit key field can carry (MaxDepth beyond 7
  /// is never used in practice; deeper calls just encode uncached).
  static bool memoizable(int Depth) { return Depth >= 1 && Depth < 8; }

private:
  static constexpr size_t NumShards = 32;
  static constexpr size_t MaxEntryBytes = 1 << 16;

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, std::unique_ptr<std::vector<uint8_t>>> Map;
  };

  static uint64_t key(CellIdx Cell, int Depth) {
    return (uint64_t(uint32_t(Cell)) << 3) | uint64_t(Depth);
  }
  Shard &shard(CellIdx Cell, int Depth) {
    return Shards[(size_t(uint32_t(Cell)) ^ size_t(Depth)) % NumShards];
  }
  const Shard &shard(CellIdx Cell, int Depth) const {
    return Shards[(size_t(uint32_t(Cell)) ^ size_t(Depth)) % NumShards];
  }

  Shard Shards[NumShards];
};

/// Implements Alg. 2's encodeToBytes over heap cells. A "field entity" is
/// a (declared type, runtime value) pair.
class StructuralEncoder {
public:
  StructuralEncoder(const Program &P, const Heap &H, int MaxDepth,
                    StructuralMemo *Memo = nullptr)
      : P(P), H(H), MaxDepth(MaxDepth), Memo(Memo) {}

  void encodeValue(ByteBuffer &Out, const Value &V, int Depth) {
    if (V.isNull()) {
      Out.appendU8(0);
      return;
    }
    switch (V.Kind) {
    case ValueKind::Int:
      Out.appendString("int");
      Out.appendI64(V.I);
      return;
    case ValueKind::Double:
      Out.appendString("double");
      Out.appendF64(V.D);
      return;
    case ValueKind::Bool:
      Out.appendString("boolean");
      Out.appendU8(V.I ? 1 : 0);
      return;
    case ValueKind::Ref:
      encodeCell(Out, V.asRef(), Depth);
      return;
    case ValueKind::Null:
      Out.appendU8(0);
      return;
    }
  }

  void encodeCell(ByteBuffer &Out, CellIdx Cell, int Depth) {
    // Sub-objects (never the depth-0 root: its encoding is the whole hash
    // input and is used exactly once) go through the shared memo.
    if (Memo && StructuralMemo::memoizable(Depth)) {
      if (const std::vector<uint8_t> *Hit = Memo->lookup(Cell, Depth)) {
        Out.appendBytes(*Hit);
        return;
      }
      ByteBuffer Sub;
      encodeCellUncached(Sub, Cell, Depth);
      Memo->insert(Cell, Depth, Sub.bytes());
      Out.appendBytes(Sub.bytes());
      return;
    }
    encodeCellUncached(Out, Cell, Depth);
  }

private:
  void encodeCellUncached(ByteBuffer &Out, CellIdx Cell, int Depth) {
    const HeapCell &C = H.cell(Cell);
    Out.appendString(H.cellTypeName(Cell));
    bool ShouldRecurse = Depth < MaxDepth;

    if (C.Kind == CellKind::String) {
      Out.appendString(C.Str);
      return;
    }

    if (C.Kind == CellKind::Object) {
      const std::vector<Field> &Layout = P.layout(C.Class);
      for (size_t K = 0; K < C.Slots.size(); ++K) {
        const Value &FieldVal = C.Slots[K];
        if (ShouldRecurse || isPrimitiveOrString(FieldVal)) {
          Out.appendString(P.typeName(Layout[K].Type));
          encodeValue(Out, FieldVal, Depth + 1);
        }
      }
      return;
    }

    // Array.
    const TypeInfo &ArrTy = P.type(C.ArrayType);
    const TypeInfo &ElemTy = P.type(ArrTy.Elem);
    Out.appendString(ElemTy.Name);
    Out.appendU32(uint32_t(C.Slots.size()));
    bool ElemPrimitiveOrString = ElemTy.Kind == TypeKind::Int ||
                                 ElemTy.Kind == TypeKind::Double ||
                                 ElemTy.Kind == TypeKind::Bool ||
                                 ElemTy.Kind == TypeKind::String;
    if (ShouldRecurse || ElemPrimitiveOrString) {
      for (size_t K = 0; K < C.Slots.size(); ++K) {
        Out.appendU32(uint32_t(K));
        encodeValue(Out, C.Slots[K], Depth + 1);
      }
    }
  }

  bool isPrimitiveOrString(const Value &V) const {
    if (V.Kind == ValueKind::Int || V.Kind == ValueKind::Double ||
        V.Kind == ValueKind::Bool)
      return true;
    return V.isRef() && H.cell(V.asRef()).Kind == CellKind::String;
  }

  const Program &P;
  const Heap &H;
  int MaxDepth;
  StructuralMemo *Memo;
};

} // namespace

uint64_t nimg::structuralHashOf(const Program &P, const Heap &H, CellIdx Cell,
                                int MaxDepth) {
  ByteBuffer Bytes;
  StructuralEncoder(P, H, MaxDepth).encodeCell(Bytes, Cell, 0);
  return murmurHash3(Bytes.bytes());
}

uint64_t nimg::heapPathHashOf(const Program &P, const Heap &H,
                              const HeapSnapshot &Snap, int32_t EntryIdx) {
  assert(EntryIdx >= 0 && size_t(EntryIdx) < Snap.Entries.size() &&
         "invalid snapshot entry");
  const SnapshotEntry &E = Snap.Entries[size_t(EntryIdx)];

  ByteBuffer Bytes;
  // Interned-string roots hash their contents: the heap path would be the
  // same for all interned strings (Alg. 3, lines 4-5).
  if (E.IsRoot && E.Reason.Kind == InclusionReasonKind::InternedString) {
    Bytes.appendString(H.cell(E.Cell).Str);
    return murmurHash3(Bytes.bytes());
  }

  int32_t Cur = EntryIdx;
  while (true) {
    const SnapshotEntry &CurE = Snap.Entries[size_t(Cur)];
    Bytes.appendString(H.cellTypeName(CurE.Cell));
    if (CurE.IsRoot) {
      Bytes.appendString(CurE.Reason.str());
      break;
    }
    assert(CurE.ParentEntry >= 0 && "non-root entry without parent");
    const SnapshotEntry &ParentE = Snap.Entries[size_t(CurE.ParentEntry)];
    const HeapCell &ParentCell = H.cell(ParentE.Cell);
    if (ParentCell.Kind == CellKind::Array) {
      Bytes.appendU32(uint32_t(CurE.ParentSlot));
    } else {
      // Field descriptor: owner.name:type.
      const std::vector<Field> &Layout = P.layout(ParentCell.Class);
      const Field &F = Layout[size_t(CurE.ParentSlot)];
      Bytes.appendString(P.classDef(F.Owner).Name + "." + F.Name + ":" +
                         P.typeName(F.Type));
    }
    Cur = CurE.ParentEntry;
  }
  return murmurHash3(Bytes.bytes());
}

IdTable nimg::computeIdTable(const Program &P, const Heap &H,
                             const HeapSnapshot &Snap, int MaxDepth) {
  IdTable T;
  size_t N = Snap.Entries.size();
  T.IncrementalIds.assign(N, 0);
  T.StructuralHashes.assign(N, 0);
  T.HeapPathHashes.assign(N, 0);

  // Alg. 1: per-type counters in encounter order. Inherently sequential
  // (each id depends on how many same-type entries precede it), but cheap
  // once the per-type typeId32 is cached.
  TypeIdCache TypeIds(P, H);
  std::unordered_map<uint32_t, uint32_t> Counters;
  for (size_t I = 0; I < N; ++I) {
    const SnapshotEntry &E = Snap.Entries[I];
    if (E.Elided)
      continue;
    uint32_t TypeId = TypeIds.of(E.Cell);
    uint32_t Count = ++Counters[TypeId];
    T.IncrementalIds[I] = (uint64_t(TypeId) << 32) | Count;
  }

  // Alg. 2/3: each entry's hashes are pure functions of the immutable
  // (P, H, Snap), so disjoint batches run on the shared pool; every chunk
  // writes only its own slots of the two tables (ordered merge by index).
  StructuralMemo Memo;
  sharedPool().parallelFor(N, 32, "id_table",
                           [&](size_t Begin, size_t End, size_t) {
                             StructuralEncoder Enc(P, H, MaxDepth, &Memo);
                             for (size_t I = Begin; I < End; ++I) {
                               const SnapshotEntry &E = Snap.Entries[I];
                               if (E.Elided)
                                 continue;
                               ByteBuffer Bytes;
                               Enc.encodeCell(Bytes, E.Cell, 0);
                               T.StructuralHashes[I] =
                                   murmurHash3(Bytes.bytes());
                               T.HeapPathHashes[I] =
                                   heapPathHashOf(P, H, Snap, int32_t(I));
                             }
                           });
  return T;
}
