//===- IdStrategies.cpp - Object-identity strategies (Alg. 1-3) -----------===//

#include "src/ordering/IdStrategies.h"

#include "src/support/ByteBuffer.h"
#include "src/support/Murmur3.h"

#include <unordered_map>

using namespace nimg;

const char *nimg::heapStrategyName(HeapStrategy S) {
  switch (S) {
  case HeapStrategy::IncrementalId:
    return "incremental id";
  case HeapStrategy::StructuralHash:
    return "structural hash";
  case HeapStrategy::HeapPath:
    return "heap path";
  }
  return "?";
}

namespace {

/// 32-bit type identifier stable across builds: a hash of the fully
/// qualified type name (Alg. 1: "types can be uniquely identified by their
/// fully qualified names even between compilations").
uint32_t typeId32(const std::string &Name) {
  return uint32_t(murmurHash3(Name, /*Seed=*/0x717e5));
}

/// Implements Alg. 2's encodeToBytes over heap cells. A "field entity" is
/// a (declared type, runtime value) pair.
class StructuralEncoder {
public:
  StructuralEncoder(const Program &P, const Heap &H, int MaxDepth)
      : P(P), H(H), MaxDepth(MaxDepth) {}

  void encodeValue(ByteBuffer &Out, const Value &V, int Depth) {
    if (V.isNull()) {
      Out.appendU8(0);
      return;
    }
    switch (V.Kind) {
    case ValueKind::Int:
      Out.appendString("int");
      Out.appendI64(V.I);
      return;
    case ValueKind::Double:
      Out.appendString("double");
      Out.appendF64(V.D);
      return;
    case ValueKind::Bool:
      Out.appendString("boolean");
      Out.appendU8(V.I ? 1 : 0);
      return;
    case ValueKind::Ref:
      encodeCell(Out, V.asRef(), Depth);
      return;
    case ValueKind::Null:
      Out.appendU8(0);
      return;
    }
  }

  void encodeCell(ByteBuffer &Out, CellIdx Cell, int Depth) {
    const HeapCell &C = H.cell(Cell);
    Out.appendString(H.cellTypeName(Cell));
    bool ShouldRecurse = Depth < MaxDepth;

    if (C.Kind == CellKind::String) {
      Out.appendString(C.Str);
      return;
    }

    if (C.Kind == CellKind::Object) {
      const std::vector<Field> &Layout = P.layout(C.Class);
      for (size_t K = 0; K < C.Slots.size(); ++K) {
        const Value &FieldVal = C.Slots[K];
        if (ShouldRecurse || isPrimitiveOrString(FieldVal)) {
          Out.appendString(P.typeName(Layout[K].Type));
          encodeValue(Out, FieldVal, Depth + 1);
        }
      }
      return;
    }

    // Array.
    const TypeInfo &ArrTy = P.type(C.ArrayType);
    const TypeInfo &ElemTy = P.type(ArrTy.Elem);
    Out.appendString(ElemTy.Name);
    Out.appendU32(uint32_t(C.Slots.size()));
    bool ElemPrimitiveOrString = ElemTy.Kind == TypeKind::Int ||
                                 ElemTy.Kind == TypeKind::Double ||
                                 ElemTy.Kind == TypeKind::Bool ||
                                 ElemTy.Kind == TypeKind::String;
    if (ShouldRecurse || ElemPrimitiveOrString) {
      for (size_t K = 0; K < C.Slots.size(); ++K) {
        Out.appendU32(uint32_t(K));
        encodeValue(Out, C.Slots[K], Depth + 1);
      }
    }
  }

private:
  bool isPrimitiveOrString(const Value &V) const {
    if (V.Kind == ValueKind::Int || V.Kind == ValueKind::Double ||
        V.Kind == ValueKind::Bool)
      return true;
    return V.isRef() && H.cell(V.asRef()).Kind == CellKind::String;
  }

  const Program &P;
  const Heap &H;
  int MaxDepth;
};

} // namespace

uint64_t nimg::structuralHashOf(const Program &P, const Heap &H, CellIdx Cell,
                                int MaxDepth) {
  ByteBuffer Bytes;
  StructuralEncoder(P, H, MaxDepth).encodeCell(Bytes, Cell, 0);
  return murmurHash3(Bytes.bytes());
}

uint64_t nimg::heapPathHashOf(const Program &P, const Heap &H,
                              const HeapSnapshot &Snap, int32_t EntryIdx) {
  assert(EntryIdx >= 0 && size_t(EntryIdx) < Snap.Entries.size() &&
         "invalid snapshot entry");
  const SnapshotEntry &E = Snap.Entries[size_t(EntryIdx)];

  ByteBuffer Bytes;
  // Interned-string roots hash their contents: the heap path would be the
  // same for all interned strings (Alg. 3, lines 4-5).
  if (E.IsRoot && E.Reason.Kind == InclusionReasonKind::InternedString) {
    Bytes.appendString(H.cell(E.Cell).Str);
    return murmurHash3(Bytes.bytes());
  }

  int32_t Cur = EntryIdx;
  while (true) {
    const SnapshotEntry &CurE = Snap.Entries[size_t(Cur)];
    Bytes.appendString(H.cellTypeName(CurE.Cell));
    if (CurE.IsRoot) {
      Bytes.appendString(CurE.Reason.str());
      break;
    }
    assert(CurE.ParentEntry >= 0 && "non-root entry without parent");
    const SnapshotEntry &ParentE = Snap.Entries[size_t(CurE.ParentEntry)];
    const HeapCell &ParentCell = H.cell(ParentE.Cell);
    if (ParentCell.Kind == CellKind::Array) {
      Bytes.appendU32(uint32_t(CurE.ParentSlot));
    } else {
      // Field descriptor: owner.name:type.
      const std::vector<Field> &Layout = P.layout(ParentCell.Class);
      const Field &F = Layout[size_t(CurE.ParentSlot)];
      Bytes.appendString(P.classDef(F.Owner).Name + "." + F.Name + ":" +
                         P.typeName(F.Type));
    }
    Cur = CurE.ParentEntry;
  }
  return murmurHash3(Bytes.bytes());
}

IdTable nimg::computeIdTable(const Program &P, const Heap &H,
                             const HeapSnapshot &Snap, int MaxDepth) {
  IdTable T;
  size_t N = Snap.Entries.size();
  T.IncrementalIds.assign(N, 0);
  T.StructuralHashes.assign(N, 0);
  T.HeapPathHashes.assign(N, 0);

  // Alg. 1: per-type counters in encounter order.
  std::unordered_map<uint32_t, uint32_t> Counters;
  for (size_t I = 0; I < N; ++I) {
    const SnapshotEntry &E = Snap.Entries[I];
    if (E.Elided)
      continue;
    uint32_t TypeId = typeId32(H.cellTypeName(E.Cell));
    uint32_t Count = ++Counters[TypeId];
    T.IncrementalIds[I] = (uint64_t(TypeId) << 32) | Count;
    T.StructuralHashes[I] = structuralHashOf(P, H, E.Cell, MaxDepth);
    T.HeapPathHashes[I] = heapPathHashOf(P, H, Snap, int32_t(I));
  }
  return T;
}
