//===- ExtTsp.h - Ext-TSP basic-block ordering ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ext-TSP basic-block ordering objective of Newell & Pupyrev,
/// "Improved Basic Block Reordering" (arXiv:1809.04676), applied inside
/// the hot fragment a split CU keeps resident. Classic TSP layout only
/// credits fall-through edges; ext-TSP additionally gives partial credit
/// to short forward and backward jumps, which matches how real
/// front-ends fetch: a near jump inside the same cache line or page is
/// almost as cheap as a fall-through, a far one is not.
///
/// The objective for a linear order with byte offsets is
///
///   score = sum over CFG edges (s -> t, weight w) of  w * credit(d)
///
///   credit(d) = FallthroughWeight                    if d == 0
///             = JumpWeight * (1 - d / ForwardWindow)  if 0 < d < ForwardWindow
///             = JumpWeight * (1 - d / BackwardWindow) if backward,
///                                                        d < BackwardWindow
///             = 0                                     otherwise
///
/// where d is the byte distance from the end of s to the start of t
/// (d == 0 means t immediately follows s: a fall-through).
///
/// The solver is the greedy chain-merging heuristic from the paper: every
/// block starts as its own chain, and the pass repeatedly merges the
/// chain pair with the highest score gain until no merge gains. The
/// entry block is pinned first (chains are only ever appended after the
/// entry chain), tie-breaks are by block index, and the emitted order is
/// compared against the identity order as a safety net — the result is
/// never worse than leaving the blocks alone. Pure, sequential and
/// deterministic: the order depends only on the inputs, never on worker
/// count or iteration order of any hash map.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_ORDERING_EXTTSP_H
#define NIMG_ORDERING_EXTTSP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nimg {

/// Knobs of the ext-TSP objective. Defaults follow the paper's tuned
/// values (fall-through 1.0, jumps 0.1) with windows scaled to the
/// modeled image geometry: 1024 bytes forward (a quarter of the 4 KiB
/// page the paging simulator faults in) and 640 backward (backward jumps
/// are loop edges; the predictor window is tighter).
struct ExtTspOptions {
  double FallthroughWeight = 1.0;
  double JumpWeight = 0.1;
  uint32_t ForwardWindow = 1024;
  uint32_t BackwardWindow = 640;
};

/// One weighted CFG edge between local block indices of the fragment
/// being ordered (indices into the Sizes array, NOT global BlockIds).
struct ExtTspEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  uint64_t Weight = 0;
};

/// What the greedy pass did for one fragment.
struct ExtTspResult {
  /// Block indices in emitted order; a permutation of [0, N) with
  /// Order[0] == 0 (the fragment entry stays first).
  std::vector<uint32_t> Order;
  double IdentityScore = 0; ///< Objective of the index order.
  double Score = 0;         ///< Objective of the emitted order (>= identity).
  size_t ChainMerges = 0;   ///< Accepted chain merges.
  bool KeptIdentity = false; ///< Greedy did not beat the index order.
};

/// Scores a linear \p Order of blocks with byte \p Sizes under the
/// ext-TSP objective for the given weighted \p Edges. \p Order must be a
/// permutation of [0, Sizes.size()).
double extTspScore(const std::vector<uint32_t> &Order,
                   const std::vector<uint32_t> &Sizes,
                   const std::vector<ExtTspEdge> &Edges,
                   const ExtTspOptions &Opts = {});

/// Orders \p Sizes.size() blocks by greedy ext-TSP chain merging over
/// \p Edges. Block 0 is pinned first. Self-edges and edges with an
/// out-of-range endpoint are ignored. Returns the identity order (and
/// sets KeptIdentity) when there are fewer than three blocks, no usable
/// edges, or the greedy result does not strictly beat the index order.
ExtTspResult extTspOrder(const std::vector<uint32_t> &Sizes,
                         const std::vector<ExtTspEdge> &Edges,
                         const ExtTspOptions &Opts = {});

} // namespace nimg

#endif // NIMG_ORDERING_EXTTSP_H
