//===- IdStrategies.h - Object-identity strategies (Alg. 1-3) --*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three 64-bit object-identity strategies of Sec. 5, used to match
/// heap-snapshot objects between the profiling build and the optimized
/// build:
///
///  - *incremental id* (Alg. 1): per-type counters in encounter order;
///    the high 32 bits identify the type, the low 32 bits count instances
///    of that type, so divergence only perturbs ids within one type.
///  - *structural hash* (Alg. 2): MurmurHash3 over a recursive,
///    depth-bounded byte encoding of the object's type, fields, and
///    neighbours (MAX_DEPTH trades collisions against cross-build
///    matchability; the paper settles on 2).
///  - *heap path* (Alg. 3): MurmurHash3 over the first path from a heap
///    root to the object plus the root's heap-inclusion reason; interned
///    strings hash their contents instead.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_ORDERING_IDSTRATEGIES_H
#define NIMG_ORDERING_IDSTRATEGIES_H

#include "src/heap/Snapshot.h"

#include <cstdint>
#include <vector>

namespace nimg {

enum class HeapStrategy : uint8_t { IncrementalId, StructuralHash, HeapPath };

const char *heapStrategyName(HeapStrategy S);

/// Default MAX_DEPTH for the structural hash (Sec. 7.1: "we set MAX_DEPTH
/// to 2, experimentally determined as a good trade-off").
inline constexpr int DefaultStructuralMaxDepth = 2;

/// Identity tables for every snapshot entry (elided entries get id 0: they
/// are not stored in the image and are never matched).
struct IdTable {
  std::vector<uint64_t> IncrementalIds;
  std::vector<uint64_t> StructuralHashes;
  std::vector<uint64_t> HeapPathHashes;

  const std::vector<uint64_t> &of(HeapStrategy S) const {
    switch (S) {
    case HeapStrategy::IncrementalId:
      return IncrementalIds;
    case HeapStrategy::StructuralHash:
      return StructuralHashes;
    case HeapStrategy::HeapPath:
      return HeapPathHashes;
    }
    return IncrementalIds;
  }
};

/// Computes Alg. 2's structural hash of one cell.
uint64_t structuralHashOf(const Program &P, const Heap &H, CellIdx Cell,
                          int MaxDepth = DefaultStructuralMaxDepth);

/// Computes Alg. 3's heap-path hash of one snapshot entry.
uint64_t heapPathHashOf(const Program &P, const Heap &H,
                        const HeapSnapshot &Snap, int32_t EntryIdx);

/// Computes all three identity tables for a snapshot. Incremental ids are
/// assigned in entry (traversal) order, matching Alg. 1's "object
/// encounter order when traversing the heap object graph".
IdTable computeIdTable(const Program &P, const Heap &H,
                       const HeapSnapshot &Snap,
                       int MaxDepth = DefaultStructuralMaxDepth);

} // namespace nimg

#endif // NIMG_ORDERING_IDSTRATEGIES_H
