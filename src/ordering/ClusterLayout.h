//===- ClusterLayout.h - C3-style call-graph cluster ordering ---*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cluster` code-ordering strategy: a deterministic C3-style greedy
/// pass over the dynamic CU transition graph (src/profiling/CallGraph.h).
/// Edges are processed by descending weight; merging appends the callee's
/// cluster after the caller's (caller precedes callee), ties broken by the
/// endpoints' first-seen order, and a cluster stops growing at a
/// page-budget knob so one hot chain cannot swallow the whole section.
/// The result is emitted as a regular cu-mode CodeProfile, so the builder
/// ingests it through the exact same CSV interchange and validation path
/// as the paper's cu/method profiles.
///
/// Degradation: an empty or malformed transition graph (no edges, wrong
/// trace mode) falls back to plain first-seen (cu) ordering and records a
/// ProfileError::EmptyTransitionGraph issue — never a failed build.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_ORDERING_CLUSTERLAYOUT_H
#define NIMG_ORDERING_CLUSTERLAYOUT_H

#include "src/compiler/Inliner.h"
#include "src/profiling/Analyses.h"
#include "src/profiling/CallGraph.h"

#include <cstdint>
#include <vector>

namespace nimg {

/// Default cluster size cap: one readahead cluster of the paging simulator
/// (4 pages x 4 KiB) — the unit the device fetches on a fault, so packing
/// beyond it buys nothing on the first touch.
inline constexpr uint32_t DefaultClusterPageBudget = 16384;

struct ClusterOptions {
  /// Maximum byte size (sum of member CU code sizes) a cluster may reach
  /// through merging. 0 means unlimited.
  uint32_t PageBudgetBytes = DefaultClusterPageBudget;
  /// Multi-size page budget (--huge-pages): number of 2 MiB huge pages the
  /// image will map at the front of `.text`. When nonzero, the solver runs
  /// a packing phase after the greedy merges: clusters are promoted into
  /// the huge region in startup (MinRank) order while they fit — a cluster
  /// too big for the remaining huge budget is deferred behind later,
  /// smaller promotions (first-fit packing, minimal internal
  /// fragmentation) and tails onto 4 KiB pages. With every executed
  /// cluster fitting the budget, the emitted order is the identity of the
  /// single-size pass.
  uint32_t HugePages = 0;
};

/// What the greedy pass did; surfaced through nimg.order.cluster.* too.
struct ClusterStats {
  size_t Nodes = 0;            ///< CU roots in the graph.
  size_t Edges = 0;            ///< Aggregated transition edges.
  size_t Merges = 0;           ///< Accepted cluster merges.
  size_t BudgetRejections = 0; ///< Merges refused by the page budget.
  size_t Clusters = 0;         ///< Final cluster count.
  bool FellBack = false;       ///< Empty graph: emitted cu ordering.
  // Multi-size packing phase (all zero when ClusterOptions::HugePages is 0).
  size_t HugePromotedClusters = 0; ///< Clusters packed into the huge region.
  size_t HugeDeferredClusters = 0; ///< Clusters too big for the remaining
                                   ///< huge budget, tailed onto 4 KiB pages.
  uint64_t HugePackedBytes = 0;    ///< Code bytes promoted into the region.
  /// Huge pages the promoted bytes actually fill (ceil). Less than the
  /// requested budget => HugeBudgetUnfillable degradation.
  uint32_t HugePagesJustified = 0;
  bool HugeBudgetUnfillable = false;
  /// Order-sensitive fold of every promotion decision; the builder mixes
  /// this into the image's DecisionFingerprint so multi-size packing is
  /// part of the build identity. 0 when the packing phase did not run.
  uint64_t PackFingerprint = 0;
};

/// Runs the greedy clustering over \p G and returns CU root methods in
/// .text placement order (a permutation of G.FirstSeen). CU byte sizes
/// come from \p CP (the profiling build's compiled program); a root
/// missing from \p CP counts as size 0. Pure and sequential — determinism
/// does not depend on the worker count.
std::vector<MethodId> clusterLayout(const CuTransitionGraph &G,
                                    const CompiledProgram &CP,
                                    const ClusterOptions &Opts,
                                    ClusterStats *Stats = nullptr);

/// End-to-end cluster analysis: extracts the transition graph from a
/// CuOrder-mode \p Capture, clusters it, and emits the ordering as a
/// cu-mode CodeProfile. An empty/malformed graph degrades to first-seen
/// (cu) ordering, appending a ProfileError::EmptyTransitionGraph issue to
/// \p Issues. \p Stats reports trace salvage, \p LayoutStats the greedy
/// pass (both optional).
CodeProfile analyzeClusterOrder(const Program &P, const TraceCapture &Capture,
                                const CompiledProgram &CP,
                                const ClusterOptions &Opts = {},
                                SalvageStats *Stats = nullptr,
                                std::vector<ProfileIssue> *Issues = nullptr,
                                ClusterStats *LayoutStats = nullptr);

} // namespace nimg

#endif // NIMG_ORDERING_CLUSTERLAYOUT_H
