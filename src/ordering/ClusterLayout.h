//===- ClusterLayout.h - C3-style call-graph cluster ordering ---*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cluster` code-ordering strategy: a deterministic C3-style greedy
/// pass over the dynamic CU transition graph (src/profiling/CallGraph.h).
/// Edges are processed by descending weight; merging appends the callee's
/// cluster after the caller's (caller precedes callee), ties broken by the
/// endpoints' first-seen order, and a cluster stops growing at a
/// page-budget knob so one hot chain cannot swallow the whole section.
/// The result is emitted as a regular cu-mode CodeProfile, so the builder
/// ingests it through the exact same CSV interchange and validation path
/// as the paper's cu/method profiles.
///
/// Degradation: an empty or malformed transition graph (no edges, wrong
/// trace mode) falls back to plain first-seen (cu) ordering and records a
/// ProfileError::EmptyTransitionGraph issue — never a failed build.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_ORDERING_CLUSTERLAYOUT_H
#define NIMG_ORDERING_CLUSTERLAYOUT_H

#include "src/compiler/Inliner.h"
#include "src/profiling/Analyses.h"
#include "src/profiling/CallGraph.h"

#include <cstdint>
#include <vector>

namespace nimg {

/// Default cluster size cap: one readahead cluster of the paging simulator
/// (4 pages x 4 KiB) — the unit the device fetches on a fault, so packing
/// beyond it buys nothing on the first touch.
inline constexpr uint32_t DefaultClusterPageBudget = 16384;

struct ClusterOptions {
  /// Maximum byte size (sum of member CU code sizes) a cluster may reach
  /// through merging. 0 means unlimited.
  uint32_t PageBudgetBytes = DefaultClusterPageBudget;
};

/// What the greedy pass did; surfaced through nimg.order.cluster.* too.
struct ClusterStats {
  size_t Nodes = 0;            ///< CU roots in the graph.
  size_t Edges = 0;            ///< Aggregated transition edges.
  size_t Merges = 0;           ///< Accepted cluster merges.
  size_t BudgetRejections = 0; ///< Merges refused by the page budget.
  size_t Clusters = 0;         ///< Final cluster count.
  bool FellBack = false;       ///< Empty graph: emitted cu ordering.
};

/// Runs the greedy clustering over \p G and returns CU root methods in
/// .text placement order (a permutation of G.FirstSeen). CU byte sizes
/// come from \p CP (the profiling build's compiled program); a root
/// missing from \p CP counts as size 0. Pure and sequential — determinism
/// does not depend on the worker count.
std::vector<MethodId> clusterLayout(const CuTransitionGraph &G,
                                    const CompiledProgram &CP,
                                    const ClusterOptions &Opts,
                                    ClusterStats *Stats = nullptr);

/// End-to-end cluster analysis: extracts the transition graph from a
/// CuOrder-mode \p Capture, clusters it, and emits the ordering as a
/// cu-mode CodeProfile. An empty/malformed graph degrades to first-seen
/// (cu) ordering, appending a ProfileError::EmptyTransitionGraph issue to
/// \p Issues. \p Stats reports trace salvage, \p LayoutStats the greedy
/// pass (both optional).
CodeProfile analyzeClusterOrder(const Program &P, const TraceCapture &Capture,
                                const CompiledProgram &CP,
                                const ClusterOptions &Opts = {},
                                SalvageStats *Stats = nullptr,
                                std::vector<ProfileIssue> *Issues = nullptr,
                                ClusterStats *LayoutStats = nullptr);

} // namespace nimg

#endif // NIMG_ORDERING_CLUSTERLAYOUT_H
