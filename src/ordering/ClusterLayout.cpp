//===- ClusterLayout.cpp - C3-style call-graph cluster ordering -------------===//

#include "src/ordering/ClusterLayout.h"

#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"
#include "src/runtime/CostModel.h"
#include "src/support/SplitMix64.h"

#include <algorithm>
#include <string>
#include <unordered_map>

using namespace nimg;

namespace {

/// Union-find over graph nodes with the per-cluster state the greedy pass
/// needs: the member sequence (in placement order) and the byte size.
/// Sequences are intrusive singly-linked chains through NextNode — a merge
/// is one O(1) pointer splice with no per-merge allocation or element
/// copying (the old per-rep vectors re-copied every absorbed member).
struct ClusterSet {
  static constexpr size_t Npos = size_t(-1);

  explicit ClusterSet(size_t N)
      : Parent(N), Bytes(N, 0), NextNode(N, Npos), Head(N), Tail(N),
        MinRank(N) {
    for (size_t I = 0; I < N; ++I) {
      Parent[I] = I;
      Head[I] = Tail[I] = I;
      MinRank[I] = I;
    }
  }

  size_t find(size_t I) {
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]];
      I = Parent[I];
    }
    return I;
  }

  /// Appends cluster \p Callee after cluster \p Caller (both reps).
  void merge(size_t Caller, size_t Callee) {
    Parent[Callee] = Caller;
    Bytes[Caller] += Bytes[Callee];
    NextNode[Tail[Caller]] = Head[Callee];
    Tail[Caller] = Tail[Callee];
    MinRank[Caller] = std::min(MinRank[Caller], MinRank[Callee]);
  }

  std::vector<size_t> Parent;
  std::vector<uint64_t> Bytes;
  std::vector<size_t> NextNode; ///< Chain link; Npos terminates.
  std::vector<size_t> Head, Tail; ///< Chain ends, valid on reps only.
  std::vector<size_t> MinRank; ///< Earliest first-seen rank of any member.
};

} // namespace

std::vector<MethodId> nimg::clusterLayout(const CuTransitionGraph &G,
                                          const CompiledProgram &CP,
                                          const ClusterOptions &Opts,
                                          ClusterStats *StatsOut) {
  NIMG_SPAN("order", "clusterLayout");
  ClusterStats Stats;
  Stats.Nodes = G.FirstSeen.size();

  // Nodes are addressed by first-seen rank: the deterministic tie-break
  // key and the fallback placement order in one.
  std::unordered_map<MethodId, size_t> Rank;
  Rank.reserve(G.FirstSeen.size());
  for (size_t I = 0; I < G.FirstSeen.size(); ++I)
    Rank.emplace(G.FirstSeen[I], I);

  ClusterSet Set(G.FirstSeen.size());
  for (size_t I = 0; I < G.FirstSeen.size(); ++I) {
    MethodId Root = G.FirstSeen[I];
    int32_t Cu = size_t(Root) < CP.CuOfMethod.size()
                     ? CP.CuOfMethod[size_t(Root)]
                     : -1;
    Set.Bytes[I] = Cu >= 0 ? CP.CUs[size_t(Cu)].CodeSize : 0;
  }

  // Greedy C3: heaviest edges first; equal weights resolve by the
  // endpoints' first-seen ranks, so the pass is a pure function of the
  // graph.
  struct RankedEdge {
    uint64_t Weight;
    size_t From, To;
  };
  std::vector<RankedEdge> Edges;
  Edges.reserve(G.Edges.size());
  for (const CuTransitionGraph::Edge &E : G.Edges) {
    auto F = Rank.find(E.From), T = Rank.find(E.To);
    if (F == Rank.end() || T == Rank.end() || F->second == T->second)
      continue; // Defensive: every traced endpoint is in FirstSeen.
    Edges.push_back({E.Weight, F->second, T->second});
  }
  Stats.Edges = Edges.size();
  std::sort(Edges.begin(), Edges.end(),
            [](const RankedEdge &A, const RankedEdge &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.From != B.From)
                return A.From < B.From;
              return A.To < B.To;
            });

  for (const RankedEdge &E : Edges) {
    size_t Caller = Set.find(E.From);
    size_t Callee = Set.find(E.To);
    if (Caller == Callee)
      continue;
    if (Opts.PageBudgetBytes != 0 &&
        Set.Bytes[Caller] + Set.Bytes[Callee] > Opts.PageBudgetBytes) {
      ++Stats.BudgetRejections;
      continue;
    }
    Set.merge(Caller, Callee);
    ++Stats.Merges;
  }

  // Clusters are placed by the earliest first-seen rank of any member:
  // startup order between clusters, call-graph affinity within one.
  std::vector<size_t> Reps;
  for (size_t I = 0; I < G.FirstSeen.size(); ++I)
    if (Set.find(I) == I)
      Reps.push_back(I);
  std::sort(Reps.begin(), Reps.end(),
            [&](size_t A, size_t B) { return Set.MinRank[A] < Set.MinRank[B]; });
  Stats.Clusters = Reps.size();

  // Multi-size packing (--huge-pages): the front of .text is mapped at
  // 2 MiB, so the hottest clusters should fill those pages with as little
  // internal fragmentation as possible. Walk clusters in startup (MinRank)
  // order and promote each while it fits the remaining huge byte budget; a
  // cluster too big for the hole is deferred behind later, smaller
  // promotions and tails onto 4 KiB pages. When every cluster fits — the
  // common case, since the page budget caps cluster size well under
  // 2 MiB — the permutation is the identity, so a zero budget and a
  // saturated one emit the same order. The fingerprint folds every
  // (rank, promoted) decision so packing is part of the build identity.
  if (Opts.HugePages > 0 && !Reps.empty()) {
    const uint64_t Budget = uint64_t(Opts.HugePages) * HugePageBytes;
    std::vector<size_t> Promoted, Deferred;
    Promoted.reserve(Reps.size());
    uint64_t Fp = mix64(0x68756765u /* "huge" */, Opts.HugePages);
    for (size_t Rep : Reps) {
      bool Fits = Stats.HugePackedBytes + Set.Bytes[Rep] <= Budget;
      if (Fits) {
        Promoted.push_back(Rep);
        Stats.HugePackedBytes += Set.Bytes[Rep];
      } else {
        Deferred.push_back(Rep);
      }
      Fp = mix64(Fp, uint64_t(Set.MinRank[Rep]) << 1 | uint64_t(Fits));
    }
    Stats.HugePromotedClusters = Promoted.size();
    Stats.HugeDeferredClusters = Deferred.size();
    Stats.HugePagesJustified =
        uint32_t((Stats.HugePackedBytes + HugePageBytes - 1) / HugePageBytes);
    Stats.HugeBudgetUnfillable = Stats.HugePagesJustified < Opts.HugePages;
    Stats.PackFingerprint = Fp;
    Reps = std::move(Promoted);
    Reps.insert(Reps.end(), Deferred.begin(), Deferred.end());
    NIMG_COUNTER_ADD("nimg.order.cluster.huge_promoted",
                     Stats.HugePromotedClusters);
    NIMG_COUNTER_ADD("nimg.order.cluster.huge_deferred",
                     Stats.HugeDeferredClusters);
  }

  std::vector<MethodId> Order;
  Order.reserve(G.FirstSeen.size());
  for (size_t Rep : Reps)
    for (size_t Node = Set.Head[Rep]; Node != ClusterSet::Npos;
         Node = Set.NextNode[Node])
      Order.push_back(G.FirstSeen[Node]);

  NIMG_COUNTER_ADD("nimg.order.cluster.merges", Stats.Merges);
  NIMG_COUNTER_ADD("nimg.order.cluster.budget_rejections",
                   Stats.BudgetRejections);
  NIMG_COUNTER_ADD("nimg.order.cluster.clusters", Stats.Clusters);
  if (StatsOut)
    *StatsOut = Stats;
  return Order;
}

CodeProfile nimg::analyzeClusterOrder(const Program &P,
                                      const TraceCapture &Capture,
                                      const CompiledProgram &CP,
                                      const ClusterOptions &Opts,
                                      SalvageStats *Stats,
                                      std::vector<ProfileIssue> *Issues,
                                      ClusterStats *LayoutStats) {
  NIMG_COUNTER_ADD("nimg.order.cluster.runs", 1);
  CodeProfile Out;
  // Cluster ordering consumes the same CuOrder-mode trace as cu ordering
  // and is ingested by the builder under the same cu-mode header.
  Out.Header.Mode = TraceMode::CuOrder;

  CuTransitionGraph G = analyzeCuTransitions(P, Capture, Stats);

  std::vector<MethodId> Order;
  ClusterStats LStats;
  if (G.empty()) {
    // No transitions to cluster (empty capture, single CU, or a capture
    // in the wrong mode): fall back to plain first-seen order, which is
    // exactly the cu ordering, and say so through the typed diagnostic.
    Order = G.FirstSeen;
    LStats.Nodes = G.FirstSeen.size();
    LStats.Clusters = G.FirstSeen.size();
    LStats.FellBack = true;
    if (Issues)
      Issues->push_back({ProfileError::EmptyTransitionGraph, 0,
                         "transition graph has no edges; emitted cu "
                         "ordering instead"});
    NIMG_COUNTER_ADD("nimg.order.cluster.fallback", 1);
  } else {
    Order = clusterLayout(G, CP, Opts, &LStats);
    if (LStats.HugeBudgetUnfillable && Issues)
      Issues->push_back({ProfileError::HugeBudgetUnfillable, 0,
                         "hot clusters fill only " +
                             std::to_string(LStats.HugePagesJustified) +
                             " of " + std::to_string(Opts.HugePages) +
                             " requested huge pages; remainder stays on "
                             "4 KiB pages"});
  }

  Out.Sigs.reserve(Order.size());
  for (MethodId M : Order)
    Out.Sigs.push_back(P.method(M).Sig);
  if (LayoutStats)
    *LayoutStats = LStats;
  return Out;
}
