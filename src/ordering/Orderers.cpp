//===- Orderers.cpp - Code and heap ordering steps --------------------------===//

#include "src/ordering/Orderers.h"

#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"

#include <algorithm>
#include <unordered_map>

using namespace nimg;

const char *nimg::codeStrategyName(CodeStrategy S) {
  switch (S) {
  case CodeStrategy::None:
    return "baseline";
  case CodeStrategy::CuOrder:
    return "cu";
  case CodeStrategy::MethodOrder:
    return "method";
  case CodeStrategy::Cluster:
    return "cluster";
  }
  return "?";
}

std::vector<int32_t> nimg::orderCusWithProfile(const Program &P,
                                               const CompiledProgram &CP,
                                               const CodeProfile &Profile,
                                               CodeStrategy Strategy) {
  bool MethodBased = Strategy == CodeStrategy::MethodOrder;
  NIMG_SPAN_NAMED(OrderSpan, "order", "orderCusWithProfile");
  NIMG_SPAN_ARG(OrderSpan, "based_on", codeStrategyName(Strategy));
  NIMG_COUNTER_ADD("nimg.order.code.runs", 1);
  NIMG_COUNTER_ADD("nimg.order.code.profile_sigs", Profile.Sigs.size());

  std::unordered_map<std::string, size_t> Rank;
  for (size_t I = 0; I < Profile.Sigs.size(); ++I)
    Rank.emplace(Profile.Sigs[I], I);

  const size_t Unranked = ~size_t(0);
  auto RankOf = [&](MethodId M) {
    auto It = Rank.find(P.method(M).Sig);
    return It == Rank.end() ? Unranked : It->second;
  };

  std::vector<size_t> Key(CP.CUs.size(), Unranked);
  for (size_t Cu = 0; Cu < CP.CUs.size(); ++Cu) {
    if (!MethodBased) {
      Key[Cu] = RankOf(CP.CUs[Cu].Root);
      continue;
    }
    // Method ordering: a CU is as early as the earliest-executed method it
    // contains (root or inlined copy).
    size_t Best = Unranked;
    for (const InlineCopy &Copy : CP.CUs[Cu].Copies)
      Best = std::min(Best, RankOf(Copy.Method));
    Key[Cu] = Best;
  }

  std::vector<int32_t> Order(CP.CUs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = int32_t(I);
  // CUs are created in the default (alphabetical) order, so a stable sort
  // keeps unprofiled CUs in their default relative order.
  std::stable_sort(Order.begin(), Order.end(), [&](int32_t A, int32_t B) {
    return Key[size_t(A)] < Key[size_t(B)];
  });
  return Order;
}

std::vector<int32_t> nimg::orderObjectsWithProfile(const HeapSnapshot &Snap,
                                                   const IdTable &Ids,
                                                   HeapStrategy Strategy,
                                                   const HeapProfile &Profile,
                                                   HeapMatchStats *Stats) {
  NIMG_SPAN_NAMED(OrderSpan, "order", "orderObjectsWithProfile");
  NIMG_SPAN_ARG(OrderSpan, "strategy", heapStrategyName(Strategy));
  NIMG_COUNTER_ADD("nimg.order.heap.runs", 1);

  const std::vector<uint64_t> &Table = Ids.of(Strategy);
  assert(Table.size() == Snap.Entries.size() &&
         "identity table does not match the snapshot");

  // Id -> stored entries bearing it, in default order.
  std::unordered_map<uint64_t, std::vector<int32_t>> ByIdRev;
  for (size_t I = Snap.Entries.size(); I > 0; --I) {
    size_t Idx = I - 1;
    if (!Snap.Entries[Idx].Elided)
      ByIdRev[Table[Idx]].push_back(int32_t(Idx));
  }
  // Reversed push order means vector backs hold the earliest entries; pop
  // from the back to consume in default order.

  std::vector<int32_t> Hot;
  std::vector<bool> Placed(Snap.Entries.size(), false);
  size_t Matched = 0;
  for (uint64_t Id : Profile.Ids) {
    auto It = ByIdRev.find(Id);
    if (It == ByIdRev.end() || It->second.empty())
      continue;
    int32_t Entry = It->second.back();
    It->second.pop_back();
    Hot.push_back(Entry);
    Placed[size_t(Entry)] = true;
    ++Matched;
  }

  std::vector<int32_t> Order = std::move(Hot);
  for (size_t I = 0; I < Snap.Entries.size(); ++I)
    if (!Snap.Entries[I].Elided && !Placed[I])
      Order.push_back(int32_t(I));

  if (Stats) {
    Stats->ProfileIds = Profile.Ids.size();
    Stats->Matched = Matched;
    Stats->Stored = Snap.numStored();
  }
  // Match quality drives the whole heap-ordering payoff (Sec. 5), so it is
  // always surfaced, with or without a Stats out-param.
  NIMG_COUNTER_ADD("nimg.order.heap.profile_ids", Profile.Ids.size());
  NIMG_COUNTER_ADD("nimg.order.heap.matched", Matched);
  return Order;
}
