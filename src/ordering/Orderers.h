//===- Orderers.h - Code and heap ordering steps -----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordering steps of the optimizing build. Code ordering (Sec. 4)
/// permutes compilation units by the first-execution position of their
/// root (cu ordering) or of any contained method (method ordering),
/// approximating Property 1. Heap ordering (Sec. 5) matches this build's
/// snapshot objects against the profile's 64-bit ids and places matched
/// objects first, in profile order; unmatched objects keep the default
/// order behind them.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_ORDERING_ORDERERS_H
#define NIMG_ORDERING_ORDERERS_H

#include "src/compiler/Inliner.h"
#include "src/heap/Snapshot.h"
#include "src/ordering/IdStrategies.h"
#include "src/profiling/Analyses.h"

#include <vector>

namespace nimg {

enum class CodeStrategy : uint8_t { None, CuOrder, MethodOrder, Cluster };

const char *codeStrategyName(CodeStrategy S);

/// Returns CU indices in .text placement order. Profiled CUs come first in
/// profile position; unprofiled CUs follow in the default (alphabetical)
/// order. MethodOrder ranks a CU by the minimum profile position over its
/// root and all inlined methods; CuOrder and Cluster rank by the root
/// alone (a cluster profile is a permutation of the cu profile's CU set,
/// already arranged by the call-graph solver — see
/// src/ordering/ClusterLayout.h).
std::vector<int32_t> orderCusWithProfile(const Program &P,
                                         const CompiledProgram &CP,
                                         const CodeProfile &Profile,
                                         CodeStrategy Strategy);

/// Statistics of a heap-matching pass.
struct HeapMatchStats {
  size_t ProfileIds = 0;  ///< Ids in the profile.
  size_t Matched = 0;     ///< Profile ids matched to a snapshot object.
  size_t Stored = 0;      ///< Stored objects in this build's snapshot.
};

/// Returns stored snapshot entry indices in .svm_heap placement order:
/// profile-matched objects first (profile order), then the rest in default
/// traversal order. Ids may collide or repeat; each profile id consumes
/// the first not-yet-placed object bearing that id.
std::vector<int32_t> orderObjectsWithProfile(const HeapSnapshot &Snap,
                                             const IdTable &Ids,
                                             HeapStrategy Strategy,
                                             const HeapProfile &Profile,
                                             HeapMatchStats *Stats = nullptr);

} // namespace nimg

#endif // NIMG_ORDERING_ORDERERS_H
