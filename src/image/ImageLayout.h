//===- ImageLayout.h - Binary image layout ----------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte layout of the two startup-critical image sections. `.text` holds
/// the compilation units (default: alphabetical by root signature) followed
/// by a fixed tail of statically linked native code that is never profiled
/// or reordered (the paper's Fig. 6 notes these methods at the end of
/// .text). `.svm_heap` holds the per-class static-field storage followed by
/// the snapshot objects (default: traversal order, which follows the CU
/// order per Sec. 2).
///
/// The ordering steps of Secs. 4-5 produce permutations consumed here.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IMAGE_IMAGELAYOUT_H
#define NIMG_IMAGE_IMAGELAYOUT_H

#include "src/compiler/Inliner.h"
#include "src/compiler/Splitter.h"
#include "src/heap/Snapshot.h"
#include "src/runtime/CostModel.h"

#include <vector>

namespace nimg {

struct ImageOptions {
  uint32_t PageSize = BasePageBytes;
  uint32_t CuAlignment = 16;
  uint32_t ObjectAlignment = 8;
  /// Bytes of unprofiled statically-linked native code at the end of .text.
  uint64_t NativeTailSize = 192 * 1024;
  /// `--huge-pages N`: map up to N huge pages (N x 2 MiB) at the front of
  /// `.text`. The huge-page region is a pure page-size overlay: no byte
  /// offset of the layout moves, so a zero budget is byte-identical to a
  /// build without the option. The effective count is clamped to the hot
  /// `.text` prefix (the profiled/ordered code before the cold and native
  /// tails) — an unfillable remainder degrades with a typed
  /// huge_budget_unfillable diagnostic instead of mapping never-touched
  /// tail bytes at huge granularity.
  uint32_t HugePages = 0;
};

struct ImageLayout {
  uint32_t PageSize = BasePageBytes;

  // .text ------------------------------------------------------------------
  std::vector<int32_t> CuOrder;    ///< CU indices in placement order.
  std::vector<uint64_t> CuOffsets; ///< Indexed by CU index; a split CU's
                                   ///< offset addresses its hot fragment.
  /// Cold-fragment offset per CU index; NotStored for unsplit CUs. Cold
  /// fragments pack into [ColdTailOffset, ColdTailOffset + ColdTailSize),
  /// after the last page the startup-hot fragments can touch and before
  /// the native tail (hot/cold splitting, --split hotcold).
  std::vector<uint64_t> CuColdOffsets;
  uint64_t ColdTailOffset = 0;
  uint64_t ColdTailSize = 0;
  uint64_t NativeTailOffset = 0;
  uint64_t NativeTailSize = 0;
  uint64_t TextSize = 0;
  /// Huge-page region at the front of `.text` (--huge-pages): the budget
  /// as requested, the effective page count after clamping to the hot
  /// prefix, and the bytes those pages nominally span. Pure overlay — no
  /// CU offset depends on these.
  uint32_t HugePagesRequested = 0;
  uint32_t HugePages = 0;
  uint64_t HugeRegionSize = 0;

  // .svm_heap ---------------------------------------------------------------
  std::vector<uint64_t> StaticsBase; ///< Per class id; offset of its statics.
  uint64_t StaticsSize = 0;
  /// Stored snapshot entry indices in placement order.
  std::vector<int32_t> ObjectOrder;
  /// Per snapshot entry index; UINT64_MAX when elided (not stored).
  std::vector<uint64_t> ObjectOffsets;
  uint64_t HeapSize = 0;

  static constexpr uint64_t NotStored = ~uint64_t(0);

  uint64_t staticSlotOffset(ClassId C, int32_t Idx) const {
    return StaticsBase[size_t(C)] + 8 * uint64_t(Idx);
  }
};

/// Computes the layout. \p CuOrder and \p ObjectOrder are the ordering
/// steps' outputs: empty means default order (CUs as compiled, objects in
/// traversal order). \p Split (optional) is the hot/cold splitting pass's
/// result: hot fragments are placed by the active strategy exactly like
/// whole CUs, cold fragments pack onto the cold tail in placement order.
/// An inactive or null \p Split yields a byte-identical layout to before
/// the splitter existed.
ImageLayout computeImageLayout(const Program &P, const CompiledProgram &CP,
                               const HeapSnapshot &Snap,
                               const std::vector<int32_t> &CuOrder,
                               const std::vector<int32_t> &ObjectOrder,
                               const ImageOptions &Opts = {},
                               const SplitResult *Split = nullptr);

} // namespace nimg

#endif // NIMG_IMAGE_IMAGELAYOUT_H
