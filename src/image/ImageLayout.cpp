//===- ImageLayout.cpp - Binary image layout --------------------------------===//

#include "src/image/ImageLayout.h"

#include <cassert>

using namespace nimg;

static uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) & ~(A - 1); }

ImageLayout nimg::computeImageLayout(const Program &P,
                                     const CompiledProgram &CP,
                                     const HeapSnapshot &Snap,
                                     const std::vector<int32_t> &CuOrder,
                                     const std::vector<int32_t> &ObjectOrder,
                                     const ImageOptions &Opts,
                                     const SplitResult *Split) {
  ImageLayout L;
  L.PageSize = Opts.PageSize;
  bool Splitting = Split && Split->active();
  assert((!Splitting || Split->PerCu.size() == CP.CUs.size()) &&
         "split result must cover every CU");

  // --- .text ---------------------------------------------------------------
  L.CuOrder = CuOrder;
  if (L.CuOrder.empty())
    for (size_t I = 0; I < CP.CUs.size(); ++I)
      L.CuOrder.push_back(int32_t(I));
  assert(L.CuOrder.size() == CP.CUs.size() && "CU order must be a permutation");

  // Hot fragments (or whole CUs) go wherever the active code strategy puts
  // them — splitting composes with cu/method/cluster ordering.
  L.CuOffsets.assign(CP.CUs.size(), 0);
  uint64_t Off = 0;
  for (int32_t CuIdx : L.CuOrder) {
    Off = alignUp(Off, Opts.CuAlignment);
    L.CuOffsets[size_t(CuIdx)] = Off;
    Off += Splitting ? Split->PerCu[size_t(CuIdx)].HotSize
                     : CP.CUs[size_t(CuIdx)].CodeSize;
  }
  if (Splitting) {
    // Cold fragments pack after the last page the hot code can touch, in
    // the same placement order (a pure function of the split decisions and
    // the CU order — byte-identical at any --jobs).
    L.ColdTailOffset = alignUp(Off, Opts.PageSize);
    L.CuColdOffsets.assign(CP.CUs.size(), ImageLayout::NotStored);
    uint64_t ColdOff = L.ColdTailOffset;
    for (int32_t CuIdx : L.CuOrder) {
      const CuSplit &S = Split->PerCu[size_t(CuIdx)];
      if (!S.Split)
        continue;
      ColdOff = alignUp(ColdOff, Opts.CuAlignment);
      L.CuColdOffsets[size_t(CuIdx)] = ColdOff;
      ColdOff += S.ColdSize;
    }
    L.ColdTailSize = ColdOff - L.ColdTailOffset;
    Off = ColdOff;
  }
  L.NativeTailOffset = alignUp(Off, Opts.PageSize);
  L.NativeTailSize = Opts.NativeTailSize;
  L.TextSize = L.NativeTailOffset + L.NativeTailSize;

  // --- huge-page overlay ---------------------------------------------------
  // The budget maps the hot .text prefix (everything the code strategies
  // placed, before the cold tail) at 2 MiB granularity. Clamp to the pages
  // the hot prefix justifies: huge pages covering only cold-tail or
  // native-tail bytes would pay the bigger fault for code that never runs
  // at startup. The region is an overlay — no offset above moved.
  L.HugePagesRequested = Opts.HugePages;
  if (Opts.HugePages > 0) {
    uint64_t HotEnd = Splitting ? L.ColdTailOffset : L.NativeTailOffset;
    uint64_t Justified = (HotEnd + HugePageBytes - 1) / HugePageBytes;
    L.HugePages = uint32_t(Opts.HugePages < Justified ? Opts.HugePages
                                                      : Justified);
    L.HugeRegionSize = uint64_t(L.HugePages) * HugePageBytes;
    if (L.HugeRegionSize > L.TextSize)
      L.HugeRegionSize = L.TextSize;
  }

  // --- .svm_heap --------------------------------------------------------------
  L.StaticsBase.assign(P.numClasses(), 0);
  uint64_t HOff = 0;
  for (size_t C = 0; C < P.numClasses(); ++C) {
    L.StaticsBase[C] = HOff;
    HOff += 8 * P.classDef(ClassId(C)).StaticFields.size();
  }
  L.StaticsSize = HOff = alignUp(HOff, Opts.PageSize);

  L.ObjectOrder = ObjectOrder;
  if (L.ObjectOrder.empty())
    for (size_t I = 0; I < Snap.Entries.size(); ++I)
      if (!Snap.Entries[I].Elided)
        L.ObjectOrder.push_back(int32_t(I));
  assert(L.ObjectOrder.size() == Snap.numStored() &&
         "object order must cover exactly the stored entries");

  L.ObjectOffsets.assign(Snap.Entries.size(), ImageLayout::NotStored);
  for (int32_t EntryIdx : L.ObjectOrder) {
    const SnapshotEntry &E = Snap.Entries[size_t(EntryIdx)];
    assert(!E.Elided && "elided entries are not stored");
    HOff = alignUp(HOff, Opts.ObjectAlignment);
    L.ObjectOffsets[size_t(EntryIdx)] = HOff;
    HOff += E.SizeBytes;
  }
  L.HeapSize = alignUp(HOff, Opts.PageSize);
  return L;
}
