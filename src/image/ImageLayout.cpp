//===- ImageLayout.cpp - Binary image layout --------------------------------===//

#include "src/image/ImageLayout.h"

#include <cassert>

using namespace nimg;

static uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) & ~(A - 1); }

ImageLayout nimg::computeImageLayout(const Program &P,
                                     const CompiledProgram &CP,
                                     const HeapSnapshot &Snap,
                                     const std::vector<int32_t> &CuOrder,
                                     const std::vector<int32_t> &ObjectOrder,
                                     const ImageOptions &Opts) {
  ImageLayout L;
  L.PageSize = Opts.PageSize;

  // --- .text ---------------------------------------------------------------
  L.CuOrder = CuOrder;
  if (L.CuOrder.empty())
    for (size_t I = 0; I < CP.CUs.size(); ++I)
      L.CuOrder.push_back(int32_t(I));
  assert(L.CuOrder.size() == CP.CUs.size() && "CU order must be a permutation");

  L.CuOffsets.assign(CP.CUs.size(), 0);
  uint64_t Off = 0;
  for (int32_t CuIdx : L.CuOrder) {
    Off = alignUp(Off, Opts.CuAlignment);
    L.CuOffsets[size_t(CuIdx)] = Off;
    Off += CP.CUs[size_t(CuIdx)].CodeSize;
  }
  L.NativeTailOffset = alignUp(Off, Opts.PageSize);
  L.NativeTailSize = Opts.NativeTailSize;
  L.TextSize = L.NativeTailOffset + L.NativeTailSize;

  // --- .svm_heap --------------------------------------------------------------
  L.StaticsBase.assign(P.numClasses(), 0);
  uint64_t HOff = 0;
  for (size_t C = 0; C < P.numClasses(); ++C) {
    L.StaticsBase[C] = HOff;
    HOff += 8 * P.classDef(ClassId(C)).StaticFields.size();
  }
  L.StaticsSize = HOff = alignUp(HOff, Opts.PageSize);

  L.ObjectOrder = ObjectOrder;
  if (L.ObjectOrder.empty())
    for (size_t I = 0; I < Snap.Entries.size(); ++I)
      if (!Snap.Entries[I].Elided)
        L.ObjectOrder.push_back(int32_t(I));
  assert(L.ObjectOrder.size() == Snap.numStored() &&
         "object order must cover exactly the stored entries");

  L.ObjectOffsets.assign(Snap.Entries.size(), ImageLayout::NotStored);
  for (int32_t EntryIdx : L.ObjectOrder) {
    const SnapshotEntry &E = Snap.Entries[size_t(EntryIdx)];
    assert(!E.Elided && "elided entries are not stored");
    HOff = alignUp(HOff, Opts.ObjectAlignment);
    L.ObjectOffsets[size_t(EntryIdx)] = HOff;
    HOff += E.SizeBytes;
  }
  L.HeapSize = alignUp(HOff, Opts.PageSize);
  return L;
}
