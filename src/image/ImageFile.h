//===- ImageFile.h - Binary image serialization -----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a built NativeImage to a byte blob and loads it back. The
/// blob carries everything the runtime needs — CU composition and layout,
/// the heap snapshot (cells, statics, resources), identity tables — plus a
/// fingerprint of the Program it was built from: an image can only be
/// loaded against the same classpath, mirroring how a Native-Image binary
/// is tied to the build that produced it.
///
/// This makes builds cacheable: profile once, build once, then run the
/// image file many times (the FaaS deployment model of Sec. 1).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IMAGE_IMAGEFILE_H
#define NIMG_IMAGE_IMAGEFILE_H

#include "src/image/NativeImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nimg {

/// Stable fingerprint of a program: hashes class names, method signatures
/// and code, and the string table. Two Programs with the same fingerprint
/// are layout-compatible.
uint64_t programFingerprint(const Program &P);

/// Serializes \p Img (which must have been built from \p P).
std::vector<uint8_t> serializeImage(const Program &P, const NativeImage &Img);

/// Deserializes an image against \p P. Returns false and sets \p Error on
/// format or fingerprint mismatch. On success \p Out is runnable with
/// runImage().
bool deserializeImage(Program &P, const std::vector<uint8_t> &Bytes,
                      NativeImage &Out, std::string &Error);

} // namespace nimg

#endif // NIMG_IMAGE_IMAGEFILE_H
