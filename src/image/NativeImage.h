//===- NativeImage.h - A built image ---------------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of one image build: compiled code (CUs), the initialized
/// build heap and its snapshot, the byte layout of both sections, and —
/// for profiling builds — the per-object identity tables that the
/// post-processing step uses to translate traced snapshot indices into
/// strategy ids (Sec. 3: "associate an identifier to each object instance
/// to be stored in the .svm_heap section"; optimized builds do not store
/// identifiers in the binary but recompute them for matching).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IMAGE_NATIVEIMAGE_H
#define NIMG_IMAGE_NATIVEIMAGE_H

#include "src/compiler/Inliner.h"
#include "src/compiler/Reachability.h"
#include "src/compiler/Splitter.h"
#include "src/heap/BuildHeap.h"
#include "src/heap/Snapshot.h"
#include "src/image/ImageLayout.h"
#include "src/ordering/IdStrategies.h"
#include "src/profiling/ProfileDiagnostics.h"

namespace nimg {

struct NativeImage {
  Program *P = nullptr; ///< Not owned.
  ReachabilityResult Reach;
  CompiledProgram Code;
  /// Hot/cold splitting decisions (--split hotcold); Mode == None and an
  /// empty PerCu for unsplit builds. Serialized with the image — a
  /// deserialized split image must still know its fragment geometry to
  /// run.
  SplitResult Split;
  BuildHeapResult Built;
  HeapSnapshot Snapshot;
  ImageLayout Layout;
  /// Identity tables of this build's snapshot (all three strategies).
  IdTable Ids;
  bool Instrumented = false;
  uint64_t Seed = 0;
  /// Profile-ingestion outcome of this build: whether offered profiles
  /// were applied, and why any were rejected (degradation policy).
  ProfileDiagnostics ProfileDiag;

  NativeImage() = default;
  NativeImage(NativeImage &&) = default;
  NativeImage &operator=(NativeImage &&) = default;
  NativeImage(const NativeImage &) = delete;
  NativeImage &operator=(const NativeImage &) = delete;

  uint64_t imageBytes() const { return Layout.TextSize + Layout.HeapSize; }
};

} // namespace nimg

#endif // NIMG_IMAGE_NATIVEIMAGE_H
