//===- ImageFile.cpp - Binary image serialization ----------------------------===//

#include "src/image/ImageFile.h"

#include "src/heap/BuildHeap.h"
#include "src/runtime/Paging.h"
#include "src/support/ByteBuffer.h"
#include "src/support/Murmur3.h"

using namespace nimg;

// Format versions, newest written. V2 appends the per-region page-size
// table (the --huge-pages overlay) after the V1 payload; V1 files remain
// loadable and read back as all-4 KiB images with a zero huge budget.
static constexpr uint32_t kMagicV1 = 0x314D494Eu; // "NIM1"
static constexpr uint32_t kMagicV2 = 0x324D494Eu; // "NIM2"

uint64_t nimg::programFingerprint(const Program &P) {
  ByteBuffer B;
  for (size_t C = 0; C < P.numClasses(); ++C) {
    const ClassDef &Def = P.classDef(ClassId(C));
    B.appendSizedString(Def.Name);
    B.appendU32(uint32_t(Def.Super + 1));
    for (const Field &F : Def.InstanceFields) {
      B.appendSizedString(F.Name);
      B.appendSizedString(P.typeName(F.Type));
    }
    for (const Field &F : Def.StaticFields) {
      B.appendSizedString(F.Name);
      B.appendSizedString(P.typeName(F.Type));
    }
  }
  for (size_t M = 0; M < P.numMethods(); ++M) {
    const Method &Meth = P.method(MethodId(M));
    B.appendSizedString(Meth.Sig);
    B.appendU32(uint32_t(Meth.Blocks.size()));
    for (const BasicBlock &BB : Meth.Blocks) {
      B.appendU32(uint32_t(BB.Instrs.size()));
      for (const Instr &In : BB.Instrs) {
        B.appendU8(uint8_t(In.Op));
        B.appendU32(uint32_t(In.Dst) | (uint32_t(In.A) << 16));
        B.appendU32(uint32_t(In.B) | (uint32_t(In.C) << 16));
        B.appendI64(In.IImm);
        B.appendF64(In.FImm);
        B.appendU32(uint32_t(In.Aux));
        B.appendU32(uint32_t(In.Aux2));
        B.appendU32(uint32_t(In.Target));
      }
    }
  }
  for (size_t S = 0; S < P.numStrings(); ++S)
    B.appendSizedString(P.string(StrId(S)));
  return murmurHash3(B.bytes());
}

namespace {

// --- Writer helpers -----------------------------------------------------------

void putBools(ByteBuffer &B, const std::vector<bool> &V) {
  B.appendU32(uint32_t(V.size()));
  for (bool X : V)
    B.appendU8(X ? 1 : 0);
}

void putU64s(ByteBuffer &B, const std::vector<uint64_t> &V) {
  B.appendU32(uint32_t(V.size()));
  for (uint64_t X : V)
    B.appendU64(X);
}

void putI32s(ByteBuffer &B, const std::vector<int32_t> &V) {
  B.appendU32(uint32_t(V.size()));
  for (int32_t X : V)
    B.appendU32(uint32_t(X));
}

void putValue(ByteBuffer &B, const Value &V) {
  B.appendU8(uint8_t(V.Kind));
  B.appendI64(V.Kind == ValueKind::Ref ? int64_t(V.Ref) : V.I);
}

// --- Reader ---------------------------------------------------------------------

class Cursor {
public:
  Cursor(const std::vector<uint8_t> &Bytes, std::string &Error)
      : Bytes(Bytes), Error(Error) {}

  bool ok() const { return !Failed; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Bytes[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(Bytes[Pos++]) << (I * 8);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(Bytes[Pos++]) << (I * 8);
    return V;
  }
  int64_t i64() { return int64_t(u64()); }
  std::string str() {
    uint32_t Len = u32();
    if (!need(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(&Bytes[Pos]), Len);
    Pos += Len;
    return S;
  }
  std::vector<bool> bools() {
    uint32_t N = u32();
    std::vector<bool> V;
    for (uint32_t I = 0; I < N && ok(); ++I)
      V.push_back(u8() != 0);
    return V;
  }
  std::vector<uint64_t> u64s() {
    uint32_t N = u32();
    std::vector<uint64_t> V;
    for (uint32_t I = 0; I < N && ok(); ++I)
      V.push_back(u64());
    return V;
  }
  std::vector<int32_t> i32s() {
    uint32_t N = u32();
    std::vector<int32_t> V;
    for (uint32_t I = 0; I < N && ok(); ++I)
      V.push_back(int32_t(u32()));
    return V;
  }
  Value value() {
    ValueKind K = ValueKind(u8());
    int64_t Raw = i64();
    switch (K) {
    case ValueKind::Null:
      return Value::makeNull();
    case ValueKind::Int:
      return Value::makeInt(Raw);
    case ValueKind::Double: {
      Value V;
      V.Kind = ValueKind::Double;
      V.I = Raw;
      return V;
    }
    case ValueKind::Bool:
      return Value::makeBool(Raw != 0);
    case ValueKind::Ref:
      return Value::makeRef(CellIdx(Raw));
    }
    fail("corrupt value kind");
    return Value::makeNull();
  }

  void fail(const std::string &Msg) {
    if (!Failed)
      Error = Msg;
    Failed = true;
  }

private:
  bool need(size_t N) {
    if (Failed)
      return false;
    if (Pos + N > Bytes.size()) {
      fail("unexpected end of image file");
      return false;
    }
    return true;
  }

  const std::vector<uint8_t> &Bytes;
  std::string &Error;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::vector<uint8_t> nimg::serializeImage(const Program &P,
                                          const NativeImage &Img) {
  assert(Img.P == &P && "image was built from a different program");
  ByteBuffer B;
  B.appendU32(kMagicV2);
  B.appendU64(programFingerprint(P));
  B.appendU8(Img.Instrumented ? 1 : 0);
  B.appendU64(Img.Seed);

  // Reachability.
  putBools(B, Img.Reach.ReachableMethods);
  putBools(B, Img.Reach.InstantiatedClasses);
  putBools(B, Img.Reach.ReachableClasses);
  putBools(B, Img.Reach.SaturatedSelectors);

  // Compiled program.
  B.appendU8(Img.Code.Instrumented ? 1 : 0);
  B.appendU64(Img.Code.InlineFingerprint);
  putI32s(B, Img.Code.CuOfMethod);
  B.appendU32(uint32_t(Img.Code.CUs.size()));
  for (const CompilationUnit &CU : Img.Code.CUs) {
    B.appendU32(uint32_t(CU.Root));
    B.appendU32(CU.CodeSize);
    B.appendU32(uint32_t(CU.Copies.size()));
    for (const InlineCopy &C : CU.Copies) {
      B.appendU32(uint32_t(C.Method));
      B.appendU32(uint32_t(C.ParentCopy));
      B.appendU32(C.SiteId);
      B.appendU32(C.CodeOffset);
      B.appendU32(C.CodeSize);
    }
  }

  // Build heap: cells, statics, init order, metadata, resources.
  const Heap &H = *Img.Built.BuildHeap;
  B.appendU32(uint32_t(H.numCells()));
  for (size_t C = 0; C < H.numCells(); ++C) {
    const HeapCell &Cell = H.cell(CellIdx(C));
    B.appendU8(uint8_t(Cell.Kind));
    B.appendU32(uint32_t(Cell.Class));
    B.appendU32(uint32_t(Cell.ArrayType));
    B.appendU32(uint32_t(Cell.Slots.size()));
    for (const Value &V : Cell.Slots)
      putValue(B, V);
    B.appendSizedString(Cell.Str);
    B.appendU8(H.isInterned(CellIdx(C)) ? 1 : 0);
  }
  B.appendU32(uint32_t(Img.Built.Statics.size()));
  for (const auto &Row : Img.Built.Statics) {
    B.appendU32(uint32_t(Row.size()));
    for (const Value &V : Row)
      putValue(B, V);
  }
  putI32s(B, Img.Built.InitOrder);
  putI32s(B, Img.Built.ClassMetaCells);
  B.appendU32(uint32_t(Img.Built.ResourceCells.size()));
  for (const auto &[Name, Cell] : Img.Built.ResourceCells) {
    B.appendSizedString(Name);
    B.appendU32(uint32_t(Cell));
  }

  // Snapshot.
  B.appendU32(uint32_t(Img.Snapshot.Entries.size()));
  for (const SnapshotEntry &E : Img.Snapshot.Entries) {
    B.appendU32(uint32_t(E.Cell));
    B.appendU32(E.SizeBytes);
    B.appendU8(uint8_t((E.IsRoot ? 1 : 0) | (E.Elided ? 2 : 0)));
    B.appendU8(uint8_t(E.Reason.Kind));
    B.appendSizedString(E.Reason.Detail);
    B.appendU32(uint32_t(E.ParentEntry));
    B.appendU32(uint32_t(E.ParentSlot));
  }

  // Identity tables.
  putU64s(B, Img.Ids.IncrementalIds);
  putU64s(B, Img.Ids.StructuralHashes);
  putU64s(B, Img.Ids.HeapPathHashes);

  // Layout.
  B.appendU32(Img.Layout.PageSize);
  putI32s(B, Img.Layout.CuOrder);
  putU64s(B, Img.Layout.CuOffsets);
  B.appendU64(Img.Layout.NativeTailOffset);
  B.appendU64(Img.Layout.NativeTailSize);
  B.appendU64(Img.Layout.TextSize);
  putU64s(B, Img.Layout.StaticsBase);
  B.appendU64(Img.Layout.StaticsSize);
  putI32s(B, Img.Layout.ObjectOrder);
  putU64s(B, Img.Layout.ObjectOffsets);
  B.appendU64(Img.Layout.HeapSize);

  // Hot/cold split geometry. A deserialized split image must still know
  // its fragment placement to run; build-time Issues are diagnostics and
  // stay out of the binary.
  B.appendU8(uint8_t(Img.Split.Mode));
  B.appendU64(Img.Split.DecisionFingerprint);
  B.appendU32(Img.Split.SplitCus);
  B.appendU32(Img.Split.DegradedCus);
  B.appendU64(Img.Split.HotBytes);
  B.appendU64(Img.Split.ColdBytes);
  B.appendU64(Img.Split.StubBytes);
  B.appendU32(uint32_t(Img.Split.PerCu.size()));
  for (const CuSplit &S : Img.Split.PerCu) {
    B.appendU8(S.Split ? 1 : 0);
    B.appendU32(S.HotSize);
    B.appendU32(S.ColdSize);
    B.appendU32(S.StubBytes);
    B.appendU32(uint32_t(S.Copies.size()));
    for (const CopySplit &CS : S.Copies) {
      B.appendU32(CS.HotOffset);
      B.appendU32(CS.HotSize);
      B.appendU32(CS.ColdOffset);
      B.appendU32(CS.ColdSize);
      B.appendU32(uint32_t(CS.Blocks.size()));
      for (const BlockPlace &BP : CS.Blocks) {
        B.appendU32(BP.Offset);
        B.appendU32(BP.Size);
        B.appendU8(BP.Cold ? 1 : 0);
      }
    }
  }
  putU64s(B, Img.Layout.CuColdOffsets);
  B.appendU64(Img.Layout.ColdTailOffset);
  B.appendU64(Img.Layout.ColdTailSize);

  // V2: huge-page budget plus the per-region page-size table. The table is
  // self-describing — each mapped region names its section, byte span, and
  // page size — so future multi-size policies extend it without another
  // format break.
  B.appendU32(Img.Layout.HugePagesRequested);
  B.appendU32(Img.Layout.HugePages);
  B.appendU64(Img.Layout.HugeRegionSize);
  uint32_t NumRegions = Img.Layout.HugeRegionSize > 0 ? 3 : 2;
  B.appendU32(NumRegions);
  if (Img.Layout.HugeRegionSize > 0) {
    B.appendU8(uint8_t(ImageSection::Text));
    B.appendU64(0);
    B.appendU64(Img.Layout.HugeRegionSize);
    B.appendU32(HugePageBytes);
  }
  B.appendU8(uint8_t(ImageSection::Text));
  B.appendU64(Img.Layout.HugeRegionSize);
  B.appendU64(Img.Layout.TextSize - Img.Layout.HugeRegionSize);
  B.appendU32(Img.Layout.PageSize);
  B.appendU8(uint8_t(ImageSection::HeapSec));
  B.appendU64(0);
  B.appendU64(Img.Layout.HeapSize);
  B.appendU32(Img.Layout.PageSize);

  return B.bytes();
}

bool nimg::deserializeImage(Program &P, const std::vector<uint8_t> &Bytes,
                            NativeImage &Out, std::string &Error) {
  // The builtin runtime classes are part of every built image's program;
  // register them before fingerprinting so a freshly compiled classpath
  // matches the one the image was built from.
  ensureClassMetaClass(P);
  Cursor C(Bytes, Error);
  uint32_t Magic = C.u32();
  if (Magic != kMagicV1 && Magic != kMagicV2) {
    Error = "not a nimage file (bad magic)";
    return false;
  }
  uint64_t Fingerprint = C.u64();
  if (Fingerprint != programFingerprint(P)) {
    Error = "image was built from a different program (fingerprint "
            "mismatch)";
    return false;
  }
  Out.P = &P;
  Out.Instrumented = C.u8() != 0;
  Out.Seed = C.u64();

  Out.Reach.ReachableMethods = C.bools();
  Out.Reach.InstantiatedClasses = C.bools();
  Out.Reach.ReachableClasses = C.bools();
  Out.Reach.SaturatedSelectors = C.bools();

  Out.Code.Instrumented = C.u8() != 0;
  Out.Code.InlineFingerprint = C.u64();
  Out.Code.CuOfMethod = C.i32s();
  uint32_t NumCus = C.u32();
  Out.Code.CUs.clear();
  for (uint32_t I = 0; I < NumCus && C.ok(); ++I) {
    CompilationUnit CU;
    CU.Root = MethodId(C.u32());
    CU.CodeSize = C.u32();
    uint32_t NumCopies = C.u32();
    for (uint32_t K = 0; K < NumCopies && C.ok(); ++K) {
      InlineCopy Copy;
      Copy.Method = MethodId(C.u32());
      Copy.ParentCopy = int32_t(C.u32());
      Copy.SiteId = C.u32();
      Copy.CodeOffset = C.u32();
      Copy.CodeSize = C.u32();
      if (K > 0)
        CU.InlineMap.emplace(
            CompilationUnit::siteKey(Copy.ParentCopy, Copy.SiteId),
            int32_t(K));
      CU.Copies.push_back(Copy);
    }
    Out.Code.CUs.push_back(std::move(CU));
  }

  Out.Built.BuildHeap = std::make_unique<Heap>(P);
  Heap &H = *Out.Built.BuildHeap;
  uint32_t NumCells = C.u32();
  for (uint32_t I = 0; I < NumCells && C.ok(); ++I) {
    CellKind Kind = CellKind(C.u8());
    ClassId Class = ClassId(C.u32());
    TypeId ArrayType = TypeId(C.u32());
    uint32_t NumSlots = C.u32();
    std::vector<Value> Slots;
    for (uint32_t K = 0; K < NumSlots && C.ok(); ++K)
      Slots.push_back(C.value());
    std::string Str = C.str();
    bool Interned = C.u8() != 0;
    // Recreate the cell at the same index: the serialized graph encodes
    // sharing via cell indices, so no dedup may happen here. Interned
    // strings re-register in the intern table afterwards.
    CellIdx Cell;
    switch (Kind) {
    case CellKind::Object:
      if (Class < 0 || size_t(Class) >= P.numClasses()) {
        C.fail("cell class out of range");
        return false;
      }
      Cell = H.allocObject(Class);
      break;
    case CellKind::Array:
      if (ArrayType < 0 || size_t(ArrayType) >= P.numTypes() ||
          P.type(ArrayType).Kind != TypeKind::Array) {
        C.fail("cell array type out of range");
        return false;
      }
      Cell = H.allocArray(ArrayType, int64_t(NumSlots));
      break;
    case CellKind::String:
      Cell = H.allocString(Str);
      if (Interned)
        H.registerInterned(Cell);
      break;
    }
    if (H.cell(Cell).Slots.size() != Slots.size()) {
      C.fail("cell slot count mismatch");
      return false;
    }
    H.cell(Cell).Slots = std::move(Slots);
  }

  uint32_t NumStaticRows = C.u32();
  Out.Built.Statics.clear();
  for (uint32_t I = 0; I < NumStaticRows && C.ok(); ++I) {
    uint32_t N = C.u32();
    std::vector<Value> Row;
    for (uint32_t K = 0; K < N && C.ok(); ++K)
      Row.push_back(C.value());
    Out.Built.Statics.push_back(std::move(Row));
  }
  Out.Built.InitOrder = C.i32s();
  Out.Built.ClassMetaCells = C.i32s();
  uint32_t NumResources = C.u32();
  for (uint32_t I = 0; I < NumResources && C.ok(); ++I) {
    std::string Name = C.str();
    Out.Built.ResourceCells.emplace(Name, CellIdx(C.u32()));
  }

  uint32_t NumEntries = C.u32();
  Out.Snapshot.Entries.clear();
  Out.Snapshot.EntryOfCell.clear();
  for (uint32_t I = 0; I < NumEntries && C.ok(); ++I) {
    SnapshotEntry E;
    E.Cell = CellIdx(C.u32());
    E.SizeBytes = C.u32();
    uint8_t Flags = C.u8();
    E.IsRoot = Flags & 1;
    E.Elided = Flags & 2;
    E.Reason.Kind = InclusionReasonKind(C.u8());
    E.Reason.Detail = C.str();
    E.ParentEntry = int32_t(C.u32());
    E.ParentSlot = int32_t(C.u32());
    Out.Snapshot.EntryOfCell.emplace(E.Cell, int32_t(I));
    Out.Snapshot.Entries.push_back(std::move(E));
  }

  Out.Ids.IncrementalIds = C.u64s();
  Out.Ids.StructuralHashes = C.u64s();
  Out.Ids.HeapPathHashes = C.u64s();

  Out.Layout.PageSize = C.u32();
  Out.Layout.CuOrder = C.i32s();
  Out.Layout.CuOffsets = C.u64s();
  Out.Layout.NativeTailOffset = C.u64();
  Out.Layout.NativeTailSize = C.u64();
  Out.Layout.TextSize = C.u64();
  Out.Layout.StaticsBase = C.u64s();
  Out.Layout.StaticsSize = C.u64();
  Out.Layout.ObjectOrder = C.i32s();
  Out.Layout.ObjectOffsets = C.u64s();
  Out.Layout.HeapSize = C.u64();

  Out.Split.Mode = SplitMode(C.u8());
  Out.Split.DecisionFingerprint = C.u64();
  Out.Split.SplitCus = C.u32();
  Out.Split.DegradedCus = C.u32();
  Out.Split.HotBytes = C.u64();
  Out.Split.ColdBytes = C.u64();
  Out.Split.StubBytes = C.u64();
  uint32_t NumSplitCus = C.u32();
  Out.Split.PerCu.clear();
  for (uint32_t I = 0; I < NumSplitCus && C.ok(); ++I) {
    CuSplit S;
    S.Split = C.u8() != 0;
    S.HotSize = C.u32();
    S.ColdSize = C.u32();
    S.StubBytes = C.u32();
    uint32_t NumCopies = C.u32();
    for (uint32_t K = 0; K < NumCopies && C.ok(); ++K) {
      CopySplit CS;
      CS.HotOffset = C.u32();
      CS.HotSize = C.u32();
      CS.ColdOffset = C.u32();
      CS.ColdSize = C.u32();
      uint32_t NumBlocks = C.u32();
      for (uint32_t J = 0; J < NumBlocks && C.ok(); ++J) {
        BlockPlace BP;
        BP.Offset = C.u32();
        BP.Size = C.u32();
        BP.Cold = C.u8() != 0;
        CS.Blocks.push_back(BP);
      }
      S.Copies.push_back(std::move(CS));
    }
    Out.Split.PerCu.push_back(std::move(S));
  }
  Out.Layout.CuColdOffsets = C.u64s();
  Out.Layout.ColdTailOffset = C.u64();
  Out.Layout.ColdTailSize = C.u64();

  // V2 tail: huge-page budget + per-region page-size table. A V1 file
  // simply has none of it — the zero-initialized Layout fields already
  // mean "all 4 KiB, no huge budget", so old images load unchanged.
  Out.Layout.HugePagesRequested = 0;
  Out.Layout.HugePages = 0;
  Out.Layout.HugeRegionSize = 0;
  if (Magic == kMagicV2) {
    Out.Layout.HugePagesRequested = C.u32();
    Out.Layout.HugePages = C.u32();
    Out.Layout.HugeRegionSize = C.u64();
    uint32_t NumRegions = C.u32();
    uint64_t HugeTableBytes = 0;
    for (uint32_t I = 0; I < NumRegions && C.ok(); ++I) {
      uint8_t Sec = C.u8();
      uint64_t Off = C.u64();
      uint64_t Size = C.u64();
      uint32_t PageSz = C.u32();
      if (Sec > uint8_t(ImageSection::HeapSec) || PageSz == 0 ||
          PageSz % Out.Layout.PageSize != 0) {
        C.fail("corrupt page-size table");
        return false;
      }
      if (ImageSection(Sec) == ImageSection::Text && Off == 0 &&
          PageSz == HugePageBytes)
        HugeTableBytes = Size;
    }
    if (C.ok() && HugeTableBytes != Out.Layout.HugeRegionSize) {
      Error = "page-size table disagrees with the huge-page region";
      return false;
    }
  }

  if (!C.ok())
    return false;
  if (Out.Layout.CuOffsets.size() != Out.Code.CUs.size() ||
      Out.Ids.IncrementalIds.size() != Out.Snapshot.Entries.size() ||
      Out.Layout.HugeRegionSize > Out.Layout.TextSize ||
      Out.Layout.HugePages > Out.Layout.HugePagesRequested ||
      (Out.Split.active() &&
       (Out.Split.PerCu.size() != Out.Code.CUs.size() ||
        Out.Layout.CuColdOffsets.size() != Out.Code.CUs.size()))) {
    Error = "inconsistent image file";
    return false;
  }
  return true;
}
