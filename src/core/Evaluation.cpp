//===- Evaluation.cpp - Paper-evaluation measurement harness ----------------===//

#include "src/core/Evaluation.h"

#include <cmath>
#include <cstdlib>

using namespace nimg;

Stat nimg::statOf(const std::vector<double> &Samples) {
  Stat S;
  if (Samples.empty())
    return S;
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / double(Samples.size());
  if (Samples.size() == 1) {
    S.Lo = S.Hi = S.Mean;
    return S;
  }
  double Var = 0;
  for (double V : Samples)
    Var += (V - S.Mean) * (V - S.Mean);
  Var /= double(Samples.size() - 1);
  double Half = 1.96 * std::sqrt(Var / double(Samples.size()));
  S.Lo = S.Mean - Half;
  S.Hi = S.Mean + Half;
  return S;
}

double nimg::geomean(const std::vector<double> &Factors) {
  if (Factors.empty())
    return 1.0;
  double LogSum = 0;
  for (double F : Factors)
    LogSum += std::log(F);
  return std::exp(LogSum / double(Factors.size()));
}

int nimg::evalSeedsFromEnv(int Default) {
  const char *Env = std::getenv("NIMAGE_EVAL_SEEDS");
  if (!Env)
    return Default;
  int N = std::atoi(Env);
  return N > 0 ? N : Default;
}

const VariantEval *BenchmarkEval::variant(const std::string &Name) const {
  for (const VariantEval &V : Variants)
    if (V.Name == Name)
      return &V;
  return nullptr;
}

namespace {

/// The measured quantity for the time axis: end-to-end time for AWFY,
/// time to first response for microservices (Sec. 7.1).
double timeOf(const RunStats &S, bool Microservice) {
  if (Microservice && S.Responded)
    return S.TimeToFirstResponseNs;
  return S.TimeNs;
}

struct VariantSpec {
  std::string Name;
  CodeStrategy Code;
  bool UseHeap;
  HeapStrategy Heap;
};

} // namespace

BenchmarkEval nimg::evaluateBenchmark(const BenchmarkSpec &Spec,
                                      const EvalOptions &Opts) {
  BenchmarkEval Eval;
  Eval.Benchmark = Spec.Name;
  Eval.Microservice = Spec.Microservice;

  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  assert(P && "benchmark failed to compile");

  RunConfig Run = Opts.Run;
  Run.StopAtFirstResponse = Spec.Microservice;

  // --- Profile collection (one instrumented image, Sec. 3) --------------------
  BuildConfig InstrCfg = Opts.Build;
  InstrCfg.Seed = Opts.BaseSeed + 1000;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);

  // --- Fleet profile set (cu-merged variant) ----------------------------------
  std::vector<MemberProfile> Members;
  if (Opts.MergeMembers > 0) {
    BuildConfig SetCfg = Opts.Build;
    SetCfg.Seed = Opts.BaseSeed + 1000;
    if (!SetCfg.ProfileGeneration)
      SetCfg.ProfileGeneration = 1;
    std::vector<std::string> Names;
    for (int I = 0; I < Opts.MergeMembers; ++I)
      Names.push_back("inst" + std::to_string(I));
    Members = collectProfileSet(*P, SetCfg, Run, Names);
  }

  // --- Measurement helper -------------------------------------------------------
  auto Measure = [&](const std::string &Name, CodeStrategy Code,
                     bool UseHeap, HeapStrategy Heap,
                     const std::vector<MemberProfile> *CodeMembers =
                         nullptr) {
    VariantEval V;
    V.Name = Name;
    std::vector<double> Text, HeapF, Total, Time;
    for (int S = 0; S < Opts.Seeds; ++S) {
      BuildConfig Cfg = Opts.Build;
      Cfg.Seed = Opts.BaseSeed + uint64_t(S);
      Cfg.CodeOrder = Code;
      if (Code == CodeStrategy::CuOrder)
        Cfg.CodeProf = &Prof.Cu;
      else if (Code == CodeStrategy::MethodOrder)
        Cfg.CodeProf = &Prof.Method;
      else if (Code == CodeStrategy::Cluster)
        Cfg.CodeProf = &Prof.Cluster;
      if (CodeMembers) {
        Cfg.CodeMembers = CodeMembers;
        Cfg.CodeProf = nullptr;
      }
      Cfg.UseHeapOrder = UseHeap;
      if (UseHeap) {
        Cfg.HeapOrder = Heap;
        Cfg.HeapProf = &Prof.forStrategy(Heap);
      }
      // --split hotcold rides along on any code strategy: wire the block
      // profile whenever the caller's build config asks for splitting, and
      // the edge profile when it also asks for ext-TSP block reordering.
      if (Cfg.Split != SplitMode::None) {
        Cfg.BlockProf = &Prof.Blocks;
        if (Cfg.SplitOpts.Blocks == BlockOrderMode::ExtTsp)
          Cfg.EdgeProf = &Prof.Edges;
      }
      NativeImage Img = buildNativeImage(*P, Cfg);
      assert(!Img.Built.Failed && "image build failed");
      RunStats Stats = runImage(Img, Run);
      assert(!Stats.Trapped && "benchmark trapped");
      Text.push_back(double(Stats.TextFaults));
      HeapF.push_back(double(Stats.HeapFaults));
      Total.push_back(double(Stats.totalFaults()));
      Time.push_back(timeOf(Stats, Spec.Microservice));
      if (Name == "baseline" && S == 0) {
        Eval.PctStoredObjectsTouched =
            Stats.StoredObjectsTotal == 0
                ? 0.0
                : 100.0 * double(Stats.StoredObjectsTouched) /
                      double(Stats.StoredObjectsTotal);
        Eval.SnapshotObjects = Stats.StoredObjectsTotal;
        Eval.ImageBytes = Img.imageBytes();
      }
    }
    V.TextFaults = statOf(Text);
    V.HeapFaults = statOf(HeapF);
    V.TotalFaults = statOf(Total);
    V.TimeNs = statOf(Time);
    return V;
  };

  Eval.Baseline =
      Measure("baseline", CodeStrategy::None, false, HeapStrategy::HeapPath);

  const VariantSpec Specs[] = {
      {"cu", CodeStrategy::CuOrder, false, HeapStrategy::HeapPath},
      {"method", CodeStrategy::MethodOrder, false, HeapStrategy::HeapPath},
      {"cluster", CodeStrategy::Cluster, false, HeapStrategy::HeapPath},
      {"incremental id", CodeStrategy::None, true,
       HeapStrategy::IncrementalId},
      {"structural hash", CodeStrategy::None, true,
       HeapStrategy::StructuralHash},
      {"heap path", CodeStrategy::None, true, HeapStrategy::HeapPath},
      {"cu+heap path", CodeStrategy::CuOrder, true, HeapStrategy::HeapPath},
  };
  auto Factor = [](double Base, double Opt) {
    if (Opt <= 0)
      return Base <= 0 ? 1.0 : Base;
    return Base / Opt;
  };
  auto PushVariant = [&](VariantEval V) {
    V.TextFaultFactor =
        Factor(Eval.Baseline.TextFaults.Mean, V.TextFaults.Mean);
    V.HeapFaultFactor =
        Factor(Eval.Baseline.HeapFaults.Mean, V.HeapFaults.Mean);
    V.TotalFaultFactor =
        Factor(Eval.Baseline.TotalFaults.Mean, V.TotalFaults.Mean);
    V.Speedup = Factor(Eval.Baseline.TimeNs.Mean, V.TimeNs.Mean);
    Eval.Variants.push_back(std::move(V));
  };
  for (const VariantSpec &VS : Specs)
    PushVariant(Measure(VS.Name, VS.Code, VS.UseHeap, VS.Heap));
  if (!Members.empty())
    PushVariant(Measure("cu-merged", CodeStrategy::CuOrder, false,
                        HeapStrategy::HeapPath, &Members));

  // --- Profiling overhead (Sec. 7.4) ------------------------------------------
  double BaseTime = Eval.Baseline.TimeNs.Mean;
  if (BaseTime > 0) {
    Eval.CuOverhead = timeOf(Prof.CuRun, Spec.Microservice) / BaseTime;
    Eval.MethodOverhead = timeOf(Prof.MethodRun, Spec.Microservice) / BaseTime;
    Eval.HeapOverhead = timeOf(Prof.HeapRun, Spec.Microservice) / BaseTime;
  }
  return Eval;
}
