//===- Evaluation.h - Paper-evaluation measurement harness -----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the measurement protocol of Sec. 7.1: per benchmark, build
/// several images per strategy (the paper builds 10; the seed plays the
/// role of build-to-build nondeterminism), run each on a cold page cache,
/// and report factors M_baseline / M_optimized with 95% confidence
/// intervals. Code strategies are scored on .text faults, heap strategies
/// on .svm_heap faults, the combined strategy on both — exactly the
/// figures' conventions. AWFY workloads measure end-to-end time;
/// microservices measure elapsed time until the first response and are
/// then killed.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_CORE_EVALUATION_H
#define NIMG_CORE_EVALUATION_H

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <string>
#include <vector>

namespace nimg {

struct EvalOptions {
  /// Images built per strategy (paper: 10). Runs are deterministic given a
  /// build, so one measured run per image suffices.
  int Seeds = 3;
  uint64_t BaseSeed = 1;
  RunConfig Run;
  BuildConfig Build;
  /// When > 0, additionally capture a fleet profile set of this many
  /// members (one instrumented cu-mode run each) and measure a
  /// "cu-merged" variant driven by the aggregated profile — the
  /// multi-instance analogue of the "cu" variant.
  int MergeMembers = 0;
};

/// Mean with a 95% confidence interval over build seeds.
struct Stat {
  double Mean = 0;
  double Lo = 0;
  double Hi = 0;
};

Stat statOf(const std::vector<double> &Samples);

/// Measurements for one strategy (or the baseline).
struct VariantEval {
  std::string Name;
  Stat TextFaults;
  Stat HeapFaults;
  Stat TotalFaults;
  Stat TimeNs;
  // Factors versus the baseline (higher is better, Sec. 7.1).
  double TextFaultFactor = 1.0;
  double HeapFaultFactor = 1.0;
  double TotalFaultFactor = 1.0;
  double Speedup = 1.0;
};

struct BenchmarkEval {
  std::string Benchmark;
  bool Microservice = false;
  VariantEval Baseline;
  /// cu, method, cluster, incremental id, structural hash, heap path,
  /// cu+heap path.
  std::vector<VariantEval> Variants;

  /// Fraction of stored snapshot objects the baseline run touches
  /// (Sec. 7.2 reports ~4 % on AWFY).
  double PctStoredObjectsTouched = 0;
  size_t SnapshotObjects = 0;
  uint64_t ImageBytes = 0;

  /// Sec. 7.4 profiling overheads: instrumented time / baseline time.
  double CuOverhead = 1.0;
  double MethodOverhead = 1.0;
  double HeapOverhead = 1.0;

  const VariantEval *variant(const std::string &Name) const;
};

/// Runs the full per-benchmark evaluation.
BenchmarkEval evaluateBenchmark(const BenchmarkSpec &Spec,
                                const EvalOptions &Opts);

/// Geometric mean (the figures' summary statistic).
double geomean(const std::vector<double> &Factors);

/// Reads NIMAGE_EVAL_SEEDS from the environment (default \p Default);
/// lets bench binaries trade precision for wall time.
int evalSeedsFromEnv(int Default);

} // namespace nimg

#endif // NIMG_CORE_EVALUATION_H
