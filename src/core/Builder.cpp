//===- Builder.cpp - The Native-Image build pipeline -------------------------===//

#include "src/core/Builder.h"

#include "src/support/SplitMix64.h"

using namespace nimg;

NativeImage nimg::buildNativeImage(Program &P, const BuildConfig &Cfg) {
  assert(P.MainMethod != -1 && "program has no entry point");
  NativeImage Img;
  Img.P = &P;
  Img.Instrumented = Cfg.Instrumented;
  Img.Seed = Cfg.Seed;

  // Builtin runtime classes must exist before the analysis fixes the
  // class-id space.
  ensureClassMetaClass(P);

  // 1. Points-to-style reachability (Sec. 2).
  Img.Reach = analyzeReachability(P, Cfg.Reach);

  // 2. Compilation: size-driven inlining into CUs. Instrumentation
  //    inflates sizes, diverging the CU set from the optimized build's.
  Img.Code =
      buildCompilationUnits(P, Img.Reach, Cfg.Inliner, Cfg.Instrumented);

  // 3. Code ordering (Sec. 4) — determines .text placement and, through
  //    it, the default object traversal order.
  std::vector<int32_t> CuOrder;
  if (Cfg.CodeOrder != CodeStrategy::None && Cfg.CodeProf)
    CuOrder = orderCusWithProfile(P, Img.Code, *Cfg.CodeProf,
                                  Cfg.CodeOrder == CodeStrategy::MethodOrder);

  // 4. Build-time initialization (permuted) and heap snapshotting.
  Img.Built = initializeBuildHeap(P, Img.Reach, Cfg.Seed);
  if (Img.Built.Failed)
    return Img;

  SnapshotConfig SnapCfg;
  SnapCfg.EnablePea = Cfg.EnablePea;
  SnapCfg.PeaRate = Cfg.PeaRate;
  SnapCfg.PeaFingerprint = mix64(Img.Code.InlineFingerprint, Cfg.Seed);
  SnapCfg.CuOrder = CuOrder;
  Img.Snapshot = buildSnapshot(P, *Img.Built.BuildHeap, Img.Built, Img.Code,
                               Img.Reach, SnapCfg);

  // 5. Identifier assignment (Sec. 5): the profiling build stores these in
  //    the image; the optimizing build uses them only for matching.
  Img.Ids = computeIdTable(P, *Img.Built.BuildHeap, Img.Snapshot,
                           Cfg.StructuralMaxDepth);

  // 6. Heap ordering (Sec. 5): match the profile's ids against this
  //    build's snapshot and hoist matched objects to the front.
  std::vector<int32_t> ObjOrder;
  if (Cfg.UseHeapOrder && Cfg.HeapProf)
    ObjOrder = orderObjectsWithProfile(Img.Snapshot, Img.Ids, Cfg.HeapOrder,
                                       *Cfg.HeapProf);

  // 7. Image layout.
  Img.Layout =
      computeImageLayout(P, Img.Code, Img.Snapshot, CuOrder, ObjOrder,
                         Cfg.Image);
  return Img;
}

CollectedProfiles nimg::collectProfiles(Program &P,
                                        const BuildConfig &InstrumentedCfg,
                                        const RunConfig &RunCfg) {
  CollectedProfiles Out;

  BuildConfig Cfg = InstrumentedCfg;
  Cfg.Instrumented = true;
  Cfg.CodeOrder = CodeStrategy::None;
  Cfg.UseHeapOrder = false;
  NativeImage Img = buildNativeImage(P, Cfg);
  assert(!Img.Built.Failed && "instrumented build failed");

  PathGraphCache Paths(P);

  auto RunWith = [&](TraceMode Mode, RunStats &StatsOut) {
    TraceOptions TOpts;
    TOpts.Mode = Mode;
    // Workloads killed before clean exit need the memory-mapped dump mode
    // (Sec. 6.1); AWFY-style runs terminate normally and flush.
    TOpts.Dump = RunCfg.StopAtFirstResponse ? DumpMode::MemoryMapped
                                            : DumpMode::FlushOnFull;
    RunConfig RC = RunCfg;
    RC.Trace = &TOpts;
    TraceCapture Capture;
    StatsOut = runImage(Img, RC, &Capture);
    return Capture;
  };

  TraceCapture CuCap = RunWith(TraceMode::CuOrder, Out.CuRun);
  Out.Cu = analyzeCuOrder(P, CuCap);

  TraceCapture MethodCap = RunWith(TraceMode::MethodOrder, Out.MethodRun);
  Out.Method = analyzeMethodOrder(P, MethodCap, Paths);

  TraceCapture HeapCap = RunWith(TraceMode::HeapOrder, Out.HeapRun);
  std::vector<int32_t> AccessOrder = analyzeHeapAccessOrder(P, HeapCap, Paths);
  Out.IncrementalId =
      heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::IncrementalId);
  Out.StructuralHash =
      heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::StructuralHash);
  Out.HeapPath = heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::HeapPath);
  return Out;
}
