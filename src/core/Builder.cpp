//===- Builder.cpp - The Native-Image build pipeline -------------------------===//

#include "src/core/Builder.h"

#include "src/image/ImageFile.h"
#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"
#include "src/support/SplitMix64.h"

#include <algorithm>
#include <unordered_set>

using namespace nimg;

namespace {

void addDiag(ProfileDiagnostics &Diag, ProfileError Kind, std::string Detail) {
  Diag.Issues.push_back({Kind, 0, std::move(Detail)});
}

/// Whether the offered code profile may drive code ordering in this build.
/// Rejections are recorded in \p Diag; the build then keeps the default
/// .text order instead of consuming a bad profile.
bool codeProfileUsable(const CodeProfile &CP, CodeStrategy Strategy,
                       uint64_t BuildFp, ProfileDiagnostics &Diag) {
  if (CP.LoadError != ProfileError::None) {
    addDiag(Diag, CP.LoadError, "code profile rejected at load");
    return false;
  }
  // Legacy headerless profiles (Version 0) carry no provenance; they are
  // accepted as-is. Versioned headers are checked for provenance.
  if (CP.Header.Version == 0)
    return true;
  TraceMode Want = Strategy == CodeStrategy::MethodOrder
                       ? TraceMode::MethodOrder
                       : TraceMode::CuOrder;
  if (CP.Header.Mode != Want) {
    addDiag(Diag, ProfileError::ModeMismatch,
            "code profile traced in a different mode than the ordering "
            "strategy expects");
    return false;
  }
  if (CP.Header.Fingerprint != 0 && BuildFp != 0 &&
      CP.Header.Fingerprint != BuildFp) {
    addDiag(Diag, ProfileError::FingerprintMismatch,
            "code profile came from a different program");
    return false;
  }
  return true;
}

/// Whether the offered block profile may drive hot/cold splitting. The
/// salvage-coverage threshold is checked by the splitter itself (it owns
/// the degradation accounting); this vets provenance only.
bool blockProfileUsable(const BlockProfile &BP, uint64_t BuildFp,
                        ProfileDiagnostics &Diag) {
  if (BP.LoadError != ProfileError::None) {
    addDiag(Diag, BP.LoadError, "block profile rejected at load");
    return false;
  }
  if (BP.Header.Version == 0)
    return true;
  if (BP.Header.Mode != TraceMode::MethodOrder) {
    addDiag(Diag, ProfileError::ModeMismatch,
            "block counts must come from a method-order path trace");
    return false;
  }
  if (BP.Header.Fingerprint != 0 && BuildFp != 0 &&
      BP.Header.Fingerprint != BuildFp) {
    addDiag(Diag, ProfileError::FingerprintMismatch,
            "block profile came from a different program");
    return false;
  }
  return true;
}

/// Whether the offered edge profile may drive ext-TSP block reordering.
/// Same provenance vetting as blockProfileUsable; the coverage threshold
/// again belongs to the splitter.
bool edgeProfileUsable(const EdgeProfile &EP, uint64_t BuildFp,
                       ProfileDiagnostics &Diag) {
  if (EP.LoadError != ProfileError::None) {
    addDiag(Diag, EP.LoadError, "edge profile rejected at load");
    return false;
  }
  if (EP.Header.Version == 0)
    return true;
  if (EP.Header.Mode != TraceMode::MethodOrder) {
    addDiag(Diag, ProfileError::ModeMismatch,
            "edge counts must come from a method-order path trace");
    return false;
  }
  if (EP.Header.Fingerprint != 0 && BuildFp != 0 &&
      EP.Header.Fingerprint != BuildFp) {
    addDiag(Diag, ProfileError::FingerprintMismatch,
            "edge profile came from a different program");
    return false;
  }
  return true;
}

bool heapProfileUsable(const HeapProfile &HP, HeapStrategy Strategy,
                       uint64_t BuildFp, ProfileDiagnostics &Diag) {
  if (HP.LoadError != ProfileError::None) {
    addDiag(Diag, HP.LoadError, "heap profile rejected at load");
    return false;
  }
  if (HP.Header.Version == 0)
    return true;
  if (HP.Header.Mode != TraceMode::HeapOrder) {
    addDiag(Diag, ProfileError::ModeMismatch,
            "heap profile built from a non-heap trace");
    return false;
  }
  if (HP.Header.HasStrategy && HP.Header.Strategy != Strategy) {
    addDiag(Diag, ProfileError::StrategyMismatch,
            "heap profile ids use a different identity strategy");
    return false;
  }
  if (HP.Header.Fingerprint != 0 && BuildFp != 0 &&
      HP.Header.Fingerprint != BuildFp) {
    addDiag(Diag, ProfileError::FingerprintMismatch,
            "heap profile came from a different program");
    return false;
  }
  return true;
}

} // namespace

NativeImage nimg::buildNativeImage(Program &P, const BuildConfig &Cfg) {
  assert(P.MainMethod != -1 && "program has no entry point");
  NativeImage Img;
  Img.P = &P;
  Img.Instrumented = Cfg.Instrumented;
  Img.Seed = Cfg.Seed;

  NIMG_SPAN_NAMED(BuildSpan, "pipeline", "buildNativeImage");
  NIMG_SPAN_ARG(BuildSpan, "instrumented", Cfg.Instrumented ? "true" : "false");
  NIMG_COUNTER_ADD("nimg.build.count", 1);
  if (Cfg.Instrumented)
    NIMG_COUNTER_ADD("nimg.build.instrumented", 1);

  // Builtin runtime classes must exist before the analysis fixes the
  // class-id space.
  ensureClassMetaClass(P);

  // Profile validation (degradation policy): a corrupt, stale, or
  // mismatched profile downgrades the affected ordering to the default
  // layout; it never fails the build.
  uint64_t BuildFp = programFingerprint(P);
  const CodeProfile *CodeProf = Cfg.CodeProf;
  // Fleet aggregation: merge the offered member set into the code profile
  // (quarantining damaged members with typed reasons) and hand the result
  // to the regular vetting below. A merge that loses every member lands
  // on the Fallback rung: the build keeps its default cu-order layout.
  CodeProfile MergedProf;
  if (Cfg.CodeOrder != CodeStrategy::None && Cfg.CodeMembers &&
      !Cfg.CodeMembers->empty()) {
    NIMG_SPAN("build", "merge_profiles");
    MergeOptions MOpts = Cfg.Merge;
    if (!MOpts.ExpectedFingerprint)
      MOpts.ExpectedFingerprint = BuildFp;
    // A method-order build merges method-granularity members; everything
    // else (cu, cluster) merges cu-granularity ones.
    MOpts.ExpectedMode = Cfg.CodeOrder == CodeStrategy::MethodOrder
                             ? TraceMode::MethodOrder
                             : TraceMode::CuOrder;
    MergeResult MR = aggregateProfiles(*Cfg.CodeMembers, MOpts);
    Img.ProfileDiag.Merge = std::move(MR.Manifest);
    if (MR.usable()) {
      MergedProf = std::move(MR.Profile);
      CodeProf = &MergedProf;
    } else {
      CodeProf = nullptr;
      Img.ProfileDiag.CodeProfileProvided = true;
      NIMG_COUNTER_ADD("nimg.build.degraded.code", 1);
    }
  }
  if (Cfg.CodeOrder != CodeStrategy::None && CodeProf) {
    Img.ProfileDiag.CodeProfileProvided = true;
    if (codeProfileUsable(*CodeProf, Cfg.CodeOrder, BuildFp,
                          Img.ProfileDiag)) {
      Img.ProfileDiag.CodeProfileApplied = true;
    } else {
      CodeProf = nullptr;
      NIMG_COUNTER_ADD("nimg.build.degraded.code", 1);
    }
  }
  const BlockProfile *BlockProf = Cfg.BlockProf;
  bool SplitRequested = Cfg.Split == SplitMode::HotCold && !Cfg.Instrumented;
  if (SplitRequested && BlockProf) {
    Img.ProfileDiag.BlockProfileProvided = true;
    if (blockProfileUsable(*BlockProf, BuildFp, Img.ProfileDiag)) {
      Img.ProfileDiag.BlockProfileApplied = true;
    } else {
      BlockProf = nullptr;
      NIMG_COUNTER_ADD("nimg.build.degraded.split", 1);
    }
  }
  const EdgeProfile *EdgeProf = Cfg.EdgeProf;
  bool BlocksRequested =
      SplitRequested && Cfg.SplitOpts.Blocks == BlockOrderMode::ExtTsp;
  if (BlocksRequested && EdgeProf) {
    Img.ProfileDiag.EdgeProfileProvided = true;
    if (edgeProfileUsable(*EdgeProf, BuildFp, Img.ProfileDiag)) {
      Img.ProfileDiag.EdgeProfileApplied = true;
    } else {
      EdgeProf = nullptr;
      NIMG_COUNTER_ADD("nimg.build.degraded.blocks", 1);
    }
  }
  const HeapProfile *HeapProf = Cfg.HeapProf;
  if (Cfg.UseHeapOrder && HeapProf) {
    Img.ProfileDiag.HeapProfileProvided = true;
    if (heapProfileUsable(*HeapProf, Cfg.HeapOrder, BuildFp,
                          Img.ProfileDiag)) {
      Img.ProfileDiag.HeapProfileApplied = true;
    } else {
      HeapProf = nullptr;
      NIMG_COUNTER_ADD("nimg.build.degraded.heap", 1);
    }
  }
  // Per-rejection-kind counters for everything the degradation policy
  // recorded while vetting the offered profiles.
  for (const ProfileIssue &I : Img.ProfileDiag.Issues) {
    (void)I; // unused when observability is compiled out
    NIMG_COUNTER_ADD_DYN(
        std::string("nimg.build.profile_rejected.") + profileErrorSlug(I.Kind),
        1);
  }

  // 1. Points-to-style reachability (Sec. 2).
  {
    NIMG_SPAN("build", "reachability");
    Img.Reach = analyzeReachability(P, Cfg.Reach);
  }

  // 2. Compilation: size-driven inlining into CUs. Instrumentation
  //    inflates sizes, diverging the CU set from the optimized build's.
  {
    NIMG_SPAN("build", "compile");
    Img.Code =
        buildCompilationUnits(P, Img.Reach, Cfg.Inliner, Cfg.Instrumented);
  }
  // A compile task that threw degraded its unit to a root-only CU; the
  // build carries on with the degraded unit rather than failing, and the
  // fault is recorded on the image like a rejected profile would be.
  for (const auto &[Root, What] : Img.Code.CompileFaults) {
    addDiag(Img.ProfileDiag, ProfileError::WorkerFault,
            "compile task for " + P.method(Root).Sig +
                " failed; unit degraded to root only: " + What);
    NIMG_COUNTER_ADD("nimg.build.degraded.cu_compile", 1);
  }

  // 2b. Hot/cold CU splitting (--split hotcold): a pure function of the
  //     compiled CUs and the merged block profile, so its decisions — and
  //     the fingerprint folded below — are byte-identical at any --jobs.
  if (SplitRequested) {
    NIMG_SPAN("build", "split");
    Img.Split =
        splitCompiledProgram(P, Img.Code, BlockProf, Cfg.SplitOpts, EdgeProf);
    for (const ProfileIssue &I : Img.Split.Issues) {
      Img.ProfileDiag.Issues.push_back(I);
      NIMG_COUNTER_ADD_DYN(std::string("nimg.build.profile_rejected.") +
                               profileErrorSlug(I.Kind),
                           1);
    }
    // A wholesale degrade (no profile, bad coverage) means nothing was
    // actually applied even when the header vetted clean.
    if (Img.Split.SplitCus == 0 &&
        Img.Split.DegradedCus == uint32_t(Img.Code.CUs.size()))
      Img.ProfileDiag.BlockProfileApplied = false;
    // "Applied" for the edge profile means at least one hot fragment was
    // actually reordered; usable-but-inert counts report as provided only.
    if (BlocksRequested)
      Img.ProfileDiag.EdgeProfileApplied = Img.Split.ExtTsp.Applied;
  }

  // 3. Code ordering (Sec. 4) — determines .text placement and, through
  //    it, the default object traversal order.
  std::vector<int32_t> CuOrder;
  if (Cfg.CodeOrder != CodeStrategy::None && CodeProf) {
    NIMG_SPAN("build", "code_order");
    CuOrder = orderCusWithProfile(P, Img.Code, *CodeProf, Cfg.CodeOrder);
  }

  // 4. Build-time initialization (permuted) and heap snapshotting.
  {
    NIMG_SPAN("build", "heap_init");
    Img.Built = initializeBuildHeap(P, Img.Reach, Cfg.Seed);
  }
  if (Img.Built.Failed) {
    NIMG_COUNTER_ADD("nimg.build.failed", 1);
    return Img;
  }

  SnapshotConfig SnapCfg;
  SnapCfg.EnablePea = Cfg.EnablePea;
  SnapCfg.PeaRate = Cfg.PeaRate;
  uint64_t InlineFp = Img.Code.InlineFingerprint;
  if (Img.Split.active())
    InlineFp = mix64(InlineFp, Img.Split.DecisionFingerprint);
  SnapCfg.PeaFingerprint = mix64(InlineFp, Cfg.Seed);
  SnapCfg.CuOrder = CuOrder;
  {
    NIMG_SPAN("build", "snapshot");
    Img.Snapshot = buildSnapshot(P, *Img.Built.BuildHeap, Img.Built, Img.Code,
                                 Img.Reach, SnapCfg);
  }

  // 5. Identifier assignment (Sec. 5): the profiling build stores these in
  //    the image; the optimizing build uses them only for matching.
  {
    NIMG_SPAN("build", "id_table");
    Img.Ids = computeIdTable(P, *Img.Built.BuildHeap, Img.Snapshot,
                             Cfg.StructuralMaxDepth);
  }

  // 6. Heap ordering (Sec. 5): match the profile's ids against this
  //    build's snapshot and hoist matched objects to the front.
  std::vector<int32_t> ObjOrder;
  if (Cfg.UseHeapOrder && HeapProf) {
    NIMG_SPAN_NAMED(HeapOrderSpan, "build", "heap_order");
    NIMG_SPAN_ARG(HeapOrderSpan, "strategy", heapStrategyName(Cfg.HeapOrder));
    ObjOrder = orderObjectsWithProfile(Img.Snapshot, Img.Ids, Cfg.HeapOrder,
                                       *HeapProf);
  }

  // 7. Image layout.
  {
    NIMG_SPAN("build", "layout");
    Img.Layout =
        computeImageLayout(P, Img.Code, Img.Snapshot, CuOrder, ObjOrder,
                           Cfg.Image, &Img.Split);
  }
  // A huge-page budget the hot .text prefix cannot fill degrades typed:
  // the clamp already happened in the layout, this records why.
  if (Img.Layout.HugePagesRequested > Img.Layout.HugePages) {
    addDiag(Img.ProfileDiag, ProfileError::HugeBudgetUnfillable,
            "hot .text justifies only " +
                std::to_string(Img.Layout.HugePages) + " of " +
                std::to_string(Img.Layout.HugePagesRequested) +
                " requested huge pages; remainder stays on 4 KiB pages");
    NIMG_COUNTER_ADD_DYN(
        std::string("nimg.build.profile_rejected.") +
            profileErrorSlug(ProfileError::HugeBudgetUnfillable),
        1);
  }
  // Multi-size packing is part of the build identity: fold the huge-page
  // decision into the image's decision fingerprint. Gated on the request
  // so a zero budget stays byte-identical to a build without the option
  // (and this runs after the snapshot, so PEA elision — which consumes
  // the fingerprint state above — is untouched either way).
  if (Img.Layout.HugePagesRequested > 0)
    Img.Split.DecisionFingerprint =
        mix64(mix64(Img.Split.DecisionFingerprint,
                    uint64_t(Img.Layout.HugePagesRequested)),
              mix64(uint64_t(Img.Layout.HugePages), Img.Layout.HugeRegionSize));

  NIMG_GAUGE_SET("nimg.build.last_text_size", int64_t(Img.Layout.TextSize));
  NIMG_GAUGE_SET("nimg.build.last_heap_size", int64_t(Img.Layout.HeapSize));
  return Img;
}

CollectedProfiles nimg::collectProfiles(Program &P,
                                        const BuildConfig &InstrumentedCfg,
                                        const RunConfig &RunCfg) {
  CollectedProfiles Out;

  NIMG_SPAN_NAMED(CollectSpan, "pipeline", "collectProfiles");
  NIMG_COUNTER_ADD("nimg.profile.collect.count", 1);

  BuildConfig Cfg = InstrumentedCfg;
  Cfg.Instrumented = true;
  Cfg.CodeOrder = CodeStrategy::None;
  Cfg.UseHeapOrder = false;
  NativeImage Img = [&] {
    NIMG_SPAN("pipeline", "instrumented_build");
    return buildNativeImage(P, Cfg);
  }();
  assert(!Img.Built.Failed && "instrumented build failed");

  // Sampled capture profiles the *production* geometry: an uninstrumented
  // build whose inlining is not inflated by probe code (the instrumented
  // image stays for the heap run, which needs operand probes).
  bool SampledCode = InstrumentedCfg.ProfileCapture == CaptureKind::Sampled;
  NativeImage SampImg;
  if (SampledCode) {
    NIMG_SPAN("pipeline", "sampled_build");
    BuildConfig SCfg = Cfg;
    SCfg.Instrumented = false;
    SampImg = buildNativeImage(P, SCfg);
    assert(!SampImg.Built.Failed && "sampled-capture build failed");
  }

  PathGraphCache Paths(P);

  auto RunWith = [&](const NativeImage &RunImg, TraceMode Mode,
                     RunStats &StatsOut) {
    TraceOptions TOpts;
    TOpts.Mode = Mode;
    // Workloads killed before clean exit need the memory-mapped dump mode
    // (Sec. 6.1); AWFY-style runs terminate normally and flush.
    TOpts.Dump = RunCfg.StopAtFirstResponse ? DumpMode::MemoryMapped
                                            : DumpMode::FlushOnFull;
    // Varint-delta dumps cut the persisted bytes (and the modeled mmap
    // probe cost) to a fraction of the raw 8 bytes/word; salvage and the
    // analyses decode both encodings transparently.
    TOpts.Encoding = TraceEncoding::VarintDelta;
    TOpts.SamplePeriod = InstrumentedCfg.SamplePeriod;
    TOpts.SamplePhase = InstrumentedCfg.SamplePhase;
    RunConfig RC = RunCfg;
    RC.Trace = &TOpts;
    TraceCapture Capture;
    StatsOut = runImage(RunImg, RC, &Capture);
    if (Capture.totalWords() == 0) {
      // An empty capture usually means the run died before any buffer
      // flushed (mode-1 SIGKILL); retry once with the memory-mapped dump
      // mode, which persists every word.
      TOpts.Dump = DumpMode::MemoryMapped;
      StatsOut = runImage(RunImg, RC, &Capture);
      ++Out.RetriedRuns;
      NIMG_COUNTER_ADD("nimg.profile.collect.retried_runs", 1);
    }
    return Capture;
  };

  uint64_t Fp = programFingerprint(P);
  uint64_t Gen = InstrumentedCfg.ProfileGeneration;

  if (SampledCode) {
    // One Sampled-mode run feeds both code granularities: every sample
    // word carries the executing method and its CU root.
    TraceCapture SampCap;
    {
      NIMG_SPAN("profile", "trace.sampled");
      SampCap = RunWith(SampImg, TraceMode::Sampled, Out.CuRun);
    }
    Out.MethodRun = Out.CuRun;
    // Effective coverage = salvage coverage capped by the run's own
    // estimate (distinct sampled roots per entered root): a clean dump of
    // a sparse sampling is still a sparse sampling.
    uint32_t Estimate = Out.CuRun.SampleCoveragePermille;
    {
      NIMG_SPAN("profile", "post.sample_cu");
      Out.Cu = analyzeSampledCuOrder(P, SampCap, &Out.CuSalvage);
      Out.Cu.Header.Fingerprint = Fp;
      Out.Cu.Header.Generation = Gen;
      Out.Cu.Header.CoveragePermille =
          std::min(Out.Cu.Header.CoveragePermille, Estimate);
    }
    {
      NIMG_SPAN("profile", "post.sample_method");
      Out.Method = analyzeSampledMethodOrder(P, SampCap, &Out.MethodSalvage);
      Out.Method.Header.Fingerprint = Fp;
      Out.Method.Header.Generation = Gen;
      Out.Method.Header.CoveragePermille =
          std::min(Out.Method.Header.CoveragePermille, Estimate);
    }
    // Samples carry no CU transitions or path records, so the cluster
    // profile degrades to the sampled cu order and splitting evidence is
    // typed-unavailable — both documented degradations, not failures.
    Out.Cluster = Out.Cu;
    Out.ClusterIssues.push_back(
        {ProfileError::EmptyTransitionGraph, 0,
         "sampled capture carries no CU transitions; cluster ordering "
         "degrades to the sampled cu order"});
    Out.Blocks.LoadError = ProfileError::InsufficientBlockProfile;
    Out.Blocks.Header.Fingerprint = Fp;
    Out.Blocks.Header.Generation = Gen;
    Out.Edges.LoadError = ProfileError::InsufficientEdgeProfile;
    Out.Edges.Header.Fingerprint = Fp;
    Out.Edges.Header.Generation = Gen;
  } else {
    TraceCapture CuCap;
    {
      NIMG_SPAN("profile", "trace.cu");
      CuCap = RunWith(Img, TraceMode::CuOrder, Out.CuRun);
    }
    {
      NIMG_SPAN("profile", "post.cu");
      Out.Cu = analyzeCuOrder(P, CuCap, &Out.CuSalvage);
      Out.Cu.Header.Fingerprint = Fp;
      Out.Cu.Header.Generation = Gen;
    }
    {
      // The cluster profile reuses the cu-mode capture: CU transitions are
      // already in it, so clustering costs one more post-processing pass,
      // not another instrumented run.
      NIMG_SPAN("profile", "post.cluster");
      ClusterOptions COpts;
      COpts.PageBudgetBytes = Cfg.ClusterPageBudget;
      COpts.HugePages = Cfg.Image.HugePages;
      Out.Cluster =
          analyzeClusterOrder(P, CuCap, Img.Code, COpts, nullptr,
                              &Out.ClusterIssues, &Out.ClusterLayoutStats);
      Out.Cluster.Header.Fingerprint = Fp;
      Out.Cluster.Header.Generation = Gen;
    }

    TraceCapture MethodCap;
    {
      NIMG_SPAN("profile", "trace.method");
      MethodCap = RunWith(Img, TraceMode::MethodOrder, Out.MethodRun);
    }
    {
      NIMG_SPAN("profile", "post.method");
      Out.Method = analyzeMethodOrder(P, MethodCap, Paths, &Out.MethodSalvage);
      Out.Method.Header.Fingerprint = Fp;
      Out.Method.Header.Generation = Gen;
    }
    {
      // Block counts reuse the method-order capture: every path record
      // already names the blocks it visits, so splitting evidence costs one
      // more post-processing pass, not another instrumented run.
      NIMG_SPAN("profile", "post.blocks");
      Out.Blocks = analyzeBlockCounts(P, MethodCap, Paths, nullptr);
      Out.Blocks.Header.Fingerprint = Fp;
      Out.Blocks.Header.Generation = Gen;
      Out.Blocks.Header.CoveragePermille = Out.Blocks.CoveragePermille;
    }
    {
      // Edge counts reuse the same capture again: consecutive blocks of a
      // path record are CFG edges, so the reordering evidence also costs
      // one more post-processing pass, not another instrumented run.
      NIMG_SPAN("profile", "post.edges");
      Out.Edges = analyzeEdgeCounts(P, MethodCap, Paths, nullptr);
      Out.Edges.Header.Fingerprint = Fp;
      Out.Edges.Header.Generation = Gen;
      Out.Edges.Header.CoveragePermille = Out.Edges.CoveragePermille;
    }
  }

  TraceCapture HeapCap;
  {
    NIMG_SPAN("profile", "trace.heap");
    HeapCap = RunWith(Img, TraceMode::HeapOrder, Out.HeapRun);
  }
  {
    NIMG_SPAN("profile", "post.heap");
    std::vector<int32_t> AccessOrder =
        analyzeHeapAccessOrder(P, HeapCap, Paths, &Out.HeapSalvage);
    Out.IncrementalId =
        heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::IncrementalId);
    Out.StructuralHash =
        heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::StructuralHash);
    Out.HeapPath =
        heapProfileFor(AccessOrder, Img.Ids, HeapStrategy::HeapPath);
    Out.IncrementalId.Header.Fingerprint = Fp;
    Out.StructuralHash.Header.Fingerprint = Fp;
    Out.HeapPath.Header.Fingerprint = Fp;
    Out.IncrementalId.Header.Generation = Gen;
    Out.StructuralHash.Header.Generation = Gen;
    Out.HeapPath.Header.Generation = Gen;
  }
  return Out;
}

std::vector<MemberProfile>
nimg::collectProfileSet(Program &P, const BuildConfig &InstrumentedCfg,
                        const RunConfig &RunCfg,
                        const std::vector<std::string> &InstanceNames,
                        std::vector<ProfileIssue> *IssuesOut) {
  std::vector<MemberProfile> Out;
  Out.reserve(InstanceNames.size());

  NIMG_SPAN_NAMED(SetSpan, "pipeline", "collectProfileSet");
  NIMG_COUNTER_ADD("nimg.profile.collect.set_members", InstanceNames.size());

  // Sampled fleets run the uninstrumented production geometry, exactly
  // like collectProfiles().
  bool SampledCode = InstrumentedCfg.ProfileCapture == CaptureKind::Sampled;
  BuildConfig Cfg = InstrumentedCfg;
  Cfg.Instrumented = !SampledCode;
  Cfg.CodeOrder = CodeStrategy::None;
  Cfg.UseHeapOrder = false;
  NativeImage Img = [&] {
    NIMG_SPAN("pipeline", "instrumented_build");
    return buildNativeImage(P, Cfg);
  }();
  assert(!Img.Built.Failed && "instrumented build failed");
  uint64_t Fp = programFingerprint(P);

  std::unordered_set<std::string> Seen;
  for (size_t I = 0; I < InstanceNames.size(); ++I) {
    MemberProfile M;
    M.Name = InstanceNames[I];
    // Duplicate names within one capture set are a configuration bug the
    // merge can no longer untangle (which instance produced what?); each
    // later holder is rejected typed, not silently last-writer-wins.
    if (!Seen.insert(M.Name).second) {
      M.Profile.LoadError = ProfileError::DuplicateMember;
      M.Read.Fatal = ProfileError::DuplicateMember;
      M.Read.Issues.push_back({ProfileError::DuplicateMember, I + 1,
                               "instance name repeats within the set"});
      NIMG_COUNTER_ADD("nimg.profile.collect.duplicate_member", 1);
      if (IssuesOut)
        IssuesOut->push_back(M.Read.Issues.back());
      Out.push_back(std::move(M));
      continue;
    }
    TraceOptions TOpts;
    TOpts.Mode = SampledCode ? TraceMode::Sampled : TraceMode::CuOrder;
    TOpts.Dump = RunCfg.StopAtFirstResponse ? DumpMode::MemoryMapped
                                            : DumpMode::FlushOnFull;
    TOpts.Encoding = TraceEncoding::VarintDelta;
    if (SampledCode) {
      // Stagger member phases evenly across the period: the fleet's merged
      // sample set then covers clock offsets no single member sees.
      TOpts.SamplePeriod = InstrumentedCfg.SamplePeriod;
      TOpts.SamplePhase =
          InstrumentedCfg.SamplePhase +
          I * std::max<uint64_t>(1, TOpts.SamplePeriod) / InstanceNames.size();
    }
    RunConfig RC = RunCfg;
    RC.Trace = &TOpts;
    TraceCapture Capture;
    SalvageStats Salvage;
    RunStats Run;
    {
      NIMG_SPAN("profile", SampledCode ? "trace.sampled" : "trace.cu");
      Run = runImage(Img, RC, &Capture);
    }
    if (SampledCode) {
      M.Profile = analyzeSampledCuOrder(P, Capture, &Salvage);
      M.Profile.Header.CoveragePermille = std::min(
          M.Profile.Header.CoveragePermille, Run.SampleCoveragePermille);
    } else {
      M.Profile = analyzeCuOrder(P, Capture, &Salvage);
    }
    M.Profile.Header.Fingerprint = Fp;
    M.Profile.Header.Generation = InstrumentedCfg.ProfileGeneration + I;
    M.Read.HeaderPresent = true;
    M.Read.Header = M.Profile.Header;
    M.Read.RowsKept = M.Profile.Sigs.size();
    Out.push_back(std::move(M));
  }
  return Out;
}
