//===- Builder.h - The Native-Image build pipeline ---------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end build pipeline of the paper's Fig. 1:
///
///   points-to analysis -> compile (inline, form CUs) -> [code ordering]
///   -> run static initializers -> snapshot the heap (+ identifier
///   assignment) -> [heap ordering] -> lay out the image.
///
/// A *profiling build* (Instrumented = true) carries tracing probes (which
/// perturb inlining via code size) and keeps per-object identifiers for
/// all three strategies. An *optimizing build* consumes a code profile
/// and/or a heap profile; it recomputes identifiers for its own snapshot
/// to match against the profile, and does not store them in the image.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_CORE_BUILDER_H
#define NIMG_CORE_BUILDER_H

#include "src/image/NativeImage.h"
#include "src/ordering/ClusterLayout.h"
#include "src/ordering/Orderers.h"
#include "src/profiling/Aggregate.h"
#include "src/profiling/Analyses.h"
#include "src/runtime/ExecEngine.h"

namespace nimg {

struct BuildConfig {
  /// Build seed: permutes build-time class initialization and (with the
  /// inline fingerprint) drives PEA elision — the paper's build-to-build
  /// nondeterminism.
  uint64_t Seed = 1;
  bool Instrumented = false;

  ReachabilityConfig Reach;
  InlinerConfig Inliner;
  ImageOptions Image;

  bool EnablePea = true;
  uint32_t PeaRate = 4;

  /// Structural-hash recursion bound (Sec. 7.1 uses 2).
  int StructuralMaxDepth = DefaultStructuralMaxDepth;

  /// Cluster-ordering page budget (bytes per cluster; 0 = unlimited).
  /// Consumed by collectProfiles when it derives the cluster profile from
  /// the cu-mode trace; the optimizing build just ingests the CSV.
  uint32_t ClusterPageBudget = DefaultClusterPageBudget;

  // Ordering strategies of the optimizing build.
  CodeStrategy CodeOrder = CodeStrategy::None;
  HeapStrategy HeapOrder = HeapStrategy::IncrementalId;
  bool UseHeapOrder = false;
  const CodeProfile *CodeProf = nullptr;
  const HeapProfile *HeapProf = nullptr;

  /// Fleet aggregation (--profiles a.csv,b.csv / --profile-dir): when
  /// non-null and nonempty, the members are merged (under Merge, with the
  /// build's own fingerprint as the skew reference) into the code profile
  /// and CodeProf is ignored. The quarantine manifest lands on the built
  /// image's ProfileDiag.Merge; a merge that quarantines every member
  /// degrades to the default cu-order layout, never fails the build.
  const std::vector<MemberProfile> *CodeMembers = nullptr;
  MergeOptions Merge;

  /// Monotonic generation stamp collectProfiles() writes into every
  /// produced profile header (v2 cell 7); 0 = unstamped, exempt from the
  /// merge staleness gate.
  uint64_t ProfileGeneration = 0;

  /// Capture strategy of collectProfiles()/collectProfileSet()
  /// (--profile-mode): Instrumented traces every transition through an
  /// instrumented build; Sampled runs an *uninstrumented* build (the
  /// production geometry — no probe-inflated inlining) and records a
  /// periodic sample of the executing method/CU, from which cu- and
  /// method-granularity profiles are both reconstructed. Heap ordering
  /// always needs instrumentation and keeps its instrumented run.
  CaptureKind ProfileCapture = CaptureKind::Instrumented;
  /// Sampled capture only (--sample-period): model-clock instructions
  /// between samples.
  uint64_t SamplePeriod = TraceOptions::DefaultSamplePeriod;
  /// Sampled capture only: clock offset of the first sample.
  /// collectProfileSet() staggers member phases across the period on top
  /// of this base, so a merged fleet set covers more of the clock.
  uint64_t SamplePhase = 0;

  /// Hot/cold CU splitting (--split hotcold), orthogonal to the code
  /// strategy. Ignored for instrumented builds (the profiling build must
  /// keep the geometry the traces describe). Missing/unusable block
  /// profiles degrade every CU to unsplit with an
  /// insufficient_block_profile diagnostic; the build still succeeds.
  SplitMode Split = SplitMode::None;
  const BlockProfile *BlockProf = nullptr;
  SplitOptions SplitOpts;
  /// CFG-edge counts feeding the ext-TSP hot-fragment block reordering
  /// (--blocks exttsp, i.e. SplitOpts.Blocks == ExtTsp). Only consulted
  /// for split builds; missing/unusable edge counts degrade every hot
  /// fragment to block index order with an insufficient_edge_profile
  /// diagnostic. The build still succeeds.
  const EdgeProfile *EdgeProf = nullptr;
};

/// Runs the full pipeline over \p P. Asserts the program has a main
/// method; a failed build (trapping initializer) is reported through the
/// returned image's Built.Failed.
///
/// Profiles are validated before use (load error, trace mode vs. code
/// strategy, heap strategy, program fingerprint). An invalid or stale
/// profile never fails the build: the affected ordering degrades to the
/// default layout and the rejection is recorded in the returned image's
/// ProfileDiag.
NativeImage buildNativeImage(Program &P, const BuildConfig &Cfg);

/// All ordering profiles obtained from one instrumented image, plus the
/// instrumented runs' stats (the profiling-overhead experiment of
/// Sec. 7.4 reads these).
struct CollectedProfiles {
  CodeProfile Cu;
  CodeProfile Method;
  /// Call-graph cluster ordering, derived from the same cu-mode trace as
  /// Cu (no extra instrumented run); a permutation of Cu's CU set.
  CodeProfile Cluster;
  /// Per-block execution counts, derived from the same method-order trace
  /// as Method (no extra instrumented run); feeds --split hotcold.
  BlockProfile Blocks;
  /// Per-CFG-edge execution counts, derived from the same method-order
  /// trace (no extra instrumented run); feeds --blocks exttsp.
  EdgeProfile Edges;
  HeapProfile IncrementalId;
  HeapProfile StructuralHash;
  HeapProfile HeapPath;
  RunStats CuRun;
  RunStats MethodRun;
  RunStats HeapRun;
  /// What trace salvage dropped from each instrumented run's capture.
  SalvageStats CuSalvage;
  SalvageStats MethodSalvage;
  SalvageStats HeapSalvage;
  /// Diagnostics from the cluster analysis (EmptyTransitionGraph when the
  /// cu trace carried no CU transitions and the profile degraded to plain
  /// cu ordering) plus what the greedy pass did.
  std::vector<ProfileIssue> ClusterIssues;
  ClusterStats ClusterLayoutStats;
  /// Instrumented runs re-executed because the first attempt produced an
  /// empty capture (retried once, in the memory-mapped dump mode).
  int RetriedRuns = 0;

  const HeapProfile &forStrategy(HeapStrategy S) const {
    switch (S) {
    case HeapStrategy::IncrementalId:
      return IncrementalId;
    case HeapStrategy::StructuralHash:
      return StructuralHash;
    case HeapStrategy::HeapPath:
      return HeapPath;
    }
    return HeapPath;
  }
};

/// Builds an instrumented image from \p InstrumentedCfg and runs it three
/// times (cu / method / heap tracing), post-processing each trace into its
/// ordering profile. \p RunCfg controls workload execution (microservices
/// set StopAtFirstResponse and use the memory-mapped dump mode, Sec. 6.1).
CollectedProfiles collectProfiles(Program &P, const BuildConfig &InstrumentedCfg,
                                  const RunConfig &RunCfg);

/// Captures one cu-order member profile per named instance from a single
/// instrumented build — the fleet-side producer of the aggregation
/// pipeline. Generations are stamped monotonically from
/// InstrumentedCfg.ProfileGeneration. A duplicate instance name within
/// the set is rejected with a typed DuplicateMember member (no run is
/// spent on it) instead of silently overwriting the earlier capture;
/// \p IssuesOut (optional) collects one ProfileIssue per rejection.
std::vector<MemberProfile>
collectProfileSet(Program &P, const BuildConfig &InstrumentedCfg,
                  const RunConfig &RunCfg,
                  const std::vector<std::string> &InstanceNames,
                  std::vector<ProfileIssue> *IssuesOut = nullptr);

} // namespace nimg

#endif // NIMG_CORE_BUILDER_H
