//===- ByteBuffer.h - Little-endian append-only byte buffer ----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only byte buffer used by the structural-hash and heap-path
/// identity strategies to encode objects before hashing (Alg. 2/3), and by
/// the trace writer. All multi-byte values are encoded little-endian so
/// hashes are stable across hosts.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_BYTEBUFFER_H
#define NIMG_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace nimg {

/// An append-only little-endian byte buffer.
class ByteBuffer {
public:
  ByteBuffer() = default;

  void appendU8(uint8_t V) { Bytes.push_back(V); }

  void appendU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(uint8_t(V >> (I * 8)));
  }

  void appendU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(uint8_t(V >> (I * 8)));
  }

  void appendI64(int64_t V) { appendU64(uint64_t(V)); }

  void appendF64(double V) {
    uint64_t Raw;
    std::memcpy(&Raw, &V, sizeof(Raw));
    appendU64(Raw);
  }

  /// Appends the raw characters of \p S (no length prefix).
  void appendString(std::string_view S) {
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  /// Appends a length-prefixed string; prefer this when concatenated
  /// encodings must stay unambiguous.
  void appendSizedString(std::string_view S) {
    appendU32(uint32_t(S.size()));
    appendString(S);
  }

  /// Appends another buffer's contents.
  void appendBuffer(const ByteBuffer &Other) {
    Bytes.insert(Bytes.end(), Other.Bytes.begin(), Other.Bytes.end());
  }

  /// Appends raw bytes (a memoized sub-encoding, e.g.).
  void appendBytes(const std::vector<uint8_t> &B) {
    Bytes.insert(Bytes.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  size_t size() const { return Bytes.size(); }
  bool empty() const { return Bytes.empty(); }
  void clear() { Bytes.clear(); }

private:
  std::vector<uint8_t> Bytes;
};

} // namespace nimg

#endif // NIMG_SUPPORT_BYTEBUFFER_H
