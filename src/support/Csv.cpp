//===- Csv.cpp - Minimal CSV reader/writer --------------------------------===//

#include "src/support/Csv.h"

using namespace nimg;

static bool needsQuoting(const std::string &Cell) {
  return Cell.find_first_of(",\"\n\r") != std::string::npos;
}

static void appendQuoted(std::string &Out, const std::string &Cell) {
  Out.push_back('"');
  for (char C : Cell) {
    if (C == '"')
      Out.push_back('"');
    Out.push_back(C);
  }
  Out.push_back('"');
}

std::string nimg::writeCsv(const CsvDocument &Doc) {
  std::string Out;
  for (const auto &Row : Doc.Rows) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out.push_back(',');
      if (needsQuoting(Row[I]))
        appendQuoted(Out, Row[I]);
      else
        Out += Row[I];
    }
    Out.push_back('\n');
  }
  return Out;
}

CsvDocument nimg::parseCsv(const std::string &Text) {
  CsvDocument Doc;
  std::vector<std::string> Row;
  std::string Cell;
  bool InQuotes = false;
  bool RowHasData = false;

  auto EndCell = [&] {
    Row.push_back(Cell);
    Cell.clear();
  };
  auto EndRow = [&] {
    EndCell();
    Doc.Rows.push_back(Row);
    Row.clear();
    RowHasData = false;
  };

  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (InQuotes) {
      if (C == '"') {
        if (I + 1 < Text.size() && Text[I + 1] == '"') {
          Cell.push_back('"');
          ++I;
        } else {
          InQuotes = false;
        }
      } else {
        Cell.push_back(C);
      }
      continue;
    }
    switch (C) {
    case '"':
      InQuotes = true;
      RowHasData = true;
      break;
    case ',':
      EndCell();
      RowHasData = true;
      break;
    case '\r':
      break;
    case '\n':
      EndRow();
      break;
    default:
      Cell.push_back(C);
      RowHasData = true;
      break;
    }
  }
  if (RowHasData || !Cell.empty() || !Row.empty())
    EndRow();
  return Doc;
}
