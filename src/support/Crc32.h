//===- Crc32.h - CRC-32 checksum -------------------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant). Used to checksum
/// the payload of profile CSV files so a truncated or bit-flipped profile
/// is detected at ingestion instead of silently producing a garbage
/// layout.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_CRC32_H
#define NIMG_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace nimg {

/// CRC-32 of \p Len bytes at \p Data.
uint32_t crc32(const void *Data, size_t Len);

inline uint32_t crc32(const std::string &S) { return crc32(S.data(), S.size()); }

} // namespace nimg

#endif // NIMG_SUPPORT_CRC32_H
