//===- SplitMix64.h - Deterministic 64-bit RNG -----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 pseudo-random generator. Used wherever the reproduction needs
/// deterministic "nondeterminism": the parallel-clinit permutation, PEA
/// elision decisions, and workload data generation. Seeded explicitly so
/// every build and benchmark run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_SPLITMIX64_H
#define NIMG_SUPPORT_SPLITMIX64_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace nimg {

/// SplitMix64 generator (Steele, Lea, Flood; public domain reference
/// implementation by Vigna).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow() requires a nonzero bound");
    return next() % Bound;
  }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[nextBelow(I)]);
  }

private:
  uint64_t State;
};

/// Stateless mix of two 64-bit values; used for per-site deterministic
/// decisions (e.g. whether PEA folds a given allocation in a given build).
inline uint64_t mix64(uint64_t A, uint64_t B) {
  uint64_t Z = A + 0x9e3779b97f4a7c15ULL * (B + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace nimg

#endif // NIMG_SUPPORT_SPLITMIX64_H
