//===- AtomicFile.h - Crash-safe file writes --------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temp-file + rename writes for every artifact a later build ingests
/// (profile CSVs, blocks.csv, startup reports). A process killed mid-write
/// leaves either the previous file intact or a stray *.tmp — never a
/// truncated artifact that ingestion would have to quarantine. The
/// injectable fault hook lets the FaultInjection suite kill a write
/// partway through and assert exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_ATOMICFILE_H
#define NIMG_SUPPORT_ATOMICFILE_H

#include <string>

namespace nimg {

/// Writes \p Data to \p Path atomically: the bytes land in Path + ".tmp"
/// first and are renamed over \p Path only after a successful full write.
/// Returns false (leaving any existing file untouched and removing the
/// temp) when the write fails — including when the test fault hook cuts
/// it short.
bool atomicWriteFile(const std::string &Path, const std::string &Data);

/// Test hook simulating a crash mid-write: the next atomicWriteFile()
/// persists at most \p Bytes bytes of the payload into the temp file and
/// then fails as if the process had died. Pass a negative value to
/// disarm. One-shot: the hook disarms after firing.
void setAtomicWriteTruncationForTest(long Bytes);

} // namespace nimg

#endif // NIMG_SUPPORT_ATOMICFILE_H
