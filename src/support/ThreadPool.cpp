//===- ThreadPool.cpp - Deterministic fixed-size thread pool ----------------===//

#include "src/support/ThreadPool.h"

#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define NIMG_HAVE_THREAD_CPUTIME 1
#endif

using namespace nimg;

namespace {

/// Chunks outnumber workers by this factor so uneven chunk costs still
/// balance (a worker that drew a cheap chunk pulls another one).
constexpr size_t OversubFactor = 4;

thread_local bool InParallelTask = false;

struct ParallelRegionGuard {
  ParallelRegionGuard() { InParallelTask = true; }
  ~ParallelRegionGuard() { InParallelTask = false; }
};

/// Timing hook state: the flag makes the disabled fast path one relaxed
/// load; the hook itself is guarded for set-vs-call ordering by convention
/// (set it only while no parallel work is in flight).
std::atomic<bool> TimingEnabled{false};
ChunkTimingFn &timingHook() {
  static ChunkTimingFn Hook;
  return Hook;
}
std::atomic<uint64_t> BatchSeq{0};

uint64_t threadCpuNs() {
#ifdef NIMG_HAVE_THREAD_CPUTIME
  timespec Ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts) == 0)
    return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
#endif
  return 0;
}

} // namespace

/// One parallelFor invocation. Heap-allocated and shared with the workers
/// so a straggler waking after the batch completed only ever touches this
/// object, never the state of a newer batch.
struct ThreadPool::Batch {
  const ChunkFn *Fn = nullptr;
  const char *Stage = "";
  uint64_t Seq = 0;
  size_t N = 0;
  size_t ChunkSize = 1;
  size_t NumChunks = 0;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};

  std::mutex Mu; // Guards Errors / Completed.
  std::condition_variable DoneCv;
  bool Completed = false;
  /// (chunk index, exception) of every throwing chunk; the lowest chunk
  /// index is rethrown so the surfaced error is scheduling-independent.
  std::vector<std::pair<size_t, std::exception_ptr>> Errors;
};

ThreadPool::ThreadPool(int Jobs) : NumJobs(std::max(1, Jobs)) {
  Workers.reserve(size_t(NumJobs - 1));
  for (int I = 1; I < NumJobs; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> G(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool ThreadPool::inParallelRegion() { return InParallelTask; }

void ThreadPool::runOneChunk(Batch &B, size_t Chunk) {
  size_t Begin = Chunk * B.ChunkSize;
  size_t End = std::min(Begin + B.ChunkSize, B.N);
  NIMG_SPAN("parallel",
            std::string(B.Stage) + " chunk " + std::to_string(Chunk));
  bool Timed = TimingEnabled.load(std::memory_order_relaxed);
  uint64_t T0 = Timed ? threadCpuNs() : 0;
  (*B.Fn)(Begin, End, Chunk);
  if (Timed)
    timingHook()(B.Stage, B.Seq, Chunk, threadCpuNs() - T0);
}

void ThreadPool::runChunks(Batch &B) {
  ParallelRegionGuard Guard;
  while (true) {
    size_t C = B.Next.fetch_add(1, std::memory_order_relaxed);
    if (C >= B.NumChunks)
      return;
    try {
      runOneChunk(B, C);
    } catch (...) {
      std::lock_guard<std::mutex> G(B.Mu);
      B.Errors.emplace_back(C, std::current_exception());
    }
    if (B.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == B.NumChunks) {
      std::lock_guard<std::mutex> G(B.Mu);
      B.Completed = true;
      B.DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> L(Mu);
  uint64_t Seen = 0;
  while (true) {
    WorkCv.wait(L, [&] { return Stop || Gen != Seen; });
    if (Stop)
      return;
    Seen = Gen;
    std::shared_ptr<Batch> B = Current;
    L.unlock();
    if (B)
      runChunks(*B);
    L.lock();
  }
}

void ThreadPool::parallelFor(size_t N, size_t MinChunk, const char *Stage,
                             const ChunkFn &Fn) {
  if (N == 0)
    return;
  if (InParallelTask)
    throw std::logic_error(
        "nested ThreadPool::parallelFor from inside a parallel task");
  if (MinChunk == 0)
    MinChunk = 1;

  size_t WantChunks = size_t(NumJobs) * OversubFactor;
  size_t ChunkSize = std::max(MinChunk, (N + WantChunks - 1) / WantChunks);
  size_t NumChunks = (N + ChunkSize - 1) / ChunkSize;

  NIMG_COUNTER_ADD("nimg.parallel.for.count", 1);
  NIMG_COUNTER_ADD_DYN(std::string("nimg.parallel.") + Stage + ".items", N);
  NIMG_COUNTER_ADD_DYN(std::string("nimg.parallel.") + Stage + ".chunks",
                       NumChunks);

  Batch B;
  B.Fn = &Fn;
  B.Stage = Stage;
  B.Seq = BatchSeq.fetch_add(1, std::memory_order_relaxed);
  B.N = N;
  B.ChunkSize = ChunkSize;
  B.NumChunks = NumChunks;

  // Inline execution: sequential pools, single-chunk batches. Zero thread
  // handoffs; exceptions propagate directly (first throwing chunk wins —
  // which is also the lowest index, matching the threaded contract).
  if (NumJobs == 1 || NumChunks == 1 || Workers.empty()) {
    NIMG_COUNTER_ADD("nimg.parallel.for.inline", 1);
    ParallelRegionGuard Guard;
    for (size_t C = 0; C < NumChunks; ++C)
      runOneChunk(B, C);
    return;
  }

  auto Shared = std::make_shared<Batch>();
  Shared->Fn = &Fn;
  Shared->Stage = Stage;
  Shared->Seq = B.Seq;
  Shared->N = N;
  Shared->ChunkSize = ChunkSize;
  Shared->NumChunks = NumChunks;
  {
    std::lock_guard<std::mutex> G(Mu);
    Current = Shared;
    ++Gen;
  }
  WorkCv.notify_all();

  runChunks(*Shared); // The caller is a worker too.
  {
    std::unique_lock<std::mutex> DL(Shared->Mu);
    Shared->DoneCv.wait(DL, [&] { return Shared->Completed; });
  }
  {
    std::lock_guard<std::mutex> G(Mu);
    if (Current == Shared)
      Current.reset();
  }
  if (!Shared->Errors.empty()) {
    auto It = std::min_element(
        Shared->Errors.begin(), Shared->Errors.end(),
        [](const auto &A, const auto &C) { return A.first < C.first; });
    std::rethrow_exception(It->second);
  }
}

//===----------------------------------------------------------------------===//
// Process-wide jobs configuration and shared pool.
//===----------------------------------------------------------------------===//

namespace {

struct PoolState {
  std::mutex Mu;
  std::unique_ptr<ThreadPool> Pool;
  int Requested = 0; // setJobs() override; 0 = env / hardware.
};

PoolState &poolState() {
  static PoolState S;
  return S;
}

int envJobs() {
  const char *E = std::getenv("NIMG_JOBS");
  if (!E || !*E)
    return 0;
  int V = std::atoi(E);
  return V > 0 ? V : 0;
}

int resolveJobs(int Requested) {
  if (Requested > 0)
    return std::min(Requested, 256);
  if (int E = envJobs())
    return std::min(E, 256);
  return hardwareJobs();
}

} // namespace

int nimg::hardwareJobs() {
  unsigned H = std::thread::hardware_concurrency();
  return H ? int(H) : 1;
}

int nimg::currentJobs() {
  PoolState &S = poolState();
  std::lock_guard<std::mutex> G(S.Mu);
  if (S.Pool)
    return S.Pool->jobs();
  return resolveJobs(S.Requested);
}

void nimg::setJobs(int Jobs) {
  PoolState &S = poolState();
  std::lock_guard<std::mutex> G(S.Mu);
  S.Requested = Jobs > 0 ? Jobs : 0;
  S.Pool.reset(); // Recreated lazily with the new count.
}

ThreadPool &nimg::sharedPool() {
  PoolState &S = poolState();
  std::lock_guard<std::mutex> G(S.Mu);
  if (!S.Pool) {
    S.Pool = std::make_unique<ThreadPool>(resolveJobs(S.Requested));
    NIMG_GAUGE_SET("nimg.parallel.jobs", int64_t(S.Pool->jobs()));
  }
  return *S.Pool;
}

void nimg::setChunkTimingHook(ChunkTimingFn Fn) {
  bool On = static_cast<bool>(Fn);
  timingHook() = std::move(Fn);
  TimingEnabled.store(On, std::memory_order_relaxed);
}
