//===- Crc32.cpp - CRC-32 checksum -------------------------------------------===//

#include "src/support/Crc32.h"

#include <array>

using namespace nimg;

namespace {

std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0xedb88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t nimg::crc32(const void *Data, size_t Len) {
  static const std::array<uint32_t, 256> Table = makeTable();
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xffffffffu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ Bytes[I]) & 0xff] ^ (C >> 8);
  return C ^ 0xffffffffu;
}
