//===- Murmur3.h - MurmurHash3 x64-128 hash -------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MurmurHash3 (x64, 128-bit variant) as referenced by the paper's
/// structural-hash and heap-path object-identity strategies (Sec. 5.2 and
/// 5.3). The strategies consume the low 64 bits of the 128-bit digest.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_MURMUR3_H
#define NIMG_SUPPORT_MURMUR3_H

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace nimg {

/// 128-bit MurmurHash3 digest.
struct Murmur3Digest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const Murmur3Digest &A, const Murmur3Digest &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
};

/// Computes MurmurHash3 x64-128 over \p Data with the given \p Seed.
Murmur3Digest murmurHash3x64_128(const void *Data, size_t Len,
                                 uint64_t Seed = 0);

/// Convenience wrapper returning the low 64 bits of the 128-bit digest,
/// which is the object-identity width used throughout Sec. 5.
inline uint64_t murmurHash3(const void *Data, size_t Len, uint64_t Seed = 0) {
  return murmurHash3x64_128(Data, Len, Seed).Lo;
}

inline uint64_t murmurHash3(std::string_view S, uint64_t Seed = 0) {
  return murmurHash3(S.data(), S.size(), Seed);
}

inline uint64_t murmurHash3(const std::vector<uint8_t> &Bytes,
                            uint64_t Seed = 0) {
  return murmurHash3(Bytes.data(), Bytes.size(), Seed);
}

} // namespace nimg

#endif // NIMG_SUPPORT_MURMUR3_H
