//===- ThreadPool.h - Deterministic fixed-size thread pool ------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fan-out substrate of the parallel pipeline (DESIGN.md § 10). A
/// ThreadPool owns a fixed set of workers; parallelFor() splits an index
/// range [0, N) into contiguous chunks that workers (and the calling
/// thread) pull from an atomic cursor. Which worker runs which chunk is
/// scheduling-dependent, but chunk *boundaries* are a pure function of
/// (N, MinChunk, jobs) and every chunk writes only its own output slots —
/// pipeline stages then merge per-chunk results at an ordered join point,
/// so profiles, object ids, and image layouts are byte-identical for any
/// worker count (the determinism guarantee the ordering pipeline needs:
/// profile-guided layout tools are only trustworthy when a rebuild with
/// more cores reproduces the same image).
///
/// Contracts:
///  - `--jobs 1` (or a single chunk) executes inline on the caller with
///    zero thread handoffs — the sequential pipeline is literally the same
///    code path.
///  - A task exception is captured and rethrown from parallelFor() on the
///    caller; when several chunks throw, the lowest chunk index wins, so
///    the surfaced error does not depend on scheduling. Inline execution
///    stops at the first throwing chunk; threaded execution still drains
///    the remaining chunks (outputs are discarded by the throw).
///  - Nested use from inside a task throws std::logic_error: the pool is
///    fixed-size and a blocked worker waiting on its own pool deadlocks.
///
/// The process-wide worker count comes from, in priority order: setJobs()
/// (the CLI's `--jobs N`), the NIMG_JOBS environment variable, and
/// std::thread::hardware_concurrency(). Stages reach the pool through
/// sharedPool().
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_THREADPOOL_H
#define NIMG_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nimg {

class ThreadPool {
public:
  /// Chunk body: processes indices [Begin, End); Chunk is the chunk index
  /// (chunk 0 covers [0, ChunkSize), etc.).
  using ChunkFn = std::function<void(size_t Begin, size_t End, size_t Chunk)>;

  /// Spawns Jobs - 1 worker threads (the caller is the Jobs-th worker).
  /// Jobs < 1 is clamped to 1; a 1-job pool spawns no threads at all.
  explicit ThreadPool(int Jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int jobs() const { return NumJobs; }

  /// Runs \p Fn over [0, N) in chunks of at least \p MinChunk indices.
  /// Blocks until every chunk completed. \p Stage names the work for the
  /// per-stage nimg.parallel.<stage>.* counters and worker-chunk spans.
  void parallelFor(size_t N, size_t MinChunk, const char *Stage,
                   const ChunkFn &Fn);

  /// Whether the calling thread is currently inside a parallelFor task (of
  /// any pool, including the inline jobs=1 execution).
  static bool inParallelRegion();

private:
  struct Batch;

  void workerLoop();
  void runChunks(Batch &B);
  static void runOneChunk(Batch &B, size_t Chunk);

  int NumJobs;
  std::vector<std::thread> Workers;

  std::mutex Mu; // Guards Current / Gen / Stop.
  std::condition_variable WorkCv;
  std::shared_ptr<Batch> Current;
  uint64_t Gen = 0;
  bool Stop = false;
};

/// max(1, hardware_concurrency).
int hardwareJobs();

/// The worker count the next sharedPool() use will have (or the live
/// pool's count): setJobs() override, else NIMG_JOBS, else hardwareJobs().
int currentJobs();

/// Overrides the shared pool's worker count (`--jobs N`); 0 resets to the
/// NIMG_JOBS / hardware default. Destroys the current shared pool, so call
/// only between pipeline stages, never from inside parallel work.
void setJobs(int Jobs);

/// Lazily constructed process-wide pool with currentJobs() workers.
ThreadPool &sharedPool();

/// Bench/test instrumentation: when set, every chunk reports its thread
/// CPU time as (Stage, Batch, Chunk, CpuNs). \p Fn is invoked concurrently
/// from worker threads and must be thread-safe; pass nullptr to disable.
using ChunkTimingFn =
    std::function<void(const char *Stage, uint64_t Batch, size_t Chunk,
                       uint64_t CpuNs)>;
void setChunkTimingHook(ChunkTimingFn Fn);

/// Maps [0, N) through \p F on the shared pool into a vector in index
/// order — the ordered-merge primitive: Out[I] = F(I) regardless of which
/// worker computed it.
template <typename Fn>
auto parallelMap(size_t N, size_t MinChunk, const char *Stage, Fn F)
    -> std::vector<std::invoke_result_t<Fn &, size_t>> {
  using R = std::invoke_result_t<Fn &, size_t>;
  std::vector<R> Out(N);
  sharedPool().parallelFor(N, MinChunk, Stage,
                           [&](size_t Begin, size_t End, size_t) {
                             for (size_t I = Begin; I < End; ++I)
                               Out[I] = F(I);
                           });
  return Out;
}

} // namespace nimg

#endif // NIMG_SUPPORT_THREADPOOL_H
