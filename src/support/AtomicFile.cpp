//===- AtomicFile.cpp - Crash-safe file writes -------------------------------===//

#include "src/support/AtomicFile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace {

/// -1 = disarmed; >= 0 = byte cap for the next write, then the "crash".
long TruncateNextWriteAt = -1;

} // namespace

void nimg::setAtomicWriteTruncationForTest(long Bytes) {
  TruncateNextWriteAt = Bytes;
}

bool nimg::atomicWriteFile(const std::string &Path, const std::string &Data) {
  std::string Tmp = Path + ".tmp";
  bool Crashed = false;
  {
    std::ofstream F(Tmp, std::ios::binary | std::ios::trunc);
    if (!F.good()) {
      TruncateNextWriteAt = -1;
      return false;
    }
    size_t Limit = Data.size();
    if (TruncateNextWriteAt >= 0) {
      Limit = std::min(Data.size(), size_t(TruncateNextWriteAt));
      TruncateNextWriteAt = -1;
      Crashed = true;
    }
    F.write(Data.data(), std::streamsize(Limit));
    F.flush();
    if (!F.good())
      Crashed = true;
  }
  if (Crashed) {
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
