//===- Csv.h - Minimal CSV reader/writer -----------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV support. The paper's post-processing analyses emit one CSV
/// file per ordering profile which the optimizing build consumes (Sec. 6.2);
/// we mirror that interchange format so profiles can be inspected and are
/// decoupled from in-memory state.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_CSV_H
#define NIMG_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace nimg {

/// A parsed CSV document: rows of string cells.
struct CsvDocument {
  std::vector<std::vector<std::string>> Rows;
};

/// Serializes \p Doc. Cells containing commas, quotes, or newlines are
/// quoted per RFC 4180.
std::string writeCsv(const CsvDocument &Doc);

/// Parses RFC-4180-style CSV text. Handles quoted cells and embedded
/// quotes; tolerates a missing trailing newline.
CsvDocument parseCsv(const std::string &Text);

} // namespace nimg

#endif // NIMG_SUPPORT_CSV_H
