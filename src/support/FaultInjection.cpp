//===- FaultInjection.cpp - Deterministic fault injection ---------------------===//

#include "src/support/FaultInjection.h"

#include "src/profiling/Analyses.h"

#include <cstddef>

using namespace nimg;

using std::ptrdiff_t;

int32_t FaultInjector::pickNonEmptyThread(const TraceCapture &C) {
  std::vector<int32_t> NonEmpty;
  for (size_t I = 0; I < C.Threads.size(); ++I)
    if (!C.Threads[I].Words.empty())
      NonEmpty.push_back(int32_t(I));
  if (NonEmpty.empty())
    return -1;
  return NonEmpty[size_t(Rng.nextBelow(NonEmpty.size()))];
}

bool FaultInjector::truncateMidRecord(TraceCapture &C) {
  int32_t Tid = pickNonEmptyThread(C);
  if (Tid < 0)
    return false;
  std::vector<uint64_t> &Words = C.Threads[size_t(Tid)].Words;
  // Keep [0, Cut) words; Cut < size so at least the last word is lost.
  Words.resize(size_t(Rng.nextBelow(Words.size())));
  return true;
}

bool FaultInjector::bitFlipWord(TraceCapture &C) {
  int32_t Tid = pickNonEmptyThread(C);
  if (Tid < 0)
    return false;
  std::vector<uint64_t> &Words = C.Threads[size_t(Tid)].Words;
  size_t Idx = size_t(Rng.nextBelow(Words.size()));
  Words[Idx] ^= uint64_t(1) << Rng.nextBelow(64);
  return true;
}

bool FaultInjector::dropThread(TraceCapture &C) {
  if (C.Threads.empty())
    return false;
  C.Threads.erase(C.Threads.begin() +
                  ptrdiff_t(Rng.nextBelow(C.Threads.size())));
  return true;
}

bool FaultInjector::applyTraceFault(TraceCapture &C, TraceFault Kind) {
  switch (Kind) {
  case TraceFault::TruncateMidRecord:
    return truncateMidRecord(C);
  case TraceFault::BitFlip:
    return bitFlipWord(C);
  case TraceFault::DropThread:
    return dropThread(C);
  }
  return false;
}

bool FaultInjector::truncateText(std::string &Text) {
  if (Text.empty())
    return false;
  Text.resize(size_t(Rng.nextBelow(Text.size())));
  return true;
}

bool FaultInjector::bitFlipText(std::string &Text, size_t Flips) {
  if (Text.empty())
    return false;
  for (size_t I = 0; I < Flips; ++I) {
    size_t Idx = size_t(Rng.nextBelow(Text.size()));
    Text[Idx] = char(uint8_t(Text[Idx]) ^ uint8_t(1u << Rng.nextBelow(8)));
  }
  return true;
}

bool FaultInjector::applyMemberFault(std::string &Text, MemberFault Kind,
                                     uint64_t NewestGeneration) {
  switch (Kind) {
  case MemberFault::TruncateCsv:
    return truncateText(Text);
  case MemberFault::BitFlipCsv:
    return bitFlipText(Text);
  case MemberFault::VersionSkew:
  case MemberFault::StaleGeneration:
  case MemberFault::DriftSkew:
  case MemberFault::CoverageCollapse:
  case MemberFault::AbsurdPeriod:
    break;
  }
  // Semantic faults: re-shape a parsed copy and re-emit with a fresh CRC,
  // so the damage is invisible to the mechanical-integrity gates.
  CodeProfile P = CodeProfile::fromCsv(Text);
  if (P.LoadError != ProfileError::None)
    return false;
  switch (Kind) {
  case MemberFault::VersionSkew:
    P.Header.Fingerprint ^= 0x9e3779b97f4a7c15ull | (Rng.next() << 1);
    break;
  case MemberFault::StaleGeneration:
    // Far behind the fleet's newest stamp; 1 keeps the member inside the
    // "known generation" regime (0 would exempt it from the check).
    P.Header.Generation =
        NewestGeneration > 1 ? 1 : 0;
    break;
  case MemberFault::DriftSkew: {
    // Inflate alternating counts 64x, preserving the sig order: a
    // mechanically valid member whose count distribution no longer
    // resembles the fleet's.
    if (P.Counts.size() != P.Sigs.size())
      P.Counts.assign(P.Sigs.size(), 1);
    for (size_t I = 0; I < P.Counts.size(); I += 2)
      P.Counts[I] *= 64;
    break;
  }
  case MemberFault::CoverageCollapse:
    P.Header.CoveragePermille = uint32_t(Rng.nextBelow(100));
    break;
  case MemberFault::AbsurdPeriod:
    // A sampler that lost its period config: the member claims to be a
    // sampled capture ticking either never (0) or so rarely the capture
    // cannot have seen anything (beyond MaxSamplePeriod). Either stamp
    // must quarantine as implausible_sample_period.
    P.Header.Capture = CaptureKind::Sampled;
    P.Header.SamplePeriod = (Rng.next() & 1)
                                ? 0
                                : TraceOptions::MaxSamplePeriod + 1 +
                                      Rng.nextBelow(1u << 10);
    break;
  case MemberFault::TruncateCsv:
  case MemberFault::BitFlipCsv:
    break;
  }
  Text = P.toCsv();
  return true;
}
