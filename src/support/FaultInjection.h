//===- FaultInjection.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seed-driven fault injector for the profile pipeline's hostile inputs
/// (Sec. 6.1 / 7.1): traces of SIGKILL'd runs that end mid-record, trace
/// words corrupted on disk, whole per-thread trace files that were never
/// persisted, and profile CSV text that was truncated or bit-flipped.
/// Every fault is a pure function of the constructor seed, so a failing
/// scenario replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_SUPPORT_FAULTINJECTION_H
#define NIMG_SUPPORT_FAULTINJECTION_H

#include "src/profiling/Trace.h"
#include "src/support/SplitMix64.h"

#include <string>

namespace nimg {

/// The fault kinds applyTraceFault() cycles through.
enum class TraceFault : uint8_t { TruncateMidRecord, BitFlip, DropThread };

/// The merge-path fault matrix: every way one member of a fleet profile
/// set can be damaged before aggregation sees it. The first two corrupt
/// the CSV text mechanically; the rest re-stamp or re-shape an otherwise
/// valid member (semantic faults the CRC cannot catch).
enum class MemberFault : uint8_t {
  TruncateCsv,      ///< Crash mid-upload: text cut at a random byte.
  BitFlipCsv,       ///< Storage corruption: random bit flipped.
  VersionSkew,      ///< Captured from a different program build.
  StaleGeneration,  ///< Ancient capture: generation stamp forced to 1.
  DriftSkew,        ///< Counts of alternating sigs inflated 64x.
  CoverageCollapse, ///< Capture coverage stamp collapsed below any gate.
  AbsurdPeriod,     ///< Sampled member whose period stamp is nonsense.
};

inline constexpr MemberFault AllMemberFaults[] = {
    MemberFault::TruncateCsv,     MemberFault::BitFlipCsv,
    MemberFault::VersionSkew,     MemberFault::StaleGeneration,
    MemberFault::DriftSkew,       MemberFault::CoverageCollapse,
    MemberFault::AbsurdPeriod,
};

class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed) : Rng(Seed) {}

  // --- Trace faults ---------------------------------------------------------

  /// Cuts one nonempty thread at a random word offset, modeling a SIGKILL
  /// that lands between mmap page syncs: the persisted file ends at an
  /// arbitrary word, possibly inside a record's operand run. Returns false
  /// when the capture has no words to truncate.
  bool truncateMidRecord(TraceCapture &C);

  /// Flips one random bit of one random word of one nonempty thread.
  bool bitFlipWord(TraceCapture &C);

  /// Removes one whole thread's trace (a per-thread file that was never
  /// synced). Returns false when the capture has no threads.
  bool dropThread(TraceCapture &C);

  /// Applies \p Kind; convenience dispatcher for seeded fault matrices.
  bool applyTraceFault(TraceCapture &C, TraceFault Kind);

  // --- Text (profile CSV) faults --------------------------------------------

  /// Truncates \p Text at a random byte offset (possibly mid-cell or
  /// mid-header). Returns false when the text is empty.
  bool truncateText(std::string &Text);

  /// Flips \p Flips random bits at random byte offsets.
  bool bitFlipText(std::string &Text, size_t Flips = 1);

  // --- Merge-member faults --------------------------------------------------

  /// Applies \p Kind to one member profile's CSV text. Mechanical kinds
  /// damage the raw bytes; semantic kinds parse, re-shape, and re-emit a
  /// *valid* profile (fresh CRC) so only the aggregator's semantic gates
  /// can catch them. \p NewestGeneration anchors StaleGeneration: the
  /// faulted member is stamped far behind it. Returns false when the text
  /// cannot be faulted (empty, or a semantic kind on an unparsable file).
  bool applyMemberFault(std::string &Text, MemberFault Kind,
                        uint64_t NewestGeneration);

  /// Direct access to the underlying RNG for scenario-local choices.
  uint64_t nextBelow(uint64_t Bound) { return Rng.nextBelow(Bound); }

private:
  /// Index of a random nonempty thread, or -1 if none.
  int32_t pickNonEmptyThread(const TraceCapture &C);

  SplitMix64 Rng;
};

} // namespace nimg

#endif // NIMG_SUPPORT_FAULTINJECTION_H
