//===- Murmur3.cpp - MurmurHash3 x64-128 implementation -------------------===//
//
// Public-domain MurmurHash3 by Austin Appleby, adapted to the nimage coding
// conventions. Reference: https://github.com/aappleby/smhasher.
//
//===----------------------------------------------------------------------===//

#include "src/support/Murmur3.h"

#include <cstring>

using namespace nimg;

static inline uint64_t rotl64(uint64_t X, int8_t R) {
  return (X << R) | (X >> (64 - R));
}

static inline uint64_t fmix64(uint64_t K) {
  K ^= K >> 33;
  K *= 0xff51afd7ed558ccdULL;
  K ^= K >> 33;
  K *= 0xc4ceb9fe1a85ec53ULL;
  K ^= K >> 33;
  return K;
}

static inline uint64_t getBlock64(const uint8_t *P, size_t I) {
  uint64_t V;
  std::memcpy(&V, P + I * 8, sizeof(V));
  return V;
}

Murmur3Digest nimg::murmurHash3x64_128(const void *Data, size_t Len,
                                       uint64_t Seed) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  const size_t NumBlocks = Len / 16;

  uint64_t H1 = Seed;
  uint64_t H2 = Seed;

  const uint64_t C1 = 0x87c37b91114253d5ULL;
  const uint64_t C2 = 0x4cf5ad432745937fULL;

  for (size_t I = 0; I < NumBlocks; ++I) {
    uint64_t K1 = getBlock64(Bytes, I * 2 + 0);
    uint64_t K2 = getBlock64(Bytes, I * 2 + 1);

    K1 *= C1;
    K1 = rotl64(K1, 31);
    K1 *= C2;
    H1 ^= K1;
    H1 = rotl64(H1, 27);
    H1 += H2;
    H1 = H1 * 5 + 0x52dce729;

    K2 *= C2;
    K2 = rotl64(K2, 33);
    K2 *= C1;
    H2 ^= K2;
    H2 = rotl64(H2, 31);
    H2 += H1;
    H2 = H2 * 5 + 0x38495ab5;
  }

  const uint8_t *Tail = Bytes + NumBlocks * 16;
  uint64_t K1 = 0;
  uint64_t K2 = 0;

  switch (Len & 15) {
  case 15:
    K2 ^= uint64_t(Tail[14]) << 48;
    [[fallthrough]];
  case 14:
    K2 ^= uint64_t(Tail[13]) << 40;
    [[fallthrough]];
  case 13:
    K2 ^= uint64_t(Tail[12]) << 32;
    [[fallthrough]];
  case 12:
    K2 ^= uint64_t(Tail[11]) << 24;
    [[fallthrough]];
  case 11:
    K2 ^= uint64_t(Tail[10]) << 16;
    [[fallthrough]];
  case 10:
    K2 ^= uint64_t(Tail[9]) << 8;
    [[fallthrough]];
  case 9:
    K2 ^= uint64_t(Tail[8]) << 0;
    K2 *= C2;
    K2 = rotl64(K2, 33);
    K2 *= C1;
    H2 ^= K2;
    [[fallthrough]];
  case 8:
    K1 ^= uint64_t(Tail[7]) << 56;
    [[fallthrough]];
  case 7:
    K1 ^= uint64_t(Tail[6]) << 48;
    [[fallthrough]];
  case 6:
    K1 ^= uint64_t(Tail[5]) << 40;
    [[fallthrough]];
  case 5:
    K1 ^= uint64_t(Tail[4]) << 32;
    [[fallthrough]];
  case 4:
    K1 ^= uint64_t(Tail[3]) << 24;
    [[fallthrough]];
  case 3:
    K1 ^= uint64_t(Tail[2]) << 16;
    [[fallthrough]];
  case 2:
    K1 ^= uint64_t(Tail[1]) << 8;
    [[fallthrough]];
  case 1:
    K1 ^= uint64_t(Tail[0]) << 0;
    K1 *= C1;
    K1 = rotl64(K1, 31);
    K1 *= C2;
    H1 ^= K1;
    break;
  case 0:
    break;
  }

  H1 ^= Len;
  H2 ^= Len;
  H1 += H2;
  H2 += H1;
  H1 = fmix64(H1);
  H2 = fmix64(H2);
  H1 += H2;
  H2 += H1;

  return {H1, H2};
}
