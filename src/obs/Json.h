//===- Json.h - Minimal JSON writer and parser ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON support for the observability layer: a streaming writer used by the
/// span tracer, the startup-report exporter, and the bench emitters, plus a
/// small strict parser used to validate those artifacts (tests parse every
/// emitted document back — a trace file that chrome://tracing cannot load
/// is a bug, not a cosmetic issue).
///
/// The writer tracks nesting and comma state so callers cannot emit
/// structurally invalid documents; strings are escaped per RFC 8259
/// (quotes, backslashes, and control characters).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_JSON_H
#define NIMG_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nimg {
namespace obs {

/// Streaming JSON writer with automatic comma/nesting management.
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; the next value/begin* call is its value.
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(bool B);
  void value(double D);
  void value(uint64_t U);
  void value(int64_t I);
  void value(int I) { value(int64_t(I)); }
  void value(unsigned U) { value(uint64_t(U)); }
  void null();

  // Convenience: key + value in one call.
  template <typename T> void member(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// Appends a pre-rendered JSON fragment as one value (caller guarantees
  /// validity). Used to splice sub-documents without re-parsing.
  void rawValue(std::string_view Json);

  static std::string escape(std::string_view S);

private:
  void beforeValue();

  std::string &Out;
  /// One char per open scope: 'o' object, 'a' array; paired with whether a
  /// value has been emitted at that level.
  std::vector<std::pair<char, bool>> Stack;
  bool PendingKey = false;
};

/// A parsed JSON value (small DOM; object member order is preserved).
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;
  /// Nested lookup along a dot-separated path ("run.text_faults").
  const JsonValue *at(std::string_view Path) const;

  double numberOr(double Default) const {
    return K == Kind::Number ? Num : Default;
  }
};

/// Strict RFC-8259 parse of a complete document (trailing non-whitespace is
/// an error). Returns false and fills \p Error on malformed input; never
/// throws — emitted artifacts cross process boundaries and are validated
/// like any other external input.
bool parseJson(std::string_view Text, JsonValue &Out,
               std::string *Error = nullptr);

} // namespace obs
} // namespace nimg

#endif // NIMG_OBS_JSON_H
