//===- StartupReport.cpp - Unified startup-report exporter ------------------===//

#include "src/obs/StartupReport.h"

#include "src/obs/Json.h"
#include "src/obs/Metrics.h"
#include "src/support/AtomicFile.h"

using namespace nimg;
using namespace nimg::obs;

std::string obs::pageMapString(const std::vector<PageState> &Pages) {
  std::string Map;
  Map.reserve(Pages.size());
  for (PageState S : Pages) {
    switch (S) {
    case PageState::Untouched:
      Map += '.';
      break;
    case PageState::Faulted:
      Map += '#';
      break;
    case PageState::Prefetched:
      Map += '+';
      break;
    }
  }
  return Map;
}

void StartupReport::setImage(const NativeImage &Img) {
  HasImage = true;
  NumCus = Img.Code.CUs.size();
  SnapshotObjects = Img.Snapshot.Entries.size();
  TextSize = Img.Layout.TextSize;
  HeapSize = Img.Layout.HeapSize;
  Seed = Img.Seed;
  Instrumented = Img.Instrumented;
  BuildFailed = Img.Built.Failed;
  HasDiag = true;
  Diag = Img.ProfileDiag;
  HasSplit = Img.Split.active();
  if (HasSplit) {
    SplitCus = Img.Split.SplitCus;
    SplitDegradedCus = Img.Split.DegradedCus;
    SplitHotBytes = Img.Split.HotBytes;
    SplitColdBytes = Img.Split.ColdBytes;
    SplitStubBytes = Img.Split.StubBytes;
    ColdTailOffset = Img.Layout.ColdTailOffset;
    ColdTailSize = Img.Layout.ColdTailSize;
  }
  HasPages = Img.Layout.HugePagesRequested > 0;
  if (HasPages) {
    HugePagesRequested = Img.Layout.HugePagesRequested;
    HugePages = Img.Layout.HugePages;
    HugeRegionSize = Img.Layout.HugeRegionSize;
    PageSize = Img.Layout.PageSize;
  }
  HasBlocks = Img.Split.ExtTsp.Requested;
  if (HasBlocks) {
    const ExtTspSummary &T = Img.Split.ExtTsp;
    BlocksReorderedCus = T.ReorderedCus;
    BlocksDegradedCus = T.DegradedCus;
    BlocksChainMerges = T.ChainMerges;
    BlocksFallthroughPermille =
        T.EdgeWeight ? T.FallthroughAfter * 1000 / T.EdgeWeight : 0;
    BlocksFallthroughPermilleIndex =
        T.EdgeWeight ? T.FallthroughBefore * 1000 / T.EdgeWeight : 0;
    BlocksScoreUpliftPermille =
        T.ScoreBefore > 0
            ? int64_t((T.ScoreAfter - T.ScoreBefore) * 1000.0 / T.ScoreBefore)
            : 0;
  }
}

static void writeSalvage(JsonWriter &W, const SalvageStats &S) {
  W.beginObject();
  W.member("words_scanned", uint64_t(S.WordsScanned));
  W.member("words_kept", uint64_t(S.WordsKept));
  W.member("words_dropped", uint64_t(S.WordsDropped));
  W.member("threads_truncated", uint64_t(S.ThreadsTruncated));
  W.member("threads_dropped", uint64_t(S.ThreadsDropped));
  W.member("incomplete_tail_records", uint64_t(S.IncompleteTailRecords));
  W.member("mode_mismatch", S.ModeMismatch);
  W.member("clean", S.clean());
  W.endObject();
}

std::string StartupReport::toJson() const {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "nimg-startup-report");
  W.member("version", uint64_t(StartupReportVersion));
  if (!Target.empty())
    W.member("target", Target);
  if (!Command.empty())
    W.member("command", Command);
  if (!Variant.empty())
    W.member("variant", Variant);
  if (Jobs > 0)
    W.member("jobs", uint64_t(Jobs));

  if (HasRun) {
    W.key("run");
    W.beginObject();
    // The acceptance contract: these three mirror PagingSim::faults()
    // exactly (tests compare them field-for-field).
    W.member("text_faults", Run.TextFaults);
    W.member("heap_faults", Run.HeapFaults);
    W.member("text_cold_faults", Run.TextColdFaults);
    W.member("total_faults", Run.totalFaults());
    W.member("prefetched_pages", Run.PrefetchedPages);
    W.member("instructions", Run.Instructions);
    W.member("probe_units", Run.ProbeUnits);
    W.member("time_ns", Run.TimeNs);
    W.member("responded", Run.Responded);
    if (Run.Responded)
      W.member("time_to_first_response_ns", Run.TimeToFirstResponseNs);
    W.member("trapped", Run.Trapped);
    if (Run.Trapped)
      W.member("trap_message", Run.TrapMessage);
    W.member("fuel_exhausted", Run.FuelExhausted);
    W.member("stored_objects_touched", uint64_t(Run.StoredObjectsTouched));
    W.member("stored_objects_total", uint64_t(Run.StoredObjectsTotal));
    // Fig. 6 page maps: '#' faulted, '+' prefetched, '.' untouched.
    W.member("text_page_map", pageMapString(Run.TextPages));
    W.member("heap_page_map", pageMapString(Run.HeapPages));
    W.endObject();
  }

  if (HasRun && Run.SamplePeriod > 0) {
    // Sampled-capture accounting. Every field is defined even when no
    // sample landed (a period longer than the whole run): counts are
    // plain zeros and the ratios guard their denominators, so the section
    // never emits NaN/Inf — which are not JSON.
    W.key("capture");
    W.beginObject();
    W.member("mode", "sampled");
    W.member("sample_period", Run.SamplePeriod);
    W.member("samples_taken", Run.SamplesTaken);
    W.member("events_skipped", Run.SampleEventsSkipped);
    W.member("coverage_permille", uint64_t(Run.SampleCoveragePermille));
    // Modeled capture overhead: probe time over total modeled time (probe
    // units are charged at ~1 ns each by the default cost model).
    W.member("overhead_permille",
             Run.TimeNs > 0 ? double(Run.ProbeUnits) * 1000.0 / Run.TimeNs
                            : 0.0);
    W.endObject();
  }

  if (HasImage) {
    W.key("image");
    W.beginObject();
    W.member("num_cus", uint64_t(NumCus));
    W.member("snapshot_objects", uint64_t(SnapshotObjects));
    W.member("text_size", TextSize);
    W.member("heap_size", HeapSize);
    W.member("seed", Seed);
    W.member("instrumented", Instrumented);
    W.member("build_failed", BuildFailed);
    W.endObject();
  }

  if (HasSplit) {
    W.key("split");
    W.beginObject();
    W.member("mode", "hotcold");
    W.member("cus_split", uint64_t(SplitCus));
    W.member("cus_degraded", uint64_t(SplitDegradedCus));
    W.member("hot_bytes", SplitHotBytes);
    W.member("cold_bytes", SplitColdBytes);
    W.member("stub_bytes", SplitStubBytes);
    W.member("cold_tail_offset", ColdTailOffset);
    W.member("cold_tail_size", ColdTailSize);
    if (HasRun) {
      W.member("text_cold_faults", Run.TextColdFaults);
      W.member("text_hot_faults", Run.TextFaults - Run.TextColdFaults);
    }
    W.endObject();
  }

  if (HasBlocks) {
    W.key("blocks");
    W.beginObject();
    W.member("mode", "exttsp");
    W.member("cus_reordered", uint64_t(BlocksReorderedCus));
    W.member("cus_degraded", uint64_t(BlocksDegradedCus));
    W.member("chain_merges", BlocksChainMerges);
    W.member("fallthrough_permille", BlocksFallthroughPermille);
    W.member("fallthrough_permille_index", BlocksFallthroughPermilleIndex);
    W.member("score_uplift_permille", BlocksScoreUpliftPermille);
    W.endObject();
  }

  if (HasPages) {
    W.key("pages");
    W.beginObject();
    W.member("page_size", uint64_t(PageSize));
    W.member("huge_page_size", uint64_t(HugePageBytes));
    W.member("huge_pages_requested", uint64_t(HugePagesRequested));
    W.member("huge_pages", uint64_t(HugePages));
    W.member("huge_region_size", HugeRegionSize);
    if (HasRun) {
      W.member("text_huge_faults", Run.TextHugeFaults);
      W.member("text_small_faults", Run.TextFaults - Run.TextHugeFaults);
    }
    W.endObject();
  }

  if (HasFleet) {
    W.key("fleet");
    W.beginObject();
    W.member("instances", uint64_t(FleetCfg.Instances));
    W.member("arrivals", arrivalKindName(FleetCfg.Arrivals));
    W.member("arrival_window_ns", FleetCfg.ArrivalWindowNs);
    W.member("seed", FleetCfg.Seed);
    if (FleetCfg.Arrivals == ArrivalKind::Storm)
      W.member("storm_bursts", uint64_t(FleetCfg.StormBursts));
    W.member("cache_pages", FleetCfg.CachePages);
    W.member("major_faults", Fleet.TotalMajors);
    W.member("warm_hits", Fleet.TotalWarmHits);
    W.member("warm_hit_permille", uint64_t(Fleet.warmHitRatio() * 1000.0));
    W.member("unique_pages", Fleet.UniquePages);
    W.member("evictions", Fleet.Evictions);
    W.member("cold_start_p50_ns", Fleet.P50Ns);
    W.member("cold_start_p90_ns", Fleet.P90Ns);
    W.member("cold_start_p99_ns", Fleet.P99Ns);
    W.member("cold_start_mean_ns", Fleet.MeanNs);
    W.member("reference_faults", Fleet.ReferenceFaults);
    W.member("reference_time_ns", Fleet.ReferenceTimeNs);
    W.endObject();
  }

  if (HasDiag) {
    W.key("profile_diag");
    W.beginObject();
    W.member("code_profile_provided", Diag.CodeProfileProvided);
    W.member("code_profile_applied", Diag.CodeProfileApplied);
    W.member("heap_profile_provided", Diag.HeapProfileProvided);
    W.member("heap_profile_applied", Diag.HeapProfileApplied);
    W.member("degraded", Diag.degraded());
    W.key("issues");
    W.beginArray();
    for (const ProfileIssue &I : Diag.Issues) {
      W.beginObject();
      W.member("kind", profileErrorSlug(I.Kind));
      W.member("row", uint64_t(I.Row));
      if (!I.Detail.empty())
        W.member("detail", I.Detail);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  if (HasDiag && Diag.Merge.attempted()) {
    const MergeManifest &M = Diag.Merge;
    W.key("merge");
    W.beginObject();
    W.member("outcome", mergeOutcomeName(M.Outcome));
    W.member("members", uint64_t(M.Members.size()));
    W.member("accepted",
             uint64_t(M.countWithStatus(MergeMemberStatus::Accepted)));
    W.member("salvaged",
             uint64_t(M.countWithStatus(MergeMemberStatus::Salvaged)));
    W.member("quarantined",
             uint64_t(M.countWithStatus(MergeMemberStatus::Quarantined)));
    W.key("manifest");
    W.beginArray();
    for (const MergeMemberReport &R : M.Members) {
      W.beginObject();
      W.member("name", R.Name);
      W.member("status", mergeMemberStatusName(R.Status));
      if (R.Reason != ProfileError::None)
        W.member("reason", profileErrorSlug(R.Reason));
      if (!R.Detail.empty())
        W.member("detail", R.Detail);
      W.member("coverage_permille", uint64_t(R.CoveragePermille));
      W.member("generation", R.Generation);
      W.member("drift_score", R.DriftScore);
      W.member("weight", R.Weight);
      W.member("rows", uint64_t(R.Rows));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  if (!Salvage.empty()) {
    W.key("salvage");
    W.beginArray();
    for (const auto &[Phase, S] : Salvage) {
      W.beginObject();
      W.member("phase", Phase);
      W.key("stats");
      writeSalvage(W, S);
      W.endObject();
    }
    W.endArray();
  }

  if (WithMetrics) {
    W.key("metrics");
    MetricsRegistry::global().writeJson(W);
  }

  W.endObject();
  return Out;
}

//===----------------------------------------------------------------------===//
// CSV flattening.
//===----------------------------------------------------------------------===//

static void csvRow(std::string &Out, std::string_view Section,
                   std::string_view Key, const std::string &Value) {
  Out += Section;
  Out += ',';
  Out += Key;
  Out += ',';
  // Values here are numbers, booleans, or identifier-ish strings; quote
  // only when a comma would break the row.
  if (Value.find_first_of(",\"\n") != std::string::npos) {
    Out += '"';
    for (char C : Value) {
      if (C == '"')
        Out += '"';
      Out += C;
    }
    Out += '"';
  } else {
    Out += Value;
  }
  Out += '\n';
}

static std::string num(uint64_t V) { return std::to_string(V); }
static std::string boolStr(bool B) { return B ? "true" : "false"; }

std::string StartupReport::toCsv() const {
  std::string Out = "section,key,value\n";
  csvRow(Out, "report", "schema", "nimg-startup-report");
  csvRow(Out, "report", "version", num(StartupReportVersion));
  if (!Target.empty())
    csvRow(Out, "report", "target", Target);
  if (!Command.empty())
    csvRow(Out, "report", "command", Command);
  if (!Variant.empty())
    csvRow(Out, "report", "variant", Variant);
  if (Jobs > 0)
    csvRow(Out, "report", "jobs", num(uint64_t(Jobs)));

  if (HasRun) {
    csvRow(Out, "run", "text_faults", num(Run.TextFaults));
    csvRow(Out, "run", "heap_faults", num(Run.HeapFaults));
    csvRow(Out, "run", "text_cold_faults", num(Run.TextColdFaults));
    csvRow(Out, "run", "total_faults", num(Run.totalFaults()));
    csvRow(Out, "run", "prefetched_pages", num(Run.PrefetchedPages));
    csvRow(Out, "run", "instructions", num(Run.Instructions));
    csvRow(Out, "run", "probe_units", num(Run.ProbeUnits));
    csvRow(Out, "run", "time_ns", std::to_string(Run.TimeNs));
    csvRow(Out, "run", "responded", boolStr(Run.Responded));
    if (Run.Responded)
      csvRow(Out, "run", "time_to_first_response_ns",
             std::to_string(Run.TimeToFirstResponseNs));
    csvRow(Out, "run", "trapped", boolStr(Run.Trapped));
    csvRow(Out, "run", "fuel_exhausted", boolStr(Run.FuelExhausted));
    csvRow(Out, "run", "stored_objects_touched",
           num(Run.StoredObjectsTouched));
    csvRow(Out, "run", "stored_objects_total", num(Run.StoredObjectsTotal));
  }

  if (HasRun && Run.SamplePeriod > 0) {
    csvRow(Out, "capture", "mode", "sampled");
    csvRow(Out, "capture", "sample_period", num(Run.SamplePeriod));
    csvRow(Out, "capture", "samples_taken", num(Run.SamplesTaken));
    csvRow(Out, "capture", "events_skipped", num(Run.SampleEventsSkipped));
    csvRow(Out, "capture", "coverage_permille",
           num(Run.SampleCoveragePermille));
    csvRow(Out, "capture", "overhead_permille",
           std::to_string(Run.TimeNs > 0
                              ? double(Run.ProbeUnits) * 1000.0 / Run.TimeNs
                              : 0.0));
  }

  if (HasImage) {
    csvRow(Out, "image", "num_cus", num(NumCus));
    csvRow(Out, "image", "snapshot_objects", num(SnapshotObjects));
    csvRow(Out, "image", "text_size", num(TextSize));
    csvRow(Out, "image", "heap_size", num(HeapSize));
    csvRow(Out, "image", "seed", num(Seed));
    csvRow(Out, "image", "instrumented", boolStr(Instrumented));
    csvRow(Out, "image", "build_failed", boolStr(BuildFailed));
  }

  if (HasSplit) {
    csvRow(Out, "split", "mode", "hotcold");
    csvRow(Out, "split", "cus_split", num(SplitCus));
    csvRow(Out, "split", "cus_degraded", num(SplitDegradedCus));
    csvRow(Out, "split", "hot_bytes", num(SplitHotBytes));
    csvRow(Out, "split", "cold_bytes", num(SplitColdBytes));
    csvRow(Out, "split", "stub_bytes", num(SplitStubBytes));
    csvRow(Out, "split", "cold_tail_offset", num(ColdTailOffset));
    csvRow(Out, "split", "cold_tail_size", num(ColdTailSize));
    if (HasRun) {
      csvRow(Out, "split", "text_cold_faults", num(Run.TextColdFaults));
      csvRow(Out, "split", "text_hot_faults",
             num(Run.TextFaults - Run.TextColdFaults));
    }
  }

  if (HasBlocks) {
    csvRow(Out, "blocks", "mode", "exttsp");
    csvRow(Out, "blocks", "cus_reordered", num(BlocksReorderedCus));
    csvRow(Out, "blocks", "cus_degraded", num(BlocksDegradedCus));
    csvRow(Out, "blocks", "chain_merges", num(BlocksChainMerges));
    csvRow(Out, "blocks", "fallthrough_permille",
           num(BlocksFallthroughPermille));
    csvRow(Out, "blocks", "fallthrough_permille_index",
           num(BlocksFallthroughPermilleIndex));
    csvRow(Out, "blocks", "score_uplift_permille",
           std::to_string(BlocksScoreUpliftPermille));
  }

  if (HasPages) {
    csvRow(Out, "pages", "page_size", num(PageSize));
    csvRow(Out, "pages", "huge_page_size", num(HugePageBytes));
    csvRow(Out, "pages", "huge_pages_requested", num(HugePagesRequested));
    csvRow(Out, "pages", "huge_pages", num(HugePages));
    csvRow(Out, "pages", "huge_region_size", num(HugeRegionSize));
    if (HasRun) {
      csvRow(Out, "pages", "text_huge_faults", num(Run.TextHugeFaults));
      csvRow(Out, "pages", "text_small_faults",
             num(Run.TextFaults - Run.TextHugeFaults));
    }
  }

  if (HasFleet) {
    csvRow(Out, "fleet", "instances", num(FleetCfg.Instances));
    csvRow(Out, "fleet", "arrivals", arrivalKindName(FleetCfg.Arrivals));
    csvRow(Out, "fleet", "arrival_window_ns",
           std::to_string(FleetCfg.ArrivalWindowNs));
    csvRow(Out, "fleet", "seed", num(FleetCfg.Seed));
    if (FleetCfg.Arrivals == ArrivalKind::Storm)
      csvRow(Out, "fleet", "storm_bursts", num(FleetCfg.StormBursts));
    csvRow(Out, "fleet", "cache_pages", num(FleetCfg.CachePages));
    csvRow(Out, "fleet", "major_faults", num(Fleet.TotalMajors));
    csvRow(Out, "fleet", "warm_hits", num(Fleet.TotalWarmHits));
    csvRow(Out, "fleet", "warm_hit_permille",
           num(uint64_t(Fleet.warmHitRatio() * 1000.0)));
    csvRow(Out, "fleet", "unique_pages", num(Fleet.UniquePages));
    csvRow(Out, "fleet", "evictions", num(Fleet.Evictions));
    csvRow(Out, "fleet", "cold_start_p50_ns", std::to_string(Fleet.P50Ns));
    csvRow(Out, "fleet", "cold_start_p90_ns", std::to_string(Fleet.P90Ns));
    csvRow(Out, "fleet", "cold_start_p99_ns", std::to_string(Fleet.P99Ns));
    csvRow(Out, "fleet", "cold_start_mean_ns", std::to_string(Fleet.MeanNs));
    csvRow(Out, "fleet", "reference_faults", num(Fleet.ReferenceFaults));
    csvRow(Out, "fleet", "reference_time_ns",
           std::to_string(Fleet.ReferenceTimeNs));
  }

  if (HasDiag) {
    csvRow(Out, "profile_diag", "code_profile_provided",
           boolStr(Diag.CodeProfileProvided));
    csvRow(Out, "profile_diag", "code_profile_applied",
           boolStr(Diag.CodeProfileApplied));
    csvRow(Out, "profile_diag", "heap_profile_provided",
           boolStr(Diag.HeapProfileProvided));
    csvRow(Out, "profile_diag", "heap_profile_applied",
           boolStr(Diag.HeapProfileApplied));
    csvRow(Out, "profile_diag", "degraded", boolStr(Diag.degraded()));
    csvRow(Out, "profile_diag", "issues", num(Diag.Issues.size()));
    for (const ProfileIssue &I : Diag.Issues)
      csvRow(Out, "profile_diag.issue", profileErrorSlug(I.Kind),
             I.Detail.empty() ? num(I.Row) : I.Detail);
  }

  if (HasDiag && Diag.Merge.attempted()) {
    const MergeManifest &M = Diag.Merge;
    csvRow(Out, "merge", "outcome", mergeOutcomeName(M.Outcome));
    csvRow(Out, "merge", "members", num(M.Members.size()));
    csvRow(Out, "merge", "accepted",
           num(M.countWithStatus(MergeMemberStatus::Accepted)));
    csvRow(Out, "merge", "salvaged",
           num(M.countWithStatus(MergeMemberStatus::Salvaged)));
    csvRow(Out, "merge", "quarantined",
           num(M.countWithStatus(MergeMemberStatus::Quarantined)));
    for (const MergeMemberReport &R : M.Members)
      csvRow(Out, "merge.member", R.Name,
             std::string(mergeMemberStatusName(R.Status)) +
                 (R.Reason != ProfileError::None
                      ? std::string(":") + profileErrorSlug(R.Reason)
                      : std::string()));
  }

  for (const auto &[Phase, S] : Salvage) {
    std::string Section = "salvage." + Phase;
    csvRow(Out, Section, "words_scanned", num(S.WordsScanned));
    csvRow(Out, Section, "words_kept", num(S.WordsKept));
    csvRow(Out, Section, "words_dropped", num(S.WordsDropped));
    csvRow(Out, Section, "threads_truncated", num(S.ThreadsTruncated));
    csvRow(Out, Section, "threads_dropped", num(S.ThreadsDropped));
    csvRow(Out, Section, "incomplete_tail_records",
           num(S.IncompleteTailRecords));
    csvRow(Out, Section, "mode_mismatch", boolStr(S.ModeMismatch));
  }

  return Out;
}

bool StartupReport::writeFile(const std::string &Path) const {
  std::string Body = Path.size() >= 4 &&
                             Path.compare(Path.size() - 4, 4, ".csv") == 0
                         ? toCsv()
                         : toJson();
  // Temp-file + rename: a crash mid-write can never leave a truncated
  // report for a later ingestion step to trip over.
  return atomicWriteFile(Path, Body);
}
