//===- StartupReport.h - Unified startup-report exporter --------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One machine-readable artifact per pipeline invocation: per-section page
/// fault counts (the paper's Sec. 7.1 metric), the Fig. 6 page-state map,
/// trace-salvage statistics, and the build's profile-ingestion diagnostics,
/// unified into a single JSON (or flat CSV) document. `nimage_cli --report
/// out.json` writes it; tests parse it back and check the fault counts
/// against PagingSim exactly.
///
/// Schema (JSON): {"schema":"nimg-startup-report","version":1,"target":...,
/// "command":...,"run":{...},"image":{...},"profile_diag":{...},
/// "salvage":[...],"metrics":{...}}; absent sections are omitted, not
/// emitted empty. The CSV form flattens the same keys into section,key,value
/// rows (page maps are elided there).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_STARTUPREPORT_H
#define NIMG_OBS_STARTUPREPORT_H

#include "src/fleet/FleetSim.h"
#include "src/image/NativeImage.h"
#include "src/profiling/TraceSalvage.h"
#include "src/runtime/ExecEngine.h"

#include <string>
#include <utility>
#include <vector>

namespace nimg {
namespace obs {

inline constexpr uint32_t StartupReportVersion = 1;

/// Renders a Fig. 6 page map as one character per page: '#' faulted,
/// '+' prefetched by readahead, '.' untouched.
std::string pageMapString(const std::vector<PageState> &Pages);

class StartupReport {
public:
  std::string Target;  ///< Workload (benchmark name or source path).
  std::string Command; ///< Producing command ("run", "build", "profile").
  std::string Variant; ///< Strategy description, free-form.

  void setRun(const RunStats &Stats) {
    Run = Stats;
    HasRun = true;
  }
  /// Worker count the pipeline ran with (`--jobs` / NIMG_JOBS); 0 = unset.
  void setJobs(int N) { Jobs = N; }
  /// Image summary + its profile-ingestion diagnostics.
  void setImage(const NativeImage &Img);
  void addSalvage(std::string Phase, const SalvageStats &Stats) {
    Salvage.emplace_back(std::move(Phase), Stats);
  }
  /// Fleet serving-simulation summary (`nimage_cli run --fleet N`).
  void setFleet(const FleetResult &R, const FleetConfig &Cfg) {
    HasFleet = true;
    Fleet = R;
    Fleet.Instances.clear(); // Summary only; per-instance rows stay out.
    FleetCfg = Cfg;
  }
  /// Appends the global metrics registry snapshot at serialization time.
  void includeMetrics(bool On = true) { WithMetrics = On; }

  bool hasRun() const { return HasRun; }
  const RunStats &run() const { return Run; }

  std::string toJson() const;
  std::string toCsv() const;
  /// Writes JSON, or CSV when \p Path ends in ".csv".
  bool writeFile(const std::string &Path) const;

private:
  bool HasRun = false;
  RunStats Run;
  int Jobs = 0;

  bool HasImage = false;
  size_t NumCus = 0;
  size_t SnapshotObjects = 0;
  uint64_t TextSize = 0;
  uint64_t HeapSize = 0;
  uint64_t Seed = 0;
  bool Instrumented = false;
  bool BuildFailed = false;

  /// Hot/cold splitting summary (present when the image was built with
  /// --split hotcold, even if every CU degraded to unsplit).
  bool HasSplit = false;
  uint32_t SplitCus = 0;
  uint32_t SplitDegradedCus = 0;
  uint64_t SplitHotBytes = 0;
  uint64_t SplitColdBytes = 0;
  uint64_t SplitStubBytes = 0;
  uint64_t ColdTailOffset = 0;
  uint64_t ColdTailSize = 0;

  /// Ext-TSP hot-fragment block-reordering summary (present when the
  /// image was built with --blocks exttsp, even if every fragment kept
  /// block index order).
  bool HasBlocks = false;
  uint32_t BlocksReorderedCus = 0;
  uint32_t BlocksDegradedCus = 0;
  uint64_t BlocksChainMerges = 0;
  /// Permille of considered hot-hot edge weight falling through in the
  /// emitted order / in block index order.
  uint64_t BlocksFallthroughPermille = 0;
  uint64_t BlocksFallthroughPermilleIndex = 0;
  /// Ext-TSP score uplift of the emitted order over index order, permille.
  int64_t BlocksScoreUpliftPermille = 0;

  /// Multi-size page geometry (present when the image was built with
  /// --huge-pages, even if the budget was clamped to zero effective pages).
  bool HasPages = false;
  uint32_t HugePagesRequested = 0;
  uint32_t HugePages = 0;
  uint64_t HugeRegionSize = 0;
  uint32_t PageSize = 0;

  bool HasFleet = false;
  FleetResult Fleet;
  FleetConfig FleetCfg;

  bool HasDiag = false;
  ProfileDiagnostics Diag;

  std::vector<std::pair<std::string, SalvageStats>> Salvage;
  bool WithMetrics = false;
};

} // namespace obs
} // namespace nimg

#endif // NIMG_OBS_STARTUPREPORT_H
