//===- SpanTracer.cpp - Phase span tracing (Chrome trace events) ------------===//

#include "src/obs/SpanTracer.h"

#include "src/obs/Json.h"

#include <fstream>

using namespace nimg;
using namespace nimg::obs;

SpanTracer::SpanTracer() : Epoch(std::chrono::steady_clock::now()) {}

SpanTracer &SpanTracer::global() {
  // Leaked for the same destruction-order reason as MetricsRegistry.
  static SpanTracer *T = new SpanTracer();
  return *T;
}

int64_t SpanTracer::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void SpanTracer::record(SpanEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(E));
}

void SpanTracer::instant(std::string Name, std::string Cat) {
  if (!enabled())
    return;
  SpanEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.StartUs = nowUs();
  E.DurUs = 0;
  E.Tid = detail::threadId();
  record(std::move(E));
}

size_t SpanTracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.clear();
}

std::string SpanTracer::toChromeJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("displayTimeUnit", "ms");
  W.key("traceEvents");
  W.beginArray();
  for (const SpanEvent &E : Events) {
    W.beginObject();
    W.member("name", E.Name);
    W.member("cat", E.Cat);
    W.member("ph", "X");
    W.member("ts", E.StartUs);
    W.member("dur", E.DurUs);
    W.member("pid", uint64_t(1));
    W.member("tid", uint64_t(E.Tid));
    if (!E.Args.empty()) {
      W.key("args");
      W.beginObject();
      for (const auto &[K, V] : E.Args)
        W.member(K, V);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return Out;
}

bool SpanTracer::writeFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  std::string Json = toChromeJson();
  Out.write(Json.data(), std::streamsize(Json.size()));
  return bool(Out);
}
