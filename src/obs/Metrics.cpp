//===- Metrics.cpp - Low-overhead metrics registry ---------------------------===//

#include "src/obs/Metrics.h"

#include "src/obs/Json.h"

#include <bit>
#include <cstdio>

using namespace nimg;
using namespace nimg::obs;

uint32_t obs::detail::threadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

//===----------------------------------------------------------------------===//
// Histogram.
//===----------------------------------------------------------------------===//

size_t Histogram::bucketOf(uint64_t V) noexcept {
  return size_t(std::bit_width(V)); // 0 -> 0, [2^(B-1), 2^B) -> B.
}

uint64_t Histogram::bucketLo(size_t B) noexcept {
  return B == 0 ? 0 : uint64_t(1) << (B - 1);
}

uint64_t Histogram::bucketHi(size_t B) noexcept {
  if (B == 0)
    return 0;
  if (B == NumBuckets - 1)
    return ~uint64_t(0);
  return (uint64_t(1) << B) - 1;
}

void Histogram::record(uint64_t V) noexcept {
  Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (V < Cur &&
         !Min.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const noexcept {
  uint64_t M = Min.load(std::memory_order_relaxed);
  return M == ~uint64_t(0) && count() == 0 ? 0 : M;
}

uint64_t Histogram::max() const noexcept {
  return Max.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  // Leaked on purpose: instrumented call sites cache metric references in
  // function-local statics whose destruction order vs. this singleton is
  // otherwise unsequenced.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

bool MetricsRegistry::has(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.find(Name) != Counters.end() ||
         Gauges.find(Name) != Gauges.end() ||
         Histograms.find(Name) != Histograms.end();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.size() + Gauges.size() + Histograms.size();
}

std::string MetricsRegistry::toText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  char Buf[160];
  for (const auto &[Name, C] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "counter   %-44s %llu\n", Name.c_str(),
                  (unsigned long long)C->value());
    Out += Buf;
  }
  for (const auto &[Name, G] : Gauges) {
    std::snprintf(Buf, sizeof(Buf), "gauge     %-44s %lld\n", Name.c_str(),
                  (long long)G->value());
    Out += Buf;
  }
  for (const auto &[Name, H] : Histograms) {
    if (H->count() == 0) {
      std::snprintf(Buf, sizeof(Buf), "histogram %-44s count=0\n",
                    Name.c_str());
      Out += Buf;
      continue;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "histogram %-44s count=%llu sum=%llu min=%llu max=%llu\n",
                  Name.c_str(), (unsigned long long)H->count(),
                  (unsigned long long)H->sum(), (unsigned long long)H->min(),
                  (unsigned long long)H->max());
    Out += Buf;
  }
  return Out;
}

void MetricsRegistry::writeJson(JsonWriter &W) const {
  std::lock_guard<std::mutex> Lock(Mu);
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, C] : Counters)
    W.member(Name, C->value());
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, G] : Gauges)
    W.member(Name, int64_t(G->value()));
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    W.beginObject();
    W.member("count", H->count());
    W.member("sum", H->sum());
    W.member("min", H->min());
    W.member("max", H->max());
    W.key("buckets");
    W.beginArray();
    // Sparse encoding: only non-empty buckets, as [lo, hi, count] triples.
    for (size_t B = 0; B < Histogram::NumBuckets; ++B) {
      uint64_t N = H->bucketCount(B);
      if (N == 0)
        continue;
      W.beginArray();
      W.value(Histogram::bucketLo(B));
      W.value(Histogram::bucketHi(B));
      W.value(N);
      W.endArray();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

void MetricsRegistry::resetForTest() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}
