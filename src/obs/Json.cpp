//===- Json.cpp - Minimal JSON writer and parser ----------------------------===//

#include "src/obs/Json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace nimg;
using namespace nimg::obs;

//===----------------------------------------------------------------------===//
// Writer.
//===----------------------------------------------------------------------===//

std::string JsonWriter::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::beforeValue() {
  if (!Stack.empty() && !PendingKey) {
    assert(Stack.back().first == 'a' &&
           "object members need a key() before each value");
    if (Stack.back().second)
      Out += ',';
    Stack.back().second = true;
  }
  PendingKey = false;
}

void JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().first == 'o' &&
         "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (Stack.back().second)
    Out += ',';
  Stack.back().second = true;
  Out += '"';
  Out += escape(K);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  Stack.push_back({'o', false});
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().first == 'o');
  Stack.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  Stack.push_back({'a', false});
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().first == 'a');
  Stack.pop_back();
  Out += ']';
}

void JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  Out += escape(S);
  Out += '"';
}

void JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
}

void JsonWriter::value(double D) {
  beforeValue();
  if (!std::isfinite(D)) {
    // JSON has no Infinity/NaN; observability data degrades to null rather
    // than emitting an unloadable document.
    Out += "null";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void JsonWriter::value(uint64_t U) {
  beforeValue();
  Out += std::to_string(U);
}

void JsonWriter::value(int64_t I) {
  beforeValue();
  Out += std::to_string(I);
}

void JsonWriter::null() {
  beforeValue();
  Out += "null";
}

void JsonWriter::rawValue(std::string_view Json) {
  beforeValue();
  Out += Json;
}

//===----------------------------------------------------------------------===//
// Parser.
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

const JsonValue *JsonValue::at(std::string_view Path) const {
  const JsonValue *V = this;
  while (!Path.empty()) {
    size_t Dot = Path.find('.');
    std::string_view Head =
        Dot == std::string_view::npos ? Path : Path.substr(0, Dot);
    V = V->get(Head);
    if (!V)
      return nullptr;
    Path = Dot == std::string_view::npos ? std::string_view()
                                         : Path.substr(Dot + 1);
  }
  return V;
}

namespace {

/// Recursive-descent parser with a depth bound (observability artifacts are
/// shallow; a deeply nested document is corruption, not data).
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const char *Msg) {
    if (Error && Error->empty()) {
      *Error = Msg;
      *Error += " at offset " + std::to_string(Pos);
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (!eat('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are not
        // produced by our writer; a lone surrogate decodes as-is).
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xc0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3f));
        } else {
          Out += char(0xe0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3f));
          Out += char(0x80 | (Code & 0x3f));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (eat('-')) {
    }
    // Strict JSON: the integer part is "0" or starts with a nonzero digit.
    if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
        std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))
      return fail("leading zero in number");
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected number");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out.K = JsonValue::Kind::Number;
    Out.Num = D;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of document");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (eat('}'))
        return true;
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (!eat(':'))
          return fail("expected ':'");
        JsonValue V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (eat(','))
          continue;
        if (eat('}'))
          return true;
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (eat(']'))
        return true;
      while (true) {
        JsonValue V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (eat(','))
          continue;
        if (eat(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (literal("true")) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return true;
    }
    if (literal("false")) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return true;
    }
    if (literal("null")) {
      Out.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(Out);
  }

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

bool nimg::obs::parseJson(std::string_view Text, JsonValue &Out,
                          std::string *Error) {
  Out = JsonValue{};
  if (Error)
    Error->clear();
  return Parser(Text, Error).parse(Out);
}
