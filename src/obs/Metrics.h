//===- Metrics.h - Low-overhead metrics registry ----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate of the pipeline: named Counters (per-thread
/// sharded, relaxed atomics), Gauges, and log2-bucketed Histograms in a
/// process-global registry. Layout optimizers live or die by their
/// measurement loop (BOLT, Meta's function-layout work), so every stage of
/// this pipeline — paging, salvage, profile ingestion, build, ordering —
/// reports here, and `nimage_cli --metrics` / the startup report render the
/// registry.
///
/// Hot-path call sites go through the NIMG_COUNTER_ADD / NIMG_HIST_RECORD /
/// NIMG_GAUGE_SET macros. The macros cache the registry lookup in a
/// function-local static (one mutex acquisition per call site, ever) and —
/// when the TU is compiled with NIMG_OBS_DISABLED — expand to an
/// unevaluated-operand no-op, so instrumented hot loops cost nothing in an
/// observability-disabled build (-DNIMG_OBS_DISABLED=ON).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_METRICS_H
#define NIMG_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nimg {
namespace obs {

class JsonWriter;

namespace detail {
/// Small dense id of the calling thread (assigned on first use); shared by
/// counter sharding and the span tracer's tid field.
uint32_t threadId();
} // namespace detail

/// Monotonic counter. add() touches only the calling thread's shard (a
/// cache-line-padded relaxed atomic), so concurrent increments from worker
/// threads do not bounce one line; value() merges the shards.
class Counter {
public:
  void add(uint64_t N = 1) noexcept {
    Shards[detail::threadId() & (NumShards - 1)].V.fetch_add(
        N, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  static constexpr size_t NumShards = 16; // Power of two; see add().
  struct alignas(64) Shard {
    std::atomic<uint64_t> V{0};
  };
  Shard Shards[NumShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
  void set(int64_t V) noexcept { Val.store(V, std::memory_order_relaxed); }
  void add(int64_t N) noexcept { Val.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const noexcept { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Val{0};
};

/// Log2-bucketed histogram of uint64 samples. Bucket 0 holds the value 0;
/// bucket B >= 1 holds [2^(B-1), 2^B - 1] (i.e. bucketOf(V) = bit_width(V)).
/// Buckets are relaxed atomics; recording is wait-free.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  static size_t bucketOf(uint64_t V) noexcept;
  /// Inclusive range covered by bucket \p B.
  static uint64_t bucketLo(size_t B) noexcept;
  static uint64_t bucketHi(size_t B) noexcept;

  void record(uint64_t V) noexcept;

  uint64_t count() const noexcept {
    return Count.load(std::memory_order_relaxed);
  }
  uint64_t sum() const noexcept { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const noexcept;
  uint64_t max() const noexcept;
  uint64_t bucketCount(size_t B) const noexcept {
    return Buckets[B].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{~uint64_t(0)};
  std::atomic<uint64_t> Max{0};
};

/// Name -> metric map. Metric references returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime, so call sites may
/// cache them (the macros do).
class MetricsRegistry {
public:
  /// The process-global registry every macro call site reports to.
  static MetricsRegistry &global();

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  bool has(std::string_view Name) const;
  size_t size() const;

  /// Human-readable dump, one metric per line, sorted by name (the
  /// `nimage_cli --metrics` output). Zero-count histograms print count only.
  std::string toText() const;

  /// Renders {"counters":{...},"gauges":{...},"histograms":{...}} as one
  /// JSON value into \p W (used by the startup report).
  void writeJson(JsonWriter &W) const;

  /// Drops every metric. Tests only — cached references at macro call sites
  /// dangle after this, so the instrumented pipeline must not run afterwards
  /// in the same process. (Test binaries use it in ctest-isolated processes.)
  void resetForTest();

private:
  mutable std::mutex Mu;
  // std::map: stable addresses via unique_ptr, sorted deterministic output.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

} // namespace obs
} // namespace nimg

//===----------------------------------------------------------------------===//
// Instrumentation macros (compile out under NIMG_OBS_DISABLED).
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_DISABLED
#define NIMG_OBS_ENABLED 1

/// Adds N to the counter named by the literal Name. The registry lookup is
/// cached per call site.
#define NIMG_COUNTER_ADD(Name, N)                                              \
  do {                                                                         \
    static ::nimg::obs::Counter &NimgObsCtr_ =                                 \
        ::nimg::obs::MetricsRegistry::global().counter(Name);                  \
    NimgObsCtr_.add(N);                                                        \
  } while (0)

/// Counter add for a runtime-computed name (no per-site cache; keep off hot
/// paths — used for per-error-kind rejection counters).
#define NIMG_COUNTER_ADD_DYN(Name, N)                                          \
  do {                                                                         \
    ::nimg::obs::MetricsRegistry::global().counter(Name).add(N);               \
  } while (0)

#define NIMG_GAUGE_SET(Name, V)                                                \
  do {                                                                         \
    static ::nimg::obs::Gauge &NimgObsGa_ =                                    \
        ::nimg::obs::MetricsRegistry::global().gauge(Name);                    \
    NimgObsGa_.set(V);                                                         \
  } while (0)

#define NIMG_HIST_RECORD(Name, V)                                              \
  do {                                                                         \
    static ::nimg::obs::Histogram &NimgObsHi_ =                                \
        ::nimg::obs::MetricsRegistry::global().histogram(Name);                \
    NimgObsHi_.record(V);                                                      \
  } while (0)

#else // NIMG_OBS_DISABLED
#define NIMG_OBS_ENABLED 0

// The operands sit in unevaluated sizeof contexts, so side effects never
// run, "unused variable" warnings are suppressed, and the optimizer sees
// nothing at all.
#define NIMG_COUNTER_ADD(Name, N) ((void)sizeof(Name), (void)sizeof(N))
#define NIMG_COUNTER_ADD_DYN(Name, N) ((void)sizeof(N))
#define NIMG_GAUGE_SET(Name, V) ((void)sizeof(Name), (void)sizeof(V))
#define NIMG_HIST_RECORD(Name, V) ((void)sizeof(Name), (void)sizeof(V))

#endif // NIMG_OBS_DISABLED

#endif // NIMG_OBS_METRICS_H
