//===- SpanTracer.h - Phase span tracing (Chrome trace events) --*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock span tracing for the pipeline: scoped spans wrap the four
/// phases of the paper's Fig. 1 (instrumented build -> trace collection ->
/// post-processing -> optimized build) and nest per build step, analysis,
/// orderer, and heap-id strategy. The tracer serializes to the Chrome
/// trace-event format ("ph":"X" complete events), so `nimage_cli
/// --trace-out pipeline.json` produces a file loadable by Perfetto or
/// chrome://tracing as-is.
///
/// The tracer is off by default: a disabled-tracer span costs one relaxed
/// atomic load. NIMG_SPAN compiles out entirely under NIMG_OBS_DISABLED.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_SPANTRACER_H
#define NIMG_OBS_SPANTRACER_H

#include "src/obs/Metrics.h" // detail::threadId + the NIMG_OBS_ENABLED switch.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nimg {
namespace obs {

/// One completed span ("ph":"X" in the trace-event format). Times are
/// microseconds relative to the tracer's epoch.
struct SpanEvent {
  std::string Name;
  std::string Cat;
  int64_t StartUs = 0;
  int64_t DurUs = 0;
  uint32_t Tid = 0;
  /// Optional key/value annotations rendered into the event's "args".
  std::vector<std::pair<std::string, std::string>> Args;
};

class SpanTracer {
public:
  static SpanTracer &global();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  /// Microseconds since the tracer's epoch (steady clock).
  int64_t nowUs() const;

  void record(SpanEvent E);
  /// A zero-duration marker event.
  void instant(std::string Name, std::string Cat);

  size_t eventCount() const;
  void clear();

  /// {"displayTimeUnit":"ms","traceEvents":[...]} — the Chrome trace-event
  /// JSON object form, loadable by Perfetto / chrome://tracing.
  std::string toChromeJson() const;
  bool writeFile(const std::string &Path) const;

private:
  SpanTracer();

  std::atomic<bool> Enabled{false};
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::vector<SpanEvent> Events;
};

/// RAII span: samples the clock on construction and records a complete
/// event on destruction. Capture decision is taken at construction — a span
/// open while the tracer is switched off still records (pipeline phases are
/// long; losing the outermost span to a race would be worse).
class ScopedSpan {
public:
  ScopedSpan(const char *Cat, std::string Name)
      : Active(SpanTracer::global().enabled()) {
    if (!Active)
      return;
    E.Cat = Cat;
    E.Name = std::move(Name);
    E.Tid = detail::threadId();
    E.StartUs = SpanTracer::global().nowUs();
  }
  ~ScopedSpan() {
    if (!Active)
      return;
    E.DurUs = SpanTracer::global().nowUs() - E.StartUs;
    SpanTracer::global().record(std::move(E));
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Annotates the span (rendered into the trace event's "args" object).
  void arg(std::string Key, std::string Value) {
    if (Active)
      E.Args.emplace_back(std::move(Key), std::move(Value));
  }

private:
  bool Active;
  SpanEvent E;
};

} // namespace obs
} // namespace nimg

#if NIMG_OBS_ENABLED

#define NIMG_OBS_CONCAT_IMPL(A, B) A##B
#define NIMG_OBS_CONCAT(A, B) NIMG_OBS_CONCAT_IMPL(A, B)

/// Opens a scoped span covering the rest of the enclosing block.
/// Cat is a string literal (the span taxonomy's category); Name may be any
/// std::string expression.
#define NIMG_SPAN(Cat, Name)                                                   \
  ::nimg::obs::ScopedSpan NIMG_OBS_CONCAT(NimgSpan_, __LINE__)((Cat), (Name))

/// A span the caller can annotate via NIMG_SPAN_ARG(Var, ...).
#define NIMG_SPAN_NAMED(Var, Cat, Name)                                        \
  ::nimg::obs::ScopedSpan Var((Cat), (Name))

/// Annotates a NIMG_SPAN_NAMED span; arguments are not evaluated in
/// disabled builds, so annotation expressions may be arbitrarily costly.
#define NIMG_SPAN_ARG(Var, K, V) Var.arg((K), (V))

#else

#define NIMG_SPAN(Cat, Name) ((void)sizeof(Cat), (void)sizeof(Name))
#define NIMG_SPAN_NAMED(Var, Cat, Name)                                        \
  ((void)sizeof(Cat), (void)sizeof(Name))
#define NIMG_SPAN_ARG(Var, K, V) ((void)sizeof(K), (void)sizeof(V))

#endif // NIMG_OBS_ENABLED

#endif // NIMG_OBS_SPANTRACER_H
