//===- Lexer.h - MiniJava lexer ---------------------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniJava, the Java-like workload language. Supports line
/// and block comments, integer/double/string literals with escapes, and the
/// operator set of the language.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_LANG_LEXER_H
#define NIMG_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace nimg {

enum class TokKind : uint8_t {
  Eof,
  Error,
  Ident,
  IntLit,
  DoubleLit,
  StringLit,
  // Keywords.
  KwClass,
  KwExtends,
  KwStatic,
  KwFinal,
  KwAbstract,
  KwInt,
  KwDouble,
  KwBoolean,
  KwString,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwNew,
  KwNull,
  KwTrue,
  KwFalse,
  KwThis,
  KwSuper,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Assign,      // =
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  Percent,     // %
  Lt,          // <
  Le,          // <=
  Gt,          // >
  Ge,          // >=
  EqEq,        // ==
  NotEq,       // !=
  AndAnd,      // &&
  OrOr,        // ||
  Amp,         // &
  Pipe,        // |
  Caret,       // ^
  Shl,         // <<
  Shr,         // >>
  Bang,        // !
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< Identifier name or string-literal contents.
  int64_t IntVal = 0;
  double DblVal = 0;
  int Line = 0;
};

/// Tokenizes \p Source. On a lexical error the token stream ends with a
/// TokKind::Error token whose Text describes the problem.
std::vector<Token> lexSource(const std::string &Source);

/// Returns a printable name for a token kind (diagnostics).
const char *tokKindName(TokKind K);

} // namespace nimg

#endif // NIMG_LANG_LEXER_H
