//===- Parser.h - MiniJava recursive-descent parser -------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the MiniJava AST. Errors are
/// collected as "line N: message" strings; parsing stops at the first
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_LANG_PARSER_H
#define NIMG_LANG_PARSER_H

#include "src/lang/Ast.h"
#include "src/lang/Lexer.h"

#include <string>
#include <vector>

namespace nimg {

/// Parses \p Source into \p Unit. Returns false and fills \p Errors on
/// failure.
bool parseUnit(const std::string &Source, AstUnit &Unit,
               std::vector<std::string> &Errors);

} // namespace nimg

#endif // NIMG_LANG_PARSER_H
