//===- Compile.cpp - MiniJava semantic analysis and lowering ---------------===//

#include "src/lang/Compile.h"

#include "src/ir/IrBuilder.h"
#include "src/ir/Verifier.h"
#include "src/lang/Parser.h"

#include <unordered_map>

using namespace nimg;

namespace {

/// A typed IR value produced by expression lowering.
struct TypedReg {
  uint16_t Reg = 0;
  TypeId Ty = -1;
};

struct LoopTargets {
  BlockId BreakB;
  BlockId ContinueB;
};

class Compiler {
public:
  Compiler(std::vector<AstUnit> &Units, Program &P,
           std::vector<std::string> &Errors)
      : Units(Units), P(P), Errors(Errors) {}

  bool run() {
    NullType = P.nullType();
    declareBuiltins();
    if (!declareClasses())
      return false;
    if (!declareMembers())
      return false;
    if (!lowerBodies())
      return false;
    resolveMain();
    std::vector<std::string> VerifyErrors;
    for (size_t M = 0; M < P.numMethods(); ++M)
      verifyMethod(P, MethodId(M), VerifyErrors);
    for (const std::string &E : VerifyErrors)
      Errors.push_back("internal: IR verification failed: " + E);
    return VerifyErrors.empty();
  }

private:
  // --- Diagnostics ----------------------------------------------------------

  void error(int Line, const std::string &Msg) {
    Errors.push_back("line " + std::to_string(Line) + ": " + Msg);
    Failed = true;
  }

  // --- Declaration passes ------------------------------------------------------

  void declareBuiltins() {
    ObjectClass = P.findClass("Object");
    if (ObjectClass == -1)
      ObjectClass = P.addClass("Object");
    // Synthesized default constructor for Object.
    MethodId Ctor = P.findMethodBySig("Object.<init>(Object)");
    if (Ctor == -1) {
      Ctor = P.addMethod(ObjectClass, "<init>", {P.objectType(ObjectClass)},
                         P.voidType(), /*IsStatic=*/true);
      IrBuilder B(P, Ctor);
      B.retVoid();
    }
  }

  bool declareClasses() {
    for (AstUnit &U : Units) {
      for (AstClass &Cls : U.Classes) {
        if (P.findClass(Cls.Name) != -1) {
          error(Cls.Line, "duplicate class '" + Cls.Name + "'");
          continue;
        }
        if (Cls.Name == "Sys" || Cls.Name == "Str") {
          error(Cls.Line, "'" + Cls.Name + "' is a reserved builtin class");
          continue;
        }
        ClassId Id = P.addClass(Cls.Name, -1, Cls.IsAbstract);
        ClassAst[Id] = &Cls;
      }
    }
    if (Failed)
      return false;
    // Resolve superclasses now that every name is known.
    for (auto &[Id, Cls] : ClassAst) {
      ClassId Super = ObjectClass;
      if (!Cls->SuperName.empty()) {
        Super = P.findClass(Cls->SuperName);
        if (Super == -1) {
          error(Cls->Line, "unknown superclass '" + Cls->SuperName + "'");
          continue;
        }
      }
      P.classDef(Id).Super = Super;
    }
    if (Failed)
      return false;
    // Reject inheritance cycles.
    for (auto &[Id, Cls] : ClassAst) {
      ClassId Slow = Id, Fast = Id;
      while (true) {
        Fast = P.classDef(Fast).Super;
        if (Fast == -1)
          break;
        Fast = P.classDef(Fast).Super;
        if (Fast == -1)
          break;
        Slow = P.classDef(Slow).Super;
        if (Slow == Fast) {
          error(Cls->Line, "inheritance cycle involving '" + Cls->Name + "'");
          return false;
        }
      }
    }
    return !Failed;
  }

  TypeId resolveType(const AstType &Ty) {
    TypeId Base;
    if (Ty.Base == "int")
      Base = P.intType();
    else if (Ty.Base == "double")
      Base = P.doubleType();
    else if (Ty.Base == "boolean")
      Base = P.boolType();
    else if (Ty.Base == "String")
      Base = P.stringType();
    else if (Ty.Base == "void")
      Base = P.voidType();
    else {
      ClassId C = P.findClass(Ty.Base);
      if (C == -1) {
        error(Ty.Line, "unknown type '" + Ty.Base + "'");
        return P.intType();
      }
      Base = P.objectType(C);
    }
    for (int I = 0; I < Ty.Rank; ++I)
      Base = P.arrayType(Base);
    return Base;
  }

  bool declareMembers() {
    for (auto &[Id, Cls] : ClassAst) {
      ClassDef &Def = P.classDef(Id);
      for (AstField &F : Cls->Fields) {
        Field Fld;
        Fld.Name = F.Name;
        Fld.Type = resolveType(F.Ty);
        Fld.Owner = Id;
        Fld.IsFinal = F.IsFinal;
        if (F.IsStatic)
          Def.StaticFields.push_back(Fld);
        else
          Def.InstanceFields.push_back(Fld);
      }
    }
    if (Failed)
      return false;

    for (auto &[Id, Cls] : ClassAst) {
      bool HasCtor = false;
      bool HasStaticInitWork = false;
      for (AstField &F : Cls->Fields)
        if (F.IsStatic && F.Init)
          HasStaticInitWork = true;

      for (AstMethod &M : Cls->Methods) {
        if (M.IsStaticInit) {
          HasStaticInitWork = true;
          continue;
        }
        std::vector<TypeId> Params;
        bool IsStatic = M.IsStatic || M.IsCtor;
        if (!M.IsStatic)
          Params.push_back(P.objectType(Id)); // receiver ('this')
        for (auto &[PTy, PName] : M.Params)
          Params.push_back(resolveType(PTy));
        std::string Name = M.IsCtor ? "<init>" : M.Name;
        TypeId Ret = M.IsCtor ? P.voidType() : resolveType(M.RetTy);
        // Duplicate check before insertion (addMethod asserts otherwise).
        std::string Sig =
            P.classDef(Id).Name + "." + Name +
            paramDescriptor(P, Params, /*SkipReceiver=*/!M.IsStatic);
        if (P.findMethodBySig(Sig) != -1) {
          error(M.Line, "duplicate method " + Sig);
          continue;
        }
        MethodId MId = P.addMethod(Id, Name, std::move(Params), Ret, IsStatic,
                                   M.IsAbstract);
        MethodAst[MId] = &M;
        if (M.IsCtor)
          HasCtor = true;
        if (M.IsAbstract && !P.classDef(Id).IsAbstract)
          error(M.Line, "abstract method in non-abstract class " +
                            P.classDef(Id).Name);
      }

      // Instance field initializers require constructors to run them.
      bool HasInstanceInit = false;
      for (AstField &F : Cls->Fields)
        if (!F.IsStatic && F.Init)
          HasInstanceInit = true;
      if (!HasCtor) {
        // Synthesize a default constructor.
        MethodId Ctor =
            P.addMethod(Id, "<init>", {P.objectType(Id)}, P.voidType(),
                        /*IsStatic=*/true);
        SynthCtors.push_back(Ctor);
      }
      (void)HasInstanceInit;

      if (HasStaticInitWork) {
        MethodId Clinit = P.addMethod(Id, "<clinit>", {}, P.voidType(),
                                      /*IsStatic=*/true);
        P.method(Clinit).IsClinit = true;
        P.classDef(Id).Clinit = Clinit;
      }
    }
    return !Failed;
  }

  void resolveMain() {
    ClassId MainClass = P.findClass("Main");
    if (MainClass == -1)
      return;
    MethodId Main = P.findDeclaredMethod(MainClass, "main", {});
    if (Main != -1 && P.method(Main).IsStatic)
      P.MainMethod = Main;
  }

  // --- Lowering ------------------------------------------------------------

  bool lowerBodies() {
    for (MethodId Ctor : SynthCtors)
      lowerSynthesizedCtor(Ctor);
    for (auto &[MId, Ast] : MethodAst) {
      if (Ast->IsAbstract)
        continue;
      lowerMethod(MId, *Ast);
      if (Failed)
        return false;
    }
    // Class static initializers.
    for (auto &[Id, Cls] : ClassAst) {
      MethodId Clinit = P.classDef(Id).Clinit;
      if (Clinit == -1)
        continue;
      lowerClinit(Id, *Cls, Clinit);
      if (Failed)
        return false;
    }
    return !Failed;
  }

  /// Emits: super.<init>(this); return;
  void lowerSynthesizedCtor(MethodId Ctor) {
    Method &M = P.method(Ctor);
    ClassId Cls = M.Class;
    IrBuilder B(P, Ctor);
    ClassId Super = P.classDef(Cls).Super;
    if (Super != -1) {
      MethodId SuperCtor = findCtor(Super, {});
      if (SuperCtor != -1)
        B.callStatic(SuperCtor, {0});
    }
    emitInstanceFieldInits(B, Cls, 0);
    B.retVoid();
  }

  /// Finds `<init>` declared on \p C accepting \p ArgTypes.
  MethodId findCtor(ClassId C, const std::vector<TypeId> &ArgTypes) {
    for (MethodId M : P.classDef(C).Methods) {
      const Method &Meth = P.method(M);
      if (Meth.Name != "<init>")
        continue;
      if (Meth.ParamTypes.size() != ArgTypes.size() + 1)
        continue;
      bool Ok = true;
      for (size_t I = 0; I < ArgTypes.size(); ++I)
        if (!isAssignable(ArgTypes[I], Meth.ParamTypes[I + 1]))
          Ok = false;
      if (Ok)
        return M;
    }
    return -1;
  }

  void emitInstanceFieldInits(IrBuilder &B, ClassId Cls, uint16_t ThisReg) {
    auto It = ClassAst.find(Cls);
    if (It == ClassAst.end())
      return;
    for (AstField &F : It->second->Fields) {
      if (F.IsStatic || !F.Init)
        continue;
      int32_t Idx = P.findFieldIndex(Cls, F.Name);
      assert(Idx >= 0 && "declared field missing from layout");
      TypeId FieldTy = P.layout(Cls)[size_t(Idx)].Type;
      TypedReg V = lowerExpr(B, *F.Init);
      V = coerce(B, V, FieldTy, F.Line);
      B.putField(ThisReg, Idx, V.Reg);
    }
  }

  void lowerClinit(ClassId Cls, AstClass &Ast, MethodId Clinit) {
    IrBuilder B(P, Clinit);
    CurClass = Cls;
    CurMethod = Clinit;
    CurStatic = true;
    Scopes.clear();
    Scopes.emplace_back();
    Loops.clear();
    // Static field initializers in declaration order, interleaved with
    // static blocks in source order: fields first (declaration order), then
    // blocks — MiniJava simplifies Java's textual-order rule.
    for (AstField &F : Ast.Fields) {
      if (!F.IsStatic || !F.Init)
        continue;
      auto [OwnC, Idx] = P.findStaticField(Cls, F.Name);
      assert(OwnC == Cls && Idx >= 0 && "static field missing");
      TypeId FieldTy = P.classDef(Cls).StaticFields[size_t(Idx)].Type;
      TypedReg V = lowerExpr(B, *F.Init);
      V = coerce(B, V, FieldTy, F.Line);
      B.putStatic(Cls, Idx, V.Reg);
      if (Failed)
        return;
    }
    for (AstMethod &M : Ast.Methods) {
      if (!M.IsStaticInit)
        continue;
      lowerStmt(B, *M.Body);
      if (Failed)
        return;
    }
    finishBlocks(B);
  }

  void lowerMethod(MethodId MId, AstMethod &Ast) {
    Method &M = P.method(MId);
    CurClass = M.Class;
    CurMethod = MId;
    CurStatic = M.IsStatic && !Ast.IsCtor;
    Scopes.clear();
    Scopes.emplace_back();
    Loops.clear();
    IrBuilder B(P, MId);

    // Bind parameters. Register 0 is `this` for instance methods and
    // constructors.
    uint16_t Reg = 0;
    if (!Ast.IsStatic) {
      Scopes.back()["this"] = {Reg, P.objectType(M.Class)};
      ++Reg;
    }
    for (auto &[PTy, PName] : Ast.Params) {
      Scopes.back()[PName] = {Reg, M.ParamTypes[Reg]};
      ++Reg;
    }

    size_t FirstStmt = 0;
    if (Ast.IsCtor) {
      // Constructor prologue: explicit or implicit super call, then
      // instance-field initializers.
      AstStmt *Body = Ast.Body.get();
      assert(Body && Body->K == StmtKind::Block && "constructor has no body");
      bool ExplicitSuper =
          !Body->Body.empty() && Body->Body[0]->K == StmtKind::SuperCall;
      ClassId Super = P.classDef(M.Class).Super;
      if (ExplicitSuper) {
        AstStmt &S = *Body->Body[0];
        std::vector<TypedReg> Args;
        std::vector<TypeId> ArgTys;
        for (ExprPtr &A : S.Args) {
          TypedReg V = lowerExpr(B, *A);
          Args.push_back(V);
          ArgTys.push_back(V.Ty);
        }
        MethodId SuperCtor = Super == -1 ? -1 : findCtor(Super, ArgTys);
        if (SuperCtor == -1) {
          error(S.Line, "no matching super constructor");
          return;
        }
        std::vector<uint16_t> CallRegs{0};
        const Method &SC = P.method(SuperCtor);
        for (size_t I = 0; I < Args.size(); ++I) {
          TypedReg V = coerce(B, Args[I], SC.ParamTypes[I + 1], S.Line);
          CallRegs.push_back(V.Reg);
        }
        B.callStatic(SuperCtor, CallRegs);
        FirstStmt = 1;
      } else if (Super != -1) {
        MethodId SuperCtor = findCtor(Super, {});
        if (SuperCtor == -1) {
          error(Ast.Line, "superclass of " + P.classDef(M.Class).Name +
                              " has no default constructor");
          return;
        }
        B.callStatic(SuperCtor, {0});
      }
      emitInstanceFieldInits(B, M.Class, 0);
      for (size_t I = FirstStmt; I < Body->Body.size(); ++I) {
        lowerStmt(B, *Body->Body[I]);
        if (Failed)
          return;
      }
    } else {
      lowerStmt(B, *Ast.Body);
      if (Failed)
        return;
    }
    finishBlocks(B);
  }

  /// Ensures every block of the current method ends in a terminator:
  /// unterminated or empty blocks get an implicit return of the method's
  /// default value (the verifier then accepts the method).
  void finishBlocks(IrBuilder &B) {
    Method &M = B.method();
    TypeId Ret = M.RetType;
    for (size_t BI = 0; BI < M.Blocks.size(); ++BI) {
      BasicBlock &BB = M.Blocks[BI];
      if (!BB.Instrs.empty() && isTerminator(BB.Instrs.back().Op))
        continue;
      B.setBlock(BlockId(BI));
      if (P.type(Ret).Kind == TypeKind::Void) {
        B.retVoid();
        continue;
      }
      TypedReg Zero = zeroOf(B, Ret);
      B.ret(Zero.Reg);
    }
  }

  TypedReg zeroOf(IrBuilder &B, TypeId Ty) {
    switch (P.type(Ty).Kind) {
    case TypeKind::Int:
      return {B.constInt(0), Ty};
    case TypeKind::Double:
      return {B.constDouble(0), Ty};
    case TypeKind::Bool:
      return {B.constBool(false), Ty};
    default:
      return {B.constNull(), Ty};
    }
  }

  // --- Type relations -------------------------------------------------------

  bool isRefKind(TypeKind K) const {
    return K == TypeKind::Object || K == TypeKind::Array ||
           K == TypeKind::String;
  }

  bool isAssignable(TypeId From, TypeId To) {
    if (From == To)
      return true;
    const TypeInfo &F = P.type(From);
    const TypeInfo &T = P.type(To);
    if (F.Kind == TypeKind::Null && isRefKind(T.Kind))
      return true;
    if (F.Kind == TypeKind::Int && T.Kind == TypeKind::Double)
      return true;
    if (!isRefKind(F.Kind) || !isRefKind(T.Kind))
      return false;
    // Everything reference-like is assignable to Object.
    if (T.Kind == TypeKind::Object && T.Class == ObjectClass)
      return true;
    if (F.Kind == TypeKind::Object && T.Kind == TypeKind::Object)
      return P.isSubclassOf(F.Class, T.Class);
    return false;
  }

  /// Inserts conversions so \p V has type \p Want; errors when impossible.
  TypedReg coerce(IrBuilder &B, TypedReg V, TypeId Want, int Line) {
    if (V.Ty == Want)
      return V;
    const TypeInfo &F = P.type(V.Ty);
    const TypeInfo &T = P.type(Want);
    if (F.Kind == TypeKind::Int && T.Kind == TypeKind::Double)
      return {B.unop(Opcode::I2D, V.Reg), Want};
    // Null literal adapts to any reference type.
    if (V.Ty == NullType && isRefKind(T.Kind))
      return {V.Reg, Want};
    if (isAssignable(V.Ty, Want))
      return {V.Reg, Want};
    error(Line, "cannot convert " + P.typeName(V.Ty) + " to " +
                    P.typeName(Want));
    return {V.Reg, Want};
  }

  // --- Scopes ----------------------------------------------------------------

  struct LocalVar {
    uint16_t Reg;
    TypeId Ty;
  };

  LocalVar *findLocal(const std::string &Name) {
    for (size_t I = Scopes.size(); I > 0; --I) {
      auto It = Scopes[I - 1].find(Name);
      if (It != Scopes[I - 1].end())
        return &It->second;
    }
    return nullptr;
  }

  // --- Statement lowering ------------------------------------------------------

  void lowerStmt(IrBuilder &B, AstStmt &S) {
    if (Failed)
      return;
    switch (S.K) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (StmtPtr &Child : S.Body) {
        lowerStmt(B, *Child);
        if (Failed)
          break;
        if (B.blockTerminated() && &Child != &S.Body.back()) {
          // Dead code after return/break; start a fresh (unreachable)
          // block so lowering can continue and the verifier stays happy.
          BlockId Dead = B.newBlock();
          B.setBlock(Dead);
        }
      }
      Scopes.pop_back();
      break;
    }
    case StmtKind::VarDecl: {
      TypeId Ty = resolveType(S.Ty);
      TypedReg Init;
      if (S.Cond) {
        Init = lowerExpr(B, *S.Cond);
        Init = coerce(B, Init, Ty, S.Line);
      } else {
        Init = zeroOf(B, Ty);
      }
      uint16_t Reg = B.newReg();
      B.move(Reg, Init.Reg);
      if (Scopes.back().count(S.Name)) {
        error(S.Line, "redeclared variable '" + S.Name + "'");
        return;
      }
      Scopes.back()[S.Name] = {Reg, Ty};
      break;
    }
    case StmtKind::ExprStmt:
      lowerExpr(B, *S.Cond);
      break;
    case StmtKind::Assign:
      lowerAssign(B, S);
      break;
    case StmtKind::If: {
      TypedReg Cond = lowerExpr(B, *S.Cond);
      requireBool(Cond, S.Line);
      BlockId ThenB = B.newBlock();
      BlockId ElseB = S.Body[1] ? B.newBlock() : -1;
      BlockId JoinB = B.newBlock();
      B.br(Cond.Reg, ThenB, ElseB == -1 ? JoinB : ElseB);
      B.setBlock(ThenB);
      lowerStmt(B, *S.Body[0]);
      if (!B.blockTerminated())
        B.jmp(JoinB);
      if (ElseB != -1) {
        B.setBlock(ElseB);
        lowerStmt(B, *S.Body[1]);
        if (!B.blockTerminated())
          B.jmp(JoinB);
      }
      B.setBlock(JoinB);
      break;
    }
    case StmtKind::While: {
      BlockId CondB = B.newBlock();
      BlockId BodyB = B.newBlock();
      BlockId ExitB = B.newBlock();
      B.jmp(CondB);
      B.setBlock(CondB);
      TypedReg Cond = lowerExpr(B, *S.Cond);
      requireBool(Cond, S.Line);
      B.br(Cond.Reg, BodyB, ExitB);
      B.setBlock(BodyB);
      Loops.push_back({ExitB, CondB});
      lowerStmt(B, *S.Body[0]);
      Loops.pop_back();
      if (!B.blockTerminated())
        B.jmp(CondB);
      B.setBlock(ExitB);
      break;
    }
    case StmtKind::For: {
      Scopes.emplace_back();
      if (S.Init)
        lowerStmt(B, *S.Init);
      BlockId CondB = B.newBlock();
      BlockId BodyB = B.newBlock();
      BlockId StepB = B.newBlock();
      BlockId ExitB = B.newBlock();
      B.jmp(CondB);
      B.setBlock(CondB);
      if (S.Cond) {
        TypedReg Cond = lowerExpr(B, *S.Cond);
        requireBool(Cond, S.Line);
        B.br(Cond.Reg, BodyB, ExitB);
      } else {
        B.jmp(BodyB);
      }
      B.setBlock(BodyB);
      Loops.push_back({ExitB, StepB});
      lowerStmt(B, *S.Body[0]);
      Loops.pop_back();
      if (!B.blockTerminated())
        B.jmp(StepB);
      B.setBlock(StepB);
      if (S.Step)
        lowerStmt(B, *S.Step);
      if (!B.blockTerminated())
        B.jmp(CondB);
      B.setBlock(ExitB);
      Scopes.pop_back();
      break;
    }
    case StmtKind::Return: {
      const Method &M = P.method(CurMethod);
      if (P.type(M.RetType).Kind == TypeKind::Void) {
        if (S.Cond) {
          error(S.Line, "returning a value from a void method");
          return;
        }
        B.retVoid();
        return;
      }
      if (!S.Cond) {
        error(S.Line, "missing return value");
        return;
      }
      TypedReg V = lowerExpr(B, *S.Cond);
      V = coerce(B, V, M.RetType, S.Line);
      B.ret(V.Reg);
      break;
    }
    case StmtKind::Break:
      if (Loops.empty()) {
        error(S.Line, "'break' outside of a loop");
        return;
      }
      B.jmp(Loops.back().BreakB);
      break;
    case StmtKind::Continue:
      if (Loops.empty()) {
        error(S.Line, "'continue' outside of a loop");
        return;
      }
      B.jmp(Loops.back().ContinueB);
      break;
    case StmtKind::SuperCall:
      error(S.Line, "super call is only allowed as the first statement of a "
                    "constructor");
      break;
    }
  }

  void requireBool(const TypedReg &V, int Line) {
    if (P.type(V.Ty).Kind != TypeKind::Bool)
      error(Line, "condition must be boolean, got " + P.typeName(V.Ty));
  }

  void lowerAssign(IrBuilder &B, AstStmt &S) {
    AstExpr &L = *S.Kids[0];
    AstExpr &R = *S.Kids[1];
    switch (L.K) {
    case ExprKind::Ident: {
      if (LocalVar *Var = findLocal(L.Name)) {
        TypedReg V = lowerExpr(B, R);
        V = coerce(B, V, Var->Ty, S.Line);
        B.move(Var->Reg, V.Reg);
        return;
      }
      // Implicit this-field or own static field.
      if (!CurStatic) {
        int32_t Idx = P.findFieldIndex(CurClass, L.Name);
        if (Idx >= 0) {
          TypedReg V = lowerExpr(B, R);
          V = coerce(B, V, P.layout(CurClass)[size_t(Idx)].Type, S.Line);
          B.putField(0, Idx, V.Reg);
          return;
        }
      }
      auto [OwnC, SIdx] = P.findStaticField(CurClass, L.Name);
      if (OwnC != -1) {
        TypedReg V = lowerExpr(B, R);
        V = coerce(B, V, P.classDef(OwnC).StaticFields[size_t(SIdx)].Type,
                   S.Line);
        B.putStatic(OwnC, SIdx, V.Reg);
        return;
      }
      error(S.Line, "unknown variable '" + L.Name + "'");
      return;
    }
    case ExprKind::Member: {
      AstExpr &Recv = *L.Kids[0];
      // ClassName.staticField = ...
      if (Recv.K == ExprKind::Ident && !findLocal(Recv.Name)) {
        ClassId C = P.findClass(Recv.Name);
        if (C != -1) {
          auto [OwnC, SIdx] = P.findStaticField(C, L.Name);
          if (OwnC == -1) {
            error(S.Line, "unknown static field " + Recv.Name + "." + L.Name);
            return;
          }
          TypedReg V = lowerExpr(B, R);
          V = coerce(B, V, P.classDef(OwnC).StaticFields[size_t(SIdx)].Type,
                     S.Line);
          B.putStatic(OwnC, SIdx, V.Reg);
          return;
        }
      }
      TypedReg Base = lowerExpr(B, Recv);
      const TypeInfo &BT = P.type(Base.Ty);
      if (BT.Kind != TypeKind::Object) {
        error(S.Line, "field assignment on non-object type " +
                          P.typeName(Base.Ty));
        return;
      }
      int32_t Idx = P.findFieldIndex(BT.Class, L.Name);
      if (Idx < 0) {
        error(S.Line, "unknown field '" + L.Name + "' in class " +
                          P.classDef(BT.Class).Name);
        return;
      }
      TypedReg V = lowerExpr(B, R);
      V = coerce(B, V, P.layout(BT.Class)[size_t(Idx)].Type, S.Line);
      B.putField(Base.Reg, Idx, V.Reg);
      return;
    }
    case ExprKind::Index: {
      TypedReg Arr = lowerExpr(B, *L.Kids[0]);
      const TypeInfo &AT = P.type(Arr.Ty);
      if (AT.Kind != TypeKind::Array) {
        error(S.Line, "indexing a non-array type " + P.typeName(Arr.Ty));
        return;
      }
      TypedReg Idx = lowerExpr(B, *L.Kids[1]);
      if (P.type(Idx.Ty).Kind != TypeKind::Int) {
        error(S.Line, "array index must be int");
        return;
      }
      TypedReg V = lowerExpr(B, R);
      V = coerce(B, V, AT.Elem, S.Line);
      B.astore(Arr.Reg, Idx.Reg, V.Reg);
      return;
    }
    default:
      error(S.Line, "invalid assignment target");
      return;
    }
  }

  // --- Expression lowering ------------------------------------------------------

  TypedReg lowerExpr(IrBuilder &B, AstExpr &E) {
    if (Failed)
      return {0, P.intType()};
    switch (E.K) {
    case ExprKind::IntLit:
      return {B.constInt(E.IntVal), P.intType()};
    case ExprKind::DoubleLit:
      return {B.constDouble(E.DblVal), P.doubleType()};
    case ExprKind::BoolLit:
      return {B.constBool(E.BoolVal), P.boolType()};
    case ExprKind::NullLit:
      return {B.constNull(), NullType};
    case ExprKind::StrLit:
      return {B.constString(P.internString(E.Name)), P.stringType()};
    case ExprKind::This:
      if (CurStatic) {
        error(E.Line, "'this' in a static context");
        return {0, P.intType()};
      }
      return {0, P.objectType(CurClass)};
    case ExprKind::Ident:
      return lowerIdent(B, E);
    case ExprKind::Unary:
      return lowerUnary(B, E);
    case ExprKind::Binary:
      return lowerBinary(B, E);
    case ExprKind::Call:
      return lowerCall(B, E);
    case ExprKind::New:
      return lowerNew(B, E);
    case ExprKind::NewArray: {
      TypeId Elem = resolveType(E.Ty);
      TypeId ArrTy = P.arrayType(Elem);
      TypedReg Len = lowerExpr(B, *E.Kids[0]);
      if (P.type(Len.Ty).Kind != TypeKind::Int) {
        error(E.Line, "array length must be int");
        return {0, ArrTy};
      }
      return {B.newArray(ArrTy, Len.Reg), ArrTy};
    }
    case ExprKind::Index: {
      TypedReg Arr = lowerExpr(B, *E.Kids[0]);
      const TypeInfo &AT = P.type(Arr.Ty);
      if (AT.Kind != TypeKind::Array) {
        error(E.Line, "indexing a non-array type " + P.typeName(Arr.Ty));
        return {0, P.intType()};
      }
      TypedReg Idx = lowerExpr(B, *E.Kids[1]);
      if (P.type(Idx.Ty).Kind != TypeKind::Int) {
        error(E.Line, "array index must be int");
        return {0, AT.Elem};
      }
      return {B.aload(Arr.Reg, Idx.Reg), AT.Elem};
    }
    case ExprKind::Member:
      return lowerMember(B, E);
    case ExprKind::Cast:
      return lowerCast(B, E);
    }
    error(E.Line, "internal: unhandled expression kind");
    return {0, P.intType()};
  }

  TypedReg lowerIdent(IrBuilder &B, AstExpr &E) {
    if (LocalVar *Var = findLocal(E.Name))
      return {Var->Reg, Var->Ty};
    if (!CurStatic) {
      int32_t Idx = P.findFieldIndex(CurClass, E.Name);
      if (Idx >= 0)
        return {B.getField(0, Idx), P.layout(CurClass)[size_t(Idx)].Type};
    }
    auto [OwnC, SIdx] = P.findStaticField(CurClass, E.Name);
    if (OwnC != -1)
      return {B.getStatic(OwnC, SIdx),
              P.classDef(OwnC).StaticFields[size_t(SIdx)].Type};
    error(E.Line, "unknown identifier '" + E.Name + "'");
    return {0, P.intType()};
  }

  TypedReg lowerUnary(IrBuilder &B, AstExpr &E) {
    TypedReg V = lowerExpr(B, *E.Kids[0]);
    if (E.UOp == UnaryOp::Neg) {
      TypeKind K = P.type(V.Ty).Kind;
      if (K != TypeKind::Int && K != TypeKind::Double) {
        error(E.Line, "negation of non-numeric type " + P.typeName(V.Ty));
        return V;
      }
      return {B.unop(Opcode::Neg, V.Reg), V.Ty};
    }
    if (P.type(V.Ty).Kind != TypeKind::Bool) {
      error(E.Line, "'!' applied to non-boolean type " + P.typeName(V.Ty));
      return V;
    }
    return {B.unop(Opcode::Not, V.Reg), V.Ty};
  }

  TypedReg lowerBinary(IrBuilder &B, AstExpr &E) {
    // Short-circuit forms first: they lower to control flow.
    if (E.BOp == BinaryOp::LAnd || E.BOp == BinaryOp::LOr) {
      bool IsAnd = E.BOp == BinaryOp::LAnd;
      TypedReg L = lowerExpr(B, *E.Kids[0]);
      requireBool(L, E.Line);
      uint16_t Result = B.newReg();
      B.move(Result, L.Reg);
      BlockId RhsB = B.newBlock();
      BlockId JoinB = B.newBlock();
      if (IsAnd)
        B.br(L.Reg, RhsB, JoinB);
      else
        B.br(L.Reg, JoinB, RhsB);
      B.setBlock(RhsB);
      TypedReg R = lowerExpr(B, *E.Kids[1]);
      requireBool(R, E.Line);
      B.move(Result, R.Reg);
      if (!B.blockTerminated())
        B.jmp(JoinB);
      B.setBlock(JoinB);
      return {Result, P.boolType()};
    }

    TypedReg L = lowerExpr(B, *E.Kids[0]);
    TypedReg R = lowerExpr(B, *E.Kids[1]);
    TypeKind LK = P.type(L.Ty).Kind;
    TypeKind RK = P.type(R.Ty).Kind;

    // String concatenation: either side String makes '+' a Concat.
    if (E.BOp == BinaryOp::Add &&
        (LK == TypeKind::String || RK == TypeKind::String))
      return {B.binop(Opcode::Concat, L.Reg, R.Reg), P.stringType()};

    auto PromoteNumeric = [&]() -> bool {
      bool LNum = LK == TypeKind::Int || LK == TypeKind::Double;
      bool RNum = RK == TypeKind::Int || RK == TypeKind::Double;
      if (!LNum || !RNum)
        return false;
      if (LK == TypeKind::Int && RK == TypeKind::Double) {
        L = {B.unop(Opcode::I2D, L.Reg), P.doubleType()};
        LK = TypeKind::Double;
      } else if (LK == TypeKind::Double && RK == TypeKind::Int) {
        R = {B.unop(Opcode::I2D, R.Reg), P.doubleType()};
        RK = TypeKind::Double;
      }
      return true;
    };

    switch (E.BOp) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: {
      if (!PromoteNumeric()) {
        error(E.Line, "arithmetic on non-numeric types");
        return {0, P.intType()};
      }
      Opcode Op = E.BOp == BinaryOp::Add   ? Opcode::Add
                  : E.BOp == BinaryOp::Sub ? Opcode::Sub
                  : E.BOp == BinaryOp::Mul ? Opcode::Mul
                  : E.BOp == BinaryOp::Div ? Opcode::Div
                                           : Opcode::Mod;
      return {B.binop(Op, L.Reg, R.Reg), L.Ty};
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (!PromoteNumeric()) {
        error(E.Line, "comparison of non-numeric types");
        return {0, P.boolType()};
      }
      Opcode Op = E.BOp == BinaryOp::Lt   ? Opcode::CmpLt
                  : E.BOp == BinaryOp::Le ? Opcode::CmpLe
                  : E.BOp == BinaryOp::Gt ? Opcode::CmpGt
                                          : Opcode::CmpGe;
      return {B.binop(Op, L.Reg, R.Reg), P.boolType()};
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool LRef = isRefKind(LK) || L.Ty == NullType;
      bool RRef = isRefKind(RK) || R.Ty == NullType;
      if (LRef != RRef) {
        error(E.Line, "equality between reference and non-reference types");
        return {0, P.boolType()};
      }
      if (!LRef) {
        if (LK == TypeKind::Bool && RK == TypeKind::Bool) {
          // fall through to compare
        } else if (!PromoteNumeric()) {
          error(E.Line, "equality on incompatible types");
          return {0, P.boolType()};
        }
      }
      Opcode Op = E.BOp == BinaryOp::Eq ? Opcode::CmpEq : Opcode::CmpNe;
      return {B.binop(Op, L.Reg, R.Reg), P.boolType()};
    }
    case BinaryOp::BAnd:
    case BinaryOp::BOr:
    case BinaryOp::BXor:
    case BinaryOp::Shl:
    case BinaryOp::Shr: {
      if (LK != TypeKind::Int || RK != TypeKind::Int) {
        error(E.Line, "bitwise operation on non-int types");
        return {0, P.intType()};
      }
      Opcode Op = E.BOp == BinaryOp::BAnd  ? Opcode::BitAnd
                  : E.BOp == BinaryOp::BOr ? Opcode::BitOr
                  : E.BOp == BinaryOp::BXor ? Opcode::BitXor
                  : E.BOp == BinaryOp::Shl  ? Opcode::Shl
                                            : Opcode::Shr;
      return {B.binop(Op, L.Reg, R.Reg), P.intType()};
    }
    default:
      error(E.Line, "internal: unhandled binary operator");
      return {0, P.intType()};
    }
  }

  TypedReg lowerMember(IrBuilder &B, AstExpr &E) {
    AstExpr &Recv = *E.Kids[0];
    // ClassName.staticField
    if (Recv.K == ExprKind::Ident && !findLocal(Recv.Name)) {
      ClassId C = P.findClass(Recv.Name);
      if (C != -1) {
        auto [OwnC, SIdx] = P.findStaticField(C, E.Name);
        if (OwnC == -1) {
          error(E.Line, "unknown static field " + Recv.Name + "." + E.Name);
          return {0, P.intType()};
        }
        return {B.getStatic(OwnC, SIdx),
                P.classDef(OwnC).StaticFields[size_t(SIdx)].Type};
      }
    }
    TypedReg Base = lowerExpr(B, Recv);
    const TypeInfo &BT = P.type(Base.Ty);
    if (BT.Kind == TypeKind::Array && E.Name == "length")
      return {B.arrayLen(Base.Reg), P.intType()};
    if (BT.Kind != TypeKind::Object) {
      error(E.Line, "member access on non-object type " + P.typeName(Base.Ty));
      return {0, P.intType()};
    }
    int32_t Idx = P.findFieldIndex(BT.Class, E.Name);
    if (Idx < 0) {
      error(E.Line, "unknown field '" + E.Name + "' in class " +
                        P.classDef(BT.Class).Name);
      return {0, P.intType()};
    }
    return {B.getField(Base.Reg, Idx), P.layout(BT.Class)[size_t(Idx)].Type};
  }

  TypedReg lowerCast(IrBuilder &B, AstExpr &E) {
    TypedReg V = lowerExpr(B, *E.Kids[0]);
    TypeId Want = resolveType(E.Ty);
    TypeKind FK = P.type(V.Ty).Kind;
    TypeKind TK = P.type(Want).Kind;
    if (FK == TypeKind::Int && TK == TypeKind::Double)
      return {B.unop(Opcode::I2D, V.Reg), Want};
    if (FK == TypeKind::Double && TK == TypeKind::Int)
      return {B.unop(Opcode::D2I, V.Reg), Want};
    if (FK == TK && FK != TypeKind::Object && FK != TypeKind::Array)
      return {V.Reg, Want};
    if ((isRefKind(FK) || V.Ty == NullType) && isRefKind(TK)) {
      // Reference casts are unchecked retypes: the interpreter is safely
      // dynamically typed and workloads are type-correct by construction.
      return {V.Reg, Want};
    }
    error(E.Line, "invalid cast from " + P.typeName(V.Ty) + " to " +
                      P.typeName(Want));
    return {V.Reg, Want};
  }

  TypedReg lowerNew(IrBuilder &B, AstExpr &E) {
    ClassId C = P.findClass(E.Ty.Base);
    if (C == -1) {
      error(E.Line, "unknown class '" + E.Ty.Base + "'");
      return {0, P.intType()};
    }
    if (P.classDef(C).IsAbstract) {
      error(E.Line, "cannot instantiate abstract class " + E.Ty.Base);
      return {0, P.objectType(C)};
    }
    std::vector<TypedReg> Args;
    std::vector<TypeId> ArgTys;
    for (ExprPtr &A : E.Args) {
      TypedReg V = lowerExpr(B, *A);
      Args.push_back(V);
      ArgTys.push_back(V.Ty);
    }
    MethodId Ctor = findCtor(C, ArgTys);
    if (Ctor == -1) {
      error(E.Line, "no matching constructor for " + E.Ty.Base);
      return {0, P.objectType(C)};
    }
    uint16_t Obj = B.newObject(C);
    const Method &CM = P.method(Ctor);
    std::vector<uint16_t> CallRegs{Obj};
    for (size_t I = 0; I < Args.size(); ++I) {
      TypedReg V = coerce(B, Args[I], CM.ParamTypes[I + 1], E.Line);
      CallRegs.push_back(V.Reg);
    }
    B.callStatic(Ctor, CallRegs);
    return {Obj, P.objectType(C)};
  }

  /// Finds a callable method named \p Name on class \p C (searching the
  /// superclass chain) whose parameters accept \p ArgTys.
  MethodId findMethodForCall(ClassId C, const std::string &Name,
                             const std::vector<TypeId> &ArgTys) {
    for (ClassId Cur = C; Cur != -1; Cur = P.classDef(Cur).Super) {
      MethodId Exact = -1;
      MethodId Compatible = -1;
      for (MethodId M : P.classDef(Cur).Methods) {
        const Method &Meth = P.method(M);
        if (Meth.Name != Name || Meth.IsClinit)
          continue;
        size_t Skip = Meth.IsStatic ? 0 : 1;
        if (Meth.Name == "<init>")
          Skip = 1;
        if (Meth.ParamTypes.size() - Skip != ArgTys.size())
          continue;
        bool AllExact = true;
        bool AllOk = true;
        for (size_t I = 0; I < ArgTys.size(); ++I) {
          TypeId Want = Meth.ParamTypes[I + Skip];
          if (ArgTys[I] != Want)
            AllExact = false;
          if (!isAssignable(ArgTys[I], Want) && ArgTys[I] != NullType)
            AllOk = false;
        }
        if (AllExact && Exact == -1)
          Exact = M;
        if (AllOk && Compatible == -1)
          Compatible = M;
      }
      if (Exact != -1)
        return Exact;
      if (Compatible != -1)
        return Compatible;
    }
    return -1;
  }

  TypedReg emitCall(IrBuilder &B, MethodId Target,
                    const std::vector<TypedReg> &Args, int Line,
                    uint16_t ThisReg, bool HasThis, bool Virtual) {
    const Method &Meth = P.method(Target);
    std::vector<uint16_t> CallRegs;
    size_t Skip = HasThis ? 1 : 0;
    if (HasThis)
      CallRegs.push_back(ThisReg);
    for (size_t I = 0; I < Args.size(); ++I) {
      TypedReg V = coerce(B, Args[I], Meth.ParamTypes[I + Skip], Line);
      CallRegs.push_back(V.Reg);
    }
    uint16_t Dst = Virtual ? B.callVirtual(Target, CallRegs)
                           : B.callStatic(Target, CallRegs);
    return {Dst, Meth.RetType};
  }

  TypedReg lowerCall(IrBuilder &B, AstExpr &E) {
    // Receiverless call: this.m(...) or own static m(...).
    if (!E.Kids[0]) {
      std::vector<TypedReg> Args;
      std::vector<TypeId> ArgTys;
      for (ExprPtr &A : E.Args) {
        TypedReg V = lowerExpr(B, *A);
        Args.push_back(V);
        ArgTys.push_back(V.Ty);
      }
      MethodId Target = findMethodForCall(CurClass, E.Name, ArgTys);
      if (Target == -1) {
        error(E.Line, "unknown method '" + E.Name + "'");
        return {0, P.intType()};
      }
      const Method &Meth = P.method(Target);
      if (Meth.IsStatic)
        return emitCall(B, Target, Args, E.Line, 0, false, false);
      if (CurStatic) {
        error(E.Line, "instance method '" + E.Name +
                          "' called from a static context");
        return {0, P.intType()};
      }
      return emitCall(B, Target, Args, E.Line, 0, true, true);
    }

    AstExpr &Recv = *E.Kids[0];
    // Builtin and static-qualified calls: Name.method(...).
    if (Recv.K == ExprKind::Ident && !findLocal(Recv.Name)) {
      if (Recv.Name == "Sys" || Recv.Name == "Str")
        return lowerBuiltinCall(B, E, Recv.Name);
      ClassId C = P.findClass(Recv.Name);
      if (C != -1) {
        std::vector<TypedReg> Args;
        std::vector<TypeId> ArgTys;
        for (ExprPtr &A : E.Args) {
          TypedReg V = lowerExpr(B, *A);
          Args.push_back(V);
          ArgTys.push_back(V.Ty);
        }
        MethodId Target = findMethodForCall(C, E.Name, ArgTys);
        if (Target == -1 || !P.method(Target).IsStatic) {
          error(E.Line, "unknown static method " + Recv.Name + "." + E.Name);
          return {0, P.intType()};
        }
        return emitCall(B, Target, Args, E.Line, 0, false, false);
      }
    }

    // Virtual call on an expression receiver.
    TypedReg Base = lowerExpr(B, Recv);
    const TypeInfo &BT = P.type(Base.Ty);
    if (BT.Kind != TypeKind::Object) {
      error(E.Line, "method call on non-object type " + P.typeName(Base.Ty));
      return {0, P.intType()};
    }
    std::vector<TypedReg> Args;
    std::vector<TypeId> ArgTys;
    for (ExprPtr &A : E.Args) {
      TypedReg V = lowerExpr(B, *A);
      Args.push_back(V);
      ArgTys.push_back(V.Ty);
    }
    MethodId Target = findMethodForCall(BT.Class, E.Name, ArgTys);
    if (Target == -1) {
      error(E.Line, "unknown method '" + E.Name + "' on class " +
                        P.classDef(BT.Class).Name);
      return {0, P.intType()};
    }
    const Method &Meth = P.method(Target);
    if (Meth.IsStatic && Meth.Name != "<init>")
      return emitCall(B, Target, Args, E.Line, 0, false, false);
    return emitCall(B, Target, Args, E.Line, Base.Reg, true, true);
  }

  TypedReg lowerBuiltinCall(IrBuilder &B, AstExpr &E,
                            const std::string &Qual) {
    struct Builtin {
      const char *Class;
      const char *Name;
      NativeId Native;
      std::vector<TypeKind> Params;
      TypeKind Ret;
    };
    static const std::vector<Builtin> Builtins = {
        {"Sys", "print", NativeId::Print, {TypeKind::String}, TypeKind::Void},
        {"Sys", "printInt", NativeId::PrintInt, {TypeKind::Int},
         TypeKind::Void},
        {"Sys", "sqrt", NativeId::Sqrt, {TypeKind::Double}, TypeKind::Double},
        {"Sys", "sin", NativeId::Sin, {TypeKind::Double}, TypeKind::Double},
        {"Sys", "cos", NativeId::Cos, {TypeKind::Double}, TypeKind::Double},
        {"Sys", "floor", NativeId::Floor, {TypeKind::Double},
         TypeKind::Double},
        {"Sys", "respond", NativeId::Respond, {TypeKind::String},
         TypeKind::Void},
        {"Sys", "readResource", NativeId::ReadResource, {TypeKind::String},
         TypeKind::String},
        {"Sys", "yield", NativeId::Yield, {}, TypeKind::Void},
        {"Str", "length", NativeId::StrLen, {TypeKind::String}, TypeKind::Int},
        {"Str", "charAt", NativeId::StrCharAt,
         {TypeKind::String, TypeKind::Int}, TypeKind::Int},
        {"Str", "substring", NativeId::StrSub,
         {TypeKind::String, TypeKind::Int, TypeKind::Int}, TypeKind::String},
        {"Str", "equals", NativeId::StrEquals,
         {TypeKind::String, TypeKind::String}, TypeKind::Bool},
        {"Str", "fromInt", NativeId::StrFromInt, {TypeKind::Int},
         TypeKind::String},
        {"Str", "fromDouble", NativeId::StrFromDouble, {TypeKind::Double},
         TypeKind::String},
        {"Str", "intern", NativeId::StrIntern, {TypeKind::String},
         TypeKind::String},
    };

    // Sys.spawn("Class.method") resolves its target at compile time.
    if (Qual == "Sys" && E.Name == "spawn") {
      if (E.Args.size() != 1 || E.Args[0]->K != ExprKind::StrLit) {
        error(E.Line, "Sys.spawn expects a \"Class.method\" string literal");
        return {0, P.voidType()};
      }
      const std::string &Ref = E.Args[0]->Name;
      size_t Dot = Ref.find('.');
      if (Dot == std::string::npos) {
        error(E.Line, "Sys.spawn target must be \"Class.method\"");
        return {0, P.voidType()};
      }
      ClassId C = P.findClass(Ref.substr(0, Dot));
      MethodId Target =
          C == -1 ? -1 : P.findDeclaredMethod(C, Ref.substr(Dot + 1), {});
      if (Target == -1 || !P.method(Target).IsStatic) {
        error(E.Line, "Sys.spawn target '" + Ref +
                          "' is not a static no-argument method");
        return {0, P.voidType()};
      }
      uint16_t Dst = B.callNative(NativeId::Spawn, {}, Target);
      return {Dst, P.voidType()};
    }

    for (const Builtin &Bi : Builtins) {
      if (Qual != Bi.Class || E.Name != Bi.Name)
        continue;
      if (E.Args.size() != Bi.Params.size()) {
        error(E.Line, std::string("wrong number of arguments to ") + Qual +
                          "." + E.Name);
        return {0, P.voidType()};
      }
      std::vector<uint16_t> Regs;
      for (size_t I = 0; I < E.Args.size(); ++I) {
        TypedReg V = lowerExpr(B, *E.Args[I]);
        TypeId Want = typeOfKind(Bi.Params[I]);
        V = coerce(B, V, Want, E.Line);
        Regs.push_back(V.Reg);
      }
      uint16_t Dst = B.callNative(Bi.Native, Regs);
      return {Dst, typeOfKind(Bi.Ret)};
    }
    error(E.Line, "unknown builtin " + Qual + "." + E.Name);
    return {0, P.voidType()};
  }

  TypeId typeOfKind(TypeKind K) {
    switch (K) {
    case TypeKind::Int:
      return P.intType();
    case TypeKind::Double:
      return P.doubleType();
    case TypeKind::Bool:
      return P.boolType();
    case TypeKind::String:
      return P.stringType();
    default:
      return P.voidType();
    }
  }

  // --- State -----------------------------------------------------------------

  std::vector<AstUnit> &Units;
  Program &P;
  std::vector<std::string> &Errors;
  bool Failed = false;

  ClassId ObjectClass = -1;
  /// Type id of the null literal (adapts to any reference type).
  TypeId NullType = -1;

  std::unordered_map<ClassId, AstClass *> ClassAst;
  std::unordered_map<MethodId, AstMethod *> MethodAst;
  std::vector<MethodId> SynthCtors;

  ClassId CurClass = -1;
  MethodId CurMethod = -1;
  bool CurStatic = true;
  std::vector<std::unordered_map<std::string, LocalVar>> Scopes;
  std::vector<LoopTargets> Loops;
};

} // namespace

bool nimg::compileUnits(std::vector<AstUnit> &Units, Program &P,
                        std::vector<std::string> &Errors) {
  return Compiler(Units, P, Errors).run();
}

bool nimg::compileSources(const std::vector<std::string> &Sources, Program &P,
                          std::vector<std::string> &Errors) {
  std::vector<AstUnit> Units;
  for (const std::string &Src : Sources) {
    AstUnit Unit;
    if (!parseUnit(Src, Unit, Errors))
      return false;
    Units.push_back(std::move(Unit));
  }
  return compileUnits(Units, P, Errors);
}
