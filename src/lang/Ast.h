//===- Ast.h - MiniJava abstract syntax tree --------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniJava. Nodes are unified records discriminated by kind enums
/// (LLVM-style, no RTTI); the compiler (Sema + lowering) walks these and
/// emits IR directly.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_LANG_AST_H
#define NIMG_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nimg {

struct AstExpr;
struct AstStmt;
using ExprPtr = std::unique_ptr<AstExpr>;
using StmtPtr = std::unique_ptr<AstStmt>;

/// A syntactic type: a base name ("int", "double", "boolean", "String",
/// "void", or a class name) plus array rank.
struct AstType {
  std::string Base;
  int Rank = 0;
  int Line = 0;
};

enum class ExprKind : uint8_t {
  IntLit,
  DoubleLit,
  BoolLit,
  NullLit,
  StrLit,
  This,
  Ident,    ///< Name; resolved to a local, this-field, or static field.
  Unary,    ///< Op applied to Kids[0].
  Binary,   ///< Kids[0] Op Kids[1].
  Call,     ///< Callee semantics depend on Kids[0]:
            ///<  - null receiver + Name: unqualified call on `this`/own class
            ///<  - Kids[0] receiver expr + Name: virtual call
            ///< QualClass set: static call Class.Name(...)
  New,      ///< new Type.Base(args)
  NewArray, ///< new ElemType[Kids[0]] — ElemType includes extra ranks
  Index,    ///< Kids[0][Kids[1]]
  Member,   ///< Kids[0].Name — field access or array .length
  Cast,     ///< (Type) Kids[0]
};

enum class UnaryOp : uint8_t { Neg, Not };

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LAnd,
  LOr,
  BAnd,
  BOr,
  BXor,
  Shl,
  Shr,
};

struct AstExpr {
  ExprKind K;
  int Line = 0;

  int64_t IntVal = 0;
  double DblVal = 0;
  bool BoolVal = false;
  std::string Name;      ///< Identifier / member / callee name.
  std::string QualClass; ///< For Call: explicit class qualifier.
  AstType Ty;            ///< For New / NewArray / Cast.
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  std::vector<ExprPtr> Kids;
  std::vector<ExprPtr> Args; ///< For Call / New.
};

enum class StmtKind : uint8_t {
  Block,
  VarDecl, ///< Ty Name = Init? ;
  ExprStmt,
  Assign,  ///< LHS (Kids[0]) = RHS (Kids[1]); LHS is Ident/Member/Index.
  If,      ///< Cond; Then = Body[0]; Else = Body[1] (may be null).
  While,   ///< Cond; Body[0].
  For,     ///< Init (may be null); Cond; Step (may be null); Body[0].
  Return,  ///< Value in Cond (may be null).
  Break,
  Continue,
  SuperCall, ///< super(args); only valid as a constructor statement.
};

struct AstStmt {
  StmtKind K;
  int Line = 0;

  AstType Ty;       ///< For VarDecl.
  std::string Name; ///< For VarDecl.
  ExprPtr Cond;     ///< Condition / return value / ExprStmt expression.
  StmtPtr Init;     ///< For For.
  StmtPtr Step;     ///< For For (an Assign or ExprStmt).
  std::vector<ExprPtr> Kids;  ///< Assign operands.
  std::vector<StmtPtr> Body;  ///< Block statements / branch bodies.
  std::vector<ExprPtr> Args;  ///< SuperCall arguments.
};

/// A method, constructor, or static initializer block declaration.
struct AstMethod {
  std::string Name; ///< Empty for constructors and static init blocks.
  bool IsStatic = false;
  bool IsAbstract = false;
  bool IsCtor = false;
  bool IsStaticInit = false;
  AstType RetTy;
  std::vector<std::pair<AstType, std::string>> Params;
  StmtPtr Body; ///< Null for abstract methods.
  int Line = 0;
};

/// A field declaration, possibly with an initializer (static initializers
/// are collected into the class's <clinit>).
struct AstField {
  std::string Name;
  AstType Ty;
  bool IsStatic = false;
  bool IsFinal = false;
  ExprPtr Init;
  int Line = 0;
};

struct AstClass {
  std::string Name;
  std::string SuperName; ///< Empty when extending the implicit Object root.
  bool IsAbstract = false;
  std::vector<AstField> Fields;
  std::vector<AstMethod> Methods;
  int Line = 0;
};

/// One parsed compilation unit (a source string).
struct AstUnit {
  std::vector<AstClass> Classes;
};

} // namespace nimg

#endif // NIMG_LANG_AST_H
