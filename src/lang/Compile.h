//===- Compile.h - MiniJava semantic analysis and lowering -----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJava front end: builds a Program (classes, fields, methods,
/// <clinit>/<init> synthesis) from parsed units, type-checks, and lowers
/// statement/expression trees to the register IR.
///
/// Builtins: the pseudo-classes `Sys` and `Str` expose native methods
/// (printing, math, string operations, thread spawn, microservice respond,
/// resource loading); every class without `extends` implicitly extends the
/// root class `Object`.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_LANG_COMPILE_H
#define NIMG_LANG_COMPILE_H

#include "src/ir/Program.h"
#include "src/lang/Ast.h"

#include <string>
#include <vector>

namespace nimg {

/// Compiles parsed units into \p P. On success, P.MainMethod points at
/// `Main.main()` when a class `Main` with a static no-argument `main`
/// exists (otherwise it is left at -1 and the caller decides). Returns
/// false and fills \p Errors on any semantic error.
bool compileUnits(std::vector<AstUnit> &Units, Program &P,
                  std::vector<std::string> &Errors);

/// Parses and compiles source strings. Convenience for tests, workloads,
/// and examples.
bool compileSources(const std::vector<std::string> &Sources, Program &P,
                    std::vector<std::string> &Errors);

} // namespace nimg

#endif // NIMG_LANG_COMPILE_H
