//===- Parser.cpp - MiniJava recursive-descent parser ----------------------===//

#include "src/lang/Parser.h"

#include <cassert>

using namespace nimg;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, AstUnit &Unit,
         std::vector<std::string> &Errors)
      : Toks(std::move(Toks)), Unit(Unit), Errors(Errors) {}

  bool run() {
    while (!check(TokKind::Eof)) {
      if (Failed)
        return false;
      if (!parseClass())
        return false;
    }
    return !Failed;
  }

private:
  // --- Token helpers -------------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool check(TokKind K, size_t Ahead = 0) const { return peek(Ahead).Kind == K; }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }
  bool match(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Where) {
    if (match(K))
      return true;
    error(std::string("expected ") + tokKindName(K) + " " + Where +
          ", found " + tokKindName(peek().Kind));
    return false;
  }
  void error(const std::string &Msg) {
    if (!Failed)
      Errors.push_back("line " + std::to_string(peek().Line) + ": " + Msg);
    Failed = true;
  }

  bool isTypeStart(size_t Ahead = 0) const {
    switch (peek(Ahead).Kind) {
    case TokKind::KwInt:
    case TokKind::KwDouble:
    case TokKind::KwBoolean:
    case TokKind::KwString:
    case TokKind::KwVoid:
    case TokKind::Ident:
      return true;
    default:
      return false;
    }
  }

  // --- Types ---------------------------------------------------------------

  bool parseType(AstType &Ty) {
    Ty.Line = peek().Line;
    switch (peek().Kind) {
    case TokKind::KwInt:
      Ty.Base = "int";
      break;
    case TokKind::KwDouble:
      Ty.Base = "double";
      break;
    case TokKind::KwBoolean:
      Ty.Base = "boolean";
      break;
    case TokKind::KwString:
      Ty.Base = "String";
      break;
    case TokKind::KwVoid:
      Ty.Base = "void";
      break;
    case TokKind::Ident:
      Ty.Base = peek().Text;
      break;
    default:
      error("expected a type");
      return false;
    }
    advance();
    while (check(TokKind::LBracket) && check(TokKind::RBracket, 1)) {
      advance();
      advance();
      ++Ty.Rank;
    }
    return true;
  }

  // --- Declarations ----------------------------------------------------------

  bool parseClass() {
    AstClass Cls;
    Cls.Line = peek().Line;
    if (match(TokKind::KwAbstract))
      Cls.IsAbstract = true;
    if (!expect(TokKind::KwClass, "at class declaration"))
      return false;
    if (!check(TokKind::Ident)) {
      error("expected class name");
      return false;
    }
    Cls.Name = advance().Text;
    if (match(TokKind::KwExtends)) {
      if (!check(TokKind::Ident)) {
        error("expected superclass name");
        return false;
      }
      Cls.SuperName = advance().Text;
    }
    if (!expect(TokKind::LBrace, "after class header"))
      return false;
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof)) {
        error("unterminated class body");
        return false;
      }
      if (!parseMember(Cls))
        return false;
    }
    advance(); // '}'
    Unit.Classes.push_back(std::move(Cls));
    return true;
  }

  bool parseMember(AstClass &Cls) {
    int Line = peek().Line;
    bool IsStatic = false, IsFinal = false, IsAbstract = false;
    // "static { ... }" is a static initializer block.
    if (check(TokKind::KwStatic) && check(TokKind::LBrace, 1)) {
      advance();
      AstMethod Init;
      Init.IsStatic = true;
      Init.IsStaticInit = true;
      Init.Line = Line;
      Init.RetTy = {"void", 0, Line};
      Init.Body = parseBlock();
      if (Failed)
        return false;
      Cls.Methods.push_back(std::move(Init));
      return true;
    }
    while (true) {
      if (match(TokKind::KwStatic)) {
        IsStatic = true;
        continue;
      }
      if (match(TokKind::KwFinal)) {
        IsFinal = true;
        continue;
      }
      if (match(TokKind::KwAbstract)) {
        IsAbstract = true;
        continue;
      }
      break;
    }
    // Constructor: ClassName '(' ...
    if (check(TokKind::Ident) && peek().Text == Cls.Name &&
        check(TokKind::LParen, 1)) {
      AstMethod Ctor;
      Ctor.IsCtor = true;
      Ctor.Line = Line;
      Ctor.RetTy = {"void", 0, Line};
      advance(); // class name
      if (!parseParams(Ctor.Params))
        return false;
      Ctor.Body = parseBlock();
      if (Failed)
        return false;
      Cls.Methods.push_back(std::move(Ctor));
      return true;
    }
    AstType Ty;
    if (!parseType(Ty))
      return false;
    if (!check(TokKind::Ident)) {
      error("expected member name");
      return false;
    }
    std::string Name = advance().Text;
    if (check(TokKind::LParen)) {
      AstMethod M;
      M.Name = std::move(Name);
      M.IsStatic = IsStatic;
      M.IsAbstract = IsAbstract;
      M.RetTy = std::move(Ty);
      M.Line = Line;
      if (!parseParams(M.Params))
        return false;
      if (M.IsAbstract) {
        if (!expect(TokKind::Semi, "after abstract method"))
          return false;
      } else {
        M.Body = parseBlock();
        if (Failed)
          return false;
      }
      Cls.Methods.push_back(std::move(M));
      return true;
    }
    // Field (possibly several comma-separated declarators).
    while (true) {
      AstField F;
      F.Name = Name;
      F.Ty = Ty;
      F.IsStatic = IsStatic;
      F.IsFinal = IsFinal;
      F.Line = Line;
      if (match(TokKind::Assign)) {
        F.Init = parseExpr();
        if (Failed)
          return false;
      }
      Cls.Fields.push_back(std::move(F));
      if (match(TokKind::Comma)) {
        if (!check(TokKind::Ident)) {
          error("expected field name after ','");
          return false;
        }
        Name = advance().Text;
        continue;
      }
      break;
    }
    return expect(TokKind::Semi, "after field declaration");
  }

  bool parseParams(std::vector<std::pair<AstType, std::string>> &Params) {
    if (!expect(TokKind::LParen, "at parameter list"))
      return false;
    if (match(TokKind::RParen))
      return true;
    while (true) {
      AstType Ty;
      if (!parseType(Ty))
        return false;
      if (!check(TokKind::Ident)) {
        error("expected parameter name");
        return false;
      }
      Params.emplace_back(std::move(Ty), advance().Text);
      if (match(TokKind::Comma))
        continue;
      break;
    }
    return expect(TokKind::RParen, "after parameters");
  }

  // --- Statements --------------------------------------------------------------

  StmtPtr makeStmt(StmtKind K) {
    auto S = std::make_unique<AstStmt>();
    S->K = K;
    S->Line = peek().Line;
    return S;
  }

  StmtPtr parseBlock() {
    StmtPtr Block = makeStmt(StmtKind::Block);
    if (!expect(TokKind::LBrace, "at block"))
      return Block;
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof)) {
        error("unterminated block");
        return Block;
      }
      StmtPtr S = parseStmt();
      if (Failed)
        return Block;
      Block->Body.push_back(std::move(S));
    }
    advance();
    return Block;
  }

  /// Returns true when the upcoming tokens start a local variable
  /// declaration rather than an expression.
  bool looksLikeVarDecl() const {
    switch (peek().Kind) {
    case TokKind::KwInt:
    case TokKind::KwDouble:
    case TokKind::KwBoolean:
    case TokKind::KwString:
      return true;
    case TokKind::Ident:
      // "Foo x" or "Foo[] x".
      if (check(TokKind::Ident, 1))
        return true;
      if (check(TokKind::LBracket, 1) && check(TokKind::RBracket, 2))
        return true;
      return false;
    default:
      return false;
    }
  }

  StmtPtr parseVarDecl() {
    StmtPtr S = makeStmt(StmtKind::VarDecl);
    if (!parseType(S->Ty))
      return S;
    if (!check(TokKind::Ident)) {
      error("expected variable name");
      return S;
    }
    S->Name = advance().Text;
    if (match(TokKind::Assign))
      S->Cond = parseExpr();
    return S;
  }

  /// Parses `expr` or `lvalue = expr` (no trailing ';').
  StmtPtr parseExprOrAssign() {
    ExprPtr E = parseExpr();
    if (Failed)
      return makeStmt(StmtKind::ExprStmt);
    if (match(TokKind::Assign)) {
      StmtPtr S = makeStmt(StmtKind::Assign);
      S->Kids.push_back(std::move(E));
      S->Kids.push_back(parseExpr());
      return S;
    }
    StmtPtr S = makeStmt(StmtKind::ExprStmt);
    S->Cond = std::move(E);
    return S;
  }

  StmtPtr parseStmt() {
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwIf: {
      StmtPtr S = makeStmt(StmtKind::If);
      advance();
      expect(TokKind::LParen, "after 'if'");
      S->Cond = parseExpr();
      expect(TokKind::RParen, "after if condition");
      S->Body.push_back(parseStmt());
      if (match(TokKind::KwElse))
        S->Body.push_back(parseStmt());
      else
        S->Body.push_back(nullptr);
      return S;
    }
    case TokKind::KwWhile: {
      StmtPtr S = makeStmt(StmtKind::While);
      advance();
      expect(TokKind::LParen, "after 'while'");
      S->Cond = parseExpr();
      expect(TokKind::RParen, "after while condition");
      S->Body.push_back(parseStmt());
      return S;
    }
    case TokKind::KwFor: {
      StmtPtr S = makeStmt(StmtKind::For);
      advance();
      expect(TokKind::LParen, "after 'for'");
      if (!check(TokKind::Semi)) {
        if (looksLikeVarDecl())
          S->Init = parseVarDecl();
        else
          S->Init = parseExprOrAssign();
      }
      expect(TokKind::Semi, "after for initializer");
      if (!check(TokKind::Semi))
        S->Cond = parseExpr();
      expect(TokKind::Semi, "after for condition");
      if (!check(TokKind::RParen))
        S->Step = parseExprOrAssign();
      expect(TokKind::RParen, "after for step");
      S->Body.push_back(parseStmt());
      return S;
    }
    case TokKind::KwReturn: {
      StmtPtr S = makeStmt(StmtKind::Return);
      advance();
      if (!check(TokKind::Semi))
        S->Cond = parseExpr();
      expect(TokKind::Semi, "after return");
      return S;
    }
    case TokKind::KwBreak: {
      StmtPtr S = makeStmt(StmtKind::Break);
      advance();
      expect(TokKind::Semi, "after 'break'");
      return S;
    }
    case TokKind::KwContinue: {
      StmtPtr S = makeStmt(StmtKind::Continue);
      advance();
      expect(TokKind::Semi, "after 'continue'");
      return S;
    }
    case TokKind::KwSuper: {
      StmtPtr S = makeStmt(StmtKind::SuperCall);
      advance();
      expect(TokKind::LParen, "after 'super'");
      parseArgs(S->Args);
      expect(TokKind::Semi, "after super call");
      return S;
    }
    default: {
      if (looksLikeVarDecl()) {
        StmtPtr S = parseVarDecl();
        expect(TokKind::Semi, "after variable declaration");
        return S;
      }
      StmtPtr S = parseExprOrAssign();
      expect(TokKind::Semi, "after statement");
      return S;
    }
    }
  }

  // --- Expressions ----------------------------------------------------------

  ExprPtr makeExpr(ExprKind K) {
    auto E = std::make_unique<AstExpr>();
    E->K = K;
    E->Line = peek().Line;
    return E;
  }

  void parseArgs(std::vector<ExprPtr> &Args) {
    if (match(TokKind::RParen))
      return;
    while (true) {
      Args.push_back(parseExpr());
      if (Failed)
        return;
      if (match(TokKind::Comma))
        continue;
      break;
    }
    expect(TokKind::RParen, "after arguments");
  }

  ExprPtr parseExpr() { return parseBinary(0); }

  /// Binary operator precedence levels, lowest first.
  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::OrOr:
      return 1;
    case TokKind::AndAnd:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  static BinaryOp binaryOpOf(TokKind K) {
    switch (K) {
    case TokKind::OrOr:
      return BinaryOp::LOr;
    case TokKind::AndAnd:
      return BinaryOp::LAnd;
    case TokKind::Pipe:
      return BinaryOp::BOr;
    case TokKind::Caret:
      return BinaryOp::BXor;
    case TokKind::Amp:
      return BinaryOp::BAnd;
    case TokKind::EqEq:
      return BinaryOp::Eq;
    case TokKind::NotEq:
      return BinaryOp::Ne;
    case TokKind::Lt:
      return BinaryOp::Lt;
    case TokKind::Le:
      return BinaryOp::Le;
    case TokKind::Gt:
      return BinaryOp::Gt;
    case TokKind::Ge:
      return BinaryOp::Ge;
    case TokKind::Shl:
      return BinaryOp::Shl;
    case TokKind::Shr:
      return BinaryOp::Shr;
    case TokKind::Plus:
      return BinaryOp::Add;
    case TokKind::Minus:
      return BinaryOp::Sub;
    case TokKind::Star:
      return BinaryOp::Mul;
    case TokKind::Slash:
      return BinaryOp::Div;
    default:
      return BinaryOp::Mod;
    }
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr Left = parseUnary();
    while (!Failed) {
      int Prec = precedenceOf(peek().Kind);
      if (Prec < MinPrec || Prec < 0)
        break;
      TokKind OpTok = advance().Kind;
      ExprPtr Right = parseBinary(Prec + 1);
      ExprPtr Bin = makeExpr(ExprKind::Binary);
      Bin->BOp = binaryOpOf(OpTok);
      Bin->Line = Left->Line;
      Bin->Kids.push_back(std::move(Left));
      Bin->Kids.push_back(std::move(Right));
      Left = std::move(Bin);
    }
    return Left;
  }

  /// Returns true when the token can begin an expression — used to
  /// disambiguate casts from parenthesized expressions.
  static bool startsExpression(TokKind K) {
    switch (K) {
    case TokKind::Ident:
    case TokKind::IntLit:
    case TokKind::DoubleLit:
    case TokKind::StringLit:
    case TokKind::KwThis:
    case TokKind::KwNew:
    case TokKind::KwTrue:
    case TokKind::KwFalse:
    case TokKind::KwNull:
    case TokKind::LParen:
    case TokKind::Bang:
      return true;
    default:
      return false;
    }
  }

  /// Detects "(Type) expr" at the current '(' token.
  bool looksLikeCast() const {
    if (!check(TokKind::LParen))
      return false;
    size_t I = 1;
    switch (peek(I).Kind) {
    case TokKind::KwInt:
    case TokKind::KwDouble:
    case TokKind::KwBoolean:
    case TokKind::KwString:
    case TokKind::Ident:
      break;
    default:
      return false;
    }
    ++I;
    while (check(TokKind::LBracket, I) && check(TokKind::RBracket, I + 1))
      I += 2;
    if (!check(TokKind::RParen, I))
      return false;
    // Primitive casts are unambiguous: "(int)" can never be a parenthesized
    // expression. "(Name)" needs the next token to start an expression and
    // not be '(' (so "(x) - y" and "(f)(g)" stay expressions).
    if (peek(1).Kind != TokKind::Ident)
      return true;
    TokKind After = peek(I + 1).Kind;
    return startsExpression(After) && After != TokKind::LParen;
  }

  ExprPtr parseUnary() {
    if (check(TokKind::Minus) || check(TokKind::Bang)) {
      ExprPtr E = makeExpr(ExprKind::Unary);
      E->UOp = check(TokKind::Minus) ? UnaryOp::Neg : UnaryOp::Not;
      advance();
      E->Kids.push_back(parseUnary());
      return E;
    }
    if (looksLikeCast()) {
      ExprPtr E = makeExpr(ExprKind::Cast);
      advance(); // '('
      parseType(E->Ty);
      expect(TokKind::RParen, "after cast type");
      E->Kids.push_back(parseUnary());
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (!Failed) {
      if (match(TokKind::Dot)) {
        if (!check(TokKind::Ident)) {
          error("expected member name after '.'");
          return E;
        }
        std::string Name = advance().Text;
        if (match(TokKind::LParen)) {
          ExprPtr Call = makeExpr(ExprKind::Call);
          Call->Name = std::move(Name);
          Call->Line = E->Line;
          Call->Kids.push_back(std::move(E));
          parseArgs(Call->Args);
          E = std::move(Call);
        } else {
          ExprPtr Member = makeExpr(ExprKind::Member);
          Member->Name = std::move(Name);
          Member->Line = E->Line;
          Member->Kids.push_back(std::move(E));
          E = std::move(Member);
        }
        continue;
      }
      if (check(TokKind::LBracket)) {
        advance();
        ExprPtr Index = makeExpr(ExprKind::Index);
        Index->Line = E->Line;
        Index->Kids.push_back(std::move(E));
        Index->Kids.push_back(parseExpr());
        expect(TokKind::RBracket, "after array index");
        E = std::move(Index);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    switch (peek().Kind) {
    case TokKind::IntLit: {
      ExprPtr E = makeExpr(ExprKind::IntLit);
      E->IntVal = advance().IntVal;
      return E;
    }
    case TokKind::DoubleLit: {
      ExprPtr E = makeExpr(ExprKind::DoubleLit);
      E->DblVal = advance().DblVal;
      return E;
    }
    case TokKind::StringLit: {
      ExprPtr E = makeExpr(ExprKind::StrLit);
      E->Name = advance().Text;
      return E;
    }
    case TokKind::KwTrue:
    case TokKind::KwFalse: {
      ExprPtr E = makeExpr(ExprKind::BoolLit);
      E->BoolVal = advance().Kind == TokKind::KwTrue;
      return E;
    }
    case TokKind::KwNull:
      advance();
      return makeExpr(ExprKind::NullLit);
    case TokKind::KwThis:
      advance();
      return makeExpr(ExprKind::This);
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "after parenthesized expression");
      return E;
    }
    case TokKind::KwNew:
      return parseNew();
    case TokKind::Ident: {
      std::string Name = advance().Text;
      if (match(TokKind::LParen)) {
        ExprPtr Call = makeExpr(ExprKind::Call);
        Call->Name = std::move(Name);
        Call->Kids.push_back(nullptr); // Unqualified call.
        parseArgs(Call->Args);
        return Call;
      }
      ExprPtr E = makeExpr(ExprKind::Ident);
      E->Name = std::move(Name);
      return E;
    }
    default:
      error(std::string("unexpected token ") + tokKindName(peek().Kind) +
            " in expression");
      return makeExpr(ExprKind::NullLit);
    }
  }

  ExprPtr parseNew() {
    advance(); // 'new'
    AstType Base;
    Base.Line = peek().Line;
    switch (peek().Kind) {
    case TokKind::KwInt:
      Base.Base = "int";
      break;
    case TokKind::KwDouble:
      Base.Base = "double";
      break;
    case TokKind::KwBoolean:
      Base.Base = "boolean";
      break;
    case TokKind::KwString:
      Base.Base = "String";
      break;
    case TokKind::Ident:
      Base.Base = peek().Text;
      break;
    default:
      error("expected type after 'new'");
      return makeExpr(ExprKind::NullLit);
    }
    advance();
    if (match(TokKind::LParen)) {
      ExprPtr E = makeExpr(ExprKind::New);
      E->Ty = std::move(Base);
      parseArgs(E->Args);
      return E;
    }
    if (!expect(TokKind::LBracket, "after array element type"))
      return makeExpr(ExprKind::NullLit);
    ExprPtr E = makeExpr(ExprKind::NewArray);
    E->Kids.push_back(parseExpr());
    expect(TokKind::RBracket, "after array length");
    // Trailing "[]" pairs increase the element rank: new int[n][] is an
    // array of int[].
    while (check(TokKind::LBracket) && check(TokKind::RBracket, 1)) {
      advance();
      advance();
      ++Base.Rank;
    }
    E->Ty = std::move(Base);
    return E;
  }

  std::vector<Token> Toks;
  AstUnit &Unit;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

bool nimg::parseUnit(const std::string &Source, AstUnit &Unit,
                     std::vector<std::string> &Errors) {
  std::vector<Token> Toks = lexSource(Source);
  assert(!Toks.empty() && "lexer returns at least EOF");
  if (Toks.back().Kind == TokKind::Error) {
    Errors.push_back("line " + std::to_string(Toks.back().Line) + ": " +
                     Toks.back().Text);
    return false;
  }
  return Parser(std::move(Toks), Unit, Errors).run();
}
