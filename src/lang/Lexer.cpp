//===- Lexer.cpp - MiniJava lexer ------------------------------------------===//

#include "src/lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace nimg;

static const std::unordered_map<std::string, TokKind> &keywordMap() {
  static const std::unordered_map<std::string, TokKind> Map = {
      {"class", TokKind::KwClass},       {"extends", TokKind::KwExtends},
      {"static", TokKind::KwStatic},     {"final", TokKind::KwFinal},
      {"abstract", TokKind::KwAbstract}, {"int", TokKind::KwInt},
      {"double", TokKind::KwDouble},     {"boolean", TokKind::KwBoolean},
      {"String", TokKind::KwString},     {"void", TokKind::KwVoid},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},       {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},     {"new", TokKind::KwNew},
      {"null", TokKind::KwNull},         {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},       {"this", TokKind::KwThis},
      {"super", TokKind::KwSuper},       {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
  };
  return Map;
}

namespace {

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      Token T = next();
      Out.push_back(T);
      if (T.Kind == TokKind::Eof || T.Kind == TokKind::Error)
        break;
    }
    return Out;
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n')
      ++Line;
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }

  Token make(TokKind K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    return T;
  }
  Token error(const std::string &Msg) {
    Token T = make(TokKind::Error);
    T.Text = Msg;
    return T;
  }

  void skipTrivia(bool &Bad, Token &BadTok) {
    Bad = false;
    while (true) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') {
            Bad = true;
            BadTok = error("unterminated block comment");
            return;
          }
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token lexNumber() {
    Token T = make(TokKind::IntLit);
    size_t Start = Pos;
    while (std::isdigit(uint8_t(peek())))
      advance();
    bool IsDouble = false;
    if (peek() == '.' && std::isdigit(uint8_t(peek(1)))) {
      IsDouble = true;
      advance();
      while (std::isdigit(uint8_t(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      advance();
      if (peek() == '+' || peek() == '-')
        advance();
      if (std::isdigit(uint8_t(peek()))) {
        IsDouble = true;
        while (std::isdigit(uint8_t(peek())))
          advance();
      } else {
        Pos = Save;
      }
    }
    std::string Text = Src.substr(Start, Pos - Start);
    if (IsDouble) {
      T.Kind = TokKind::DoubleLit;
      T.DblVal = std::strtod(Text.c_str(), nullptr);
    } else {
      T.IntVal = std::strtoll(Text.c_str(), nullptr, 10);
    }
    return T;
  }

  Token lexString() {
    Token T = make(TokKind::StringLit);
    advance(); // opening quote
    std::string Out;
    while (true) {
      char C = peek();
      if (C == '\0' || C == '\n')
        return error("unterminated string literal");
      advance();
      if (C == '"')
        break;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      char E = advance();
      switch (E) {
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '"':
        Out.push_back('"');
        break;
      case '0':
        Out.push_back('\0');
        break;
      default:
        return error("unknown escape sequence in string literal");
      }
    }
    T.Text = std::move(Out);
    return T;
  }

  Token next() {
    bool Bad = false;
    Token BadTok;
    skipTrivia(Bad, BadTok);
    if (Bad)
      return BadTok;
    char C = peek();
    if (C == '\0')
      return make(TokKind::Eof);

    if (std::isalpha(uint8_t(C)) || C == '_') {
      Token T = make(TokKind::Ident);
      size_t Start = Pos;
      while (std::isalnum(uint8_t(peek())) || peek() == '_')
        advance();
      T.Text = Src.substr(Start, Pos - Start);
      auto It = keywordMap().find(T.Text);
      if (It != keywordMap().end())
        T.Kind = It->second;
      return T;
    }
    if (std::isdigit(uint8_t(C)))
      return lexNumber();
    if (C == '"')
      return lexString();

    advance();
    switch (C) {
    case '(':
      return make(TokKind::LParen);
    case ')':
      return make(TokKind::RParen);
    case '{':
      return make(TokKind::LBrace);
    case '}':
      return make(TokKind::RBrace);
    case '[':
      return make(TokKind::LBracket);
    case ']':
      return make(TokKind::RBracket);
    case ';':
      return make(TokKind::Semi);
    case ',':
      return make(TokKind::Comma);
    case '.':
      return make(TokKind::Dot);
    case '+':
      return make(TokKind::Plus);
    case '-':
      return make(TokKind::Minus);
    case '*':
      return make(TokKind::Star);
    case '/':
      return make(TokKind::Slash);
    case '%':
      return make(TokKind::Percent);
    case '^':
      return make(TokKind::Caret);
    case '=':
      return make(match('=') ? TokKind::EqEq : TokKind::Assign);
    case '!':
      return make(match('=') ? TokKind::NotEq : TokKind::Bang);
    case '<':
      if (match('='))
        return make(TokKind::Le);
      if (match('<'))
        return make(TokKind::Shl);
      return make(TokKind::Lt);
    case '>':
      if (match('='))
        return make(TokKind::Ge);
      if (match('>'))
        return make(TokKind::Shr);
      return make(TokKind::Gt);
    case '&':
      return make(match('&') ? TokKind::AndAnd : TokKind::Amp);
    case '|':
      return make(match('|') ? TokKind::OrOr : TokKind::Pipe);
    default:
      return error(std::string("unexpected character '") + C + "'");
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
};

} // namespace

std::vector<Token> nimg::lexSource(const std::string &Source) {
  return Lexer(Source).run();
}

const char *nimg::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "error";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::DoubleLit:
    return "double literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwExtends:
    return "'extends'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwFinal:
    return "'final'";
  case TokKind::KwAbstract:
    return "'abstract'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwBoolean:
    return "'boolean'";
  case TokKind::KwString:
    return "'String'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwThis:
    return "'this'";
  case TokKind::KwSuper:
    return "'super'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Bang:
    return "'!'";
  }
  return "?";
}
