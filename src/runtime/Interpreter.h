//===- Interpreter.h - MiniJava IR interpreter ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR interpreter. It is used in three roles:
///  - at image build time, to execute static initializers and populate the
///    build heap (heap snapshotting, Sec. 2);
///  - at simulated run time, to execute the program "from the image", with
///    a CodeModel that maps calls to compilation-unit copies and hooks that
///    drive the paging simulator;
///  - in the profiling build, with tracing hooks that reproduce the paper's
///    IR-level instrumentation (Sec. 6.1).
///
/// Threads are cooperative and deterministic: the caller steps each thread
/// by an instruction quantum (the execution engine round-robins them).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_INTERPRETER_H
#define NIMG_RUNTIME_INTERPRETER_H

#include "src/heap/Heap.h"
#include "src/ir/Program.h"

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace nimg {

/// Where execution currently is in the image: which compilation unit, and
/// which inline copy inside it. At build time (no image) both are -1/0.
struct ExecContext {
  int32_t Cu = -1;
  int32_t Copy = 0;
};

/// Maps invocations to execution contexts. The image-backed implementation
/// consults the compilation-unit inline maps; the default (build-time)
/// implementation reports no compilation units.
class CodeModel {
public:
  virtual ~CodeModel() = default;

  /// Returns the context in which \p Target executes when invoked from
  /// \p Caller at call site \p SiteId. The default has no CUs.
  virtual ExecContext enterContext(const ExecContext &Caller, uint32_t SiteId,
                                   MethodId Target) {
    (void)Caller;
    (void)SiteId;
    (void)Target;
    return ExecContext{};
  }
};

/// Observation points used by the paging simulator and the tracing
/// profiler. All callbacks receive the thread id; tracing hooks keep
/// per-thread shadow stacks that they push/pop on method enter/exit.
class RuntimeHooks {
public:
  virtual ~RuntimeHooks() = default;

  /// A method body starts executing in \p Ctx. \p NewCu is true when the
  /// invocation entered a different compilation unit (a CU entry point in
  /// the sense of Sec. 4.1).
  virtual void onMethodEnter(uint32_t Tid, const ExecContext &Ctx, MethodId M,
                             bool NewCu) {
    (void)Tid;
    (void)Ctx;
    (void)M;
    (void)NewCu;
  }
  /// The current method is about to return from the Ret terminator of
  /// \p Block.
  virtual void onMethodExit(uint32_t Tid, MethodId M, BlockId Block) {
    (void)Tid;
    (void)M;
    (void)Block;
  }
  /// A call is about to be made from \p SiteId (a path-cut point).
  virtual void onCallSite(uint32_t Tid, MethodId Caller, uint32_t SiteId) {
    (void)Tid;
    (void)Caller;
    (void)SiteId;
  }
  /// A branch or jump moved control from \p From to \p To within \p M.
  /// \p Ctx is the executing frame's context — split images need it to
  /// locate \p To's fragment (branches never cross inline copies).
  virtual void onBlockEdge(uint32_t Tid, const ExecContext &Ctx, MethodId M,
                           BlockId From, BlockId To) {
    (void)Tid;
    (void)Ctx;
    (void)M;
    (void)From;
    (void)To;
  }
  /// A heap-accessing instruction executed. \p Cells holds exactly
  /// traceSlotCount() entries; entries are -1 when the slot's runtime value
  /// was not a heap cell.
  virtual void onAccessSite(uint32_t Tid, MethodId M, uint32_t SiteId,
                            const CellIdx *Cells, uint16_t Count) {
    (void)Tid;
    (void)M;
    (void)SiteId;
    (void)Cells;
    (void)Count;
  }
  /// A static field was read or written.
  virtual void onStaticAccess(uint32_t Tid, ClassId C, int32_t StaticIdx) {
    (void)Tid;
    (void)C;
    (void)StaticIdx;
  }
  /// A cell was allocated at run time.
  virtual void onAllocate(uint32_t Tid, CellIdx C) {
    (void)Tid;
    (void)C;
  }
  /// A native method executed.
  virtual void onNativeCall(uint32_t Tid, NativeId N) {
    (void)Tid;
    (void)N;
  }
};

/// Interpreter configuration.
struct InterpConfig {
  /// Trigger static initializers on first class use (build-time role).
  bool RunClinits = false;
  /// Safety fuel per interpreter instance.
  uint64_t MaxInstructions = 2'000'000'000;
};

/// Per-class static-initializer state.
enum class ClinitState : uint8_t { NotRun, Running, Done };

/// The interpreter. Owns thread states and the static-field table; the
/// heap is shared with the caller so it can be snapshotted.
class Interpreter {
public:
  Interpreter(Program &P, Heap &H, InterpConfig Config = InterpConfig());

  void setCodeModel(CodeModel *CM) { Code = CM; }
  void setHooks(RuntimeHooks *H) { Hooks = H; }

  // --- Statics and class initialization ------------------------------------

  Value getStaticField(ClassId C, int32_t Idx) const {
    return Statics[size_t(C)][size_t(Idx)];
  }
  void setStaticField(ClassId C, int32_t Idx, Value V) {
    Statics[size_t(C)][size_t(Idx)] = V;
  }
  std::vector<std::vector<Value>> &statics() { return Statics; }
  const std::vector<std::vector<Value>> &statics() const { return Statics; }

  ClinitState clinitState(ClassId C) const { return Clinit[size_t(C)]; }
  /// Marks every class initialized; the run-time role uses this because
  /// initializers already ran at build time (Sec. 2).
  void markAllClinitsDone();
  /// Explicitly triggers initialization of \p C on thread \p Tid (used by
  /// the build pipeline's proactive, permuted initialization order).
  /// Returns false if \p C was already initialized or initializing.
  bool requestClinit(uint32_t Tid, ClassId C);

  /// Classes initialized so far, in completion order. The build pipeline
  /// uses this to stamp initSeq into class-metadata objects.
  const std::vector<ClassId> &initializationOrder() const { return InitOrder; }

  // --- Resources -----------------------------------------------------------

  /// Binds the resource table used by Sys.readResource.
  void setResources(const std::unordered_map<std::string, CellIdx> *Map) {
    Resources = Map;
  }

  // --- Threads --------------------------------------------------------------

  /// Creates a thread whose root frame invokes \p M with \p Args. Returns
  /// the thread id. Thread ids are dense and in creation order, which is
  /// the order profiles are concatenated in (Sec. 7.1).
  uint32_t spawnThread(MethodId M, std::vector<Value> Args);

  /// Creates a thread with an empty stack. The build pipeline pairs this
  /// with requestClinit() to run static initializers proactively in a
  /// permuted order (modeling parallel class initialization, Sec. 2).
  uint32_t newBareThread();

  size_t numThreads() const { return Threads.size(); }
  bool threadFinished(uint32_t Tid) const;
  bool threadTrapped(uint32_t Tid) const;
  const std::string &trapMessage(uint32_t Tid) const;
  /// Return value of the thread's root method (valid once finished).
  Value threadResult(uint32_t Tid) const;

  /// Runs up to \p Quantum instructions on thread \p Tid; returns the
  /// number actually executed (0 when the thread is finished or trapped).
  uint64_t step(uint32_t Tid, uint64_t Quantum);

  /// Convenience: runs a single thread to completion; returns its result.
  /// Asserts the thread neither trapped nor ran out of fuel.
  Value runToCompletion(MethodId M, std::vector<Value> Args);

  // --- Introspection ---------------------------------------------------------

  const std::string &output() const { return Output; }
  uint64_t instructionsExecuted() const { return InstrCount; }
  bool fuelExhausted() const { return InstrCount >= Config.MaxInstructions; }
  Heap &heap() { return H; }
  Program &program() { return P; }

  /// Called when Sys.spawn executes; the execution engine wires this to
  /// spawnThread.
  std::function<void(MethodId)> OnSpawn;
  /// Called when Sys.respond executes (first-response timing, Sec. 7.1).
  std::function<void(uint32_t, const std::string &)> OnRespond;

private:
  struct Frame {
    MethodId M = -1;
    BlockId Block = 0;
    uint32_t InstrIdx = 0;
    uint16_t RetReg = 0;       ///< Caller register receiving the result.
    bool WantsResult = false;  ///< Whether RetReg is meaningful.
    bool IsClinitTrigger = false; ///< Pushed by lazy class initialization.
    ExecContext Ctx;
    std::vector<Value> Regs;
  };

  struct ThreadState {
    std::vector<Frame> Stack;
    bool Trapped = false;
    bool YieldRequested = false;
    std::string TrapMsg;
    Value Result;
    bool Finished = false;
  };

  // Execution helpers. Each returns false when the thread trapped.
  bool execInstr(uint32_t Tid, ThreadState &T, const Instr &In);
  bool ensureInitialized(uint32_t Tid, ThreadState &T, ClassId C,
                         bool &Pushed);
  void pushFrame(uint32_t Tid, ThreadState &T, MethodId M,
                 std::vector<Value> Args, uint16_t RetReg, bool WantsResult,
                 const ExecContext &CallerCtx, uint32_t SiteId,
                 bool IsClinitTrigger);
  void popFrame(uint32_t Tid, ThreadState &T, Value Result, bool HasResult);
  bool doNative(uint32_t Tid, ThreadState &T, Frame &F, const Instr &In);
  void trap(ThreadState &T, const std::string &Msg);

  /// Reports an executed access site to the hooks.
  void reportAccess(uint32_t Tid, const Frame &F, uint32_t SiteId,
                    std::initializer_list<Value> Slots, uint16_t StaticCount);

  const std::string *cellString(const Value &V);

  Program &P;
  Heap &H;
  InterpConfig Config;
  CodeModel *Code = nullptr;
  CodeModel DefaultCode;
  RuntimeHooks *Hooks = nullptr;

  std::vector<std::vector<Value>> Statics;
  std::vector<ClinitState> Clinit;
  std::vector<ClassId> InitOrder;
  /// Deque: Sys.spawn appends a thread while another thread executes, so
  /// references to existing thread states must stay valid.
  std::deque<ThreadState> Threads;
  const std::unordered_map<std::string, CellIdx> *Resources = nullptr;
  std::string Output;
  uint64_t InstrCount = 0;
};

} // namespace nimg

#endif // NIMG_RUNTIME_INTERPRETER_H
