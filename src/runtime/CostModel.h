//===- CostModel.h - Simulated-time cost model ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts simulated work into nanoseconds. One struct owns every cost
/// constant the runtime charges — historically the fault/instruction
/// constants were inlined at the ExecEngine call sites, which made it
/// impossible for other consumers (the fleet serving simulator's per-size
/// fault costs, future huge-page modeling) to stay consistent with the
/// single-run time model.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_COSTMODEL_H
#define NIMG_RUNTIME_COSTMODEL_H

#include <cstdint>

namespace nimg {

/// Converts simulated work into nanoseconds.
struct CostModel {
  double InstrNs = 1.0;      ///< Per interpreted instruction.
  double ProbeUnitNs = 1.0;  ///< Per tracing-probe unit.
  double FaultNs = 80000.0;  ///< SSD major-fault service time (Sec. 7.1),
                             ///< for the base 4 KiB page.
  double BaseNs = 250000.0;  ///< exec/mmap/runtime-entry constant.
  /// Minor fault: the page is already in the (shared) page cache and only
  /// has to be mapped copy-on-write into the faulting address space. This
  /// is what a fleet instance pays for a page another instance already
  /// faulted in.
  double MinorFaultNs = 2000.0;
  /// Extra device-transfer time per KiB beyond the base 4 KiB page — the
  /// per-size term for larger page sizes (2 MiB huge pages pay the seek
  /// once but stream more bytes).
  double TransferNsPerKiB = 250.0;

  /// Major-fault service time for a page of \p PageSizeBytes: the base
  /// SSD seek/service cost plus transfer time for bytes beyond 4 KiB.
  /// Exactly FaultNs at the default 4 KiB page size.
  double majorFaultNs(uint32_t PageSizeBytes) const {
    double ExtraKiB = PageSizeBytes > 4096
                          ? double(PageSizeBytes - 4096) / 1024.0
                          : 0.0;
    return FaultNs + ExtraKiB * TransferNsPerKiB;
  }

  /// The single-process startup-time formula (end-to-end or to first
  /// response): runtime-entry constant + interpreted work + tracing-probe
  /// overhead + major-fault service time. Every charged fault here is a
  /// major at the base page size; per-size and minor-fault charging is the
  /// fleet simulator's job.
  double startupNs(uint64_t Instructions, uint64_t ProbeUnits,
                   uint64_t Faults) const {
    return BaseNs + double(Instructions) * InstrNs +
           double(ProbeUnits) * ProbeUnitNs + double(Faults) * FaultNs;
  }
};

} // namespace nimg

#endif // NIMG_RUNTIME_COSTMODEL_H
