//===- CostModel.h - Simulated-time cost model ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts simulated work into nanoseconds. One struct owns every cost
/// constant the runtime charges — historically the fault/instruction
/// constants were inlined at the ExecEngine call sites, which made it
/// impossible for other consumers (the fleet serving simulator's per-size
/// fault costs, future huge-page modeling) to stay consistent with the
/// single-run time model.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_COSTMODEL_H
#define NIMG_RUNTIME_COSTMODEL_H

#include <cstdint>

namespace nimg {

/// The base (small) page size every section is mapped with by default.
/// Historically this was a hard-coded 4096 in Paging.h, ImageLayout.h and
/// the KiB math below; the multi-size paging model needs one source of
/// truth.
inline constexpr uint32_t BasePageBytes = 4096;

/// The 2 MiB huge-page size of the x86-64/aarch64 PMD level — the page
/// size of the optional `--huge-pages` region at the front of `.text`.
inline constexpr uint32_t HugePageBytes = 2u * 1024 * 1024;

/// How many base pages one huge page spans (512).
inline constexpr uint32_t SmallPagesPerHugePage = HugePageBytes / BasePageBytes;

/// Converts simulated work into nanoseconds.
struct CostModel {
  double InstrNs = 1.0;      ///< Per interpreted instruction.
  double ProbeUnitNs = 1.0;  ///< Per tracing-probe unit.
  double FaultNs = 80000.0;  ///< SSD major-fault service time (Sec. 7.1),
                             ///< for the base 4 KiB page.
  double BaseNs = 250000.0;  ///< exec/mmap/runtime-entry constant.
  /// Minor fault: the page is already in the (shared) page cache and only
  /// has to be mapped copy-on-write into the faulting address space. This
  /// is what a fleet instance pays for a page another instance already
  /// faulted in.
  double MinorFaultNs = 2000.0;
  /// Extra device-transfer time per KiB beyond the base 4 KiB page — the
  /// per-size term for larger page sizes (2 MiB huge pages pay the seek
  /// once but stream more bytes). 100 ns/KiB models ~10 GB/s sequential
  /// NVMe streaming; the seek-dominated base cost stays in FaultNs. A
  /// 2 MiB fault therefore costs 80000 + 2044*100 = 284400 ns, so a huge
  /// page pays off once it absorbs >= 4 base-page faults.
  double TransferNsPerKiB = 100.0;

  /// Major-fault service time for a page of \p PageSizeBytes: the base
  /// SSD seek/service cost plus transfer time for bytes beyond 4 KiB.
  /// Exactly FaultNs at the default 4 KiB page size.
  double majorFaultNs(uint32_t PageSizeBytes) const {
    double ExtraKiB = PageSizeBytes > BasePageBytes
                          ? double(PageSizeBytes - BasePageBytes) / 1024.0
                          : 0.0;
    return FaultNs + ExtraKiB * TransferNsPerKiB;
  }

  /// The single-process startup-time formula (end-to-end or to first
  /// response): runtime-entry constant + interpreted work + tracing-probe
  /// overhead + major-fault service time. Every charged fault here is a
  /// major at the base page size; per-size and minor-fault charging is the
  /// fleet simulator's job.
  double startupNs(uint64_t Instructions, uint64_t ProbeUnits,
                   uint64_t Faults) const {
    return BaseNs + double(Instructions) * InstrNs +
           double(ProbeUnits) * ProbeUnitNs + double(Faults) * FaultNs;
  }

  /// Per-size variant: \p SmallFaults are charged at the base page size,
  /// \p HugeFaults at majorFaultNs(HugePageSizeBytes). With zero huge
  /// faults the result is bit-identical to the three-argument form
  /// (adding +0.0 to a finite nonnegative double is exact), which is the
  /// `--huge-pages 0` byte-identity guarantee.
  double startupNs(uint64_t Instructions, uint64_t ProbeUnits,
                   uint64_t SmallFaults, uint64_t HugeFaults,
                   uint32_t HugePageSizeBytes) const {
    return startupNs(Instructions, ProbeUnits, SmallFaults) +
           double(HugeFaults) * majorFaultNs(HugePageSizeBytes);
  }
};

} // namespace nimg

#endif // NIMG_RUNTIME_COSTMODEL_H
