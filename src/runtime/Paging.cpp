//===- Paging.cpp - Page-cache and major-fault simulator -------------------===//

#include "src/runtime/Paging.h"

#include "src/obs/Metrics.h"

#include <cassert>

using namespace nimg;

PagingSim::PagingSim(uint64_t TextSize, uint64_t HeapSize,
                     const PagingConfig &Cfg)
    : Config(Cfg) {
  assert(Config.PageSize > 0 && Config.ReadaheadPages > 0 &&
         "invalid paging configuration");
  assert(Config.HugePageSize > 0 &&
         Config.HugePageSize % Config.PageSize == 0 &&
         "huge page size must be a multiple of the base page size");
  // The huge-page region sits at the front of .text: the configured budget
  // clamped to what the section covers (the last huge page may cover a
  // partial tail). The remaining bytes stay on base pages; indices are
  // contiguous across the size boundary.
  uint64_t MaxHuge =
      (TextSize + Config.HugePageSize - 1) / Config.HugePageSize;
  HugeCount = Config.HugeTextPages < MaxHuge ? Config.HugeTextPages : MaxHuge;
  HugeCovered = HugeCount * uint64_t(Config.HugePageSize);
  if (HugeCovered > TextSize)
    HugeCovered = TextSize;
  uint64_t SmallTail = TextSize - HugeCovered;
  Pages[0].assign(HugeCount +
                      (SmallTail + Config.PageSize - 1) / Config.PageSize,
                  PageState::Untouched);
  Pages[1].assign((HeapSize + Config.PageSize - 1) / Config.PageSize,
                  PageState::Untouched);
  for (size_t Sec = 0; Sec < 2; ++Sec) {
    Next[Sec].assign(Pages[Sec].size(), -1);
    Prev[Sec].assign(Pages[Sec].size(), -1);
  }
}

void PagingSim::touch(ImageSection Section, uint64_t Off, uint64_t Len) {
  std::vector<PageState> &S = Pages[size_t(Section)];
  if (S.empty() || Len == 0)
    return;
  uint64_t First = pageOf(Section, Off);
  uint64_t Last = pageOf(Section, Off + Len - 1);
  if (First >= S.size())
    return;
  if (Last >= S.size())
    Last = S.size() - 1;
  for (uint64_t Page = First; Page <= Last; ++Page) {
    if (TouchLog && !Touched[size_t(Section)][size_t(Page)]) {
      Touched[size_t(Section)][size_t(Page)] = true;
      TouchLog->push_back({Section, Page, Clock ? *Clock : 0,
                           S[size_t(Page)] == PageState::Untouched});
    }
    if (S[size_t(Page)] != PageState::Untouched)
      continue;
    // Major fault: read an aligned readahead cluster from the device (a
    // huge page is its own cluster — no readahead inside the huge region).
    ++Faults[size_t(Section)];
    if (Section == ImageSection::Text) {
      NIMG_COUNTER_ADD("nimg.paging.faults.text", 1);
      if (Page < HugeCount) {
        ++TextHugeFaults;
        NIMG_COUNTER_ADD("nimg.paging.huge.faults", 1);
      }
      if (Page >= ColdFirstPage && Page < ColdEndPage)
        ++TextColdFaults;
    } else {
      NIMG_COUNTER_ADD("nimg.paging.faults.heap", 1);
    }
    S[size_t(Page)] = PageState::Faulted;
    linkResident(size_t(Section), Page);
    uint64_t ClusterStart, ClusterEnd;
    clusterRange(Section, Page, ClusterStart, ClusterEnd);
    for (uint64_t Ahead = ClusterStart; Ahead < ClusterEnd; ++Ahead) {
      if (S[size_t(Ahead)] == PageState::Untouched) {
        S[size_t(Ahead)] = PageState::Prefetched;
        linkResident(size_t(Section), Ahead);
        ++Prefetched;
        ++PrefetchEvents;
        NIMG_COUNTER_ADD("nimg.paging.prefetch_events", 1);
      }
    }
  }
}

bool PagingSim::evictPage(ImageSection Section, uint64_t Page) {
  size_t Sec = size_t(Section);
  if (Page >= Pages[Sec].size())
    return false;
  PageState &P = Pages[Sec][size_t(Page)];
  if (P == PageState::Untouched)
    return false;
  if (P == PageState::Prefetched)
    --Prefetched;
  if (Section == ImageSection::Text && Page < HugeCount)
    NIMG_COUNTER_ADD("nimg.paging.huge.evictions", 1);
  P = PageState::Untouched;
  // O(1) unlink from the intrusive resident list.
  int64_t Pr = Prev[Sec][size_t(Page)], Nx = Next[Sec][size_t(Page)];
  if (Pr != -1)
    Next[Sec][size_t(Pr)] = Nx;
  else
    Head[Sec] = Nx;
  if (Nx != -1)
    Prev[Sec][size_t(Nx)] = Pr;
  else
    Tail[Sec] = Pr;
  Prev[Sec][size_t(Page)] = Next[Sec][size_t(Page)] = -1;
  --Resident[Sec];
  ++EvictedPages;
  return true;
}

void PagingSim::dropCaches() {
  // Walk only the resident list — the whole point of the intrusive list is
  // that a sparse image (few resident pages, huge section) evicts in
  // O(residents) instead of scanning every page of both sections.
  for (size_t Sec = 0; Sec < 2; ++Sec) {
    for (int64_t Page = Head[Sec]; Page != -1; Page = Next[Sec][size_t(Page)]) {
      PageState &P = Pages[Sec][size_t(Page)];
      assert(P != PageState::Untouched && "resident list holds a clean page");
      // A prefetched page leaves the resident-prefetched population when
      // evicted; re-faulting it later must count as a fault only (the old
      // cumulative counter double-counted such pages).
      if (P == PageState::Prefetched)
        --Prefetched;
      ++EvictedPages;
      P = PageState::Untouched;
    }
    Head[Sec] = Tail[Sec] = -1;
    Resident[Sec] = 0;
  }
  NIMG_COUNTER_ADD("nimg.paging.drop_caches", 1);
  // Fault counters are cumulative per run; use counters()/deltaSince() to
  // attribute faults to a phase without resetting anything.
}
