//===- Interpreter.cpp - MiniJava IR interpreter ---------------------------===//

#include "src/runtime/Interpreter.h"

#include <cmath>
#include <cstdio>

using namespace nimg;

Interpreter::Interpreter(Program &Prog, Heap &Heap_, InterpConfig Cfg)
    : P(Prog), H(Heap_), Config(Cfg) {
  Code = &DefaultCode;
  Statics.resize(P.numClasses());
  Clinit.assign(P.numClasses(), ClinitState::NotRun);
  for (size_t C = 0; C < P.numClasses(); ++C) {
    const ClassDef &Def = P.classDef(ClassId(C));
    Statics[C].reserve(Def.StaticFields.size());
    for (const Field &F : Def.StaticFields)
      Statics[C].push_back(Heap::zeroValue(P.type(F.Type)));
  }
}

void Interpreter::markAllClinitsDone() {
  std::fill(Clinit.begin(), Clinit.end(), ClinitState::Done);
}

bool Interpreter::requestClinit(uint32_t Tid, ClassId C) {
  assert(Tid < Threads.size() && "invalid thread");
  ThreadState &T = Threads[Tid];
  bool Pushed = false;
  // Push C first, then its uninitialized supers on top, so supers complete
  // first (Java initialization order).
  for (ClassId Cur = C; Cur != -1; Cur = P.classDef(Cur).Super) {
    if (Clinit[size_t(Cur)] != ClinitState::NotRun)
      continue;
    Clinit[size_t(Cur)] = ClinitState::Running;
    MethodId Init = P.classDef(Cur).Clinit;
    if (Init == -1) {
      // No initializer code: completes immediately.
      Clinit[size_t(Cur)] = ClinitState::Done;
      InitOrder.push_back(Cur);
      continue;
    }
    pushFrame(Tid, T, Init, {}, 0, /*WantsResult=*/false, ExecContext{},
              /*SiteId=*/0, /*IsClinitTrigger=*/true);
    Pushed = true;
  }
  return Pushed;
}

uint32_t Interpreter::spawnThread(MethodId M, std::vector<Value> Args) {
  Threads.emplace_back();
  uint32_t Tid = uint32_t(Threads.size() - 1);
  pushFrame(Tid, Threads.back(), M, std::move(Args), 0,
            /*WantsResult=*/false, ExecContext{}, /*SiteId=*/0,
            /*IsClinitTrigger=*/false);
  return Tid;
}

uint32_t Interpreter::newBareThread() {
  Threads.emplace_back();
  return uint32_t(Threads.size() - 1);
}

bool Interpreter::threadFinished(uint32_t Tid) const {
  const ThreadState &T = Threads[Tid];
  return T.Finished || T.Trapped;
}

bool Interpreter::threadTrapped(uint32_t Tid) const {
  return Threads[Tid].Trapped;
}

const std::string &Interpreter::trapMessage(uint32_t Tid) const {
  return Threads[Tid].TrapMsg;
}

Value Interpreter::threadResult(uint32_t Tid) const {
  return Threads[Tid].Result;
}

void Interpreter::trap(ThreadState &T, const std::string &Msg) {
  T.Trapped = true;
  T.TrapMsg = Msg;
}

void Interpreter::pushFrame(uint32_t Tid, ThreadState &T, MethodId M,
                            std::vector<Value> Args, uint16_t RetReg,
                            bool WantsResult, const ExecContext &CallerCtx,
                            uint32_t SiteId, bool IsClinitTrigger) {
  const Method &Meth = P.method(M);
  assert(!Meth.IsAbstract && "invoking an abstract method");
  assert(Args.size() == Meth.ParamTypes.size() && "argument count mismatch");
  Frame F;
  F.M = M;
  F.RetReg = RetReg;
  F.WantsResult = WantsResult;
  F.IsClinitTrigger = IsClinitTrigger;
  F.Ctx = Code->enterContext(CallerCtx, SiteId, M);
  F.Regs.resize(Meth.NumRegs);
  for (size_t I = 0; I < Args.size(); ++I)
    F.Regs[I] = Args[I];
  bool NewCu = F.Ctx.Cu != CallerCtx.Cu;
  T.Stack.push_back(std::move(F));
  if (Hooks)
    Hooks->onMethodEnter(Tid, T.Stack.back().Ctx, M, NewCu);
}

void Interpreter::popFrame(uint32_t Tid, ThreadState &T, Value Result,
                           bool HasResult) {
  Frame Done = std::move(T.Stack.back());
  if (Hooks)
    Hooks->onMethodExit(Tid, Done.M, Done.Block);
  T.Stack.pop_back();
  const Method &Meth = P.method(Done.M);
  if (Meth.IsClinit && Done.IsClinitTrigger) {
    Clinit[size_t(Meth.Class)] = ClinitState::Done;
    InitOrder.push_back(Meth.Class);
  }
  if (T.Stack.empty()) {
    T.Finished = true;
    if (HasResult)
      T.Result = Result;
    return;
  }
  if (Done.WantsResult && HasResult)
    T.Stack.back().Regs[Done.RetReg] = Result;
}

bool Interpreter::ensureInitialized(uint32_t Tid, ThreadState &T, ClassId C,
                                    bool &Pushed) {
  Pushed = false;
  if (!Config.RunClinits)
    return true;
  // Fast path: the whole chain is initialized or initializing.
  bool NeedsWork = false;
  for (ClassId Cur = C; Cur != -1; Cur = P.classDef(Cur).Super)
    if (Clinit[size_t(Cur)] == ClinitState::NotRun)
      NeedsWork = true;
  if (!NeedsWork)
    return true;
  Pushed = requestClinit(Tid, C);
  (void)T;
  return true;
}

const std::string *Interpreter::cellString(const Value &V) {
  if (!V.isRef())
    return nullptr;
  const HeapCell &Cell = H.cell(V.asRef());
  if (Cell.Kind != CellKind::String)
    return nullptr;
  return &Cell.Str;
}

void Interpreter::reportAccess(uint32_t Tid, const Frame &F, uint32_t SiteId,
                               std::initializer_list<Value> Slots,
                               uint16_t StaticCount) {
  if (!Hooks)
    return;
  CellIdx Cells[4];
  uint16_t N = 0;
  for (const Value &V : Slots) {
    assert(N < 4 && "too many trace slots");
    Cells[N++] = V.isRef() ? V.asRef() : CellIdx(-1);
  }
  while (N < StaticCount)
    Cells[N++] = -1;
  assert(N == StaticCount && "trace slot count mismatch");
  Hooks->onAccessSite(Tid, F.M, SiteId, Cells, N);
}

static std::string stringifyValue(const Heap &H, const Value &V) {
  switch (V.Kind) {
  case ValueKind::Null:
    return "null";
  case ValueKind::Int:
    return std::to_string(V.I);
  case ValueKind::Bool:
    return V.I ? "true" : "false";
  case ValueKind::Double: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", V.D);
    return Buf;
  }
  case ValueKind::Ref: {
    const HeapCell &Cell = H.cell(V.Ref);
    if (Cell.Kind == CellKind::String)
      return Cell.Str;
    return "<object>";
  }
  }
  return "?";
}

uint64_t Interpreter::step(uint32_t Tid, uint64_t Quantum) {
  assert(Tid < Threads.size() && "invalid thread");
  ThreadState &T = Threads[Tid];
  uint64_t Executed = 0;
  while (Executed < Quantum) {
    if (T.Finished || T.Trapped)
      break;
    if (InstrCount >= Config.MaxInstructions)
      break;
    if (T.Stack.empty()) {
      T.Finished = true;
      break;
    }
    Frame &F = T.Stack.back();
    const Method &Meth = P.method(F.M);
    assert(size_t(F.Block) < Meth.Blocks.size() && "PC out of range");
    const BasicBlock &BB = Meth.Blocks[size_t(F.Block)];
    assert(F.InstrIdx < BB.Instrs.size() && "PC past block end");
    const Instr &In = BB.Instrs[F.InstrIdx];
    if (!execInstr(Tid, T, In))
      break;
    ++InstrCount;
    ++Executed;
    if (T.YieldRequested) {
      // Sys.yield(): cooperative scheduling point — end this quantum.
      T.YieldRequested = false;
      break;
    }
  }
  return Executed;
}

bool Interpreter::execInstr(uint32_t Tid, ThreadState &T, const Instr &In) {
  Frame &F = T.Stack.back();
  std::vector<Value> &R = F.Regs;
  const Method &Meth = P.method(F.M);
  uint32_t Site = makeSiteId(F.Block, F.InstrIdx);

  auto Advance = [&] { ++F.InstrIdx; };
  auto Goto = [&](BlockId Target) {
    if (Hooks)
      Hooks->onBlockEdge(Tid, F.Ctx, F.M, F.Block, Target);
    F.Block = Target;
    F.InstrIdx = 0;
  };
  auto NullTrap = [&](const Value &V) {
    if (!V.isNull())
      return false;
    trap(T, "null dereference in " + Meth.Sig);
    return true;
  };

  switch (In.Op) {
  case Opcode::ConstInt:
    R[In.Dst] = Value::makeInt(In.IImm);
    Advance();
    break;
  case Opcode::ConstDouble:
    R[In.Dst] = Value::makeDouble(In.FImm);
    Advance();
    break;
  case Opcode::ConstBool:
    R[In.Dst] = Value::makeBool(In.IImm != 0);
    Advance();
    break;
  case Opcode::ConstNull:
    R[In.Dst] = Value::makeNull();
    Advance();
    break;
  case Opcode::ConstString:
    R[In.Dst] = Value::makeRef(H.internString(P.string(In.Aux)));
    Advance();
    break;
  case Opcode::Move:
    R[In.Dst] = R[In.A];
    Advance();
    break;

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod: {
    const Value &A = R[In.A];
    const Value &B = R[In.B];
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int) {
      int64_t X = A.I, Y = B.I;
      if ((In.Op == Opcode::Div || In.Op == Opcode::Mod) && Y == 0) {
        trap(T, "integer division by zero in " + Meth.Sig);
        return false;
      }
      int64_t Out = 0;
      switch (In.Op) {
      case Opcode::Add:
        Out = X + Y;
        break;
      case Opcode::Sub:
        Out = X - Y;
        break;
      case Opcode::Mul:
        Out = X * Y;
        break;
      case Opcode::Div:
        Out = X / Y;
        break;
      default:
        Out = X % Y;
        break;
      }
      R[In.Dst] = Value::makeInt(Out);
    } else if (A.Kind == ValueKind::Double && B.Kind == ValueKind::Double) {
      double X = A.D, Y = B.D;
      double Out = 0;
      switch (In.Op) {
      case Opcode::Add:
        Out = X + Y;
        break;
      case Opcode::Sub:
        Out = X - Y;
        break;
      case Opcode::Mul:
        Out = X * Y;
        break;
      case Opcode::Div:
        Out = X / Y;
        break;
      default:
        Out = std::fmod(X, Y);
        break;
      }
      R[In.Dst] = Value::makeDouble(Out);
    } else {
      trap(T, "arithmetic type mismatch in " + Meth.Sig);
      return false;
    }
    Advance();
    break;
  }

  case Opcode::Neg: {
    const Value &A = R[In.A];
    if (A.Kind == ValueKind::Int)
      R[In.Dst] = Value::makeInt(-A.I);
    else if (A.Kind == ValueKind::Double)
      R[In.Dst] = Value::makeDouble(-A.D);
    else {
      trap(T, "neg of non-numeric value in " + Meth.Sig);
      return false;
    }
    Advance();
    break;
  }
  case Opcode::Not:
    R[In.Dst] = Value::makeBool(!R[In.A].asBool());
    Advance();
    break;

  case Opcode::BitAnd:
  case Opcode::BitOr:
  case Opcode::BitXor:
  case Opcode::Shl:
  case Opcode::Shr: {
    int64_t X = R[In.A].asInt();
    int64_t Y = R[In.B].asInt();
    int64_t Out = 0;
    switch (In.Op) {
    case Opcode::BitAnd:
      Out = X & Y;
      break;
    case Opcode::BitOr:
      Out = X | Y;
      break;
    case Opcode::BitXor:
      Out = X ^ Y;
      break;
    case Opcode::Shl:
      Out = int64_t(uint64_t(X) << (Y & 63));
      break;
    default:
      Out = X >> (Y & 63);
      break;
    }
    R[In.Dst] = Value::makeInt(Out);
    Advance();
    break;
  }

  case Opcode::CmpEq:
  case Opcode::CmpNe: {
    bool Eq;
    const Value &A = R[In.A];
    const Value &B = R[In.B];
    if (A.isNull() || B.isNull())
      Eq = A.isNull() && B.isNull();
    else
      Eq = A == B;
    R[In.Dst] = Value::makeBool(In.Op == Opcode::CmpEq ? Eq : !Eq);
    Advance();
    break;
  }
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe: {
    const Value &A = R[In.A];
    const Value &B = R[In.B];
    double X, Y;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int) {
      int64_t XI = A.I, YI = B.I;
      bool Out = false;
      switch (In.Op) {
      case Opcode::CmpLt:
        Out = XI < YI;
        break;
      case Opcode::CmpLe:
        Out = XI <= YI;
        break;
      case Opcode::CmpGt:
        Out = XI > YI;
        break;
      default:
        Out = XI >= YI;
        break;
      }
      R[In.Dst] = Value::makeBool(Out);
      Advance();
      break;
    }
    if (A.Kind != ValueKind::Double || B.Kind != ValueKind::Double) {
      trap(T, "comparison type mismatch in " + Meth.Sig);
      return false;
    }
    X = A.D;
    Y = B.D;
    bool Out = false;
    switch (In.Op) {
    case Opcode::CmpLt:
      Out = X < Y;
      break;
    case Opcode::CmpLe:
      Out = X <= Y;
      break;
    case Opcode::CmpGt:
      Out = X > Y;
      break;
    default:
      Out = X >= Y;
      break;
    }
    R[In.Dst] = Value::makeBool(Out);
    Advance();
    break;
  }

  case Opcode::Concat: {
    const Value &A = R[In.A];
    const Value &B = R[In.B];
    std::string S = stringifyValue(H, A) + stringifyValue(H, B);
    CellIdx NewCell = H.allocString(std::move(S));
    if (Hooks)
      Hooks->onAllocate(Tid, NewCell);
    reportAccess(Tid, F, Site, {A, B}, 2);
    R[In.Dst] = Value::makeRef(NewCell);
    Advance();
    break;
  }

  case Opcode::I2D:
    R[In.Dst] = Value::makeDouble(double(R[In.A].asInt()));
    Advance();
    break;
  case Opcode::D2I:
    R[In.Dst] = Value::makeInt(int64_t(R[In.A].asDouble()));
    Advance();
    break;

  case Opcode::NewObject: {
    bool Pushed = false;
    ensureInitialized(Tid, T, In.Aux, Pushed);
    if (Pushed)
      return true; // Re-execute after the initializer runs.
    CellIdx Cell = H.allocObject(In.Aux);
    if (Hooks)
      Hooks->onAllocate(Tid, Cell);
    R[In.Dst] = Value::makeRef(Cell);
    Advance();
    break;
  }
  case Opcode::NewArray: {
    int64_t Len = R[In.A].asInt();
    if (Len < 0) {
      trap(T, "negative array size in " + Meth.Sig);
      return false;
    }
    CellIdx Cell = H.allocArray(In.Aux, Len);
    if (Hooks)
      Hooks->onAllocate(Tid, Cell);
    R[In.Dst] = Value::makeRef(Cell);
    Advance();
    break;
  }
  case Opcode::ArrayLen: {
    const Value &A = R[In.A];
    if (NullTrap(A))
      return false;
    const HeapCell &Cell = H.cell(A.asRef());
    assert(Cell.Kind == CellKind::Array && "arraylen of non-array");
    reportAccess(Tid, F, Site, {A}, 1);
    R[In.Dst] = Value::makeInt(int64_t(Cell.Slots.size()));
    Advance();
    break;
  }
  case Opcode::ALoad: {
    const Value &A = R[In.A];
    if (NullTrap(A))
      return false;
    HeapCell &Cell = H.cell(A.asRef());
    assert(Cell.Kind == CellKind::Array && "aload of non-array");
    int64_t Idx = R[In.B].asInt();
    if (Idx < 0 || size_t(Idx) >= Cell.Slots.size()) {
      trap(T, "array index out of bounds in " + Meth.Sig);
      return false;
    }
    reportAccess(Tid, F, Site, {A}, 1);
    R[In.Dst] = Cell.Slots[size_t(Idx)];
    Advance();
    break;
  }
  case Opcode::AStore: {
    const Value &A = R[In.A];
    if (NullTrap(A))
      return false;
    HeapCell &Cell = H.cell(A.asRef());
    assert(Cell.Kind == CellKind::Array && "astore of non-array");
    int64_t Idx = R[In.B].asInt();
    if (Idx < 0 || size_t(Idx) >= Cell.Slots.size()) {
      trap(T, "array index out of bounds in " + Meth.Sig);
      return false;
    }
    reportAccess(Tid, F, Site, {A}, 1);
    Cell.Slots[size_t(Idx)] = R[In.C];
    Advance();
    break;
  }
  case Opcode::GetField: {
    const Value &A = R[In.A];
    if (NullTrap(A))
      return false;
    HeapCell &Cell = H.cell(A.asRef());
    assert(Cell.Kind == CellKind::Object && "getfield of non-object");
    assert(size_t(In.Aux) < Cell.Slots.size() && "field index out of range");
    reportAccess(Tid, F, Site, {A}, 1);
    R[In.Dst] = Cell.Slots[size_t(In.Aux)];
    Advance();
    break;
  }
  case Opcode::PutField: {
    const Value &A = R[In.A];
    if (NullTrap(A))
      return false;
    HeapCell &Cell = H.cell(A.asRef());
    assert(Cell.Kind == CellKind::Object && "putfield of non-object");
    assert(size_t(In.Aux) < Cell.Slots.size() && "field index out of range");
    reportAccess(Tid, F, Site, {A}, 1);
    Cell.Slots[size_t(In.Aux)] = R[In.B];
    Advance();
    break;
  }

  case Opcode::GetStatic:
  case Opcode::PutStatic: {
    bool Pushed = false;
    ensureInitialized(Tid, T, In.Aux, Pushed);
    if (Pushed)
      return true;
    if (Hooks)
      Hooks->onStaticAccess(Tid, In.Aux, In.Aux2);
    if (In.Op == Opcode::GetStatic)
      R[In.Dst] = Statics[size_t(In.Aux)][size_t(In.Aux2)];
    else
      Statics[size_t(In.Aux)][size_t(In.Aux2)] = R[In.A];
    Advance();
    break;
  }

  case Opcode::CallStatic: {
    const Method &Callee = P.method(In.Aux);
    bool Pushed = false;
    ensureInitialized(Tid, T, Callee.Class, Pushed);
    if (Pushed)
      return true;
    std::vector<Value> Args;
    Args.reserve(In.ArgsCount);
    for (size_t I = 0; I < In.ArgsCount; ++I)
      Args.push_back(R[Meth.CallArgs[In.ArgsBegin + I]]);
    if (Hooks)
      Hooks->onCallSite(Tid, F.M, Site);
    ExecContext CallerCtx = F.Ctx;
    Advance();
    bool Wants = P.type(Callee.RetType).Kind != TypeKind::Void;
    pushFrame(Tid, T, In.Aux, std::move(Args), In.Dst, Wants, CallerCtx, Site,
              false);
    break;
  }
  case Opcode::CallVirtual: {
    const Value &Recv = R[Meth.CallArgs[In.ArgsBegin]];
    if (NullTrap(Recv))
      return false;
    const HeapCell &Cell = H.cell(Recv.asRef());
    if (Cell.Kind != CellKind::Object) {
      trap(T, "virtual call on non-object in " + Meth.Sig);
      return false;
    }
    MethodId Target = P.resolveVirtual(Cell.Class, In.Aux);
    if (Target == -1) {
      trap(T, "no implementation of " + P.method(In.Aux).Sig + " for " +
                  P.classDef(Cell.Class).Name);
      return false;
    }
    std::vector<Value> Args;
    Args.reserve(In.ArgsCount);
    for (size_t I = 0; I < In.ArgsCount; ++I)
      Args.push_back(R[Meth.CallArgs[In.ArgsBegin + I]]);
    if (Hooks)
      Hooks->onCallSite(Tid, F.M, Site);
    ExecContext CallerCtx = F.Ctx;
    Advance();
    const Method &Callee = P.method(Target);
    bool Wants = P.type(Callee.RetType).Kind != TypeKind::Void;
    pushFrame(Tid, T, Target, std::move(Args), In.Dst, Wants, CallerCtx, Site,
              false);
    break;
  }
  case Opcode::CallNative:
    return doNative(Tid, T, F, In);

  case Opcode::Ret: {
    Value Result;
    bool HasResult = In.Aux == 1;
    if (HasResult)
      Result = R[In.A];
    popFrame(Tid, T, Result, HasResult);
    break;
  }
  case Opcode::Br: {
    bool Cond = R[In.A].asBool();
    Goto(Cond ? In.Target : In.Aux2);
    break;
  }
  case Opcode::Jmp:
    Goto(In.Target);
    break;
  }
  return !T.Trapped;
}

bool Interpreter::doNative(uint32_t Tid, ThreadState &T, Frame &F,
                           const Instr &In) {
  std::vector<Value> &R = F.Regs;
  const Method &Meth = P.method(F.M);
  uint32_t Site = makeSiteId(F.Block, F.InstrIdx);
  NativeId N = NativeId(In.Aux);
  auto Arg = [&](size_t I) -> Value & {
    assert(I < In.ArgsCount && "native argument out of range");
    return R[Meth.CallArgs[In.ArgsBegin + I]];
  };
  auto ArgString = [&](size_t I) -> const std::string * {
    return cellString(Arg(I));
  };
  auto StrTrap = [&](const std::string *S) {
    if (S)
      return false;
    trap(T, "native string argument is not a string in " + Meth.Sig);
    return true;
  };

  if (Hooks)
    Hooks->onNativeCall(Tid, N);

  switch (N) {
  case NativeId::Print: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    Output += *S;
    Output += '\n';
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    break;
  }
  case NativeId::PrintInt:
    Output += std::to_string(Arg(0).asInt());
    Output += '\n';
    break;
  case NativeId::Sqrt:
    R[In.Dst] = Value::makeDouble(std::sqrt(Arg(0).asDouble()));
    break;
  case NativeId::Sin:
    R[In.Dst] = Value::makeDouble(std::sin(Arg(0).asDouble()));
    break;
  case NativeId::Cos:
    R[In.Dst] = Value::makeDouble(std::cos(Arg(0).asDouble()));
    break;
  case NativeId::Floor:
    R[In.Dst] = Value::makeDouble(std::floor(Arg(0).asDouble()));
    break;
  case NativeId::StrLen: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    R[In.Dst] = Value::makeInt(int64_t(S->size()));
    break;
  }
  case NativeId::StrCharAt: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    int64_t Idx = Arg(1).asInt();
    if (Idx < 0 || size_t(Idx) >= S->size()) {
      trap(T, "string index out of bounds in " + Meth.Sig);
      return false;
    }
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    R[In.Dst] = Value::makeInt(int64_t(uint8_t((*S)[size_t(Idx)])));
    break;
  }
  case NativeId::StrSub: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    int64_t From = Arg(1).asInt();
    int64_t To = Arg(2).asInt();
    if (From < 0 || To < From || size_t(To) > S->size()) {
      trap(T, "substring bounds out of range in " + Meth.Sig);
      return false;
    }
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    CellIdx Cell = H.allocString(S->substr(size_t(From), size_t(To - From)));
    if (Hooks)
      Hooks->onAllocate(Tid, Cell);
    R[In.Dst] = Value::makeRef(Cell);
    break;
  }
  case NativeId::StrEquals: {
    const std::string *A = ArgString(0);
    const std::string *B = ArgString(1);
    if (StrTrap(A) || StrTrap(B))
      return false;
    reportAccess(Tid, F, Site, {Arg(0), Arg(1)}, 2);
    R[In.Dst] = Value::makeBool(*A == *B);
    break;
  }
  case NativeId::StrFromInt: {
    CellIdx Cell = H.allocString(std::to_string(Arg(0).asInt()));
    if (Hooks)
      Hooks->onAllocate(Tid, Cell);
    R[In.Dst] = Value::makeRef(Cell);
    break;
  }
  case NativeId::StrFromDouble: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", Arg(0).asDouble());
    CellIdx Cell = H.allocString(Buf);
    if (Hooks)
      Hooks->onAllocate(Tid, Cell);
    R[In.Dst] = Value::makeRef(Cell);
    break;
  }
  case NativeId::StrIntern: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    R[In.Dst] = Value::makeRef(H.internString(*S));
    break;
  }
  case NativeId::Spawn: {
    if (!OnSpawn) {
      trap(T, "Sys.spawn is not available in this execution role");
      return false;
    }
    assert(In.Aux2 >= 0 && size_t(In.Aux2) < P.numMethods() &&
           "spawn target out of range");
    OnSpawn(In.Aux2);
    break;
  }
  case NativeId::Respond: {
    const std::string *S = ArgString(0);
    if (StrTrap(S))
      return false;
    reportAccess(Tid, F, Site, {Arg(0)}, 1);
    if (OnRespond)
      OnRespond(Tid, *S);
    break;
  }
  case NativeId::ReadResource: {
    const std::string *Name = ArgString(0);
    if (StrTrap(Name))
      return false;
    if (!Resources) {
      trap(T, "no resources bound in " + Meth.Sig);
      return false;
    }
    auto It = Resources->find(*Name);
    if (It == Resources->end()) {
      trap(T, "unknown resource '" + *Name + "' in " + Meth.Sig);
      return false;
    }
    reportAccess(Tid, F, Site, {Arg(0), Value::makeRef(It->second)}, 2);
    R[In.Dst] = Value::makeRef(It->second);
    break;
  }
  case NativeId::Yield:
    T.YieldRequested = true;
    break;
  }

  ++F.InstrIdx;
  return true;
}

Value Interpreter::runToCompletion(MethodId M, std::vector<Value> Args) {
  uint32_t Tid = spawnThread(M, std::move(Args));
  while (!threadFinished(Tid) && !fuelExhausted())
    step(Tid, 1'000'000);
  if (threadTrapped(Tid))
    std::fprintf(stderr, "nimage: interpreter trap: %s\n",
                 trapMessage(Tid).c_str());
  assert(!threadTrapped(Tid) && "thread trapped during runToCompletion");
  assert(threadFinished(Tid) && "interpreter ran out of fuel");
  return threadResult(Tid);
}
