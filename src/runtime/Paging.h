//===- Paging.h - Page-cache and major-fault simulator ----------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the memory-mapped image file: the image's sections are
/// demand-paged; the first access to a non-resident page is a major fault
/// that reads a readahead cluster from the device. This is the metric
/// substrate of the whole evaluation: the paper counts page faults per
/// section with perf (Sec. 7.1) and its Fig. 6 classifies pages as
/// faulted (green), paged-in without fault (red), or untouched (black) —
/// exactly the three states tracked here.
///
/// dropCaches() models `echo 3 > /proc/sys/vm/drop_caches` between
/// benchmark iterations.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_PAGING_H
#define NIMG_RUNTIME_PAGING_H

#include "src/runtime/CostModel.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nimg {

enum class ImageSection : uint8_t { Text = 0, HeapSec = 1 };

/// Per-page cache state, matching Fig. 6's color coding.
enum class PageState : uint8_t {
  Untouched,  ///< Black: not mapped.
  Faulted,    ///< Green: caused a major page fault.
  Prefetched, ///< Red: paged in by readahead, never faulted.
};

struct PagingConfig {
  uint32_t PageSize = BasePageBytes;
  /// Pages loaded per fault (aligned readahead cluster; models the
  /// kernel's ~16 KiB read-around for cold file-backed mappings).
  uint32_t ReadaheadPages = 4;
  /// Number of huge pages mapped at the front of `.text` (the image's
  /// `--huge-pages` region; the remainder of the section and all of the
  /// heap stay on PageSize pages). The simulator clamps this to the pages
  /// the section can actually cover.
  uint32_t HugeTextPages = 0;
  /// Size of one huge page. Must be a multiple of PageSize.
  uint32_t HugePageSize = HugePageBytes;
};

/// A monotonic snapshot of the simulator's cumulative counters. Take one
/// before and one after a phase and subtract to attribute faults to that
/// phase alone — no dropCaches() (and therefore no page-state side effects)
/// required.
struct PagingCounters {
  uint64_t TextFaults = 0;
  uint64_t HeapFaults = 0;
  /// Text faults landing inside the cold-tail region registered with
  /// setTextColdRegion() (hot/cold splitting attribution; a subset of
  /// TextFaults, 0 when no region is set).
  uint64_t TextColdFaults = 0;
  /// Text faults served by a huge page of the front region (a subset of
  /// TextFaults, 0 when HugeTextPages is 0). The per-size cost model
  /// charges these at majorFaultNs(HugePageSize).
  uint64_t TextHugeFaults = 0;
  /// Readahead page-ins, cumulative (counts every prefetch event, even for
  /// pages later evicted — unlike PagingSim::prefetchedPages()).
  uint64_t PrefetchEvents = 0;
  /// Pages evicted by dropCaches(), cumulative.
  uint64_t EvictedPages = 0;

  uint64_t totalFaults() const { return TextFaults + HeapFaults; }

  /// Per-phase delta (this = "after", \p Start = "before").
  PagingCounters operator-(const PagingCounters &Start) const {
    return {TextFaults - Start.TextFaults, HeapFaults - Start.HeapFaults,
            TextColdFaults - Start.TextColdFaults,
            TextHugeFaults - Start.TextHugeFaults,
            PrefetchEvents - Start.PrefetchEvents,
            EvictedPages - Start.EvictedPages};
  }
};

/// One recorded first-touch event: the first time the running program
/// touched \p Page of \p Sec (at page granularity; later touches of the
/// same page are not recorded). \p WasFault distinguishes a demand major
/// fault from a page that readahead had already brought in — a replay only
/// has to re-issue the WasFault events to reproduce the run's fault set
/// exactly, because the readahead clusters they pull in are deterministic.
/// This is the fleet serving simulator's reference trace.
struct PageTouch {
  ImageSection Sec;
  uint64_t Page;
  /// Model instruction clock at the touch. The engine updates the clock
  /// cell once per scheduling quantum, so this carries quantum (not
  /// per-instruction) granularity.
  uint64_t Clock;
  bool WasFault;
};

/// The page-cache simulator for one image file with two sections.
class PagingSim {
public:
  PagingSim(uint64_t TextSize, uint64_t HeapSize,
            const PagingConfig &Config = {});

  /// Touches [Off, Off+Len) within \p Section, faulting non-resident pages.
  void touch(ImageSection Section, uint64_t Off, uint64_t Len);

  /// Evicts everything (clean caches and reclaimable objects, Sec. 7.1).
  /// Walks only the resident list — O(resident pages), not O(all pages).
  void dropCaches();

  /// Evicts one resident page (capacity pressure in the fleet page cache).
  /// Returns false (no-op) when the page is out of range or not resident.
  /// Unlike dropCaches(), this is a targeted O(1) unlink; a later touch
  /// re-faults the page as a fresh major.
  bool evictPage(ImageSection Section, uint64_t Page);

  /// Starts recording first-touch events into \p Log, reading the model
  /// clock from \p ClockCell at each event (nullptr clock records 0).
  /// Recording tracks "ever touched by the program" separately from the
  /// resident state: a prefetched page's first program touch is recorded
  /// (with WasFault=false) even though it causes no fault. Pass
  /// Log=nullptr to stop.
  void recordTouches(std::vector<PageTouch> *Log,
                     const uint64_t *ClockCell = nullptr) {
    TouchLog = Log;
    Clock = ClockCell;
    if (Log)
      for (size_t Sec = 0; Sec < 2; ++Sec)
        Touched[Sec].assign(Pages[Sec].size(), false);
  }

  /// Registers the cold-tail byte range of .text (hot/cold splitting) so
  /// faults can be attributed hot vs cold. Pass Size 0 to clear.
  void setTextColdRegion(uint64_t Off, uint64_t Size) {
    ColdFirstPage = pageOf(ImageSection::Text, Off);
    ColdEndPage = Size == 0 ? ColdFirstPage
                            : pageOf(ImageSection::Text, Off + Size - 1) + 1;
  }

  /// Page index covering byte \p Off of \p Section. With a huge-page
  /// region, text indices [0, hugeTextPages()) are the huge pages and the
  /// small pages of the remainder follow; indices stay contiguous so every
  /// page walk is size-agnostic.
  uint64_t pageOf(ImageSection Section, uint64_t Off) const {
    if (Section == ImageSection::Text && HugeCount > 0) {
      if (Off < HugeCovered)
        return Off / Config.HugePageSize;
      return HugeCount + (Off - HugeCovered) / Config.PageSize;
    }
    return Off / Config.PageSize;
  }

  /// Byte size of page \p Page: HugePageSize inside the text huge region,
  /// PageSize everywhere else.
  uint32_t pageSizeBytes(ImageSection Section, uint64_t Page) const {
    return Section == ImageSection::Text && Page < HugeCount
               ? Config.HugePageSize
               : Config.PageSize;
  }

  /// First byte offset of page \p Page within its section.
  uint64_t pageStartOffset(ImageSection Section, uint64_t Page) const {
    if (Section == ImageSection::Text && HugeCount > 0) {
      if (Page < HugeCount)
        return Page * uint64_t(Config.HugePageSize);
      return HugeCovered + (Page - HugeCount) * uint64_t(Config.PageSize);
    }
    return Page * uint64_t(Config.PageSize);
  }

  /// The readahead cluster a fault of \p Page pulls in, as the half-open
  /// page-index range [\p Start, \p End). A huge page is its own cluster
  /// (readahead is a no-op inside the huge region); small-page clusters
  /// align relative to the end of the huge region, so with a zero budget
  /// this degenerates to the classic aligned cluster.
  void clusterRange(ImageSection Section, uint64_t Page, uint64_t &Start,
                    uint64_t &End) const {
    size_t Sec = size_t(Section);
    if (Section == ImageSection::Text && Page < HugeCount) {
      Start = Page;
      End = Page + 1;
      return;
    }
    uint64_t Base = Section == ImageSection::Text ? HugeCount : 0;
    uint64_t Rel = Page - Base;
    Start = Base + Rel / Config.ReadaheadPages * Config.ReadaheadPages;
    End = Start + Config.ReadaheadPages;
    if (End > Pages[Sec].size())
      End = Pages[Sec].size();
  }

  /// Effective huge-page count of the text section (the configured budget
  /// clamped to what the section covers).
  uint64_t hugeTextPages() const { return HugeCount; }

  uint64_t faults(ImageSection Section) const {
    return Faults[size_t(Section)];
  }
  uint64_t totalFaults() const { return Faults[0] + Faults[1]; }

  /// Pages currently resident via readahead that never faulted — the count
  /// of Fig. 6 red pages. A prefetched page evicted by dropCaches() leaves
  /// this count; if it later faults it is counted as a fault only, never
  /// both (historically this was a cumulative counter that double-counted
  /// such pages). The cumulative event count lives in
  /// counters().PrefetchEvents.
  uint64_t prefetchedPages() const { return Prefetched; }

  /// Pages currently resident (faulted or prefetched) in \p Section — the
  /// length of the intrusive resident list dropCaches() walks.
  uint64_t residentPages(ImageSection Section) const {
    return Resident[size_t(Section)];
  }

  /// Snapshot of the cumulative counters; subtract two snapshots to
  /// attribute activity to a phase.
  PagingCounters counters() const {
    return {Faults[0], Faults[1], TextColdFaults, TextHugeFaults,
            PrefetchEvents, EvictedPages};
  }
  /// Convenience: activity since \p Start (a prior counters() snapshot).
  PagingCounters deltaSince(const PagingCounters &Start) const {
    return counters() - Start;
  }

  const std::vector<PageState> &pageStates(ImageSection Section) const {
    return Pages[size_t(Section)];
  }

  const PagingConfig &config() const { return Config; }

private:
  /// Appends \p Page to the section's resident list (it must not be in
  /// it). O(1); state != Untouched is the membership invariant.
  void linkResident(size_t Sec, uint64_t Page) {
    Prev[Sec][size_t(Page)] = Tail[Sec];
    Next[Sec][size_t(Page)] = -1;
    if (Tail[Sec] != -1)
      Next[Sec][size_t(Tail[Sec])] = int64_t(Page);
    else
      Head[Sec] = int64_t(Page);
    Tail[Sec] = int64_t(Page);
    ++Resident[Sec];
  }

  PagingConfig Config;
  std::vector<PageState> Pages[2];
  /// Intrusive doubly-linked list of resident pages per section, in
  /// page-in order (insertion order ~ LRU: the simulator has no re-use
  /// promotion). Eviction walks exactly the residents instead of scanning
  /// every page of both sections.
  std::vector<int64_t> Next[2], Prev[2];
  int64_t Head[2] = {-1, -1}, Tail[2] = {-1, -1};
  uint64_t Resident[2] = {0, 0};
  uint64_t Faults[2] = {0, 0};
  uint64_t Prefetched = 0;
  uint64_t PrefetchEvents = 0;
  uint64_t EvictedPages = 0;
  uint64_t TextColdFaults = 0;
  uint64_t TextHugeFaults = 0;
  /// Effective huge-page region of the text section: HugeCount pages
  /// covering bytes [0, HugeCovered).
  uint64_t HugeCount = 0;
  uint64_t HugeCovered = 0;
  uint64_t ColdFirstPage = 0, ColdEndPage = 0; ///< Empty when equal.
  /// First-touch recording (fleet reference trace); inactive when null.
  std::vector<PageTouch> *TouchLog = nullptr;
  const uint64_t *Clock = nullptr;
  std::vector<bool> Touched[2];
};

} // namespace nimg

#endif // NIMG_RUNTIME_PAGING_H
