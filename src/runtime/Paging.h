//===- Paging.h - Page-cache and major-fault simulator ----------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the memory-mapped image file: the image's sections are
/// demand-paged; the first access to a non-resident page is a major fault
/// that reads a readahead cluster from the device. This is the metric
/// substrate of the whole evaluation: the paper counts page faults per
/// section with perf (Sec. 7.1) and its Fig. 6 classifies pages as
/// faulted (green), paged-in without fault (red), or untouched (black) —
/// exactly the three states tracked here.
///
/// dropCaches() models `echo 3 > /proc/sys/vm/drop_caches` between
/// benchmark iterations.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_PAGING_H
#define NIMG_RUNTIME_PAGING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nimg {

enum class ImageSection : uint8_t { Text = 0, HeapSec = 1 };

/// Per-page cache state, matching Fig. 6's color coding.
enum class PageState : uint8_t {
  Untouched,  ///< Black: not mapped.
  Faulted,    ///< Green: caused a major page fault.
  Prefetched, ///< Red: paged in by readahead, never faulted.
};

struct PagingConfig {
  uint32_t PageSize = 4096;
  /// Pages loaded per fault (aligned readahead cluster; models the
  /// kernel's ~16 KiB read-around for cold file-backed mappings).
  uint32_t ReadaheadPages = 4;
};

/// A monotonic snapshot of the simulator's cumulative counters. Take one
/// before and one after a phase and subtract to attribute faults to that
/// phase alone — no dropCaches() (and therefore no page-state side effects)
/// required.
struct PagingCounters {
  uint64_t TextFaults = 0;
  uint64_t HeapFaults = 0;
  /// Readahead page-ins, cumulative (counts every prefetch event, even for
  /// pages later evicted — unlike PagingSim::prefetchedPages()).
  uint64_t PrefetchEvents = 0;
  /// Pages evicted by dropCaches(), cumulative.
  uint64_t EvictedPages = 0;

  uint64_t totalFaults() const { return TextFaults + HeapFaults; }

  /// Per-phase delta (this = "after", \p Start = "before").
  PagingCounters operator-(const PagingCounters &Start) const {
    return {TextFaults - Start.TextFaults, HeapFaults - Start.HeapFaults,
            PrefetchEvents - Start.PrefetchEvents,
            EvictedPages - Start.EvictedPages};
  }
};

/// The page-cache simulator for one image file with two sections.
class PagingSim {
public:
  PagingSim(uint64_t TextSize, uint64_t HeapSize,
            const PagingConfig &Config = {});

  /// Touches [Off, Off+Len) within \p Section, faulting non-resident pages.
  void touch(ImageSection Section, uint64_t Off, uint64_t Len);

  /// Evicts everything (clean caches and reclaimable objects, Sec. 7.1).
  void dropCaches();

  uint64_t faults(ImageSection Section) const {
    return Faults[size_t(Section)];
  }
  uint64_t totalFaults() const { return Faults[0] + Faults[1]; }

  /// Pages currently resident via readahead that never faulted — the count
  /// of Fig. 6 red pages. A prefetched page evicted by dropCaches() leaves
  /// this count; if it later faults it is counted as a fault only, never
  /// both (historically this was a cumulative counter that double-counted
  /// such pages). The cumulative event count lives in
  /// counters().PrefetchEvents.
  uint64_t prefetchedPages() const { return Prefetched; }

  /// Snapshot of the cumulative counters; subtract two snapshots to
  /// attribute activity to a phase.
  PagingCounters counters() const {
    return {Faults[0], Faults[1], PrefetchEvents, EvictedPages};
  }
  /// Convenience: activity since \p Start (a prior counters() snapshot).
  PagingCounters deltaSince(const PagingCounters &Start) const {
    return counters() - Start;
  }

  const std::vector<PageState> &pageStates(ImageSection Section) const {
    return Pages[size_t(Section)];
  }

  const PagingConfig &config() const { return Config; }

private:
  PagingConfig Config;
  std::vector<PageState> Pages[2];
  uint64_t Faults[2] = {0, 0};
  uint64_t Prefetched = 0;
  uint64_t PrefetchEvents = 0;
  uint64_t EvictedPages = 0;
};

} // namespace nimg

#endif // NIMG_RUNTIME_PAGING_H
