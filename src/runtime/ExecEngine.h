//===- ExecEngine.h - Image execution engine --------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a built image: clones the image heap and statics, interprets the
/// program through the compilation-unit code model, drives the paging
/// simulator (cold page cache, Sec. 7.1), schedules cooperative threads
/// deterministically, and — for instrumented images — produces the
/// per-thread traces of Sec. 6.1.
///
/// The execution-time model mirrors the paper's measurement setup:
/// end-to-end time for AWFY-style runs; elapsed time until the first
/// response (followed by a simulated SIGKILL) for microservice runs.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_RUNTIME_EXECENGINE_H
#define NIMG_RUNTIME_EXECENGINE_H

#include "src/image/NativeImage.h"
#include "src/profiling/Trace.h"
#include "src/runtime/CostModel.h"
#include "src/runtime/Interpreter.h"
#include "src/runtime/Paging.h"

#include <string>

namespace nimg {

/// Maps invocations onto compilation units and inline copies; implements
/// guarded devirtualization semantics (an inlined virtual callee is used
/// only when the runtime target matches).
class CuCodeModel : public CodeModel {
public:
  explicit CuCodeModel(const CompiledProgram &CP) : CP(CP) {}

  ExecContext enterContext(const ExecContext &Caller, uint32_t SiteId,
                           MethodId Target) override {
    if (Caller.Cu >= 0) {
      const CompilationUnit &CU = CP.CUs[size_t(Caller.Cu)];
      int32_t Copy = CU.inlinedCopyFor(Caller.Copy, SiteId, Target);
      if (Copy >= 0)
        return {Caller.Cu, Copy};
    }
    return {CP.CuOfMethod[size_t(Target)], 0};
  }

private:
  const CompiledProgram &CP;
};

struct RunConfig {
  /// Cold page cache (caches dropped before the run, Sec. 7.1).
  bool ColdCache = true;
  uint64_t ThreadQuantum = 4000;
  uint64_t MaxInstructions = 400'000'000;
  /// Microservice mode: stop timing at the first Sys.respond and SIGKILL
  /// the workload (Sec. 7.1).
  bool StopAtFirstResponse = false;
  PagingConfig Paging;
  CostModel Cost;
  /// Non-null: run with tracing probes enabled (instrumented image).
  const TraceOptions *Trace = nullptr;
  /// Record the ordered first-touch page trace into RunStats::Touches
  /// (reference run for the fleet serving simulator). Touch clocks carry
  /// scheduling-quantum granularity (<= ThreadQuantum instructions).
  bool RecordTouches = false;
};

struct RunStats {
  uint64_t TextFaults = 0;
  uint64_t HeapFaults = 0;
  /// Text faults attributed to the cold tail (subset of TextFaults; 0 for
  /// unsplit images). Hot-side faults are TextFaults - TextColdFaults.
  uint64_t TextColdFaults = 0;
  /// Text faults served by a 2 MiB huge page of the image's front region
  /// (subset of TextFaults; 0 without --huge-pages). These are charged at
  /// the per-size majorFaultNs cost; small-page majors are
  /// totalFaults() - TextHugeFaults.
  uint64_t TextHugeFaults = 0;
  uint64_t Instructions = 0;
  uint64_t ProbeUnits = 0;
  uint64_t PrefetchedPages = 0;
  double TimeNs = 0;
  /// Valid when Responded: elapsed model time at the first response.
  double TimeToFirstResponseNs = 0;
  bool Responded = false;
  bool Trapped = false;
  bool FuelExhausted = false;
  std::string TrapMessage;
  std::string Output;
  /// Distinct stored snapshot objects touched (the paper's ~4 % claim).
  size_t StoredObjectsTouched = 0;
  size_t StoredObjectsTotal = 0;
  /// Page-state maps for the Fig. 6 visualization.
  std::vector<PageState> TextPages;
  std::vector<PageState> HeapPages;
  /// Sampled-mode capture accounting (all zero for instrumented runs).
  /// SamplesTaken counts emitted sample records; SampleEventsSkipped counts
  /// the method-enter/CU-enter transitions the sampler deliberately did
  /// not record (the events an instrumented capture would have paid for).
  uint64_t SamplesTaken = 0;
  uint64_t SampleEventsSkipped = 0;
  /// Distinct sampled CU roots per distinct entered CU root, in permille —
  /// the run-side coverage estimate stamped into sampled profile headers.
  uint32_t SampleCoveragePermille = 0;
  /// Effective period the sampler ran at (0 for instrumented runs).
  uint64_t SamplePeriod = 0;
  /// Ordered first-touch page trace (only when RunConfig::RecordTouches).
  std::vector<PageTouch> Touches;

  uint64_t totalFaults() const { return TextFaults + HeapFaults; }
};

/// Runs \p Img to completion (or first response). When \p Cfg.Trace is
/// set, \p TraceOut receives the captured per-thread traces.
RunStats runImage(const NativeImage &Img, const RunConfig &Cfg,
                  TraceCapture *TraceOut = nullptr);

} // namespace nimg

#endif // NIMG_RUNTIME_EXECENGINE_H
