//===- ExecEngine.cpp - Image execution engine ------------------------------===//

#include "src/runtime/ExecEngine.h"

#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"
#include "src/profiling/PathGraph.h"
#include "src/support/SplitMix64.h"

#include <unordered_set>

using namespace nimg;

namespace {

/// Cost-model units charged by the tracing probes, per operation kind.
/// Method-ordering instrumentation is the most expensive (it records every
/// method execution, Sec. 7.4: 1.83x on AWFY vs 1.36x for heap tracing and
/// 1.21x for cu tracing); heap tracing pays per recorded object access; cu
/// tracing only instruments CU entry points.
struct ProbeCosts {
  uint64_t EdgeUpdate = 1;
  uint64_t EnterExit = 2;
  uint64_t EmitRecord = 6;
  uint64_t Operand = 2;
  uint64_t CuEnter = 4;
  /// Sampled mode: the only charged cost — reading the interrupted PC and
  /// appending one sample record. Per-transition probes cost nothing
  /// because sampled binaries carry no instrumentation.
  uint64_t SampleRecord = 16;

  static ProbeCosts forMode(TraceMode Mode) {
    ProbeCosts C;
    if (Mode == TraceMode::MethodOrder) {
      // Method-entry signatures are recorded for every invocation,
      // including inlined ones; paths without events are still emitted.
      C.EnterExit = 8;
      C.EmitRecord = 12;
    }
    if (Mode == TraceMode::CuOrder)
      C.CuEnter = 8;
    return C;
  }
};

/// Combined paging + tracing hooks driven by the interpreter.
class EngineHooks : public RuntimeHooks {
public:
  EngineHooks(const NativeImage &Img, PagingSim &Paging, TraceWriter *Trace,
              PathGraphCache *Paths, TraceMode Mode)
      : Img(Img), Paging(Paging), Trace(Trace), Paths(Paths), Mode(Mode),
        Costs(ProbeCosts::forMode(Mode)),
        SplitActive(Img.Split.active() &&
                    !Img.Layout.CuColdOffsets.empty()) {}

  size_t storedObjectsTouched() const { return TouchedEntries.size(); }

  uint64_t samplesTaken() const { return Samples; }
  uint64_t sampleEventsSkipped() const { return SkippedEvents; }

  /// Distinct sampled CU roots per distinct entered root, in permille —
  /// the coverage estimate a sampled profile header is stamped with.
  uint32_t sampleCoveragePermille() const {
    if (EnteredRoots.empty())
      return 0;
    return uint32_t(SampledRoots.size() * 1000 / EnteredRoots.size());
  }

  /// Sampled mode: records one sample of whatever \p Tid is executing
  /// right now. A thread with no open frame (between methods, or already
  /// finished) yields no record — real samplers drop such ticks too.
  void takeSample(uint32_t Tid) {
    if (!Trace)
      return;
    // Drain the novelty buffer first: CU roots first entered since the
    // previous tick, in entry order — the model analog of an LBR-style
    // hardware buffer read out at the sampling interrupt. This is what
    // lets a periodic sampler see one-shot startup code whose whole
    // lifetime fits between two ticks: the entries cost nothing when they
    // happen (the production binary carries no probes); the records are
    // paid for here, once per *distinct* root, bounded by the CU count.
    for (const SampledFrame &F : PendingNewRoots) {
      Trace->append(Tid, tracerec::makeSample(F.M, F.Root));
      Trace->addProbeCost(Costs.SampleRecord);
      SampledRoots.insert(F.Root);
      ++Samples;
    }
    PendingNewRoots.clear();
    if (Tid >= SampleStacks.size() || SampleStacks[Tid].empty())
      return;
    const SampledFrame &F = SampleStacks[Tid].back();
    Trace->append(Tid, tracerec::makeSample(F.M, F.Root));
    Trace->addProbeCost(Costs.SampleRecord);
    SampledRoots.insert(F.Root);
    ++Samples;
  }

  void onMethodEnter(uint32_t Tid, const ExecContext &Ctx, MethodId M,
                     bool NewCu) override {
    if (Ctx.Cu >= 0) {
      const CompilationUnit &CU = Img.Code.CUs[size_t(Ctx.Cu)];
      const InlineCopy &Copy = CU.Copies[size_t(Ctx.Copy)];
      const CuSplit *S =
          SplitActive ? &Img.Split.PerCu[size_t(Ctx.Cu)] : nullptr;
      if (S && S->Split) {
        // Split CU: entering a copy touches only its hot fragment; cold
        // blocks fault individually from the cold tail if ever reached.
        const CopySplit &CS = S->Copies[size_t(Ctx.Copy)];
        Paging.touch(ImageSection::Text,
                     Img.Layout.CuOffsets[size_t(Ctx.Cu)] + CS.HotOffset,
                     CS.HotSize);
        if (!CS.Blocks.empty() && CS.Blocks[0].Cold)
          Paging.touch(ImageSection::Text,
                       Img.Layout.CuColdOffsets[size_t(Ctx.Cu)] +
                           CS.Blocks[0].Offset,
                       CS.Blocks[0].Size);
      } else {
        Paging.touch(ImageSection::Text,
                     Img.Layout.CuOffsets[size_t(Ctx.Cu)] + Copy.CodeOffset,
                     Copy.CodeSize);
      }
    }
    if (!Trace)
      return;
    ensureStack(Tid);
    if (Mode == TraceMode::Sampled) {
      // No record and no probe cost: the sampler only shadows what the
      // thread is executing so a sample tick can attribute itself, and
      // counts the transitions instrumentation would have recorded.
      ensureSampleStack(Tid);
      MethodId Root = Ctx.Cu >= 0 ? Img.Code.CUs[size_t(Ctx.Cu)].Root : M;
      SampleStacks[Tid].push_back({M, Root});
      if (NewCu && Ctx.Cu >= 0 && EnteredRoots.insert(Root).second)
        PendingNewRoots.push_back({M, Root});
      ++SkippedEvents;
      return;
    }
    if (Mode == TraceMode::CuOrder) {
      if (NewCu && Ctx.Cu >= 0) {
        Trace->append(Tid,
                      tracerec::makeCuEnter(Img.Code.CUs[size_t(Ctx.Cu)].Root));
        Trace->addProbeCost(Costs.CuEnter);
      }
      return;
    }
    const PathGraph &G = Paths->of(M);
    Stacks[Tid].push_back({&G, M, G.entryValue(), {}});
    Trace->addProbeCost(Costs.EnterExit);
  }

  void onMethodExit(uint32_t Tid, MethodId M, BlockId Block) override {
    if (Trace && Mode == TraceMode::Sampled) {
      if (Tid < SampleStacks.size() && !SampleStacks[Tid].empty() &&
          SampleStacks[Tid].back().M == M)
        SampleStacks[Tid].pop_back();
      ++SkippedEvents;
      return;
    }
    if (!Trace || Mode == TraceMode::CuOrder)
      return;
    FrameState *F = frameFor(Tid, M);
    if (!F)
      return; // Desynced trace stack: drop the event, not the process.
    emitPath(Tid, *F, F->PathVal + F->Graph->retEmitAdd(Block));
    Stacks[Tid].pop_back();
    Trace->addProbeCost(Costs.EnterExit);
  }

  void onCallSite(uint32_t Tid, MethodId Caller, uint32_t SiteId) override {
    if (!Trace || Mode == TraceMode::CuOrder || Mode == TraceMode::Sampled)
      return;
    FrameState *F = frameFor(Tid, Caller);
    if (!F)
      return;
    const PathEdgeAction &A = F->Graph->callAction(SiteId);
    assert(A.Cut && "call edges are always cut");
    emitPath(Tid, *F, F->PathVal + A.EmitAdd);
    F->PathVal = A.Reset;
  }

  void onBlockEdge(uint32_t Tid, const ExecContext &Ctx, MethodId M,
                   BlockId From, BlockId To) override {
    if (SplitActive && Ctx.Cu >= 0) {
      const CuSplit &S = Img.Split.PerCu[size_t(Ctx.Cu)];
      if (S.Split) {
        const CopySplit &CS = S.Copies[size_t(Ctx.Copy)];
        if (size_t(To) < CS.Blocks.size() && CS.Blocks[size_t(To)].Cold)
          Paging.touch(ImageSection::Text,
                       Img.Layout.CuColdOffsets[size_t(Ctx.Cu)] +
                           CS.Blocks[size_t(To)].Offset,
                       CS.Blocks[size_t(To)].Size);
      }
    }
    if (!Trace || Mode == TraceMode::CuOrder || Mode == TraceMode::Sampled)
      return;
    FrameState *F2 = frameFor(Tid, M);
    if (!F2)
      return;
    FrameState &F = *F2;
    const PathEdgeAction &A = F.Graph->branchAction(From, To);
    if (A.Cut) {
      emitPath(Tid, F, F.PathVal + A.EmitAdd);
      F.PathVal = A.Reset;
    } else {
      F.PathVal += A.Add;
    }
    Trace->addProbeCost(Costs.EdgeUpdate);
  }

  void onAccessSite(uint32_t Tid, MethodId M, uint32_t SiteId,
                    const CellIdx *Cells, uint16_t Count) override {
    (void)M;
    (void)SiteId;
    for (uint16_t I = 0; I < Count; ++I) {
      int32_t Entry = Cells[I] < 0 ? -1 : Img.Snapshot.entryOf(Cells[I]);
      uint64_t Off = Entry < 0 ? ImageLayout::NotStored
                               : Img.Layout.ObjectOffsets[size_t(Entry)];
      if (Off != ImageLayout::NotStored) {
        Paging.touch(ImageSection::HeapSec, Off,
                     Img.Snapshot.Entries[size_t(Entry)].SizeBytes);
        TouchedEntries.insert(Entry);
      }
      if (Trace && Mode == TraceMode::HeapOrder) {
        ensureStack(Tid);
        if (Stacks[Tid].empty())
          continue; // No open frame to attach the operand to; drop it.
        uint64_t Operand =
            Off != ImageLayout::NotStored ? uint64_t(Entry) + 1 : 0;
        Stacks[Tid].back().Operands.push_back(Operand);
        Trace->addProbeCost(Costs.Operand);
      }
    }
  }

  void onStaticAccess(uint32_t Tid, ClassId C, int32_t StaticIdx) override {
    (void)Tid;
    Paging.touch(ImageSection::HeapSec, Img.Layout.staticSlotOffset(C, StaticIdx),
                 8);
  }

  void onNativeCall(uint32_t Tid, NativeId N) override {
    (void)Tid;
    // Native code lives in the statically-linked tail of .text; each native
    // entry point touches its (deterministic) stub.
    uint64_t Stub = mix64(0x7a11, uint64_t(N)) %
                    (Img.Layout.NativeTailSize > 512
                         ? Img.Layout.NativeTailSize - 512
                         : 1);
    Paging.touch(ImageSection::Text, Img.Layout.NativeTailOffset + Stub, 256);
  }

private:
  struct FrameState {
    const PathGraph *Graph;
    MethodId M;
    uint64_t PathVal;
    std::vector<uint64_t> Operands;
  };

  /// What one thread frame looks like to the sampler: enough to attribute
  /// a tick to a method and its enclosing CU root.
  struct SampledFrame {
    MethodId M;
    MethodId Root;
  };

  void ensureStack(uint32_t Tid) {
    if (Tid >= Stacks.size())
      Stacks.resize(Tid + 1);
  }

  void ensureSampleStack(uint32_t Tid) {
    if (Tid >= SampleStacks.size())
      SampleStacks.resize(Tid + 1);
  }

  /// The top frame of \p Tid if it belongs to \p M, else nullptr. Hook
  /// sequences driven by external state can desync from the probe stack;
  /// trace events are best-effort observations, so a mismatched event is
  /// dropped instead of asserting.
  FrameState *frameFor(uint32_t Tid, MethodId M) {
    ensureStack(Tid);
    if (Stacks[Tid].empty() || Stacks[Tid].back().M != M)
      return nullptr;
    return &Stacks[Tid].back();
  }

  void emitPath(uint32_t Tid, FrameState &F, uint64_t PathId) {
    // Heap-ordering traces skip paths without operands — the analyses only
    // need object-access order (this is what keeps heap-tracing overhead
    // below method-tracing overhead).
    if (Mode == TraceMode::HeapOrder && F.Operands.empty())
      return;
    Trace->append(Tid, tracerec::makePath(F.M, PathId));
    Trace->addProbeCost(Costs.EmitRecord);
    for (uint64_t Op : F.Operands)
      Trace->append(Tid, Op);
    F.Operands.clear();
  }

  const NativeImage &Img;
  PagingSim &Paging;
  TraceWriter *Trace;
  PathGraphCache *Paths;
  TraceMode Mode;
  ProbeCosts Costs;
  bool SplitActive;
  std::vector<std::vector<FrameState>> Stacks;
  std::unordered_set<int32_t> TouchedEntries;
  // Sampled-mode shadow state (simulator-side only; costs nothing in the
  // time model — a real sampler walks the interrupted stack instead).
  std::vector<std::vector<SampledFrame>> SampleStacks;
  std::unordered_set<MethodId> EnteredRoots;
  std::unordered_set<MethodId> SampledRoots;
  /// Roots first entered since the last tick (with the entering method),
  /// in entry order, drained by takeSample(). Entries after the final
  /// tick are lost, as in a real sampler.
  std::vector<SampledFrame> PendingNewRoots;
  uint64_t Samples = 0;
  uint64_t SkippedEvents = 0;
};

} // namespace

RunStats nimg::runImage(const NativeImage &Img, const RunConfig &Cfg,
                        TraceCapture *TraceOut) {
  assert(Img.P && "image without a program");
  Program &P = *Img.P;
  RunStats Stats;

  NIMG_SPAN_NAMED(RunSpan, "pipeline", "runImage");
  NIMG_SPAN_ARG(RunSpan, "cold_cache", Cfg.ColdCache ? "true" : "false");
  NIMG_SPAN_ARG(RunSpan, "traced", Cfg.Trace ? "true" : "false");
  NIMG_COUNTER_ADD("nimg.run.count", 1);

  // The run executes on a private copy of the image heap and statics: the
  // mapped image is copy-on-write per process.
  Heap RunHeap(*Img.Built.BuildHeap);

  // The image's --huge-pages budget configures the front-of-.text huge
  // region; a caller-supplied HugeTextPages (FleetSim reruns) wins.
  PagingConfig PCfg = Cfg.Paging;
  if (PCfg.HugeTextPages == 0)
    PCfg.HugeTextPages = Img.Layout.HugePages;
  PagingSim Paging(Img.Layout.TextSize, Img.Layout.HeapSize, PCfg);
  // Fleet reference trace: the clock cell is refreshed once per scheduling
  // quantum below, so recorded touch clocks carry quantum granularity.
  uint64_t TouchClock = 0;
  if (Cfg.RecordTouches)
    Paging.recordTouches(&Stats.Touches, &TouchClock);
  if (Img.Split.active() && Img.Layout.ColdTailSize > 0)
    Paging.setTextColdRegion(Img.Layout.ColdTailOffset,
                             Img.Layout.ColdTailSize);
  if (!Cfg.ColdCache) {
    // Warm cache: pre-fault everything so no majors are charged.
    Paging.touch(ImageSection::Text, 0, Img.Layout.TextSize);
    Paging.touch(ImageSection::HeapSec, 0, Img.Layout.HeapSize);
  }
  uint64_t WarmFaultsText = Paging.faults(ImageSection::Text);
  uint64_t WarmFaultsHeap = Paging.faults(ImageSection::HeapSec);
  uint64_t WarmFaultsCold = Paging.counters().TextColdFaults;
  uint64_t WarmFaultsHuge = Paging.counters().TextHugeFaults;

  TraceWriter Writer(Cfg.Trace ? *Cfg.Trace : TraceOptions{});
  PathGraphCache Paths(P);
  EngineHooks Hooks(Img, Paging, Cfg.Trace ? &Writer : nullptr, &Paths,
                    Cfg.Trace ? Cfg.Trace->Mode : TraceMode::CuOrder);
  CuCodeModel Code(Img.Code);

  InterpConfig ICfg;
  ICfg.RunClinits = false;
  ICfg.MaxInstructions = Cfg.MaxInstructions;
  Interpreter I(P, RunHeap, ICfg);
  I.markAllClinitsDone();
  // Statics from the image; sizes can differ when builtin classes were
  // registered after the snapshot, so copy row-wise.
  for (size_t C = 0; C < Img.Built.Statics.size() && C < I.statics().size();
       ++C)
    I.statics()[C] = Img.Built.Statics[C];
  I.setResources(&Img.Built.ResourceCells);
  I.setCodeModel(&Code);
  I.setHooks(&Hooks);

  bool Killed = false;
  I.OnSpawn = [&](MethodId M) { I.spawnThread(M, {}); };
  I.OnRespond = [&](uint32_t, const std::string &) {
    if (Stats.Responded)
      return;
    Stats.Responded = true;
    uint64_t Faults = Paging.totalFaults() - WarmFaultsText - WarmFaultsHeap;
    uint64_t Huge = Paging.counters().TextHugeFaults - WarmFaultsHuge;
    Stats.TimeToFirstResponseNs =
        Cfg.Cost.startupNs(I.instructionsExecuted(), Writer.probeUnits(),
                           Faults - Huge, Huge, PCfg.HugePageSize);
    if (Cfg.StopAtFirstResponse)
      Killed = true; // SIGKILL: stop scheduling, lose unflushed buffers.
  };

  // Sampled captures are driven by the global model clock: scheduling
  // quanta are clamped so no step crosses a sample boundary, and the tick
  // is attributed to the thread that was running when the clock hit it —
  // the same answer at any worker count, since the interpreter itself is
  // sequential and deterministic.
  bool Sampling = Cfg.Trace && Cfg.Trace->Mode == TraceMode::Sampled;
  uint64_t SamplePeriod = 0, NextSampleAt = 0;
  if (Sampling) {
    SamplePeriod = Cfg.Trace->SamplePeriod ? Cfg.Trace->SamplePeriod
                                           : TraceOptions::DefaultSamplePeriod;
    NextSampleAt = Cfg.Trace->SamplePhase + SamplePeriod;
  }

  // Root thread runs main. Deterministic round-robin scheduling.
  I.spawnThread(P.MainMethod, {});
  bool Progress = true;
  while (Progress && !Killed) {
    Progress = false;
    size_t NumThreads = I.numThreads();
    for (uint32_t Tid = 0; Tid < NumThreads && !Killed; ++Tid) {
      if (I.threadFinished(Tid))
        continue;
      TouchClock = I.instructionsExecuted();
      uint64_t Quantum = Cfg.ThreadQuantum;
      if (Sampling) {
        uint64_t Clock = I.instructionsExecuted();
        if (NextSampleAt > Clock && NextSampleAt - Clock < Quantum)
          Quantum = NextSampleAt - Clock;
      }
      uint64_t Ran = I.step(Tid, Quantum);
      if (Sampling && Ran > 0) {
        while (I.instructionsExecuted() >= NextSampleAt) {
          Hooks.takeSample(Tid);
          NextSampleAt += SamplePeriod;
        }
      }
      if (Ran > 0)
        Progress = true;
      if (I.threadTrapped(Tid)) {
        Stats.Trapped = true;
        Stats.TrapMessage = I.trapMessage(Tid);
        Progress = false;
        break;
      }
    }
    if (I.fuelExhausted()) {
      Stats.FuelExhausted = true;
      break;
    }
  }

  if (Cfg.Trace) {
    if (Killed)
      Writer.killAll();
    else
      Writer.flushAll();
    if (TraceOut)
      *TraceOut = Writer.take();
  }

  Stats.TextFaults = Paging.faults(ImageSection::Text) - WarmFaultsText;
  Stats.HeapFaults = Paging.faults(ImageSection::HeapSec) - WarmFaultsHeap;
  Stats.TextColdFaults = Paging.counters().TextColdFaults - WarmFaultsCold;
  Stats.TextHugeFaults = Paging.counters().TextHugeFaults - WarmFaultsHuge;
  Stats.Instructions = I.instructionsExecuted();
  Stats.ProbeUnits = Writer.probeUnits();
  Stats.PrefetchedPages = Paging.prefetchedPages();
  Stats.Output = I.output();
  Stats.StoredObjectsTouched = Hooks.storedObjectsTouched();
  Stats.StoredObjectsTotal = Img.Snapshot.numStored();
  Stats.TextPages = Paging.pageStates(ImageSection::Text);
  Stats.HeapPages = Paging.pageStates(ImageSection::HeapSec);
  if (Sampling) {
    Stats.SamplesTaken = Hooks.samplesTaken();
    Stats.SampleEventsSkipped = Hooks.sampleEventsSkipped();
    Stats.SampleCoveragePermille = Hooks.sampleCoveragePermille();
    Stats.SamplePeriod = SamplePeriod;
  }
  Stats.TimeNs = Cfg.Cost.startupNs(
      Stats.Instructions, Stats.ProbeUnits,
      Stats.totalFaults() - Stats.TextHugeFaults, Stats.TextHugeFaults,
      PCfg.HugePageSize);

  if (Img.Split.active()) {
    NIMG_COUNTER_ADD("nimg.split.faults.cold", Stats.TextColdFaults);
    NIMG_COUNTER_ADD("nimg.split.faults.hot",
                     Stats.TextFaults - Stats.TextColdFaults);
  }
  if (Sampling) {
    NIMG_COUNTER_ADD("nimg.sample.runs", 1);
    NIMG_COUNTER_ADD("nimg.sample.taken", Stats.SamplesTaken);
    NIMG_COUNTER_ADD("nimg.sample.skipped_events", Stats.SampleEventsSkipped);
    NIMG_HIST_RECORD("nimg.sample.coverage_permille",
                     Stats.SampleCoveragePermille);
  }
  NIMG_HIST_RECORD("nimg.run.faults.total", Stats.totalFaults());
  NIMG_HIST_RECORD("nimg.run.instructions", Stats.Instructions);
  if (Stats.ProbeUnits)
    NIMG_HIST_RECORD("nimg.run.probe_units", Stats.ProbeUnits);
  if (Stats.Trapped)
    NIMG_COUNTER_ADD("nimg.run.trapped", 1);
  if (Stats.FuelExhausted)
    NIMG_COUNTER_ADD("nimg.run.fuel_exhausted", 1);
  if (Stats.Responded)
    NIMG_COUNTER_ADD("nimg.run.responded", 1);
  return Stats;
}
