//===- Heap.h - Runtime values and heap cells -------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged runtime values and the heap used both at build time (to execute
/// static initializers and snapshot the resulting object graph, Sec. 2
/// "Heap Snapshotting") and at run time (the image heap plus runtime
/// allocations). Cells carry a snapshot index: cells with a nonnegative
/// index live in the image's .svm_heap section and their first access
/// faults pages; cells with index -1 are runtime-allocated (RAM only).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_HEAP_HEAP_H
#define NIMG_HEAP_HEAP_H

#include "src/ir/Program.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace nimg {

using CellIdx = int32_t;

enum class ValueKind : uint8_t { Null, Int, Double, Bool, Ref };

/// A tagged runtime value. Strings are heap cells, so references cover
/// objects, arrays, and strings uniformly.
struct Value {
  ValueKind Kind = ValueKind::Null;
  union {
    int64_t I;
    double D;
    CellIdx Ref;
  };

  Value() : I(0) {}

  static Value makeNull() { return Value(); }
  static Value makeInt(int64_t V) {
    Value R;
    R.Kind = ValueKind::Int;
    R.I = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.Kind = ValueKind::Double;
    R.D = V;
    return R;
  }
  static Value makeBool(bool V) {
    Value R;
    R.Kind = ValueKind::Bool;
    R.I = V ? 1 : 0;
    return R;
  }
  static Value makeRef(CellIdx C) {
    Value R;
    R.Kind = ValueKind::Ref;
    R.Ref = C;
    return R;
  }

  bool isNull() const { return Kind == ValueKind::Null; }
  bool isRef() const { return Kind == ValueKind::Ref; }
  int64_t asInt() const {
    assert(Kind == ValueKind::Int && "value is not an int");
    return I;
  }
  double asDouble() const {
    assert(Kind == ValueKind::Double && "value is not a double");
    return D;
  }
  bool asBool() const {
    assert(Kind == ValueKind::Bool && "value is not a bool");
    return I != 0;
  }
  CellIdx asRef() const {
    assert(Kind == ValueKind::Ref && "value is not a reference");
    return Ref;
  }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case ValueKind::Null:
      return true;
    case ValueKind::Double:
      return A.D == B.D;
    default:
      return A.I == B.I;
    }
  }
};

enum class CellKind : uint8_t { Object, Array, String };

/// One heap cell: an object (fields), an array (elements), or a string.
struct HeapCell {
  CellKind Kind = CellKind::Object;
  ClassId Class = -1;      ///< For objects: the dynamic class.
  TypeId ArrayType = -1;   ///< For arrays: the array type (element derivable).
  std::vector<Value> Slots; ///< Fields (layout order) or elements.
  std::string Str;          ///< For strings.
  /// Position in the image heap snapshot; -1 when runtime-allocated or
  /// elided from the snapshot by the PEA-style pass (Sec. 2 "Heap
  /// Snapshotting": stack-allocated / constant-folded objects).
  int32_t SnapshotIndex = -1;
};

/// The heap: an append-only cell store plus a string intern table.
class Heap {
public:
  explicit Heap(Program &P) : Prog(P) {}

  /// Allocates an object of class \p C with zero-initialized fields.
  CellIdx allocObject(ClassId C);
  /// Allocates an array of \p Len elements of array type \p ArrayTy.
  CellIdx allocArray(TypeId ArrayTy, int64_t Len);
  /// Allocates a (non-interned) string cell.
  CellIdx allocString(std::string S);
  /// Returns the interned cell for \p S, allocating it on first use.
  /// Interned strings become InternedString heap roots (Sec. 5.3).
  CellIdx internString(const std::string &S);
  /// Returns true if \p C is an interned string cell.
  bool isInterned(CellIdx C) const;
  /// Registers an existing string cell as the interned instance for its
  /// contents. Used when deserializing a heap; the first registration for
  /// a given content wins.
  void registerInterned(CellIdx C) {
    assert(cell(C).Kind == CellKind::String && "interning a non-string");
    InternTable.emplace(cell(C).Str, C);
  }

  HeapCell &cell(CellIdx C) {
    assert(C >= 0 && size_t(C) < Cells.size() && "invalid cell index");
    return Cells[size_t(C)];
  }
  const HeapCell &cell(CellIdx C) const {
    assert(C >= 0 && size_t(C) < Cells.size() && "invalid cell index");
    return Cells[size_t(C)];
  }
  size_t numCells() const { return Cells.size(); }

  Program &program() { return Prog; }
  const Program &program() const { return Prog; }

  /// Returns the modeled size in bytes of \p C in the image heap:
  /// a 16-byte header plus 8 bytes per slot; strings round their bytes up
  /// to 8.
  uint32_t cellSizeBytes(CellIdx C) const;

  /// Returns the fully qualified type name of the value in \p C
  /// ("som.Vector", "int[]", "String").
  const std::string &cellTypeName(CellIdx C) const;

  /// Returns the zero value for a declared type.
  static Value zeroValue(const TypeInfo &T);

private:
  Program &Prog;
  std::vector<HeapCell> Cells;
  std::unordered_map<std::string, CellIdx> InternTable;
};

} // namespace nimg

#endif // NIMG_HEAP_HEAP_H
