//===- Heap.cpp - Runtime values and heap cells ----------------------------===//

#include "src/heap/Heap.h"

using namespace nimg;

Value Heap::zeroValue(const TypeInfo &T) {
  switch (T.Kind) {
  case TypeKind::Int:
    return Value::makeInt(0);
  case TypeKind::Double:
    return Value::makeDouble(0.0);
  case TypeKind::Bool:
    return Value::makeBool(false);
  default:
    return Value::makeNull();
  }
}

CellIdx Heap::allocObject(ClassId C) {
  assert(!Prog.classDef(C).IsAbstract && "allocating an abstract class");
  HeapCell Cell;
  Cell.Kind = CellKind::Object;
  Cell.Class = C;
  const std::vector<Field> &L = Prog.layout(C);
  Cell.Slots.reserve(L.size());
  for (const Field &F : L)
    Cell.Slots.push_back(zeroValue(Prog.type(F.Type)));
  Cells.push_back(std::move(Cell));
  return CellIdx(Cells.size() - 1);
}

CellIdx Heap::allocArray(TypeId ArrayTy, int64_t Len) {
  assert(Len >= 0 && "negative array length");
  const TypeInfo &T = Prog.type(ArrayTy);
  assert(T.Kind == TypeKind::Array && "allocArray with non-array type");
  HeapCell Cell;
  Cell.Kind = CellKind::Array;
  Cell.ArrayType = ArrayTy;
  Cell.Slots.assign(size_t(Len), zeroValue(Prog.type(T.Elem)));
  Cells.push_back(std::move(Cell));
  return CellIdx(Cells.size() - 1);
}

CellIdx Heap::allocString(std::string S) {
  HeapCell Cell;
  Cell.Kind = CellKind::String;
  Cell.Str = std::move(S);
  Cells.push_back(std::move(Cell));
  return CellIdx(Cells.size() - 1);
}

CellIdx Heap::internString(const std::string &S) {
  auto It = InternTable.find(S);
  if (It != InternTable.end())
    return It->second;
  CellIdx C = allocString(S);
  InternTable.emplace(S, C);
  return C;
}

bool Heap::isInterned(CellIdx C) const {
  const HeapCell &Cell = cell(C);
  if (Cell.Kind != CellKind::String)
    return false;
  auto It = InternTable.find(Cell.Str);
  return It != InternTable.end() && It->second == C;
}

uint32_t Heap::cellSizeBytes(CellIdx C) const {
  const HeapCell &Cell = cell(C);
  if (Cell.Kind == CellKind::String) {
    uint32_t Bytes = uint32_t(Cell.Str.size());
    return 24 + ((Bytes + 7) & ~7u);
  }
  return 16 + 8 * uint32_t(Cell.Slots.size());
}

const std::string &Heap::cellTypeName(CellIdx C) const {
  const HeapCell &Cell = cell(C);
  switch (Cell.Kind) {
  case CellKind::Object:
    return Prog.classDef(Cell.Class).Name;
  case CellKind::Array:
    return Prog.typeName(Cell.ArrayType);
  case CellKind::String:
    return Prog.typeName(Prog.stringType());
  }
  // Unreachable; keep the compiler satisfied.
  return Prog.typeName(Prog.stringType());
}
