//===- BuildHeap.cpp - Build-time heap initialization ----------------------===//

#include "src/heap/BuildHeap.h"

#include "src/runtime/Interpreter.h"
#include "src/support/SplitMix64.h"

using namespace nimg;

ClassId nimg::ensureClassMetaClass(Program &P) {
  ClassId C = P.findClass("Class");
  if (C != -1)
    return C;
  C = P.addClass("Class");
  ClassDef &Def = P.classDef(C);
  Def.InstanceFields.push_back({"name", P.stringType(), C, true});
  Def.InstanceFields.push_back({"id", P.intType(), C, true});
  Def.InstanceFields.push_back({"initSeq", P.intType(), C, true});
  return C;
}

BuildHeapResult nimg::initializeBuildHeap(Program &P,
                                          const ReachabilityResult &Reach,
                                          uint64_t Seed) {
  BuildHeapResult R;
  R.BuildHeap = std::make_unique<Heap>(P);
  Heap &H = *R.BuildHeap;

  InterpConfig Cfg;
  Cfg.RunClinits = true;
  Interpreter I(P, H, Cfg);

  // Permuted proactive initialization: the shuffle models the scheduling
  // nondeterminism of parallel class initialization. Lazy triggering inside
  // the interpreter still guarantees dependency order, so results are
  // semantically consistent; only completion order (and thus initSeq)
  // varies.
  std::vector<ClassId> Order = Reach.buildTimeInitClasses(P);
  SplitMix64 Rng(Seed ^ 0xc1a55e5ULL);
  Rng.shuffle(Order);

  for (ClassId C : Order) {
    if (I.clinitState(C) != ClinitState::NotRun)
      continue;
    uint32_t Tid = I.newBareThread();
    I.requestClinit(Tid, C);
    while (!I.threadFinished(Tid)) {
      I.step(Tid, 1'000'000);
      if (I.fuelExhausted()) {
        R.Failed = true;
        R.FailureMessage = "static initializer fuel exhausted for class " +
                           P.classDef(C).Name;
        return R;
      }
    }
    if (I.threadTrapped(Tid)) {
      R.Failed = true;
      R.FailureMessage = "static initializer trapped: " + I.trapMessage(Tid);
      return R;
    }
  }

  // Intern every string literal referenced from reachable code: the image
  // embeds constant pointers to them, so they must exist in the build heap
  // even when no initializer executed the referencing instruction.
  for (size_t M = 0; M < P.numMethods(); ++M) {
    if (!Reach.ReachableMethods[M])
      continue;
    for (const BasicBlock &BB : P.method(MethodId(M)).Blocks)
      for (const Instr &In : BB.Instrs)
        if (In.Op == Opcode::ConstString)
          H.internString(P.string(In.Aux));
  }

  // Class metadata objects, stamped with the initialization sequence.
  ClassId MetaClass = ensureClassMetaClass(P);
  std::vector<int64_t> InitSeq(P.numClasses(), -1);
  for (size_t K = 0; K < I.initializationOrder().size(); ++K)
    InitSeq[size_t(I.initializationOrder()[K])] = int64_t(K);
  R.ClassMetaCells.assign(P.numClasses(), -1);
  for (size_t C = 0; C < P.numClasses(); ++C) {
    if (size_t(C) < Reach.ReachableClasses.size() &&
        !Reach.ReachableClasses[C])
      continue;
    // Intern the name before taking a cell reference: interning may grow
    // the cell store and invalidate references.
    CellIdx NameCell = H.internString(P.classDef(ClassId(C)).Name);
    CellIdx Cell = H.allocObject(MetaClass);
    HeapCell &Meta = H.cell(Cell);
    Meta.Slots[0] = Value::makeRef(NameCell);
    Meta.Slots[1] = Value::makeInt(int64_t(C));
    Meta.Slots[2] = Value::makeInt(InitSeq[C]);
    R.ClassMetaCells[C] = Cell;
  }

  // Resources embedded in the image.
  for (const auto &[Name, Contents] : P.Resources)
    R.ResourceCells.emplace(Name, H.allocString(Contents));

  R.Statics = I.statics();
  R.InitOrder = I.initializationOrder();
  R.BuildOutput = I.output();
  return R;
}
