//===- Snapshot.h - Heap-snapshot construction ------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the heap snapshot stored in the image's .svm_heap section by
/// traversing the build heap "in a well-defined order, starting from the
/// required static fields of the reachable classes, as well as constants in
/// the code section" (Sec. 2). Each object records its heap-inclusion
/// reason and the first path that reached it — the inputs of the heap-path
/// identity strategy (Sec. 5.3, Alg. 3).
///
/// A PEA-style pass elides eligible objects from the snapshot: in the real
/// system, different inlining enables partial escape analysis to
/// scalar-replace or constant-fold objects so they need not be stored
/// (Sec. 2). Elision decisions key off the build's inline fingerprint, so
/// the instrumented and optimized snapshots legitimately differ — the
/// object-matching problem the paper's Sec. 5 exists to solve.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_HEAP_SNAPSHOT_H
#define NIMG_HEAP_SNAPSHOT_H

#include "src/compiler/Inliner.h"
#include "src/heap/BuildHeap.h"
#include "src/heap/Heap.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace nimg {

/// Why a root object was included in the heap snapshot (Sec. 5.3 lists
/// exactly these five reasons).
enum class InclusionReasonKind : uint8_t {
  StaticField,    ///< Stored in a static field of a reachable class.
  Method,         ///< Referenced by a constant pointer embedded in a method.
  InternedString, ///< A Java-style interned string.
  DataSection,    ///< Stored in the data section (class metadata).
  Resource,       ///< An embedded resource.
};

struct InclusionReason {
  InclusionReasonKind Kind = InclusionReasonKind::DataSection;
  std::string Detail; ///< Field/method signature or resource name.

  /// Renders the reason as the string Alg. 3 hashes.
  std::string str() const;
};

/// One object in the snapshot traversal.
struct SnapshotEntry {
  CellIdx Cell = -1;
  uint32_t SizeBytes = 0;
  bool IsRoot = false;
  InclusionReason Reason; ///< Valid when IsRoot.
  /// First path that reached the object (BFS parent); -1 for roots.
  int32_t ParentEntry = -1;
  /// Slot in the parent through which this object was first reached:
  /// a field layout index (object parent) or element index (array parent).
  int32_t ParentSlot = -1;
  /// True when the PEA-style pass removed the object from the stored
  /// snapshot (it is materialized at run time instead and costs no I/O).
  bool Elided = false;
};

struct HeapSnapshot {
  /// Entries in traversal (default placement) order.
  std::vector<SnapshotEntry> Entries;
  /// Cell -> entry index.
  std::unordered_map<CellIdx, int32_t> EntryOfCell;

  int32_t entryOf(CellIdx Cell) const {
    auto It = EntryOfCell.find(Cell);
    return It == EntryOfCell.end() ? -1 : It->second;
  }
  size_t numStored() const;
  uint64_t storedBytes() const;
};

struct SnapshotConfig {
  bool EnablePea = true;
  /// Seeds elision decisions; derived from the build's inline fingerprint
  /// and build seed so snapshots differ across builds.
  uint64_t PeaFingerprint = 0;
  /// Elide roughly one in PeaRate eligible objects.
  uint32_t PeaRate = 4;
  /// Placement order of CUs in .text (indices into CompiledProgram::CUs);
  /// empty means the default order. The traversal enumerates code-constant
  /// roots in this order, because "objects are ordered according to the
  /// order of the CUs in the .text section" (Sec. 2).
  std::vector<int32_t> CuOrder;
};

/// Traverses the build heap and produces the snapshot. Root enumeration
/// order: (1) constants embedded in compiled code, per CU in .text order,
/// (2) static reference fields of reachable classes, (3) class metadata,
/// (4) resources. Objects reachable from earlier CUs therefore precede
/// objects of later CUs, matching the paper's default object order.
HeapSnapshot buildSnapshot(const Program &P, Heap &H,
                           const BuildHeapResult &Built,
                           const CompiledProgram &CP,
                           const ReachabilityResult &Reach,
                           const SnapshotConfig &Config);

} // namespace nimg

#endif // NIMG_HEAP_SNAPSHOT_H
