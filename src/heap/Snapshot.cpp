//===- Snapshot.cpp - Heap-snapshot construction ----------------------------===//

#include "src/heap/Snapshot.h"

#include "src/support/ByteBuffer.h"
#include "src/support/Murmur3.h"
#include "src/support/SplitMix64.h"

#include <deque>

using namespace nimg;

std::string InclusionReason::str() const {
  switch (Kind) {
  case InclusionReasonKind::StaticField:
    return "StaticField:" + Detail;
  case InclusionReasonKind::Method:
    return "Method:" + Detail;
  case InclusionReasonKind::InternedString:
    return "InternedString";
  case InclusionReasonKind::DataSection:
    return "DataSection";
  case InclusionReasonKind::Resource:
    return "Resource:" + Detail;
  }
  return "?";
}

size_t HeapSnapshot::numStored() const {
  size_t N = 0;
  for (const SnapshotEntry &E : Entries)
    N += !E.Elided;
  return N;
}

uint64_t HeapSnapshot::storedBytes() const {
  uint64_t N = 0;
  for (const SnapshotEntry &E : Entries)
    if (!E.Elided)
      N += E.SizeBytes;
  return N;
}

namespace {

class SnapshotBuilder {
public:
  SnapshotBuilder(const Program &P, Heap &H, const BuildHeapResult &Built,
                  const CompiledProgram &CP, const ReachabilityResult &Reach,
                  const SnapshotConfig &Config)
      : P(P), H(H), Built(Built), CP(CP), Reach(Reach), Config(Config) {
    MetaClass = P.findClass("Class");
  }

  HeapSnapshot run() {
    enumerateCodeConstantRoots();
    enumerateStaticFieldRoots();
    enumerateClassMetadataRoots();
    enumerateResourceRoots();
    return std::move(Snap);
  }

private:
  // --- Root enumeration ------------------------------------------------------

  void enumerateCodeConstantRoots() {
    std::vector<int32_t> Order = Config.CuOrder;
    if (Order.empty())
      for (size_t I = 0; I < CP.CUs.size(); ++I)
        Order.push_back(int32_t(I));
    for (int32_t CuIdx : Order) {
      const CompilationUnit &CU = CP.CUs[size_t(CuIdx)];
      const std::string &RootSig = P.method(CU.Root).Sig;
      for (const InlineCopy &Copy : CU.Copies) {
        const Method &Meth = P.method(Copy.Method);
        for (const BasicBlock &BB : Meth.Blocks) {
          for (const Instr &In : BB.Instrs) {
            if (In.Op == Opcode::ConstString) {
              CellIdx Cell = H.internString(P.string(In.Aux));
              addRoot(Cell, {InclusionReasonKind::InternedString, ""});
            } else if (In.Op == Opcode::NewObject) {
              // Allocation embeds a constant pointer to the class metadata.
              CellIdx Meta = Built.ClassMetaCells[size_t(In.Aux)];
              if (Meta != -1)
                addRoot(Meta, {InclusionReasonKind::Method, RootSig});
            }
          }
        }
      }
    }
  }

  void enumerateStaticFieldRoots() {
    for (size_t C = 0; C < P.numClasses(); ++C) {
      if (C < Reach.ReachableClasses.size() && !Reach.ReachableClasses[C])
        continue;
      if (size_t(C) >= Built.Statics.size())
        continue;
      const ClassDef &Def = P.classDef(ClassId(C));
      for (size_t F = 0; F < Def.StaticFields.size(); ++F) {
        const Value &V = Built.Statics[C][F];
        if (!V.isRef())
          continue;
        addRoot(V.asRef(), {InclusionReasonKind::StaticField,
                            Def.Name + "." + Def.StaticFields[F].Name});
      }
    }
  }

  void enumerateClassMetadataRoots() {
    for (size_t C = 0; C < Built.ClassMetaCells.size(); ++C)
      if (Built.ClassMetaCells[C] != -1)
        addRoot(Built.ClassMetaCells[C],
                {InclusionReasonKind::DataSection, ""});
  }

  void enumerateResourceRoots() {
    // Deterministic order: as declared on the program.
    for (const auto &[Name, Contents] : P.Resources) {
      (void)Contents;
      auto It = Built.ResourceCells.find(Name);
      if (It != Built.ResourceCells.end())
        addRoot(It->second, {InclusionReasonKind::Resource, Name});
    }
  }

  // --- Traversal ----------------------------------------------------------------

  void addRoot(CellIdx Cell, InclusionReason Reason) {
    if (Snap.EntryOfCell.count(Cell))
      return; // First inclusion reason wins.
    int32_t Entry = addEntry(Cell, /*IsRoot=*/true, std::move(Reason), -1, -1);
    traverseFrom(Entry);
  }

  int32_t addEntry(CellIdx Cell, bool IsRoot, InclusionReason Reason,
                   int32_t ParentEntry, int32_t ParentSlot) {
    SnapshotEntry E;
    E.Cell = Cell;
    E.SizeBytes = H.cellSizeBytes(Cell);
    E.IsRoot = IsRoot;
    E.Reason = std::move(Reason);
    E.ParentEntry = ParentEntry;
    E.ParentSlot = ParentSlot;
    E.Elided = shouldElide(Cell);
    int32_t Idx = int32_t(Snap.Entries.size());
    Snap.Entries.push_back(std::move(E));
    Snap.EntryOfCell.emplace(Cell, Idx);
    return Idx;
  }

  void traverseFrom(int32_t RootEntry) {
    std::deque<int32_t> Queue{RootEntry};
    while (!Queue.empty()) {
      int32_t EntryIdx = Queue.front();
      Queue.pop_front();
      CellIdx Cell = Snap.Entries[size_t(EntryIdx)].Cell;
      const HeapCell &C = H.cell(Cell);
      if (C.Kind == CellKind::String)
        continue;
      for (size_t Slot = 0; Slot < C.Slots.size(); ++Slot) {
        const Value &V = C.Slots[Slot];
        if (!V.isRef())
          continue;
        CellIdx Child = V.asRef();
        if (Snap.EntryOfCell.count(Child))
          continue;
        // Elided objects are rematerialized at run time, but whatever they
        // reference must still live in the image (real PEA keeps the
        // referenced constants); traverse through them so elision changes
        // only the elided object's own type population, not — e.g. — the
        // String population (Alg. 1's per-type counters are the point).
        int32_t ChildEntry = addEntry(Child, /*IsRoot=*/false, {}, EntryIdx,
                                      int32_t(Slot));
        Queue.push_back(ChildEntry);
      }
    }
  }

  // --- PEA-style elision ------------------------------------------------------

  bool shouldElide(CellIdx Cell) {
    if (!Config.EnablePea)
      return false;
    const HeapCell &C = H.cell(Cell);
    if (C.Kind != CellKind::Object || C.Class == MetaClass)
      return false;
    if (C.Slots.size() > 4)
      return false;
    for (const Value &V : C.Slots)
      if (V.isRef() && H.cell(V.asRef()).Kind != CellKind::String)
        return false;
    // Deterministic per-build decision keyed on the inline fingerprint and
    // the object's content.
    ByteBuffer B;
    B.appendSizedString(P.classDef(C.Class).Name);
    for (const Value &V : C.Slots) {
      B.appendU8(uint8_t(V.Kind));
      if (V.isRef())
        B.appendSizedString(H.cell(V.asRef()).Str);
      else
        B.appendI64(V.I);
    }
    uint64_t Key = mix64(Config.PeaFingerprint, murmurHash3(B.bytes()));
    return Config.PeaRate != 0 && Key % Config.PeaRate == 0;
  }

  const Program &P;
  Heap &H;
  const BuildHeapResult &Built;
  const CompiledProgram &CP;
  const ReachabilityResult &Reach;
  const SnapshotConfig &Config;
  ClassId MetaClass = -1;
  HeapSnapshot Snap;
};

} // namespace

HeapSnapshot nimg::buildSnapshot(const Program &P, Heap &H,
                                 const BuildHeapResult &Built,
                                 const CompiledProgram &CP,
                                 const ReachabilityResult &Reach,
                                 const SnapshotConfig &Config) {
  return SnapshotBuilder(P, H, Built, CP, Reach, Config).run();
}
