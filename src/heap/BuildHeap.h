//===- BuildHeap.h - Build-time heap initialization -------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the static initializers of all reachable classes at image build
/// time and produces the build heap that the snapshot is taken from
/// (Sec. 2, "Heap Snapshotting"). Initialization order is a seeded
/// permutation of the reachable classes — this models the paper's
/// observation that "class initializers may be executed in parallel during
/// the build process", making compilation nondeterministic: different
/// builds stamp different initSeq values into class metadata and may
/// produce differently-shaped heaps.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_HEAP_BUILDHEAP_H
#define NIMG_HEAP_BUILDHEAP_H

#include "src/compiler/Reachability.h"
#include "src/heap/Heap.h"
#include "src/ir/Program.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nimg {

/// Registers the builtin `Class` metadata class (name, id, initSeq fields)
/// in \p P if absent. Must run before reachability analysis so id spaces
/// are stable. Returns the class id.
ClassId ensureClassMetaClass(Program &P);

/// The result of running build-time initialization.
struct BuildHeapResult {
  std::unique_ptr<Heap> BuildHeap;
  /// Static-field values after initialization (indexed like
  /// Interpreter::statics()).
  std::vector<std::vector<Value>> Statics;
  /// Classes in initialization-completion order.
  std::vector<ClassId> InitOrder;
  /// Class metadata cell per class id (-1 for unreachable classes).
  std::vector<CellIdx> ClassMetaCells;
  /// Resource name -> string cell (inclusion reason "Resource").
  std::unordered_map<std::string, CellIdx> ResourceCells;
  /// Output printed by static initializers (usually empty).
  std::string BuildOutput;
  /// True when an initializer trapped; the build should be aborted.
  bool Failed = false;
  std::string FailureMessage;
};

/// Runs all reachable static initializers in a \p Seed-permuted order
/// (lazy dependency triggering preserved), creates class-metadata objects
/// and resource cells, and returns the populated heap.
BuildHeapResult initializeBuildHeap(Program &P,
                                    const ReachabilityResult &Reach,
                                    uint64_t Seed);

} // namespace nimg

#endif // NIMG_HEAP_BUILDHEAP_H
