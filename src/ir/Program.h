//===- Program.h - MiniJava program model -----------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory model of a MiniJava program: interned types, classes with
/// single inheritance, fields (instance and static), methods as CFGs, and
/// an interned string table. This is the classpath that the build pipeline
/// (reachability, inlining, heap snapshotting) consumes.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IR_PROGRAM_H
#define NIMG_IR_PROGRAM_H

#include "src/ir/Instr.h"

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nimg {

using TypeId = int32_t;
using ClassId = int32_t;
using MethodId = int32_t;
using StrId = int32_t;
using BlockId = int32_t;
using SelectorId = int32_t;

/// Encodes a call/access-site id from a block and instruction index;
/// unique within a method. Site ids key inline maps, path-cut actions, and
/// trace decoding.
inline uint32_t makeSiteId(BlockId Block, size_t InstrIdx) {
  assert(Block >= 0 && Block < (1 << 15) && "block id too large for site id");
  assert(InstrIdx < (1u << 16) && "instruction index too large for site id");
  return (uint32_t(Block) << 16) | uint32_t(InstrIdx);
}
inline BlockId siteBlock(uint32_t SiteId) { return BlockId(SiteId >> 16); }
inline uint32_t siteInstr(uint32_t SiteId) { return SiteId & 0xffff; }

enum class TypeKind : uint8_t {
  Void,
  Int,
  Double,
  Bool,
  String,
  Object,
  Array,
  Null, ///< The type of the null literal; assignable to any reference type.
};

/// An interned type. Object types carry the class; array types carry the
/// element type.
struct TypeInfo {
  TypeKind Kind;
  ClassId Class = -1; ///< For TypeKind::Object.
  TypeId Elem = -1;   ///< For TypeKind::Array.
  std::string Name;   ///< Fully qualified name, e.g. "som.Vector" or "int[]".
};

/// A declared field.
struct Field {
  std::string Name;
  TypeId Type = -1;
  ClassId Owner = -1;
  bool IsFinal = false;
};

/// A class definition. Instance fields are the declared ones; the full
/// object layout (including inherited fields) is computed by the Program.
struct ClassDef {
  std::string Name;
  ClassId Id = -1;
  ClassId Super = -1;
  bool IsAbstract = false;
  std::vector<Field> InstanceFields;
  std::vector<Field> StaticFields;
  std::vector<MethodId> Methods;
  MethodId Clinit = -1; ///< Static initializer, or -1 if none.
};

/// A basic block: straight-line instructions ending in a terminator.
struct BasicBlock {
  std::vector<Instr> Instrs;
};

/// A method: a CFG over virtual registers. Parameters occupy registers
/// [0, ParamTypes.size()); for instance methods register 0 is `this`.
struct Method {
  std::string Name;
  MethodId Id = -1;
  ClassId Class = -1;
  bool IsStatic = false;
  bool IsAbstract = false;
  bool IsClinit = false;
  std::vector<TypeId> ParamTypes; ///< Includes `this` for instance methods.
  TypeId RetType = -1;
  uint16_t NumRegs = 0;
  std::vector<BasicBlock> Blocks; ///< Block 0 is the entry block.
  std::vector<uint16_t> CallArgs; ///< Argument-register pool for calls.
  std::string Sig;                ///< "Class.name(desc)" — stable across
                                  ///< builds, used for profile matching.
  SelectorId Selector = -1;       ///< Dispatch selector (instance methods).
};

/// A whole MiniJava program (the "classpath" in Native-Image terms).
class Program {
public:
  Program();

  // --- Types -------------------------------------------------------------

  TypeId voidType() const { return VoidTy; }
  TypeId intType() const { return IntTy; }
  TypeId doubleType() const { return DoubleTy; }
  TypeId boolType() const { return BoolTy; }
  TypeId stringType() const { return StringTy; }
  TypeId nullType() const { return NullTy; }

  /// Returns the (interned) object type of class \p C.
  TypeId objectType(ClassId C);
  /// Returns the (interned) array type with element type \p Elem.
  TypeId arrayType(TypeId Elem);

  const TypeInfo &type(TypeId T) const {
    assert(T >= 0 && size_t(T) < Types.size() && "invalid type id");
    return Types[size_t(T)];
  }
  size_t numTypes() const { return Types.size(); }

  /// Returns the fully qualified name of type \p T ("int", "String",
  /// "som.Vector", "double[]").
  const std::string &typeName(TypeId T) const { return type(T).Name; }

  /// Returns true if \p Sub is \p Super or a subclass of it.
  bool isSubclassOf(ClassId Sub, ClassId Super) const;

  // --- Classes -----------------------------------------------------------

  /// Creates a class; \p Super is -1 for root classes.
  ClassId addClass(std::string Name, ClassId Super = -1,
                   bool IsAbstract = false);

  ClassDef &classDef(ClassId C) {
    assert(C >= 0 && size_t(C) < Classes.size() && "invalid class id");
    return Classes[size_t(C)];
  }
  const ClassDef &classDef(ClassId C) const {
    assert(C >= 0 && size_t(C) < Classes.size() && "invalid class id");
    return Classes[size_t(C)];
  }
  size_t numClasses() const { return Classes.size(); }

  /// Looks a class up by name; returns -1 if absent.
  ClassId findClass(std::string_view Name) const;

  /// Returns the full instance-field layout of \p C: inherited fields
  /// first, in declaration order. Layout indices are the `Aux` operand of
  /// GetField/PutField. The layout is computed on first use and cached;
  /// adding fields afterwards is a programming error.
  const std::vector<Field> &layout(ClassId C) const;

  /// Finds the layout index of field \p Name in class \p C (searching
  /// inherited fields too); returns -1 if absent.
  int32_t findFieldIndex(ClassId C, std::string_view Name) const;

  /// Finds the static field index of \p Name declared in \p C or a
  /// superclass; returns {class, index} or {-1, -1}.
  std::pair<ClassId, int32_t> findStaticField(ClassId C,
                                              std::string_view Name) const;

  // --- Methods -----------------------------------------------------------

  /// Creates an empty method and returns its id. The signature string and
  /// dispatch selector are computed from name, class, and parameter types,
  /// so those must be final when this is called.
  MethodId addMethod(ClassId Class, std::string Name,
                     std::vector<TypeId> ParamTypes, TypeId RetType,
                     bool IsStatic, bool IsAbstract = false);

  Method &method(MethodId M) {
    assert(M >= 0 && size_t(M) < Methods.size() && "invalid method id");
    return Methods[size_t(M)];
  }
  const Method &method(MethodId M) const {
    assert(M >= 0 && size_t(M) < Methods.size() && "invalid method id");
    return Methods[size_t(M)];
  }
  size_t numMethods() const { return Methods.size(); }

  /// Finds a method by signature string; returns -1 if absent.
  MethodId findMethodBySig(std::string_view Sig) const;

  /// Finds a method declared in \p C (not superclasses) by name and
  /// parameter types (excluding the receiver); returns -1 if absent.
  MethodId findDeclaredMethod(ClassId C, std::string_view Name,
                              const std::vector<TypeId> &Params) const;

  /// Resolves a virtual call: the method invoked when the declared method
  /// \p Declared is called on a receiver of dynamic class \p Receiver.
  /// Returns -1 when no implementation exists (an abstract miss, which the
  /// verifier rules out for well-formed programs).
  MethodId resolveVirtual(ClassId Receiver, MethodId Declared) const;

  /// Returns all concrete methods that override (or are) \p Declared in
  /// subclasses of its class. Used by the reachability analysis.
  std::vector<MethodId> overridesOf(MethodId Declared) const;

  // --- Strings -----------------------------------------------------------

  /// Interns \p S into the program string table (the build-time intern
  /// pool; these become InternedString heap roots).
  StrId internString(std::string_view S);
  const std::string &string(StrId S) const {
    assert(S >= 0 && size_t(S) < Strings.size() && "invalid string id");
    return Strings[size_t(S)];
  }
  size_t numStrings() const { return Strings.size(); }

  // --- Entry points -------------------------------------------------------

  MethodId MainMethod = -1;

  /// Resources embedded in the image (name -> contents); included in the
  /// heap snapshot with inclusion reason "Resource".
  std::vector<std::pair<std::string, std::string>> Resources;

private:
  std::string selectorKey(const std::string &Name,
                          const std::vector<TypeId> &ParamTypes,
                          bool IsStatic) const;

  std::vector<TypeInfo> Types;
  std::vector<ClassDef> Classes;
  std::vector<Method> Methods;
  std::vector<std::string> Strings;

  TypeId VoidTy, IntTy, DoubleTy, BoolTy, StringTy, NullTy;

  std::unordered_map<std::string, TypeId> TypeByName;
  std::unordered_map<std::string, ClassId> ClassByName;
  std::unordered_map<std::string, MethodId> MethodBySig;
  std::unordered_map<std::string, StrId> StringPool;
  std::unordered_map<std::string, SelectorId> SelectorByKey;
  mutable std::vector<std::vector<Field>> LayoutCache;
  mutable std::vector<bool> LayoutBuilt;
  // Dispatch[C] maps SelectorId -> MethodId for class C (built lazily).
  mutable std::vector<std::unordered_map<SelectorId, MethodId>> DispatchCache;
  mutable std::vector<bool> DispatchBuilt;

  TypeId internType(TypeInfo Info);
  void buildDispatch(ClassId C) const;
};

/// Builds the human-readable descriptor of a parameter list, e.g.
/// "(int,som.Vector)".
std::string paramDescriptor(const Program &P,
                            const std::vector<TypeId> &Params,
                            bool SkipReceiver);

} // namespace nimg

#endif // NIMG_IR_PROGRAM_H
