//===- Program.cpp - MiniJava program model --------------------------------===//

#include "src/ir/Program.h"

using namespace nimg;

Program::Program() {
  VoidTy = internType({TypeKind::Void, -1, -1, "void"});
  IntTy = internType({TypeKind::Int, -1, -1, "int"});
  DoubleTy = internType({TypeKind::Double, -1, -1, "double"});
  BoolTy = internType({TypeKind::Bool, -1, -1, "boolean"});
  StringTy = internType({TypeKind::String, -1, -1, "String"});
  NullTy = internType({TypeKind::Null, -1, -1, "nulltype"});
}

TypeId Program::internType(TypeInfo Info) {
  auto It = TypeByName.find(Info.Name);
  if (It != TypeByName.end())
    return It->second;
  TypeId Id = TypeId(Types.size());
  TypeByName.emplace(Info.Name, Id);
  Types.push_back(std::move(Info));
  return Id;
}

TypeId Program::objectType(ClassId C) {
  assert(C >= 0 && size_t(C) < Classes.size() && "invalid class id");
  return internType({TypeKind::Object, C, -1, Classes[size_t(C)].Name});
}

TypeId Program::arrayType(TypeId Elem) {
  return internType({TypeKind::Array, -1, Elem, typeName(Elem) + "[]"});
}

bool Program::isSubclassOf(ClassId Sub, ClassId Super) const {
  for (ClassId C = Sub; C != -1; C = classDef(C).Super)
    if (C == Super)
      return true;
  return false;
}

ClassId Program::addClass(std::string Name, ClassId Super, bool IsAbstract) {
  assert(ClassByName.find(Name) == ClassByName.end() && "duplicate class");
  ClassId Id = ClassId(Classes.size());
  ClassDef Def;
  Def.Name = std::move(Name);
  Def.Id = Id;
  Def.Super = Super;
  Def.IsAbstract = IsAbstract;
  ClassByName.emplace(Def.Name, Id);
  Classes.push_back(std::move(Def));
  LayoutCache.emplace_back();
  LayoutBuilt.push_back(false);
  DispatchCache.emplace_back();
  DispatchBuilt.push_back(false);
  return Id;
}

ClassId Program::findClass(std::string_view Name) const {
  auto It = ClassByName.find(std::string(Name));
  return It == ClassByName.end() ? -1 : It->second;
}

const std::vector<Field> &Program::layout(ClassId C) const {
  assert(C >= 0 && size_t(C) < Classes.size() && "invalid class id");
  if (LayoutBuilt[size_t(C)])
    return LayoutCache[size_t(C)];
  const ClassDef &Def = Classes[size_t(C)];
  std::vector<Field> Result;
  if (Def.Super != -1)
    Result = layout(Def.Super);
  for (const Field &F : Def.InstanceFields)
    Result.push_back(F);
  LayoutCache[size_t(C)] = std::move(Result);
  LayoutBuilt[size_t(C)] = true;
  return LayoutCache[size_t(C)];
}

int32_t Program::findFieldIndex(ClassId C, std::string_view Name) const {
  const std::vector<Field> &L = layout(C);
  // Search from the back so shadowing fields in subclasses win.
  for (size_t I = L.size(); I > 0; --I)
    if (L[I - 1].Name == Name)
      return int32_t(I - 1);
  return -1;
}

std::pair<ClassId, int32_t>
Program::findStaticField(ClassId C, std::string_view Name) const {
  for (ClassId Cur = C; Cur != -1; Cur = classDef(Cur).Super) {
    const ClassDef &Def = classDef(Cur);
    for (size_t I = 0; I < Def.StaticFields.size(); ++I)
      if (Def.StaticFields[I].Name == Name)
        return {Cur, int32_t(I)};
  }
  return {-1, -1};
}

std::string Program::selectorKey(const std::string &Name,
                                 const std::vector<TypeId> &ParamTypes,
                                 bool IsStatic) const {
  std::string Key = Name;
  Key += paramDescriptor(*this, ParamTypes, /*SkipReceiver=*/!IsStatic);
  return Key;
}

MethodId Program::addMethod(ClassId Class, std::string Name,
                            std::vector<TypeId> ParamTypes, TypeId RetType,
                            bool IsStatic, bool IsAbstract) {
  MethodId Id = MethodId(Methods.size());
  Method M;
  M.Name = Name;
  M.Id = Id;
  M.Class = Class;
  M.IsStatic = IsStatic;
  M.IsAbstract = IsAbstract;
  M.ParamTypes = std::move(ParamTypes);
  M.RetType = RetType;
  M.NumRegs = uint16_t(M.ParamTypes.size());
  M.Sig = classDef(Class).Name + "." + Name +
          paramDescriptor(*this, M.ParamTypes, /*SkipReceiver=*/!IsStatic);
  if (!IsStatic) {
    std::string Key = selectorKey(Name, M.ParamTypes, IsStatic);
    auto [It, Inserted] =
        SelectorByKey.emplace(Key, SelectorId(SelectorByKey.size()));
    (void)Inserted;
    M.Selector = It->second;
  }
  assert(MethodBySig.find(M.Sig) == MethodBySig.end() && "duplicate method");
  MethodBySig.emplace(M.Sig, Id);
  classDef(Class).Methods.push_back(Id);
  Methods.push_back(std::move(M));
  // Adding a method invalidates dispatch caches of this class's subtree;
  // the program is fully constructed before dispatch is queried, so a full
  // reset is acceptable and simple.
  std::fill(DispatchBuilt.begin(), DispatchBuilt.end(), false);
  return Id;
}

MethodId Program::findMethodBySig(std::string_view Sig) const {
  auto It = MethodBySig.find(std::string(Sig));
  return It == MethodBySig.end() ? -1 : It->second;
}

MethodId Program::findDeclaredMethod(ClassId C, std::string_view Name,
                                     const std::vector<TypeId> &Params) const {
  for (MethodId M : classDef(C).Methods) {
    const Method &Def = method(M);
    if (Def.Name != Name)
      continue;
    size_t Skip = Def.IsStatic ? 0 : 1;
    if (Def.ParamTypes.size() - Skip != Params.size())
      continue;
    bool Match = true;
    for (size_t I = 0; I < Params.size(); ++I)
      if (Def.ParamTypes[I + Skip] != Params[I])
        Match = false;
    if (Match)
      return M;
  }
  return -1;
}

void Program::buildDispatch(ClassId C) const {
  const ClassDef &Def = classDef(C);
  std::unordered_map<SelectorId, MethodId> Table;
  if (Def.Super != -1) {
    if (!DispatchBuilt[size_t(Def.Super)])
      buildDispatch(Def.Super);
    Table = DispatchCache[size_t(Def.Super)];
  }
  for (MethodId M : Def.Methods) {
    const Method &Meth = method(M);
    if (Meth.IsStatic || Meth.IsAbstract)
      continue;
    Table[Meth.Selector] = M;
  }
  DispatchCache[size_t(C)] = std::move(Table);
  DispatchBuilt[size_t(C)] = true;
}

MethodId Program::resolveVirtual(ClassId Receiver, MethodId Declared) const {
  const Method &Decl = method(Declared);
  assert(!Decl.IsStatic && "virtual resolution of a static method");
  if (!DispatchBuilt[size_t(Receiver)])
    buildDispatch(Receiver);
  const auto &Table = DispatchCache[size_t(Receiver)];
  auto It = Table.find(Decl.Selector);
  return It == Table.end() ? -1 : It->second;
}

std::vector<MethodId> Program::overridesOf(MethodId Declared) const {
  const Method &Decl = method(Declared);
  std::vector<MethodId> Result;
  for (const ClassDef &Def : Classes) {
    if (Def.IsAbstract || !isSubclassOf(Def.Id, Decl.Class))
      continue;
    MethodId Impl = resolveVirtual(Def.Id, Declared);
    if (Impl == -1)
      continue;
    bool Seen = false;
    for (MethodId M : Result)
      if (M == Impl)
        Seen = true;
    if (!Seen)
      Result.push_back(Impl);
  }
  return Result;
}

StrId Program::internString(std::string_view S) {
  auto It = StringPool.find(std::string(S));
  if (It != StringPool.end())
    return It->second;
  StrId Id = StrId(Strings.size());
  Strings.emplace_back(S);
  StringPool.emplace(Strings.back(), Id);
  return Id;
}

std::string nimg::paramDescriptor(const Program &P,
                                  const std::vector<TypeId> &Params,
                                  bool SkipReceiver) {
  std::string Out = "(";
  size_t Start = SkipReceiver && !Params.empty() ? 1 : 0;
  for (size_t I = Start; I < Params.size(); ++I) {
    if (I != Start)
      Out += ",";
    Out += P.typeName(Params[I]);
  }
  Out += ")";
  return Out;
}
