//===- Printer.h - Textual IR dump ------------------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of methods and programs, for debugging and tests.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IR_PRINTER_H
#define NIMG_IR_PRINTER_H

#include "src/ir/Program.h"

#include <string>

namespace nimg {

/// Renders one instruction, e.g. "r3 = add r1, r2".
std::string printInstr(const Program &P, const Method &M, const Instr &In);

/// Renders a full method with block labels.
std::string printMethod(const Program &P, MethodId M);

/// Renders every method of the program.
std::string printProgram(const Program &P);

} // namespace nimg

#endif // NIMG_IR_PRINTER_H
