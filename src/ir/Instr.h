//===- Instr.h - Register-machine IR instructions --------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the MiniJava IR. Methods are CFGs of basic blocks
/// over an infinite virtual register file; instructions are fixed-size
/// records (no SSA). The IR plays the role of the Graal IR in the paper: it
/// is the level at which inlining, instrumentation (Sec. 6.1), and path
/// profiling operate.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IR_INSTR_H
#define NIMG_IR_INSTR_H

#include <cstdint>

namespace nimg {

/// Opcodes of the MiniJava IR.
enum class Opcode : uint8_t {
  // Constants.
  ConstInt,    ///< Dst <- IImm
  ConstDouble, ///< Dst <- FImm
  ConstBool,   ///< Dst <- (IImm != 0)
  ConstNull,   ///< Dst <- null
  ConstString, ///< Dst <- string-table entry Aux (an interned string)
  Move,        ///< Dst <- A

  // Arithmetic / logic. Operand kinds are fixed by the type checker; the
  // interpreter dispatches on runtime tags.
  Add, ///< Dst <- A + B (int or double)
  Sub,
  Mul,
  Div,
  Mod,
  Neg, ///< Dst <- -A
  Not, ///< Dst <- !A (bool)
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr, ///< arithmetic shift right
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Concat, ///< Dst <- string concat of A and B (either may be int/double)
  I2D,    ///< Dst <- double(A)
  D2I,    ///< Dst <- int64(A), truncating

  // Objects and arrays.
  NewObject, ///< Dst <- new instance of class Aux (fields zero-initialized)
  NewArray,  ///< Dst <- new array, array type Aux, length in A
  ArrayLen,  ///< Dst <- length of array A
  ALoad,     ///< Dst <- A[B]
  AStore,    ///< A[B] <- C
  GetField,  ///< Dst <- A.field, layout index Aux
  PutField,  ///< A.field <- B, layout index Aux
  GetStatic, ///< Dst <- static field; class Aux, static index Aux2
  PutStatic, ///< static field <- A; class Aux, static index Aux2

  // Calls. Arguments live in Method::CallArgs[ArgsBegin, ArgsBegin+ArgsCount).
  CallStatic,  ///< Dst <- call of method Aux
  CallVirtual, ///< Dst <- virtual call; declared method Aux; args[0] is
               ///< the receiver
  CallNative,  ///< Dst <- native call, NativeId Aux

  // Control flow (block terminators).
  Ret, ///< return; A holds the value when Aux == 1
  Br,  ///< branch on bool A: true -> block Target, false -> block Aux2
  Jmp, ///< jump to block Target
};

/// Returns true for opcodes that terminate a basic block.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Ret || Op == Opcode::Br || Op == Opcode::Jmp;
}

/// Returns true for opcodes that access the heap through an object or array
/// reference. These are the "object access" events the tracing profiler
/// records for heap ordering (Sec. 6.1).
inline bool isHeapAccess(Opcode Op) {
  switch (Op) {
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::ArrayLen:
  case Opcode::GetField:
  case Opcode::PutField:
    return true;
  default:
    return false;
  }
}

/// Built-in native methods exposed to MiniJava programs. They model JDK /
/// substrate-VM functionality that the reproduction needs but that is not
/// worth expressing in MiniJava itself.
enum class NativeId : int32_t {
  Print,         ///< Sys.print(String) -> void
  PrintInt,      ///< Sys.printInt(int) -> void
  Sqrt,          ///< Sys.sqrt(double) -> double
  Sin,           ///< Sys.sin(double) -> double
  Cos,           ///< Sys.cos(double) -> double
  Floor,         ///< Sys.floor(double) -> double
  StrLen,        ///< Str.length(String) -> int
  StrCharAt,     ///< Str.charAt(String, int) -> int (char code)
  StrSub,        ///< Str.substring(String, int, int) -> String
  StrEquals,     ///< Str.equals(String, String) -> bool
  StrFromInt,    ///< Str.fromInt(int) -> String
  StrFromDouble, ///< Str.fromDouble(double) -> String
  StrIntern,     ///< Str.intern(String) -> String (interns into the pool)
  Spawn,         ///< Sys.spawn(...) -> void; starts a simulated thread
                 ///< running the static method whose id is in Aux2
  Respond,       ///< Sys.respond(String) -> void; marks the first response
                 ///< of a microservice workload (Sec. 7.1)
  ReadResource,  ///< Sys.readResource(String) -> String; loads an embedded
                 ///< resource from the image heap
  Yield,         ///< Sys.yield() -> void; cooperative scheduling point
};

/// Returns the number of heap-cell trace slots of an executed instruction:
/// the statically known count of object identifiers the tracing profiler
/// stores for this instruction (Sec. 6.1: "each path ID determines how many
/// object identifiers are stored after the path ID"). Slots whose runtime
/// value is not an image-heap object are recorded as zero.
inline uint16_t traceSlotCount(Opcode Op, int32_t NativeAux) {
  switch (Op) {
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::ArrayLen:
  case Opcode::GetField:
  case Opcode::PutField:
    return 1;
  case Opcode::Concat:
    return 2;
  case Opcode::CallNative:
    switch (NativeId(NativeAux)) {
    case NativeId::Print:
    case NativeId::StrLen:
    case NativeId::StrCharAt:
    case NativeId::StrSub:
    case NativeId::StrIntern:
    case NativeId::Respond:
      return 1;
    case NativeId::StrEquals:
    case NativeId::ReadResource:
      return 2;
    default:
      return 0;
    }
  default:
    return 0;
  }
}

/// A fixed-size IR instruction. Field meaning depends on the opcode; see
/// the per-opcode comments above.
struct Instr {
  Opcode Op;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t IImm = 0;
  double FImm = 0;
  int32_t Aux = -1;
  int32_t Aux2 = -1;
  int32_t Target = -1;
  uint32_t ArgsBegin = 0;
  uint16_t ArgsCount = 0;
};

} // namespace nimg

#endif // NIMG_IR_INSTR_H
