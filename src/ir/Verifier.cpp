//===- Verifier.cpp - Structural IR checks ---------------------------------===//

#include "src/ir/Verifier.h"

using namespace nimg;

namespace {

class MethodVerifier {
public:
  MethodVerifier(const Program &P, MethodId M, std::vector<std::string> &Errors)
      : P(P), M(P.method(M)), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    if (M.IsAbstract) {
      if (!M.Blocks.empty() && !(M.Blocks.size() == 1 && M.Blocks[0].Instrs.empty()))
        error("abstract method has a body");
      return Errors.size() == Before;
    }
    if (M.Blocks.empty()) {
      error("method has no blocks");
      return false;
    }
    for (size_t B = 0; B < M.Blocks.size(); ++B)
      verifyBlock(B);
    return Errors.size() == Before;
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back(M.Sig + ": " + Msg);
  }

  bool validReg(uint16_t R) const { return R < M.NumRegs; }
  bool validBlock(int32_t B) const {
    return B >= 0 && size_t(B) < M.Blocks.size();
  }

  void checkReg(uint16_t R, const char *What) {
    if (!validReg(R))
      error(std::string("register out of range in ") + What);
  }

  void verifyBlock(size_t B) {
    const BasicBlock &BB = M.Blocks[B];
    if (BB.Instrs.empty()) {
      error("empty block " + std::to_string(B));
      return;
    }
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instr &In = BB.Instrs[I];
      bool IsLast = I + 1 == BB.Instrs.size();
      if (isTerminator(In.Op) != IsLast) {
        error("terminator placement in block " + std::to_string(B));
        return;
      }
      verifyInstr(In);
    }
  }

  void verifyInstr(const Instr &In) {
    switch (In.Op) {
    case Opcode::ConstInt:
    case Opcode::ConstDouble:
    case Opcode::ConstBool:
    case Opcode::ConstNull:
      checkReg(In.Dst, "const");
      break;
    case Opcode::ConstString:
      checkReg(In.Dst, "conststring");
      if (In.Aux < 0 || size_t(In.Aux) >= P.numStrings())
        error("string id out of range");
      break;
    case Opcode::Move:
      checkReg(In.Dst, "move");
      checkReg(In.A, "move");
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::BitAnd:
    case Opcode::BitOr:
    case Opcode::BitXor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::Concat:
      checkReg(In.Dst, "binop");
      checkReg(In.A, "binop");
      checkReg(In.B, "binop");
      break;
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::I2D:
    case Opcode::D2I:
      checkReg(In.Dst, "unop");
      checkReg(In.A, "unop");
      break;
    case Opcode::NewObject:
      checkReg(In.Dst, "newobject");
      if (In.Aux < 0 || size_t(In.Aux) >= P.numClasses())
        error("class id out of range in newobject");
      else if (P.classDef(In.Aux).IsAbstract)
        error("newobject of abstract class " + P.classDef(In.Aux).Name);
      break;
    case Opcode::NewArray:
      checkReg(In.Dst, "newarray");
      checkReg(In.A, "newarray");
      if (In.Aux < 0 || size_t(In.Aux) >= P.numTypes() ||
          P.type(In.Aux).Kind != TypeKind::Array)
        error("newarray type is not an array type");
      break;
    case Opcode::ArrayLen:
      checkReg(In.Dst, "arraylen");
      checkReg(In.A, "arraylen");
      break;
    case Opcode::ALoad:
      checkReg(In.Dst, "aload");
      checkReg(In.A, "aload");
      checkReg(In.B, "aload");
      break;
    case Opcode::AStore:
      checkReg(In.A, "astore");
      checkReg(In.B, "astore");
      checkReg(In.C, "astore");
      break;
    case Opcode::GetField:
      checkReg(In.Dst, "getfield");
      checkReg(In.A, "getfield");
      if (In.Aux < 0)
        error("negative field index");
      break;
    case Opcode::PutField:
      checkReg(In.A, "putfield");
      checkReg(In.B, "putfield");
      if (In.Aux < 0)
        error("negative field index");
      break;
    case Opcode::GetStatic:
    case Opcode::PutStatic: {
      if (In.Op == Opcode::GetStatic)
        checkReg(In.Dst, "getstatic");
      else
        checkReg(In.A, "putstatic");
      if (In.Aux < 0 || size_t(In.Aux) >= P.numClasses()) {
        error("class id out of range in static access");
        break;
      }
      const ClassDef &C = P.classDef(In.Aux);
      if (In.Aux2 < 0 || size_t(In.Aux2) >= C.StaticFields.size())
        error("static field index out of range in " + C.Name);
      break;
    }
    case Opcode::CallStatic:
    case Opcode::CallVirtual: {
      checkReg(In.Dst, "call");
      if (In.Aux < 0 || size_t(In.Aux) >= P.numMethods()) {
        error("method id out of range in call");
        break;
      }
      const Method &Callee = P.method(In.Aux);
      if (In.Op == Opcode::CallStatic && !Callee.IsStatic)
        error("callstatic of instance method " + Callee.Sig);
      if (In.Op == Opcode::CallVirtual && Callee.IsStatic)
        error("callvirtual of static method " + Callee.Sig);
      if (In.ArgsCount != Callee.ParamTypes.size())
        error("argument count mismatch calling " + Callee.Sig);
      verifyArgs(In);
      break;
    }
    case Opcode::CallNative:
      checkReg(In.Dst, "callnative");
      verifyArgs(In);
      break;
    case Opcode::Ret:
      if (In.Aux == 1)
        checkReg(In.A, "ret");
      break;
    case Opcode::Br:
      checkReg(In.A, "br");
      if (!validBlock(In.Target) || !validBlock(In.Aux2))
        error("branch target out of range");
      break;
    case Opcode::Jmp:
      if (!validBlock(In.Target))
        error("jump target out of range");
      break;
    }
  }

  void verifyArgs(const Instr &In) {
    if (size_t(In.ArgsBegin) + In.ArgsCount > M.CallArgs.size()) {
      error("call argument slice out of range");
      return;
    }
    for (size_t I = 0; I < In.ArgsCount; ++I)
      checkReg(M.CallArgs[In.ArgsBegin + I], "call argument");
  }

  const Program &P;
  const Method &M;
  std::vector<std::string> &Errors;
};

} // namespace

bool nimg::verifyMethod(const Program &P, MethodId M,
                        std::vector<std::string> &Errors) {
  return MethodVerifier(P, M, Errors).run();
}

bool nimg::verifyProgram(const Program &P, std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  for (size_t M = 0; M < P.numMethods(); ++M)
    verifyMethod(P, MethodId(M), Errors);
  if (P.MainMethod < 0 || size_t(P.MainMethod) >= P.numMethods())
    Errors.push_back("program has no main method");
  else if (!P.method(P.MainMethod).IsStatic)
    Errors.push_back("main method must be static");
  return Errors.size() == Before;
}
