//===- Printer.cpp - Textual IR dump ---------------------------------------===//

#include "src/ir/Printer.h"

#include <sstream>

using namespace nimg;

static const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return "constint";
  case Opcode::ConstDouble:
    return "constdouble";
  case Opcode::ConstBool:
    return "constbool";
  case Opcode::ConstNull:
    return "constnull";
  case Opcode::ConstString:
    return "conststring";
  case Opcode::Move:
    return "move";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::BitAnd:
    return "band";
  case Opcode::BitOr:
    return "bor";
  case Opcode::BitXor:
    return "bxor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Concat:
    return "concat";
  case Opcode::I2D:
    return "i2d";
  case Opcode::D2I:
    return "d2i";
  case Opcode::NewObject:
    return "newobject";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ArrayLen:
    return "arraylen";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::CallStatic:
    return "callstatic";
  case Opcode::CallVirtual:
    return "callvirtual";
  case Opcode::CallNative:
    return "callnative";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  }
  return "?";
}

std::string nimg::printInstr(const Program &P, const Method &M,
                             const Instr &In) {
  std::ostringstream OS;
  auto Args = [&] {
    OS << " (";
    for (size_t I = 0; I < In.ArgsCount; ++I) {
      if (I)
        OS << ", ";
      OS << "r" << M.CallArgs[In.ArgsBegin + I];
    }
    OS << ")";
  };
  switch (In.Op) {
  case Opcode::ConstInt:
    OS << "r" << In.Dst << " = " << In.IImm;
    break;
  case Opcode::ConstDouble:
    OS << "r" << In.Dst << " = " << In.FImm;
    break;
  case Opcode::ConstBool:
    OS << "r" << In.Dst << " = " << (In.IImm ? "true" : "false");
    break;
  case Opcode::ConstNull:
    OS << "r" << In.Dst << " = null";
    break;
  case Opcode::ConstString:
    OS << "r" << In.Dst << " = \"" << P.string(In.Aux) << "\"";
    break;
  case Opcode::Move:
    OS << "r" << In.Dst << " = r" << In.A;
    break;
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::I2D:
  case Opcode::D2I:
    OS << "r" << In.Dst << " = " << opcodeName(In.Op) << " r" << In.A;
    break;
  case Opcode::NewObject:
    OS << "r" << In.Dst << " = new " << P.classDef(In.Aux).Name;
    break;
  case Opcode::NewArray:
    OS << "r" << In.Dst << " = new " << P.typeName(In.Aux) << " [r" << In.A
       << "]";
    break;
  case Opcode::ArrayLen:
    OS << "r" << In.Dst << " = len r" << In.A;
    break;
  case Opcode::ALoad:
    OS << "r" << In.Dst << " = r" << In.A << "[r" << In.B << "]";
    break;
  case Opcode::AStore:
    OS << "r" << In.A << "[r" << In.B << "] = r" << In.C;
    break;
  case Opcode::GetField:
    OS << "r" << In.Dst << " = r" << In.A << ".field#" << In.Aux;
    break;
  case Opcode::PutField:
    OS << "r" << In.A << ".field#" << In.Aux << " = r" << In.B;
    break;
  case Opcode::GetStatic:
    OS << "r" << In.Dst << " = " << P.classDef(In.Aux).Name << "::"
       << P.classDef(In.Aux).StaticFields[size_t(In.Aux2)].Name;
    break;
  case Opcode::PutStatic:
    OS << P.classDef(In.Aux).Name << "::"
       << P.classDef(In.Aux).StaticFields[size_t(In.Aux2)].Name << " = r"
       << In.A;
    break;
  case Opcode::CallStatic:
  case Opcode::CallVirtual:
    OS << "r" << In.Dst << " = " << opcodeName(In.Op) << " "
       << P.method(In.Aux).Sig;
    Args();
    break;
  case Opcode::CallNative:
    OS << "r" << In.Dst << " = native#" << In.Aux;
    Args();
    break;
  case Opcode::Ret:
    OS << "ret";
    if (In.Aux == 1)
      OS << " r" << In.A;
    break;
  case Opcode::Br:
    OS << "br r" << In.A << ", B" << In.Target << ", B" << In.Aux2;
    break;
  case Opcode::Jmp:
    OS << "jmp B" << In.Target;
    break;
  default:
    OS << "r" << In.Dst << " = " << opcodeName(In.Op) << " r" << In.A << ", r"
       << In.B;
    break;
  }
  return OS.str();
}

std::string nimg::printMethod(const Program &P, MethodId M) {
  const Method &Meth = P.method(M);
  std::ostringstream OS;
  OS << (Meth.IsStatic ? "static " : "") << P.typeName(Meth.RetType) << " "
     << Meth.Sig << " regs=" << Meth.NumRegs << "\n";
  if (Meth.IsAbstract) {
    OS << "  <abstract>\n";
    return OS.str();
  }
  for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
    OS << " B" << B << ":\n";
    for (const Instr &In : Meth.Blocks[B].Instrs)
      OS << "    " << printInstr(P, Meth, In) << "\n";
  }
  return OS.str();
}

std::string nimg::printProgram(const Program &P) {
  std::string Out;
  for (size_t M = 0; M < P.numMethods(); ++M)
    Out += printMethod(P, MethodId(M)) + "\n";
  return Out;
}
