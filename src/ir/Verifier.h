//===- Verifier.h - Structural IR checks -----------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for the MiniJava IR, run after
/// lowering and after IR-level transformations (instrumentation). A method
/// passes when every block ends in exactly one terminator, every register,
/// block, class, method, field, and string reference is in range, and
/// abstract methods have no body.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IR_VERIFIER_H
#define NIMG_IR_VERIFIER_H

#include "src/ir/Program.h"

#include <string>
#include <vector>

namespace nimg {

/// Verifies one method; appends human-readable problems to \p Errors.
/// Returns true when no problems were found.
bool verifyMethod(const Program &P, MethodId M, std::vector<std::string> &Errors);

/// Verifies the whole program. Returns true when no problems were found.
bool verifyProgram(const Program &P, std::vector<std::string> &Errors);

} // namespace nimg

#endif // NIMG_IR_VERIFIER_H
