//===- IrBuilder.h - Convenience builder for MiniJava IR -------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder used by the AST-to-IR lowering and by tests to emit
/// instructions into a method under construction.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_IR_IRBUILDER_H
#define NIMG_IR_IRBUILDER_H

#include "src/ir/Program.h"

#include <cassert>

namespace nimg {

/// Emits instructions into one method. Blocks are created explicitly; the
/// builder appends to the current block. The builder asserts that no
/// instruction follows a terminator within a block.
class IrBuilder {
public:
  IrBuilder(Program &P, MethodId M) : Prog(P), MethodIdx(M) {
    Method &Meth = Prog.method(MethodIdx);
    if (Meth.Blocks.empty())
      Meth.Blocks.emplace_back();
    Cur = 0;
  }

  Program &program() { return Prog; }
  Method &method() { return Prog.method(MethodIdx); }
  MethodId methodId() const { return MethodIdx; }

  uint16_t newReg() {
    Method &M = method();
    assert(M.NumRegs < UINT16_MAX && "register file exhausted");
    return M.NumRegs++;
  }

  BlockId newBlock() {
    method().Blocks.emplace_back();
    return BlockId(method().Blocks.size() - 1);
  }

  void setBlock(BlockId B) {
    assert(B >= 0 && size_t(B) < method().Blocks.size() && "invalid block");
    Cur = B;
  }
  BlockId currentBlock() const { return Cur; }

  /// Returns true if the current block already ends in a terminator.
  bool blockTerminated() const {
    const BasicBlock &BB = Prog.method(MethodIdx).Blocks[size_t(Cur)];
    return !BB.Instrs.empty() && isTerminator(BB.Instrs.back().Op);
  }

  // --- Constants ---------------------------------------------------------

  uint16_t constInt(int64_t V) {
    Instr I{Opcode::ConstInt};
    I.Dst = newReg();
    I.IImm = V;
    return emitDst(I);
  }
  uint16_t constDouble(double V) {
    Instr I{Opcode::ConstDouble};
    I.Dst = newReg();
    I.FImm = V;
    return emitDst(I);
  }
  uint16_t constBool(bool V) {
    Instr I{Opcode::ConstBool};
    I.Dst = newReg();
    I.IImm = V ? 1 : 0;
    return emitDst(I);
  }
  uint16_t constNull() {
    Instr I{Opcode::ConstNull};
    I.Dst = newReg();
    return emitDst(I);
  }
  uint16_t constString(StrId S) {
    Instr I{Opcode::ConstString};
    I.Dst = newReg();
    I.Aux = S;
    return emitDst(I);
  }

  // --- Arithmetic --------------------------------------------------------

  uint16_t binop(Opcode Op, uint16_t A, uint16_t B) {
    Instr I{Op};
    I.Dst = newReg();
    I.A = A;
    I.B = B;
    return emitDst(I);
  }
  uint16_t unop(Opcode Op, uint16_t A) {
    Instr I{Op};
    I.Dst = newReg();
    I.A = A;
    return emitDst(I);
  }
  void move(uint16_t Dst, uint16_t Src) {
    Instr I{Opcode::Move};
    I.Dst = Dst;
    I.A = Src;
    emit(I);
  }

  // --- Objects and arrays ------------------------------------------------

  uint16_t newObject(ClassId C) {
    Instr I{Opcode::NewObject};
    I.Dst = newReg();
    I.Aux = C;
    return emitDst(I);
  }
  uint16_t newArray(TypeId ArrayTy, uint16_t Len) {
    Instr I{Opcode::NewArray};
    I.Dst = newReg();
    I.A = Len;
    I.Aux = ArrayTy;
    return emitDst(I);
  }
  uint16_t arrayLen(uint16_t Arr) {
    Instr I{Opcode::ArrayLen};
    I.Dst = newReg();
    I.A = Arr;
    return emitDst(I);
  }
  uint16_t aload(uint16_t Arr, uint16_t Idx) {
    Instr I{Opcode::ALoad};
    I.Dst = newReg();
    I.A = Arr;
    I.B = Idx;
    return emitDst(I);
  }
  void astore(uint16_t Arr, uint16_t Idx, uint16_t Val) {
    Instr I{Opcode::AStore};
    I.A = Arr;
    I.B = Idx;
    I.C = Val;
    emit(I);
  }
  uint16_t getField(uint16_t Obj, int32_t LayoutIdx) {
    Instr I{Opcode::GetField};
    I.Dst = newReg();
    I.A = Obj;
    I.Aux = LayoutIdx;
    return emitDst(I);
  }
  void putField(uint16_t Obj, int32_t LayoutIdx, uint16_t Val) {
    Instr I{Opcode::PutField};
    I.A = Obj;
    I.B = Val;
    I.Aux = LayoutIdx;
    emit(I);
  }
  uint16_t getStatic(ClassId C, int32_t StaticIdx) {
    Instr I{Opcode::GetStatic};
    I.Dst = newReg();
    I.Aux = C;
    I.Aux2 = StaticIdx;
    return emitDst(I);
  }
  void putStatic(ClassId C, int32_t StaticIdx, uint16_t Val) {
    Instr I{Opcode::PutStatic};
    I.A = Val;
    I.Aux = C;
    I.Aux2 = StaticIdx;
    emit(I);
  }

  // --- Calls ---------------------------------------------------------------

  uint16_t callStatic(MethodId Callee, const std::vector<uint16_t> &Args) {
    Instr I{Opcode::CallStatic};
    I.Dst = newReg();
    I.Aux = Callee;
    storeArgs(I, Args);
    return emitDst(I);
  }
  /// \p Args includes the receiver as Args[0].
  uint16_t callVirtual(MethodId Declared, const std::vector<uint16_t> &Args) {
    assert(!Args.empty() && "virtual call needs a receiver");
    Instr I{Opcode::CallVirtual};
    I.Dst = newReg();
    I.Aux = Declared;
    storeArgs(I, Args);
    return emitDst(I);
  }
  uint16_t callNative(NativeId Native, const std::vector<uint16_t> &Args,
                      int32_t Aux2 = -1) {
    Instr I{Opcode::CallNative};
    I.Dst = newReg();
    I.Aux = int32_t(Native);
    I.Aux2 = Aux2;
    storeArgs(I, Args);
    return emitDst(I);
  }

  // --- Control flow --------------------------------------------------------

  void retVoid() {
    Instr I{Opcode::Ret};
    I.Aux = 0;
    emit(I);
  }
  void ret(uint16_t Val) {
    Instr I{Opcode::Ret};
    I.A = Val;
    I.Aux = 1;
    emit(I);
  }
  void br(uint16_t Cond, BlockId TrueB, BlockId FalseB) {
    Instr I{Opcode::Br};
    I.A = Cond;
    I.Target = TrueB;
    I.Aux2 = FalseB;
    emit(I);
  }
  void jmp(BlockId B) {
    Instr I{Opcode::Jmp};
    I.Target = B;
    emit(I);
  }

  void emit(const Instr &I) {
    assert(!blockTerminated() && "emitting into a terminated block");
    method().Blocks[size_t(Cur)].Instrs.push_back(I);
  }

private:
  uint16_t emitDst(const Instr &I) {
    emit(I);
    return I.Dst;
  }

  void storeArgs(Instr &I, const std::vector<uint16_t> &Args) {
    Method &M = method();
    I.ArgsBegin = uint32_t(M.CallArgs.size());
    I.ArgsCount = uint16_t(Args.size());
    for (uint16_t A : Args)
      M.CallArgs.push_back(A);
  }

  Program &Prog;
  MethodId MethodIdx;
  BlockId Cur = 0;
};

} // namespace nimg

#endif // NIMG_IR_IRBUILDER_H
