//===- CodeSize.h - Machine-code size model --------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the machine-code size of compiled methods. The inliner is
/// size-driven (Sec. 2: "inlining decisions are furthermore code-size
/// driven, so instrumentation code may make the inliner behave differently
/// between compilations of the instrumented and the regular image"); the
/// instrumented size includes the tracing probes of Sec. 6.1, which is the
/// primary source of divergence between the profiling and optimized builds.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_COMPILER_CODESIZE_H
#define NIMG_COMPILER_CODESIZE_H

#include "src/ir/Program.h"

namespace nimg {

/// Byte-size estimate of one lowered instruction.
uint32_t instrCodeSize(const Instr &In);

/// Extra bytes the tracing instrumentation adds for one instruction
/// (path-register updates at terminators, record emission at cut points,
/// identifier stores at heap-access sites).
uint32_t instrProbeSize(const Instr &In);

/// Byte-size estimate of a whole method body (prologue included).
/// \p Instrumented adds the probe sizes plus the CU-entry / method-entry
/// probe in the prologue.
uint32_t methodCodeSize(const Program &P, MethodId M, bool Instrumented);

} // namespace nimg

#endif // NIMG_COMPILER_CODESIZE_H
