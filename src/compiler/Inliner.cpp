//===- Inliner.cpp - Size-driven inlining into compilation units ----------===//

#include "src/compiler/Inliner.h"

#include "src/compiler/CodeSize.h"
#include "src/support/Murmur3.h"
#include "src/support/SplitMix64.h"

#include <algorithm>

using namespace nimg;

namespace {

class InlinerDriver {
public:
  InlinerDriver(const Program &P, const ReachabilityResult &Reach,
                const InlinerConfig &Config, bool Instrumented)
      : P(P), Reach(Reach), Config(Config), Instrumented(Instrumented) {}

  CompiledProgram run() {
    CompiledProgram CP;
    CP.Instrumented = Instrumented;
    CP.CuOfMethod.assign(P.numMethods(), -1);

    std::vector<MethodId> Roots = Reach.compiledMethods(P);
    // Default .text order: alphabetical by root signature (Sec. 2).
    std::sort(Roots.begin(), Roots.end(), [&](MethodId A, MethodId B) {
      return P.method(A).Sig < P.method(B).Sig;
    });

    for (MethodId Root : Roots) {
      CompilationUnit CU;
      CU.Root = Root;
      InlineCopy RootCopy;
      RootCopy.Method = Root;
      RootCopy.CodeOffset = 0;
      RootCopy.CodeSize = methodCodeSize(P, Root, Instrumented);
      CU.CodeSize = RootCopy.CodeSize;
      CU.Copies.push_back(RootCopy);
      Chain.clear();
      Chain.push_back(Root);
      inlineInto(CU, 0, 1);
      CP.CuOfMethod[size_t(Root)] = int32_t(CP.CUs.size());
      CP.CUs.push_back(std::move(CU));
    }
    CP.InlineFingerprint = Fingerprint;
    return CP;
  }

private:
  /// Resolves the statically known target of a call site, or -1: static
  /// calls resolve directly; virtual calls only when monomorphic.
  MethodId resolveTarget(const Instr &In) const {
    if (In.Op == Opcode::CallStatic)
      return In.Aux;
    if (In.Op != Opcode::CallVirtual)
      return -1;
    if (!Reach.isMonomorphic(P, In.Aux))
      return -1;
    std::vector<MethodId> Targets = Reach.reachableTargets(P, In.Aux);
    return Targets.size() == 1 ? Targets[0] : -1;
  }

  bool shouldInline(MethodId Target, uint32_t Size, const CompilationUnit &CU,
                    int Depth) const {
    const Method &Meth = P.method(Target);
    if (Meth.IsAbstract || Meth.IsClinit)
      return false;
    // No recursive inlining.
    if (std::find(Chain.begin(), Chain.end(), Target) != Chain.end())
      return false;
    if (CU.CodeSize + Size > Config.MaxCuSize)
      return false;
    if (Size <= Config.TrivialSize)
      return true;
    return Size <= Config.SmallSize && Depth < Config.MaxDepth;
  }

  void inlineInto(CompilationUnit &CU, int32_t CopyIdx, int Depth) {
    // Note: CU.Copies may reallocate during recursion; index, don't hold
    // references.
    MethodId M = CU.Copies[size_t(CopyIdx)].Method;
    const Method &Meth = P.method(M);
    for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
      const BasicBlock &BB = Meth.Blocks[B];
      for (size_t I = 0; I < BB.Instrs.size(); ++I) {
        const Instr &In = BB.Instrs[I];
        if (In.Op != Opcode::CallStatic && In.Op != Opcode::CallVirtual)
          continue;
        uint32_t Site = makeSiteId(BlockId(B), I);
        MethodId Target = resolveTarget(In);
        if (Target == -1) {
          noteDecision(CU.Root, CopyIdx, Site, -1);
          continue;
        }
        uint32_t Size = methodCodeSize(P, Target, Instrumented);
        if (!shouldInline(Target, Size, CU, Depth)) {
          noteDecision(CU.Root, CopyIdx, Site, -1);
          continue;
        }
        InlineCopy Copy;
        Copy.Method = Target;
        Copy.ParentCopy = CopyIdx;
        Copy.SiteId = Site;
        Copy.CodeOffset = CU.CodeSize;
        Copy.CodeSize = Size;
        CU.CodeSize += Size;
        int32_t NewIdx = int32_t(CU.Copies.size());
        CU.Copies.push_back(Copy);
        CU.InlineMap.emplace(CompilationUnit::siteKey(CopyIdx, Site), NewIdx);
        noteDecision(CU.Root, CopyIdx, Site, Target);
        Chain.push_back(Target);
        inlineInto(CU, NewIdx, Depth + 1);
        Chain.pop_back();
      }
    }
  }

  void noteDecision(MethodId Root, int32_t Copy, uint32_t Site,
                    MethodId Inlined) {
    uint64_t Key = (uint64_t(uint32_t(Root)) << 40) ^
                   (uint64_t(uint32_t(Copy)) << 32) ^ Site;
    Fingerprint = mix64(Fingerprint, mix64(Key, uint64_t(Inlined + 2)));
  }

  const Program &P;
  const ReachabilityResult &Reach;
  const InlinerConfig &Config;
  bool Instrumented;
  std::vector<MethodId> Chain;
  uint64_t Fingerprint = 0x9e3779b97f4a7c15ULL;
};

} // namespace

CompiledProgram nimg::buildCompilationUnits(const Program &P,
                                            const ReachabilityResult &Reach,
                                            const InlinerConfig &Config,
                                            bool Instrumented) {
  return InlinerDriver(P, Reach, Config, Instrumented).run();
}
