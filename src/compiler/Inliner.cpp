//===- Inliner.cpp - Size-driven inlining into compilation units ----------===//

#include "src/compiler/Inliner.h"

#include "src/compiler/CodeSize.h"
#include "src/support/Murmur3.h"
#include "src/support/SplitMix64.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

using namespace nimg;

namespace {

std::function<bool(MethodId)> &compileFaultHook() {
  static std::function<bool(MethodId)> Hook;
  return Hook;
}

/// Result of one per-root compile task. Decisions made while building a CU
/// depend only on that CU's own state, so the tasks are independent; the
/// global InlineFingerprint is the sequential mix64 fold of every CU's
/// DecisionHashes in root order, which reproduces the sequential driver's
/// chain exactly (the fold itself happens on the caller, after the join).
struct CuResult {
  CompilationUnit CU;
  std::vector<uint64_t> DecisionHashes;
  bool Faulted = false;
  std::string FaultWhat;
};

/// Compiles one CU: the root method plus greedy size-budgeted inlining.
class CuCompiler {
public:
  CuCompiler(const Program &P, const ReachabilityResult &Reach,
             const InlinerConfig &Config, bool Instrumented)
      : P(P), Reach(Reach), Config(Config), Instrumented(Instrumented) {}

  CuResult compile(MethodId Root) {
    CuResult R;
    R.CU.Root = Root;
    InlineCopy RootCopy;
    RootCopy.Method = Root;
    RootCopy.CodeOffset = 0;
    RootCopy.CodeSize = methodCodeSize(P, Root, Instrumented);
    R.CU.CodeSize = RootCopy.CodeSize;
    R.CU.Copies.push_back(RootCopy);
    Chain.clear();
    Chain.push_back(Root);
    inlineInto(R, 0, 1);
    return R;
  }

  /// The degraded CU used when the compile task for \p Root threw: just the
  /// root body, no inlining, no fingerprint contribution. Deterministic by
  /// construction (depends only on the root's code size).
  static CuResult rootOnly(const Program &P, MethodId Root, bool Instrumented,
                           std::string What) {
    CuResult R;
    R.CU.Root = Root;
    InlineCopy RootCopy;
    RootCopy.Method = Root;
    RootCopy.CodeOffset = 0;
    RootCopy.CodeSize = methodCodeSize(P, Root, Instrumented);
    R.CU.CodeSize = RootCopy.CodeSize;
    R.CU.Copies.push_back(RootCopy);
    R.Faulted = true;
    R.FaultWhat = std::move(What);
    return R;
  }

private:
  MethodId resolveTarget(const Instr &In) const {
    if (In.Op == Opcode::CallStatic)
      return In.Aux;
    if (In.Op != Opcode::CallVirtual)
      return -1;
    if (!Reach.isMonomorphic(P, In.Aux))
      return -1;
    std::vector<MethodId> Targets = Reach.reachableTargets(P, In.Aux);
    return Targets.size() == 1 ? Targets[0] : -1;
  }

  bool shouldInline(MethodId Target, uint32_t Size, const CompilationUnit &CU,
                    int Depth) const {
    const Method &Meth = P.method(Target);
    if (Meth.IsAbstract || Meth.IsClinit)
      return false;
    // No recursive inlining.
    if (std::find(Chain.begin(), Chain.end(), Target) != Chain.end())
      return false;
    if (CU.CodeSize + Size > Config.MaxCuSize)
      return false;
    if (Size <= Config.TrivialSize)
      return true;
    return Size <= Config.SmallSize && Depth < Config.MaxDepth;
  }

  void inlineInto(CuResult &R, int32_t CopyIdx, int Depth) {
    CompilationUnit &CU = R.CU;
    // Note: CU.Copies may reallocate during recursion; index, don't hold
    // references.
    MethodId M = CU.Copies[size_t(CopyIdx)].Method;
    const Method &Meth = P.method(M);
    for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
      const BasicBlock &BB = Meth.Blocks[B];
      for (size_t I = 0; I < BB.Instrs.size(); ++I) {
        const Instr &In = BB.Instrs[I];
        if (In.Op != Opcode::CallStatic && In.Op != Opcode::CallVirtual)
          continue;
        uint32_t Site = makeSiteId(BlockId(B), I);
        MethodId Target = resolveTarget(In);
        if (Target == -1) {
          noteDecision(R, CU.Root, CopyIdx, Site, -1);
          continue;
        }
        uint32_t Size = methodCodeSize(P, Target, Instrumented);
        if (!shouldInline(Target, Size, CU, Depth)) {
          noteDecision(R, CU.Root, CopyIdx, Site, -1);
          continue;
        }
        InlineCopy Copy;
        Copy.Method = Target;
        Copy.ParentCopy = CopyIdx;
        Copy.SiteId = Site;
        Copy.CodeOffset = CU.CodeSize;
        Copy.CodeSize = Size;
        CU.CodeSize += Size;
        int32_t NewIdx = int32_t(CU.Copies.size());
        CU.Copies.push_back(Copy);
        CU.InlineMap.emplace(CompilationUnit::siteKey(CopyIdx, Site), NewIdx);
        noteDecision(R, CU.Root, CopyIdx, Site, Target);
        Chain.push_back(Target);
        inlineInto(R, NewIdx, Depth + 1);
        Chain.pop_back();
      }
    }
  }

  void noteDecision(CuResult &R, MethodId Root, int32_t Copy, uint32_t Site,
                    MethodId Inlined) {
    uint64_t Key = (uint64_t(uint32_t(Root)) << 40) ^
                   (uint64_t(uint32_t(Copy)) << 32) ^ Site;
    R.DecisionHashes.push_back(mix64(Key, uint64_t(Inlined + 2)));
  }

  const Program &P;
  const ReachabilityResult &Reach;
  const InlinerConfig &Config;
  bool Instrumented;
  std::vector<MethodId> Chain;
};

} // namespace

void nimg::setCompileFaultHookForTest(std::function<bool(MethodId)> Hook) {
  compileFaultHook() = std::move(Hook);
}

CompiledProgram nimg::buildCompilationUnits(const Program &P,
                                            const ReachabilityResult &Reach,
                                            const InlinerConfig &Config,
                                            bool Instrumented) {
  CompiledProgram CP;
  CP.Instrumented = Instrumented;
  CP.CuOfMethod.assign(P.numMethods(), -1);

  std::vector<MethodId> Roots = Reach.compiledMethods(P);
  // Default .text order: alphabetical by root signature (Sec. 2).
  std::sort(Roots.begin(), Roots.end(), [&](MethodId A, MethodId B) {
    return P.method(A).Sig < P.method(B).Sig;
  });

  // Each task compiles one CU; a task that throws degrades to a root-only
  // CU so one bad unit cannot wedge or fail the whole build (the Builder
  // records the fault as a ProfileDiag issue).
  std::vector<CuResult> Results =
      parallelMap(Roots.size(), 8, "compile", [&](size_t I) {
        MethodId Root = Roots[I];
        try {
          if (compileFaultHook() && compileFaultHook()(Root))
            throw std::runtime_error("injected compile fault");
          return CuCompiler(P, Reach, Config, Instrumented).compile(Root);
        } catch (const std::exception &E) {
          return CuCompiler::rootOnly(P, Root, Instrumented, E.what());
        }
      });

  // Ordered splice: root order is fixed above, so the CU vector, the
  // CU-of-method table, and the fingerprint fold are identical for any
  // worker count.
  CP.CUs.reserve(Results.size());
  uint64_t Fp = 0x9e3779b97f4a7c15ULL;
  for (CuResult &R : Results) {
    if (R.Faulted)
      CP.CompileFaults.emplace_back(R.CU.Root, std::move(R.FaultWhat));
    for (uint64_t H : R.DecisionHashes)
      Fp = mix64(Fp, H);
    CP.CuOfMethod[size_t(R.CU.Root)] = int32_t(CP.CUs.size());
    CP.CUs.push_back(std::move(R.CU));
  }
  CP.InlineFingerprint = Fp;
  return CP;
}
