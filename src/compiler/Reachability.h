//===- Reachability.h - RTA-style reachability with saturation -*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to-style reachability analysis the build pipeline runs before
/// compiling (Sec. 2). It is a rapid-type-analysis variant: methods become
/// reachable through calls, classes become instantiated through NewObject,
/// and virtual calls dispatch to implementations in instantiated subclasses.
/// Per the paper, the analysis employs *saturation*: when a dispatch
/// selector accumulates more concrete targets than a threshold, it is
/// marked saturated and conservatively reaches every implementation
/// program-wide (and is never devirtualized).
///
/// The analysis is deliberately conservative — "always includes more code
/// than what is actually reachable or executed at runtime" — which is what
/// makes the default binary layout page-fault heavy and profile-guided
/// reordering worthwhile.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_COMPILER_REACHABILITY_H
#define NIMG_COMPILER_REACHABILITY_H

#include "src/ir/Program.h"

#include <vector>

namespace nimg {

struct ReachabilityConfig {
  /// Selector target count beyond which dispatch saturates (Sec. 2 cites
  /// saturation per Wimmer et al., PLDI'24).
  int SaturationThreshold = 8;
};

struct ReachabilityResult {
  std::vector<bool> ReachableMethods;    ///< Indexed by MethodId.
  std::vector<bool> InstantiatedClasses; ///< Indexed by ClassId.
  std::vector<bool> ReachableClasses;    ///< Statics used or instantiated.
  std::vector<bool> SaturatedSelectors;  ///< Indexed by SelectorId.

  /// Methods to compile into the image: reachable, concrete, and not a
  /// static initializer (initializers run at build time only, Sec. 2).
  std::vector<MethodId> compiledMethods(const Program &P) const;

  /// Classes whose static initializers run during the image build, in
  /// class-id order (the build permutes this order per its seed).
  std::vector<ClassId> buildTimeInitClasses(const Program &P) const;

  size_t numReachableMethods() const;

  /// True when a virtual call to \p Declared is devirtualizable: exactly
  /// one reachable target and an unsaturated selector.
  bool isMonomorphic(const Program &P, MethodId Declared) const;

  /// The reachable dispatch targets of a virtual call to \p Declared.
  std::vector<MethodId> reachableTargets(const Program &P,
                                         MethodId Declared) const;
};

/// Runs the analysis from Program::MainMethod plus every Sys.spawn target
/// discovered in reachable code.
ReachabilityResult analyzeReachability(const Program &P,
                                       const ReachabilityConfig &Config = {});

} // namespace nimg

#endif // NIMG_COMPILER_REACHABILITY_H
