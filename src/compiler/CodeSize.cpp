//===- CodeSize.cpp - Machine-code size model ------------------------------===//

#include "src/compiler/CodeSize.h"

using namespace nimg;

uint32_t nimg::instrCodeSize(const Instr &In) {
  switch (In.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstDouble:
  case Opcode::ConstBool:
  case Opcode::ConstNull:
  case Opcode::ConstString:
    return 8;
  case Opcode::Move:
  case Opcode::I2D:
  case Opcode::D2I:
    return 4;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::BitAnd:
  case Opcode::BitOr:
  case Opcode::BitXor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return 6;
  case Opcode::Concat:
    return 16;
  case Opcode::NewObject:
  case Opcode::NewArray:
    return 24;
  case Opcode::ArrayLen:
    return 8;
  case Opcode::ALoad:
  case Opcode::AStore:
    return 10;
  case Opcode::GetField:
  case Opcode::PutField:
    return 8;
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    return 10;
  case Opcode::CallStatic:
    return 20 + 4 * In.ArgsCount;
  case Opcode::CallVirtual:
    return 28 + 4 * In.ArgsCount;
  case Opcode::CallNative:
    return 20 + 4 * In.ArgsCount;
  case Opcode::Ret:
    return 8;
  case Opcode::Br:
    return 8;
  case Opcode::Jmp:
    return 4;
  }
  return 8;
}

uint32_t nimg::instrProbeSize(const Instr &In) {
  uint32_t Probe = 0;
  // Cut points emit a trace record: calls, returns, and (conservatively)
  // branches that may be loop back edges.
  switch (In.Op) {
  case Opcode::CallStatic:
  case Opcode::CallVirtual:
  case Opcode::CallNative:
    Probe += 24;
    break;
  case Opcode::Ret:
    Probe += 24;
    break;
  case Opcode::Br:
  case Opcode::Jmp:
    Probe += 8; // path-register update
    break;
  default:
    break;
  }
  // Heap-access sites store object identifiers into the thread-local
  // buffer (Sec. 6.1).
  Probe += 20 * traceSlotCount(In.Op, In.Aux);
  return Probe;
}

uint32_t nimg::methodCodeSize(const Program &P, MethodId M,
                              bool Instrumented) {
  const Method &Meth = P.method(M);
  uint32_t Size = 16; // prologue
  if (Instrumented)
    Size += 16; // CU-entry / method-entry probe
  for (const BasicBlock &BB : Meth.Blocks) {
    for (const Instr &In : BB.Instrs) {
      Size += instrCodeSize(In);
      if (Instrumented)
        Size += instrProbeSize(In);
    }
  }
  return Size;
}
