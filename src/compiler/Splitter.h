//===- Splitter.h - Profile-guided hot/cold CU splitting --------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits compilation units into a hot and a cold fragment from per-block
/// execution counts (BlockProfile, derived from the replayed Ball-Larus
/// path profiles). The paper's orderers move *whole* CUs, so a hot CU
/// still drags its never-executed blocks — exception paths, slow paths —
/// onto startup pages; BOLT-style splitting (Panchenko et al.) exiles
/// those blocks to a cold tail packed after the last startup-touched page
/// of .text (ImageLayout), composing with every code-ordering strategy.
///
/// Decision rule, per CU: a block is *hot* when its profile count is
/// nonzero for the method of any inline copy containing it (counts are
/// keyed by method signature, so they apply to every inline copy of a
/// method). A never-executed block with both index neighbors hot and a
/// size at or below the glue threshold stays hot (fall-through glue —
/// exiling it would cost two stubs for fewer saved bytes than the stubs
/// spend). Each static CFG edge crossing the hot/cold boundary pays a stub
/// branch, charged to the source block's fragment. A CU splits only when
/// it has at least one hot and one cold block and the cold fragment saves
/// at least MinColdBytes.
///
/// Degradation: when the block profile is missing, unusable, or its
/// salvage coverage is below MinCoveragePermille, every CU stays unsplit
/// and one typed `insufficient_block_profile` issue is recorded (the build
/// still succeeds). A CU whose profile is internally inconsistent (hot
/// blocks but a cold root entry block) degrades individually with the same
/// slug. Split decisions are pure functions of the merged profile, so the
/// result — and the DecisionFingerprint folded into the build fingerprint
/// — is byte-identical for any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_COMPILER_SPLITTER_H
#define NIMG_COMPILER_SPLITTER_H

#include "src/compiler/Inliner.h"
#include "src/profiling/Analyses.h"

#include <cstdint>
#include <vector>

namespace nimg {

enum class SplitMode : uint8_t { None, HotCold };

/// How blocks are laid out *within* a split CU's hot fragment. None keeps
/// block index order; ExtTsp reorders by the ext-TSP objective
/// (src/ordering/ExtTsp.h) using CFG-edge counts (EdgeProfile). Cold
/// fragments always keep index order — they are never fetched on startup,
/// so intra-fragment locality buys nothing there.
enum class BlockOrderMode : uint8_t { None, ExtTsp };

struct SplitOptions {
  /// Hot-fragment block ordering. Requires an EdgeProfile when ExtTsp;
  /// a missing/unusable/under-covered one degrades every hot fragment to
  /// index order with a typed `insufficient_edge_profile` issue.
  BlockOrderMode Blocks = BlockOrderMode::None;
  /// Minimum salvage coverage (permille of trace words kept) the block
  /// profile must vouch for; below it, counts under-report executed blocks
  /// and a wrongly-cold block would fault on the cold tail every startup.
  uint32_t MinCoveragePermille = 900;
  /// Minimum cold bytes (before stubs) a CU must shed to be worth two
  /// fragments.
  uint32_t MinColdBytes = 32;
  /// Modeled size of one stub branch across the hot/cold boundary.
  uint32_t StubBytes = 8;
  /// Never-executed blocks at or below this size with hot index neighbors
  /// stay hot (fall-through glue).
  uint32_t GlueMaxBytes = 12;
};

/// Placement of one basic block inside its copy's fragment pair.
struct BlockPlace {
  uint32_t Offset = 0; ///< Within the CU's hot or cold fragment.
  uint32_t Size = 0;   ///< Block bytes (entry block carries the prologue).
  bool Cold = false;
};

/// One inline copy's share of a split CU. Offsets address the CU's hot
/// fragment (laid out by the code-ordering strategy) or its cold fragment
/// (packed on the cold tail).
struct CopySplit {
  uint32_t HotOffset = 0;
  uint32_t HotSize = 0; ///< Hot block bytes + hot-side stubs.
  uint32_t ColdOffset = 0;
  uint32_t ColdSize = 0; ///< Cold block bytes + cold-side stubs.
  std::vector<BlockPlace> Blocks; ///< Indexed by the method's BlockId.
};

/// Split decision for one CU. An unsplit CU has Split == false and
/// HotSize == CodeSize; its Copies are empty unless ext-TSP reordered the
/// CU's whole body as a degenerate hot fragment (Split stays false — the
/// placements are layout bookkeeping, not a cold-tail decision).
struct CuSplit {
  bool Split = false;
  uint32_t HotSize = 0;
  uint32_t ColdSize = 0;
  uint32_t StubBytes = 0; ///< Total stub bytes (counted in Hot/ColdSize).
  std::vector<CopySplit> Copies;
};

/// Accounting of the ext-TSP hot-fragment block reordering
/// (SplitOptions::Blocks == ExtTsp). All weights are profile edge counts
/// restricted to the edges the reorder can affect: hot-hot edges of split
/// CUs plus all counted edges of executed unsplit CUs (whose whole body
/// is a degenerate hot fragment). Before/after pairs compare block index
/// order against the emitted order.
struct ExtTspSummary {
  bool Requested = false; ///< --blocks exttsp was on.
  bool Applied = false;   ///< Usable edge profile; >= 1 fragment reordered.
  uint32_t ReorderedCus = 0;
  /// Split CUs whose hot fragments kept index order for lack of mapped
  /// edge rows (plus, on whole-profile degradation, every split CU).
  uint32_t DegradedCus = 0;
  uint64_t ChainMerges = 0;
  double ScoreBefore = 0; ///< Summed ext-TSP objective, index order.
  double ScoreAfter = 0;  ///< ... emitted order (>= ScoreBefore).
  uint64_t EdgeWeight = 0;        ///< Total hot-hot edge weight considered.
  uint64_t FallthroughBefore = 0; ///< Weight falling through, index order.
  uint64_t FallthroughAfter = 0;  ///< ... emitted order.
  uint64_t TakenBefore = 0;       ///< Weight taking a branch, index order.
  uint64_t TakenAfter = 0;        ///< ... emitted order.
  double JumpDistanceBefore = 0;  ///< Sum of weight x byte distance over
                                  ///< taken branches, index order.
  double JumpDistanceAfter = 0;   ///< ... emitted order.
};

/// The whole program's split decisions plus accounting. PerCu is indexed
/// like CompiledProgram::CUs.
struct SplitResult {
  SplitMode Mode = SplitMode::None;
  std::vector<CuSplit> PerCu;
  /// Order-independent hash over every per-CU decision; the Builder folds
  /// it into the build fingerprint so split and unsplit builds of the same
  /// program diverge deterministically.
  uint64_t DecisionFingerprint = 0;
  uint32_t SplitCus = 0;
  uint32_t DegradedCus = 0; ///< CUs forced unsplit by a profile problem.
  uint64_t HotBytes = 0;
  uint64_t ColdBytes = 0;
  uint64_t StubBytes = 0;
  /// Typed degradation findings (insufficient_block_profile,
  /// insufficient_edge_profile), capped like profile ingestion issues.
  std::vector<ProfileIssue> Issues;
  /// Ext-TSP reordering accounting; all-zero unless Opts.Blocks == ExtTsp.
  ExtTspSummary ExtTsp;

  bool active() const { return Mode == SplitMode::HotCold; }
};

/// Runs the splitting pass. \p Prof may be null (no block profile was
/// offered): every CU stays unsplit with a single degradation issue.
/// \p CP must be the optimized (non-instrumented) program — block sizes
/// are modeled without probes. \p Edges feeds the ext-TSP hot-fragment
/// block reordering and is only consulted when Opts.Blocks == ExtTsp;
/// null/unusable/under-covered edge counts degrade every hot fragment to
/// block index order (the split itself still happens).
SplitResult splitCompiledProgram(const Program &P, const CompiledProgram &CP,
                                 const BlockProfile *Prof,
                                 const SplitOptions &Opts = {},
                                 const EdgeProfile *Edges = nullptr);

} // namespace nimg

#endif // NIMG_COMPILER_SPLITTER_H
