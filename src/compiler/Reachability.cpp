//===- Reachability.cpp - RTA-style reachability with saturation -----------===//

#include "src/compiler/Reachability.h"

#include <algorithm>
#include <cassert>

using namespace nimg;

namespace {

class Analyzer {
public:
  Analyzer(const Program &P, const ReachabilityConfig &Config)
      : P(P), Config(Config) {
    R.ReachableMethods.assign(P.numMethods(), false);
    R.InstantiatedClasses.assign(P.numClasses(), false);
    R.ReachableClasses.assign(P.numClasses(), false);
    SelectorTargets.clear();
  }

  ReachabilityResult run() {
    assert(P.MainMethod != -1 && "reachability requires an entry point");
    addMethod(P.MainMethod);
    markClassReachable(P.method(P.MainMethod).Class);
    while (!Worklist.empty()) {
      MethodId M = Worklist.back();
      Worklist.pop_back();
      scanMethod(M);
    }
    // Convert per-selector target sets to the saturation bit vector.
    size_t MaxSelector = 0;
    for (size_t M = 0; M < P.numMethods(); ++M)
      if (P.method(MethodId(M)).Selector >= 0)
        MaxSelector = std::max(MaxSelector,
                               size_t(P.method(MethodId(M)).Selector) + 1);
    R.SaturatedSelectors.assign(MaxSelector, false);
    for (const auto &[Sel, Targets] : SelectorTargets)
      if (int(Targets.size()) > Config.SaturationThreshold)
        R.SaturatedSelectors[size_t(Sel)] = true;
    return std::move(R);
  }

private:
  void addMethod(MethodId M) {
    if (M < 0 || R.ReachableMethods[size_t(M)])
      return;
    const Method &Meth = P.method(M);
    if (Meth.IsAbstract)
      return;
    R.ReachableMethods[size_t(M)] = true;
    Worklist.push_back(M);
  }

  void markClassReachable(ClassId C) {
    for (ClassId Cur = C; Cur != -1; Cur = P.classDef(Cur).Super) {
      if (R.ReachableClasses[size_t(Cur)])
        break;
      R.ReachableClasses[size_t(Cur)] = true;
      // Static initializers of reachable classes execute during the image
      // build; their code contributes to reachability.
      if (P.classDef(Cur).Clinit != -1)
        addMethod(P.classDef(Cur).Clinit);
    }
  }

  void markInstantiated(ClassId C) {
    if (R.InstantiatedClasses[size_t(C)])
      return;
    R.InstantiatedClasses[size_t(C)] = true;
    markClassReachable(C);
    // Re-dispatch every recorded virtual site against the new class.
    for (MethodId Declared : VirtualSites)
      dispatchSite(Declared, C);
  }

  void dispatchSite(MethodId Declared, ClassId Receiver) {
    const Method &Decl = P.method(Declared);
    if (!P.isSubclassOf(Receiver, Decl.Class))
      return;
    MethodId Target = P.resolveVirtual(Receiver, Declared);
    if (Target == -1)
      return;
    recordSelectorTarget(Decl.Selector, Target);
    addMethod(Target);
  }

  void recordSelectorTarget(SelectorId Sel, MethodId Target) {
    auto &Targets = SelectorTargets[Sel];
    if (std::find(Targets.begin(), Targets.end(), Target) != Targets.end())
      return;
    Targets.push_back(Target);
    // Saturation: once a selector exceeds the threshold, conservatively
    // reach every implementation of the selector program-wide.
    if (int(Targets.size()) == Config.SaturationThreshold + 1) {
      for (size_t M = 0; M < P.numMethods(); ++M) {
        const Method &Meth = P.method(MethodId(M));
        if (Meth.Selector == Sel && !Meth.IsAbstract)
          addMethod(MethodId(M));
      }
    }
  }

  void addVirtualSite(MethodId Declared) {
    if (std::find(VirtualSites.begin(), VirtualSites.end(), Declared) !=
        VirtualSites.end())
      return;
    VirtualSites.push_back(Declared);
    // Dispatch against everything already instantiated.
    for (size_t C = 0; C < P.numClasses(); ++C)
      if (R.InstantiatedClasses[C])
        dispatchSite(Declared, ClassId(C));
  }

  void scanMethod(MethodId M) {
    const Method &Meth = P.method(M);
    for (const BasicBlock &BB : Meth.Blocks) {
      for (const Instr &In : BB.Instrs) {
        switch (In.Op) {
        case Opcode::CallStatic:
          markClassReachable(P.method(In.Aux).Class);
          addMethod(In.Aux);
          break;
        case Opcode::CallVirtual:
          addVirtualSite(In.Aux);
          break;
        case Opcode::CallNative:
          if (NativeId(In.Aux) == NativeId::Spawn) {
            markClassReachable(P.method(In.Aux2).Class);
            addMethod(In.Aux2);
          }
          break;
        case Opcode::NewObject:
          markInstantiated(In.Aux);
          break;
        case Opcode::GetStatic:
        case Opcode::PutStatic:
          markClassReachable(In.Aux);
          break;
        default:
          break;
        }
      }
    }
  }

  const Program &P;
  const ReachabilityConfig &Config;
  ReachabilityResult R;
  std::vector<MethodId> Worklist;
  std::vector<MethodId> VirtualSites; ///< Declared methods of virtual calls.
  std::unordered_map<SelectorId, std::vector<MethodId>> SelectorTargets;
};

} // namespace

ReachabilityResult
nimg::analyzeReachability(const Program &P, const ReachabilityConfig &Config) {
  return Analyzer(P, Config).run();
}

std::vector<MethodId>
ReachabilityResult::compiledMethods(const Program &P) const {
  std::vector<MethodId> Out;
  for (size_t M = 0; M < P.numMethods(); ++M) {
    if (!ReachableMethods[M])
      continue;
    const Method &Meth = P.method(MethodId(M));
    if (Meth.IsClinit || Meth.IsAbstract)
      continue;
    Out.push_back(MethodId(M));
  }
  return Out;
}

std::vector<ClassId>
ReachabilityResult::buildTimeInitClasses(const Program &P) const {
  std::vector<ClassId> Out;
  for (size_t C = 0; C < P.numClasses(); ++C)
    if (ReachableClasses[C])
      Out.push_back(ClassId(C));
  return Out;
}

size_t ReachabilityResult::numReachableMethods() const {
  size_t N = 0;
  for (bool B : ReachableMethods)
    N += B;
  return N;
}

std::vector<MethodId>
ReachabilityResult::reachableTargets(const Program &P,
                                     MethodId Declared) const {
  const Method &Decl = P.method(Declared);
  std::vector<MethodId> Out;
  for (size_t C = 0; C < P.numClasses(); ++C) {
    if (!InstantiatedClasses[C])
      continue;
    if (!P.isSubclassOf(ClassId(C), Decl.Class))
      continue;
    MethodId Target = P.resolveVirtual(ClassId(C), Declared);
    if (Target == -1)
      continue;
    if (std::find(Out.begin(), Out.end(), Target) == Out.end())
      Out.push_back(Target);
  }
  return Out;
}

bool ReachabilityResult::isMonomorphic(const Program &P,
                                       MethodId Declared) const {
  const Method &Decl = P.method(Declared);
  if (Decl.Selector >= 0 && size_t(Decl.Selector) < SaturatedSelectors.size() &&
      SaturatedSelectors[size_t(Decl.Selector)])
    return false;
  return reachableTargets(P, Declared).size() == 1;
}
