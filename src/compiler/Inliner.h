//===- Inliner.h - Size-driven inlining into compilation units -*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forms compilation units (CUs): every compiled method becomes the root of
/// one CU, and callees are inlined greedily under size budgets (Sec. 2: "A
/// CU consists of a root method, and all the methods that were inlined into
/// that root method"). Virtual call sites inline only when the reachability
/// analysis proves them monomorphic (guarded at run time by the execution
/// engine, mirroring guarded devirtualization).
///
/// The instrumented build computes sizes including tracing probes, so its
/// inlining decisions — and therefore its CU set and default heap-snapshot
/// order — diverge from the optimized build's. That divergence is exactly
/// the cross-build object-matching problem of Sec. 5.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_COMPILER_INLINER_H
#define NIMG_COMPILER_INLINER_H

#include "src/compiler/Reachability.h"
#include "src/ir/Program.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace nimg {

/// One inlined method body placed inside a CU. Copy 0 is the root method.
struct InlineCopy {
  MethodId Method = -1;
  int32_t ParentCopy = -1;  ///< Copy whose call site this was inlined into.
  uint32_t SiteId = 0;      ///< Call site (makeSiteId) in the parent copy.
  uint32_t CodeOffset = 0;  ///< Byte offset within the CU's code blob.
  uint32_t CodeSize = 0;    ///< Byte size of this copy.
};

/// A compilation unit: the unit of code placement in .text.
struct CompilationUnit {
  MethodId Root = -1;
  std::vector<InlineCopy> Copies;
  uint32_t CodeSize = 0;
  /// Maps (parentCopy, siteId) to the inlined copy for that call site.
  std::unordered_map<uint64_t, int32_t> InlineMap;

  static uint64_t siteKey(int32_t Copy, uint32_t SiteId) {
    return (uint64_t(uint32_t(Copy)) << 32) | SiteId;
  }

  /// Returns the inlined copy index for a call from \p Copy at \p SiteId
  /// targeting \p Target, or -1 when the call is not inlined (or the
  /// devirtualization guard fails).
  int32_t inlinedCopyFor(int32_t Copy, uint32_t SiteId,
                         MethodId Target) const {
    auto It = InlineMap.find(siteKey(Copy, SiteId));
    if (It == InlineMap.end())
      return -1;
    return Copies[size_t(It->second)].Method == Target ? It->second : -1;
  }
};

struct InlinerConfig {
  uint32_t TrivialSize = 48;  ///< Always inline bodies at or below this.
  uint32_t SmallSize = 180;   ///< Inline up to this when depth allows.
  uint32_t MaxCuSize = 2400;  ///< CU code-size budget in bytes.
  int MaxDepth = 4;
};

/// The compiled program: CU per compiled method, in the default (.text
/// alphabetical-by-root-signature) order.
struct CompiledProgram {
  bool Instrumented = false;
  std::vector<CompilationUnit> CUs;
  std::vector<int32_t> CuOfMethod; ///< MethodId -> CU index or -1.
  /// Hash over all inlining decisions; PEA-style snapshot elision keys off
  /// it so snapshot contents follow inlining divergence (Sec. 2).
  uint64_t InlineFingerprint = 0;
  /// Roots whose compile task threw: each degraded to a root-only CU (no
  /// inlining, no fingerprint contribution) instead of failing the build.
  /// The Builder surfaces these through the image's ProfileDiag.
  std::vector<std::pair<MethodId, std::string>> CompileFaults;

  const CompilationUnit &cuOf(MethodId M) const {
    return CUs[size_t(CuOfMethod[size_t(M)])];
  }
  size_t totalCodeSize() const {
    size_t S = 0;
    for (const CompilationUnit &CU : CUs)
      S += CU.CodeSize;
    return S;
  }
};

/// Builds compilation units for every compiled reachable method. CUs are
/// compiled in parallel on the shared pool (sharedPool(); `--jobs` /
/// NIMG_JOBS) and spliced in stable root order, so the CU set, .text
/// order, and inline fingerprint are byte-identical for any worker count.
CompiledProgram buildCompilationUnits(const Program &P,
                                      const ReachabilityResult &Reach,
                                      const InlinerConfig &Config,
                                      bool Instrumented);

/// Test-only fault injection: when set, a compile task whose root makes
/// the hook return true throws mid-build (exercising the pool's exception
/// path and the Builder's degradation policy). Install/clear only while no
/// build is running; pass nullptr to clear.
void setCompileFaultHookForTest(std::function<bool(MethodId Root)> Hook);

} // namespace nimg

#endif // NIMG_COMPILER_INLINER_H
