//===- Splitter.cpp - Profile-guided hot/cold CU splitting ------------------===//

#include "src/compiler/Splitter.h"

#include "src/compiler/CodeSize.h"
#include "src/obs/Metrics.h"
#include "src/ordering/ExtTsp.h"
#include "src/support/SplitMix64.h"

#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace nimg;

namespace {

/// Issue cap mirroring profile ingestion (Analyses.cpp): a pathological
/// profile must not balloon the report.
constexpr size_t MaxRecordedIssues = 16;

void addIssue(SplitResult &R, ProfileError Kind, size_t Row,
              std::string Detail) {
  if (R.Issues.size() < MaxRecordedIssues)
    R.Issues.push_back({Kind, Row, std::move(Detail)});
}

/// Per-block byte sizes of one method body under the CodeSize model. The
/// entry block carries the prologue, so the sum over blocks equals
/// methodCodeSize() — and therefore the copy's CodeSize — exactly.
std::vector<uint32_t> blockSizes(const Program &P, MethodId M,
                                 bool Instrumented) {
  const Method &Meth = P.method(M);
  std::vector<uint32_t> Sizes(Meth.Blocks.size(), 0);
  for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
    uint32_t S = 0;
    for (const Instr &In : Meth.Blocks[B].Instrs) {
      S += instrCodeSize(In);
      if (Instrumented)
        S += instrProbeSize(In);
    }
    Sizes[B] = S;
  }
  if (!Sizes.empty()) {
    Sizes[0] += 16; // prologue
    if (Instrumented)
      Sizes[0] += 16; // CU-entry / method-entry probe
  }
  return Sizes;
}

/// Static successors of block \p B (mirrors PathGraph's CFG walk).
void successorsOf(const Method &Meth, size_t B, BlockId Out[2], size_t &N) {
  N = 0;
  const Instr &Term = Meth.Blocks[B].Instrs.back();
  switch (Term.Op) {
  case Opcode::Br:
    Out[N++] = Term.Target;
    Out[N++] = BlockId(Term.Aux2);
    break;
  case Opcode::Jmp:
    Out[N++] = Term.Target;
    break;
  default:
    break;
  }
}

/// Lazily resolved per-method hot-block sets from the profile rows.
class HotBlocks {
public:
  HotBlocks(const Program &P, const BlockProfile &Prof) {
    for (const BlockProfile::Row &R : Prof.Rows) {
      if (R.Count == 0)
        continue;
      auto It = MethodOf.find(R.Sig);
      MethodId M;
      if (It != MethodOf.end()) {
        M = It->second;
      } else {
        M = P.findMethodBySig(R.Sig);
        MethodOf.emplace(R.Sig, M);
      }
      if (M < 0)
        continue; // Stale row from another program version; ignore.
      std::vector<bool> &Hot = HotOf[M];
      if (Hot.size() < P.method(M).Blocks.size())
        Hot.resize(P.method(M).Blocks.size(), false);
      if (size_t(R.Block) < Hot.size())
        Hot[R.Block] = true;
    }
  }

  /// The hot bitvector of \p M, or null when the method never executed.
  const std::vector<bool> *of(MethodId M) const {
    auto It = HotOf.find(M);
    return It == HotOf.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, MethodId> MethodOf;
  std::unordered_map<MethodId, std::vector<bool>> HotOf;
};

/// Per-method CFG-edge weights resolved from the edge profile rows, keyed
/// like HotBlocks (signatures apply to every inline copy).
class EdgeCounts {
public:
  EdgeCounts() = default;
  EdgeCounts(const Program &P, const EdgeProfile &Prof) {
    for (const EdgeProfile::Row &R : Prof.Rows) {
      if (R.Count == 0)
        continue;
      auto It = MethodOf.find(R.Sig);
      MethodId M;
      if (It != MethodOf.end()) {
        M = It->second;
      } else {
        M = P.findMethodBySig(R.Sig);
        MethodOf.emplace(R.Sig, M);
      }
      if (M < 0)
        continue; // Stale row from another program version; ignore.
      EdgesOf[M].push_back({R.From, R.To, R.Count});
    }
  }

  /// Edges of \p M in profile row order (Sig/From/To-sorted, so
  /// deterministic), or null when the method has no counted edges.
  const std::vector<ExtTspEdge> *of(MethodId M) const {
    auto It = EdgesOf.find(M);
    return It == EdgesOf.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, MethodId> MethodOf;
  std::unordered_map<MethodId, std::vector<ExtTspEdge>> EdgesOf;
};

/// Fall-through / taken-branch decomposition of one linear order of the
/// hot-fragment blocks: how much edge weight falls through, how much
/// takes a branch, and the weighted byte distance those branches travel.
struct OrderCost {
  uint64_t Fallthrough = 0;
  uint64_t Taken = 0;
  double Distance = 0;
};

OrderCost orderCost(const std::vector<uint32_t> &Order,
                    const std::vector<uint32_t> &Sizes,
                    const std::vector<ExtTspEdge> &Edges) {
  std::vector<uint64_t> Start(Sizes.size(), 0);
  uint64_t Cur = 0;
  for (uint32_t B : Order) {
    Start[B] = Cur;
    Cur += Sizes[B];
  }
  OrderCost C;
  for (const ExtTspEdge &E : Edges) {
    uint64_t SrcEnd = Start[E.From] + Sizes[E.From];
    uint64_t DstStart = Start[E.To];
    if (DstStart == SrcEnd) {
      C.Fallthrough += E.Weight;
    } else {
      C.Taken += E.Weight;
      uint64_t D = DstStart > SrcEnd ? DstStart - SrcEnd : SrcEnd - DstStart;
      C.Distance += double(E.Weight) * double(D);
    }
  }
  return C;
}

void meterSplit(const SplitResult &R) {
  NIMG_COUNTER_ADD("nimg.split.cus_split", R.SplitCus);
  NIMG_COUNTER_ADD("nimg.split.cus_degraded", R.DegradedCus);
  NIMG_COUNTER_ADD("nimg.split.hot_bytes", R.HotBytes);
  NIMG_COUNTER_ADD("nimg.split.cold_bytes", R.ColdBytes);
  NIMG_COUNTER_ADD("nimg.split.stub_bytes", R.StubBytes);
  if (R.ExtTsp.Requested) {
    const ExtTspSummary &T = R.ExtTsp;
    NIMG_COUNTER_ADD("nimg.layout.exttsp.cus_reordered", T.ReorderedCus);
    NIMG_COUNTER_ADD("nimg.layout.exttsp.cus_degraded", T.DegradedCus);
    NIMG_COUNTER_ADD("nimg.layout.exttsp.chain_merges", T.ChainMerges);
    NIMG_GAUGE_SET("nimg.layout.exttsp.fallthrough_permille",
                   int64_t(T.EdgeWeight
                               ? T.FallthroughAfter * 1000 / T.EdgeWeight
                               : 0));
    NIMG_GAUGE_SET("nimg.layout.exttsp.score_uplift_permille",
                   int64_t(T.ScoreBefore > 0
                               ? (T.ScoreAfter - T.ScoreBefore) * 1000.0 /
                                     T.ScoreBefore
                               : 0));
  }
#ifdef NIMG_OBS_DISABLED
  (void)R;
#endif
}

} // namespace

SplitResult nimg::splitCompiledProgram(const Program &P,
                                       const CompiledProgram &CP,
                                       const BlockProfile *Prof,
                                       const SplitOptions &Opts,
                                       const EdgeProfile *Edges) {
  SplitResult R;
  R.Mode = SplitMode::HotCold;
  R.PerCu.resize(CP.CUs.size());

  // Whole-profile degradation: missing, unusable, or under-covered block
  // counts leave every CU unsplit (a block wrongly believed cold would
  // fault on the cold tail every startup). The build still succeeds.
  bool Degraded = false;
  if (!Prof) {
    addIssue(R, ProfileError::InsufficientBlockProfile, 0,
             "no block profile offered");
    Degraded = true;
  } else if (!Prof->usable()) {
    addIssue(R, ProfileError::InsufficientBlockProfile, 0,
             std::string("block profile rejected: ") +
                 profileErrorSlug(Prof->LoadError));
    Degraded = true;
  } else if (Prof->CoveragePermille < Opts.MinCoveragePermille) {
    addIssue(R, ProfileError::InsufficientBlockProfile, 0,
             "salvage coverage " + std::to_string(Prof->CoveragePermille) +
                 " permille below threshold " +
                 std::to_string(Opts.MinCoveragePermille));
    Degraded = true;
  }

  // Edge-profile degradation is independent and softer: the split itself
  // still happens; only the intra-fragment reorder falls back to block
  // index order.
  bool EdgeDegraded = false;
  if (Opts.Blocks == BlockOrderMode::ExtTsp) {
    R.ExtTsp.Requested = true;
    if (Degraded) {
      EdgeDegraded = true; // Nothing splits, so nothing can reorder.
    } else if (!Edges) {
      addIssue(R, ProfileError::InsufficientEdgeProfile, 0,
               "no edge profile offered");
      EdgeDegraded = true;
    } else if (!Edges->usable()) {
      addIssue(R, ProfileError::InsufficientEdgeProfile, 0,
               std::string("edge profile rejected: ") +
                   profileErrorSlug(Edges->LoadError));
      EdgeDegraded = true;
    } else if (Edges->CoveragePermille < Opts.MinCoveragePermille) {
      addIssue(R, ProfileError::InsufficientEdgeProfile, 0,
               "edge salvage coverage " +
                   std::to_string(Edges->CoveragePermille) +
                   " permille below threshold " +
                   std::to_string(Opts.MinCoveragePermille));
      EdgeDegraded = true;
    }
  }
  const bool DoExtTsp = R.ExtTsp.Requested && !EdgeDegraded;

  HotBlocks Hot = Degraded ? HotBlocks(P, BlockProfile{})
                           : HotBlocks(P, *Prof);
  EdgeCounts EdgeW = DoExtTsp ? EdgeCounts(P, *Edges) : EdgeCounts();
  const ExtTspOptions TspOpts;

  uint64_t Fp = 0x5eed5eedULL;
  uint64_t ExiledCopies = 0;
  for (size_t CuIdx = 0; CuIdx < CP.CUs.size(); ++CuIdx) {
    const CompilationUnit &CU = CP.CUs[CuIdx];
    CuSplit &S = R.PerCu[CuIdx];
    S.HotSize = CU.CodeSize;

    // Gather per-copy sizes and hotness.
    struct CopyPlan {
      std::vector<uint32_t> Sizes;
      std::vector<bool> Hot;
    };
    std::vector<CopyPlan> Plans;
    bool AnyHot = false, AnyCold = false;
    uint64_t ColdRaw = 0;
    if (!Degraded) {
      Plans.resize(CU.Copies.size());
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        const InlineCopy &Copy = CU.Copies[C];
        CopyPlan &Plan = Plans[C];
        Plan.Sizes = blockSizes(P, Copy.Method, CP.Instrumented);
        Plan.Hot.assign(Plan.Sizes.size(), false);
        const std::vector<bool> *H = Hot.of(Copy.Method);
        for (size_t B = 0; B < Plan.Hot.size(); ++B)
          Plan.Hot[B] = H && B < H->size() && (*H)[B];
      }
      // Call-site reachability: block counts aggregate over every inline
      // copy of a method, so a copy of a hot method inlined at a call site
      // whose block never executed anywhere was provably never entered —
      // exile the whole copy. Copies follow their parent in index order
      // (recursive construction), so one forward pass propagates
      // unreachability down the inline tree. This runs on the raw profile
      // bits, before glue: a glue-hot block is a placement choice, not
      // execution evidence.
      std::vector<bool> Reachable(CU.Copies.size(), true);
      for (size_t C = 1; C < CU.Copies.size(); ++C) {
        const InlineCopy &Copy = CU.Copies[C];
        size_t Parent = size_t(Copy.ParentCopy);
        size_t SiteBlock = size_t(Copy.SiteId >> 16);
        assert(Parent < C && "inline copies must follow their parent");
        if (!Reachable[Parent] || SiteBlock >= Plans[Parent].Hot.size() ||
            !Plans[Parent].Hot[SiteBlock]) {
          Reachable[C] = false;
          Plans[C].Hot.assign(Plans[C].Hot.size(), false);
          ++ExiledCopies;
        }
      }
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        CopyPlan &Plan = Plans[C];
        // Fall-through glue: a tiny never-executed block wedged between
        // hot index neighbors stays hot — exiling it costs more stub
        // bytes than it saves.
        for (size_t B = 1; B + 1 < Plan.Hot.size(); ++B)
          if (!Plan.Hot[B] && Plan.Hot[B - 1] && Plan.Hot[B + 1] &&
              Plan.Sizes[B] <= Opts.GlueMaxBytes)
            Plan.Hot[B] = true;
        for (size_t B = 0; B < Plan.Hot.size(); ++B) {
          if (Plan.Hot[B]) {
            AnyHot = true;
          } else {
            AnyCold = true;
            ColdRaw += Plan.Sizes[B];
          }
        }
      }
    }

    bool WantSplit = !Degraded && AnyHot && AnyCold &&
                     ColdRaw >= Opts.MinColdBytes;
    if (WantSplit) {
      // Internal consistency: a CU with execution evidence must have a hot
      // root entry block (every entry into the CU runs it). A profile that
      // says otherwise under-reports — degrade this CU individually.
      if (Plans[0].Hot.empty() || !Plans[0].Hot[0]) {
        addIssue(R, ProfileError::InsufficientBlockProfile, 0,
                 "cold root entry block in executed CU " +
                     P.method(CU.Root).Sig);
        ++R.DegradedCus;
        WantSplit = false;
      }
    }

    if (WantSplit) {
      S.Split = true;
      S.Copies.resize(CU.Copies.size());
      uint32_t HotCur = 0, ColdCur = 0, StubTotal = 0;
      uint64_t CuEdgeWeight = 0;
      bool CuReordered = false;
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        const CopyPlan &Plan = Plans[C];
        const Method &Meth = P.method(CU.Copies[C].Method);
        CopySplit &CS = S.Copies[C];
        CS.HotOffset = HotCur;
        CS.ColdOffset = ColdCur;
        CS.Blocks.resize(Plan.Sizes.size());

        // Local indexing of this copy's hot blocks (index order): local 0
        // is the first hot block — the fragment's entry, which the
        // reorderer pins first.
        std::vector<uint32_t> HotLocal; // local index -> BlockId
        std::vector<int32_t> LocalOf(Plan.Sizes.size(), -1);
        std::vector<uint32_t> HotSizes;
        for (size_t B = 0; B < Plan.Sizes.size(); ++B)
          if (Plan.Hot[B]) {
            LocalOf[B] = int32_t(HotLocal.size());
            HotLocal.push_back(uint32_t(B));
            HotSizes.push_back(Plan.Sizes[B]);
          }
        std::vector<uint32_t> HotOrder(HotLocal.size());
        std::iota(HotOrder.begin(), HotOrder.end(), 0);

        if (DoExtTsp && HotLocal.size() >= 3) {
          // Map the method's counted CFG edges onto this copy's hot
          // fragment; edges touching a cold or out-of-range block cannot
          // be improved by an intra-hot reorder and are dropped.
          std::vector<ExtTspEdge> Local;
          if (const std::vector<ExtTspEdge> *ME =
                  EdgeW.of(CU.Copies[C].Method)) {
            for (const ExtTspEdge &E : *ME)
              if (E.From < LocalOf.size() && E.To < LocalOf.size() &&
                  LocalOf[E.From] >= 0 && LocalOf[E.To] >= 0 &&
                  E.From != E.To)
                Local.push_back({uint32_t(LocalOf[E.From]),
                                 uint32_t(LocalOf[E.To]), E.Weight});
          }
          if (!Local.empty()) {
            ExtTspResult ER = extTspOrder(HotSizes, Local, TspOpts);
            ExtTspSummary &T = R.ExtTsp;
            T.ScoreBefore += ER.IdentityScore;
            T.ScoreAfter += ER.Score;
            T.ChainMerges += ER.ChainMerges;
            std::vector<uint32_t> Identity(HotOrder);
            OrderCost Before = orderCost(Identity, HotSizes, Local);
            OrderCost After = orderCost(ER.Order, HotSizes, Local);
            T.FallthroughBefore += Before.Fallthrough;
            T.FallthroughAfter += After.Fallthrough;
            T.TakenBefore += Before.Taken;
            T.TakenAfter += After.Taken;
            T.JumpDistanceBefore += Before.Distance;
            T.JumpDistanceAfter += After.Distance;
            for (const ExtTspEdge &E : Local)
              CuEdgeWeight += E.Weight;
            if (!ER.KeptIdentity) {
              HotOrder = std::move(ER.Order);
              CuReordered = true;
            }
          }
        }

        for (size_t B = 0; B < Plan.Sizes.size(); ++B) {
          CS.Blocks[B].Size = Plan.Sizes[B];
          CS.Blocks[B].Cold = !Plan.Hot[B];
        }
        // Hot blocks in the chosen order (index order unless the
        // reorderer strictly improved the objective); cold blocks always
        // in index order.
        for (uint32_t L : HotOrder) {
          BlockPlace &Place = CS.Blocks[HotLocal[L]];
          Place.Offset = HotCur;
          HotCur += Place.Size;
        }
        for (size_t B = 0; B < Plan.Sizes.size(); ++B) {
          BlockPlace &Place = CS.Blocks[B];
          if (Place.Cold) {
            Place.Offset = ColdCur;
            ColdCur += Place.Size;
          }
        }
        // One stub branch per static CFG edge crossing the boundary,
        // charged to the source block's fragment.
        uint32_t HotEdges = 0, ColdEdges = 0;
        for (size_t B = 0; B < Plan.Sizes.size(); ++B) {
          BlockId Succ[2];
          size_t N = 0;
          successorsOf(Meth, B, Succ, N);
          for (size_t I = 0; I < N; ++I) {
            size_t T = size_t(Succ[I]);
            if (T < Plan.Hot.size() && Plan.Hot[B] != Plan.Hot[T])
              ++(Plan.Hot[B] ? HotEdges : ColdEdges);
          }
        }
        HotCur += HotEdges * Opts.StubBytes;
        ColdCur += ColdEdges * Opts.StubBytes;
        StubTotal += (HotEdges + ColdEdges) * Opts.StubBytes;
        CS.HotSize = HotCur - CS.HotOffset;
        CS.ColdSize = ColdCur - CS.ColdOffset;
      }
      S.HotSize = HotCur;
      S.ColdSize = ColdCur;
      S.StubBytes = StubTotal;
      assert(uint64_t(S.HotSize) + S.ColdSize ==
                 uint64_t(CU.CodeSize) + S.StubBytes &&
             "fragment sizes must account for every byte plus stubs");
      ++R.SplitCus;
      if (DoExtTsp) {
        R.ExtTsp.EdgeWeight += CuEdgeWeight;
        if (CuReordered) {
          ++R.ExtTsp.ReorderedCus;
        } else if (CuEdgeWeight == 0) {
          // Split CU with no counted hot-hot edge at all: the reorderer
          // had nothing to work from. Typed per-CU degradation.
          ++R.ExtTsp.DegradedCus;
          addIssue(R, ProfileError::InsufficientEdgeProfile, 0,
                   "no edge rows mapped onto split CU " +
                       P.method(CU.Root).Sig);
        }
      }
    } else if (DoExtTsp && !Degraded && AnyHot) {
      // Executed but unsplit CU (tight kernels keep every block hot, so
      // nothing moves to the cold tail): its whole body is one degenerate
      // hot fragment with an empty cold side, and BOLT reorders those
      // too. Counted edges pull their blocks into chains; never-executed
      // blocks keep their relative index order behind them. The placement
      // is recorded only when the objective strictly improves, so
      // untouched CUs stay byte-identical to --blocks none (Split stays
      // false either way — the runtime keeps touching the copy ranges it
      // always touched, which is why the reorder cannot change faults).
      std::vector<CopySplit> Copies(CU.Copies.size());
      uint32_t HotCur = 0;
      uint64_t CuEdgeWeight = 0;
      bool CuReordered = false;
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        const CopyPlan &Plan = Plans[C];
        CopySplit &CS = Copies[C];
        CS.HotOffset = HotCur;
        CS.Blocks.resize(Plan.Sizes.size());
        std::vector<uint32_t> Order(Plan.Sizes.size());
        std::iota(Order.begin(), Order.end(), 0);
        if (Plan.Sizes.size() >= 3) {
          // Whole-body fragment: block ids are already the local indices.
          std::vector<ExtTspEdge> Local;
          if (const std::vector<ExtTspEdge> *ME =
                  EdgeW.of(CU.Copies[C].Method)) {
            for (const ExtTspEdge &E : *ME)
              if (E.From < Plan.Sizes.size() && E.To < Plan.Sizes.size() &&
                  E.From != E.To)
                Local.push_back(E);
          }
          if (!Local.empty()) {
            ExtTspResult ER = extTspOrder(Plan.Sizes, Local, TspOpts);
            ExtTspSummary &T = R.ExtTsp;
            T.ScoreBefore += ER.IdentityScore;
            T.ScoreAfter += ER.Score;
            T.ChainMerges += ER.ChainMerges;
            OrderCost Before = orderCost(Order, Plan.Sizes, Local);
            OrderCost After = orderCost(ER.Order, Plan.Sizes, Local);
            T.FallthroughBefore += Before.Fallthrough;
            T.FallthroughAfter += After.Fallthrough;
            T.TakenBefore += Before.Taken;
            T.TakenAfter += After.Taken;
            T.JumpDistanceBefore += Before.Distance;
            T.JumpDistanceAfter += After.Distance;
            for (const ExtTspEdge &E : Local)
              CuEdgeWeight += E.Weight;
            if (!ER.KeptIdentity) {
              Order = std::move(ER.Order);
              CuReordered = true;
            }
          }
        }
        for (size_t B = 0; B < Plan.Sizes.size(); ++B)
          CS.Blocks[B].Size = Plan.Sizes[B];
        for (uint32_t L : Order) {
          CS.Blocks[L].Offset = HotCur;
          HotCur += CS.Blocks[L].Size;
        }
        CS.HotSize = HotCur - CS.HotOffset;
      }
      assert(HotCur == CU.CodeSize &&
             "whole-body fragment must account for every byte");
      R.ExtTsp.EdgeWeight += CuEdgeWeight;
      if (CuReordered) {
        S.Copies = std::move(Copies);
        ++R.ExtTsp.ReorderedCus;
      }
    }

    R.HotBytes += S.HotSize;
    R.ColdBytes += S.ColdSize;
    R.StubBytes += S.StubBytes;

    // Fold this CU's decision into the fingerprint: the split flag plus
    // every block's fragment assignment and intra-fragment offset (the
    // offset captures the ext-TSP order, so two builds that split alike
    // but lay hot blocks differently diverge deterministically).
    Fp = mix64(Fp, (uint64_t(CuIdx) << 1) | (S.Split ? 1 : 0));
    if (S.Split || !S.Copies.empty()) {
      uint64_t H = 0;
      for (size_t C = 0; C < S.Copies.size(); ++C)
        for (size_t B = 0; B < S.Copies[C].Blocks.size(); ++B) {
          const BlockPlace &Place = S.Copies[C].Blocks[B];
          H = mix64(H, (uint64_t(C) << 33) | (uint64_t(B) << 1) |
                           (Place.Cold ? 1 : 0));
          H = mix64(H, Place.Offset);
        }
      Fp = mix64(Fp, H);
    }
  }

  if (Degraded)
    R.DegradedCus = uint32_t(CP.CUs.size());
  if (R.ExtTsp.Requested) {
    // Whole-profile edge degradation: every split CU kept index order.
    if (EdgeDegraded)
      R.ExtTsp.DegradedCus = R.SplitCus;
    R.ExtTsp.Applied = DoExtTsp && R.ExtTsp.ReorderedCus > 0;
  }
  R.DecisionFingerprint = Fp;
  NIMG_COUNTER_ADD("nimg.split.copies_exiled", ExiledCopies);
  meterSplit(R);
  return R;
}
