//===- Splitter.cpp - Profile-guided hot/cold CU splitting ------------------===//

#include "src/compiler/Splitter.h"

#include "src/compiler/CodeSize.h"
#include "src/obs/Metrics.h"
#include "src/support/SplitMix64.h"

#include <cassert>
#include <unordered_map>

using namespace nimg;

namespace {

/// Issue cap mirroring profile ingestion (Analyses.cpp): a pathological
/// profile must not balloon the report.
constexpr size_t MaxRecordedIssues = 16;

void addIssue(SplitResult &R, size_t Row, std::string Detail) {
  if (R.Issues.size() < MaxRecordedIssues)
    R.Issues.push_back(
        {ProfileError::InsufficientBlockProfile, Row, std::move(Detail)});
}

/// Per-block byte sizes of one method body under the CodeSize model. The
/// entry block carries the prologue, so the sum over blocks equals
/// methodCodeSize() — and therefore the copy's CodeSize — exactly.
std::vector<uint32_t> blockSizes(const Program &P, MethodId M,
                                 bool Instrumented) {
  const Method &Meth = P.method(M);
  std::vector<uint32_t> Sizes(Meth.Blocks.size(), 0);
  for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
    uint32_t S = 0;
    for (const Instr &In : Meth.Blocks[B].Instrs) {
      S += instrCodeSize(In);
      if (Instrumented)
        S += instrProbeSize(In);
    }
    Sizes[B] = S;
  }
  if (!Sizes.empty()) {
    Sizes[0] += 16; // prologue
    if (Instrumented)
      Sizes[0] += 16; // CU-entry / method-entry probe
  }
  return Sizes;
}

/// Static successors of block \p B (mirrors PathGraph's CFG walk).
void successorsOf(const Method &Meth, size_t B, BlockId Out[2], size_t &N) {
  N = 0;
  const Instr &Term = Meth.Blocks[B].Instrs.back();
  switch (Term.Op) {
  case Opcode::Br:
    Out[N++] = Term.Target;
    Out[N++] = BlockId(Term.Aux2);
    break;
  case Opcode::Jmp:
    Out[N++] = Term.Target;
    break;
  default:
    break;
  }
}

/// Lazily resolved per-method hot-block sets from the profile rows.
class HotBlocks {
public:
  HotBlocks(const Program &P, const BlockProfile &Prof) {
    for (const BlockProfile::Row &R : Prof.Rows) {
      if (R.Count == 0)
        continue;
      auto It = MethodOf.find(R.Sig);
      MethodId M;
      if (It != MethodOf.end()) {
        M = It->second;
      } else {
        M = P.findMethodBySig(R.Sig);
        MethodOf.emplace(R.Sig, M);
      }
      if (M < 0)
        continue; // Stale row from another program version; ignore.
      std::vector<bool> &Hot = HotOf[M];
      if (Hot.size() < P.method(M).Blocks.size())
        Hot.resize(P.method(M).Blocks.size(), false);
      if (size_t(R.Block) < Hot.size())
        Hot[R.Block] = true;
    }
  }

  /// The hot bitvector of \p M, or null when the method never executed.
  const std::vector<bool> *of(MethodId M) const {
    auto It = HotOf.find(M);
    return It == HotOf.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, MethodId> MethodOf;
  std::unordered_map<MethodId, std::vector<bool>> HotOf;
};

void meterSplit(const SplitResult &R) {
  NIMG_COUNTER_ADD("nimg.split.cus_split", R.SplitCus);
  NIMG_COUNTER_ADD("nimg.split.cus_degraded", R.DegradedCus);
  NIMG_COUNTER_ADD("nimg.split.hot_bytes", R.HotBytes);
  NIMG_COUNTER_ADD("nimg.split.cold_bytes", R.ColdBytes);
  NIMG_COUNTER_ADD("nimg.split.stub_bytes", R.StubBytes);
#ifdef NIMG_OBS_DISABLED
  (void)R;
#endif
}

} // namespace

SplitResult nimg::splitCompiledProgram(const Program &P,
                                       const CompiledProgram &CP,
                                       const BlockProfile *Prof,
                                       const SplitOptions &Opts) {
  SplitResult R;
  R.Mode = SplitMode::HotCold;
  R.PerCu.resize(CP.CUs.size());

  // Whole-profile degradation: missing, unusable, or under-covered block
  // counts leave every CU unsplit (a block wrongly believed cold would
  // fault on the cold tail every startup). The build still succeeds.
  bool Degraded = false;
  if (!Prof) {
    addIssue(R, 0, "no block profile offered");
    Degraded = true;
  } else if (!Prof->usable()) {
    addIssue(R, 0, std::string("block profile rejected: ") +
                       profileErrorSlug(Prof->LoadError));
    Degraded = true;
  } else if (Prof->CoveragePermille < Opts.MinCoveragePermille) {
    addIssue(R, 0, "salvage coverage " +
                       std::to_string(Prof->CoveragePermille) +
                       " permille below threshold " +
                       std::to_string(Opts.MinCoveragePermille));
    Degraded = true;
  }

  HotBlocks Hot = Degraded ? HotBlocks(P, BlockProfile{})
                           : HotBlocks(P, *Prof);

  uint64_t Fp = 0x5eed5eedULL;
  uint64_t ExiledCopies = 0;
  for (size_t CuIdx = 0; CuIdx < CP.CUs.size(); ++CuIdx) {
    const CompilationUnit &CU = CP.CUs[CuIdx];
    CuSplit &S = R.PerCu[CuIdx];
    S.HotSize = CU.CodeSize;

    // Gather per-copy sizes and hotness.
    struct CopyPlan {
      std::vector<uint32_t> Sizes;
      std::vector<bool> Hot;
    };
    std::vector<CopyPlan> Plans;
    bool AnyHot = false, AnyCold = false;
    uint64_t ColdRaw = 0;
    if (!Degraded) {
      Plans.resize(CU.Copies.size());
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        const InlineCopy &Copy = CU.Copies[C];
        CopyPlan &Plan = Plans[C];
        Plan.Sizes = blockSizes(P, Copy.Method, CP.Instrumented);
        Plan.Hot.assign(Plan.Sizes.size(), false);
        const std::vector<bool> *H = Hot.of(Copy.Method);
        for (size_t B = 0; B < Plan.Hot.size(); ++B)
          Plan.Hot[B] = H && B < H->size() && (*H)[B];
      }
      // Call-site reachability: block counts aggregate over every inline
      // copy of a method, so a copy of a hot method inlined at a call site
      // whose block never executed anywhere was provably never entered —
      // exile the whole copy. Copies follow their parent in index order
      // (recursive construction), so one forward pass propagates
      // unreachability down the inline tree. This runs on the raw profile
      // bits, before glue: a glue-hot block is a placement choice, not
      // execution evidence.
      std::vector<bool> Reachable(CU.Copies.size(), true);
      for (size_t C = 1; C < CU.Copies.size(); ++C) {
        const InlineCopy &Copy = CU.Copies[C];
        size_t Parent = size_t(Copy.ParentCopy);
        size_t SiteBlock = size_t(Copy.SiteId >> 16);
        assert(Parent < C && "inline copies must follow their parent");
        if (!Reachable[Parent] || SiteBlock >= Plans[Parent].Hot.size() ||
            !Plans[Parent].Hot[SiteBlock]) {
          Reachable[C] = false;
          Plans[C].Hot.assign(Plans[C].Hot.size(), false);
          ++ExiledCopies;
        }
      }
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        CopyPlan &Plan = Plans[C];
        // Fall-through glue: a tiny never-executed block wedged between
        // hot index neighbors stays hot — exiling it costs more stub
        // bytes than it saves.
        for (size_t B = 1; B + 1 < Plan.Hot.size(); ++B)
          if (!Plan.Hot[B] && Plan.Hot[B - 1] && Plan.Hot[B + 1] &&
              Plan.Sizes[B] <= Opts.GlueMaxBytes)
            Plan.Hot[B] = true;
        for (size_t B = 0; B < Plan.Hot.size(); ++B) {
          if (Plan.Hot[B]) {
            AnyHot = true;
          } else {
            AnyCold = true;
            ColdRaw += Plan.Sizes[B];
          }
        }
      }
    }

    bool WantSplit = !Degraded && AnyHot && AnyCold &&
                     ColdRaw >= Opts.MinColdBytes;
    if (WantSplit) {
      // Internal consistency: a CU with execution evidence must have a hot
      // root entry block (every entry into the CU runs it). A profile that
      // says otherwise under-reports — degrade this CU individually.
      if (Plans[0].Hot.empty() || !Plans[0].Hot[0]) {
        addIssue(R, 0, "cold root entry block in executed CU " +
                           P.method(CU.Root).Sig);
        ++R.DegradedCus;
        WantSplit = false;
      }
    }

    if (WantSplit) {
      S.Split = true;
      S.Copies.resize(CU.Copies.size());
      uint32_t HotCur = 0, ColdCur = 0, StubTotal = 0;
      for (size_t C = 0; C < CU.Copies.size(); ++C) {
        const CopyPlan &Plan = Plans[C];
        const Method &Meth = P.method(CU.Copies[C].Method);
        CopySplit &CS = S.Copies[C];
        CS.HotOffset = HotCur;
        CS.ColdOffset = ColdCur;
        CS.Blocks.resize(Plan.Sizes.size());
        for (size_t B = 0; B < Plan.Sizes.size(); ++B) {
          BlockPlace &Place = CS.Blocks[B];
          Place.Size = Plan.Sizes[B];
          Place.Cold = !Plan.Hot[B];
          if (Place.Cold) {
            Place.Offset = ColdCur;
            ColdCur += Place.Size;
          } else {
            Place.Offset = HotCur;
            HotCur += Place.Size;
          }
        }
        // One stub branch per static CFG edge crossing the boundary,
        // charged to the source block's fragment.
        uint32_t HotEdges = 0, ColdEdges = 0;
        for (size_t B = 0; B < Plan.Sizes.size(); ++B) {
          BlockId Succ[2];
          size_t N = 0;
          successorsOf(Meth, B, Succ, N);
          for (size_t I = 0; I < N; ++I) {
            size_t T = size_t(Succ[I]);
            if (T < Plan.Hot.size() && Plan.Hot[B] != Plan.Hot[T])
              ++(Plan.Hot[B] ? HotEdges : ColdEdges);
          }
        }
        HotCur += HotEdges * Opts.StubBytes;
        ColdCur += ColdEdges * Opts.StubBytes;
        StubTotal += (HotEdges + ColdEdges) * Opts.StubBytes;
        CS.HotSize = HotCur - CS.HotOffset;
        CS.ColdSize = ColdCur - CS.ColdOffset;
      }
      S.HotSize = HotCur;
      S.ColdSize = ColdCur;
      S.StubBytes = StubTotal;
      assert(uint64_t(S.HotSize) + S.ColdSize ==
                 uint64_t(CU.CodeSize) + S.StubBytes &&
             "fragment sizes must account for every byte plus stubs");
      ++R.SplitCus;
    }

    R.HotBytes += S.HotSize;
    R.ColdBytes += S.ColdSize;
    R.StubBytes += S.StubBytes;

    // Fold this CU's decision into the fingerprint: the split flag plus
    // every block's fragment assignment.
    Fp = mix64(Fp, (uint64_t(CuIdx) << 1) | (S.Split ? 1 : 0));
    if (S.Split) {
      uint64_t H = 0;
      for (size_t C = 0; C < S.Copies.size(); ++C)
        for (size_t B = 0; B < S.Copies[C].Blocks.size(); ++B)
          H = mix64(H, (uint64_t(C) << 33) | (uint64_t(B) << 1) |
                           (S.Copies[C].Blocks[B].Cold ? 1 : 0));
      Fp = mix64(Fp, H);
    }
  }

  if (Degraded)
    R.DegradedCus = uint32_t(CP.CUs.size());
  R.DecisionFingerprint = Fp;
  NIMG_COUNTER_ADD("nimg.split.copies_exiled", ExiledCopies);
  meterSplit(R);
  return R;
}
