//===- PathGraph.h - Ball-Larus path numbering with path cutting -*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-method path numbering for the tracing profiler (Sec. 6.1). The
/// method's CFG is segmented at frame-pushing call sites (so trace records
/// of callees interleave correctly with the caller's path records) and
/// loop back edges; both are *cut* edges in the Ball-Larus sense: they are
/// replaced by a dummy edge to Exit (where the running path value is
/// emitted) and a dummy edge from Entry (where the path value restarts).
/// Every acyclic Entry-to-Exit path in the resulting DAG has a unique id.
///
/// Each path id statically determines (a) whether the path starts at the
/// method entry (a method-entry event for *method ordering*, Sec. 4.2) and
/// (b) the ordered heap-access sites it contains and therefore exactly how
/// many object-identifier operands follow the path record in the trace
/// buffer (Sec. 6.1).
///
/// When the path count of a method would exceed PathLimit, the paper's
/// path-cutting optimization kicks in: we conservatively cut *every* edge,
/// making each segment its own unit-length path. This bounds the id space
/// while keeping decoding exact.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_PATHGRAPH_H
#define NIMG_PROFILING_PATHGRAPH_H

#include "src/ir/Program.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace nimg {

/// Decoded static content of one path.
struct PathEvents {
  bool MethodEntry = false;
  /// (siteId, operand count) of heap-access sites in path order.
  std::vector<std::pair<uint32_t, uint16_t>> Sites;
  uint32_t OperandCount = 0;
  /// Basic blocks the path visits, in path order, consecutive duplicates
  /// collapsed (a block's segments are one visit). This is the per-block
  /// execution evidence the hot/cold splitter consumes (Sec. 4 extension).
  std::vector<BlockId> Blocks;
};

/// The runtime action attached to a traversed CFG edge.
struct PathEdgeAction {
  bool Cut = false;
  uint64_t Add = 0;     ///< Non-cut: add to the running path value.
  uint64_t EmitAdd = 0; ///< Cut: emit (pathVal + EmitAdd) ...
  uint64_t Reset = 0;   ///< ... then restart pathVal at Reset.
};

class PathGraph {
public:
  /// Paths per method are capped at 2^20 so a path id always fits the
  /// trace-record field.
  static constexpr uint64_t PathLimit = 1u << 20;

  static std::unique_ptr<PathGraph> build(const Program &P, MethodId M);

  uint64_t numPaths() const { return TotalPaths; }
  bool fullyCut() const { return AllCut; }

  /// Path value when the method is entered.
  uint64_t entryValue() const { return EntryVal; }

  /// Action for the terminator edge from block \p From to block \p To.
  const PathEdgeAction &branchAction(BlockId From, BlockId To) const;

  /// Action for the (always cut) call edge at \p SiteId.
  const PathEdgeAction &callAction(uint32_t SiteId) const;

  /// EmitAdd for the Ret terminator of block \p Block.
  uint64_t retEmitAdd(BlockId Block) const;

  /// Decodes a path id into its static events. Ids come from traces, so an
  /// out-of-range id returns empty events rather than asserting.
  PathEvents decode(uint64_t PathId) const;

  /// Scratch-reusing variant of decode(): clears and refills \p Events in
  /// place, so a replay loop decoding one record per trace word keeps one
  /// PathEvents per worker instead of reallocating its vectors per record.
  void decodeInto(uint64_t PathId, PathEvents &Events) const;

private:
  PathGraph() = default;

  struct Node {
    BlockId Block;
    uint32_t SegIdx;
    /// Heap-access sites (siteId, operands) within this segment.
    std::vector<std::pair<uint32_t, uint16_t>> Sites;
    /// Outgoing edges: (head node index or -1 for Exit, value).
    std::vector<std::pair<int32_t, uint64_t>> Edges;
    uint64_t NumPaths = 0;
  };

  /// Entry's outgoing edges: (head node, value, isRealEntry).
  struct EntryEdge {
    int32_t Head;
    uint64_t Val;
    bool Real;
  };

  std::vector<Node> Nodes;
  std::vector<EntryEdge> EntryEdges;
  uint64_t TotalPaths = 0;
  uint64_t EntryVal = 0;
  bool AllCut = false;

  std::unordered_map<uint64_t, PathEdgeAction> BranchActions; // (from<<32)|to
  std::unordered_map<uint32_t, PathEdgeAction> CallActions;   // siteId
  std::unordered_map<int32_t, uint64_t> RetEmit;              // block

  friend class PathGraphBuilder;
};

/// Lazily built, shared per-program cache of path graphs. of() is
/// thread-safe — parallel trace post-processing shares one cache across
/// workers — and the returned reference stays valid for the cache's
/// lifetime (graphs are heap-allocated; the map only moves pointers).
class PathGraphCache {
public:
  explicit PathGraphCache(const Program &P) : P(P) {}

  const PathGraph &of(MethodId M) {
    std::lock_guard<std::mutex> G(Mu);
    auto It = Cache.find(M);
    if (It == Cache.end())
      It = Cache.emplace(M, PathGraph::build(P, M)).first;
    return *It->second;
  }

private:
  const Program &P;
  std::mutex Mu;
  std::unordered_map<MethodId, std::unique_ptr<PathGraph>> Cache;
};

/// Per-worker lock-free front of a shared PathGraphCache: repeat lookups
/// of the same method (the common case while replaying one thread's trace)
/// hit the local pointer map and never touch the shared mutex.
class LocalPathCache {
public:
  explicit LocalPathCache(PathGraphCache &Shared) : Shared(Shared) {}

  const PathGraph &of(MethodId M) {
    auto It = Local.find(M);
    if (It != Local.end())
      return *It->second;
    const PathGraph &G = Shared.of(M);
    Local.emplace(M, &G);
    return G;
  }

private:
  PathGraphCache &Shared;
  std::unordered_map<MethodId, const PathGraph *> Local;
};

} // namespace nimg

#endif // NIMG_PROFILING_PATHGRAPH_H
