//===- Analyses.h - Trace post-processing analyses --------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-processing framework of Sec. 6.2: analyses consume decoded
/// trace events in execution order (threads concatenated in creation
/// order, Sec. 7.1), keep an ordered set in encounter order, and emit a
/// CSV ordering profile that the optimizing build consumes.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_ANALYSES_H
#define NIMG_PROFILING_ANALYSES_H

#include "src/ordering/IdStrategies.h"
#include "src/profiling/PathGraph.h"
#include "src/profiling/Trace.h"

#include <string>
#include <vector>

namespace nimg {

/// Ordering profile over code: first-execution order of CU roots (cu
/// ordering) or of all methods (method ordering).
struct CodeProfile {
  std::vector<std::string> Sigs;

  std::string toCsv() const;
  static CodeProfile fromCsv(const std::string &Text);
};

/// Ordering profile over heap objects: first-access order of 64-bit
/// strategy ids.
struct HeapProfile {
  std::vector<uint64_t> Ids;

  std::string toCsv() const;
  static HeapProfile fromCsv(const std::string &Text);
};

/// An event sink in the visitor style of Sec. 6.2.
class OrderingAnalysis {
public:
  virtual ~OrderingAnalysis() = default;
  virtual void onCuEnter(MethodId Root) { (void)Root; }
  virtual void onMethodEnter(MethodId M) { (void)M; }
  /// \p SnapshotEntry is the traced image-object index (already >= 0).
  virtual void onObjectAccess(int32_t SnapshotEntry) { (void)SnapshotEntry; }
};

/// Replays a capture: decodes path records via \p Paths and dispatches
/// events to \p Analyses in execution order.
void replayTrace(const Program &P, const TraceCapture &Capture,
                 PathGraphCache &Paths,
                 const std::vector<OrderingAnalysis *> &Analyses);

/// The cu-ordering profile (Sec. 4.1) from a CuOrder-mode capture.
CodeProfile analyzeCuOrder(const Program &P, const TraceCapture &Capture);

/// The method-ordering profile (Sec. 4.2) from a MethodOrder-mode capture.
CodeProfile analyzeMethodOrder(const Program &P, const TraceCapture &Capture,
                               PathGraphCache &Paths);

/// First-access order of snapshot entries from a HeapOrder-mode capture.
std::vector<int32_t> analyzeHeapAccessOrder(const Program &P,
                                            const TraceCapture &Capture,
                                            PathGraphCache &Paths);

/// Translates a first-access entry order into a strategy-id profile using
/// the profiling build's identity table.
HeapProfile heapProfileFor(const std::vector<int32_t> &EntryOrder,
                           const IdTable &Ids, HeapStrategy Strategy);

} // namespace nimg

#endif // NIMG_PROFILING_ANALYSES_H
