//===- Analyses.h - Trace post-processing analyses --------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-processing framework of Sec. 6.2: analyses consume decoded
/// trace events in execution order (threads concatenated in creation
/// order, Sec. 7.1), keep an ordered set in encounter order, and emit a
/// CSV ordering profile that the optimizing build consumes.
///
/// Ingestion is crash-tolerant: replay salvages the longest valid prefix
/// of each thread (TraceSalvage.h), and the CSV interchange carries a
/// versioned header with a payload CRC-32 and program fingerprint so a
/// truncated, bit-flipped, or stale profile is rejected with a typed
/// diagnostic instead of silently producing a garbage layout.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_ANALYSES_H
#define NIMG_PROFILING_ANALYSES_H

#include "src/ordering/IdStrategies.h"
#include "src/profiling/PathGraph.h"
#include "src/profiling/ProfileDiagnostics.h"
#include "src/profiling/Trace.h"
#include "src/profiling/TraceSalvage.h"

#include <string>
#include <vector>

namespace nimg {

/// Ordering profile over code: first-execution order of CU roots (cu
/// ordering) or of all methods (method ordering).
struct CodeProfile {
  ProfileHeader Header;
  /// Fatal problem found by fromCsv(); a profile with a load error is
  /// empty and the optimizing build falls back to the default layout.
  ProfileError LoadError = ProfileError::None;
  std::vector<std::string> Sigs;
  /// Optional per-sig event counts (cu mode: cu_enter events observed for
  /// the root, summed across threads). Either empty (no count evidence —
  /// legacy and method/cluster profiles) or parallel to Sigs. The merge
  /// drift scorer compares these distributions across fleet members.
  std::vector<uint64_t> Counts;

  /// Count for \p I, treating missing count evidence as 1.
  uint64_t countAt(size_t I) const {
    return I < Counts.size() ? Counts[I] : 1;
  }

  /// Serializes header row + payload + CRC.
  std::string toCsv() const;
  /// Parses and validates; never throws or asserts on hostile input. The
  /// returned profile records any fatal problem in LoadError; pass
  /// \p Report for per-row diagnostics.
  static CodeProfile fromCsv(const std::string &Text,
                             ProfileReadReport *Report = nullptr);
};

/// Ordering profile over heap objects: first-access order of 64-bit
/// strategy ids.
struct HeapProfile {
  ProfileHeader Header;
  ProfileError LoadError = ProfileError::None;
  std::vector<uint64_t> Ids;

  std::string toCsv() const;
  static HeapProfile fromCsv(const std::string &Text,
                             ProfileReadReport *Report = nullptr);
};

/// An event sink in the visitor style of Sec. 6.2.
class OrderingAnalysis {
public:
  virtual ~OrderingAnalysis() = default;
  virtual void onCuEnter(MethodId Root) { (void)Root; }
  virtual void onMethodEnter(MethodId M) { (void)M; }
  /// One periodic sample from a Sampled-mode capture: the method that was
  /// executing at the sample tick and its enclosing CU root.
  virtual void onSample(MethodId M, MethodId Root) {
    (void)M;
    (void)Root;
  }
  /// One basic-block visit decoded from a path record (method/heap modes;
  /// consecutive duplicates within one path are collapsed).
  virtual void onBlockVisit(MethodId M, BlockId B) {
    (void)M;
    (void)B;
  }
  /// One whole decoded path record (method/heap modes): the path-ordered
  /// block list of a single Ball-Larus record, with \p MethodEntry telling
  /// whether the path starts at the method's entry block or at a cut point
  /// (frame-pushing call site / loop back edge). Consecutive pairs within
  /// \p Blocks are true CFG edges; analyses that need edge evidence (the
  /// ext-TSP block reorderer) consume this instead of reconstructing
  /// adjacency from onBlockVisit.
  virtual void onPathRecord(MethodId M, const std::vector<BlockId> &Blocks,
                            bool MethodEntry) {
    (void)M;
    (void)Blocks;
    (void)MethodEntry;
  }
  /// \p SnapshotEntry is the traced image-object index (already >= 0).
  virtual void onObjectAccess(int32_t SnapshotEntry) { (void)SnapshotEntry; }
};

/// Replays a capture: salvages each thread's longest valid prefix, decodes
/// path records via \p Paths, and dispatches events to \p Analyses in
/// execution order. \p Stats (optional) reports what salvage dropped.
void replayTrace(const Program &P, const TraceCapture &Capture,
                 PathGraphCache &Paths,
                 const std::vector<OrderingAnalysis *> &Analyses,
                 SalvageStats *Stats = nullptr);

/// Replays the already-salvaged prefix (\p End words) of one thread's
/// trace, dispatching events to \p Analyses in that thread's execution
/// order. The building block of the parallel analyses: the sequential
/// semantics ("threads concatenated in creation order") equal per-thread
/// replays merged in thread order. Callers obtain \p End from
/// scanCapture().
void replayThreadPrefix(const Program &P, TraceMode Mode,
                        const std::vector<uint64_t> &Words, size_t End,
                        LocalPathCache &Paths,
                        const std::vector<OrderingAnalysis *> &Analyses);

/// The cu-ordering profile (Sec. 4.1) from a CuOrder-mode capture. A
/// capture in the wrong mode yields an empty profile (and sets
/// Stats->ModeMismatch) instead of asserting — trace files are external
/// input.
CodeProfile analyzeCuOrder(const Program &P, const TraceCapture &Capture,
                           SalvageStats *Stats = nullptr);

/// The method-ordering profile (Sec. 4.2) from a MethodOrder-mode capture.
CodeProfile analyzeMethodOrder(const Program &P, const TraceCapture &Capture,
                               PathGraphCache &Paths,
                               SalvageStats *Stats = nullptr);

/// Rank reconstruction from a Sampled-mode capture at CU granularity: CU
/// roots ordered by their earliest sample (per-thread streams merged in
/// creation order), counts = sample hits per root. The emitted profile is
/// stamped Mode=cu with Capture=Sampled and the capture's period, so it
/// flows through the cu/cluster ingestion paths unchanged.
CodeProfile analyzeSampledCuOrder(const Program &P, const TraceCapture &Capture,
                                  SalvageStats *Stats = nullptr);

/// Same reconstruction at method granularity (Mode=method, for
/// `--code method` builds): methods ordered by earliest sample, counts =
/// sample hits per method.
CodeProfile analyzeSampledMethodOrder(const Program &P,
                                      const TraceCapture &Capture,
                                      SalvageStats *Stats = nullptr);

/// First-access order of snapshot entries from a HeapOrder-mode capture.
std::vector<int32_t> analyzeHeapAccessOrder(const Program &P,
                                            const TraceCapture &Capture,
                                            PathGraphCache &Paths,
                                            SalvageStats *Stats = nullptr);

/// Translates a first-access entry order into a strategy-id profile using
/// the profiling build's identity table.
HeapProfile heapProfileFor(const std::vector<int32_t> &EntryOrder,
                           const IdTable &Ids, HeapStrategy Strategy);

/// Per-basic-block execution counts derived by replaying a MethodOrder
/// path capture — the evidence the hot/cold CU splitter consumes. Counts
/// are keyed by (method signature, block index) so they apply to every
/// inline copy of a method. CoveragePermille records how much of the raw
/// trace survived salvage when the counts were derived; the splitter
/// degrades to unsplit below its threshold (the counts of a heavily
/// truncated trace under-report executed blocks, and a block wrongly
/// believed cold would fault on the cold tail every startup).
struct BlockProfile {
  ProfileHeader Header;
  ProfileError LoadError = ProfileError::None;
  /// WordsKept * 1000 / WordsScanned of the deriving salvage scan; 1000
  /// for a clean trace, 0 when nothing was scanned.
  uint32_t CoveragePermille = 1000;

  struct Row {
    std::string Sig;
    uint32_t Block = 0;
    uint64_t Count = 0;
  };
  /// Sorted by Sig then Block — a deterministic function of the merged
  /// profile, independent of --jobs.
  std::vector<Row> Rows;

  bool usable() const { return LoadError == ProfileError::None; }

  std::string toCsv() const;
  static BlockProfile fromCsv(const std::string &Text,
                              ProfileReadReport *Report = nullptr);
};

/// Derives per-block execution counts from a MethodOrder-mode capture.
/// Per-thread counts merge by summation, so the result is byte-identical
/// for any worker count. A capture in the wrong mode yields an empty
/// profile (and sets Stats->ModeMismatch).
BlockProfile analyzeBlockCounts(const Program &P, const TraceCapture &Capture,
                                PathGraphCache &Paths,
                                SalvageStats *Stats = nullptr);

/// Per-CFG-edge execution counts derived by replaying a MethodOrder path
/// capture — the evidence the ext-TSP block reorderer consumes. Edges are
/// keyed by (method signature, source block, target block), so counts
/// apply to every inline copy of a method, exactly like BlockProfile.
/// Consecutive block pairs within one path record are true CFG edges; the
/// edges a record cut severs (loop back edges, frame-pushing call sites)
/// are re-stitched across records of the same method when the static CFG
/// confirms the adjacency. CoveragePermille mirrors BlockProfile: the
/// reorderer degrades to block index order below its threshold.
struct EdgeProfile {
  ProfileHeader Header;
  ProfileError LoadError = ProfileError::None;
  /// WordsKept * 1000 / WordsScanned of the deriving salvage scan; 1000
  /// for a clean trace, 0 when nothing was scanned.
  uint32_t CoveragePermille = 1000;

  struct Row {
    std::string Sig;
    uint32_t From = 0;
    uint32_t To = 0;
    uint64_t Count = 0;
  };
  /// Sorted by Sig, then From, then To — a deterministic function of the
  /// merged profile, independent of --jobs.
  std::vector<Row> Rows;

  bool usable() const { return LoadError == ProfileError::None; }

  std::string toCsv() const;
  static EdgeProfile fromCsv(const std::string &Text,
                             ProfileReadReport *Report = nullptr);
};

/// Derives per-CFG-edge execution counts from a MethodOrder-mode capture
/// (the same capture analyzeBlockCounts replays; no extra instrumented
/// run). Per-thread counts merge by summation, so the result is
/// byte-identical for any worker count. A capture in the wrong mode
/// yields an empty profile (and sets Stats->ModeMismatch).
EdgeProfile analyzeEdgeCounts(const Program &P, const TraceCapture &Capture,
                              PathGraphCache &Paths,
                              SalvageStats *Stats = nullptr);

} // namespace nimg

#endif // NIMG_PROFILING_ANALYSES_H
