//===- Aggregate.h - Fleet-scale profile aggregation ------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validated multi-profile merging for fleet-scale PGO. Production
/// profile pipelines (BOLT, AutoFDO) do not get one clean instrumented
/// run: they ingest N per-instance profiles of mixed quality — truncated,
/// CRC-corrupt, version-skewed, stale, or statistically drifted — and
/// must still drive a layout. aggregateProfiles() classifies every member
/// (accepted / salvaged / quarantined, with a typed ProfileError reason),
/// merges the survivors by weighted first-execution rank (weight =
/// coverage x freshness decay), and degrades along a fixed ladder:
///
///   merged  ->  best single member  ->  default cu-order layout
///
/// so the build never fails on profile input. The whole fold runs in
/// fixed member order, making the merged profile a pure function of the
/// member list — byte-identical at any --jobs, same discipline as the
/// parallel analyses.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_AGGREGATE_H
#define NIMG_PROFILING_AGGREGATE_H

#include "src/profiling/Analyses.h"

#include <string>
#include <vector>

namespace nimg {

/// One per-instance profile offered to the aggregator, as loaded from
/// disk (or captured in-process). Name identifies the instance/workload;
/// duplicates within one set are quarantined (DuplicateMember).
struct MemberProfile {
  std::string Name;
  CodeProfile Profile;
  /// What fromCsv() saw while parsing this member (salvage evidence).
  ProfileReadReport Read;
};

/// Parses \p CsvText into a named member. Never throws: parse problems
/// land in Profile.LoadError / Read and quarantine the member later.
MemberProfile loadMemberProfile(std::string Name, const std::string &CsvText);

/// Reads each path into a member (member name = the path). An unreadable
/// file becomes a BadHeader-quarantined member rather than an error —
/// fail-open, like every other stage.
std::vector<MemberProfile>
loadMemberProfiles(const std::vector<std::string> &Paths);

/// Member files inside \p Dir: regular files named cu*.csv, sorted by
/// name so the member order — and therefore the merge — is deterministic.
std::vector<std::string> listMemberProfileDir(const std::string &Dir);

/// Knobs of the validation gates. Defaults are deliberately permissive:
/// quarantine is for evidence of damage, not for tuning.
struct MergeOptions {
  /// Members whose capture coverage (header cell, permille) is below this
  /// are quarantined (CoverageBelowGate).
  uint32_t MinCoveragePermille = 500;
  /// Sampled members bypass MinCoveragePermille — their coverage cell is a
  /// sampling estimate (distinct sampled roots per entered root), not
  /// salvage evidence, and a staggered fleet recovers the gaps — but are
  /// still dropped below this floor: a handful of samples carries no rank
  /// signal. Their merge weight stays coverage-derived, so a sparse member
  /// votes weakly instead of being quarantined.
  uint32_t MinSampledCoveragePermille = 50;
  /// Members whose mean |log2| per-CU count ratio against the member
  /// median exceeds this are quarantined (DriftOutlier).
  double MaxDriftScore = 1.5;
  /// Members whose generation stamp lags the newest member by more than
  /// this are quarantined (StaleGeneration). Generation 0 = unknown,
  /// exempt from the check.
  uint64_t MaxGenerationLag = 8;
  /// Freshness decay half-life, in generations: a member one half-life
  /// behind the newest carries half the weight.
  double FreshnessHalfLifeGenerations = 4.0;
  /// When nonzero, members with a different nonzero fingerprint are
  /// quarantined (FingerprintMismatch) — build-to-build version skew.
  uint64_t ExpectedFingerprint = 0;
  /// Drift scoring needs a quorum: with fewer live members a median is
  /// meaningless, so the check is skipped entirely.
  size_t MinMembersForDrift = 3;
  /// Trace granularity every member must carry; anything else is
  /// quarantined (ModeMismatch). Rank merging only makes sense within one
  /// granularity, so a --code method build sets MethodOrder here and a
  /// cu/cluster build keeps the CuOrder default.
  TraceMode ExpectedMode = TraceMode::CuOrder;
};

/// The aggregator's product: the layout-driving profile (empty on
/// Fallback) plus the full quarantine manifest.
struct MergeResult {
  CodeProfile Profile;
  MergeManifest Manifest;

  /// True when Profile should be offered to the build (Merged or
  /// BestSingle); on Fallback the build keeps its default cu-order layout.
  bool usable() const {
    return Manifest.Outcome == MergeOutcome::Merged ||
           Manifest.Outcome == MergeOutcome::BestSingle;
  }
};

/// Merges \p Members under \p Opts. Fail-open: never throws, never
/// rejects the whole build — the worst outcome is an empty profile with
/// Outcome == Fallback and every member quarantined with a typed reason.
MergeResult aggregateProfiles(const std::vector<MemberProfile> &Members,
                              const MergeOptions &Opts = {});

} // namespace nimg

#endif // NIMG_PROFILING_AGGREGATE_H
