//===- Aggregate.cpp - Fleet-scale profile aggregation ----------------------===//

#include "src/profiling/Aggregate.h"

#include "src/obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace nimg;

namespace {

std::string fmtDouble(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

void quarantine(MergeMemberReport &R, ProfileError Reason,
                std::string Detail) {
  R.Status = MergeMemberStatus::Quarantined;
  R.Reason = Reason;
  R.Detail = std::move(Detail);
  R.Weight = 0.0;
}

/// Classifies one member against the per-input gates that need no
/// cross-member context. Returns true when the member stays live.
bool classifyMember(const MemberProfile &In, const MergeOptions &Opts,
                    bool DuplicateName, MergeMemberReport &R) {
  const CodeProfile &P = In.Profile;
  R.Name = In.Name;
  R.CoveragePermille = P.Header.CoveragePermille;
  R.Generation = P.Header.Generation;
  R.Rows = P.Sigs.size();
  if (DuplicateName) {
    quarantine(R, ProfileError::DuplicateMember,
               "an earlier member carries this name");
    return false;
  }
  if (P.LoadError != ProfileError::None) {
    quarantine(R, P.LoadError, profileErrorName(P.LoadError));
    return false;
  }
  if (P.Header.Mode != Opts.ExpectedMode) {
    quarantine(R, ProfileError::ModeMismatch,
               std::string("member is not a ") +
                   (Opts.ExpectedMode == TraceMode::MethodOrder ? "method"
                                                                : "cu") +
                   "-order profile");
    return false;
  }
  bool Sampled = P.Header.Capture == CaptureKind::Sampled;
  if (Sampled && (P.Header.SamplePeriod == 0 ||
                  P.Header.SamplePeriod > TraceOptions::MaxSamplePeriod)) {
    quarantine(R, ProfileError::ImplausibleSamplePeriod,
               "period " + std::to_string(P.Header.SamplePeriod) +
                   " outside (0, " +
                   std::to_string(TraceOptions::MaxSamplePeriod) + "]");
    return false;
  }
  if (Opts.ExpectedFingerprint && P.Header.Fingerprint &&
      P.Header.Fingerprint != Opts.ExpectedFingerprint) {
    quarantine(R, ProfileError::FingerprintMismatch,
               "member was captured from a different program build");
    return false;
  }
  if (P.Sigs.empty()) {
    quarantine(R, ProfileError::CoverageBelowGate, "empty payload");
    return false;
  }
  uint32_t CoverageGate =
      Sampled ? Opts.MinSampledCoveragePermille : Opts.MinCoveragePermille;
  if (P.Header.CoveragePermille < CoverageGate) {
    quarantine(R, ProfileError::CoverageBelowGate,
               "coverage " + std::to_string(P.Header.CoveragePermille) +
                   " < gate " + std::to_string(CoverageGate));
    return false;
  }
  if (In.Read.PrefixSalvaged) {
    R.Status = MergeMemberStatus::Salvaged;
    R.Reason = ProfileError::ChecksumMismatch;
    R.Detail = "sampled payload recovered as a row prefix (" +
               std::to_string(In.Read.RowsSkipped) + " rows cut)";
  } else if (In.Read.RowsSkipped > 0) {
    R.Status = MergeMemberStatus::Salvaged;
    R.Reason = ProfileError::MalformedCell;
    R.Detail = std::to_string(In.Read.RowsSkipped) + " rows skipped";
  } else if (P.Header.CoveragePermille < 1000) {
    R.Status = MergeMemberStatus::Salvaged;
    R.Detail = Sampled ? "partial sampling coverage estimate"
                       : "partial capture coverage";
  } else {
    R.Status = MergeMemberStatus::Accepted;
  }
  return true;
}

/// Union of member sigs in first-seen member order — the deterministic
/// universe both the drift scorer and the rank merge iterate over.
std::vector<std::string>
unionSigs(const std::vector<MemberProfile> &Members,
          const std::vector<size_t> &Live) {
  std::vector<std::string> Out;
  std::unordered_set<std::string> Seen;
  for (size_t I : Live)
    for (const std::string &S : Members[I].Profile.Sigs)
      if (Seen.insert(S).second)
        Out.push_back(S);
  return Out;
}

std::unordered_map<std::string, size_t> posIndex(const CodeProfile &P) {
  std::unordered_map<std::string, size_t> Pos;
  Pos.reserve(P.Sigs.size());
  for (size_t I = 0; I < P.Sigs.size(); ++I)
    Pos.emplace(P.Sigs[I], I); // First occurrence wins on (odd) dup sigs.
  return Pos;
}

/// Mean |log2((c+1)/(med+1))| of one member's counts against the per-sig
/// member median — the statistical-outlier gate. An honest capture of the
/// same workload lands near the median; an adversarially or mechanically
/// skewed one does not.
void scoreDrift(const std::vector<MemberProfile> &Members,
                std::vector<size_t> &Live,
                std::vector<MergeMemberReport> &Reports,
                const MergeOptions &Opts) {
  if (Live.size() < Opts.MinMembersForDrift)
    return;
  std::vector<std::string> Sigs = unionSigs(Members, Live);
  if (Sigs.empty())
    return;
  std::vector<std::unordered_map<std::string, size_t>> Pos;
  Pos.reserve(Live.size());
  for (size_t I : Live)
    Pos.push_back(posIndex(Members[I].Profile));

  // Per-sig median count across live members (absent sig = count 0).
  std::vector<double> Median(Sigs.size(), 0.0);
  std::vector<uint64_t> Column(Live.size());
  for (size_t S = 0; S < Sigs.size(); ++S) {
    for (size_t L = 0; L < Live.size(); ++L) {
      auto It = Pos[L].find(Sigs[S]);
      Column[L] =
          It == Pos[L].end() ? 0 : Members[Live[L]].Profile.countAt(It->second);
    }
    std::sort(Column.begin(), Column.end());
    size_t Mid = Column.size() / 2;
    Median[S] = Column.size() % 2
                    ? double(Column[Mid])
                    : (double(Column[Mid - 1]) + double(Column[Mid])) / 2.0;
  }

  std::vector<double> Score(Live.size(), 0.0);
  for (size_t L = 0; L < Live.size(); ++L) {
    double Sum = 0.0;
    for (size_t S = 0; S < Sigs.size(); ++S) {
      auto It = Pos[L].find(Sigs[S]);
      double C =
          It == Pos[L].end() ? 0 : double(Members[Live[L]].Profile.countAt(It->second));
      Sum += std::fabs(std::log2((C + 1.0) / (Median[S] + 1.0)));
    }
    Score[L] = Sum / double(Sigs.size());
    Reports[Live[L]].DriftScore = Score[L];
  }

  // Quarantine outliers, but never the whole set: the lowest-scoring
  // member always survives (fail-open — a gate must not kill the build).
  size_t Lowest = 0;
  for (size_t L = 1; L < Live.size(); ++L)
    if (Score[L] < Score[Lowest])
      Lowest = L;
  std::vector<size_t> Kept;
  for (size_t L = 0; L < Live.size(); ++L) {
    if (Score[L] > Opts.MaxDriftScore && L != Lowest) {
      quarantine(Reports[Live[L]], ProfileError::DriftOutlier,
                 "drift " + fmtDouble(Score[L]) + " > " +
                     fmtDouble(Opts.MaxDriftScore));
    } else {
      Kept.push_back(Live[L]);
    }
  }
  Live = std::move(Kept);
}

/// Weighted first-execution-rank merge over the live members, folded in
/// fixed member order. A sig's score is the weight-weighted sum of its
/// normalized ranks; members that never saw the sig vote "end of list".
CodeProfile mergeLive(const std::vector<MemberProfile> &Members,
                      const std::vector<size_t> &Live,
                      const std::vector<MergeMemberReport> &Reports,
                      uint64_t NewestGeneration) {
  std::vector<std::string> Sigs = unionSigs(Members, Live);
  std::vector<std::unordered_map<std::string, size_t>> Pos;
  Pos.reserve(Live.size());
  bool AnyCounts = false;
  for (size_t I : Live) {
    Pos.push_back(posIndex(Members[I].Profile));
    AnyCounts |= !Members[I].Profile.Counts.empty();
  }

  std::vector<double> Score(Sigs.size(), 0.0);
  std::vector<double> WeightedCount(Sigs.size(), 0.0);
  std::vector<double> CountWeight(Sigs.size(), 0.0);
  for (size_t L = 0; L < Live.size(); ++L) {
    const CodeProfile &P = Members[Live[L]].Profile;
    double W = Reports[Live[L]].Weight;
    double Len = double(P.Sigs.size());
    for (size_t S = 0; S < Sigs.size(); ++S) {
      auto It = Pos[L].find(Sigs[S]);
      if (It == Pos[L].end()) {
        Score[S] += W; // Normalized rank 1.0: "after everything I saw".
        continue;
      }
      Score[S] += W * (double(It->second) + 0.5) / Len;
      WeightedCount[S] += W * double(P.countAt(It->second));
      CountWeight[S] += W;
    }
  }

  // Stable sort on score: ties keep first-seen member order, so the
  // result is a pure function of the member list.
  std::vector<size_t> Idx(Sigs.size());
  for (size_t I = 0; I < Idx.size(); ++I)
    Idx[I] = I;
  std::stable_sort(Idx.begin(), Idx.end(),
                   [&](size_t A, size_t B) { return Score[A] < Score[B]; });

  CodeProfile Out;
  // Mode follows the (gate-checked, uniform) member mode; capture kind is
  // sampled only when every survivor is sampled — one instrumented member
  // already contributes exact ranks, so the merged profile is not subject
  // to the sampled gates downstream. A pure-sampled merge carries the
  // coarsest member period as its effective period.
  Out.Header.Mode = Live.empty() ? TraceMode::CuOrder
                                 : Members[Live[0]].Profile.Header.Mode;
  bool AllSampled = !Live.empty();
  uint64_t CoarsestPeriod = 0;
  for (size_t I : Live) {
    const ProfileHeader &H = Members[I].Profile.Header;
    if (H.Capture != CaptureKind::Sampled)
      AllSampled = false;
    else
      CoarsestPeriod = std::max(CoarsestPeriod, H.SamplePeriod);
  }
  if (AllSampled) {
    Out.Header.Capture = CaptureKind::Sampled;
    Out.Header.SamplePeriod = CoarsestPeriod;
  }
  Out.Header.Generation = NewestGeneration;
  Out.Sigs.reserve(Sigs.size());
  if (AnyCounts)
    Out.Counts.reserve(Sigs.size());
  for (size_t I : Idx) {
    Out.Sigs.push_back(Sigs[I]);
    if (AnyCounts)
      Out.Counts.push_back(CountWeight[I] > 0.0
                               ? uint64_t(WeightedCount[I] / CountWeight[I] +
                                          0.5)
                               : 1);
  }

  // Provenance: keep the common fingerprint if the live members agree,
  // and carry the weighted mean coverage.
  uint64_t Fp = 0;
  bool FpConsistent = true;
  double CovSum = 0.0, WSum = 0.0;
  for (size_t I : Live) {
    uint64_t MemberFp = Members[I].Profile.Header.Fingerprint;
    if (MemberFp) {
      if (!Fp)
        Fp = MemberFp;
      else if (Fp != MemberFp)
        FpConsistent = false;
    }
    CovSum += Reports[I].Weight * double(Reports[I].CoveragePermille);
    WSum += Reports[I].Weight;
  }
  Out.Header.Fingerprint = FpConsistent ? Fp : 0;
  Out.Header.CoveragePermille =
      WSum > 0.0 ? uint32_t(std::min(1000.0, CovSum / WSum + 0.5)) : 1000;
  return Out;
}

} // namespace

MemberProfile nimg::loadMemberProfile(std::string Name,
                                      const std::string &CsvText) {
  MemberProfile M;
  M.Name = std::move(Name);
  M.Profile = CodeProfile::fromCsv(CsvText, &M.Read);
  return M;
}

std::vector<MemberProfile>
nimg::loadMemberProfiles(const std::vector<std::string> &Paths) {
  std::vector<MemberProfile> Out;
  Out.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    std::ifstream F(Path, std::ios::binary);
    if (!F.good()) {
      MemberProfile M;
      M.Name = Path;
      M.Profile.LoadError = ProfileError::BadHeader;
      M.Read.Fatal = ProfileError::BadHeader;
      M.Read.Issues.push_back(
          {ProfileError::BadHeader, 0, "unreadable file"});
      Out.push_back(std::move(M));
      continue;
    }
    std::ostringstream S;
    S << F.rdbuf();
    Out.push_back(loadMemberProfile(Path, S.str()));
  }
  return Out;
}

std::vector<std::string> nimg::listMemberProfileDir(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (!E.is_regular_file(Ec))
      continue;
    std::string Name = E.path().filename().string();
    if (Name.rfind("cu", 0) == 0 && Name.size() > 4 &&
        Name.compare(Name.size() - 4, 4, ".csv") == 0)
      Out.push_back(E.path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

MergeResult nimg::aggregateProfiles(const std::vector<MemberProfile> &Members,
                                    const MergeOptions &Opts) {
  MergeResult Out;
  MergeManifest &M = Out.Manifest;
  M.Members.resize(Members.size());
  NIMG_COUNTER_ADD("nimg.merge.runs", 1);
  NIMG_COUNTER_ADD("nimg.merge.members", Members.size());

  // Pass 1 — per-input gates, in fixed member order. The duplicate check
  // spans the whole set: the first member owning a name keeps it, every
  // later holder is quarantined even if the first was itself dropped.
  std::vector<size_t> Live;
  std::unordered_set<std::string> SeenNames;
  for (size_t I = 0; I < Members.size(); ++I) {
    bool Duplicate = !SeenNames.insert(Members[I].Name).second;
    if (classifyMember(Members[I], Opts, Duplicate, M.Members[I]))
      Live.push_back(I);
  }

  // Pass 2 — staleness against the newest live generation (0 = unknown,
  // exempt: a legacy fleet without stamps never self-quarantines).
  uint64_t Newest = 0;
  for (size_t I : Live)
    Newest = std::max(Newest, M.Members[I].Generation);
  {
    std::vector<size_t> Kept;
    for (size_t I : Live) {
      uint64_t Gen = M.Members[I].Generation;
      if (Gen > 0 && Newest - Gen > Opts.MaxGenerationLag) {
        quarantine(M.Members[I], ProfileError::StaleGeneration,
                   "generation " + std::to_string(Gen) + " lags newest " +
                       std::to_string(Newest) + " beyond " +
                       std::to_string(Opts.MaxGenerationLag));
      } else {
        Kept.push_back(I);
      }
    }
    Live = std::move(Kept);
  }

  // Pass 3 — statistical drift of per-CU count distributions.
  scoreDrift(Members, Live, M.Members, Opts);

  // Pass 4 — weights for the survivors: coverage x freshness decay.
  for (size_t I : Live) {
    uint64_t Gen = M.Members[I].Generation;
    uint64_t Lag = (Gen > 0 && Newest > Gen) ? Newest - Gen : 0;
    M.Members[I].Weight =
        (double(M.Members[I].CoveragePermille) / 1000.0) *
        std::pow(0.5, double(Lag) / Opts.FreshnessHalfLifeGenerations);
  }

  // Pass 5 — the degradation ladder.
  if (Live.empty()) {
    M.Outcome = MergeOutcome::Fallback;
    Out.Profile.Header.Mode = Opts.ExpectedMode;
  } else if (Live.size() == 1) {
    M.Outcome = MergeOutcome::BestSingle;
    Out.Profile = Members[Live[0]].Profile;
  } else {
    M.Outcome = MergeOutcome::Merged;
    Out.Profile = mergeLive(Members, Live, M.Members, Newest);
  }

  size_t Accepted = M.countWithStatus(MergeMemberStatus::Accepted);
  size_t Salvaged = M.countWithStatus(MergeMemberStatus::Salvaged);
  size_t Quarantined = M.countWithStatus(MergeMemberStatus::Quarantined);
  NIMG_COUNTER_ADD("nimg.merge.accepted", Accepted);
  NIMG_COUNTER_ADD("nimg.merge.salvaged", Salvaged);
  NIMG_COUNTER_ADD("nimg.merge.quarantined_total", Quarantined);
  for (const MergeMemberReport &R : M.Members)
    if (R.Status == MergeMemberStatus::Quarantined)
      NIMG_COUNTER_ADD_DYN(
          std::string("nimg.merge.quarantined.") + profileErrorSlug(R.Reason),
          1);
  switch (M.Outcome) {
  case MergeOutcome::Merged:
    NIMG_COUNTER_ADD("nimg.merge.outcome.merged", 1);
    break;
  case MergeOutcome::BestSingle:
    NIMG_COUNTER_ADD("nimg.merge.outcome.best_single", 1);
    break;
  case MergeOutcome::Fallback:
    NIMG_COUNTER_ADD("nimg.merge.outcome.fallback", 1);
    break;
  case MergeOutcome::NotAttempted:
    break;
  }
  return Out;
}
