//===- Analyses.cpp - Trace post-processing analyses ------------------------===//

#include "src/profiling/Analyses.h"

#include "src/obs/Metrics.h"
#include "src/support/Crc32.h"
#include "src/support/Csv.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

using namespace nimg;

//===----------------------------------------------------------------------===//
// CSV interchange: header row + payload + CRC.
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *ProfileMagic = "#nimg-profile";
/// Cap on recorded per-row issues so a multi-megabyte corrupt file cannot
/// balloon the report.
constexpr size_t MaxRecordedIssues = 16;
/// Payload sanity bound: no real signature is this long.
constexpr size_t MaxSigBytes = 4096;

const char *modeToken(TraceMode M) {
  switch (M) {
  case TraceMode::CuOrder:
    return "cu";
  case TraceMode::MethodOrder:
    return "method";
  case TraceMode::HeapOrder:
    return "heap";
  case TraceMode::Sampled:
    return "sampled";
  }
  return "cu";
}

bool parseModeToken(const std::string &S, TraceMode &Out) {
  if (S == "cu")
    Out = TraceMode::CuOrder;
  else if (S == "method")
    Out = TraceMode::MethodOrder;
  else if (S == "heap")
    Out = TraceMode::HeapOrder;
  else if (S == "sampled")
    Out = TraceMode::Sampled;
  else
    return false;
  return true;
}

bool parseCaptureToken(const std::string &S, CaptureKind &Out) {
  if (S == "instrumented")
    Out = CaptureKind::Instrumented;
  else if (S == "sampled")
    Out = CaptureKind::Sampled;
  else
    return false;
  return true;
}

const char *strategyToken(HeapStrategy S) {
  switch (S) {
  case HeapStrategy::IncrementalId:
    return "inc";
  case HeapStrategy::StructuralHash:
    return "struct";
  case HeapStrategy::HeapPath:
    return "path";
  }
  return "inc";
}

bool parseStrategyToken(const std::string &S, bool &Has, HeapStrategy &Out) {
  Has = true;
  if (S == "inc")
    Out = HeapStrategy::IncrementalId;
  else if (S == "struct")
    Out = HeapStrategy::StructuralHash;
  else if (S == "path")
    Out = HeapStrategy::HeapPath;
  else if (S == "-")
    Has = false;
  else
    return false;
  return true;
}

/// Range-checked hex parse of a whole cell (satellite: no strtoull UB on
/// non-numeric or overflowing cells).
bool parseHexU64(const std::string &Cell, uint64_t &Out) {
  if (Cell.empty() || Cell.size() > 16)
    return false;
  auto [Ptr, Ec] =
      std::from_chars(Cell.data(), Cell.data() + Cell.size(), Out, 16);
  return Ec == std::errc() && Ptr == Cell.data() + Cell.size();
}

bool parseDecU32(const std::string &Cell, uint32_t &Out) {
  if (Cell.empty() || Cell.size() > 9)
    return false;
  auto [Ptr, Ec] =
      std::from_chars(Cell.data(), Cell.data() + Cell.size(), Out, 10);
  return Ec == std::errc() && Ptr == Cell.data() + Cell.size();
}

bool parseDecU64(const std::string &Cell, uint64_t &Out) {
  if (Cell.empty() || Cell.size() > 20)
    return false;
  auto [Ptr, Ec] =
      std::from_chars(Cell.data(), Cell.data() + Cell.size(), Out, 10);
  return Ec == std::errc() && Ptr == Cell.data() + Cell.size();
}

void addIssue(ProfileReadReport &R, ProfileError Kind, size_t Row,
              std::string Detail) {
  if (R.Issues.size() < MaxRecordedIssues)
    R.Issues.push_back({Kind, Row, std::move(Detail)});
}

std::string headerRowCsv(const ProfileHeader &H, uint32_t Crc) {
  char Fp[17], CrcBuf[9];
  std::snprintf(Fp, sizeof(Fp), "%016" PRIx64, H.Fingerprint);
  std::snprintf(CrcBuf, sizeof(CrcBuf), "%08" PRIx32, Crc);
  CsvDocument Doc;
  // v2 appends generation and coverage after the CRC so v1 readers that
  // stop at cell 6 (and our own v1 test vectors) stay parseable.
  Doc.Rows.push_back({ProfileMagic, std::to_string(ProfileFormatVersion),
                      modeToken(H.Mode),
                      H.HasStrategy ? strategyToken(H.Strategy) : "-", Fp,
                      CrcBuf, std::to_string(H.Generation),
                      std::to_string(H.CoveragePermille)});
  // Sampled-capture profiles append their capture kind and sample period;
  // instrumented headers stay byte-identical with pre-sampling emitters.
  if (H.Capture == CaptureKind::Sampled) {
    Doc.Rows[0].push_back(captureKindName(H.Capture));
    Doc.Rows[0].push_back(std::to_string(H.SamplePeriod));
  }
  return writeCsv(Doc);
}

/// Validates the header row (Doc.Rows[0]) if present. Returns the index of
/// the first payload row; on a fatal problem R.Fatal is set. A file whose
/// first cell does not start with '#' is a legacy headerless profile:
/// accepted without checksum or fingerprint protection.
size_t readProfileHeader(const std::string &Text, const CsvDocument &Doc,
                         ProfileReadReport &R) {
  R.Header.Version = 0;
  if (Doc.Rows.empty())
    return 0;
  const std::vector<std::string> &Row = Doc.Rows[0];
  if (Row.empty() || Row[0].empty() || Row[0][0] != '#') {
    addIssue(R, ProfileError::LegacyFormat, 1, "no interchange header");
    return 0;
  }
  // The row claims to be a header; from here anything unparsable is fatal
  // corruption, not legacy data.
  if (Row[0] != ProfileMagic || Row.size() < 6) {
    R.Fatal = ProfileError::BadHeader;
    addIssue(R, R.Fatal, 1, "unrecognized header row");
    return 1;
  }
  uint32_t Version = 0;
  if (!parseDecU32(Row[1], Version) || Version == 0) {
    R.Fatal = ProfileError::BadHeader;
    addIssue(R, R.Fatal, 1, "bad version cell: " + Row[1]);
    return 1;
  }
  if (Version > ProfileFormatVersion) {
    R.Fatal = ProfileError::UnsupportedVersion;
    addIssue(R, R.Fatal, 1, "profile version " + Row[1]);
    return 1;
  }
  uint64_t Fp = 0, Crc = 0;
  if (!parseModeToken(Row[2], R.Header.Mode) ||
      !parseStrategyToken(Row[3], R.Header.HasStrategy, R.Header.Strategy) ||
      !parseHexU64(Row[4], Fp) || !parseHexU64(Row[5], Crc) ||
      Crc > 0xffffffffu) {
    R.Fatal = ProfileError::BadHeader;
    addIssue(R, R.Fatal, 1, "bad header cells");
    return 1;
  }
  // v2 carries a generation stamp and capture coverage after the CRC; a
  // v1 row simply lacks them (generation unknown, full coverage assumed).
  R.Header.Generation = 0;
  R.Header.CoveragePermille = 1000;
  if (Version >= 2) {
    if (Row.size() < 8 || !parseDecU64(Row[6], R.Header.Generation) ||
        !parseDecU32(Row[7], R.Header.CoveragePermille) ||
        R.Header.CoveragePermille > 1000) {
      R.Fatal = ProfileError::BadHeader;
      addIssue(R, R.Fatal, 1, "bad generation/coverage cells");
      return 1;
    }
    // Optional capture cells (sampled profiles only): the capture kind
    // token and the sample period. The period is only syntax-checked here;
    // its plausibility is an aggregation gate (implausible_sample_period),
    // not a parse error — bad metadata quarantines a member, a lone build
    // still degrades through the normal profile-rejection path.
    if (Row.size() >= 9) {
      if (!parseCaptureToken(Row[8], R.Header.Capture) ||
          (R.Header.Capture == CaptureKind::Sampled &&
           (Row.size() < 10 || !parseDecU64(Row[9], R.Header.SamplePeriod)))) {
        R.Fatal = ProfileError::BadHeader;
        addIssue(R, R.Fatal, 1, "bad capture cells");
        return 1;
      }
    }
  }
  R.Header.Version = Version;
  R.Header.Fingerprint = Fp;
  R.HeaderPresent = true;
  // The CRC covers the raw payload text: everything after the header line.
  size_t Nl = Text.find('\n');
  std::string Payload = Nl == std::string::npos ? "" : Text.substr(Nl + 1);
  if (crc32(Payload) != uint32_t(Crc)) {
    if (R.Header.Capture == CaptureKind::Sampled) {
      // A sampled profile is a statistical artifact: a truncated upload
      // still carries usable hit evidence, so recover the longest
      // well-formed row prefix instead of rejecting the file. Instrumented
      // profiles keep the strict contract — every row is rank-bearing.
      R.PrefixSalvaged = true;
      addIssue(R, ProfileError::ChecksumMismatch, 0,
               "payload CRC-32 mismatch; salvaging sampled row prefix");
      return 1;
    }
    R.Fatal = ProfileError::ChecksumMismatch;
    addIssue(R, R.Fatal, 0, "payload CRC-32 mismatch");
    return 1;
  }
  return 1;
}

bool isBlankRow(const std::vector<std::string> &Row) {
  return Row.empty() || (Row.size() == 1 && Row[0].empty());
}

/// Surfaces one profile-load outcome ("code"/"heap") through the registry,
/// including a per-rejection-kind counter (dynamic names; ingestion is not
/// a hot path).
void meterProfileLoad(const char *Kind, const ProfileReadReport &R) {
  std::string Base = std::string("nimg.profile.load.") + Kind;
  NIMG_COUNTER_ADD_DYN(Base + ".attempts", 1);
  if (R.usable()) {
    NIMG_COUNTER_ADD_DYN(Base + ".ok", 1);
  } else {
    NIMG_COUNTER_ADD_DYN(Base + ".rejected", 1);
    NIMG_COUNTER_ADD_DYN(Base + ".rejected." + profileErrorSlug(R.Fatal), 1);
  }
  if (R.RowsKept)
    NIMG_COUNTER_ADD_DYN(Base + ".rows_kept", R.RowsKept);
  if (R.RowsSkipped)
    NIMG_COUNTER_ADD_DYN(Base + ".rows_skipped", R.RowsSkipped);
}

} // namespace

std::string CodeProfile::toCsv() const {
  CsvDocument Doc;
  Doc.Rows.reserve(Sigs.size());
  bool WithCounts = Counts.size() == Sigs.size() && !Counts.empty();
  for (size_t I = 0; I < Sigs.size(); ++I) {
    if (WithCounts)
      Doc.Rows.push_back({Sigs[I], std::to_string(Counts[I])});
    else
      Doc.Rows.push_back({Sigs[I]});
  }
  std::string Body = writeCsv(Doc);
  return headerRowCsv(Header, crc32(Body)) + Body;
}

CodeProfile CodeProfile::fromCsv(const std::string &Text,
                                 ProfileReadReport *Report) {
  ProfileReadReport Local;
  ProfileReadReport &R = Report ? *Report : Local;
  R = ProfileReadReport{};
  CodeProfile P;
  CsvDocument Doc = parseCsv(Text);
  size_t Start = readProfileHeader(Text, Doc, R);
  P.Header = R.Header;
  if (!R.usable()) {
    P.LoadError = R.Fatal;
    meterProfileLoad("code", R);
    return P;
  }
  P.Sigs.reserve(Doc.Rows.size() - Start);
  bool AnyCount = false;
  for (size_t I = Start; I < Doc.Rows.size(); ++I) {
    const std::vector<std::string> &Row = Doc.Rows[I];
    if (isBlankRow(Row))
      continue;
    if (Row[0].empty() || Row[0].size() > MaxSigBytes) {
      R.RowsSkipped += R.PrefixSalvaged ? Doc.Rows.size() - I : 1;
      addIssue(R, ProfileError::MalformedCell, I + 1, "bad signature cell");
      if (R.PrefixSalvaged)
        break; // Prefix salvage: the first bad row marks the cut point.
      continue;
    }
    // Optional second cell: per-sig event count (v2 cu profiles). A row
    // without one contributes the neutral count 1.
    uint64_t Count = 1;
    if (Row.size() >= 2 && !Row[1].empty()) {
      if (!parseDecU64(Row[1], Count)) {
        R.RowsSkipped += R.PrefixSalvaged ? Doc.Rows.size() - I : 1;
        addIssue(R, ProfileError::MalformedCell, I + 1, "bad count cell");
        if (R.PrefixSalvaged)
          break;
        continue;
      }
      AnyCount = true;
    }
    P.Sigs.push_back(Row[0]);
    P.Counts.push_back(Count);
    ++R.RowsKept;
  }
  // A CRC-mismatched sampled file that salvaged clean to its last row
  // still lost *something* (the CRC said so): account at least one row so
  // the aggregator classifies the member as salvaged, not accepted.
  if (R.PrefixSalvaged && R.RowsSkipped == 0)
    R.RowsSkipped = 1;
  if (!AnyCount)
    P.Counts.clear(); // No count evidence: keep the legacy shape.
  meterProfileLoad("code", R);
  return P;
}

std::string HeapProfile::toCsv() const {
  CsvDocument Doc;
  Doc.Rows.reserve(Ids.size());
  char Buf[32];
  for (uint64_t Id : Ids) {
    std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, Id);
    Doc.Rows.push_back({Buf});
  }
  std::string Body = writeCsv(Doc);
  return headerRowCsv(Header, crc32(Body)) + Body;
}

HeapProfile HeapProfile::fromCsv(const std::string &Text,
                                 ProfileReadReport *Report) {
  ProfileReadReport Local;
  ProfileReadReport &R = Report ? *Report : Local;
  R = ProfileReadReport{};
  HeapProfile P;
  CsvDocument Doc = parseCsv(Text);
  size_t Start = readProfileHeader(Text, Doc, R);
  P.Header = R.Header;
  if (!R.usable()) {
    P.LoadError = R.Fatal;
    meterProfileLoad("heap", R);
    return P;
  }
  P.Ids.reserve(Doc.Rows.size() - Start);
  for (size_t I = Start; I < Doc.Rows.size(); ++I) {
    const std::vector<std::string> &Row = Doc.Rows[I];
    if (isBlankRow(Row))
      continue;
    uint64_t Id = 0;
    if (!parseHexU64(Row[0], Id)) {
      ++R.RowsSkipped;
      addIssue(R, ProfileError::MalformedCell, I + 1,
               Row[0].substr(0, 32));
      continue;
    }
    P.Ids.push_back(Id);
    ++R.RowsKept;
  }
  meterProfileLoad("heap", R);
  return P;
}

//===----------------------------------------------------------------------===//
// Replay and analyses.
//===----------------------------------------------------------------------===//

void nimg::replayThreadPrefix(const Program &P, TraceMode Mode,
                              const std::vector<uint64_t> &Words, size_t End,
                              LocalPathCache &Paths,
                              const std::vector<OrderingAnalysis *> &Analyses) {
  bool HasOperands = Mode == TraceMode::HeapOrder;
  // One per-call scratch: decodeInto() reuses its vectors across records,
  // so the loop does not reallocate Blocks/Sites for every trace word.
  PathEvents Events;
  size_t I = 0;
  while (I < End) {
    uint64_t W = Words[I++];
    if (tracerec::isCuEnter(W)) {
      for (OrderingAnalysis *A : Analyses)
        A->onCuEnter(tracerec::cuRoot(W));
      continue;
    }
    if (tracerec::isSample(W)) {
      for (OrderingAnalysis *A : Analyses)
        A->onSample(tracerec::sampleMethod(W), tracerec::sampleRoot(W));
      continue;
    }
    if (!tracerec::isPath(W))
      continue; // Unreachable inside a salvaged prefix; defensive.
    MethodId M = tracerec::pathMethod(W);
    if (M < 0 || size_t(M) >= P.numMethods())
      continue;
    Paths.of(M).decodeInto(tracerec::pathId(W), Events);
    if (Events.MethodEntry)
      for (OrderingAnalysis *A : Analyses)
        A->onMethodEnter(M);
    for (BlockId B : Events.Blocks)
      for (OrderingAnalysis *A : Analyses)
        A->onBlockVisit(M, B);
    if (!Events.Blocks.empty())
      for (OrderingAnalysis *A : Analyses)
        A->onPathRecord(M, Events.Blocks, Events.MethodEntry);
    if (!HasOperands)
      continue;
    // A record cut mid-operands at the thread's end (mode-1 SIGKILL)
    // keeps its surviving operands; consume what is there.
    for (uint32_t K = 0; K < Events.OperandCount && I < End; ++K) {
      uint64_t Op = Words[I++];
      if (Op == 0)
        continue;
      for (OrderingAnalysis *A : Analyses)
        A->onObjectAccess(int32_t(Op - 1));
    }
  }
}

void nimg::replayTrace(const Program &P, const TraceCapture &Capture,
                       PathGraphCache &Paths,
                       const std::vector<OrderingAnalysis *> &Analyses,
                       SalvageStats *StatsOut) {
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    replayTrace(P, Decoded, Paths, Analyses, StatsOut);
    if (StatsOut)
      StatsOut->IncompleteTailRecords += Cut;
    return;
  }
  SalvageStats Stats;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Stats);
  LocalPathCache Local(Paths);
  for (size_t T = 0; T < Capture.Threads.size(); ++T)
    replayThreadPrefix(P, Capture.Options.Mode, Capture.Threads[T].Words,
                       Prefix[T], Local, Analyses);
  if (StatsOut)
    *StatsOut = Stats;
}

namespace {

/// First-seen id collector, generic over the three event kinds. One lives
/// per (worker, thread-trace) in the parallel analyses; the per-thread
/// orders are then merged front-to-back in thread creation order, which
/// reproduces the sequential "threads concatenated" first-seen order
/// exactly — so profiles are byte-identical for any worker count.
template <typename Id> class FirstSeen {
public:
  void note(Id V) {
    if (Seen.insert(V).second)
      Order.push_back(V);
  }
  std::vector<Id> Order;

private:
  std::unordered_set<Id> Seen;
};

class CuFirstSeen : public OrderingAnalysis {
public:
  void onCuEnter(MethodId Root) override {
    Ids.note(Root);
    ++Counts[Root];
  }
  FirstSeen<MethodId> Ids;
  /// cu_enter events per root within one thread; merged by summation, so
  /// the totals are independent of the worker count.
  std::unordered_map<MethodId, uint64_t> Counts;
};

class MethodFirstSeen : public OrderingAnalysis {
public:
  void onMethodEnter(MethodId M) override { Ids.note(M); }
  FirstSeen<MethodId> Ids;
};

/// Sampled-capture collectors: order by earliest sample, count hits. The
/// CU-granularity form keys on the sample's CU root, the method form on
/// the sampled method itself.
class SampleCuFirstSeen : public OrderingAnalysis {
public:
  void onSample(MethodId M, MethodId Root) override {
    (void)M;
    Ids.note(Root);
    ++Counts[Root];
  }
  FirstSeen<MethodId> Ids;
  std::unordered_map<MethodId, uint64_t> Counts;
};

class SampleMethodFirstSeen : public OrderingAnalysis {
public:
  void onSample(MethodId M, MethodId Root) override {
    (void)Root;
    Ids.note(M);
    ++Counts[M];
  }
  FirstSeen<MethodId> Ids;
  std::unordered_map<MethodId, uint64_t> Counts;
};

class EntryFirstSeen : public OrderingAnalysis {
public:
  void onObjectAccess(int32_t Entry) override { Ids.note(Entry); }
  FirstSeen<int32_t> Ids;
};

/// Runs \p Analysis over every thread of \p Capture in parallel (one task
/// per thread trace) and merges the per-thread first-seen orders in thread
/// order. \p Analysis must be one of the FirstSeen visitors above.
template <typename Analysis, typename Id>
std::vector<Id> analyzeFirstSeen(const Program &P, const TraceCapture &Capture,
                                 PathGraphCache &Paths, const char *Stage,
                                 SalvageStats *StatsOut) {
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    std::vector<Id> Out =
        analyzeFirstSeen<Analysis, Id>(P, Decoded, Paths, Stage, StatsOut);
    if (StatsOut)
      StatsOut->IncompleteTailRecords += Cut;
    return Out;
  }
  SalvageStats Stats;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Stats);

  std::vector<std::vector<Id>> PerThread = parallelMap(
      Capture.Threads.size(), 1, Stage, [&](size_t T) {
        Analysis A;
        LocalPathCache Local(Paths);
        replayThreadPrefix(P, Capture.Options.Mode, Capture.Threads[T].Words,
                           Prefix[T], Local, {&A});
        return std::move(A.Ids.Order);
      });

  // Ordered merge: earlier threads win ties, exactly as if the threads had
  // been replayed back to back sequentially.
  size_t Total = 0;
  for (const std::vector<Id> &O : PerThread)
    Total += O.size();
  std::vector<Id> Merged;
  Merged.reserve(Total);
  std::unordered_set<Id> Seen;
  Seen.reserve(Total);
  for (const std::vector<Id> &O : PerThread)
    for (Id V : O)
      if (Seen.insert(V).second)
        Merged.push_back(V);

  if (StatsOut)
    *StatsOut = Stats;
  return Merged;
}

std::vector<std::string> sigsOf(const Program &P,
                                const std::vector<MethodId> &Ids) {
  std::vector<std::string> Sigs;
  Sigs.reserve(Ids.size());
  for (MethodId M : Ids)
    Sigs.push_back(P.method(M).Sig);
  return Sigs;
}

void reportModeMismatch(SalvageStats *Stats) {
  NIMG_COUNTER_ADD("nimg.salvage.mode_mismatch", 1);
  if (!Stats) {
    return;
  }
  *Stats = SalvageStats{};
  Stats->ModeMismatch = true;
}

/// Salvage coverage in permille; an unscanned (empty) capture counts as
/// full coverage — there was nothing to lose.
uint32_t salvageCoveragePermille(const SalvageStats &S) {
  if (!S.WordsScanned)
    return 1000;
  return uint32_t(S.WordsKept * 1000 / S.WordsScanned);
}

} // namespace

CodeProfile nimg::analyzeCuOrder(const Program &P, const TraceCapture &Capture,
                                 SalvageStats *Stats) {
  CodeProfile Out;
  Out.Header.Mode = TraceMode::CuOrder;
  if (Capture.Options.Mode != TraceMode::CuOrder) {
    reportModeMismatch(Stats);
    return Out;
  }
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    Out = analyzeCuOrder(P, Decoded, Stats);
    if (Stats)
      Stats->IncompleteTailRecords += Cut;
    return Out;
  }
  PathGraphCache Paths(P); // Unused for cu records but required by replay.
  SalvageStats Local;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Local);

  std::vector<std::pair<std::vector<MethodId>,
                        std::unordered_map<MethodId, uint64_t>>>
      PerThread = parallelMap(Capture.Threads.size(), 1, "replay_cu",
                              [&](size_t T) {
                                CuFirstSeen A;
                                LocalPathCache LocalPaths(Paths);
                                replayThreadPrefix(P, Capture.Options.Mode,
                                                   Capture.Threads[T].Words,
                                                   Prefix[T], LocalPaths, {&A});
                                return std::make_pair(std::move(A.Ids.Order),
                                                      std::move(A.Counts));
                              });

  // Ordered merge (earlier threads win ties) plus count summation — both
  // deterministic functions of the capture, independent of --jobs.
  std::vector<MethodId> Order;
  std::unordered_set<MethodId> Seen;
  std::unordered_map<MethodId, uint64_t> Totals;
  for (const auto &[ThreadOrder, ThreadCounts] : PerThread) {
    for (MethodId M : ThreadOrder)
      if (Seen.insert(M).second)
        Order.push_back(M);
    for (const auto &[M, N] : ThreadCounts)
      Totals[M] += N;
  }
  Out.Sigs = sigsOf(P, Order);
  Out.Counts.reserve(Order.size());
  for (MethodId M : Order)
    Out.Counts.push_back(Totals[M]);
  Out.Header.CoveragePermille = salvageCoveragePermille(Local);
  if (Stats)
    *Stats = Local;
  return Out;
}

CodeProfile nimg::analyzeMethodOrder(const Program &P,
                                     const TraceCapture &Capture,
                                     PathGraphCache &Paths,
                                     SalvageStats *Stats) {
  CodeProfile Out;
  Out.Header.Mode = TraceMode::MethodOrder;
  if (Capture.Options.Mode != TraceMode::MethodOrder) {
    reportModeMismatch(Stats);
    return Out;
  }
  SalvageStats Local;
  Out.Sigs = sigsOf(P, analyzeFirstSeen<MethodFirstSeen, MethodId>(
                           P, Capture, Paths, "replay_method", &Local));
  Out.Header.CoveragePermille = salvageCoveragePermille(Local);
  if (Stats)
    *Stats = Local;
  return Out;
}

namespace {

/// Shared body of the two sampled rank reconstructions: per-thread
/// first-sample orders merged in thread-creation order (earliest sample
/// wins), hit counts merged by summation — a deterministic function of
/// the capture, independent of --jobs, exactly like analyzeCuOrder.
template <typename Visitor>
CodeProfile analyzeSampledWith(const Program &P, const TraceCapture &Capture,
                               TraceMode OutMode, const char *Stage,
                               SalvageStats *Stats) {
  CodeProfile Out;
  Out.Header.Mode = OutMode;
  Out.Header.Capture = CaptureKind::Sampled;
  Out.Header.SamplePeriod = Capture.Options.SamplePeriod;
  if (Capture.Options.Mode != TraceMode::Sampled) {
    reportModeMismatch(Stats);
    return Out;
  }
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    Out = analyzeSampledWith<Visitor>(P, Decoded, OutMode, Stage, Stats);
    if (Stats)
      Stats->IncompleteTailRecords += Cut;
    return Out;
  }
  PathGraphCache Paths(P); // Unused for sample records; required by scan.
  SalvageStats Local;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Local);

  std::vector<std::pair<std::vector<MethodId>,
                        std::unordered_map<MethodId, uint64_t>>>
      PerThread = parallelMap(Capture.Threads.size(), 1, Stage,
                              [&](size_t T) {
                                Visitor A;
                                LocalPathCache LocalPaths(Paths);
                                replayThreadPrefix(P, Capture.Options.Mode,
                                                   Capture.Threads[T].Words,
                                                   Prefix[T], LocalPaths, {&A});
                                return std::make_pair(std::move(A.Ids.Order),
                                                      std::move(A.Counts));
                              });

  std::vector<MethodId> Order;
  std::unordered_set<MethodId> Seen;
  std::unordered_map<MethodId, uint64_t> Totals;
  for (const auto &[ThreadOrder, ThreadCounts] : PerThread) {
    for (MethodId M : ThreadOrder)
      if (Seen.insert(M).second)
        Order.push_back(M);
    for (const auto &[M, N] : ThreadCounts)
      Totals[M] += N;
  }
  Out.Sigs = sigsOf(P, Order);
  Out.Counts.reserve(Order.size());
  for (MethodId M : Order)
    Out.Counts.push_back(Totals[M]);
  Out.Header.CoveragePermille = salvageCoveragePermille(Local);
  if (Stats)
    *Stats = Local;
  return Out;
}

} // namespace

CodeProfile nimg::analyzeSampledCuOrder(const Program &P,
                                        const TraceCapture &Capture,
                                        SalvageStats *Stats) {
  return analyzeSampledWith<SampleCuFirstSeen>(P, Capture, TraceMode::CuOrder,
                                               "replay_sample_cu", Stats);
}

CodeProfile nimg::analyzeSampledMethodOrder(const Program &P,
                                            const TraceCapture &Capture,
                                            SalvageStats *Stats) {
  return analyzeSampledWith<SampleMethodFirstSeen>(
      P, Capture, TraceMode::MethodOrder, "replay_sample_method", Stats);
}

std::vector<int32_t> nimg::analyzeHeapAccessOrder(const Program &P,
                                                  const TraceCapture &Capture,
                                                  PathGraphCache &Paths,
                                                  SalvageStats *Stats) {
  if (Capture.Options.Mode != TraceMode::HeapOrder) {
    reportModeMismatch(Stats);
    return {};
  }
  return analyzeFirstSeen<EntryFirstSeen, int32_t>(P, Capture, Paths,
                                                   "replay_heap", Stats);
}

//===----------------------------------------------------------------------===//
// Block execution counts (hot/cold splitting evidence).
//===----------------------------------------------------------------------===//

namespace {

/// First payload cell of the coverage row. '@' cannot start a method
/// signature, so the row is unambiguous in the payload.
constexpr const char *CoverageRowTag = "@coverage";

class BlockCountAnalysis : public OrderingAnalysis {
public:
  void onBlockVisit(MethodId M, BlockId B) override {
    ++Counts[(uint64_t(uint32_t(M)) << 32) | uint32_t(B)];
  }
  std::unordered_map<uint64_t, uint64_t> Counts;
};

} // namespace

std::string BlockProfile::toCsv() const {
  CsvDocument Doc;
  Doc.Rows.reserve(Rows.size() + 1);
  Doc.Rows.push_back({CoverageRowTag, std::to_string(CoveragePermille)});
  for (const Row &R : Rows)
    Doc.Rows.push_back(
        {R.Sig, std::to_string(R.Block), std::to_string(R.Count)});
  std::string Body = writeCsv(Doc);
  return headerRowCsv(Header, crc32(Body)) + Body;
}

BlockProfile BlockProfile::fromCsv(const std::string &Text,
                                   ProfileReadReport *Report) {
  ProfileReadReport Local;
  ProfileReadReport &R = Report ? *Report : Local;
  R = ProfileReadReport{};
  BlockProfile P;
  P.CoveragePermille = 0; // Only an explicit coverage row vouches for one.
  CsvDocument Doc = parseCsv(Text);
  size_t Start = readProfileHeader(Text, Doc, R);
  P.Header = R.Header;
  if (!R.usable()) {
    P.LoadError = R.Fatal;
    meterProfileLoad("block", R);
    return P;
  }
  P.Rows.reserve(Doc.Rows.size() - Start);
  for (size_t I = Start; I < Doc.Rows.size(); ++I) {
    const std::vector<std::string> &Row = Doc.Rows[I];
    if (isBlankRow(Row))
      continue;
    if (Row[0] == CoverageRowTag) {
      uint32_t Permille = 0;
      if (Row.size() < 2 || !parseDecU32(Row[1], Permille) ||
          Permille > 1000) {
        ++R.RowsSkipped;
        addIssue(R, ProfileError::MalformedCell, I + 1, "bad coverage row");
        continue;
      }
      P.CoveragePermille = Permille;
      ++R.RowsKept;
      continue;
    }
    BlockProfile::Row Parsed;
    if (Row.size() < 3 || Row[0].empty() || Row[0].size() > MaxSigBytes ||
        !parseDecU32(Row[1], Parsed.Block) ||
        !parseDecU64(Row[2], Parsed.Count)) {
      ++R.RowsSkipped;
      addIssue(R, ProfileError::MalformedCell, I + 1, "bad block-count row");
      continue;
    }
    Parsed.Sig = Row[0];
    P.Rows.push_back(std::move(Parsed));
    ++R.RowsKept;
  }
  meterProfileLoad("block", R);
  return P;
}

BlockProfile nimg::analyzeBlockCounts(const Program &P,
                                      const TraceCapture &Capture,
                                      PathGraphCache &Paths,
                                      SalvageStats *StatsOut) {
  BlockProfile Out;
  Out.Header.Mode = TraceMode::MethodOrder;
  if (Capture.Options.Mode != TraceMode::MethodOrder) {
    reportModeMismatch(StatsOut);
    Out.CoveragePermille = 0;
    return Out;
  }
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    Out = analyzeBlockCounts(P, Decoded, Paths, StatsOut);
    if (StatsOut)
      StatsOut->IncompleteTailRecords += Cut;
    return Out;
  }

  SalvageStats Stats;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Stats);
  std::vector<std::unordered_map<uint64_t, uint64_t>> PerThread = parallelMap(
      Capture.Threads.size(), 1, "replay_blocks", [&](size_t T) {
        BlockCountAnalysis A;
        A.Counts.reserve(Prefix[T] < 4096 ? Prefix[T] : 4096);
        LocalPathCache Local(Paths);
        replayThreadPrefix(P, Capture.Options.Mode, Capture.Threads[T].Words,
                           Prefix[T], Local, {&A});
        return std::move(A.Counts);
      });

  // Counts merge by summation — order-insensitive, so the merged map is
  // identical for any worker count; the sorted rows below fix the output
  // byte order.
  std::unordered_map<uint64_t, uint64_t> Merged;
  size_t Hint = 0;
  for (const auto &M : PerThread)
    Hint += M.size();
  Merged.reserve(Hint);
  for (const auto &M : PerThread)
    for (const auto &[Key, N] : M)
      Merged[Key] += N;

  Out.Rows.reserve(Merged.size());
  for (const auto &[Key, N] : Merged) {
    BlockProfile::Row R;
    R.Sig = P.method(MethodId(int32_t(Key >> 32))).Sig;
    R.Block = uint32_t(Key & 0xffffffffu);
    R.Count = N;
    Out.Rows.push_back(std::move(R));
  }
  std::sort(Out.Rows.begin(), Out.Rows.end(),
            [](const BlockProfile::Row &A, const BlockProfile::Row &B) {
              if (A.Sig != B.Sig)
                return A.Sig < B.Sig;
              return A.Block < B.Block;
            });

  Out.CoveragePermille =
      Stats.WordsScanned
          ? uint32_t(Stats.WordsKept * 1000 / Stats.WordsScanned)
          : 0;
  NIMG_COUNTER_ADD("nimg.split.block_rows", Out.Rows.size());
  if (StatsOut)
    *StatsOut = Stats;
  return Out;
}

//===----------------------------------------------------------------------===//
// CFG-edge execution counts (ext-TSP block-reordering evidence).
//===----------------------------------------------------------------------===//

namespace {

/// Per-thread CFG-edge counter. Consecutive block pairs within one path
/// record are true CFG edges by construction. The edges a record cut
/// severs — loop back edges and frame-pushing call sites — are recovered
/// by stitching: the last block of a method's previous record joins the
/// first block of its next non-entry record, but only when the static CFG
/// confirms the adjacency (a call cut resumes inside the same block, which
/// the consecutive-duplicate collapse already handles; interleaved
/// recursive invocations fail the successor check and contribute nothing).
class EdgeCountAnalysis : public OrderingAnalysis {
public:
  explicit EdgeCountAnalysis(const Program &P) : P(P) {}

  void onPathRecord(MethodId M, const std::vector<BlockId> &Blocks,
                    bool MethodEntry) override {
    for (size_t I = 0; I + 1 < Blocks.size(); ++I)
      note(M, Blocks[I], Blocks[I + 1]);
    auto [It, Fresh] = LastBlock.try_emplace(M, Blocks.back());
    if (!Fresh) {
      if (!MethodEntry && isStaticEdge(M, It->second, Blocks.front()))
        note(M, It->second, Blocks.front());
      It->second = Blocks.back();
    }
  }

  /// Key: (method << 40) | (from << 20) | to. Blocks per method are far
  /// below 2^20 (the path-id field itself is 20 bits) and method ids far
  /// below 2^24; out-of-range values are skipped defensively.
  std::unordered_map<uint64_t, uint64_t> Counts;

private:
  void note(MethodId M, BlockId From, BlockId To) {
    if (uint32_t(M) >= (1u << 24) || uint32_t(From) >= (1u << 20) ||
        uint32_t(To) >= (1u << 20))
      return;
    ++Counts[(uint64_t(uint32_t(M)) << 40) | (uint64_t(uint32_t(From)) << 20) |
             uint32_t(To)];
  }

  bool isStaticEdge(MethodId M, BlockId From, BlockId To) const {
    const Method &Meth = P.method(M);
    if (size_t(From) >= Meth.Blocks.size() ||
        Meth.Blocks[size_t(From)].Instrs.empty())
      return false;
    const Instr &Term = Meth.Blocks[size_t(From)].Instrs.back();
    switch (Term.Op) {
    case Opcode::Br:
      return Term.Target == To || BlockId(Term.Aux2) == To;
    case Opcode::Jmp:
      return Term.Target == To;
    default:
      return false;
    }
  }

  const Program &P;
  /// Last path-record tail block seen per method within this thread.
  std::unordered_map<MethodId, BlockId> LastBlock;
};

} // namespace

std::string EdgeProfile::toCsv() const {
  CsvDocument Doc;
  Doc.Rows.reserve(Rows.size() + 1);
  Doc.Rows.push_back({CoverageRowTag, std::to_string(CoveragePermille)});
  for (const Row &R : Rows)
    Doc.Rows.push_back({R.Sig, std::to_string(R.From), std::to_string(R.To),
                        std::to_string(R.Count)});
  std::string Body = writeCsv(Doc);
  return headerRowCsv(Header, crc32(Body)) + Body;
}

EdgeProfile EdgeProfile::fromCsv(const std::string &Text,
                                 ProfileReadReport *Report) {
  ProfileReadReport Local;
  ProfileReadReport &R = Report ? *Report : Local;
  R = ProfileReadReport{};
  EdgeProfile P;
  P.CoveragePermille = 0; // Only an explicit coverage row vouches for one.
  CsvDocument Doc = parseCsv(Text);
  size_t Start = readProfileHeader(Text, Doc, R);
  P.Header = R.Header;
  if (!R.usable()) {
    P.LoadError = R.Fatal;
    meterProfileLoad("edge", R);
    return P;
  }
  P.Rows.reserve(Doc.Rows.size() - Start);
  for (size_t I = Start; I < Doc.Rows.size(); ++I) {
    const std::vector<std::string> &Row = Doc.Rows[I];
    if (isBlankRow(Row))
      continue;
    if (Row[0] == CoverageRowTag) {
      uint32_t Permille = 0;
      if (Row.size() < 2 || !parseDecU32(Row[1], Permille) ||
          Permille > 1000) {
        ++R.RowsSkipped;
        addIssue(R, ProfileError::MalformedCell, I + 1, "bad coverage row");
        continue;
      }
      P.CoveragePermille = Permille;
      ++R.RowsKept;
      continue;
    }
    EdgeProfile::Row Parsed;
    if (Row.size() < 4 || Row[0].empty() || Row[0].size() > MaxSigBytes ||
        !parseDecU32(Row[1], Parsed.From) || !parseDecU32(Row[2], Parsed.To) ||
        !parseDecU64(Row[3], Parsed.Count)) {
      ++R.RowsSkipped;
      addIssue(R, ProfileError::MalformedCell, I + 1, "bad edge-count row");
      continue;
    }
    Parsed.Sig = Row[0];
    P.Rows.push_back(std::move(Parsed));
    ++R.RowsKept;
  }
  meterProfileLoad("edge", R);
  return P;
}

EdgeProfile nimg::analyzeEdgeCounts(const Program &P,
                                    const TraceCapture &Capture,
                                    PathGraphCache &Paths,
                                    SalvageStats *StatsOut) {
  EdgeProfile Out;
  Out.Header.Mode = TraceMode::MethodOrder;
  if (Capture.Options.Mode != TraceMode::MethodOrder) {
    reportModeMismatch(StatsOut);
    Out.CoveragePermille = 0;
    return Out;
  }
  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    Out = analyzeEdgeCounts(P, Decoded, Paths, StatsOut);
    if (StatsOut)
      StatsOut->IncompleteTailRecords += Cut;
    return Out;
  }

  SalvageStats Stats;
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Stats);
  std::vector<std::unordered_map<uint64_t, uint64_t>> PerThread = parallelMap(
      Capture.Threads.size(), 1, "replay_edges", [&](size_t T) {
        EdgeCountAnalysis A(P);
        A.Counts.reserve(Prefix[T] < 4096 ? Prefix[T] : 4096);
        LocalPathCache Local(Paths);
        replayThreadPrefix(P, Capture.Options.Mode, Capture.Threads[T].Words,
                           Prefix[T], Local, {&A});
        return std::move(A.Counts);
      });

  // Counts merge by summation — order-insensitive, so the merged map is
  // identical for any worker count; the sorted rows below fix the output
  // byte order.
  std::unordered_map<uint64_t, uint64_t> Merged;
  size_t Hint = 0;
  for (const auto &M : PerThread)
    Hint += M.size();
  Merged.reserve(Hint);
  for (const auto &M : PerThread)
    for (const auto &[Key, N] : M)
      Merged[Key] += N;

  Out.Rows.reserve(Merged.size());
  for (const auto &[Key, N] : Merged) {
    EdgeProfile::Row R;
    R.Sig = P.method(MethodId(int32_t(Key >> 40))).Sig;
    R.From = uint32_t((Key >> 20) & 0xfffffu);
    R.To = uint32_t(Key & 0xfffffu);
    R.Count = N;
    Out.Rows.push_back(std::move(R));
  }
  std::sort(Out.Rows.begin(), Out.Rows.end(),
            [](const EdgeProfile::Row &A, const EdgeProfile::Row &B) {
              if (A.Sig != B.Sig)
                return A.Sig < B.Sig;
              if (A.From != B.From)
                return A.From < B.From;
              return A.To < B.To;
            });

  Out.CoveragePermille =
      Stats.WordsScanned
          ? uint32_t(Stats.WordsKept * 1000 / Stats.WordsScanned)
          : 0;
  NIMG_COUNTER_ADD("nimg.layout.exttsp.edge_rows", Out.Rows.size());
  if (StatsOut)
    *StatsOut = Stats;
  return Out;
}

HeapProfile nimg::heapProfileFor(const std::vector<int32_t> &EntryOrder,
                                 const IdTable &Ids, HeapStrategy Strategy) {
  HeapProfile P;
  P.Header.Mode = TraceMode::HeapOrder;
  P.Header.HasStrategy = true;
  P.Header.Strategy = Strategy;
  const std::vector<uint64_t> &Table = Ids.of(Strategy);
  P.Ids.reserve(EntryOrder.size());
  for (int32_t Entry : EntryOrder) {
    if (Entry < 0 || size_t(Entry) >= Table.size())
      continue;
    P.Ids.push_back(Table[size_t(Entry)]);
  }
  return P;
}
