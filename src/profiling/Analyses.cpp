//===- Analyses.cpp - Trace post-processing analyses ------------------------===//

#include "src/profiling/Analyses.h"

#include "src/support/Csv.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>

using namespace nimg;

std::string CodeProfile::toCsv() const {
  CsvDocument Doc;
  for (const std::string &S : Sigs)
    Doc.Rows.push_back({S});
  return writeCsv(Doc);
}

CodeProfile CodeProfile::fromCsv(const std::string &Text) {
  CodeProfile P;
  for (const auto &Row : parseCsv(Text).Rows)
    if (!Row.empty() && !Row[0].empty())
      P.Sigs.push_back(Row[0]);
  return P;
}

std::string HeapProfile::toCsv() const {
  CsvDocument Doc;
  char Buf[32];
  for (uint64_t Id : Ids) {
    std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, Id);
    Doc.Rows.push_back({Buf});
  }
  return writeCsv(Doc);
}

HeapProfile HeapProfile::fromCsv(const std::string &Text) {
  HeapProfile P;
  for (const auto &Row : parseCsv(Text).Rows) {
    if (Row.empty() || Row[0].empty())
      continue;
    P.Ids.push_back(std::strtoull(Row[0].c_str(), nullptr, 16));
  }
  return P;
}

void nimg::replayTrace(const Program &P, const TraceCapture &Capture,
                       PathGraphCache &Paths,
                       const std::vector<OrderingAnalysis *> &Analyses) {
  bool HasOperands = Capture.Options.Mode == TraceMode::HeapOrder;
  for (const ThreadTrace &T : Capture.Threads) {
    size_t I = 0;
    while (I < T.Words.size()) {
      uint64_t W = T.Words[I++];
      if (tracerec::isCuEnter(W)) {
        for (OrderingAnalysis *A : Analyses)
          A->onCuEnter(tracerec::cuRoot(W));
        continue;
      }
      if (!tracerec::isPath(W))
        continue; // Corrupt word; skip (traces of killed runs may truncate).
      MethodId M = tracerec::pathMethod(W);
      if (M < 0 || size_t(M) >= P.numMethods())
        continue;
      PathEvents Events = Paths.of(M).decode(tracerec::pathId(W));
      if (Events.MethodEntry)
        for (OrderingAnalysis *A : Analyses)
          A->onMethodEnter(M);
      if (!HasOperands)
        continue;
      // A truncated trace (mode-1 SIGKILL) may cut operands short; consume
      // what is there.
      for (uint32_t K = 0; K < Events.OperandCount && I < T.Words.size();
           ++K) {
        uint64_t Op = T.Words[I++];
        if (Op == 0)
          continue;
        for (OrderingAnalysis *A : Analyses)
          A->onObjectAccess(int32_t(Op - 1));
      }
    }
  }
}

namespace {

class CuOrderAnalysis : public OrderingAnalysis {
public:
  explicit CuOrderAnalysis(const Program &P) : P(P) {}
  void onCuEnter(MethodId Root) override {
    if (Seen.insert(Root).second)
      Profile.Sigs.push_back(P.method(Root).Sig);
  }
  CodeProfile Profile;

private:
  const Program &P;
  std::unordered_set<MethodId> Seen;
};

class MethodOrderAnalysis : public OrderingAnalysis {
public:
  explicit MethodOrderAnalysis(const Program &P) : P(P) {}
  void onMethodEnter(MethodId M) override {
    if (Seen.insert(M).second)
      Profile.Sigs.push_back(P.method(M).Sig);
  }
  CodeProfile Profile;

private:
  const Program &P;
  std::unordered_set<MethodId> Seen;
};

class HeapOrderAnalysis : public OrderingAnalysis {
public:
  void onObjectAccess(int32_t Entry) override {
    if (Seen.insert(Entry).second)
      Order.push_back(Entry);
  }
  std::vector<int32_t> Order;

private:
  std::unordered_set<int32_t> Seen;
};

} // namespace

CodeProfile nimg::analyzeCuOrder(const Program &P,
                                 const TraceCapture &Capture) {
  assert(Capture.Options.Mode == TraceMode::CuOrder &&
         "cu analysis needs a cu-mode capture");
  CuOrderAnalysis A(P);
  PathGraphCache Paths(P); // Unused for cu records but required by replay.
  replayTrace(P, Capture, Paths, {&A});
  return std::move(A.Profile);
}

CodeProfile nimg::analyzeMethodOrder(const Program &P,
                                     const TraceCapture &Capture,
                                     PathGraphCache &Paths) {
  assert(Capture.Options.Mode == TraceMode::MethodOrder &&
         "method analysis needs a method-mode capture");
  MethodOrderAnalysis A(P);
  replayTrace(P, Capture, Paths, {&A});
  return std::move(A.Profile);
}

std::vector<int32_t> nimg::analyzeHeapAccessOrder(const Program &P,
                                                  const TraceCapture &Capture,
                                                  PathGraphCache &Paths) {
  assert(Capture.Options.Mode == TraceMode::HeapOrder &&
         "heap analysis needs a heap-mode capture");
  HeapOrderAnalysis A;
  replayTrace(P, Capture, Paths, {&A});
  return std::move(A.Order);
}

HeapProfile nimg::heapProfileFor(const std::vector<int32_t> &EntryOrder,
                                 const IdTable &Ids, HeapStrategy Strategy) {
  HeapProfile P;
  const std::vector<uint64_t> &Table = Ids.of(Strategy);
  for (int32_t Entry : EntryOrder) {
    if (Entry < 0 || size_t(Entry) >= Table.size())
      continue;
    P.Ids.push_back(Table[size_t(Entry)]);
  }
  return P;
}
