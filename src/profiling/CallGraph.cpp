//===- CallGraph.cpp - Dynamic CU transition graph from traces --------------===//

#include "src/profiling/CallGraph.h"

#include "src/obs/Metrics.h"
#include "src/support/ThreadPool.h"

#include <algorithm>
#include <unordered_set>

using namespace nimg;

void CallGraphAnalysis::onCuEnter(MethodId Root) {
  if (Seen.insert(Root).second)
    FirstSeen.push_back(Root);
  // Self-transitions (a CU re-entered directly after itself) carry no
  // layout signal — the unit already shares its own pages — and would
  // otherwise dominate the weights on loop-heavy workloads.
  if (Prev != -1 && Prev != Root)
    ++Weights[edgeKey(Prev, Root)];
  Prev = Root;
}

CuTransitionGraph nimg::analyzeCuTransitions(const Program &P,
                                             const TraceCapture &Capture,
                                             SalvageStats *StatsOut) {
  CuTransitionGraph G;
  if (Capture.Options.Mode != TraceMode::CuOrder) {
    NIMG_COUNTER_ADD("nimg.salvage.mode_mismatch", 1);
    if (StatsOut) {
      *StatsOut = SalvageStats{};
      StatsOut->ModeMismatch = true;
    }
    return G;
  }

  if (captureEncoded(Capture)) {
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(Capture, &Cut);
    G = analyzeCuTransitions(P, Decoded, StatsOut);
    if (StatsOut)
      StatsOut->IncompleteTailRecords += Cut;
    return G;
  }

  SalvageStats Stats;
  PathGraphCache Paths(P); // Unused for cu records but required by replay.
  std::vector<size_t> Prefix = scanCapture(P, Capture, Paths, Stats);

  // One task per traced thread; edges never cross a thread boundary (a
  // temporal adjacency only exists within one thread's execution), so the
  // per-thread graphs are independent.
  std::vector<CallGraphAnalysis> PerThread(Capture.Threads.size());
  parallelMap(Capture.Threads.size(), 1, "replay_cluster", [&](size_t T) {
    LocalPathCache Local(Paths);
    // The valid prefix length bounds both distinct CUs and distinct edges;
    // pre-sizing from it removes the incremental rehash churn the --jobs 8
    // profile shows on these per-thread maps.
    PerThread[T].reserveHint(Prefix[T]);
    replayThreadPrefix(P, Capture.Options.Mode, Capture.Threads[T].Words,
                       Prefix[T], Local, {&PerThread[T]});
    return 0;
  });

  // Thread-order merge: first-seen orders concatenate with a global seen
  // set (earlier threads win ties, exactly as a sequential replay of the
  // concatenated threads would), and edge weights sum — both independent
  // of which worker ran which thread, so the graph is byte-identical for
  // any --jobs value.
  size_t NodeHint = 0, EdgeHint = 0;
  for (const CallGraphAnalysis &A : PerThread) {
    NodeHint += A.FirstSeen.size();
    EdgeHint += A.Weights.size();
  }
  std::unordered_set<MethodId> Seen;
  Seen.reserve(NodeHint);
  std::unordered_map<uint64_t, uint64_t> Weights;
  Weights.reserve(EdgeHint);
  for (const CallGraphAnalysis &A : PerThread) {
    for (MethodId M : A.FirstSeen)
      if (Seen.insert(M).second)
        G.FirstSeen.push_back(M);
    for (const auto &[Key, W] : A.Weights)
      Weights[Key] += W;
  }

  G.Edges.reserve(Weights.size());
  for (const auto &[Key, W] : Weights) {
    CuTransitionGraph::Edge E;
    E.From = MethodId(int32_t(Key >> 32));
    E.To = MethodId(int32_t(Key & 0xffffffffu));
    E.Weight = W;
    G.Edges.push_back(E);
  }
  // The map's iteration order is unspecified; fix a deterministic edge
  // order here so every consumer sees the same graph.
  std::sort(G.Edges.begin(), G.Edges.end(),
            [](const CuTransitionGraph::Edge &A,
               const CuTransitionGraph::Edge &B) {
              if (A.From != B.From)
                return A.From < B.From;
              return A.To < B.To;
            });

  NIMG_COUNTER_ADD("nimg.order.cluster.graph_nodes", G.FirstSeen.size());
  NIMG_COUNTER_ADD("nimg.order.cluster.graph_edges", G.Edges.size());
  if (StatsOut)
    *StatsOut = Stats;
  return G;
}
