//===- Trace.h - Trace records, buffers, and dump modes ---------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread trace format of the tracing profiler (Sec. 6.1). A trace
/// is a sequence of 64-bit words:
///
///  - a *path record* carries the method and Ball-Larus path id; it is
///    followed by exactly as many operand words as the decoded path has
///    heap-access slots (heap-ordering traces only). An operand word is
///    `snapshotEntryIndex + 1`, or 0 when the accessed value was not an
///    image-heap object;
///  - a *CU-entry record* carries the root method of the entered
///    compilation unit (cu-ordering traces only).
///
/// Buffers have two dump modes (Sec. 6.1): FlushOnFull flushes full
/// buffers and at thread termination — an abnormal termination (the
/// SIGKILL the microservice harness sends, Sec. 7.1) loses the unflushed
/// tail; MemoryMapped models mmap-backed trace files where the kernel
/// persists every word, at a higher per-word cost.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_TRACE_H
#define NIMG_PROFILING_TRACE_H

#include "src/ir/Program.h"

#include <cstdint>
#include <vector>

namespace nimg {

/// What the instrumented binary traces; one per ordering strategy family.
enum class TraceMode : uint8_t {
  CuOrder,     ///< CU-entry events (Sec. 4.1).
  MethodOrder, ///< Method-entry events via path records (Sec. 4.2).
  HeapOrder,   ///< Object accesses via path records + operands (Sec. 5).
  Sampled,     ///< Periodic samples of the executing method/CU (BOLT-style).
};

enum class DumpMode : uint8_t { FlushOnFull, MemoryMapped };

/// On-"disk" representation of dumped buffers. Raw persists each word as
/// eight bytes; VarintDelta persists the zigzag of the delta to the
/// previous word as LEB128 (consecutive path records of one method differ
/// only in their low bits, so most deltas fit in two or three bytes).
enum class TraceEncoding : uint8_t { Raw, VarintDelta };

struct TraceOptions {
  TraceMode Mode = TraceMode::CuOrder;
  DumpMode Dump = DumpMode::FlushOnFull;
  TraceEncoding Encoding = TraceEncoding::Raw;
  uint32_t BufferWords = 16384;
  /// Sampled mode only: model-clock instructions between samples. The
  /// default is the tab_profiling_overhead sweet spot — coarse enough
  /// that capture cost vanishes, fine enough that the first AWFY startup
  /// phase still lands dozens of samples.
  uint64_t SamplePeriod = DefaultSamplePeriod;
  /// Sampled mode only: clock offset of the first sample. Fleet members
  /// stagger their phases so a merged set covers more of the period.
  uint64_t SamplePhase = 0;

  static constexpr uint64_t DefaultSamplePeriod = 2048;
  /// Periods above this are nonsense metadata (a whole run takes well
  /// under 2^20 modeled instructions times a few): the aggregator
  /// quarantines such members (`implausible_sample_period`).
  static constexpr uint64_t MaxSamplePeriod = 1 << 20;
};

/// LEB128/zigzag-delta coding of trace words (TraceEncoding::VarintDelta).
namespace varint {

/// Appends the zigzag-LEB128 encoding of \p Word (delta against \p Prev)
/// to \p Out; returns the number of bytes emitted and updates \p Prev.
inline size_t encodeWord(uint64_t Word, uint64_t &Prev,
                         std::vector<uint8_t> &Out) {
  uint64_t Delta = Word - Prev;
  Prev = Word;
  // Zigzag so small negative deltas stay short.
  uint64_t Zz = (Delta << 1) ^ (uint64_t)((int64_t)Delta >> 63);
  size_t N = 0;
  do {
    uint8_t B = Zz & 0x7f;
    Zz >>= 7;
    if (Zz)
      B |= 0x80;
    Out.push_back(B);
    ++N;
  } while (Zz);
  return N;
}

/// Decodes one word starting at \p At. Returns false when the buffer ends
/// mid-varint (a kill truncated the dump) — \p At is then left unchanged.
inline bool decodeWord(const std::vector<uint8_t> &In, size_t &At,
                       uint64_t &Prev, uint64_t &Word) {
  uint64_t Zz = 0;
  uint32_t Shift = 0;
  for (size_t I = At; I < In.size() && Shift < 64; ++I, Shift += 7) {
    Zz |= uint64_t(In[I] & 0x7f) << Shift;
    if (!(In[I] & 0x80)) {
      uint64_t Delta = (Zz >> 1) ^ (~(Zz & 1) + 1);
      Prev += Delta;
      Word = Prev;
      At = I + 1;
      return true;
    }
  }
  return false;
}

} // namespace varint

/// Trace-word encodings.
namespace tracerec {

inline constexpr uint64_t KindMask = 0x7;
inline constexpr uint64_t KindPath = 0x1;
inline constexpr uint64_t KindCuEnter = 0x2;
inline constexpr uint64_t KindSample = 0x3;

inline uint64_t makePath(MethodId M, uint64_t PathId) {
  return KindPath | (PathId << 3) | (uint64_t(uint32_t(M)) << 24);
}
inline uint64_t makeCuEnter(MethodId Root) {
  return KindCuEnter | (uint64_t(uint32_t(Root)) << 3);
}
/// A sample record carries both the executing method and its CU root, so
/// one sampled capture feeds cu- and method-granularity analyses alike:
/// method in bits [3,31), root in [31,59), bits [59,64) reserved zero.
inline uint64_t makeSample(MethodId M, MethodId Root) {
  return KindSample | ((uint64_t(uint32_t(M)) & 0xfffffff) << 3) |
         ((uint64_t(uint32_t(Root)) & 0xfffffff) << 31);
}
inline bool isPath(uint64_t W) { return (W & KindMask) == KindPath; }
inline bool isCuEnter(uint64_t W) { return (W & KindMask) == KindCuEnter; }
inline bool isSample(uint64_t W) { return (W & KindMask) == KindSample; }
inline uint64_t pathId(uint64_t W) { return (W >> 3) & 0x1fffff; }
inline MethodId pathMethod(uint64_t W) { return MethodId(W >> 24); }
inline MethodId cuRoot(uint64_t W) { return MethodId(W >> 3); }
inline MethodId sampleMethod(uint64_t W) {
  return MethodId((W >> 3) & 0xfffffff);
}
inline MethodId sampleRoot(uint64_t W) {
  return MethodId((W >> 31) & 0xfffffff);
}

} // namespace tracerec

/// One thread's persisted trace. Exactly one of the two forms is
/// populated: \c Words for Raw dumps, \c Bytes (with \c Encoded set) for
/// VarintDelta dumps.
struct ThreadTrace {
  std::vector<uint64_t> Words;
  std::vector<uint8_t> Bytes;
  bool Encoded = false;

  /// Materializes the word stream regardless of encoding. Returns false
  /// when an encoded stream ends mid-varint (dump truncated by a kill);
  /// the words decoded before the cut are still appended.
  bool decodeWords(std::vector<uint64_t> &Out) const {
    if (!Encoded) {
      Out.insert(Out.end(), Words.begin(), Words.end());
      return true;
    }
    uint64_t Prev = 0, W = 0;
    size_t At = 0;
    while (varint::decodeWord(Bytes, At, Prev, W))
      Out.push_back(W);
    return At == Bytes.size();
  }

  size_t numWords() const {
    if (!Encoded)
      return Words.size();
    size_t N = 0;
    for (uint8_t B : Bytes)
      if (!(B & 0x80))
        ++N;
    return N;
  }

  /// Persisted byte size of this trace (8 bytes per raw word).
  size_t numBytes() const { return Encoded ? Bytes.size() : Words.size() * 8; }
};

/// All traces of one profiling run, in thread-creation order — the order
/// multi-threaded profiles are concatenated in (Sec. 7.1).
struct TraceCapture {
  TraceOptions Options;
  std::vector<ThreadTrace> Threads;

  size_t totalWords() const {
    size_t N = 0;
    for (const ThreadTrace &T : Threads)
      N += T.numWords();
    return N;
  }

  size_t totalBytes() const {
    size_t N = 0;
    for (const ThreadTrace &T : Threads)
      N += T.numBytes();
    return N;
  }
};

/// Writes trace words with buffer/dump-mode semantics and accounts the
/// modeled probe cost.
class TraceWriter {
public:
  explicit TraceWriter(const TraceOptions &Options) : Options(Options) {}

  void ensureThread(uint32_t Tid) {
    if (Tid >= Pending.size()) {
      Pending.resize(Tid + 1);
      Persisted.resize(Tid + 1);
      PrevWord.resize(Tid + 1, 0);
      if (Options.Encoding == TraceEncoding::VarintDelta)
        for (size_t I = 0; I < Persisted.size(); ++I)
          Persisted[I].Encoded = true;
    }
  }

  /// Appends one word to \p Tid's buffer.
  void append(uint32_t Tid, uint64_t Word) {
    ensureThread(Tid);
    if (Options.Dump == DumpMode::MemoryMapped) {
      // The mmap-backed file persists every word; remapping on overflow is
      // folded into the per-word cost. Varint dumps write fewer bytes per
      // word, so their modeled cost scales with the emitted bytes.
      if (Options.Encoding == TraceEncoding::VarintDelta) {
        size_t N =
            varint::encodeWord(Word, PrevWord[Tid], Persisted[Tid].Bytes);
        ProbeUnits += (N + 3) / 4;
      } else {
        Persisted[Tid].Words.push_back(Word);
        ProbeUnits += MmapWordCost;
      }
      return;
    }
    Pending[Tid].push_back(Word);
    if (Pending[Tid].size() >= Options.BufferWords)
      flushThread(Tid);
  }

  void addProbeCost(uint64_t Units) { ProbeUnits += Units; }
  uint64_t probeUnits() const { return ProbeUnits; }

  /// Flushes one thread's pending buffer (buffer full / clean termination).
  void flushThread(uint32_t Tid) {
    ensureThread(Tid);
    auto &P = Pending[Tid];
    if (Options.Encoding == TraceEncoding::VarintDelta) {
      // The delta chain continues across flushes: one encoder state per
      // thread, exactly like an appended-to trace file.
      for (uint64_t W : P)
        varint::encodeWord(W, PrevWord[Tid], Persisted[Tid].Bytes);
    } else {
      auto &Out = Persisted[Tid].Words;
      Out.insert(Out.end(), P.begin(), P.end());
    }
    ProbeUnits += FlushCost;
    P.clear();
  }

  /// Clean shutdown: every thread runs its termination handler.
  void flushAll() {
    for (uint32_t Tid = 0; Tid < Pending.size(); ++Tid)
      if (!Pending[Tid].empty())
        flushThread(Tid);
  }

  /// Simulated SIGKILL: termination handlers do not run, so FlushOnFull
  /// buffers lose their unflushed tail (the reason microservices use the
  /// memory-mapped mode, Sec. 6.1).
  void killAll() {
    for (auto &P : Pending)
      P.clear();
  }

  TraceCapture take() {
    TraceCapture C;
    C.Options = Options;
    C.Threads = std::move(Persisted);
    Persisted.clear();
    Pending.clear();
    PrevWord.clear();
    return C;
  }

  /// Modeled cost constants (time-model units per operation).
  static constexpr uint64_t MmapWordCost = 2;
  static constexpr uint64_t FlushCost = 64;

private:
  TraceOptions Options;
  std::vector<std::vector<uint64_t>> Pending;
  std::vector<ThreadTrace> Persisted;
  std::vector<uint64_t> PrevWord;
  uint64_t ProbeUnits = 0;
};

} // namespace nimg

#endif // NIMG_PROFILING_TRACE_H
