//===- ProfileDiagnostics.h - Profile ingestion diagnostics -----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed diagnostics for the profile interchange format. Ordering-profile
/// CSVs carry a header row (format version, trace mode, heap strategy,
/// program fingerprint, payload CRC-32); ingestion validates it and every
/// payload cell, and the optimizing build downgrades to the default layout
/// — recording a ProfileDiagnostics summary on the image — instead of
/// consuming a corrupt or stale profile. This is the degradation policy
/// the paper's pipeline needs to survive SIGKILL'd profiling runs and
/// build-to-build staleness (Secs. 6.1, 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_PROFILEDIAGNOSTICS_H
#define NIMG_PROFILING_PROFILEDIAGNOSTICS_H

#include "src/ordering/IdStrategies.h"
#include "src/profiling/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nimg {

/// Current version of the profile CSV header. Version 0 denotes a legacy
/// headerless file (accepted, but without checksum/fingerprint checks);
/// version 1 files lack the generation/coverage cells appended in v2 and
/// are accepted with generation 0 (staleness check disabled) and coverage
/// 1000.
inline constexpr uint32_t ProfileFormatVersion = 2;

enum class ProfileError : uint8_t {
  None,
  BadHeader,           ///< Header row present but unparsable.
  UnsupportedVersion,  ///< Header version newer than this build understands.
  ChecksumMismatch,    ///< Payload CRC-32 does not match the header.
  FingerprintMismatch, ///< Profile came from a different program.
  ModeMismatch,        ///< Trace mode does not fit the requested strategy.
  StrategyMismatch,    ///< Heap profile computed for a different strategy.
  MalformedCell,       ///< A payload cell failed to parse (row skipped).
  LegacyFormat,        ///< Informational: headerless pre-v1 file.
  WorkerFault,         ///< A parallel build task threw; its unit degraded.
  EmptyTransitionGraph, ///< Cluster analysis saw no CU transitions; the
                        ///< profile degraded to plain cu ordering.
  InsufficientBlockProfile, ///< Block counts missing or salvage coverage
                            ///< below threshold; CUs stay unsplit.
  InsufficientEdgeProfile,  ///< CFG-edge counts missing or under-covered;
                            ///< hot fragments keep block index order.
  CoverageBelowGate,   ///< Merge member's salvage coverage under the gate.
  DriftOutlier,        ///< Merge member's per-CU count distribution is a
                       ///< statistical outlier vs the member median.
  StaleGeneration,     ///< Merge member's generation stamp lags the
                       ///< newest member beyond the allowed window.
  DuplicateMember,     ///< Two members of one capture/merge set carry the
                       ///< same instance name; later ones are dropped.
  ImplausibleSamplePeriod, ///< A sampled profile whose period metadata is
                           ///< zero or absurdly coarse; member quarantined.
  HugeBudgetUnfillable, ///< Profile coverage / hot-prefix size cannot
                        ///< justify the full --huge-pages budget; the
                        ///< effective region is clamped, the tail of the
                        ///< budget stays on base pages.
};

inline const char *profileErrorName(ProfileError E) {
  switch (E) {
  case ProfileError::None:
    return "none";
  case ProfileError::BadHeader:
    return "bad header";
  case ProfileError::UnsupportedVersion:
    return "unsupported version";
  case ProfileError::ChecksumMismatch:
    return "checksum mismatch";
  case ProfileError::FingerprintMismatch:
    return "fingerprint mismatch";
  case ProfileError::ModeMismatch:
    return "trace-mode mismatch";
  case ProfileError::StrategyMismatch:
    return "heap-strategy mismatch";
  case ProfileError::MalformedCell:
    return "malformed cell";
  case ProfileError::LegacyFormat:
    return "legacy headerless format";
  case ProfileError::WorkerFault:
    return "worker task fault";
  case ProfileError::EmptyTransitionGraph:
    return "empty transition graph";
  case ProfileError::InsufficientBlockProfile:
    return "insufficient block profile";
  case ProfileError::InsufficientEdgeProfile:
    return "insufficient edge profile";
  case ProfileError::CoverageBelowGate:
    return "coverage below gate";
  case ProfileError::DriftOutlier:
    return "count-distribution drift outlier";
  case ProfileError::StaleGeneration:
    return "stale generation";
  case ProfileError::DuplicateMember:
    return "duplicate member name";
  case ProfileError::ImplausibleSamplePeriod:
    return "implausible sample period";
  case ProfileError::HugeBudgetUnfillable:
    return "huge budget unfillable";
  }
  return "unknown";
}

/// Stable snake_case identifier for \p E, used in metric names and the
/// startup report's JSON (profileErrorName() is the human-facing form).
inline const char *profileErrorSlug(ProfileError E) {
  switch (E) {
  case ProfileError::None:
    return "none";
  case ProfileError::BadHeader:
    return "bad_header";
  case ProfileError::UnsupportedVersion:
    return "unsupported_version";
  case ProfileError::ChecksumMismatch:
    return "checksum_mismatch";
  case ProfileError::FingerprintMismatch:
    return "fingerprint_mismatch";
  case ProfileError::ModeMismatch:
    return "mode_mismatch";
  case ProfileError::StrategyMismatch:
    return "strategy_mismatch";
  case ProfileError::MalformedCell:
    return "malformed_cell";
  case ProfileError::LegacyFormat:
    return "legacy_format";
  case ProfileError::WorkerFault:
    return "worker_fault";
  case ProfileError::EmptyTransitionGraph:
    return "empty_transition_graph";
  case ProfileError::InsufficientBlockProfile:
    return "insufficient_block_profile";
  case ProfileError::InsufficientEdgeProfile:
    return "insufficient_edge_profile";
  case ProfileError::CoverageBelowGate:
    return "coverage_below_gate";
  case ProfileError::DriftOutlier:
    return "drift_outlier";
  case ProfileError::StaleGeneration:
    return "stale_generation";
  case ProfileError::DuplicateMember:
    return "duplicate_member";
  case ProfileError::ImplausibleSamplePeriod:
    return "implausible_sample_period";
  case ProfileError::HugeBudgetUnfillable:
    return "huge_budget_unfillable";
  }
  return "unknown";
}

/// One ingestion finding: what went wrong and where.
struct ProfileIssue {
  ProfileError Kind = ProfileError::None;
  size_t Row = 0; ///< 1-based CSV row; 0 = whole file.
  std::string Detail;
};

/// How the capture behind a profile was taken. Instrumented captures
/// record every transition; sampled captures record a periodic sample of
/// the executing method/CU and reconstruct ranks from hit statistics.
enum class CaptureKind : uint8_t { Instrumented, Sampled };

inline const char *captureKindName(CaptureKind K) {
  switch (K) {
  case CaptureKind::Instrumented:
    return "instrumented";
  case CaptureKind::Sampled:
    return "sampled";
  }
  return "unknown";
}

/// The interchange header of a profile CSV (first row). Fingerprint 0
/// means "unknown" and disables the staleness check.
struct ProfileHeader {
  uint32_t Version = ProfileFormatVersion;
  TraceMode Mode = TraceMode::CuOrder;
  bool HasStrategy = false; ///< Heap profiles also carry their strategy.
  HeapStrategy Strategy = HeapStrategy::IncrementalId;
  uint64_t Fingerprint = 0;
  /// Monotonic capture-generation stamp (v2 cell 7). 0 = unknown; such
  /// members are exempt from the merge staleness check.
  uint64_t Generation = 0;
  /// Salvage coverage of the capture that produced this profile, in
  /// permille (v2 cell 8). v0/v1 files default to full coverage. Sampled
  /// profiles carry their coverage *estimate* here (distinct sampled CU
  /// roots per entered root).
  uint32_t CoveragePermille = 1000;
  /// Capture strategy (v2 cells 9+10, emitted only for sampled profiles
  /// so instrumented files stay byte-identical with pre-sampling readers).
  CaptureKind Capture = CaptureKind::Instrumented;
  /// Sampled captures: the model-clock period the sampler ran at.
  uint64_t SamplePeriod = 0;
};

/// Everything fromCsv() learned while reading one profile file.
struct ProfileReadReport {
  bool HeaderPresent = false;
  ProfileHeader Header;
  /// First unrecoverable problem; None means the profile is usable (its
  /// payload may still have skipped rows, listed in Issues).
  ProfileError Fatal = ProfileError::None;
  std::vector<ProfileIssue> Issues;
  size_t RowsKept = 0;
  size_t RowsSkipped = 0;
  /// Sampled profiles only: the payload CRC did not match but the file
  /// was recovered as its longest well-formed row prefix (a truncated
  /// fleet upload). Instrumented profiles never set this — a bad CRC
  /// there stays Fatal, because every row carries rank information.
  bool PrefixSalvaged = false;

  bool usable() const { return Fatal == ProfileError::None; }
};

/// How one member of a merge/capture set was classified by the profile
/// aggregator (src/profiling/Aggregate.h).
enum class MergeMemberStatus : uint8_t {
  Accepted,    ///< Clean: contributes to the merge at full standing.
  Salvaged,    ///< Usable but lossy (skipped rows / partial coverage).
  Quarantined, ///< Dropped with a typed ProfileError reason.
};

inline const char *mergeMemberStatusName(MergeMemberStatus S) {
  switch (S) {
  case MergeMemberStatus::Accepted:
    return "accepted";
  case MergeMemberStatus::Salvaged:
    return "salvaged";
  case MergeMemberStatus::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

/// Which rung of the degradation ladder the aggregator landed on.
enum class MergeOutcome : uint8_t {
  NotAttempted, ///< No member set was offered to this build.
  Merged,       ///< >= 2 live members, weighted merge applied.
  BestSingle,   ///< Exactly 1 live member survived; used verbatim.
  Fallback,     ///< Every member quarantined; default cu-order layout.
};

inline const char *mergeOutcomeName(MergeOutcome O) {
  switch (O) {
  case MergeOutcome::NotAttempted:
    return "not_attempted";
  case MergeOutcome::Merged:
    return "merged";
  case MergeOutcome::BestSingle:
    return "best_single";
  case MergeOutcome::Fallback:
    return "fallback";
  }
  return "unknown";
}

/// Per-member line of the quarantine manifest: how the member was
/// classified, why, and the weight it carried into the merged fold.
struct MergeMemberReport {
  std::string Name;
  MergeMemberStatus Status = MergeMemberStatus::Accepted;
  ProfileError Reason = ProfileError::None; ///< Quarantine/salvage reason.
  std::string Detail;
  uint32_t CoveragePermille = 0;
  uint64_t Generation = 0;
  double DriftScore = 0.0; ///< Mean |log2| count ratio vs member median.
  double Weight = 0.0;     ///< coverage x freshness decay; 0 if dropped.
  size_t Rows = 0;         ///< Payload rows the member contributed.
};

/// The aggregator's full account of one merge: every member's fate plus
/// the outcome rung. Recorded on the image's ProfileDiagnostics and
/// surfaced in the StartupReport "merge" section.
struct MergeManifest {
  MergeOutcome Outcome = MergeOutcome::NotAttempted;
  std::vector<MergeMemberReport> Members;

  bool attempted() const { return Outcome != MergeOutcome::NotAttempted; }
  size_t countWithStatus(MergeMemberStatus S) const {
    size_t N = 0;
    for (const MergeMemberReport &M : Members)
      if (M.Status == S)
        ++N;
    return N;
  }
};

/// Summary of profile ingestion recorded on a built image: which profiles
/// were offered, which were actually applied, and why any were rejected.
struct ProfileDiagnostics {
  bool CodeProfileProvided = false;
  bool CodeProfileApplied = false;
  bool HeapProfileProvided = false;
  bool HeapProfileApplied = false;
  /// Hot/cold splitting evidence (--split hotcold only; both stay false
  /// for unsplit builds). "Applied" means at least the profile was usable
  /// — individual CUs may still degrade to unsplit, listed in Issues.
  bool BlockProfileProvided = false;
  bool BlockProfileApplied = false;
  /// Ext-TSP block-reordering evidence (--blocks exttsp only; both stay
  /// false otherwise). "Applied" means the edge profile was usable and at
  /// least one hot fragment was reordered.
  bool EdgeProfileProvided = false;
  bool EdgeProfileApplied = false;
  std::vector<ProfileIssue> Issues;
  /// Fleet aggregation account (BuildConfig::CodeMembers builds only;
  /// Outcome stays NotAttempted otherwise).
  MergeManifest Merge;

  /// True when at least one offered profile was rejected and the build
  /// fell back to the default layout for that dimension.
  bool degraded() const {
    return (CodeProfileProvided && !CodeProfileApplied) ||
           (HeapProfileProvided && !HeapProfileApplied);
  }
};

} // namespace nimg

#endif // NIMG_PROFILING_PROFILEDIAGNOSTICS_H
