//===- ProfileDiagnostics.h - Profile ingestion diagnostics -----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed diagnostics for the profile interchange format. Ordering-profile
/// CSVs carry a header row (format version, trace mode, heap strategy,
/// program fingerprint, payload CRC-32); ingestion validates it and every
/// payload cell, and the optimizing build downgrades to the default layout
/// — recording a ProfileDiagnostics summary on the image — instead of
/// consuming a corrupt or stale profile. This is the degradation policy
/// the paper's pipeline needs to survive SIGKILL'd profiling runs and
/// build-to-build staleness (Secs. 6.1, 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_PROFILEDIAGNOSTICS_H
#define NIMG_PROFILING_PROFILEDIAGNOSTICS_H

#include "src/ordering/IdStrategies.h"
#include "src/profiling/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nimg {

/// Current version of the profile CSV header. Version 0 denotes a legacy
/// headerless file (accepted, but without checksum/fingerprint checks).
inline constexpr uint32_t ProfileFormatVersion = 1;

enum class ProfileError : uint8_t {
  None,
  BadHeader,           ///< Header row present but unparsable.
  UnsupportedVersion,  ///< Header version newer than this build understands.
  ChecksumMismatch,    ///< Payload CRC-32 does not match the header.
  FingerprintMismatch, ///< Profile came from a different program.
  ModeMismatch,        ///< Trace mode does not fit the requested strategy.
  StrategyMismatch,    ///< Heap profile computed for a different strategy.
  MalformedCell,       ///< A payload cell failed to parse (row skipped).
  LegacyFormat,        ///< Informational: headerless pre-v1 file.
  WorkerFault,         ///< A parallel build task threw; its unit degraded.
  EmptyTransitionGraph, ///< Cluster analysis saw no CU transitions; the
                        ///< profile degraded to plain cu ordering.
  InsufficientBlockProfile, ///< Block counts missing or salvage coverage
                            ///< below threshold; CUs stay unsplit.
};

inline const char *profileErrorName(ProfileError E) {
  switch (E) {
  case ProfileError::None:
    return "none";
  case ProfileError::BadHeader:
    return "bad header";
  case ProfileError::UnsupportedVersion:
    return "unsupported version";
  case ProfileError::ChecksumMismatch:
    return "checksum mismatch";
  case ProfileError::FingerprintMismatch:
    return "fingerprint mismatch";
  case ProfileError::ModeMismatch:
    return "trace-mode mismatch";
  case ProfileError::StrategyMismatch:
    return "heap-strategy mismatch";
  case ProfileError::MalformedCell:
    return "malformed cell";
  case ProfileError::LegacyFormat:
    return "legacy headerless format";
  case ProfileError::WorkerFault:
    return "worker task fault";
  case ProfileError::EmptyTransitionGraph:
    return "empty transition graph";
  case ProfileError::InsufficientBlockProfile:
    return "insufficient block profile";
  }
  return "unknown";
}

/// Stable snake_case identifier for \p E, used in metric names and the
/// startup report's JSON (profileErrorName() is the human-facing form).
inline const char *profileErrorSlug(ProfileError E) {
  switch (E) {
  case ProfileError::None:
    return "none";
  case ProfileError::BadHeader:
    return "bad_header";
  case ProfileError::UnsupportedVersion:
    return "unsupported_version";
  case ProfileError::ChecksumMismatch:
    return "checksum_mismatch";
  case ProfileError::FingerprintMismatch:
    return "fingerprint_mismatch";
  case ProfileError::ModeMismatch:
    return "mode_mismatch";
  case ProfileError::StrategyMismatch:
    return "strategy_mismatch";
  case ProfileError::MalformedCell:
    return "malformed_cell";
  case ProfileError::LegacyFormat:
    return "legacy_format";
  case ProfileError::WorkerFault:
    return "worker_fault";
  case ProfileError::EmptyTransitionGraph:
    return "empty_transition_graph";
  case ProfileError::InsufficientBlockProfile:
    return "insufficient_block_profile";
  }
  return "unknown";
}

/// One ingestion finding: what went wrong and where.
struct ProfileIssue {
  ProfileError Kind = ProfileError::None;
  size_t Row = 0; ///< 1-based CSV row; 0 = whole file.
  std::string Detail;
};

/// The interchange header of a profile CSV (first row). Fingerprint 0
/// means "unknown" and disables the staleness check.
struct ProfileHeader {
  uint32_t Version = ProfileFormatVersion;
  TraceMode Mode = TraceMode::CuOrder;
  bool HasStrategy = false; ///< Heap profiles also carry their strategy.
  HeapStrategy Strategy = HeapStrategy::IncrementalId;
  uint64_t Fingerprint = 0;
};

/// Everything fromCsv() learned while reading one profile file.
struct ProfileReadReport {
  bool HeaderPresent = false;
  ProfileHeader Header;
  /// First unrecoverable problem; None means the profile is usable (its
  /// payload may still have skipped rows, listed in Issues).
  ProfileError Fatal = ProfileError::None;
  std::vector<ProfileIssue> Issues;
  size_t RowsKept = 0;
  size_t RowsSkipped = 0;

  bool usable() const { return Fatal == ProfileError::None; }
};

/// Summary of profile ingestion recorded on a built image: which profiles
/// were offered, which were actually applied, and why any were rejected.
struct ProfileDiagnostics {
  bool CodeProfileProvided = false;
  bool CodeProfileApplied = false;
  bool HeapProfileProvided = false;
  bool HeapProfileApplied = false;
  /// Hot/cold splitting evidence (--split hotcold only; both stay false
  /// for unsplit builds). "Applied" means at least the profile was usable
  /// — individual CUs may still degrade to unsplit, listed in Issues.
  bool BlockProfileProvided = false;
  bool BlockProfileApplied = false;
  std::vector<ProfileIssue> Issues;

  /// True when at least one offered profile was rejected and the build
  /// fell back to the default layout for that dimension.
  bool degraded() const {
    return (CodeProfileProvided && !CodeProfileApplied) ||
           (HeapProfileProvided && !HeapProfileApplied);
  }
};

} // namespace nimg

#endif // NIMG_PROFILING_PROFILEDIAGNOSTICS_H
