//===- TraceSalvage.h - Validate and salvage trace captures -----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace files reach post-processing through hostile conditions: a
/// SIGKILL'd run persists an arbitrary prefix (Sec. 6.1), disks flip bits,
/// per-thread files go missing. This pass validates every trace word
/// against the program and its path graphs — record kind, reserved bits,
/// method range, path-id range, and the statically known operand count of
/// each path — and recovers the *longest valid prefix* of every thread.
/// Truncating at the first invalid word matters: once a word is corrupt,
/// record alignment is lost and operand words would be misread as records,
/// so skipping (the old behavior) manufactures garbage events.
///
/// One deliberate tolerance: a heap-mode record cut mid-operands at the
/// very end of a thread (the SIGKILL signature) keeps the record and its
/// surviving operands — they are real observations.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_TRACESALVAGE_H
#define NIMG_PROFILING_TRACESALVAGE_H

#include "src/profiling/PathGraph.h"
#include "src/profiling/Trace.h"

#include <cstddef>
#include <vector>

namespace nimg {

struct SalvageOptions {
  /// Largest admissible operand word (snapshot entry count of the
  /// profiling build; operand words encode entry + 1, or 0). The default
  /// accepts any value — downstream analyses bounds-check per id table.
  uint64_t MaxOperand = ~uint64_t(0);
};

/// What salvage found and dropped. WordsKept + WordsDropped == WordsScanned.
struct SalvageStats {
  size_t WordsScanned = 0;
  size_t WordsKept = 0;
  size_t WordsDropped = 0;
  size_t ThreadsTruncated = 0; ///< Kept a nonempty proper prefix.
  size_t ThreadsDropped = 0;   ///< Nonempty thread with no valid prefix.
  size_t IncompleteTailRecords = 0; ///< Records cut mid-operands at a
                                    ///< thread's end (kept).
  /// Set by the analyze* entry points when the capture's trace mode does
  /// not match the requested analysis (the whole capture is ignored).
  bool ModeMismatch = false;

  bool clean() const { return WordsDropped == 0 && !ModeMismatch; }
};

/// Validates one thread's trace words. Returns the valid prefix length in
/// words and accumulates this thread's contribution into \p Stats (which
/// is not metered — callers batching several threads meter the merged
/// delta once via meterSalvageScan()). Safe to call concurrently on
/// distinct threads' words sharing \p Paths.
size_t scanThreadWords(const Program &P, TraceMode Mode,
                       const std::vector<uint64_t> &Words,
                       PathGraphCache &Paths, SalvageStats &Stats,
                       const SalvageOptions &Opts = {});

/// Pushes one scan's accumulated stats \p Delta into the nimg.salvage.*
/// counters (scanCapture does this internally).
void meterSalvageScan(const SalvageStats &Delta);

/// Validates \p C without copying it. Returns the valid prefix length (in
/// words) of each thread and accumulates \p Stats. Threads are scanned in
/// parallel on the shared pool and their stats merged in thread order.
std::vector<size_t> scanCapture(const Program &P, const TraceCapture &C,
                                PathGraphCache &Paths, SalvageStats &Stats,
                                const SalvageOptions &Opts = {});

/// Returns a cleaned copy of \p C with every thread truncated to its valid
/// prefix. Re-scanning the result is always clean. Accepts both trace
/// encodings; the result is always in Raw (word) form.
TraceCapture salvageCapture(const Program &P, const TraceCapture &C,
                            PathGraphCache &Paths, SalvageStats &Stats,
                            const SalvageOptions &Opts = {});

/// True when any thread of \p C is in the varint-delta dump encoding.
/// Word-level consumers (scanCapture, the replay analyses) materialize
/// such captures with decodeCapture() first.
bool captureEncoded(const TraceCapture &C);

/// Raw-form copy of \p C: every varint-encoded thread is decoded back to
/// words. A byte stream cut mid-varint (SIGKILL during a dump) keeps the
/// words decoded before the cut; \p TruncatedTails (optional) counts such
/// threads.
TraceCapture decodeCapture(const TraceCapture &C,
                           size_t *TruncatedTails = nullptr);

} // namespace nimg

#endif // NIMG_PROFILING_TRACESALVAGE_H
