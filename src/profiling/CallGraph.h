//===- CallGraph.h - Dynamic CU transition graph from traces ----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts a weighted dynamic call/transition graph between compilation
/// units from CuOrder-mode traces. An edge A -> B with weight W means the
/// first run transitioned from a CU rooted at A directly to a CU rooted at
/// B (temporal adjacency within one thread) W times. The graph feeds the
/// C3-style cluster orderer (src/ordering/ClusterLayout.h), which packs
/// hot caller/callee pairs onto shared pages — the layout family of BOLT
/// and Meta's function-layout work, beyond the paper's purely
/// first-execution-time cu/method strategies (Sec. 4).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_PROFILING_CALLGRAPH_H
#define NIMG_PROFILING_CALLGRAPH_H

#include "src/profiling/Analyses.h"
#include "src/profiling/Trace.h"
#include "src/profiling/TraceSalvage.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace nimg {

/// The weighted CU transition graph of one profiling run. Nodes are CU
/// root methods in first-entry order (threads concatenated in creation
/// order, Sec. 7.1 — identical to the cu ordering profile); edges are
/// aggregated per (From, To) pair with self-transitions dropped.
struct CuTransitionGraph {
  struct Edge {
    MethodId From = -1;
    MethodId To = -1;
    uint64_t Weight = 0;
  };
  /// CU roots in first-seen order; doubles as the cu-ordering fallback
  /// when the graph carries no edges.
  std::vector<MethodId> FirstSeen;
  std::vector<Edge> Edges;

  bool empty() const { return Edges.empty(); }
};

/// Visitor accumulating first-seen order and temporal-adjacency edge
/// weights from CU-entry events of a single thread. One instance per
/// traced thread; per-thread results merge deterministically in thread
/// creation order (weights sum, first-seen orders concatenate-dedup), so
/// the graph is byte-identical for any worker count.
class CallGraphAnalysis : public OrderingAnalysis {
public:
  void onCuEnter(MethodId Root) override;

  /// Pre-sizes the node/edge maps for a thread expected to replay
  /// \p TraceWords CU records (capped — long loopy traces revisit the same
  /// few CUs, so sizing for every word would only waste memory).
  void reserveHint(size_t TraceWords) {
    size_t Hint = TraceWords < 4096 ? TraceWords : 4096;
    Seen.reserve(Hint);
    Weights.reserve(Hint);
  }

  std::vector<MethodId> FirstSeen;
  /// (From << 32 | To) -> weight. Key packing is valid because MethodId is
  /// a non-negative int32 for every decoded CU record.
  std::unordered_map<uint64_t, uint64_t> Weights;

  static uint64_t edgeKey(MethodId From, MethodId To) {
    return (uint64_t(uint32_t(From)) << 32) | uint64_t(uint32_t(To));
  }

private:
  MethodId Prev = -1;
  std::unordered_set<MethodId> Seen;
};

/// Builds the CU transition graph from a CuOrder-mode capture, salvaging
/// each thread's longest valid prefix first. A capture in the wrong mode
/// yields an empty graph (and sets Stats->ModeMismatch) instead of
/// asserting — trace files are external input. Runs on the shared pool
/// (one task per traced thread) with a thread-order merge.
CuTransitionGraph analyzeCuTransitions(const Program &P,
                                       const TraceCapture &Capture,
                                       SalvageStats *Stats = nullptr);

} // namespace nimg

#endif // NIMG_PROFILING_CALLGRAPH_H
