//===- TraceSalvage.cpp - Validate and salvage trace captures -----------------===//

#include "src/profiling/TraceSalvage.h"

#include "src/obs/Metrics.h"

using namespace nimg;

namespace {

/// Longest valid prefix (in words) of one thread's trace. Sets
/// \p IncompleteTail when the thread ends inside a record's operand run.
size_t scanThread(const Program &P, TraceMode Mode,
                  const std::vector<uint64_t> &Words, PathGraphCache &Paths,
                  const SalvageOptions &Opts, bool &IncompleteTail) {
  size_t I = 0;
  while (I < Words.size()) {
    uint64_t W = Words[I];
    if (Mode == TraceMode::CuOrder) {
      // CU-entry records use bits [3, 35) for the root method; anything
      // else is corruption.
      if (!tracerec::isCuEnter(W) || (W >> 35) != 0)
        return I;
      MethodId Root = tracerec::cuRoot(W);
      if (Root < 0 || size_t(Root) >= P.numMethods())
        return I;
      ++I;
      continue;
    }
    // Method/heap traces hold path records: bits [56, 64) are reserved,
    // the method must exist, and the path id must decode in its graph.
    if (!tracerec::isPath(W) || (W >> 56) != 0)
      return I;
    MethodId M = tracerec::pathMethod(W);
    if (M < 0 || size_t(M) >= P.numMethods())
      return I;
    const PathGraph &G = Paths.of(M);
    if (tracerec::pathId(W) >= G.numPaths())
      return I;
    ++I;
    if (Mode != TraceMode::HeapOrder)
      continue;
    // The path statically determines how many operand words follow.
    uint32_t Need = G.decode(tracerec::pathId(W)).OperandCount;
    uint32_t Have = 0;
    while (Have < Need && I < Words.size()) {
      uint64_t Op = Words[I];
      if (Op != 0 && Op > Opts.MaxOperand)
        return I; // Corrupt operand: keep the record, cut before it.
      ++I;
      ++Have;
    }
    if (Have < Need)
      IncompleteTail = true; // SIGKILL landed mid-record; keep the prefix.
  }
  return Words.size();
}

} // namespace

std::vector<size_t> nimg::scanCapture(const Program &P, const TraceCapture &C,
                                      PathGraphCache &Paths,
                                      SalvageStats &Stats,
                                      const SalvageOptions &Opts) {
  std::vector<size_t> Prefix(C.Threads.size(), 0);
  // \p Stats accumulates across calls; meter only this scan's delta.
  const SalvageStats Before = Stats;
  for (size_t T = 0; T < C.Threads.size(); ++T) {
    const std::vector<uint64_t> &Words = C.Threads[T].Words;
    bool IncompleteTail = false;
    size_t Valid = scanThread(P, C.Options.Mode, Words, Paths, Opts,
                              IncompleteTail);
    Prefix[T] = Valid;
    Stats.WordsScanned += Words.size();
    Stats.WordsKept += Valid;
    Stats.WordsDropped += Words.size() - Valid;
    if (IncompleteTail)
      ++Stats.IncompleteTailRecords;
    if (Valid < Words.size()) {
      if (Valid == 0)
        ++Stats.ThreadsDropped;
      else
        ++Stats.ThreadsTruncated;
    }
  }
  NIMG_COUNTER_ADD("nimg.salvage.scans", 1);
  NIMG_COUNTER_ADD("nimg.salvage.words_scanned",
                   Stats.WordsScanned - Before.WordsScanned);
  NIMG_COUNTER_ADD("nimg.salvage.words_kept",
                   Stats.WordsKept - Before.WordsKept);
  NIMG_COUNTER_ADD("nimg.salvage.words_dropped",
                   Stats.WordsDropped - Before.WordsDropped);
  NIMG_COUNTER_ADD("nimg.salvage.threads_truncated",
                   Stats.ThreadsTruncated - Before.ThreadsTruncated);
  NIMG_COUNTER_ADD("nimg.salvage.threads_dropped",
                   Stats.ThreadsDropped - Before.ThreadsDropped);
  NIMG_COUNTER_ADD("nimg.salvage.incomplete_tail_records",
                   Stats.IncompleteTailRecords - Before.IncompleteTailRecords);
  return Prefix;
}

TraceCapture nimg::salvageCapture(const Program &P, const TraceCapture &C,
                                  PathGraphCache &Paths, SalvageStats &Stats,
                                  const SalvageOptions &Opts) {
  std::vector<size_t> Prefix = scanCapture(P, C, Paths, Stats, Opts);
  TraceCapture Out;
  Out.Options = C.Options;
  Out.Threads.resize(C.Threads.size());
  for (size_t T = 0; T < C.Threads.size(); ++T) {
    const std::vector<uint64_t> &Words = C.Threads[T].Words;
    Out.Threads[T].Words.assign(Words.begin(),
                                Words.begin() + ptrdiff_t(Prefix[T]));
  }
  return Out;
}
