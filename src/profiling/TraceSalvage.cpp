//===- TraceSalvage.cpp - Validate and salvage trace captures -----------------===//

#include "src/profiling/TraceSalvage.h"

#include "src/obs/Metrics.h"
#include "src/support/ThreadPool.h"

using namespace nimg;

namespace {

/// Longest valid prefix (in words) of one thread's trace. Sets
/// \p IncompleteTail when the thread ends inside a record's operand run.
size_t scanThread(const Program &P, TraceMode Mode,
                  const std::vector<uint64_t> &Words, LocalPathCache &Paths,
                  const SalvageOptions &Opts, bool &IncompleteTail) {
  size_t I = 0;
  while (I < Words.size()) {
    uint64_t W = Words[I];
    if (Mode == TraceMode::CuOrder) {
      // CU-entry records use bits [3, 35) for the root method; anything
      // else is corruption.
      if (!tracerec::isCuEnter(W) || (W >> 35) != 0)
        return I;
      MethodId Root = tracerec::cuRoot(W);
      if (Root < 0 || size_t(Root) >= P.numMethods())
        return I;
      ++I;
      continue;
    }
    if (Mode == TraceMode::Sampled) {
      // Sample records: bits [59, 64) are reserved, and both the sampled
      // method and its CU root must exist in the program.
      if (!tracerec::isSample(W) || (W >> 59) != 0)
        return I;
      MethodId M = tracerec::sampleMethod(W);
      MethodId Root = tracerec::sampleRoot(W);
      if (M < 0 || size_t(M) >= P.numMethods() || Root < 0 ||
          size_t(Root) >= P.numMethods())
        return I;
      ++I;
      continue;
    }
    // Method/heap traces hold path records: bits [56, 64) are reserved,
    // the method must exist, and the path id must decode in its graph.
    if (!tracerec::isPath(W) || (W >> 56) != 0)
      return I;
    MethodId M = tracerec::pathMethod(W);
    if (M < 0 || size_t(M) >= P.numMethods())
      return I;
    const PathGraph &G = Paths.of(M);
    if (tracerec::pathId(W) >= G.numPaths())
      return I;
    ++I;
    if (Mode != TraceMode::HeapOrder)
      continue;
    // The path statically determines how many operand words follow.
    uint32_t Need = G.decode(tracerec::pathId(W)).OperandCount;
    uint32_t Have = 0;
    while (Have < Need && I < Words.size()) {
      uint64_t Op = Words[I];
      if (Op != 0 && Op > Opts.MaxOperand)
        return I; // Corrupt operand: keep the record, cut before it.
      ++I;
      ++Have;
    }
    if (Have < Need)
      IncompleteTail = true; // SIGKILL landed mid-record; keep the prefix.
  }
  return Words.size();
}

} // namespace

size_t nimg::scanThreadWords(const Program &P, TraceMode Mode,
                             const std::vector<uint64_t> &Words,
                             PathGraphCache &Paths, SalvageStats &Stats,
                             const SalvageOptions &Opts) {
  LocalPathCache Local(Paths);
  bool IncompleteTail = false;
  size_t Valid = scanThread(P, Mode, Words, Local, Opts, IncompleteTail);
  Stats.WordsScanned += Words.size();
  Stats.WordsKept += Valid;
  Stats.WordsDropped += Words.size() - Valid;
  if (IncompleteTail)
    ++Stats.IncompleteTailRecords;
  if (Valid < Words.size()) {
    if (Valid == 0)
      ++Stats.ThreadsDropped;
    else
      ++Stats.ThreadsTruncated;
  }
  return Valid;
}

void nimg::meterSalvageScan(const SalvageStats &Delta) {
  NIMG_COUNTER_ADD("nimg.salvage.scans", 1);
  NIMG_COUNTER_ADD("nimg.salvage.words_scanned", Delta.WordsScanned);
  NIMG_COUNTER_ADD("nimg.salvage.words_kept", Delta.WordsKept);
  NIMG_COUNTER_ADD("nimg.salvage.words_dropped", Delta.WordsDropped);
  NIMG_COUNTER_ADD("nimg.salvage.threads_truncated", Delta.ThreadsTruncated);
  NIMG_COUNTER_ADD("nimg.salvage.threads_dropped", Delta.ThreadsDropped);
  NIMG_COUNTER_ADD("nimg.salvage.incomplete_tail_records",
                   Delta.IncompleteTailRecords);
#ifdef NIMG_OBS_DISABLED
  (void)Delta;
#endif
}

std::vector<size_t> nimg::scanCapture(const Program &P, const TraceCapture &C,
                                      PathGraphCache &Paths,
                                      SalvageStats &Stats,
                                      const SalvageOptions &Opts) {
  // Each thread's scan is independent; scan them in parallel and merge
  // stats in thread order (the merged totals are order-insensitive sums,
  // so this is deterministic by construction).
  struct ThreadScan {
    size_t Valid = 0;
    SalvageStats Stats;
  };
  std::vector<ThreadScan> Scans =
      parallelMap(C.Threads.size(), 1, "salvage_scan", [&](size_t T) {
        ThreadScan S;
        S.Valid = scanThreadWords(P, C.Options.Mode, C.Threads[T].Words,
                                  Paths, S.Stats, Opts);
        return S;
      });

  std::vector<size_t> Prefix(C.Threads.size(), 0);
  SalvageStats Delta;
  for (size_t T = 0; T < Scans.size(); ++T) {
    Prefix[T] = Scans[T].Valid;
    Delta.WordsScanned += Scans[T].Stats.WordsScanned;
    Delta.WordsKept += Scans[T].Stats.WordsKept;
    Delta.WordsDropped += Scans[T].Stats.WordsDropped;
    Delta.ThreadsTruncated += Scans[T].Stats.ThreadsTruncated;
    Delta.ThreadsDropped += Scans[T].Stats.ThreadsDropped;
    Delta.IncompleteTailRecords += Scans[T].Stats.IncompleteTailRecords;
  }
  Stats.WordsScanned += Delta.WordsScanned;
  Stats.WordsKept += Delta.WordsKept;
  Stats.WordsDropped += Delta.WordsDropped;
  Stats.ThreadsTruncated += Delta.ThreadsTruncated;
  Stats.ThreadsDropped += Delta.ThreadsDropped;
  Stats.IncompleteTailRecords += Delta.IncompleteTailRecords;
  meterSalvageScan(Delta);
  return Prefix;
}

bool nimg::captureEncoded(const TraceCapture &C) {
  for (const ThreadTrace &T : C.Threads)
    if (T.Encoded)
      return true;
  return false;
}

TraceCapture nimg::decodeCapture(const TraceCapture &C,
                                 size_t *TruncatedTails) {
  TraceCapture Out;
  Out.Options = C.Options;
  Out.Options.Encoding = TraceEncoding::Raw;
  Out.Threads.resize(C.Threads.size());
  size_t Cut = 0;
  for (size_t T = 0; T < C.Threads.size(); ++T)
    if (!C.Threads[T].decodeWords(Out.Threads[T].Words))
      ++Cut;
  if (TruncatedTails)
    *TruncatedTails += Cut;
  return Out;
}

TraceCapture nimg::salvageCapture(const Program &P, const TraceCapture &C,
                                  PathGraphCache &Paths, SalvageStats &Stats,
                                  const SalvageOptions &Opts) {
  if (captureEncoded(C)) {
    // Word-cut varint tails are records cut mid-word: the same SIGKILL
    // signature scanThread tracks for operand runs.
    size_t Cut = 0;
    TraceCapture Decoded = decodeCapture(C, &Cut);
    TraceCapture Out = salvageCapture(P, Decoded, Paths, Stats, Opts);
    Stats.IncompleteTailRecords += Cut;
    return Out;
  }
  std::vector<size_t> Prefix = scanCapture(P, C, Paths, Stats, Opts);
  TraceCapture Out;
  Out.Options = C.Options;
  Out.Threads.resize(C.Threads.size());
  for (size_t T = 0; T < C.Threads.size(); ++T) {
    const std::vector<uint64_t> &Words = C.Threads[T].Words;
    Out.Threads[T].Words.assign(Words.begin(),
                                Words.begin() + ptrdiff_t(Prefix[T]));
  }
  return Out;
}
