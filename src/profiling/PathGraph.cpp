//===- PathGraph.cpp - Ball-Larus path numbering with path cutting ---------===//

#include "src/profiling/PathGraph.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace nimg;

namespace {

/// Identifies frame-pushing calls, which are path-cut points (the callee's
/// own records land in the buffer between the caller's two path segments).
bool isCutCall(const Instr &In) {
  return In.Op == Opcode::CallStatic || In.Op == Opcode::CallVirtual;
}

} // namespace

namespace nimg {

class PathGraphBuilder {
public:
  PathGraphBuilder(const Program &P, MethodId M) : P(P), Meth(P.method(M)) {}

  std::unique_ptr<PathGraph> run() {
    auto G = std::unique_ptr<PathGraph>(new PathGraph());
    if (Meth.IsAbstract || Meth.Blocks.empty()) {
      G->TotalPaths = 1;
      return G;
    }
    buildNodes(*G);
    findBackEdges();
    if (!number(*G, /*AllCut=*/false)) {
      // Path-cutting fallback: cut every edge so each segment is its own
      // unit path.
      G->Nodes.clear();
      G->EntryEdges.clear();
      G->BranchActions.clear();
      G->CallActions.clear();
      G->RetEmit.clear();
      buildNodes(*G);
      G->AllCut = true;
      bool Ok = number(*G, /*AllCut=*/true);
      assert(Ok && "fully-cut numbering cannot overflow");
      (void)Ok;
    }
    return G;
  }

private:
  struct Segment {
    BlockId Block;
    uint32_t SegIdx;
    size_t FirstInstr;
    size_t LastInstr; ///< Inclusive; the ending call or the terminator.
    bool EndsInCall;
  };

  void buildNodes(PathGraph &G) {
    NodeOf.assign(Meth.Blocks.size(), {});
    Segments.clear();
    for (size_t B = 0; B < Meth.Blocks.size(); ++B) {
      const BasicBlock &BB = Meth.Blocks[B];
      size_t Start = 0;
      uint32_t SegIdx = 0;
      for (size_t I = 0; I < BB.Instrs.size(); ++I) {
        bool Last = I + 1 == BB.Instrs.size();
        if (isCutCall(BB.Instrs[I]) || Last) {
          Segment S;
          S.Block = BlockId(B);
          S.SegIdx = SegIdx++;
          S.FirstInstr = Start;
          S.LastInstr = I;
          S.EndsInCall = isCutCall(BB.Instrs[I]);
          NodeOf[B].push_back(int32_t(Segments.size()));
          Segments.push_back(S);
          Start = I + 1;
        }
      }
    }
    G.Nodes.resize(Segments.size());
    for (size_t N = 0; N < Segments.size(); ++N) {
      const Segment &S = Segments[N];
      PathGraph::Node &Node = G.Nodes[N];
      Node.Block = S.Block;
      Node.SegIdx = S.SegIdx;
      const BasicBlock &BB = Meth.Blocks[size_t(S.Block)];
      for (size_t I = S.FirstInstr; I <= S.LastInstr; ++I) {
        uint16_t Slots = traceSlotCount(BB.Instrs[I].Op, BB.Instrs[I].Aux);
        if (Slots > 0)
          Node.Sites.emplace_back(makeSiteId(S.Block, I), Slots);
      }
    }
  }

  /// DFS forest over the block graph marking back edges.
  void findBackEdges() {
    size_t NumBlocks = Meth.Blocks.size();
    BackEdge.clear();
    std::vector<uint8_t> Color(NumBlocks, 0); // 0 white, 1 on stack, 2 done
    for (size_t Root = 0; Root < NumBlocks; ++Root) {
      if (Color[Root] != 0)
        continue;
      // Iterative DFS with explicit (block, next-successor) stack.
      std::vector<std::pair<BlockId, size_t>> Stack;
      Stack.emplace_back(BlockId(Root), 0);
      Color[Root] = 1;
      while (!Stack.empty()) {
        auto &[B, NextSucc] = Stack.back();
        std::vector<BlockId> Succs = successorsOf(B);
        if (NextSucc >= Succs.size()) {
          Color[size_t(B)] = 2;
          Stack.pop_back();
          continue;
        }
        BlockId T = Succs[NextSucc++];
        if (Color[size_t(T)] == 1) {
          BackEdge.insert((uint64_t(uint32_t(B)) << 32) | uint32_t(T));
        } else if (Color[size_t(T)] == 0) {
          Color[size_t(T)] = 1;
          Stack.emplace_back(T, 0);
        }
      }
    }
  }

  std::vector<BlockId> successorsOf(BlockId B) const {
    const BasicBlock &BB = Meth.Blocks[size_t(B)];
    assert(!BB.Instrs.empty() && "empty block");
    const Instr &Term = BB.Instrs.back();
    switch (Term.Op) {
    case Opcode::Br:
      return {Term.Target, BlockId(Term.Aux2)};
    case Opcode::Jmp:
      return {Term.Target};
    default:
      return {};
    }
  }

  bool isBackEdge(BlockId From, BlockId To) const {
    return BackEdge.count((uint64_t(uint32_t(From)) << 32) | uint32_t(To)) !=
           0;
  }

  /// Assigns Ball-Larus values. Returns false on path-count overflow.
  bool number(PathGraph &G, bool AllCut) {
    size_t N = G.Nodes.size();

    // Conceptual out-edges per node: (targetNode or -1 for "ends here",
    // cut, branchTo or siteId for action bookkeeping).
    struct OutEdge {
      int32_t Target;   ///< Continuation node (for cut) or real head.
      bool Cut;
      bool IsRet;
      uint32_t SiteId;  ///< For call cuts.
      BlockId ToBlock;  ///< For branch edges.
      uint64_t Val = 0;
    };
    std::vector<std::vector<OutEdge>> Out(N);

    for (size_t I = 0; I < N; ++I) {
      const Segment &S = Segments[I];
      const BasicBlock &BB = Meth.Blocks[size_t(S.Block)];
      const Instr &End = BB.Instrs[S.LastInstr];
      if (S.EndsInCall) {
        OutEdge E;
        E.Target = NodeOf[size_t(S.Block)][S.SegIdx + 1];
        E.Cut = true;
        E.IsRet = false;
        E.SiteId = makeSiteId(S.Block, S.LastInstr);
        E.ToBlock = -1;
        Out[I].push_back(E);
        continue;
      }
      switch (End.Op) {
      case Opcode::Ret: {
        OutEdge E;
        E.Target = -1;
        E.Cut = false;
        E.IsRet = true;
        E.SiteId = 0;
        E.ToBlock = -1;
        Out[I].push_back(E);
        break;
      }
      case Opcode::Br:
      case Opcode::Jmp: {
        std::vector<BlockId> Succs = successorsOf(S.Block);
        for (BlockId T : Succs) {
          OutEdge E;
          E.Target = NodeOf[size_t(T)][0];
          E.Cut = AllCut || isBackEdge(S.Block, T);
          E.IsRet = false;
          E.SiteId = 0;
          E.ToBlock = T;
          Out[I].push_back(E);
        }
        break;
      }
      default:
        assert(false && "segment must end in a call or terminator");
      }
      if (AllCut)
        for (OutEdge &E : Out[I])
          if (!E.IsRet)
            E.Cut = true;
    }

    // Topological order over real (non-cut) node-to-node edges.
    std::vector<int32_t> Topo = topoOrder(Out);
    if (Topo.empty() && N != 0)
      return false; // Residual cycle (should not happen; bail to AllCut).

    // NumPaths and edge values, in reverse topological order.
    for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
      int32_t V = *It;
      uint64_t Sum = 0;
      for (OutEdge &E : Out[size_t(V)]) {
        E.Val = Sum;
        uint64_t Contribution;
        if (E.Cut || E.IsRet || E.Target == -1)
          Contribution = 1; // Path ends at Exit.
        else
          Contribution = G.Nodes[size_t(E.Target)].NumPaths;
        Sum += Contribution;
        if (Sum > PathGraph::PathLimit)
          return false;
      }
      G.Nodes[size_t(V)].NumPaths = Sum == 0 ? 1 : Sum;
    }

    // Entry edges: the real entry edge first, then one dummy edge per
    // distinct cut-continuation target.
    std::vector<int32_t> CutTargets;
    for (size_t V = 0; V < N; ++V)
      for (const OutEdge &E : Out[V])
        if (E.Cut && std::find(CutTargets.begin(), CutTargets.end(),
                               E.Target) == CutTargets.end())
          CutTargets.push_back(E.Target);

    uint64_t EntrySum = 0;
    std::unordered_map<int32_t, uint64_t> ResetOf;
    int32_t EntryNode = NodeOf[0][0];
    G.EntryEdges.push_back({EntryNode, EntrySum, /*Real=*/true});
    G.EntryVal = EntrySum;
    EntrySum += G.Nodes[size_t(EntryNode)].NumPaths;
    if (EntrySum > PathGraph::PathLimit)
      return false;
    for (int32_t T : CutTargets) {
      G.EntryEdges.push_back({T, EntrySum, /*Real=*/false});
      ResetOf[T] = EntrySum;
      EntrySum += G.Nodes[size_t(T)].NumPaths;
      if (EntrySum > PathGraph::PathLimit)
        return false;
    }
    G.TotalPaths = EntrySum;

    // Publish node edges for decoding and the runtime actions.
    for (size_t V = 0; V < N; ++V) {
      for (const OutEdge &E : Out[V]) {
        int32_t DecodeHead = (E.Cut || E.IsRet) ? -1 : E.Target;
        G.Nodes[V].Edges.emplace_back(DecodeHead, E.Val);

        if (E.IsRet) {
          G.RetEmit[Segments[V].Block] = E.Val;
          continue;
        }
        PathEdgeAction A;
        if (E.Cut) {
          A.Cut = true;
          A.EmitAdd = E.Val;
          A.Reset = ResetOf.at(E.Target);
        } else {
          A.Cut = false;
          A.Add = E.Val;
        }
        if (Segments[V].EndsInCall)
          G.CallActions.emplace(E.SiteId, A);
        else
          G.BranchActions.emplace(
              (uint64_t(uint32_t(Segments[V].Block)) << 32) |
                  uint32_t(E.ToBlock),
              A);
      }
    }
    return true;
  }

  template <typename OutEdgeVec>
  std::vector<int32_t> topoOrder(const std::vector<OutEdgeVec> &Out) {
    size_t N = Out.size();
    std::vector<uint32_t> InDegree(N, 0);
    for (size_t V = 0; V < N; ++V)
      for (const auto &E : Out[V])
        if (!E.Cut && !E.IsRet && E.Target != -1)
          ++InDegree[size_t(E.Target)];
    std::vector<int32_t> Ready;
    for (size_t V = 0; V < N; ++V)
      if (InDegree[V] == 0)
        Ready.push_back(int32_t(V));
    std::vector<int32_t> Order;
    while (!Ready.empty()) {
      int32_t V = Ready.back();
      Ready.pop_back();
      Order.push_back(V);
      for (const auto &E : Out[size_t(V)])
        if (!E.Cut && !E.IsRet && E.Target != -1)
          if (--InDegree[size_t(E.Target)] == 0)
            Ready.push_back(E.Target);
    }
    if (Order.size() != N)
      return {};
    return Order;
  }

  const Program &P;
  const Method &Meth;
  std::vector<Segment> Segments;
  std::vector<std::vector<int32_t>> NodeOf; ///< Block -> segment nodes.
  std::unordered_set<uint64_t> BackEdge;
};

} // namespace nimg

std::unique_ptr<PathGraph> PathGraph::build(const Program &P, MethodId M) {
  return PathGraphBuilder(P, M).run();
}

const PathEdgeAction &PathGraph::branchAction(BlockId From, BlockId To) const {
  auto It =
      BranchActions.find((uint64_t(uint32_t(From)) << 32) | uint32_t(To));
  assert(It != BranchActions.end() && "unknown branch edge");
  return It->second;
}

const PathEdgeAction &PathGraph::callAction(uint32_t SiteId) const {
  auto It = CallActions.find(SiteId);
  assert(It != CallActions.end() && "unknown call site");
  return It->second;
}

uint64_t PathGraph::retEmitAdd(BlockId Block) const {
  auto It = RetEmit.find(Block);
  assert(It != RetEmit.end() && "unknown return block");
  return It->second;
}

PathEvents PathGraph::decode(uint64_t PathId) const {
  PathEvents Events;
  decodeInto(PathId, Events);
  return Events;
}

void PathGraph::decodeInto(uint64_t PathId, PathEvents &Events) const {
  Events.MethodEntry = false;
  Events.Sites.clear();
  Events.OperandCount = 0;
  Events.Blocks.clear();
  if (PathId >= TotalPaths || EntryEdges.empty())
    return;

  // Pick the entry edge with the largest value <= PathId.
  uint64_t Remaining = PathId;
  const EntryEdge *Chosen = &EntryEdges[0];
  for (const EntryEdge &E : EntryEdges) {
    if (E.Val > Remaining)
      break;
    Chosen = &E;
  }
  Events.MethodEntry = Chosen->Real;
  Remaining -= Chosen->Val;
  int32_t Cur = Chosen->Head;

  size_t Guard = Nodes.size() + 2;
  while (Cur != -1 && Guard-- > 0) {
    const Node &V = Nodes[size_t(Cur)];
    if (Events.Blocks.empty() || Events.Blocks.back() != V.Block)
      Events.Blocks.push_back(V.Block);
    for (const auto &[Site, Count] : V.Sites) {
      Events.Sites.emplace_back(Site, Count);
      Events.OperandCount += Count;
    }
    if (V.Edges.empty())
      break;
    const auto *Edge = &V.Edges[0];
    for (const auto &E : V.Edges) {
      if (E.second > Remaining)
        break;
      Edge = &E;
    }
    Remaining -= Edge->second;
    Cur = Edge->first;
  }
}
