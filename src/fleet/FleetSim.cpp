//===- FleetSim.cpp - Fleet serving simulator -------------------------------===//

#include "src/fleet/FleetSim.h"

#include "src/fleet/FleetCache.h"
#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"

#include <algorithm>
#include <queue>
#include <tuple>

using namespace nimg;

namespace {

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Rank = size_t(Q * double(Sorted.size()) + 0.999999);
  if (Rank == 0)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[Rank - 1];
}

} // namespace

FleetResult nimg::simulateFleet(const RunStats &Reference, uint64_t TextSize,
                                uint64_t HeapSize, const PagingConfig &Paging,
                                const CostModel &Cost,
                                const FleetConfig &Cfg) {
  FleetResult R;
  R.ReferenceFaults = Reference.totalFaults();
  R.ReferenceTimeNs = Reference.TimeNs;
  if (Cfg.Instances == 0)
    return R;

  // The shared demand-fault trace: WasFault first-touches of the reference
  // run, in program order. Touches the reference got from its own
  // readahead are dropped here — every instance's private readahead covers
  // them identically, at no additional device or mapping cost.
  std::vector<std::pair<ImageSection, uint64_t>> DemandPages;
  std::vector<uint64_t> DemandClocks;
  for (const PageTouch &T : Reference.Touches) {
    if (!T.WasFault)
      continue;
    DemandPages.emplace_back(T.Sec, T.Page);
    DemandClocks.push_back(T.Clock);
  }

  TrafficConfig Traffic;
  Traffic.Kind = Cfg.Arrivals;
  Traffic.Instances = Cfg.Instances;
  Traffic.WindowNs = Cfg.ArrivalWindowNs;
  Traffic.Seed = Cfg.Seed;
  Traffic.StormBursts = Cfg.StormBursts;
  std::vector<double> Arrivals = generateArrivals(Traffic);

  FleetPageCache Cache(TextSize, HeapSize, Paging, Cfg.CachePages);
  // Everything after the last demand fault: remaining instructions plus
  // any probe overhead, identical for every instance.
  double TailNs = Cost.BaseNs + double(Reference.Instructions) * Cost.InstrNs +
                  double(Reference.ProbeUnits) * Cost.ProbeUnitNs;

  R.Instances.resize(Cfg.Instances);
  std::vector<size_t> NextEvent(Cfg.Instances, 0);
  std::vector<double> FaultAccumNs(Cfg.Instances, 0.0);

  // Min-heap of (absolute model time of the instance's next demand fault,
  // instance id). Ties break by instance id — fully deterministic.
  using Ev = std::pair<double, uint32_t>;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> Queue;
  auto eventTime = [&](uint32_t Inst) {
    return Arrivals[Inst] + Cost.BaseNs +
           double(DemandClocks[NextEvent[Inst]]) * Cost.InstrNs +
           FaultAccumNs[Inst];
  };
  for (uint32_t Inst = 0; Inst < Cfg.Instances; ++Inst) {
    R.Instances[Inst].ArrivalNs = Arrivals[Inst];
    if (!DemandPages.empty())
      Queue.push({eventTime(Inst), Inst});
  }

  while (!Queue.empty()) {
    auto [Now, Inst] = Queue.top();
    (void)Now;
    Queue.pop();
    size_t Idx = NextEvent[Inst]++;
    FleetTouch Outcome =
        Cache.touchPage(DemandPages[Idx].first, DemandPages[Idx].second);
    if (Outcome == FleetTouch::Major) {
      ++R.Instances[Inst].Majors;
      // Charged at the page's native size: a fault in the huge-page text
      // region pays the one-seek-plus-bigger-transfer huge service time,
      // everything else the base-page cost. All service costs are
      // integer-valued ns, so this per-fault accumulation reproduces the
      // reference run's multiplied formula exactly (the N=1 anchor).
      FaultAccumNs[Inst] += Cost.majorFaultNs(
          Cache.sim().pageSizeBytes(DemandPages[Idx].first,
                                    DemandPages[Idx].second));
    } else {
      ++R.Instances[Inst].WarmHits;
      FaultAccumNs[Inst] += Cost.MinorFaultNs;
    }
    if (NextEvent[Inst] < DemandPages.size())
      Queue.push({eventTime(Inst), Inst});
  }

  std::vector<double> ColdStarts;
  ColdStarts.reserve(Cfg.Instances);
  for (uint32_t Inst = 0; Inst < Cfg.Instances; ++Inst) {
    FleetInstanceStats &S = R.Instances[Inst];
    S.ColdStartNs = TailNs + FaultAccumNs[Inst];
    ColdStarts.push_back(S.ColdStartNs);
    R.MeanNs += S.ColdStartNs;
  }
  R.MeanNs /= double(Cfg.Instances);
  std::sort(ColdStarts.begin(), ColdStarts.end());
  R.P50Ns = percentile(ColdStarts, 0.50);
  R.P90Ns = percentile(ColdStarts, 0.90);
  R.P99Ns = percentile(ColdStarts, 0.99);
  R.TotalMajors = Cache.majors();
  R.TotalWarmHits = Cache.warmHits();
  R.UniquePages = Cache.uniquePages();
  R.Evictions = Cache.evictions();
  return R;
}

FleetResult nimg::runFleet(const NativeImage &Img, const RunConfig &RunCfg,
                           const FleetConfig &Cfg, RunStats *ReferenceOut) {
  NIMG_SPAN_NAMED(FleetSpan, "pipeline", "runFleet");
  RunConfig RefCfg = RunCfg;
  RefCfg.RecordTouches = true;
  // The simulation is about cold starts: a warm-cache reference would
  // record its pre-faulting as demand faults and break the N=1 anchor.
  RefCfg.ColdCache = true;
  RunStats Reference = runImage(Img, RefCfg);
  // Mirror the engine's paging setup: an image built with a huge-page
  // budget maps its text region at huge granularity unless the run config
  // overrides the count — the shared cache must use the same page index
  // space as the reference run for the N=1 anchor to hold.
  PagingConfig PC = RunCfg.Paging;
  if (PC.HugeTextPages == 0)
    PC.HugeTextPages = Img.Layout.HugePages;
  FleetResult R =
      simulateFleet(Reference, Img.Layout.TextSize, Img.Layout.HeapSize, PC,
                    RunCfg.Cost, Cfg);
  if (ReferenceOut)
    *ReferenceOut = std::move(Reference);
  NIMG_COUNTER_ADD("nimg.fleet.runs", 1);
  NIMG_COUNTER_ADD("nimg.fleet.instances", Cfg.Instances);
  NIMG_COUNTER_ADD("nimg.fleet.major_faults", R.TotalMajors);
  NIMG_COUNTER_ADD("nimg.fleet.warm_hits", R.TotalWarmHits);
  NIMG_COUNTER_ADD("nimg.fleet.unique_pages", R.UniquePages);
  NIMG_COUNTER_ADD("nimg.fleet.evictions", R.Evictions);
  for (const FleetInstanceStats &S : R.Instances)
    NIMG_HIST_RECORD("nimg.fleet.cold_start_ns", uint64_t(S.ColdStartNs));
  return R;
}
