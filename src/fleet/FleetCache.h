//===- FleetCache.h - Shared fork/COW page cache ----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet's shared page cache: every simulated instance maps the same
/// image file, so a page one instance major-faults in is already in the
/// page cache when a later instance first touches it — the later instance
/// pays only a minor fault to map it copy-on-write (writes go to private
/// anonymous pages that cost nothing extra in this model). This fork/COW
/// sharing is the mechanism that amortizes layout quality across a fleet.
///
/// The cache *is* a real PagingSim — the same demand-fault + aligned
/// readahead machinery single runs are measured with — which is what makes
/// the N=1 anchor exact: one instance driving the shared cache reproduces
/// the single-run fault set byte for byte. On top of the simulator sits an
/// optional capacity knob with FIFO eviction (page-in order, no re-use
/// promotion — the same policy PagingSim's resident list models), so a
/// storm larger than the cache can thrash.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_FLEET_FLEETCACHE_H
#define NIMG_FLEET_FLEETCACHE_H

#include "src/runtime/Paging.h"

#include <deque>
#include <utility>
#include <vector>

namespace nimg {

/// Outcome of one instance first-touch against the shared cache.
enum class FleetTouch : uint8_t {
  Major,   ///< Page was cold fleet-wide: device read + readahead.
  WarmHit, ///< Page already in the shared cache: COW minor fault.
};

class FleetPageCache {
public:
  /// \p CapacityPages 0 = unlimited. A nonzero capacity is clamped up to
  /// the readahead cluster size so a single fault's own cluster cannot
  /// evict the page that faulted it in.
  FleetPageCache(uint64_t TextSize, uint64_t HeapSize,
                 const PagingConfig &Config, uint64_t CapacityPages = 0);

  /// An instance demand-faults \p Page of \p Sec (a WasFault event of the
  /// reference trace). Classifies it against the shared cache, pulls the
  /// readahead cluster in on a major, and applies capacity eviction.
  FleetTouch touchPage(ImageSection Sec, uint64_t Page);

  uint64_t majors() const { return Sim.totalFaults(); }
  uint64_t warmHits() const { return WarmHits; }
  /// Distinct (section, page) pairs ever major-faulted fleet-wide — the
  /// device reads a fleet of private caches would each have repaid.
  uint64_t uniquePages() const { return UniquePages; }
  uint64_t evictions() const { return Evictions; }

  const PagingSim &sim() const { return Sim; }

private:
  PagingSim Sim;
  uint64_t Capacity; ///< In pages across both sections; 0 = unlimited.
  /// Resident pages in page-in order (mirrors the simulator's intrusive
  /// resident lists, but interleaved across sections); front = oldest.
  std::deque<std::pair<ImageSection, uint64_t>> Fifo;
  std::vector<bool> EverFaulted[2];
  uint64_t WarmHits = 0;
  uint64_t UniquePages = 0;
  uint64_t Evictions = 0;
};

} // namespace nimg

#endif // NIMG_FLEET_FLEETCACHE_H
