//===- FleetCache.cpp - Shared fork/COW page cache --------------------------===//

#include "src/fleet/FleetCache.h"

#include <cassert>

using namespace nimg;

FleetPageCache::FleetPageCache(uint64_t TextSize, uint64_t HeapSize,
                               const PagingConfig &Config,
                               uint64_t CapacityPages)
    : Sim(TextSize, HeapSize, Config), Capacity(CapacityPages) {
  if (Capacity != 0 && Capacity < Config.ReadaheadPages)
    Capacity = Config.ReadaheadPages;
  EverFaulted[0].assign(Sim.pageStates(ImageSection::Text).size(), false);
  EverFaulted[1].assign(Sim.pageStates(ImageSection::HeapSec).size(), false);
}

FleetTouch FleetPageCache::touchPage(ImageSection Sec, uint64_t Page) {
  const std::vector<PageState> &States = Sim.pageStates(Sec);
  if (Page >= States.size())
    return FleetTouch::WarmHit; // Out of range: free, like PagingSim::touch.
  if (States[size_t(Page)] != PageState::Untouched) {
    // Already in the shared cache (faulted or readahead by an earlier
    // instance): minor fault only.
    ++WarmHits;
    return FleetTouch::WarmHit;
  }

  // Fleet-wide cold: a real major through the simulator, which pulls the
  // aligned readahead cluster in exactly as a single run would. Snapshot
  // which cluster pages were cold first so the FIFO mirrors the page-in
  // order (faulting page, then cluster pages ascending). The cluster and
  // the byte offset come from the simulator so pages keep their native
  // size: a huge text page is its own cluster and occupies one FIFO slot,
  // same as in the per-instance resident list.
  uint64_t ClusterStart, ClusterEnd;
  Sim.clusterRange(Sec, Page, ClusterStart, ClusterEnd);
  Fifo.emplace_back(Sec, Page);
  for (uint64_t Ahead = ClusterStart; Ahead < ClusterEnd; ++Ahead)
    if (Ahead != Page && States[size_t(Ahead)] == PageState::Untouched)
      Fifo.emplace_back(Sec, Ahead);
  Sim.touch(Sec, Sim.pageStartOffset(Sec, Page), 1);
  if (!EverFaulted[size_t(Sec)][size_t(Page)]) {
    EverFaulted[size_t(Sec)][size_t(Page)] = true;
    ++UniquePages;
  }

  if (Capacity != 0) {
    while (Fifo.size() > Capacity) {
      auto [ESec, EPage] = Fifo.front();
      Fifo.pop_front();
      // Invariant: the FIFO holds exactly the resident pages, each once,
      // so eviction always succeeds.
      bool Evicted = Sim.evictPage(ESec, EPage);
      assert(Evicted && "fleet FIFO desynced from the resident set");
      (void)Evicted;
      ++Evictions;
    }
  }
  return FleetTouch::Major;
}
