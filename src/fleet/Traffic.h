//===- Traffic.h - Fleet arrival-time generator -----------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic seeded arrival-time generation for the fleet serving
/// simulator: when does each of the N simulated instances start? Three
/// profiles cover the regimes layout work is evaluated in at fleet scale:
/// steady uniform load, memoryless Poisson load, and the cold-start storm
/// (a deploy or failover wakes a whole burst of instances at once — the
/// worst case for a shared page cache, and the best case for layout
/// quality, whose faults are paid once and amortized across the burst).
///
/// All times are model nanoseconds on the same clock CostModel converts
/// simulated work into; all randomness flows from one SplitMix64 seed so
/// an arrival schedule is a pure function of (kind, N, window, seed).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_FLEET_TRAFFIC_H
#define NIMG_FLEET_TRAFFIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace nimg {

/// Arrival distribution of fleet instances over the arrival window.
enum class ArrivalKind : uint8_t {
  Uniform, ///< i.i.d. uniform over the window, sorted ascending.
  Poisson, ///< Memoryless: exponential inter-arrival times with mean
           ///< window/N (inverse-CDF over SplitMix64 doubles).
  Storm,   ///< Burst profile: instances concentrate into a few tight
           ///< bursts (deploy/failover cold-start storm).
};

struct TrafficConfig {
  ArrivalKind Kind = ArrivalKind::Storm;
  uint32_t Instances = 1;
  /// Arrival window in model nanoseconds. Uniform arrivals land inside
  /// it; Poisson arrivals have mean inter-arrival WindowNs/Instances (the
  /// tail may exceed the window); storm bursts are spread across it.
  double WindowNs = 1e9;
  uint64_t Seed = 0x5eedf1ee7ULL;
  /// Storm only: number of bursts the instances are dealt into
  /// (round-robin). 1 = everything arrives in one thundering herd.
  uint32_t StormBursts = 4;
};

/// Generates one arrival time per instance, in model nanoseconds,
/// non-decreasing (instance 0 arrives first). Deterministic in the config.
std::vector<double> generateArrivals(const TrafficConfig &Cfg);

const char *arrivalKindName(ArrivalKind Kind);

/// Parses "uniform" / "poisson" / "storm"; returns false on anything else.
bool parseArrivalKind(const std::string &Name, ArrivalKind &Out);

} // namespace nimg

#endif // NIMG_FLEET_TRAFFIC_H
