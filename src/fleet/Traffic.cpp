//===- Traffic.cpp - Fleet arrival-time generator ---------------------------===//

#include "src/fleet/Traffic.h"

#include "src/support/SplitMix64.h"

#include <algorithm>
#include <cmath>

using namespace nimg;

const char *nimg::arrivalKindName(ArrivalKind Kind) {
  switch (Kind) {
  case ArrivalKind::Uniform:
    return "uniform";
  case ArrivalKind::Poisson:
    return "poisson";
  case ArrivalKind::Storm:
    return "storm";
  }
  return "unknown";
}

bool nimg::parseArrivalKind(const std::string &Name, ArrivalKind &Out) {
  if (Name == "uniform")
    Out = ArrivalKind::Uniform;
  else if (Name == "poisson")
    Out = ArrivalKind::Poisson;
  else if (Name == "storm")
    Out = ArrivalKind::Storm;
  else
    return false;
  return true;
}

std::vector<double> nimg::generateArrivals(const TrafficConfig &Cfg) {
  std::vector<double> Arrivals;
  Arrivals.reserve(Cfg.Instances);
  if (Cfg.Instances == 0)
    return Arrivals;
  SplitMix64 Rng(Cfg.Seed);
  double Window = Cfg.WindowNs > 0 ? Cfg.WindowNs : 0.0;

  switch (Cfg.Kind) {
  case ArrivalKind::Uniform:
    for (uint32_t I = 0; I < Cfg.Instances; ++I)
      Arrivals.push_back(Rng.nextDouble() * Window);
    break;

  case ArrivalKind::Poisson: {
    // Exponential inter-arrivals via the inverse CDF, rate N/window so the
    // expected span of the whole schedule is one window.
    double MeanGap = Window / double(Cfg.Instances);
    double T = 0.0;
    for (uint32_t I = 0; I < Cfg.Instances; ++I) {
      // nextDouble() is in [0, 1): 1-u is in (0, 1], so log() is finite.
      T += -std::log(1.0 - Rng.nextDouble()) * MeanGap;
      Arrivals.push_back(T);
    }
    break;
  }

  case ArrivalKind::Storm: {
    // Deal instances round-robin into tight bursts spread across the
    // window; within a burst, jitter spans 2% of the burst spacing, so
    // each burst is a near-simultaneous thundering herd.
    uint32_t Bursts = Cfg.StormBursts ? Cfg.StormBursts : 1;
    if (Bursts > Cfg.Instances)
      Bursts = Cfg.Instances;
    double Spacing = Window / double(Bursts);
    for (uint32_t I = 0; I < Cfg.Instances; ++I) {
      double Center = Spacing * double(I % Bursts);
      Arrivals.push_back(Center + Rng.nextDouble() * Spacing * 0.02);
    }
    break;
  }
  }

  std::sort(Arrivals.begin(), Arrivals.end());
  return Arrivals;
}
