//===- FleetSim.h - Fleet serving simulator ---------------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet serving simulator: N simulated instances of one built image
/// start concurrently under a deterministic event-driven scheduler and
/// share a fork/COW page cache (FleetPageCache). It answers the question
/// the single-process paper setup cannot: what is a page fault worth at 1
/// vs 1000 instances, when the first instance's majors leave warm pages
/// for everyone after it?
///
/// Model: the image is interpreted ONCE, with first-touch recording on
/// (the reference run). Every instance executes the identical workload, so
/// each replays the identical ordered demand-fault trace {page, model
/// clock}; an event-driven scheduler interleaves the N replays by model
/// time. An instance's demand fault is classified against the shared
/// cache — fleet-cold pages pay the per-size major cost and pull their
/// readahead cluster in; warm pages pay only the COW minor cost. Pages the
/// reference run got from its *own* readahead stay free (the instance's
/// private mapping has them regardless of the shared cache). Fault service
/// time shifts every later event of that instance, so concurrent instances
/// leapfrog each other and fault costs spread across the storm.
///
/// Everything is deterministic: one seed drives arrivals, the scheduler
/// breaks time ties by instance id, and the replay trace is a pure
/// function of the (byte-deterministic) image — so fleet results are
/// byte-identical at any --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_FLEET_FLEETSIM_H
#define NIMG_FLEET_FLEETSIM_H

#include "src/fleet/Traffic.h"
#include "src/runtime/ExecEngine.h"

#include <cstdint>
#include <vector>

namespace nimg {

struct FleetConfig {
  uint32_t Instances = 1;
  ArrivalKind Arrivals = ArrivalKind::Storm;
  /// Arrival window in model ns (TrafficConfig::WindowNs).
  double ArrivalWindowNs = 1e9;
  uint64_t Seed = 0x5eedf1ee7ULL;
  uint32_t StormBursts = 4;
  /// Shared-cache capacity in pages (both sections); 0 = unlimited.
  uint64_t CachePages = 0;
};

/// Per-instance outcome: when it arrived and how long its cold start took.
struct FleetInstanceStats {
  double ArrivalNs = 0;
  double ColdStartNs = 0; ///< Completion minus arrival.
  uint64_t Majors = 0;
  uint64_t WarmHits = 0;
};

struct FleetResult {
  std::vector<FleetInstanceStats> Instances;
  uint64_t TotalMajors = 0;
  uint64_t TotalWarmHits = 0;
  /// Distinct pages ever major-faulted fleet-wide (vs TotalMajors, which
  /// re-counts thrash re-faults).
  uint64_t UniquePages = 0;
  uint64_t Evictions = 0;
  /// Cold-start percentiles across instances (nearest-rank), model ns.
  double P50Ns = 0;
  double P90Ns = 0;
  double P99Ns = 0;
  double MeanNs = 0;
  /// The single-run anchor: the reference run's fault count and modeled
  /// time. At Instances=1 TotalMajors must equal ReferenceFaults exactly
  /// and P50Ns must equal ReferenceTimeNs, at any page-size mix (per-size
  /// fault charging is byte-exact against the single-run formula).
  uint64_t ReferenceFaults = 0;
  double ReferenceTimeNs = 0;

  /// Warm hits per first-touch classified, in [0, 1].
  double warmHitRatio() const {
    uint64_t Total = TotalMajors + TotalWarmHits;
    return Total == 0 ? 0.0 : double(TotalWarmHits) / double(Total);
  }
};

/// Replays an already-recorded reference run (RunStats with Touches from
/// RunConfig::RecordTouches) through the fleet scheduler. Lets callers
/// sweep fleet sizes / arrival profiles / cache capacities without
/// re-interpreting the workload per sweep point. \p TextSize / \p HeapSize
/// are the image's section sizes; \p Paging and \p Cost must match the
/// reference run's RunConfig for the N=1 anchor to hold.
FleetResult simulateFleet(const RunStats &Reference, uint64_t TextSize,
                          uint64_t HeapSize, const PagingConfig &Paging,
                          const CostModel &Cost, const FleetConfig &Cfg);

/// Runs the reference run (cold cache, first-touch recording) and then the
/// fleet simulation. Emits nimg.fleet.* metrics. \p ReferenceOut, when
/// non-null, receives the reference run's full RunStats (program output,
/// page maps, ...).
FleetResult runFleet(const NativeImage &Img, const RunConfig &RunCfg,
                     const FleetConfig &Cfg,
                     RunStats *ReferenceOut = nullptr);

} // namespace nimg

#endif // NIMG_FLEET_FLEETSIM_H
