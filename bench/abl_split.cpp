//===- abl_split.cpp - Ablation: hot/cold CU splitting ----------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sweeps --split hotcold against unsplit builds across all three code
// strategies (cu / method / cluster) on the 14 AWFY benchmarks. For each
// (benchmark, strategy) pair it measures first-run .text faults on a cold
// cache and the run's resident .text working set (pages faulted or
// prefetched). Splitting exiles never-executed blocks to the cold tail, so
// it should reduce first-run faults on most benchmarks and must never grow
// the working set beyond the stub-byte overhead (plus page-rounding
// slack) — the latter is asserted and fails the driver. Results land in
// BENCH_split.json.
//
// `--smoke` runs two benchmarks only (CI sanity of the harness + JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct Measured {
  uint64_t TextFaults = 0;
  uint64_t ColdFaults = 0;
  uint64_t TouchedPages = 0; ///< Resident .text pages after the run.
  uint32_t SplitCus = 0;
  uint32_t DegradedCus = 0;
  uint64_t StubBytes = 0;
  uint32_t PageSize = 4096;
};

uint64_t touchedPages(const std::vector<PageState> &Pages) {
  uint64_t N = 0;
  for (PageState S : Pages)
    if (S != PageState::Untouched)
      ++N;
  return N;
}

Measured measure(Program &P, CodeStrategy Code, const CodeProfile *CodeProf,
                 SplitMode Split, const BlockProfile *Blocks,
                 const RunConfig &Run) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = Code;
  Cfg.CodeProf = CodeProf;
  Cfg.Split = Split;
  Cfg.BlockProf = Split == SplitMode::None ? nullptr : Blocks;
  NativeImage Img = buildNativeImage(P, Cfg);
  Measured M;
  if (Img.Built.Failed)
    return M;
  RunStats Stats = runImage(Img, Run);
  M.TextFaults = Stats.TextFaults;
  M.ColdFaults = Stats.TextColdFaults;
  M.TouchedPages = touchedPages(Stats.TextPages);
  M.SplitCus = Img.Split.SplitCus;
  M.DegradedCus = Img.Split.DegradedCus;
  M.StubBytes = Img.Split.StubBytes;
  M.PageSize = Img.Layout.PageSize;
  return M;
}

const char *strategyName(CodeStrategy S) {
  switch (S) {
  case CodeStrategy::CuOrder:
    return "cu";
  case CodeStrategy::MethodOrder:
    return "method";
  case CodeStrategy::Cluster:
    return "cluster";
  case CodeStrategy::None:
    break;
  }
  return "none";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;
  // Readahead batches 4 pages per fault, which aliases sub-cluster layout
  // savings to zero. The ablation isolates the layout effect: every page
  // is demand-faulted, so one fault == one 4 KiB page. The working-set
  // bound below is granularity-independent (resident pages, not faults).
  Run.Paging.ReadaheadPages = 1;

  const CodeStrategy Strategies[] = {CodeStrategy::CuOrder,
                                     CodeStrategy::MethodOrder,
                                     CodeStrategy::Cluster};

  struct Row {
    std::string Name;
    Measured Unsplit[3];
    Measured Split[3];
  };
  std::vector<Row> Rows;
  size_t NoWorse[3] = {0, 0, 0};
  size_t Reduced[3] = {0, 0, 0};
  bool WorkingSetOk = true;

  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);

  std::printf("Ablation — hot/cold CU splitting, first-run .text faults "
              "(cold cache)\n");
  std::printf("%-12s", "benchmark");
  for (CodeStrategy S : Strategies)
    std::printf(" %9s %9s %5s", strategyName(S), "+split", "cold");
  std::printf("\n");

  for (const std::string &Name : Names) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      continue;
    }
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    Row R;
    R.Name = Name;
    std::printf("%-12s", Name.c_str());
    for (size_t S = 0; S < 3; ++S) {
      const CodeProfile *CodeProf = Strategies[S] == CodeStrategy::CuOrder
                                        ? &Prof.Cu
                                        : Strategies[S] ==
                                                  CodeStrategy::MethodOrder
                                              ? &Prof.Method
                                              : &Prof.Cluster;
      R.Unsplit[S] = measure(*P, Strategies[S], CodeProf, SplitMode::None,
                             nullptr, Run);
      R.Split[S] = measure(*P, Strategies[S], CodeProf, SplitMode::HotCold,
                           &Prof.Blocks, Run);
      if (R.Split[S].TextFaults <= R.Unsplit[S].TextFaults)
        ++NoWorse[S];
      if (R.Split[S].TextFaults < R.Unsplit[S].TextFaults)
        ++Reduced[S];
      // Working-set bound: the split image may grow the complete-run
      // resident set only by its stub bytes plus page-rounding slack (the
      // cold tail starts on a fresh page; readahead granularity adds a
      // cluster's worth of noise on each side).
      uint64_t StubPages =
          R.Split[S].StubBytes / R.Split[S].PageSize + 1;
      if (R.Split[S].TouchedPages >
          R.Unsplit[S].TouchedPages + StubPages + 4) {
        WorkingSetOk = false;
        std::fprintf(stderr,
                     "FAIL: %s/%s split working set %llu pages exceeds "
                     "unsplit %llu + stub bound\n",
                     Name.c_str(), strategyName(Strategies[S]),
                     (unsigned long long)R.Split[S].TouchedPages,
                     (unsigned long long)R.Unsplit[S].TouchedPages);
      }
      std::printf(" %9llu %9llu %5llu",
                  (unsigned long long)R.Unsplit[S].TextFaults,
                  (unsigned long long)R.Split[S].TextFaults,
                  (unsigned long long)R.Split[S].ColdFaults);
    }
    std::printf("\n");
    Rows.push_back(std::move(R));
  }

  std::printf("\nfirst-run .text faults, split vs unsplit:\n");
  for (size_t S = 0; S < 3; ++S)
    std::printf("  %-8s reduced on %zu of %zu benchmarks, no worse on %zu\n",
                strategyName(Strategies[S]), Reduced[S], Rows.size(),
                NoWorse[S]);
  std::printf("working-set bound: %s\n", WorkingSetOk ? "ok" : "VIOLATED");

  benchjson::writeBenchJson(
      "BENCH_split.json", "abl_split", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.key("benchmarks");
        W.beginArray();
        for (const Row &R : Rows) {
          W.beginObject();
          W.member("name", R.Name);
          for (size_t S = 0; S < 3; ++S) {
            std::string Prefix = strategyName(Strategies[S]);
            W.member(Prefix + "_text_faults", R.Unsplit[S].TextFaults);
            W.member(Prefix + "_split_text_faults", R.Split[S].TextFaults);
            W.member(Prefix + "_split_cold_faults", R.Split[S].ColdFaults);
            W.member(Prefix + "_pages", R.Unsplit[S].TouchedPages);
            W.member(Prefix + "_split_pages", R.Split[S].TouchedPages);
            W.member(Prefix + "_cus_split", uint64_t(R.Split[S].SplitCus));
            W.member(Prefix + "_cus_degraded",
                     uint64_t(R.Split[S].DegradedCus));
            W.member(Prefix + "_stub_bytes", R.Split[S].StubBytes);
          }
          W.endObject();
        }
        W.endArray();
        for (size_t S = 0; S < 3; ++S) {
          W.member(std::string(strategyName(Strategies[S])) +
                       "_split_le_unsplit_count",
                   uint64_t(NoWorse[S]));
          W.member(std::string(strategyName(Strategies[S])) +
                       "_split_lt_unsplit_count",
                   uint64_t(Reduced[S]));
        }
        W.member("benchmark_count", uint64_t(Rows.size()));
        W.member("working_set_bound_ok", WorkingSetOk);
      });
  return WorkingSetOk ? 0 : 1;
}
