//===- BenchJson.h - Machine-readable bench output --------------*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared JSON emitter for the figure harnesses. The printed tables stay
/// the primary human output; alongside them each harness drops a
/// BENCH_<figure>.json ({"schema":"nimg-bench","version":1,...}) so plots
/// and regression checks can consume the numbers without scraping stdout.
///
/// Files land in the current directory by default; set
/// NIMAGE_BENCH_JSON_DIR to redirect, or set it to "-" to suppress the
/// files entirely (useful under ctest).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_BENCH_BENCHJSON_H
#define NIMG_BENCH_BENCHJSON_H

#include "src/obs/Json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace nimg {
namespace benchjson {

inline constexpr uint32_t BenchJsonVersion = 1;

/// Resolves the output path for \p FileName, honoring
/// NIMAGE_BENCH_JSON_DIR. Empty result means output is suppressed ("-").
inline std::string benchJsonPath(const std::string &FileName) {
  const char *Dir = std::getenv("NIMAGE_BENCH_JSON_DIR");
  if (Dir && std::string(Dir) == "-")
    return {};
  if (Dir && *Dir)
    return std::string(Dir) + "/" + FileName;
  return FileName;
}

/// Writes one bench artifact. \p Body receives a writer positioned inside
/// the top-level object, after the schema/version/figure members, and adds
/// the figure-specific members. Returns false on I/O failure (reported on
/// stderr; bench harnesses keep their table output regardless). An
/// existing file is replaced, with a one-line note on stderr so repeated
/// bench runs do not silently clobber earlier artifacts.
template <typename BodyFn>
inline bool writeBenchJson(const std::string &FileName,
                           const std::string &Figure, BodyFn Body) {
  std::string Path = benchJsonPath(FileName);
  if (Path.empty())
    return true;
  if (std::ifstream(Path).good())
    std::fprintf(stderr, "  note: overwriting existing %s\n", Path.c_str());
  std::string Out;
  obs::JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "nimg-bench");
  W.member("version", uint64_t(BenchJsonVersion));
  W.member("figure", Figure);
  Body(W);
  W.endObject();
  std::ofstream F(Path, std::ios::binary);
  if (!F || !F.write(Out.data(), std::streamsize(Out.size()))) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fprintf(stderr, "  wrote %s\n", Path.c_str());
  return true;
}

} // namespace benchjson
} // namespace nimg

#endif // NIMG_BENCH_BENCHJSON_H
