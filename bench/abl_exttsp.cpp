//===- abl_exttsp.cpp - Ablation: ext-TSP hot-fragment block reordering -----===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sweeps --blocks exttsp against --blocks none (both under --split hotcold)
// across all three code strategies (cu / method / cluster) on the 14 AWFY
// benchmarks. For each benchmark it reports the ext-TSP objective uplift
// of the emitted block order over block index order, the modeled
// taken-branch weight and weighted jump distance before/after, and
// first-run .text faults on a cold cache. Reordering happens *within*
// fragments the runtime touches wholesale on method entry, so faults must
// be bit-identical to --blocks none on every (benchmark, strategy) pair —
// asserted, and a violation fails the driver. Results land in
// BENCH_exttsp.json.
//
// `--smoke` runs two benchmarks only (CI sanity of the harness + JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct Measured {
  uint64_t TextFaults = 0;
  uint64_t ColdFaults = 0;
  ExtTspSummary Tsp;
};

Measured measure(Program &P, CodeStrategy Code, const CodeProfile *CodeProf,
                 BlockOrderMode Blocks, const CollectedProfiles &Prof,
                 const RunConfig &Run) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = Code;
  Cfg.CodeProf = CodeProf;
  Cfg.Split = SplitMode::HotCold;
  Cfg.BlockProf = &Prof.Blocks;
  Cfg.SplitOpts.Blocks = Blocks;
  if (Blocks == BlockOrderMode::ExtTsp)
    Cfg.EdgeProf = &Prof.Edges;
  NativeImage Img = buildNativeImage(P, Cfg);
  Measured M;
  if (Img.Built.Failed)
    return M;
  RunStats Stats = runImage(Img, Run);
  M.TextFaults = Stats.TextFaults;
  M.ColdFaults = Stats.TextColdFaults;
  M.Tsp = Img.Split.ExtTsp;
  return M;
}

const char *strategyName(CodeStrategy S) {
  switch (S) {
  case CodeStrategy::CuOrder:
    return "cu";
  case CodeStrategy::MethodOrder:
    return "method";
  case CodeStrategy::Cluster:
    return "cluster";
  case CodeStrategy::None:
    break;
  }
  return "none";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;
  // Same geometry as abl_split: demand-fault every page so the layout
  // effect isn't aliased away by readahead batching.
  Run.Paging.ReadaheadPages = 1;

  const CodeStrategy Strategies[] = {CodeStrategy::CuOrder,
                                     CodeStrategy::MethodOrder,
                                     CodeStrategy::Cluster};

  struct Row {
    std::string Name;
    Measured None[3];
    Measured Tsp[3];
    bool UpliftPositive = false; ///< Any strategy's score strictly improved.
  };
  std::vector<Row> Rows;
  size_t UpliftCount = 0;
  size_t FaultsNoWorse[3] = {0, 0, 0};
  bool FaultsOk = true;

  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);

  std::printf("Ablation — ext-TSP block reordering inside hot fragments "
              "(vs block index order, both split hotcold)\n");
  std::printf("%-12s %9s %9s %9s %9s %9s %7s\n", "benchmark", "score",
              "+exttsp", "taken", "+exttsp", "jumpdist", "reord");

  for (const std::string &Name : Names) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      continue;
    }
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    Row R;
    R.Name = Name;
    for (size_t S = 0; S < 3; ++S) {
      const CodeProfile *CodeProf = Strategies[S] == CodeStrategy::CuOrder
                                        ? &Prof.Cu
                                        : Strategies[S] ==
                                                  CodeStrategy::MethodOrder
                                              ? &Prof.Method
                                              : &Prof.Cluster;
      R.None[S] = measure(*P, Strategies[S], CodeProf, BlockOrderMode::None,
                          Prof, Run);
      R.Tsp[S] = measure(*P, Strategies[S], CodeProf, BlockOrderMode::ExtTsp,
                         Prof, Run);
      if (R.Tsp[S].Tsp.ScoreAfter > R.Tsp[S].Tsp.ScoreBefore)
        R.UpliftPositive = true;
      // Fault neutrality: method entry touches the whole hot fragment, so
      // an intra-fragment reorder cannot change what faults. Anything
      // else is a bug in the reorderer's accounting.
      if (R.Tsp[S].TextFaults <= R.None[S].TextFaults) {
        ++FaultsNoWorse[S];
      } else {
        FaultsOk = false;
        std::fprintf(stderr,
                     "FAIL: %s/%s exttsp text faults %llu exceed none %llu\n",
                     Name.c_str(), strategyName(Strategies[S]),
                     (unsigned long long)R.Tsp[S].TextFaults,
                     (unsigned long long)R.None[S].TextFaults);
      }
    }
    if (R.UpliftPositive)
      ++UpliftCount;
    // The summary line shows the method-strategy build (the one whose
    // profile the edge counts rode in on); the JSON carries all three.
    const ExtTspSummary &T = R.Tsp[1].Tsp;
    std::printf("%-12s %9.1f %9.1f %9llu %9llu %8.0f %7u\n", Name.c_str(),
                T.ScoreBefore, T.ScoreAfter,
                (unsigned long long)T.TakenBefore,
                (unsigned long long)T.TakenAfter, T.JumpDistanceAfter,
                T.ReorderedCus);
    Rows.push_back(std::move(R));
  }

  std::printf("\next-TSP score uplift > 0 on %zu of %zu benchmarks\n",
              UpliftCount, Rows.size());
  for (size_t S = 0; S < 3; ++S)
    std::printf("  %-8s faults no worse than --blocks none on %zu of %zu\n",
                strategyName(Strategies[S]), FaultsNoWorse[S], Rows.size());

  benchjson::writeBenchJson(
      "BENCH_exttsp.json", "abl_exttsp", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.key("benchmarks");
        W.beginArray();
        for (const Row &R : Rows) {
          W.beginObject();
          W.member("name", R.Name);
          W.member("uplift_positive", R.UpliftPositive);
          for (size_t S = 0; S < 3; ++S) {
            std::string Prefix = strategyName(Strategies[S]);
            const ExtTspSummary &T = R.Tsp[S].Tsp;
            W.member(Prefix + "_text_faults", R.None[S].TextFaults);
            W.member(Prefix + "_exttsp_text_faults", R.Tsp[S].TextFaults);
            W.member(Prefix + "_score_index", T.ScoreBefore);
            W.member(Prefix + "_score_exttsp", T.ScoreAfter);
            W.member(Prefix + "_taken_weight_index", T.TakenBefore);
            W.member(Prefix + "_taken_weight_exttsp", T.TakenAfter);
            W.member(Prefix + "_jump_distance_index", T.JumpDistanceBefore);
            W.member(Prefix + "_jump_distance_exttsp", T.JumpDistanceAfter);
            W.member(Prefix + "_cus_reordered", uint64_t(T.ReorderedCus));
            W.member(Prefix + "_cus_degraded", uint64_t(T.DegradedCus));
            W.member(Prefix + "_chain_merges", T.ChainMerges);
          }
          W.endObject();
        }
        W.endArray();
        for (size_t S = 0; S < 3; ++S)
          W.member(std::string(strategyName(Strategies[S])) +
                       "_faults_le_none_count",
                   uint64_t(FaultsNoWorse[S]));
        W.member("uplift_positive_count", uint64_t(UpliftCount));
        W.member("benchmark_count", uint64_t(Rows.size()));
        W.member("faults_ok", FaultsOk);
      });

  // The full sweep enforces the acceptance bar; smoke only sanity-checks
  // the harness shape.
  bool UpliftOk = Smoke || Rows.size() < 14 || UpliftCount * 14 >= 12 * 14;
  if (!UpliftOk)
    std::fprintf(stderr, "FAIL: uplift > 0 on only %zu of %zu benchmarks\n",
                 UpliftCount, Rows.size());
  return (FaultsOk && UpliftOk) ? 0 : 1;
}
