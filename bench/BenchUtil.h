//===- BenchUtil.h - Shared helpers for the figure harnesses ----*- C++ -*-===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table printing and evaluation drivers shared by the per-figure bench
/// binaries. Each binary regenerates one table/figure of the paper's
/// evaluation (Sec. 7); set NIMAGE_EVAL_SEEDS to trade precision for wall
/// time (default 3 builds per strategy; the paper uses 10).
///
//===----------------------------------------------------------------------===//

#ifndef NIMG_BENCH_BENCHUTIL_H
#define NIMG_BENCH_BENCHUTIL_H

#include "src/core/Evaluation.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace nimg {
namespace benchutil {

/// True when the driver was invoked with `--smoke`: the bench-smoke ctest
/// label runs every driver this way — a tiny configuration that exercises
/// the full code path and the BENCH_*.json emission, not a measurement.
inline bool smokeMode(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      return true;
  return false;
}

/// Shrinks a suite run to smoke size: the first \p Keep workloads, one
/// seed per strategy.
inline void applySmoke(bool Smoke, std::vector<std::string> &Names,
                       EvalOptions &Opts, size_t Keep = 2) {
  if (!Smoke)
    return;
  if (Names.size() > Keep)
    Names.resize(Keep);
  Opts.Seeds = 1;
}

inline const std::vector<std::string> &strategyNames() {
  static const std::vector<std::string> Names = {
      "cu",        "method",      "cluster",      "incremental id",
      "structural hash", "heap path", "cu+heap path"};
  return Names;
}

/// The figure's factor convention: code strategies are scored on .text
/// faults, heap strategies on .svm_heap faults, the combined strategy on
/// both (Sec. 7.1).
inline double faultFactorOf(const VariantEval &V) {
  if (V.Name == "cu" || V.Name == "method" || V.Name == "cluster")
    return V.TextFaultFactor;
  if (V.Name == "cu+heap path")
    return V.TotalFaultFactor;
  return V.HeapFaultFactor;
}

inline EvalOptions defaultOptions() {
  EvalOptions Opts;
  Opts.Seeds = evalSeedsFromEnv(3);
  return Opts;
}

inline std::vector<BenchmarkEval>
evaluateSuite(const std::vector<std::string> &Names, bool Microservices,
              const EvalOptions &Opts) {
  std::vector<BenchmarkEval> Out;
  for (const std::string &Name : Names) {
    BenchmarkSpec Spec =
        Microservices ? microserviceBenchmark(Name) : awfyBenchmark(Name);
    std::fprintf(stderr, "  evaluating %s...\n", Name.c_str());
    Out.push_back(evaluateBenchmark(Spec, Opts));
  }
  return Out;
}

inline void printHeader(const char *Title, const char *Metric, int Seeds) {
  std::printf("%s\n", Title);
  std::printf("metric: %s; %d image builds per strategy; factors are "
              "M_baseline / M_optimized (higher is better)\n\n",
              Metric, Seeds);
  std::printf("%-12s", "benchmark");
  for (const std::string &S : strategyNames())
    std::printf(" %15s", S.c_str());
  std::printf("\n");
}

template <typename FactorFn>
inline void printFactorTable(const std::vector<BenchmarkEval> &Evals,
                             FactorFn Factor) {
  std::vector<std::vector<double>> PerStrategy(strategyNames().size());
  for (const BenchmarkEval &E : Evals) {
    std::printf("%-12s", E.Benchmark.c_str());
    for (size_t S = 0; S < strategyNames().size(); ++S) {
      const VariantEval *V = E.variant(strategyNames()[S]);
      double F = V ? Factor(*V) : 1.0;
      PerStrategy[S].push_back(F);
      std::printf(" %15.2f", F);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "geomean");
  for (size_t S = 0; S < strategyNames().size(); ++S)
    std::printf(" %15.2f", geomean(PerStrategy[S]));
  std::printf("\n");
}

} // namespace benchutil
} // namespace nimg

#endif // NIMG_BENCH_BENCHUTIL_H
