//===- fig4_micro_speedup.cpp - Reproduces the paper's Figure 4 ------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 4: execution-time speedup on the microservices, measured as the
// elapsed time until the first response (the workload is then killed,
// Sec. 7.1). Paper reference (average): cu 1.48x, method 1.17x,
// incremental id 1.02x, structural hash 1.01x, heap path 1.11x,
// cu+heap path 1.61x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace nimg;
using namespace nimg::benchutil;

int main(int Argc, char **Argv) {
  EvalOptions Opts = defaultOptions();
  std::vector<std::string> Names = microserviceNames();
  applySmoke(smokeMode(Argc, Argv), Names, Opts, /*Keep=*/1);
  std::vector<BenchmarkEval> Evals =
      evaluateSuite(Names, /*Microservices=*/true, Opts);

  printHeader("Figure 4 — microservice execution-time speedup",
              "time to first response on a cold page cache", Opts.Seeds);
  printFactorTable(Evals,
                   [](const VariantEval &V) { return V.Speedup; });

  std::printf("\nbaseline time to first response (model):\n");
  for (const BenchmarkEval &E : Evals)
    std::printf("  %-12s %8.2f ms  [%.2f, %.2f]\n", E.Benchmark.c_str(),
                E.Baseline.TimeNs.Mean / 1e6, E.Baseline.TimeNs.Lo / 1e6,
                E.Baseline.TimeNs.Hi / 1e6);
  return 0;
}
