//===- fig5_awfy_speedup.cpp - Reproduces the paper's Figure 5 -------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 5: execution-time speedup on the 14 AWFY benchmarks (end-to-end
// time, cold page cache). Paper reference (average): cu 1.26x, method
// 1.26x, incremental id 1.07x, structural hash 1.09x, heap path 1.11x,
// cu+heap path 1.59x; minor slowdowns (0.97-0.99x) are expected only for
// heap strategies on Havlak.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace nimg;
using namespace nimg::benchutil;

int main(int Argc, char **Argv) {
  bool Smoke = smokeMode(Argc, Argv);
  EvalOptions Opts = defaultOptions();
  std::vector<std::string> Names = awfyBenchmarkNames();
  applySmoke(Smoke, Names, Opts);
  std::vector<BenchmarkEval> Evals =
      evaluateSuite(Names, /*Microservices=*/false, Opts);

  printHeader("Figure 5 — AWFY execution-time speedup",
              "end-to-end execution time on a cold page cache", Opts.Seeds);
  printFactorTable(Evals,
                   [](const VariantEval &V) { return V.Speedup; });

  // Splitting rides along on every variant (abl_split owns the direct
  // split-vs-unsplit comparison; this shows ordering gains survive it).
  EvalOptions SplitOpts = Opts;
  SplitOpts.Build.Split = SplitMode::HotCold;
  std::vector<BenchmarkEval> SplitEvals =
      evaluateSuite(Names, /*Microservices=*/false, SplitOpts);
  std::printf("\nwith --split hotcold (all images split):\n\n");
  std::printf("%-12s", "benchmark");
  for (const std::string &S : strategyNames())
    std::printf(" %15s", S.c_str());
  std::printf("\n");
  printFactorTable(SplitEvals,
                   [](const VariantEval &V) { return V.Speedup; });

  // With ext-TSP block reordering inside the hot fragments on top of the
  // split: startup time is fault-dominated in this model, so the series
  // should track the split one while the intra-fragment locality gains
  // show up in abl_exttsp's objective/taken-branch numbers instead.
  EvalOptions ExtOpts = SplitOpts;
  ExtOpts.Build.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
  std::vector<BenchmarkEval> ExtEvals =
      evaluateSuite(Names, /*Microservices=*/false, ExtOpts);
  std::printf("\nwith --split hotcold --blocks exttsp:\n\n");
  std::printf("%-12s", "benchmark");
  for (const std::string &S : strategyNames())
    std::printf(" %15s", S.c_str());
  std::printf("\n");
  printFactorTable(ExtEvals,
                   [](const VariantEval &V) { return V.Speedup; });

  std::printf("\nbaseline end-to-end time (model):\n");
  for (const BenchmarkEval &E : Evals)
    std::printf("  %-12s %8.2f ms  [%.2f, %.2f]\n", E.Benchmark.c_str(),
                E.Baseline.TimeNs.Mean / 1e6, E.Baseline.TimeNs.Lo / 1e6,
                E.Baseline.TimeNs.Hi / 1e6);

  bool Ok = benchjson::writeBenchJson(
      "BENCH_fig5.json", "fig5", [&](obs::JsonWriter &W) {
        W.member("seeds", uint64_t(Opts.Seeds));
        W.member("smoke", Smoke);
        W.key("benchmarks");
        W.beginArray();
        for (size_t I = 0; I < Evals.size(); ++I) {
          const BenchmarkEval &E = Evals[I];
          W.beginObject();
          W.member("name", E.Benchmark);
          W.member("baseline_time_ms", E.Baseline.TimeNs.Mean / 1e6);
          W.key("speedups");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = E.variant(S);
            W.member(S, V ? V->Speedup : 1.0);
          }
          W.endObject();
          W.key("speedups_split");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = SplitEvals[I].variant(S);
            W.member(S, V ? V->Speedup : 1.0);
          }
          W.endObject();
          W.key("speedups_exttsp");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = ExtEvals[I].variant(S);
            W.member(S, V ? V->Speedup : 1.0);
          }
          W.endObject();
          W.endObject();
        }
        W.endArray();
        auto Geomeans = [&](const char *Key,
                            const std::vector<BenchmarkEval> &Es) {
          W.key(Key);
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            std::vector<double> Fs;
            for (const BenchmarkEval &E : Es) {
              const VariantEval *V = E.variant(S);
              Fs.push_back(V ? V->Speedup : 1.0);
            }
            W.member(S, geomean(Fs));
          }
          W.endObject();
        };
        Geomeans("geomean_speedups", Evals);
        Geomeans("geomean_speedups_split", SplitEvals);
        Geomeans("geomean_speedups_exttsp", ExtEvals);
      });
  return Ok ? 0 : 1;
}
