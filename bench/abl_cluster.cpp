//===- abl_cluster.cpp - Ablation: cluster ordering page budget ------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// The cluster code orderer (src/ordering/ClusterLayout.h) goes beyond the
// paper's first-execution-time strategies: it packs hot caller/callee CU
// pairs onto shared pages, capped by a page-budget knob. This ablation
// (a) sweeps the budget on one benchmark — at tiny budgets almost every
// merge is rejected and the layout degenerates to cu ordering; unlimited
// budgets let one hot chain swallow the section — and (b) compares
// first-run .text faults of cluster vs. cu ordering across the 14 AWFY
// benchmarks. Both are recorded in BENCH_cluster.json.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct BenchResult {
  std::string Name;
  uint64_t BaselineFaults = 0;
  uint64_t CuFaults = 0;
  uint64_t ClusterFaults = 0;
  ClusterStats Stats;
};

/// One build+run with the given code strategy/profile; returns .text
/// faults of a cold first run.
uint64_t textFaultsOf(Program &P, CodeStrategy Code, const CodeProfile *Prof,
                      const RunConfig &Run) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = Code;
  Cfg.CodeProf = Prof;
  NativeImage Img = buildNativeImage(P, Cfg);
  if (Img.Built.Failed)
    return 0;
  return runImage(Img, Run).TextFaults;
}

} // namespace

int main(int Argc, char **Argv) {
  // --smoke: two budgets, two benchmarks — harness + JSON sanity for the
  // bench-smoke ctest label.
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;

  //===--------------------------------------------------------------------===//
  // (a) Page-budget sweep: re-cluster one cu-mode capture at each budget.
  //===--------------------------------------------------------------------===//

  const char *SweepBench = "Richards";
  std::vector<std::string> Errors;
  std::unique_ptr<Program> SweepP =
      compileBenchmark(awfyBenchmark(SweepBench), Errors);
  if (!SweepP) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  BuildConfig InstrCfg;
  InstrCfg.Seed = 1001;
  InstrCfg.Instrumented = true;
  NativeImage Instr = buildNativeImage(*SweepP, InstrCfg);

  TraceOptions TOpts;
  TOpts.Mode = TraceMode::CuOrder;
  TOpts.Dump = DumpMode::FlushOnFull;
  RunConfig TraceRun = Run;
  TraceRun.Trace = &TOpts;
  TraceCapture CuCap;
  runImage(Instr, TraceRun, &CuCap);

  uint64_t Fp = programFingerprint(*SweepP);

  std::printf("Ablation — cluster page-budget sweep (AWFY %s)\n", SweepBench);
  std::printf("%12s %8s %8s %10s %10s %12s\n", "budgetBytes", "merges",
              "clusters", "rejected", "textFaults", "vs cu");

  CodeProfile CuProf = analyzeCuOrder(*SweepP, CuCap);
  CuProf.Header.Fingerprint = Fp;
  uint64_t CuFaults =
      textFaultsOf(*SweepP, CodeStrategy::CuOrder, &CuProf, Run);

  struct SweepPoint {
    uint32_t Budget;
    ClusterStats Stats;
    uint64_t TextFaults;
  };
  std::vector<SweepPoint> Sweep;
  std::vector<uint32_t> Budgets = {4096u, 8192u, 16384u, 32768u, 65536u, 0u};
  if (Smoke)
    Budgets = {4096u, 0u};
  for (uint32_t Budget : Budgets) {
    ClusterOptions Opts;
    Opts.PageBudgetBytes = Budget;
    ClusterStats Stats;
    CodeProfile Prof = analyzeClusterOrder(*SweepP, CuCap, Instr.Code, Opts,
                                           nullptr, nullptr, &Stats);
    Prof.Header.Fingerprint = Fp;
    uint64_t Faults =
        textFaultsOf(*SweepP, CodeStrategy::Cluster, &Prof, Run);
    Sweep.push_back({Budget, Stats, Faults});
    std::printf("%12u %8zu %8zu %10zu %10llu %12.2f\n", Budget, Stats.Merges,
                Stats.Clusters, Stats.BudgetRejections,
                (unsigned long long)Faults,
                Faults == 0 ? 1.0 : double(CuFaults) / double(Faults));
  }
  std::printf("  (budget 0 = unlimited; cu ordering: %llu .text faults)\n\n",
              (unsigned long long)CuFaults);

  //===--------------------------------------------------------------------===//
  // (b) cluster vs cu first-run .text faults across the AWFY suite.
  //===--------------------------------------------------------------------===//

  std::printf("cluster vs cu — first-run .text faults (default budget)\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "benchmark", "baseline", "cu",
              "cluster", "cl<=cu");

  std::vector<BenchResult> Results;
  size_t ClusterNoWorse = 0;
  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);
  for (const std::string &Name : Names) {
    Errors.clear();
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P)
      continue;
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    BenchResult R;
    R.Name = Name;
    R.Stats = Prof.ClusterLayoutStats;
    R.BaselineFaults = textFaultsOf(*P, CodeStrategy::None, nullptr, Run);
    R.CuFaults = textFaultsOf(*P, CodeStrategy::CuOrder, &Prof.Cu, Run);
    R.ClusterFaults =
        textFaultsOf(*P, CodeStrategy::Cluster, &Prof.Cluster, Run);
    if (R.ClusterFaults <= R.CuFaults)
      ++ClusterNoWorse;
    std::printf("%-12s %10llu %10llu %10llu %10s\n", Name.c_str(),
                (unsigned long long)R.BaselineFaults,
                (unsigned long long)R.CuFaults,
                (unsigned long long)R.ClusterFaults,
                R.ClusterFaults <= R.CuFaults ? "yes" : "no");
    Results.push_back(R);
  }
  std::printf("cluster <= cu on %zu of %zu benchmarks\n", ClusterNoWorse,
              Results.size());

  bool Ok = benchjson::writeBenchJson(
      "BENCH_cluster.json", "abl_cluster", [&](obs::JsonWriter &W) {
        W.member("sweep_benchmark", std::string(SweepBench));
        W.key("budget_sweep");
        W.beginArray();
        for (const SweepPoint &S : Sweep) {
          W.beginObject();
          W.member("budget_bytes", uint64_t(S.Budget));
          W.member("merges", uint64_t(S.Stats.Merges));
          W.member("clusters", uint64_t(S.Stats.Clusters));
          W.member("budget_rejections", uint64_t(S.Stats.BudgetRejections));
          W.member("text_faults", S.TextFaults);
          W.endObject();
        }
        W.endArray();
        W.key("benchmarks");
        W.beginArray();
        for (const BenchResult &R : Results) {
          W.beginObject();
          W.member("name", R.Name);
          W.member("baseline_text_faults", R.BaselineFaults);
          W.member("cu_text_faults", R.CuFaults);
          W.member("cluster_text_faults", R.ClusterFaults);
          W.member("cluster_le_cu", R.ClusterFaults <= R.CuFaults);
          W.member("graph_nodes", uint64_t(R.Stats.Nodes));
          W.member("graph_edges", uint64_t(R.Stats.Edges));
          W.member("merges", uint64_t(R.Stats.Merges));
          W.member("clusters", uint64_t(R.Stats.Clusters));
          W.endObject();
        }
        W.endArray();
        W.member("cluster_le_cu_count", uint64_t(ClusterNoWorse));
        W.member("benchmark_count", uint64_t(Results.size()));
      });
  return Ok ? 0 : 1;
}
