//===- fig3_micro_pagefaults.cpp - Reproduces the paper's Figure 3 ---------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 3: page-fault reduction on the three microservice hello-world
// workloads (multi-threaded, killed after the first response; traces use
// the memory-mapped dump mode, Sec. 6.1). Paper reference (average):
// cu 2.55x, method 1.35x, incremental id 1.14x (0.99x on quarkus),
// structural hash 1.03x, heap path 1.22x, cu+heap path 1.46x; max cu
// 2.67x on micronaut, max heap path 1.26x on quarkus.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace nimg;
using namespace nimg::benchutil;

int main(int Argc, char **Argv) {
  EvalOptions Opts = defaultOptions();
  std::vector<std::string> Names = microserviceNames();
  applySmoke(smokeMode(Argc, Argv), Names, Opts, /*Keep=*/1);
  std::vector<BenchmarkEval> Evals =
      evaluateSuite(Names, /*Microservices=*/true, Opts);

  printHeader("Figure 3 — microservice page-fault reduction",
              ".text faults for cu/method, .svm_heap faults for heap "
              "strategies, both for cu+heap path",
              Opts.Seeds);
  printFactorTable(Evals, faultFactorOf);

  std::printf("\naccessed heap-snapshot objects:\n");
  for (const BenchmarkEval &E : Evals)
    std::printf("  %-12s %5.1f%% of %zu stored objects (image %llu KiB)\n",
                E.Benchmark.c_str(), E.PctStoredObjectsTouched,
                E.SnapshotObjects,
                (unsigned long long)(E.ImageBytes / 1024));
  return 0;
}
