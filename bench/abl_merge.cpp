//===- abl_merge.cpp - Ablation: fleet profile aggregation ------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Measures the layout quality of fleet-aggregated profiles against the
// single clean instrumented run on the 14 AWFY benchmarks, under
// increasing member damage. Each benchmark gets an 8-member profile set
// (one clean cu capture re-stamped to generations 100..107); the sweep
// faults the first k members (k = 0, 2, 4, 6, 8) with a deterministic
// cycle of quarantine-guaranteed kinds (truncation, version skew, stale
// generation, coverage collapse), plus one all-truncated set to hit the
// ladder bottom. Asserted and failing the driver:
//
//   * at k = 0 the merged layout is no worse than the single clean run,
//   * first-run .text faults are monotone non-decreasing in k,
//   * no merged/degraded build is ever worse than the profile-less
//     default layout (the ladder's fallback).
//
// Results land in BENCH_merge.json. `--smoke` runs two benchmarks only.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/support/FaultInjection.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

constexpr size_t kMembers = 8;
constexpr uint64_t kBaseGen = 100;
const size_t kSweep[] = {0, 2, 4, 6, 8};

/// One clean member text: the corpus cu profile re-stamped to \p Gen.
std::string stampedCsv(const CodeProfile &Cu, uint64_t Gen) {
  CodeProfile P = Cu;
  P.Header.Generation = Gen;
  return P.toCsv();
}

/// The 8-member set with the first \p Damaged members faulted. The kind
/// cycle contains only kinds the aggregator quarantines deterministically
/// (a member that *correctly* survives — e.g. an equally-stale fleet —
/// would make the quality curve a statement about luck, not the ladder).
std::vector<MemberProfile> memberSet(const CodeProfile &Cu, size_t Damaged,
                                     uint64_t Seed) {
  const MemberFault Kinds[] = {
      MemberFault::TruncateCsv, MemberFault::VersionSkew,
      MemberFault::StaleGeneration, MemberFault::CoverageCollapse};
  FaultInjector Inj(Seed);
  std::vector<MemberProfile> Members;
  for (size_t I = 0; I < kMembers; ++I) {
    std::string Text = stampedCsv(Cu, kBaseGen + I);
    if (I < Damaged)
      Inj.applyMemberFault(Text, Kinds[I % 4], kBaseGen + kMembers - 1);
    Members.push_back(loadMemberProfile("inst" + std::to_string(I), Text));
  }
  return Members;
}

struct Measured {
  uint64_t TextFaults = 0;
  MergeOutcome Outcome = MergeOutcome::NotAttempted;
  size_t Quarantined = 0;
};

Measured measure(Program &P, CodeStrategy Code, const CodeProfile *CodeProf,
                 const std::vector<MemberProfile> *Members,
                 const RunConfig &Run) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = Code;
  Cfg.CodeProf = CodeProf;
  Cfg.CodeMembers = Members;
  NativeImage Img = buildNativeImage(P, Cfg);
  Measured M;
  if (Img.Built.Failed)
    return M;
  RunStats Stats = runImage(Img, Run);
  M.TextFaults = Stats.TextFaults;
  M.Outcome = Img.ProfileDiag.Merge.Outcome;
  M.Quarantined =
      Img.ProfileDiag.Merge.countWithStatus(MergeMemberStatus::Quarantined);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;
  // Demand-fault every page (as in abl_split): readahead batching would
  // alias small layout differences to zero and hide real regressions.
  Run.Paging.ReadaheadPages = 1;

  struct Row {
    std::string Name;
    uint64_t BaselineFaults = 0; ///< Default layout, no profile at all.
    uint64_t SingleFaults = 0;   ///< The one clean instrumented run.
    Measured Sweep[5];           ///< k = 0, 2, 4, 6, 8 damaged members.
    Measured AllDead;            ///< Every member truncated: ladder bottom.
  };
  std::vector<Row> Rows;
  size_t MergedLeSingle = 0;
  bool MonotoneOk = true, NeverWorseThanDefaultOk = true;

  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);

  std::printf("Ablation — fleet profile aggregation, first-run .text faults "
              "(cold cache)\n");
  std::printf("%-12s %9s %9s", "benchmark", "default", "single");
  for (size_t K : kSweep)
    std::printf("   k=%zu", K);
  std::printf("   dead\n");

  uint64_t Seed = 11;
  for (const std::string &Name : Names) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      continue;
    }
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    Row R;
    R.Name = Name;
    R.BaselineFaults =
        measure(*P, CodeStrategy::None, nullptr, nullptr, Run).TextFaults;
    R.SingleFaults =
        measure(*P, CodeStrategy::CuOrder, &Prof.Cu, nullptr, Run).TextFaults;

    std::printf("%-12s %9llu %9llu", Name.c_str(),
                (unsigned long long)R.BaselineFaults,
                (unsigned long long)R.SingleFaults);
    for (size_t S = 0; S < 5; ++S) {
      std::vector<MemberProfile> Members =
          memberSet(Prof.Cu, kSweep[S], Seed + S);
      R.Sweep[S] =
          measure(*P, CodeStrategy::CuOrder, nullptr, &Members, Run);
      std::printf(" %5llu", (unsigned long long)R.Sweep[S].TextFaults);
    }
    {
      // All eight members truncated: nothing survives, the ladder bottoms
      // out on the profile-less default layout.
      FaultInjector Inj(Seed + 5);
      std::vector<MemberProfile> Members;
      for (size_t I = 0; I < kMembers; ++I) {
        std::string Text = stampedCsv(Prof.Cu, kBaseGen + I);
        Inj.applyMemberFault(Text, MemberFault::TruncateCsv, 0);
        Members.push_back(
            loadMemberProfile("inst" + std::to_string(I), Text));
      }
      R.AllDead = measure(*P, CodeStrategy::CuOrder, nullptr, &Members, Run);
      std::printf(" %6llu", (unsigned long long)R.AllDead.TextFaults);
    }
    std::printf("\n");
    Seed += 16;

    // --- The quality contract -----------------------------------------------
    if (R.Sweep[0].TextFaults <= R.SingleFaults)
      ++MergedLeSingle;
    else
      std::fprintf(stderr,
                   "FAIL: %s merged (clean) %llu faults > single %llu\n",
                   Name.c_str(),
                   (unsigned long long)R.Sweep[0].TextFaults,
                   (unsigned long long)R.SingleFaults);
    for (size_t S = 1; S < 5; ++S)
      if (R.Sweep[S].TextFaults < R.Sweep[S - 1].TextFaults) {
        // Degradation must be monotone: more damage, never fewer faults
        // (equality is the expected flat region while quarantine holds).
        MonotoneOk = false;
        std::fprintf(stderr, "FAIL: %s not monotone at k=%zu\n",
                     Name.c_str(), kSweep[S]);
      }
    for (const Measured &M : R.Sweep)
      if (M.TextFaults > R.BaselineFaults) {
        NeverWorseThanDefaultOk = false;
        std::fprintf(stderr,
                     "FAIL: %s degraded below the default layout\n",
                     Name.c_str());
      }
    if (R.AllDead.TextFaults > R.BaselineFaults)
      NeverWorseThanDefaultOk = false;

    Rows.push_back(std::move(R));
  }

  std::printf("\nmerged (0%% damage) <= single clean on %zu of %zu "
              "benchmarks\n",
              MergedLeSingle, Rows.size());
  std::printf("monotone degradation: %s; never worse than default: %s\n",
              MonotoneOk ? "ok" : "VIOLATED",
              NeverWorseThanDefaultOk ? "ok" : "VIOLATED");

  benchjson::writeBenchJson(
      "BENCH_merge.json", "abl_merge", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.member("members", uint64_t(kMembers));
        W.key("benchmarks");
        W.beginArray();
        for (const Row &R : Rows) {
          W.beginObject();
          W.member("name", R.Name);
          W.member("default_text_faults", R.BaselineFaults);
          W.member("single_text_faults", R.SingleFaults);
          W.key("sweep");
          W.beginArray();
          for (size_t S = 0; S < 5; ++S) {
            W.beginObject();
            W.member("damaged", uint64_t(kSweep[S]));
            W.member("text_faults", R.Sweep[S].TextFaults);
            W.member("outcome", mergeOutcomeName(R.Sweep[S].Outcome));
            W.member("quarantined", uint64_t(R.Sweep[S].Quarantined));
            W.endObject();
          }
          W.endArray();
          W.member("all_dead_text_faults", R.AllDead.TextFaults);
          W.member("all_dead_outcome", mergeOutcomeName(R.AllDead.Outcome));
          W.endObject();
        }
        W.endArray();
        W.member("merged_le_single_count", uint64_t(MergedLeSingle));
        W.member("benchmark_count", uint64_t(Rows.size()));
        W.member("monotone_ok", MonotoneOk);
        W.member("never_worse_than_default_ok", NeverWorseThanDefaultOk);
      });
  bool Ok = MergedLeSingle == Rows.size() && MonotoneOk &&
            NeverWorseThanDefaultOk;
  return Ok ? 0 : 1;
}
