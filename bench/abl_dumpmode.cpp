//===- abl_dumpmode.cpp - Ablation: trace buffer-dump modes ----------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sec. 6.1 motivates the second buffer-dump mode: microservice workloads
// are killed with SIGKILL after the first response, so threads never run
// their termination handlers and flush-on-full buffers lose their
// unflushed tails; memory-mapped trace files survive. This ablation runs
// the same instrumented microservice under both modes and compares trace
// completeness and the quality of the resulting cu profile.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/profiling/Analyses.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace nimg;

int main() {
  // (--smoke is accepted implicitly: one workload, two runs — already
  // smoke-sized for the bench-smoke ctest label.)
  BenchmarkSpec Spec = microserviceBenchmark("micronaut");
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P)
    return 1;

  BuildConfig Cfg;
  Cfg.Seed = 77;
  Cfg.Instrumented = true;
  NativeImage Img = buildNativeImage(*P, Cfg);

  std::printf("Ablation — buffer-dump modes under SIGKILL "
              "(micronaut, cu tracing)\n");
  std::printf("%-14s %12s %16s %14s\n", "mode", "traceWords",
              "cuProfileSize", "probeUnits");

  size_t MmapProfile = 0;
  for (DumpMode Mode : {DumpMode::FlushOnFull, DumpMode::MemoryMapped}) {
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::CuOrder;
    TOpts.Dump = Mode;
    RunConfig RC;
    RC.StopAtFirstResponse = true; // SIGKILL after the first response.
    RC.Trace = &TOpts;
    TraceCapture Capture;
    RunStats Stats = runImage(Img, RC, &Capture);
    CodeProfile Profile = analyzeCuOrder(*P, Capture);
    std::printf("%-14s %12zu %16zu %14llu\n",
                Mode == DumpMode::FlushOnFull ? "flush-on-full"
                                              : "memory-mapped",
                Capture.totalWords(), Profile.Sigs.size(),
                (unsigned long long)Stats.ProbeUnits);
    if (Mode == DumpMode::MemoryMapped)
      MmapProfile = Profile.Sigs.size();
  }
  std::printf("\nflush-on-full loses every buffer not yet full at the kill "
              "point; memory-mapped keeps all %zu first-executed CUs "
              "(Sec. 6.1's rationale).\n",
              MmapProfile);
  return 0;
}
