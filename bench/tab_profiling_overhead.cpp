//===- tab_profiling_overhead.cpp - Reproduces Sec. 7.4's numbers ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sec. 7.4: execution-time overhead of the tracing profiler, per
// instrumentation kind. Paper reference — AWFY (flush-on-full dump mode):
// cu 1.21x, method 1.83x, heap 1.36x; microservices (memory-mapped dump
// mode): cu 1.90x, method 3.68x, heap 2.16x. The heap overhead is a single
// number because the emitted instrumentation is the same for all three
// heap-ordering strategies.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"
#include "src/core/Builder.h"

using namespace nimg;
using namespace nimg::benchutil;

namespace {

/// Space cost of the trace itself, per recorded event, for both stream
/// encodings (src/profiling/Trace.h): fixed 8-byte words vs. the
/// LEB128/zigzag delta coding. Sec. 7.4 discusses time overhead only; the
/// space axis decides whether traces from long startup windows fit their
/// buffers, and the delta coding is what makes the memory-mapped dump
/// mode affordable.
struct EncodingCost {
  std::string Mode;
  double RawBytesPerEvent = 0;
  double VarintBytesPerEvent = 0;
  /// Modeled run-time overhead of this capture against the uninstrumented
  /// base run (time / base - 1). The sampled row runs on the uninstrumented
  /// image itself (that is the point of the mode); the instrumented rows
  /// run on the instrumented build, as in production.
  double Overhead = 0;
};

std::vector<EncodingCost> measureEncodingCosts(Program &P,
                                               const RunConfig &Run) {
  std::vector<EncodingCost> Out;
  BuildConfig Cfg;
  Cfg.Seed = 404;
  Cfg.Instrumented = true;
  NativeImage Img = buildNativeImage(P, Cfg);
  if (Img.Built.Failed)
    return Out;
  BuildConfig BaseCfg;
  BaseCfg.Seed = 404;
  NativeImage BaseImg = buildNativeImage(P, BaseCfg);
  if (BaseImg.Built.Failed)
    return Out;
  double BaseNs = runImage(BaseImg, Run).TimeNs;
  const struct {
    TraceMode Mode;
    const char *Name;
  } Modes[] = {{TraceMode::CuOrder, "cu"},
               {TraceMode::MethodOrder, "method"},
               {TraceMode::HeapOrder, "heap"},
               {TraceMode::Sampled, "sampled"}};
  for (const auto &M : Modes) {
    EncodingCost C;
    C.Mode = M.Name;
    const NativeImage &RunImg =
        M.Mode == TraceMode::Sampled ? BaseImg : Img;
    for (TraceEncoding Enc :
         {TraceEncoding::Raw, TraceEncoding::VarintDelta}) {
      TraceOptions TOpts;
      TOpts.Mode = M.Mode;
      TOpts.Encoding = Enc;
      RunConfig RC = Run;
      RC.Trace = &TOpts;
      TraceCapture Capture;
      RunStats Stats = runImage(RunImg, RC, &Capture);
      double PerEvent =
          Capture.totalWords() == 0
              ? 0.0
              : double(Capture.totalBytes()) / double(Capture.totalWords());
      (Enc == TraceEncoding::Raw ? C.RawBytesPerEvent
                                 : C.VarintBytesPerEvent) = PerEvent;
      if (Enc == TraceEncoding::Raw && BaseNs > 0)
        C.Overhead = Stats.TimeNs / BaseNs - 1.0;
    }
    Out.push_back(C);
  }
  return Out;
}

} // namespace

static void writeSuiteJson(obs::JsonWriter &W,
                           const std::vector<BenchmarkEval> &Evals) {
  std::vector<double> Cu, Method, Heap;
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkEval &E : Evals) {
    W.beginObject();
    W.member("name", E.Benchmark);
    W.member("cu", E.CuOverhead);
    W.member("method", E.MethodOverhead);
    W.member("heap", E.HeapOverhead);
    W.endObject();
    Cu.push_back(E.CuOverhead);
    Method.push_back(E.MethodOverhead);
    Heap.push_back(E.HeapOverhead);
  }
  W.endArray();
  W.key("geomean");
  W.beginObject();
  W.member("cu", geomean(Cu));
  W.member("method", geomean(Method));
  W.member("heap", geomean(Heap));
  W.endObject();
}

static void printSuite(const char *Title,
                       const std::vector<BenchmarkEval> &Evals) {
  std::printf("%s\n", Title);
  std::printf("%-12s %10s %10s %10s\n", "benchmark", "cu", "method", "heap");
  std::vector<double> Cu, Method, Heap;
  for (const BenchmarkEval &E : Evals) {
    std::printf("%-12s %10.2f %10.2f %10.2f\n", E.Benchmark.c_str(),
                E.CuOverhead, E.MethodOverhead, E.HeapOverhead);
    Cu.push_back(E.CuOverhead);
    Method.push_back(E.MethodOverhead);
    Heap.push_back(E.HeapOverhead);
  }
  std::printf("%-12s %10.2f %10.2f %10.2f\n\n", "geomean", geomean(Cu),
              geomean(Method), geomean(Heap));
}

int main(int Argc, char **Argv) {
  bool Smoke = smokeMode(Argc, Argv);
  EvalOptions Opts = defaultOptions();
  std::printf("Sec. 7.4 — tracing-profiler execution-time overhead "
              "(instrumented / baseline)\n\n");

  std::vector<std::string> AwfyNames = awfyBenchmarkNames();
  std::vector<std::string> MicroNames = microserviceNames();
  applySmoke(Smoke, AwfyNames, Opts);
  applySmoke(Smoke, MicroNames, Opts, /*Keep=*/1);

  std::vector<BenchmarkEval> Awfy =
      evaluateSuite(AwfyNames, /*Microservices=*/false, Opts);
  printSuite("AWFY (buffer dump mode: flush on full / at termination)",
             Awfy);

  std::vector<BenchmarkEval> Micro =
      evaluateSuite(MicroNames, /*Microservices=*/true, Opts);
  printSuite("microservices (buffer dump mode: memory-mapped trace files)",
             Micro);

  // Space overhead of the trace stream itself, per recorded event.
  const char *CostBench = Smoke ? "Bounce" : "Richards";
  std::vector<std::string> Errors;
  std::unique_ptr<Program> CostP =
      compileBenchmark(awfyBenchmark(CostBench), Errors);
  std::vector<EncodingCost> Costs;
  if (CostP) {
    RunConfig Run;
    Costs = measureEncodingCosts(*CostP, Run);
    std::printf("trace bytes per event (AWFY %s; raw = fixed 8-byte "
                "words, varint = LEB128 zigzag deltas; overhead = modeled "
                "run time / uninstrumented base - 1)\n",
                CostBench);
    std::printf("%-12s %10s %10s %10s %10s\n", "tracing", "raw", "varint",
                "ratio", "overhead");
    for (const EncodingCost &C : Costs)
      std::printf("%-12s %10.2f %10.2f %9.1fx %9.2f%%\n", C.Mode.c_str(),
                  C.RawBytesPerEvent, C.VarintBytesPerEvent,
                  C.VarintBytesPerEvent == 0
                      ? 1.0
                      : C.RawBytesPerEvent / C.VarintBytesPerEvent,
                  C.Overhead * 100.0);
    std::printf("\n");
  }

  bool Ok = benchjson::writeBenchJson(
      "BENCH_overhead.json", "tab_overhead", [&](obs::JsonWriter &W) {
        W.member("seeds", uint64_t(Opts.Seeds));
        W.member("smoke", Smoke);
        W.key("awfy");
        W.beginObject();
        writeSuiteJson(W, Awfy);
        W.endObject();
        W.key("microservices");
        W.beginObject();
        writeSuiteJson(W, Micro);
        W.endObject();
        W.key("trace_bytes_per_event");
        W.beginArray();
        for (const EncodingCost &C : Costs) {
          W.beginObject();
          W.member("tracing", C.Mode);
          W.member("raw", C.RawBytesPerEvent);
          W.member("varint_delta", C.VarintBytesPerEvent);
          W.member("overhead", C.Overhead);
          W.endObject();
        }
        W.endArray();
      });
  return Ok ? 0 : 1;
}
