//===- tab_profiling_overhead.cpp - Reproduces Sec. 7.4's numbers ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sec. 7.4: execution-time overhead of the tracing profiler, per
// instrumentation kind. Paper reference — AWFY (flush-on-full dump mode):
// cu 1.21x, method 1.83x, heap 1.36x; microservices (memory-mapped dump
// mode): cu 1.90x, method 3.68x, heap 2.16x. The heap overhead is a single
// number because the emitted instrumentation is the same for all three
// heap-ordering strategies.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace nimg;
using namespace nimg::benchutil;

static void writeSuiteJson(obs::JsonWriter &W,
                           const std::vector<BenchmarkEval> &Evals) {
  std::vector<double> Cu, Method, Heap;
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkEval &E : Evals) {
    W.beginObject();
    W.member("name", E.Benchmark);
    W.member("cu", E.CuOverhead);
    W.member("method", E.MethodOverhead);
    W.member("heap", E.HeapOverhead);
    W.endObject();
    Cu.push_back(E.CuOverhead);
    Method.push_back(E.MethodOverhead);
    Heap.push_back(E.HeapOverhead);
  }
  W.endArray();
  W.key("geomean");
  W.beginObject();
  W.member("cu", geomean(Cu));
  W.member("method", geomean(Method));
  W.member("heap", geomean(Heap));
  W.endObject();
}

static void printSuite(const char *Title,
                       const std::vector<BenchmarkEval> &Evals) {
  std::printf("%s\n", Title);
  std::printf("%-12s %10s %10s %10s\n", "benchmark", "cu", "method", "heap");
  std::vector<double> Cu, Method, Heap;
  for (const BenchmarkEval &E : Evals) {
    std::printf("%-12s %10.2f %10.2f %10.2f\n", E.Benchmark.c_str(),
                E.CuOverhead, E.MethodOverhead, E.HeapOverhead);
    Cu.push_back(E.CuOverhead);
    Method.push_back(E.MethodOverhead);
    Heap.push_back(E.HeapOverhead);
  }
  std::printf("%-12s %10.2f %10.2f %10.2f\n\n", "geomean", geomean(Cu),
              geomean(Method), geomean(Heap));
}

int main() {
  EvalOptions Opts = defaultOptions();
  std::printf("Sec. 7.4 — tracing-profiler execution-time overhead "
              "(instrumented / baseline)\n\n");

  std::vector<BenchmarkEval> Awfy =
      evaluateSuite(awfyBenchmarkNames(), /*Microservices=*/false, Opts);
  printSuite("AWFY (buffer dump mode: flush on full / at termination)",
             Awfy);

  std::vector<BenchmarkEval> Micro =
      evaluateSuite(microserviceNames(), /*Microservices=*/true, Opts);
  printSuite("microservices (buffer dump mode: memory-mapped trace files)",
             Micro);

  benchjson::writeBenchJson(
      "BENCH_overhead.json", "tab_overhead", [&](obs::JsonWriter &W) {
        W.member("seeds", uint64_t(Opts.Seeds));
        W.key("awfy");
        W.beginObject();
        writeSuiteJson(W, Awfy);
        W.endObject();
        W.key("microservices");
        W.beginObject();
        writeSuiteJson(W, Micro);
        W.endObject();
      });
  return 0;
}
