//===- fleet_storm.cpp - Fleet cold-start storm: layout value at scale ------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Quantifies what layout optimization is worth at fleet scale: for each
// AWFY benchmark, builds a ladder of layout variants (cu / method /
// cluster / cu+split / cluster+split / cluster+split+exttsp), records one
// cold reference run per variant, and replays it through the fleet serving
// simulator at 1 / 10 / 100 / 1000 concurrent instances under a storm
// arrival profile with a shared fork/COW page cache. Reports p50/p99
// simulated cold-start, fleet-wide majors vs unique pages, and the
// warm-hit ratio per (variant, fleet size). Results land in
// BENCH_fleet.json.
//
// Enforced invariants (violations fail the driver):
//   - at N=1 the fleet's major-fault count equals the single-run PagingSim
//     fault count exactly, for every (benchmark, variant);
//   - warm-hit ratio > 0 at every N >= 10;
//   - suite geomean p99 cold-start at N=100 strictly decreases from
//     --code cu to --code cluster --split hotcold --blocks exttsp.
//     (Per-benchmark, not every workload wins: hot/cold splitting costs
//     faults on a few AWFY programs — e.g. Towers — and PEA elision varies
//     with the build fingerprint, so the ladder is asserted suite-wide and
//     the per-benchmark deltas are reported in the JSON.)
//
// `--smoke` runs two benchmarks only (CI sanity of the harness + JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/fleet/FleetSim.h"
#include "src/workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct VariantDef {
  const char *Name;
  CodeStrategy Code;
  bool Split;
  bool ExtTsp;
};

const VariantDef Variants[] = {
    {"cu", CodeStrategy::CuOrder, false, false},
    {"method", CodeStrategy::MethodOrder, false, false},
    {"cluster", CodeStrategy::Cluster, false, false},
    {"cu_split", CodeStrategy::CuOrder, true, false},
    {"cluster_split", CodeStrategy::Cluster, true, false},
    {"cluster_split_exttsp", CodeStrategy::Cluster, true, true},
};
constexpr size_t NumVariants = sizeof(Variants) / sizeof(Variants[0]);

const uint32_t FleetSizes[] = {1, 10, 100, 1000};
constexpr size_t NumSizes = sizeof(FleetSizes) / sizeof(FleetSizes[0]);

/// One reference run for one (benchmark, variant): build + cold recorded
/// run. simulateFleet() replays it per fleet size without re-interpreting.
struct Reference {
  RunStats Stats;
  uint64_t TextSize = 0;
  uint64_t HeapSize = 0;
  bool Ok = false;
};

Reference record(Program &P, const VariantDef &V,
                 const CollectedProfiles &Prof, const RunConfig &Run) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = V.Code;
  Cfg.CodeProf = V.Code == CodeStrategy::CuOrder
                     ? &Prof.Cu
                     : V.Code == CodeStrategy::MethodOrder ? &Prof.Method
                                                          : &Prof.Cluster;
  if (V.Split) {
    Cfg.Split = SplitMode::HotCold;
    Cfg.BlockProf = &Prof.Blocks;
    if (V.ExtTsp) {
      Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
      Cfg.EdgeProf = &Prof.Edges;
    }
  }
  NativeImage Img = buildNativeImage(P, Cfg);
  Reference R;
  if (Img.Built.Failed)
    return R;
  RunConfig RefCfg = Run;
  RefCfg.RecordTouches = true;
  RefCfg.ColdCache = true;
  R.Stats = runImage(Img, RefCfg);
  R.TextSize = Img.Layout.TextSize;
  R.HeapSize = Img.Layout.HeapSize;
  R.Ok = true;
  return R;
}

double geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs)
    LogSum += std::log(X);
  return std::exp(LogSum / double(Xs.size()));
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;
  // Same geometry as abl_split/abl_exttsp: demand-fault every page so the
  // layout effect isn't aliased away by readahead batching.
  Run.Paging.ReadaheadPages = 1;

  // A dense storm: four bursts across 20 ms, so instances of a burst
  // overlap the few-ms cold start and leapfrog through the fault trace.
  FleetConfig Storm;
  Storm.Arrivals = ArrivalKind::Storm;
  Storm.ArrivalWindowNs = 20e6;
  Storm.StormBursts = 4;

  struct Cell {
    FleetResult R;
  };
  struct Row {
    std::string Name;
    uint64_t RefFaults[NumVariants] = {};
    double RefTimeNs[NumVariants] = {};
    Cell Cells[NumVariants][NumSizes];
  };
  std::vector<Row> Rows;
  bool N1Ok = true, WarmOk = true, P99Ok = true;

  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);

  std::printf("Fleet cold-start storm — layout value at 1/10/100/1000 "
              "instances (storm arrivals, shared COW cache)\n");
  std::printf("%-12s %-22s %8s %11s %11s %8s\n", "benchmark", "variant",
              "majors", "p99@100/ms", "p99@1/ms", "warm%");

  for (const std::string &Name : Names) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      continue;
    }
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    Row R;
    R.Name = Name;
    for (size_t V = 0; V < NumVariants; ++V) {
      Reference Ref = record(*P, Variants[V], Prof, Run);
      if (!Ref.Ok) {
        std::fprintf(stderr, "FAIL: %s/%s build failed\n", Name.c_str(),
                     Variants[V].Name);
        N1Ok = false;
        continue;
      }
      R.RefFaults[V] = Ref.Stats.totalFaults();
      R.RefTimeNs[V] = Ref.Stats.TimeNs;
      for (size_t S = 0; S < NumSizes; ++S) {
        FleetConfig FC = Storm;
        FC.Instances = FleetSizes[S];
        FleetResult FR = simulateFleet(Ref.Stats, Ref.TextSize, Ref.HeapSize,
                                       Run.Paging, Run.Cost, FC);
        if (FleetSizes[S] == 1 && FR.TotalMajors != R.RefFaults[V]) {
          N1Ok = false;
          std::fprintf(stderr,
                       "FAIL: %s/%s fleet N=1 majors %llu != single-run "
                       "faults %llu\n",
                       Name.c_str(), Variants[V].Name,
                       (unsigned long long)FR.TotalMajors,
                       (unsigned long long)R.RefFaults[V]);
        }
        if (FleetSizes[S] >= 10 && !(FR.warmHitRatio() > 0.0)) {
          WarmOk = false;
          std::fprintf(stderr, "FAIL: %s/%s warm-hit ratio 0 at N=%u\n",
                       Name.c_str(), Variants[V].Name, FleetSizes[S]);
        }
        R.Cells[V][S].R = std::move(FR);
      }
      const FleetResult &At100 = R.Cells[V][2].R;
      std::printf("%-12s %-22s %8llu %11.2f %11.2f %7.1f%%\n", Name.c_str(),
                  Variants[V].Name, (unsigned long long)At100.TotalMajors,
                  At100.P99Ns / 1e6, R.Cells[V][0].R.P99Ns / 1e6,
                  At100.warmHitRatio() * 100.0);
    }
    Rows.push_back(std::move(R));
  }

  // Fleet-wide view: geomean p99 per variant at each fleet size.
  std::printf("\ngeomean p99 cold-start (ms) by fleet size:\n");
  std::printf("%-22s", "variant");
  for (size_t S = 0; S < NumSizes; ++S)
    std::printf(" %7u", FleetSizes[S]);
  std::printf("\n");
  double GeoP99[NumVariants][NumSizes] = {};
  for (size_t V = 0; V < NumVariants; ++V) {
    std::printf("%-22s", Variants[V].Name);
    for (size_t S = 0; S < NumSizes; ++S) {
      std::vector<double> Xs;
      for (const Row &R : Rows)
        Xs.push_back(R.Cells[V][S].R.P99Ns);
      GeoP99[V][S] = geomean(Xs);
      std::printf(" %7.2f", GeoP99[V][S] / 1e6);
    }
    std::printf("\n");
  }

  // The acceptance ladder: across the suite, the fully optimized layout
  // must strictly beat plain cu ordering at the p99 of a 100-instance
  // storm. Suite geomean, not per-benchmark — hot/cold splitting costs
  // faults on a few workloads and that is worth seeing, not asserting
  // away.
  double GeoCu = GeoP99[0][2];
  double GeoFull = GeoP99[NumVariants - 1][2];
  if (!Rows.empty() && !(GeoFull < GeoCu)) {
    P99Ok = false;
    std::fprintf(stderr,
                 "FAIL: suite geomean p99@100 cluster_split_exttsp %.4f ms "
                 "not strictly below cu %.4f ms\n",
                 GeoFull / 1e6, GeoCu / 1e6);
  }

  benchjson::writeBenchJson(
      "BENCH_fleet.json", "fleet_storm", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.member("arrivals", "storm");
        W.member("arrival_window_ns", Storm.ArrivalWindowNs);
        W.member("storm_bursts", uint64_t(Storm.StormBursts));
        W.key("benchmarks");
        W.beginArray();
        for (const Row &R : Rows) {
          W.beginObject();
          W.member("name", R.Name);
          for (size_t V = 0; V < NumVariants; ++V) {
            std::string Prefix = Variants[V].Name;
            W.member(Prefix + "_single_run_faults", R.RefFaults[V]);
            W.member(Prefix + "_single_run_time_ns", R.RefTimeNs[V]);
            for (size_t S = 0; S < NumSizes; ++S) {
              const FleetResult &FR = R.Cells[V][S].R;
              std::string Key =
                  Prefix + "_n" + std::to_string(FleetSizes[S]);
              W.member(Key + "_majors", FR.TotalMajors);
              W.member(Key + "_warm_hits", FR.TotalWarmHits);
              W.member(Key + "_unique_pages", FR.UniquePages);
              W.member(Key + "_warm_hit_permille",
                       uint64_t(FR.warmHitRatio() * 1000.0));
              W.member(Key + "_p50_ns", FR.P50Ns);
              W.member(Key + "_p99_ns", FR.P99Ns);
              W.member(Key + "_mean_ns", FR.MeanNs);
            }
          }
          W.endObject();
        }
        W.endArray();
        W.member("benchmark_count", uint64_t(Rows.size()));
        for (size_t V = 0; V < NumVariants; ++V)
          for (size_t S = 0; S < NumSizes; ++S)
            W.member(std::string("geomean_p99_") + Variants[V].Name + "_n" +
                         std::to_string(FleetSizes[S]) + "_ns",
                     GeoP99[V][S]);
        W.member("n1_exact", N1Ok);
        W.member("warm_hits_ok", WarmOk);
        W.member("p99_ladder_ok", P99Ok);
      });

  if (N1Ok && WarmOk && P99Ok)
    std::printf("\nfleet invariants hold: N=1 exact, warm hits > 0, suite "
                "geomean p99 ladder strict over %zu benchmark(s)\n",
                Rows.size());
  return (N1Ok && WarmOk && P99Ok) ? 0 : 1;
}
