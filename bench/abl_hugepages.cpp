//===- abl_hugepages.cpp - Ablation: the --huge-pages budget ----------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sweeps the multi-size page budget (--huge-pages 0/1/2/4) across the 14
// AWFY benchmarks for three layouts (cu, cluster, cluster+split+exttsp)
// and records modeled first-run startup per point in BENCH_hugepages.json.
// The driver also enforces the lane's invariants: a zero budget is
// byte-identical to a build without the flag (image bytes, majors AND
// TimeNs), total .text majors never increase under any budget (the huge
// region only collapses faults), and for the cluster layouts the best
// budget strictly beats budget 0 on most of the suite (a 2 MiB fault costs
// 284.4 us vs 80 us, so the region pays off once it absorbs >= 4 small
// cluster faults).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct StratSpec {
  const char *Key;
  CodeStrategy Code;
  bool Split;
  bool ExtTsp;
  bool IsCluster; ///< Participates in the strict-win gate.
};

const StratSpec kStrategies[] = {
    {"cu", CodeStrategy::CuOrder, false, false, false},
    {"cluster", CodeStrategy::Cluster, false, false, true},
    {"cluster_split_exttsp", CodeStrategy::Cluster, true, true, true},
};

struct BudgetPoint {
  uint32_t Requested = 0;
  uint32_t Effective = 0;
  uint64_t RegionSize = 0;
  uint64_t TextFaults = 0;
  uint64_t TextHugeFaults = 0;
  double TimeNs = 0;
};

struct StratResult {
  std::string Key;
  BudgetPoint Zero;
  std::vector<BudgetPoint> Budgets; // 1, 2, 4
  bool ZeroIdentity = false;  ///< Rebuild at budget 0 == baseline, bytewise.
  bool MajorsNeverIncrease = true;
  uint32_t BestBudget = 0;
  double BestTimeNs = 0;
  bool StrictTimeWin = false;
};

BuildConfig makeCfg(const StratSpec &S, const CollectedProfiles &Prof,
                    uint32_t HugePages) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = S.Code;
  Cfg.CodeProf =
      S.Code == CodeStrategy::CuOrder ? &Prof.Cu : &Prof.Cluster;
  if (S.Split) {
    Cfg.Split = SplitMode::HotCold;
    Cfg.BlockProf = &Prof.Blocks;
    if (S.ExtTsp) {
      Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
      Cfg.EdgeProf = &Prof.Edges;
    }
  }
  Cfg.Image.HugePages = HugePages;
  return Cfg;
}

} // namespace

int main(int Argc, char **Argv) {
  // --smoke: two benchmarks, budgets {0, 1} — harness + JSON + invariant
  // sanity for the bench-smoke ctest label.
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  RunConfig Run;

  std::vector<uint32_t> Budgets = {1u, 2u, 4u};
  if (Smoke)
    Budgets = {1u};
  std::vector<std::string> Names = awfyBenchmarkNames();
  if (Smoke && Names.size() > 2)
    Names.resize(2);

  std::printf("Ablation — huge-page budget sweep (modeled first-run "
              "startup, ns)\n");
  std::printf("%-12s %-22s %12s %12s %8s %10s\n", "benchmark", "strategy",
              "time@0", "best time", "budget", "strict win");

  struct BenchRow {
    std::string Name;
    std::vector<StratResult> Strats;
  };
  std::vector<BenchRow> Rows;
  size_t ClusterStrictWins = 0, ClusterEntries = 0;
  bool AllZeroIdentity = true, AllMajorsOk = true;

  for (const std::string &Name : Names) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(awfyBenchmark(Name), Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      continue;
    }
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    BenchRow Row;
    Row.Name = Name;
    for (const StratSpec &S : kStrategies) {
      StratResult R;
      R.Key = S.Key;

      NativeImage Base = buildNativeImage(*P, makeCfg(S, Prof, 0));
      if (Base.Built.Failed)
        continue;
      RunStats BaseStats = runImage(Base, Run);
      R.Zero = {0, 0, 0, BaseStats.TextFaults, BaseStats.TextHugeFaults,
                BaseStats.TimeNs};

      // Budget-0 identity: an explicit zero budget must be byte-identical
      // to the baseline — same image bytes, same majors, same TimeNs.
      NativeImage Zero = buildNativeImage(*P, makeCfg(S, Prof, 0));
      RunStats ZeroStats = runImage(Zero, Run);
      R.ZeroIdentity = serializeImage(*P, Zero) == serializeImage(*P, Base) &&
                       ZeroStats.TextFaults == BaseStats.TextFaults &&
                       ZeroStats.totalFaults() == BaseStats.totalFaults() &&
                       ZeroStats.TimeNs == BaseStats.TimeNs &&
                       ZeroStats.TextHugeFaults == 0;
      AllZeroIdentity = AllZeroIdentity && R.ZeroIdentity;

      R.BestTimeNs = BaseStats.TimeNs;
      for (uint32_t B : Budgets) {
        NativeImage Img = buildNativeImage(*P, makeCfg(S, Prof, B));
        RunStats Stats = runImage(Img, Run);
        BudgetPoint Pt = {B,
                          Img.Layout.HugePages,
                          Img.Layout.HugeRegionSize,
                          Stats.TextFaults,
                          Stats.TextHugeFaults,
                          Stats.TimeNs};
        if (Stats.TextFaults > BaseStats.TextFaults)
          R.MajorsNeverIncrease = false;
        if (Stats.TimeNs < R.BestTimeNs) {
          R.BestTimeNs = Stats.TimeNs;
          R.BestBudget = B;
        }
        R.Budgets.push_back(Pt);
      }
      AllMajorsOk = AllMajorsOk && R.MajorsNeverIncrease;
      R.StrictTimeWin = R.BestTimeNs < R.Zero.TimeNs;
      if (S.IsCluster) {
        ++ClusterEntries;
        if (R.StrictTimeWin)
          ++ClusterStrictWins;
      }
      std::printf("%-12s %-22s %12.0f %12.0f %8u %10s\n", Name.c_str(), S.Key,
                  R.Zero.TimeNs, R.BestTimeNs, R.BestBudget,
                  R.StrictTimeWin ? "yes" : "no");
      Row.Strats.push_back(std::move(R));
    }
    Rows.push_back(std::move(Row));
  }

  std::printf("\nzero-budget identity: %s; .text majors never increase: %s\n",
              AllZeroIdentity ? "all" : "VIOLATED",
              AllMajorsOk ? "all" : "VIOLATED");
  std::printf("cluster-layout strict time wins at best budget: %zu of %zu\n",
              ClusterStrictWins, ClusterEntries);

  bool Ok = benchjson::writeBenchJson(
      "BENCH_hugepages.json", "abl_hugepages", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.key("benchmarks");
        W.beginArray();
        for (const BenchRow &Row : Rows) {
          W.beginObject();
          W.member("name", Row.Name);
          W.key("strategies");
          W.beginArray();
          for (const StratResult &R : Row.Strats) {
            W.beginObject();
            W.member("strategy", R.Key);
            W.member("time_ns_at_0", R.Zero.TimeNs);
            W.member("text_faults_at_0", R.Zero.TextFaults);
            W.member("zero_budget_identity", R.ZeroIdentity);
            W.member("majors_never_increase", R.MajorsNeverIncrease);
            W.member("best_budget", uint64_t(R.BestBudget));
            W.member("best_time_ns", R.BestTimeNs);
            W.member("strict_time_win", R.StrictTimeWin);
            W.key("budgets");
            W.beginArray();
            for (const BudgetPoint &Pt : R.Budgets) {
              W.beginObject();
              W.member("requested", uint64_t(Pt.Requested));
              W.member("effective_huge_pages", uint64_t(Pt.Effective));
              W.member("huge_region_size", Pt.RegionSize);
              W.member("text_faults", Pt.TextFaults);
              W.member("text_huge_faults", Pt.TextHugeFaults);
              W.member("time_ns", Pt.TimeNs);
              W.endObject();
            }
            W.endArray();
            W.endObject();
          }
          W.endArray();
          W.endObject();
        }
        W.endArray();
        W.member("cluster_strict_wins", uint64_t(ClusterStrictWins));
        W.member("cluster_entries", uint64_t(ClusterEntries));
        W.member("zero_identity_all", AllZeroIdentity);
        W.member("majors_never_increase_all", AllMajorsOk);
      });

  // The invariants are hard gates; the strict-win threshold (>= 12 of 14
  // per cluster layout, i.e. 6/7 of the cluster entries) only applies to
  // the full sweep — a 2-benchmark smoke is not a statistical sample.
  if (!Ok || !AllZeroIdentity || !AllMajorsOk)
    return 1;
  if (!Smoke && ClusterEntries > 0 &&
      ClusterStrictWins * 7 < ClusterEntries * 6)
    return 1;
  return 0;
}
