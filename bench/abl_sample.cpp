//===- abl_sample.cpp - Ablation: sampled vs instrumented capture -----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// The case for the sampling profiler (--profile-mode sampled), on the 14
// AWFY benchmarks plus the three microservices:
//
//   (i)  capture cost — modeled run-time overhead of a sampled capture
//        (periodic samples on the *uninstrumented* production image) per
//        sample period, against the instrumented cu-mode trace run. At
//        the default period the sampled overhead must be at least 10x
//        lower (geomean across all workloads).
//
//   (ii) layout fidelity — first-run .text faults of images built from a
//        4-member sampled-merged profile set (staggered sample phases,
//        aggregated through the fleet pipeline) against images built from
//        the single clean instrumented run, for all three --code
//        strategies. Sampled-merged must land within 10% of the
//        instrumented layout on all but at most two AWFY benchmarks per
//        strategy.
//
// Results land in BENCH_sample.json. `--smoke` keeps two AWFY benchmarks
// and one microservice.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"
#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

using namespace nimg;

namespace {

const uint64_t kPeriods[] = {512, TraceOptions::DefaultSamplePeriod, 8192};
constexpr size_t kNumPeriods = sizeof(kPeriods) / sizeof(kPeriods[0]);
constexpr size_t kDefaultIdx = 1;
/// Fleet size of the sampled-merged profile set; member i samples with
/// phase i * period / kFleet so the set covers the whole period.
constexpr size_t kFleet = 4;
constexpr uint64_t kBaseGen = 100;
/// Floor on the overhead denominator: a sampled run whose modeled cost
/// rounds to zero still yields a finite (and huge) ratio.
constexpr double kMinOverhead = 1e-4;
/// The fidelity contract: sampled-merged first-run faults within 10% of
/// the single instrumented run's layout.
constexpr double kFaultSlack = 1.10;

struct SampledPoint {
  uint64_t Period = 0;
  double OverheadFrac = 0; ///< time / base - 1
  uint64_t Samples = 0;
  uint64_t Skipped = 0;
  uint32_t CoveragePermille = 0;
};

struct StrategyFaults {
  uint64_t Instrumented = 0;
  uint64_t Sampled = 0;
  MergeOutcome Outcome = MergeOutcome::NotAttempted;
  size_t Quarantined = 0;
  bool Within = false;
};

struct Row {
  std::string Name;
  bool Micro = false;
  double BaseNs = 0;
  double InstrOverheadFrac = 0;
  SampledPoint Sweep[kNumPeriods];
  double RatioAtDefault = 0;
  bool HasFaults = false;
  StrategyFaults Faults[3]; ///< cu, method, cluster
};

const struct {
  CodeStrategy Strategy;
  const char *Name;
} kLegs[3] = {{CodeStrategy::CuOrder, "cu"},
              {CodeStrategy::MethodOrder, "method"},
              {CodeStrategy::Cluster, "cluster"}};

/// Model time of one run: time-to-first-response for microservices,
/// end-to-end otherwise (the paper's measurement convention).
double modelTime(const RunStats &S, bool Micro) {
  return Micro && S.Responded ? S.TimeToFirstResponseNs : S.TimeNs;
}

uint64_t measureFaults(Program &P, CodeStrategy Code,
                       const CodeProfile *CodeProf,
                       const std::vector<MemberProfile> *Members,
                       const RunConfig &Run, MergeOutcome *OutcomeOut,
                       size_t *QuarantinedOut) {
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = Code;
  Cfg.CodeProf = CodeProf;
  Cfg.CodeMembers = Members;
  NativeImage Img = buildNativeImage(P, Cfg);
  if (OutcomeOut)
    *OutcomeOut = Img.ProfileDiag.Merge.Outcome;
  if (QuarantinedOut)
    *QuarantinedOut =
        Img.ProfileDiag.Merge.countWithStatus(MergeMemberStatus::Quarantined);
  if (Img.Built.Failed)
    return 0;
  return runImage(Img, Run).TextFaults;
}

bool evalWorkload(const std::string &Name, bool Micro, const RunConfig &RunBase,
                  const RunConfig &RunFault, Row &R) {
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(
      Micro ? microserviceBenchmark(Name) : awfyBenchmark(Name), Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return false;
  }
  R.Name = Name;
  R.Micro = Micro;

  // The production image the sampler attaches to: uninstrumented, so the
  // sampled capture sees the real geometry (no probe-inflated inlining).
  BuildConfig BaseCfg;
  BaseCfg.Seed = 1;
  NativeImage BaseImg = buildNativeImage(*P, BaseCfg);
  if (BaseImg.Built.Failed)
    return false;

  RunConfig RC = RunBase;
  RC.StopAtFirstResponse = Micro;
  R.BaseNs = modelTime(runImage(BaseImg, RC), Micro);
  if (R.BaseNs <= 0)
    return false;

  // (i) Sampled capture cost per period, on the same image as the base
  // run — the only delta is the sampler itself.
  for (size_t I = 0; I < kNumPeriods; ++I) {
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::Sampled;
    TOpts.SamplePeriod = kPeriods[I];
    TOpts.Dump = Micro ? DumpMode::MemoryMapped : DumpMode::FlushOnFull;
    RunConfig TRC = RC;
    TRC.Trace = &TOpts;
    RunStats S = runImage(BaseImg, TRC);
    R.Sweep[I].Period = kPeriods[I];
    R.Sweep[I].OverheadFrac = modelTime(S, Micro) / R.BaseNs - 1.0;
    R.Sweep[I].Samples = S.SamplesTaken;
    R.Sweep[I].Skipped = S.SampleEventsSkipped;
    R.Sweep[I].CoveragePermille = S.SampleCoveragePermille;
  }

  // Instrumented capture cost: the cu-mode trace run (the *cheapest* of
  // the instrumented modes, so the reported ratio is conservative) on the
  // instrumented build, against the same uninstrumented base time.
  {
    BuildConfig ICfg;
    ICfg.Seed = 1;
    ICfg.Instrumented = true;
    NativeImage InstrImg = buildNativeImage(*P, ICfg);
    if (InstrImg.Built.Failed)
      return false;
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::CuOrder;
    TOpts.Dump = Micro ? DumpMode::MemoryMapped : DumpMode::FlushOnFull;
    RunConfig TRC = RC;
    TRC.Trace = &TOpts;
    R.InstrOverheadFrac = modelTime(runImage(InstrImg, TRC), Micro) / R.BaseNs - 1.0;
  }
  R.RatioAtDefault =
      std::max(R.InstrOverheadFrac, 0.0) /
      std::max(R.Sweep[kDefaultIdx].OverheadFrac, kMinOverhead);

  if (Micro)
    return true;

  // (ii) Layout fidelity, AWFY only: a 4-member sampled fleet (staggered
  // phases, default period) aggregated through the merge pipeline, vs the
  // single clean instrumented run. Each capture yields both a cu- and a
  // method-granularity member; both sets round-trip through CSV so the
  // sampled v2 header cells are exercised end to end.
  uint64_t Fp = programFingerprint(*P);
  std::vector<MemberProfile> CuMembers, MethodMembers;
  for (size_t I = 0; I < kFleet; ++I) {
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::Sampled;
    TOpts.SamplePeriod = kPeriods[kDefaultIdx];
    TOpts.SamplePhase = I * TOpts.SamplePeriod / kFleet;
    RunConfig TRC = RC;
    TRC.Trace = &TOpts;
    TraceCapture Cap;
    RunStats S = runImage(BaseImg, TRC, &Cap);
    CodeProfile Pc = analyzeSampledCuOrder(*P, Cap);
    CodeProfile Pm = analyzeSampledMethodOrder(*P, Cap);
    for (CodeProfile *Q : {&Pc, &Pm}) {
      Q->Header.Fingerprint = Fp;
      Q->Header.Generation = kBaseGen + I;
      Q->Header.CoveragePermille =
          std::min(Q->Header.CoveragePermille, S.SampleCoveragePermille);
    }
    std::string MemberName = "samp" + std::to_string(I);
    CuMembers.push_back(loadMemberProfile(MemberName, Pc.toCsv()));
    MethodMembers.push_back(loadMemberProfile(MemberName, Pm.toCsv()));
  }

  BuildConfig ProfCfg;
  ProfCfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(*P, ProfCfg, RunFault);
  const CodeProfile *InstrProfs[3] = {&Prof.Cu, &Prof.Method, &Prof.Cluster};

  R.HasFaults = true;
  for (size_t L = 0; L < 3; ++L) {
    StrategyFaults &F = R.Faults[L];
    F.Instrumented = measureFaults(*P, kLegs[L].Strategy, InstrProfs[L],
                                   nullptr, RunFault, nullptr, nullptr);
    const std::vector<MemberProfile> *Members =
        kLegs[L].Strategy == CodeStrategy::MethodOrder ? &MethodMembers
                                                       : &CuMembers;
    F.Sampled = measureFaults(*P, kLegs[L].Strategy, nullptr, Members,
                              RunFault, &F.Outcome, &F.Quarantined);
    F.Within = double(F.Sampled) <= kFaultSlack * double(F.Instrumented);
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;

  RunConfig RunBase; // capture-overhead runs: default paging
  RunConfig RunFault;
  // Fidelity runs demand-fault every page (as in abl_merge): readahead
  // batching would alias small layout differences to zero.
  RunFault.Paging.ReadaheadPages = 1;

  std::vector<std::string> AwfyNames = awfyBenchmarkNames();
  std::vector<std::string> MicroNames = microserviceNames();
  if (Smoke) {
    if (AwfyNames.size() > 2)
      AwfyNames.resize(2);
    if (MicroNames.size() > 1)
      MicroNames.resize(1);
  }

  std::printf("Ablation — sampled vs instrumented capture\n\n");
  std::printf("modeled capture overhead (time/base - 1)\n");
  std::printf("%-12s %10s", "workload", "instr-cu");
  for (size_t I = 0; I < kNumPeriods; ++I)
    std::printf("   p=%-5llu", (unsigned long long)kPeriods[I]);
  std::printf(" %8s %8s\n", "ratio", "coverage");

  std::vector<Row> Rows;
  auto RunOne = [&](const std::string &Name, bool Micro) {
    Row R;
    if (!evalWorkload(Name, Micro, RunBase, RunFault, R))
      return;
    std::printf("%-12s %9.2f%%", R.Name.c_str(),
                R.InstrOverheadFrac * 100.0);
    for (size_t I = 0; I < kNumPeriods; ++I)
      std::printf("  %6.3f%%", R.Sweep[I].OverheadFrac * 100.0);
    std::printf(" %7.0fx %7u‰\n", R.RatioAtDefault,
                R.Sweep[kDefaultIdx].CoveragePermille);
    Rows.push_back(std::move(R));
  };
  for (const std::string &Name : AwfyNames)
    RunOne(Name, /*Micro=*/false);
  for (const std::string &Name : MicroNames)
    RunOne(Name, /*Micro=*/true);

  std::printf("\nfirst-run .text faults, sampled-merged (%zu members) vs "
              "single instrumented run\n",
              kFleet);
  std::printf("%-12s", "benchmark");
  for (const auto &Leg : kLegs)
    std::printf(" %9s-i %9s-s", Leg.Name, Leg.Name);
  std::printf("\n");
  for (const Row &R : Rows) {
    if (!R.HasFaults)
      continue;
    std::printf("%-12s", R.Name.c_str());
    for (const StrategyFaults &F : R.Faults)
      std::printf(" %11llu %10llu%c", (unsigned long long)F.Instrumented,
                  (unsigned long long)F.Sampled, F.Within ? ' ' : '!');
    std::printf("\n");
  }

  // --- The quality contract -------------------------------------------------
  std::vector<double> Ratios;
  for (const Row &R : Rows)
    Ratios.push_back(std::max(R.RatioAtDefault, 1e-3));
  double GeoRatio = geomean(Ratios);
  bool OverheadOk = GeoRatio >= 10.0;
  if (!OverheadOk)
    std::fprintf(stderr,
                 "FAIL: sampled overhead only %.1fx below instrumented at "
                 "period %llu (need >= 10x)\n",
                 GeoRatio, (unsigned long long)kPeriods[kDefaultIdx]);

  size_t FaultRows = 0;
  size_t WithinCount[3] = {0, 0, 0};
  for (const Row &R : Rows) {
    if (!R.HasFaults)
      continue;
    ++FaultRows;
    for (size_t L = 0; L < 3; ++L)
      if (R.Faults[L].Within)
        ++WithinCount[L];
  }
  size_t NeedWithin = FaultRows > 2 ? FaultRows - 2 : 0;
  bool FaultsOk = true;
  for (size_t L = 0; L < 3; ++L) {
    if (WithinCount[L] < NeedWithin) {
      FaultsOk = false;
      std::fprintf(stderr,
                   "FAIL: --code %s sampled-merged within %.0f%% on only "
                   "%zu of %zu AWFY benchmarks (need >= %zu)\n",
                   kLegs[L].Name, (kFaultSlack - 1.0) * 100.0,
                   WithinCount[L], FaultRows, NeedWithin);
    }
  }

  std::printf("\nsampled overhead at period %llu: %.0fx below instrumented "
              "(geomean; need >= 10x): %s\n",
              (unsigned long long)kPeriods[kDefaultIdx], GeoRatio,
              OverheadOk ? "ok" : "VIOLATED");
  for (size_t L = 0; L < 3; ++L)
    std::printf("--code %s: sampled-merged within 10%% on %zu of %zu\n",
                kLegs[L].Name, WithinCount[L], FaultRows);

  benchjson::writeBenchJson(
      "BENCH_sample.json", "abl_sample", [&](obs::JsonWriter &W) {
        W.member("smoke", Smoke);
        W.member("fleet_members", uint64_t(kFleet));
        W.member("default_period", kPeriods[kDefaultIdx]);
        W.key("workloads");
        W.beginArray();
        for (const Row &R : Rows) {
          W.beginObject();
          W.member("name", R.Name);
          W.member("kind", R.Micro ? "microservice" : "awfy");
          W.member("base_ns", R.BaseNs);
          W.member("instrumented_cu_overhead", R.InstrOverheadFrac);
          W.key("sampled");
          W.beginArray();
          for (size_t I = 0; I < kNumPeriods; ++I) {
            W.beginObject();
            W.member("period", R.Sweep[I].Period);
            W.member("overhead", R.Sweep[I].OverheadFrac);
            W.member("samples", R.Sweep[I].Samples);
            W.member("events_skipped", R.Sweep[I].Skipped);
            W.member("coverage_permille",
                     uint64_t(R.Sweep[I].CoveragePermille));
            W.endObject();
          }
          W.endArray();
          W.member("overhead_ratio_at_default", R.RatioAtDefault);
          if (R.HasFaults) {
            W.key("faults");
            W.beginObject();
            for (size_t L = 0; L < 3; ++L) {
              W.key(kLegs[L].Name);
              W.beginObject();
              W.member("instrumented", R.Faults[L].Instrumented);
              W.member("sampled_merged", R.Faults[L].Sampled);
              W.member("outcome", mergeOutcomeName(R.Faults[L].Outcome));
              W.member("quarantined", uint64_t(R.Faults[L].Quarantined));
              W.member("within", R.Faults[L].Within);
              W.endObject();
            }
            W.endObject();
          }
          W.endObject();
        }
        W.endArray();
        W.member("overhead_ratio_geomean", GeoRatio);
        W.member("overhead_contract_ok", OverheadOk);
        W.key("within_counts");
        W.beginObject();
        for (size_t L = 0; L < 3; ++L)
          W.member(kLegs[L].Name, uint64_t(WithinCount[L]));
        W.endObject();
        W.member("fault_rows", uint64_t(FaultRows));
        W.member("faults_contract_ok", FaultsOk);
      });
  return OverheadOk && FaultsOk ? 0 : 1;
}
