//===- fig2_awfy_pagefaults.cpp - Reproduces the paper's Figure 2 ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 2: page-fault reduction achieved by the proposed ordering
// strategies on the 14 AWFY benchmarks, cold page cache, per-section fault
// counting. Paper reference (geomean): cu 1.58x, method 1.52x,
// incremental id 1.30x, structural hash 1.40x, heap path 1.41x,
// cu+heap path 1.65x; max cu 1.66x (Mandelbrot, Towers), max heap path
// 1.48x (Storage). Also prints the Sec. 7.2 claim that only a small
// percentage of heap-snapshot objects is accessed (paper: ~4 % on AWFY).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace nimg;
using namespace nimg::benchutil;

int main(int Argc, char **Argv) {
  bool Smoke = smokeMode(Argc, Argv);
  EvalOptions Opts = defaultOptions();
  std::vector<std::string> Names = awfyBenchmarkNames();
  applySmoke(Smoke, Names, Opts);
  std::vector<BenchmarkEval> Evals =
      evaluateSuite(Names, /*Microservices=*/false, Opts);

  printHeader("Figure 2 — AWFY page-fault reduction",
              ".text faults for cu/method, .svm_heap faults for heap "
              "strategies, both for cu+heap path",
              Opts.Seeds);
  printFactorTable(Evals, faultFactorOf);

  // The same evaluation with hot/cold splitting enabled everywhere —
  // baseline and variants alike — so the factors isolate what ordering
  // adds on top of split images (the split-vs-unsplit axis itself is
  // abl_split's job).
  EvalOptions SplitOpts = Opts;
  SplitOpts.Build.Split = SplitMode::HotCold;
  std::vector<BenchmarkEval> SplitEvals =
      evaluateSuite(Names, /*Microservices=*/false, SplitOpts);
  std::printf("\nwith --split hotcold (all images split, same factor "
              "convention):\n\n");
  std::printf("%-12s", "benchmark");
  for (const std::string &S : strategyNames())
    std::printf(" %15s", S.c_str());
  std::printf("\n");
  printFactorTable(SplitEvals, faultFactorOf);

  // And with ext-TSP block reordering inside the hot fragments on top.
  // Reordering is fault-neutral by construction (the engine touches whole
  // fragments), so this series documents that invariant across the suite.
  EvalOptions ExtOpts = SplitOpts;
  ExtOpts.Build.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
  std::vector<BenchmarkEval> ExtEvals =
      evaluateSuite(Names, /*Microservices=*/false, ExtOpts);
  std::printf("\nwith --split hotcold --blocks exttsp (expected: identical "
              "to the split series):\n\n");
  std::printf("%-12s", "benchmark");
  for (const std::string &S : strategyNames())
    std::printf(" %15s", S.c_str());
  std::printf("\n");
  printFactorTable(ExtEvals, faultFactorOf);

  std::printf("\nSec. 7.2 — accessed heap-snapshot objects (paper: ~4%% "
              "average on AWFY):\n");
  std::vector<double> Pcts;
  for (const BenchmarkEval &E : Evals) {
    std::printf("  %-12s %5.1f%% of %zu stored objects\n",
                E.Benchmark.c_str(), E.PctStoredObjectsTouched,
                E.SnapshotObjects);
    Pcts.push_back(E.PctStoredObjectsTouched);
  }
  double Sum = 0;
  for (double P : Pcts)
    Sum += P;
  std::printf("  %-12s %5.1f%%\n", "average",
              Pcts.empty() ? 0.0 : Sum / double(Pcts.size()));

  bool Ok = benchjson::writeBenchJson(
      "BENCH_fig2.json", "fig2", [&](obs::JsonWriter &W) {
        W.member("seeds", uint64_t(Opts.Seeds));
        W.member("smoke", Smoke);
        W.key("benchmarks");
        W.beginArray();
        for (size_t I = 0; I < Evals.size(); ++I) {
          const BenchmarkEval &E = Evals[I];
          W.beginObject();
          W.member("name", E.Benchmark);
          W.key("fault_factors");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = E.variant(S);
            W.member(S, V ? faultFactorOf(*V) : 1.0);
          }
          W.endObject();
          W.key("fault_factors_split");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = SplitEvals[I].variant(S);
            W.member(S, V ? faultFactorOf(*V) : 1.0);
          }
          W.endObject();
          W.key("fault_factors_exttsp");
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            const VariantEval *V = ExtEvals[I].variant(S);
            W.member(S, V ? faultFactorOf(*V) : 1.0);
          }
          W.endObject();
          W.member("pct_stored_objects_touched", E.PctStoredObjectsTouched);
          W.member("snapshot_objects", uint64_t(E.SnapshotObjects));
          W.endObject();
        }
        W.endArray();
        auto Geomeans = [&](const char *Key,
                            const std::vector<BenchmarkEval> &Es) {
          W.key(Key);
          W.beginObject();
          for (const std::string &S : strategyNames()) {
            std::vector<double> Fs;
            for (const BenchmarkEval &E : Es) {
              const VariantEval *V = E.variant(S);
              Fs.push_back(V ? faultFactorOf(*V) : 1.0);
            }
            W.member(S, geomean(Fs));
          }
          W.endObject();
        };
        Geomeans("geomean_fault_factors", Evals);
        Geomeans("geomean_fault_factors_split", SplitEvals);
        Geomeans("geomean_fault_factors_exttsp", ExtEvals);
      });
  return Ok ? 0 : 1;
}
