//===- micro_hashing.cpp - google-benchmark: identity-strategy costs -------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Micro-benchmarks for the object-identity machinery of Sec. 5:
// MurmurHash3 throughput, structural-hash encoding at several MAX_DEPTH
// values (the paper's compute-time/robustness trade-off), heap-path
// hashing, and full identity-table computation over a real snapshot.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/ordering/IdStrategies.h"
#include "src/support/Murmur3.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstring>

using namespace nimg;

static void BM_Murmur3(benchmark::State &State) {
  std::string Data(size_t(State.range(0)), 'x');
  for (auto _ : State)
    benchmark::DoNotOptimize(murmurHash3(Data));
  State.SetBytesProcessed(int64_t(State.iterations()) * State.range(0));
}
BENCHMARK(BM_Murmur3)->Arg(16)->Arg(256)->Arg(4096);

namespace {

/// One shared image of the Bounce workload for snapshot-based benchmarks.
struct SnapshotFixture {
  std::unique_ptr<Program> P;
  NativeImage Img;

  SnapshotFixture() {
    std::vector<std::string> Errors;
    P = compileBenchmark(awfyBenchmark("Bounce"), Errors);
    assert(P && "Bounce failed to compile");
    BuildConfig Cfg;
    Cfg.Seed = 5;
    Img = buildNativeImage(*P, Cfg);
  }

  static SnapshotFixture &get() {
    static SnapshotFixture F;
    return F;
  }
};

} // namespace

static void BM_StructuralHash(benchmark::State &State) {
  SnapshotFixture &F = SnapshotFixture::get();
  int MaxDepth = int(State.range(0));
  const Heap &H = *F.Img.Built.BuildHeap;
  size_t N = F.Img.Snapshot.Entries.size();
  size_t I = 0;
  for (auto _ : State) {
    const SnapshotEntry &E = F.Img.Snapshot.Entries[I % N];
    benchmark::DoNotOptimize(structuralHashOf(*F.P, H, E.Cell, MaxDepth));
    ++I;
  }
}
BENCHMARK(BM_StructuralHash)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_HeapPathHash(benchmark::State &State) {
  SnapshotFixture &F = SnapshotFixture::get();
  const Heap &H = *F.Img.Built.BuildHeap;
  size_t N = F.Img.Snapshot.Entries.size();
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        heapPathHashOf(*F.P, H, F.Img.Snapshot, int32_t(I % N)));
    ++I;
  }
}
BENCHMARK(BM_HeapPathHash);

static void BM_IncrementalIdTable(benchmark::State &State) {
  SnapshotFixture &F = SnapshotFixture::get();
  const Heap &H = *F.Img.Built.BuildHeap;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeIdTable(*F.P, H, F.Img.Snapshot, /*MaxDepth=*/2));
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(F.Img.Snapshot.Entries.size()));
}
BENCHMARK(BM_IncrementalIdTable);

// Custom main: accept the bench-smoke label's --smoke by rewriting it
// into a tiny min-time (see micro_pipeline.cpp).
int main(int Argc, char **Argv) {
  static char MinTime[] = "--benchmark_min_time=0.01";
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Argv[I] = MinTime;
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
