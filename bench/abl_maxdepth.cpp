//===- abl_maxdepth.cpp - Ablation: structural-hash MAX_DEPTH --------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Sec. 7.1 sets MAX_DEPTH = 2, "experimentally determined as a good
// trade-off between computational time, hash collision probability, and
// identity-matching probability across compilations" (Sec. 5.2: deeper
// recursion lowers collisions but also lowers cross-build matchability,
// because divergent neighbours enter the hash). This ablation sweeps
// MAX_DEPTH and reports exactly those three axes.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>

using namespace nimg;

int main(int Argc, char **Argv) {
  // --smoke: sweep depths 0..2 only (bench-smoke ctest label).
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  BenchmarkSpec Spec = awfyBenchmark("Bounce");
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P)
    return 1;

  RunConfig Run;
  std::printf("Ablation — structural-hash MAX_DEPTH sweep (AWFY Bounce)\n");
  std::printf("%8s %12s %12s %14s %12s\n", "depth", "computeMs",
              "collisions", "crossBuild", "heapFaultF");

  for (int Depth = 0; Depth <= (Smoke ? 2 : 4); ++Depth) {
    BuildConfig InstrCfg;
    InstrCfg.Seed = 1001;
    InstrCfg.Instrumented = true;
    InstrCfg.StructuralMaxDepth = Depth;
    NativeImage InstrImg = buildNativeImage(*P, InstrCfg);
    BuildConfig ProfCfg = InstrCfg;
    ProfCfg.Instrumented = false; // collectProfiles sets it itself.
    CollectedProfiles Prof = collectProfiles(*P, ProfCfg, Run);

    BuildConfig Cfg;
    Cfg.Seed = 1;
    Cfg.StructuralMaxDepth = Depth;
    auto Start = std::chrono::steady_clock::now();
    NativeImage Img = buildNativeImage(*P, Cfg);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    // Collisions: stored entries sharing a structural hash.
    std::unordered_map<uint64_t, int> Seen;
    size_t Collisions = 0, Stored = 0;
    for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
      if (Img.Snapshot.Entries[I].Elided)
        continue;
      ++Stored;
      if (Seen[Img.Ids.StructuralHashes[I]]++ > 0)
        ++Collisions;
    }

    // Cross-build identity agreement: how many of the other build's ids
    // this build can consume (multiset intersection) — the
    // identity-matching probability axis of Sec. 7.1's trade-off.
    std::unordered_map<uint64_t, int> Other;
    for (size_t I = 0; I < InstrImg.Snapshot.Entries.size(); ++I)
      if (!InstrImg.Snapshot.Entries[I].Elided)
        ++Other[InstrImg.Ids.StructuralHashes[I]];
    size_t Agree = 0;
    for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
      if (Img.Snapshot.Entries[I].Elided)
        continue;
      auto It = Other.find(Img.Ids.StructuralHashes[I]);
      if (It != Other.end() && It->second > 0) {
        --It->second;
        ++Agree;
      }
    }
    double MatchRate = Stored == 0 ? 0.0 : double(Agree) / double(Stored);

    BuildConfig Ordered = Cfg;
    Ordered.UseHeapOrder = true;
    Ordered.HeapOrder = HeapStrategy::StructuralHash;
    Ordered.HeapProf = &Prof.StructuralHash;
    NativeImage OrderedImg = buildNativeImage(*P, Ordered);
    RunStats Base = runImage(Img, Run);
    RunStats Opt = runImage(OrderedImg, Run);
    double Factor = Opt.HeapFaults == 0
                        ? 1.0
                        : double(Base.HeapFaults) / double(Opt.HeapFaults);

    std::printf("%8d %12.2f %7zu/%-4zu %13.1f%% %12.2f\n", Depth, Ms,
                Collisions, Stored, 100.0 * MatchRate, Factor);
  }
  std::printf("\n(The paper settles on MAX_DEPTH = 2.)\n");
  return 0;
}
