//===- par_pipeline.cpp - Parallel build-stage scaling ---------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Thread scaling of the three parallelized build stages (DESIGN.md § 10):
// per-CU compilation, heap-identity assignment, and trace post-processing.
// Runs each stage bundle at --jobs 1/2/4/8 over one AWFY macro benchmark
// and one microservice workload, and reports two speedup curves:
//
//  - wall: measured wall clock. Only meaningful on a multi-core host; in a
//    single-CPU container all worker counts serialize onto one core.
//  - modeled: per-chunk thread-CPU times (via the pool's chunk timing
//    hook) list-scheduled onto J workers per parallelFor batch, plus the
//    measured serial remainder. This is the machine-independent curve and
//    the one the acceptance check reads.
//
// Determinism is asserted as a side effect: every jobs level must produce
// the same profiles and identity tables as jobs=1.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/compiler/Inliner.h"
#include "src/core/Builder.h"
#include "src/ordering/IdStrategies.h"
#include "src/profiling/Analyses.h"
#include "src/support/ThreadPool.h"
#include "src/workloads/Workloads.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

using namespace nimg;

namespace {

uint64_t monotonicNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

/// One workload's fixed inputs: everything the timed region consumes is
/// prepared once so the measurement covers only the parallelized stages.
struct Fixture {
  std::string Name;
  std::unique_ptr<Program> P;
  ReachabilityResult Reach;
  NativeImage InstrImg;
  TraceCapture Caps[3]; ///< Indexed by TraceMode.
  std::unique_ptr<PathGraphCache> Paths;

  explicit Fixture(const BenchmarkSpec &Spec) : Name(Spec.Name) {
    std::vector<std::string> Errors;
    P = compileBenchmark(Spec, Errors);
    if (!P) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      return;
    }
    ensureClassMetaClass(*P);
    Reach = analyzeReachability(*P);
    BuildConfig ICfg;
    ICfg.Seed = 1001;
    ICfg.Instrumented = true;
    InstrImg = buildNativeImage(*P, ICfg);
    if (InstrImg.Built.Failed) {
      std::fprintf(stderr, "error: instrumented build failed: %s\n",
                   InstrImg.Built.FailureMessage.c_str());
      P.reset();
      return;
    }
    for (TraceMode Mode : {TraceMode::CuOrder, TraceMode::MethodOrder,
                           TraceMode::HeapOrder}) {
      TraceOptions TOpts;
      TOpts.Mode = Mode;
      TOpts.Dump = DumpMode::MemoryMapped;
      RunConfig RC;
      RC.Trace = &TOpts;
      if (Spec.Microservice)
        RC.StopAtFirstResponse = true;
      runImage(InstrImg, RC, &Caps[size_t(Mode)]);
    }
    Paths = std::make_unique<PathGraphCache>(*P);
  }
};

/// Artifacts of one timed pass, compared across jobs levels.
struct StageOutputs {
  uint64_t InlineFingerprint = 0;
  size_t NumCus = 0;
  std::vector<uint64_t> StructIds;
  std::string CuCsv, MethodCsv;
  std::vector<int32_t> HeapOrder;
};

/// Runs the three parallel stage bundles once: CU formation, identity
/// assignment, trace post-processing (all three modes).
StageOutputs runStages(Fixture &F) {
  StageOutputs Out;
  InlinerConfig ICfg;
  CompiledProgram Code =
      buildCompilationUnits(*F.P, F.Reach, ICfg, /*Instrumented=*/false);
  Out.InlineFingerprint = Code.InlineFingerprint;
  Out.NumCus = Code.CUs.size();

  IdTable T = computeIdTable(*F.P, *F.InstrImg.Built.BuildHeap,
                             F.InstrImg.Snapshot);
  Out.StructIds = std::move(T.StructuralHashes);

  Out.CuCsv =
      analyzeCuOrder(*F.P, F.Caps[size_t(TraceMode::CuOrder)]).toCsv();
  Out.MethodCsv =
      analyzeMethodOrder(*F.P, F.Caps[size_t(TraceMode::MethodOrder)],
                         *F.Paths)
          .toCsv();
  Out.HeapOrder = analyzeHeapAccessOrder(
      *F.P, F.Caps[size_t(TraceMode::HeapOrder)], *F.Paths);
  return Out;
}

bool sameOutputs(const StageOutputs &A, const StageOutputs &B) {
  return A.InlineFingerprint == B.InlineFingerprint && A.NumCus == B.NumCus &&
         A.StructIds == B.StructIds && A.CuCsv == B.CuCsv &&
         A.MethodCsv == B.MethodCsv && A.HeapOrder == B.HeapOrder;
}

/// Chunk CPU times of one parallelFor invocation (one Batch sequence).
struct BatchTimes {
  std::string Stage;
  std::vector<uint64_t> ChunkNs; ///< Indexed by chunk.
};

/// List-schedules the chunks onto \p Jobs workers in chunk order (the
/// pool's pull order) and returns the makespan.
uint64_t makespan(const BatchTimes &B, int Jobs) {
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      Free; // Earliest-available worker finish times.
  for (int J = 0; J < Jobs; ++J)
    Free.push(0);
  uint64_t End = 0;
  for (uint64_t Ns : B.ChunkNs) {
    uint64_t Start = Free.top();
    Free.pop();
    uint64_t Finish = Start + Ns;
    Free.push(Finish);
    End = std::max(End, Finish);
  }
  return End;
}

/// CPU time vs. list-scheduled makespan of one group of batches.
struct StageScaling {
  uint64_t CpuNs = 0;      ///< Total chunk CPU (= modeled 1-worker time).
  uint64_t MakespanNs = 0; ///< Sum of per-batch makespans at J workers.

  double speedup() const {
    return MakespanNs ? double(CpuNs) / double(MakespanNs) : 1.0;
  }
};

/// The build-side stages, the ones whose fan-out width is the work-item
/// count. Trace post-processing fans out per trace *thread*, so its
/// scaling is capped by the traced workload's thread count (1 for the
/// single-threaded AWFY benchmarks) — it is reported separately.
bool isBuildStage(const std::string &Stage) {
  return Stage == "compile" || Stage == "id_table";
}

struct Measurement {
  uint64_t WallNs = 0;
  uint64_t ParallelCpuNs = 0; ///< Sum of all chunk CPU times.
  uint64_t SerialNs = 0;      ///< max(0, wall - parallel CPU).
  uint64_t ModeledWallNs = 0; ///< serial + sum of per-batch makespans.
  StageScaling Build, Trace;
  StageOutputs Outputs;
};

Measurement measure(Fixture &F, int Jobs) {
  setJobs(Jobs);
  std::mutex Mu;
  std::map<uint64_t, BatchTimes> Batches;
  setChunkTimingHook([&](const char *Stage, uint64_t Batch, size_t Chunk,
                         uint64_t CpuNs) {
    std::lock_guard<std::mutex> G(Mu);
    BatchTimes &B = Batches[Batch];
    B.Stage = Stage;
    if (B.ChunkNs.size() <= Chunk)
      B.ChunkNs.resize(Chunk + 1, 0);
    B.ChunkNs[Chunk] = CpuNs;
  });

  Measurement M;
  uint64_t Start = monotonicNs();
  M.Outputs = runStages(F);
  M.WallNs = monotonicNs() - Start;
  setChunkTimingHook(nullptr);

  uint64_t MakespanSum = 0;
  for (const auto &[Seq, B] : Batches) {
    (void)Seq;
    uint64_t Cpu = 0;
    for (uint64_t Ns : B.ChunkNs)
      Cpu += Ns;
    uint64_t Mk = makespan(B, Jobs);
    M.ParallelCpuNs += Cpu;
    MakespanSum += Mk;
    StageScaling &S = isBuildStage(B.Stage) ? M.Build : M.Trace;
    S.CpuNs += Cpu;
    S.MakespanNs += Mk;
  }
  M.SerialNs = M.WallNs > M.ParallelCpuNs ? M.WallNs - M.ParallelCpuNs : 0;
  M.ModeledWallNs = M.SerialNs + MakespanSum;
  return M;
}

struct CurvePoint {
  int Jobs;
  uint64_t WallNs;
  uint64_t ModeledWallNs;
  double SpeedupWall;
  double SpeedupModeled;
  double SpeedupBuildStages; ///< Modeled, compile + id_table only.
  double SpeedupTraceStages; ///< Modeled, trace post-processing only.
};

} // namespace

int main(int Argc, char **Argv) {
  // --smoke (bench-smoke ctest label): one workload, jobs 1/2, one rep —
  // exercises the harness and the JSON artifact; the >= 2x speedup gate
  // needs the jobs=4 point and is skipped.
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  std::vector<int> JobLevels = {1, 2, 4, 8};
  std::vector<BenchmarkSpec> Specs = {awfyBenchmark("Richards"),
                                      microserviceBenchmark("micronaut")};
  if (Smoke) {
    JobLevels = {1, 2};
    Specs.resize(1);
  }
  const int Reps = Smoke ? 1 : 3;

  struct WorkloadResult {
    std::string Name;
    std::vector<CurvePoint> Curve;
    bool Deterministic = true;
  };
  std::vector<WorkloadResult> Results;

  for (const BenchmarkSpec &Spec : Specs) {
    Fixture F(Spec);
    if (!F.P)
      return 1;
    // Warm the shared path-graph cache so every jobs level sees the same
    // (cached) path graphs and timings compare stage work, not cache fill.
    setJobs(1);
    StageOutputs Reference = runStages(F);

    WorkloadResult R;
    R.Name = F.Name;
    uint64_t BaselineModeled = 0, BaselineWall = 0;
    for (int Jobs : JobLevels) {
      // Of the repetitions keep the run with the smallest wall time —
      // the least-perturbed sample of the same deterministic work.
      Measurement Best;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        Measurement M = measure(F, Jobs);
        if (Rep == 0 || M.WallNs < Best.WallNs)
          Best = std::move(M);
      }
      R.Deterministic &= sameOutputs(Reference, Best.Outputs);
      if (Jobs == 1) {
        BaselineWall = Best.WallNs;
        BaselineModeled = Best.ModeledWallNs;
      }
      CurvePoint Pt;
      Pt.Jobs = Jobs;
      Pt.WallNs = Best.WallNs;
      Pt.ModeledWallNs = Best.ModeledWallNs;
      Pt.SpeedupWall =
          Best.WallNs ? double(BaselineWall) / double(Best.WallNs) : 1.0;
      Pt.SpeedupModeled = Best.ModeledWallNs
                              ? double(BaselineModeled) /
                                    double(Best.ModeledWallNs)
                              : 1.0;
      Pt.SpeedupBuildStages = Best.Build.speedup();
      Pt.SpeedupTraceStages = Best.Trace.speedup();
      R.Curve.push_back(Pt);
    }
    Results.push_back(std::move(R));
  }
  setJobs(0);

  std::printf("Parallel build-stage scaling — cu compile + id table + trace "
              "post-processing\n");
  std::printf("host cpus: %d (wall speedup is flat on a single-core host; "
              "modeled is the scaling curve)\n\n",
              hardwareJobs());
  for (const WorkloadResult &R : Results) {
    std::printf("%s  (deterministic across jobs: %s)\n", R.Name.c_str(),
                R.Deterministic ? "yes" : "NO");
    std::printf("  %5s %12s %12s %9s %9s %9s %9s\n", "jobs", "wall ms",
                "modeled ms", "wall x", "model x", "build x", "trace x");
    for (const CurvePoint &Pt : R.Curve)
      std::printf("  %5d %12.2f %12.2f %8.2fx %8.2fx %8.2fx %8.2fx\n",
                  Pt.Jobs, double(Pt.WallNs) / 1e6,
                  double(Pt.ModeledWallNs) / 1e6, Pt.SpeedupWall,
                  Pt.SpeedupModeled, Pt.SpeedupBuildStages,
                  Pt.SpeedupTraceStages);
    std::printf("\n");
  }

  // The acceptance gate: the parallelized build stages must hit >= 2x
  // modeled speedup at 4 workers on every workload. Trace post-processing
  // scales with the traced workload's thread count and is reported, not
  // gated (the AWFY benchmarks are single-threaded).
  bool AllDeterministic = true;
  double MinJobs4Build = 1e30;
  for (const WorkloadResult &R : Results) {
    AllDeterministic &= R.Deterministic;
    for (const CurvePoint &Pt : R.Curve)
      if (Pt.Jobs == 4)
        MinJobs4Build = std::min(MinJobs4Build, Pt.SpeedupBuildStages);
  }
  if (Smoke)
    std::printf("smoke mode: speedup gate skipped (no jobs=4 point)\n");
  else
    std::printf("min modeled build-stage speedup at 4 jobs: %.2fx "
                "(target >= 2x)\n",
                MinJobs4Build);

  bool JsonOk = benchjson::writeBenchJson(
      "BENCH_parallel.json", "parallel", [&](obs::JsonWriter &W) {
        W.member("cpus", uint64_t(hardwareJobs()));
        W.member("smoke", Smoke);
        W.member("deterministic", AllDeterministic);
        W.member("min_jobs4_speedup_modeled_build_stages", MinJobs4Build);
        W.key("workloads");
        W.beginArray();
        for (const WorkloadResult &R : Results) {
          W.beginObject();
          W.member("name", R.Name);
          W.member("deterministic", R.Deterministic);
          W.key("curve");
          W.beginArray();
          for (const CurvePoint &Pt : R.Curve) {
            W.beginObject();
            W.member("jobs", uint64_t(Pt.Jobs));
            W.member("wall_ns", Pt.WallNs);
            W.member("modeled_wall_ns", Pt.ModeledWallNs);
            W.member("speedup_wall", Pt.SpeedupWall);
            W.member("speedup_modeled", Pt.SpeedupModeled);
            W.member("speedup_modeled_build_stages", Pt.SpeedupBuildStages);
            W.member("speedup_modeled_trace_stages", Pt.SpeedupTraceStages);
            W.endObject();
          }
          W.endArray();
          W.endObject();
        }
        W.endArray();
      });
  if (Smoke)
    return AllDeterministic && JsonOk ? 0 : 1;
  return AllDeterministic && MinJobs4Build >= 2.0 && JsonOk ? 0 : 1;
}
