//===- abl_readahead.cpp - Ablation: readahead-window sensitivity ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// The paper measures on an SSD with 4 KiB pages (and reports similar
// results on NFS, Sec. 7.1). Device and kernel readahead determine how
// much locality is worth: this ablation sweeps the simulator's readahead
// cluster and reports the cu and cu+heap-path factors — at window 1 only
// sub-page packing helps; large windows amortize scattered layouts too.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

int main(int Argc, char **Argv) {
  // --smoke: two readahead windows only (bench-smoke ctest label).
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  BenchmarkSpec Spec = awfyBenchmark("Havlak");
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P)
    return 1;

  RunConfig Run;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);

  BuildConfig Base;
  Base.Seed = 1;
  NativeImage Baseline = buildNativeImage(*P, Base);

  BuildConfig Comb = Base;
  Comb.CodeOrder = CodeStrategy::CuOrder;
  Comb.CodeProf = &Prof.Cu;
  Comb.UseHeapOrder = true;
  Comb.HeapOrder = HeapStrategy::HeapPath;
  Comb.HeapProf = &Prof.HeapPath;
  NativeImage Combined = buildNativeImage(*P, Comb);

  std::printf("Ablation — readahead window sweep (AWFY Havlak, "
              "cu+heap path)\n");
  std::printf("%10s %14s %14s %14s %10s\n", "pages", "baseFaults",
              "optFaults", "totalFactor", "speedup");
  std::vector<uint32_t> Windows = {1u, 2u, 4u, 8u, 16u, 32u};
  if (Smoke)
    Windows = {1u, 4u};
  for (uint32_t Window : Windows) {
    RunConfig RC = Run;
    RC.Paging.ReadaheadPages = Window;
    RunStats B = runImage(Baseline, RC);
    RunStats O = runImage(Combined, RC);
    double Factor = O.totalFaults() == 0
                        ? 1.0
                        : double(B.totalFaults()) / double(O.totalFaults());
    double Speedup = O.TimeNs == 0 ? 1.0 : B.TimeNs / O.TimeNs;
    std::printf("%10u %14llu %14llu %14.2f %10.2f\n", Window,
                (unsigned long long)B.totalFaults(),
                (unsigned long long)O.totalFaults(), Factor, Speedup);
  }
  return 0;
}
