//===- micro_pipeline.cpp - google-benchmark: pipeline-stage costs ---------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Micro-benchmarks for the build-pipeline stages (what "approximate time
// to reproduce" is made of): frontend compilation, reachability analysis,
// CU formation, snapshotting, path-graph numbering, trace replay, and the
// paging simulator.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"
#include "src/profiling/Analyses.h"
#include "src/runtime/Paging.h"
#include "src/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstring>

using namespace nimg;

static void BM_FrontendCompile(benchmark::State &State) {
  BenchmarkSpec Spec = awfyBenchmark("Richards");
  for (auto _ : State) {
    std::vector<std::string> Errors;
    std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_FrontendCompile);

namespace {

struct ProgFixture {
  std::unique_ptr<Program> P;
  ReachabilityResult Reach;

  ProgFixture() {
    std::vector<std::string> Errors;
    P = compileBenchmark(awfyBenchmark("Richards"), Errors);
    assert(P && "Richards failed to compile");
    ensureClassMetaClass(*P);
    Reach = analyzeReachability(*P);
  }
  static ProgFixture &get() {
    static ProgFixture F;
    return F;
  }
};

} // namespace

static void BM_Reachability(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeReachability(*F.P));
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(F.P->numMethods()));
}
BENCHMARK(BM_Reachability);

static void BM_InlinerCuFormation(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  InlinerConfig Cfg;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        buildCompilationUnits(*F.P, F.Reach, Cfg, State.range(0) != 0));
}
BENCHMARK(BM_InlinerCuFormation)->Arg(0)->Arg(1);

static void BM_FullImageBuild(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  BuildConfig Cfg;
  Cfg.Seed = 9;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildNativeImage(*F.P, Cfg));
}
BENCHMARK(BM_FullImageBuild);

static void BM_PathGraphBuild(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  std::vector<MethodId> Methods = F.Reach.compiledMethods(*F.P);
  for (auto _ : State) {
    size_t Paths = 0;
    for (MethodId M : Methods)
      Paths += PathGraph::build(*F.P, M)->numPaths();
    benchmark::DoNotOptimize(Paths);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Methods.size()));
}
BENCHMARK(BM_PathGraphBuild);

static void BM_TraceCollectAndReplay(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  BuildConfig Cfg;
  Cfg.Seed = 3;
  Cfg.Instrumented = true;
  NativeImage Img = buildNativeImage(*F.P, Cfg);
  TraceOptions TOpts;
  TOpts.Mode = TraceMode::HeapOrder;
  RunConfig RC;
  RC.Trace = &TOpts;
  TraceCapture Capture;
  runImage(Img, RC, &Capture);
  PathGraphCache Paths(*F.P);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeHeapAccessOrder(*F.P, Capture, Paths));
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Capture.totalWords()));
}
BENCHMARK(BM_TraceCollectAndReplay);

static void BM_PagingTouch(benchmark::State &State) {
  PagingSim Paging(16 << 20, 16 << 20, PagingConfig());
  uint64_t Off = 0;
  for (auto _ : State) {
    Paging.touch(ImageSection::Text, Off % (16 << 20), 64);
    Off += 4096;
    if (Off >= (16u << 20)) {
      Off = 0;
      Paging.dropCaches();
    }
  }
  State.SetItemsProcessed(int64_t(State.iterations()));
}
BENCHMARK(BM_PagingTouch);

static void BM_PagingDropCaches(benchmark::State &State) {
  // Guard for the intrusive resident-list LRU: dropCaches() must walk
  // only the resident pages, so a sparse working set in a large section
  // costs O(residents), not O(section pages). Arg = touched pages; the
  // per-item rate should be flat between the sparse and dense shapes
  // (the old implementation scanned all 64 Ki page slots every drop).
  const uint64_t TextSize = 256ull << 20;
  PagingSim Paging(TextSize, 4096, PagingConfig());
  const int64_t Residents = State.range(0);
  const uint64_t Stride = TextSize / uint64_t(Residents);
  for (auto _ : State) {
    for (int64_t I = 0; I < Residents; ++I)
      Paging.touch(ImageSection::Text, uint64_t(I) * Stride, 1);
    Paging.dropCaches();
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Residents);
}
BENCHMARK(BM_PagingDropCaches)->Arg(16)->Arg(4096);

static void BM_InterpreterThroughput(benchmark::State &State) {
  ProgFixture &F = ProgFixture::get();
  for (auto _ : State) {
    Heap H(*F.P);
    InterpConfig Cfg;
    Cfg.RunClinits = true;
    Interpreter I(*F.P, H, Cfg);
    Value R = I.runToCompletion(F.P->MainMethod, {});
    benchmark::DoNotOptimize(R);
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(I.instructionsExecuted()));
  }
}
BENCHMARK(BM_InterpreterThroughput);

// Custom main instead of BENCHMARK_MAIN(): the bench-smoke ctest label
// invokes every driver with --smoke, which google-benchmark's parser
// would reject — rewrite it into a tiny min-time so one fast iteration
// of every benchmark still runs.
int main(int Argc, char **Argv) {
  static char MinTime[] = "--benchmark_min_time=0.01";
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Argv[I] = MinTime;
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
