//===- fig6_text_visualization.cpp - Reproduces the paper's Figure 6 -------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 6: visual representation of the .text section of the AWFY Bounce
// workload and the page faults it causes. Each cell is one 4 KiB page:
//   '#' green  — page caused a major fault,
//   '+' red    — page mapped in by readahead without a fault,
//   '.' black  — page never mapped.
// The regular binary's faults are scattered across the whole section; the
// cu-ordered binary compacts the executed code at the front, leaving the
// unprofiled native tail at the end (the paper's future-work note).
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace nimg;

static void printPages(const std::vector<PageState> &Pages) {
  const int Columns = 64;
  int Col = 0;
  size_t Faults = 0, Prefetched = 0;
  for (PageState S : Pages) {
    char C = '.';
    if (S == PageState::Faulted) {
      C = '#';
      ++Faults;
    } else if (S == PageState::Prefetched) {
      C = '+';
      ++Prefetched;
    }
    std::putchar(C);
    if (++Col == Columns) {
      std::putchar('\n');
      Col = 0;
    }
  }
  if (Col)
    std::putchar('\n');
  std::printf("faults=%zu, readahead-mapped=%zu\n", Faults, Prefetched);
}

static void printPageMap(const char *Title, const RunStats &Stats) {
  std::printf("%s\n", Title);
  std::printf(".text (%zu pages; # fault, + readahead, . unmapped):\n",
              Stats.TextPages.size());
  printPages(Stats.TextPages);
  // The paper's appendix plans "a similar visualization for the
  // heap-snapshot section" as future work; here it is.
  std::printf(".svm_heap (%zu pages):\n", Stats.HeapPages.size());
  printPages(Stats.HeapPages);
  std::printf("\n");
}

int main() {
  BenchmarkSpec Spec = awfyBenchmark("Bounce");
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }

  RunConfig Run;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 1042;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);

  std::printf("Figure 6 — .text page-fault visualization, AWFY Bounce\n\n");

  BuildConfig Base;
  Base.Seed = 7;
  NativeImage Regular = buildNativeImage(*P, Base);
  RunStats RegularStats = runImage(Regular, Run);
  printPageMap("(a) regular binary", RegularStats);

  BuildConfig CuCfg = Base;
  CuCfg.CodeOrder = CodeStrategy::CuOrder;
  CuCfg.CodeProf = &Prof.Cu;
  CuCfg.UseHeapOrder = true;
  CuCfg.HeapOrder = HeapStrategy::HeapPath;
  CuCfg.HeapProf = &Prof.HeapPath;
  NativeImage Optimized = buildNativeImage(*P, CuCfg);
  RunStats OptimizedStats = runImage(Optimized, Run);
  printPageMap("(b) binary optimized with the cu + heap-path strategies",
               OptimizedStats);
  return 0;
}
