//===- fig6_text_visualization.cpp - Reproduces the paper's Figure 6 -------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Figure 6: visual representation of the .text section of the AWFY Bounce
// workload and the page faults it causes. Each cell is one 4 KiB page:
//   '#' green  — page caused a major fault,
//   '+' red    — page mapped in by readahead without a fault,
//   '.' black  — page never mapped.
// The regular binary's faults are scattered across the whole section; the
// cu-ordered binary compacts the executed code at the front, leaving the
// unprofiled native tail at the end (the paper's future-work note). Panel
// (c) adds hot/cold splitting on top: the cold tail (marked '|' at its
// first page) collects the never-executed block bytes and stays unmapped
// on the first run.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace nimg;

namespace {

struct MapSummary {
  size_t Faults = 0;
  size_t Prefetched = 0;
  uint64_t ColdFaults = 0;
};

/// Prints the page map; \p BoundaryPage (if >= 0) draws a '|' before that
/// page to mark where the cold tail begins.
MapSummary printPages(const std::vector<PageState> &Pages,
                      int64_t BoundaryPage = -1) {
  const int Columns = 64;
  int Col = 0;
  MapSummary Sum;
  for (size_t I = 0; I < Pages.size(); ++I) {
    if (int64_t(I) == BoundaryPage)
      std::putchar('|');
    PageState S = Pages[I];
    char C = '.';
    if (S == PageState::Faulted) {
      C = '#';
      ++Sum.Faults;
    } else if (S == PageState::Prefetched) {
      C = '+';
      ++Sum.Prefetched;
    }
    std::putchar(C);
    if (++Col == Columns) {
      std::putchar('\n');
      Col = 0;
    }
  }
  if (Col)
    std::putchar('\n');
  std::printf("faults=%zu, readahead-mapped=%zu\n", Sum.Faults,
              Sum.Prefetched);
  return Sum;
}

MapSummary printPageMap(const char *Title, const RunStats &Stats,
                        const NativeImage *Split = nullptr,
                        uint64_t HugeLane = 0) {
  std::printf("%s\n", Title);
  int64_t Boundary = -1;
  if (Split && Split->Layout.ColdTailSize > 0)
    Boundary = int64_t(Split->Layout.ColdTailOffset /
                       Split->Layout.PageSize);
  std::printf(".text (%zu pages; # fault, + readahead, . unmapped%s):\n",
              Stats.TextPages.size(),
              Boundary >= 0 ? ", | cold-tail start" : "");
  if (HugeLane > 0) {
    // Page-size lane: the map above is indexed in native pages, so one 'H'
    // cell is a whole 2 MiB page (512 small cells' worth of bytes).
    std::printf("page sizes (H = 2 MiB, . = 4 KiB):\n");
    const int Columns = 64;
    int Col = 0;
    for (size_t I = 0; I < Stats.TextPages.size(); ++I) {
      std::putchar(I < HugeLane ? 'H' : '.');
      if (++Col == Columns) {
        std::putchar('\n');
        Col = 0;
      }
    }
    if (Col)
      std::putchar('\n');
  }
  MapSummary Sum = printPages(Stats.TextPages, Boundary);
  if (Split) {
    Sum.ColdFaults = Stats.TextColdFaults;
    std::printf("cold tail: %llu bytes at offset %llu (pages %lld+), "
                "first-run faults inside it: %llu\n",
                (unsigned long long)Split->Layout.ColdTailSize,
                (unsigned long long)Split->Layout.ColdTailOffset,
                (long long)Boundary, (unsigned long long)Sum.ColdFaults);
  }
  // The paper's appendix plans "a similar visualization for the
  // heap-snapshot section" as future work; here it is.
  std::printf(".svm_heap (%zu pages):\n", Stats.HeapPages.size());
  printPages(Stats.HeapPages);
  std::printf("\n");
  return Sum;
}

} // namespace

int main(int Argc, char **Argv) {
  // --smoke is accepted for the bench-smoke ctest label; a single
  // workload's three builds are already smoke-sized, so it only tags the
  // JSON artifact.
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  BenchmarkSpec Spec = awfyBenchmark("Bounce");
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }

  RunConfig Run;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 1042;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);

  std::printf("Figure 6 — .text page-fault visualization, AWFY Bounce\n\n");

  BuildConfig Base;
  Base.Seed = 7;
  NativeImage Regular = buildNativeImage(*P, Base);
  RunStats RegularStats = runImage(Regular, Run);
  MapSummary RegularSum = printPageMap("(a) regular binary", RegularStats);

  BuildConfig CuCfg = Base;
  CuCfg.CodeOrder = CodeStrategy::CuOrder;
  CuCfg.CodeProf = &Prof.Cu;
  CuCfg.UseHeapOrder = true;
  CuCfg.HeapOrder = HeapStrategy::HeapPath;
  CuCfg.HeapProf = &Prof.HeapPath;
  NativeImage Optimized = buildNativeImage(*P, CuCfg);
  RunStats OptimizedStats = runImage(Optimized, Run);
  MapSummary OptimizedSum = printPageMap(
      "(b) binary optimized with the cu + heap-path strategies",
      OptimizedStats);

  BuildConfig SplitCfg = CuCfg;
  SplitCfg.Split = SplitMode::HotCold;
  SplitCfg.BlockProf = &Prof.Blocks;
  NativeImage SplitImg = buildNativeImage(*P, SplitCfg);
  RunStats SplitStats = runImage(SplitImg, Run);
  MapSummary SplitSum = printPageMap(
      "(c) same, plus --split hotcold (cold tail after '|')", SplitStats,
      &SplitImg);

  // Panel (d): the cu-ordered image with a 2 MiB huge page over the hot
  // prefix. The first map cell is the whole huge page: every hot fault it
  // absorbs collapses into one bigger (284.4 us vs 80 us) device read.
  BuildConfig HugeCfg = CuCfg;
  HugeCfg.Image.HugePages = 1;
  NativeImage HugeImg = buildNativeImage(*P, HugeCfg);
  RunStats HugeStats = runImage(HugeImg, Run);
  MapSummary HugeSum =
      printPageMap("(d) same as (b), plus --huge-pages 1 ('H' lane below)",
                   HugeStats, nullptr, HugeImg.Layout.HugePages);

  bool Ok = benchjson::writeBenchJson(
      "BENCH_fig6.json", "fig6", [&](obs::JsonWriter &W) {
        W.member("benchmark", std::string(Spec.Name));
        W.member("smoke", Smoke);
        auto Panel = [&](const char *Key, const MapSummary &S,
                         const RunStats &Stats) {
          W.key(Key);
          W.beginObject();
          W.member("text_pages", uint64_t(Stats.TextPages.size()));
          W.member("text_faults", uint64_t(S.Faults));
          W.member("text_readahead_pages", uint64_t(S.Prefetched));
          W.endObject();
        };
        Panel("regular", RegularSum, RegularStats);
        Panel("cu_heap_path", OptimizedSum, OptimizedStats);
        Panel("cu_heap_path_split", SplitSum, SplitStats);
        Panel("cu_heap_path_huge", HugeSum, HugeStats);
        W.member("huge_pages", uint64_t(HugeImg.Layout.HugePages));
        W.member("huge_region_size", HugeImg.Layout.HugeRegionSize);
        W.member("huge_text_faults", HugeStats.TextHugeFaults);
        W.member("cold_tail_offset", SplitImg.Layout.ColdTailOffset);
        W.member("cold_tail_size", SplitImg.Layout.ColdTailSize);
        W.member("cold_tail_first_run_faults", SplitStats.TextColdFaults);
        W.member("cus_split", uint64_t(SplitImg.Split.SplitCus));
      });
  return Ok ? 0 : 1;
}
