//===- microservice_startup.cpp - Time-to-first-response scenario ----------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Reproduces the microservice measurement protocol of Sec. 7.1 on one
// framework: start the service from a cold page cache, ping until the
// first response, record the elapsed time, then SIGKILL the workload —
// including the detail that profiling such workloads needs the
// memory-mapped trace-dump mode (Sec. 6.1) because the kill skips
// thread-termination handlers.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace nimg;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "micronaut";
  std::printf("microservice startup: %s hello-world\n\n", Name.c_str());

  BenchmarkSpec Spec = microserviceBenchmark(Name);
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  RunConfig Run;
  Run.StopAtFirstResponse = true; // measure until the first response

  BuildConfig InstrCfg;
  InstrCfg.Seed = 3001;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);
  std::printf("profiling (memory-mapped trace mode): %zu CUs, %zu heap "
              "objects observed before the kill\n",
              Prof.Cu.Sigs.size(), Prof.HeapPath.Ids.size());

  BuildConfig Base;
  Base.Seed = 4;
  NativeImage Baseline = buildNativeImage(*P, Base);

  auto Measure = [&](const NativeImage &Img, const char *Label) {
    RunStats S = runImage(Img, Run);
    std::printf("%-22s text=%4llu heap=%4llu faults, first response after "
                "%7.2f ms\n",
                Label, (unsigned long long)S.TextFaults,
                (unsigned long long)S.HeapFaults,
                S.TimeToFirstResponseNs / 1e6);
    return S;
  };

  std::printf("\n");
  RunStats B = Measure(Baseline, "baseline");

  struct Variant {
    const char *Label;
    CodeStrategy Code;
    bool UseHeap;
    HeapStrategy Heap;
  };
  const Variant Variants[] = {
      {"cu", CodeStrategy::CuOrder, false, HeapStrategy::HeapPath},
      {"heap path", CodeStrategy::None, true, HeapStrategy::HeapPath},
      {"cu + heap path", CodeStrategy::CuOrder, true, HeapStrategy::HeapPath},
  };
  for (const Variant &V : Variants) {
    BuildConfig Cfg = Base;
    Cfg.CodeOrder = V.Code;
    if (V.Code != CodeStrategy::None)
      Cfg.CodeProf = &Prof.Cu;
    Cfg.UseHeapOrder = V.UseHeap;
    if (V.UseHeap) {
      Cfg.HeapOrder = V.Heap;
      Cfg.HeapProf = &Prof.HeapPath;
    }
    NativeImage Img = buildNativeImage(*P, Cfg);
    RunStats S = Measure(Img, V.Label);
    std::printf("%22s => %.2fx faster to first response\n", "",
                B.TimeToFirstResponseNs / S.TimeToFirstResponseNs);
  }
  return 0;
}
