//===- faas_cold_start.cpp - FaaS cold-start scenario -----------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// The paper's motivating scenario (Sec. 1): a FaaS platform evicts idle
// functions and cold-starts them on the next request, with the program's
// code fetched through a cold page cache while the request waits. This
// example takes an AWFY function (the FaaS-style workload of Sec. 7.1),
// applies the full profile-guided pipeline, and shows what the fault
// reduction means for an SLA: how many cold starts per hour a platform
// could afford at a fixed latency budget.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace nimg;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "Towers";
  std::printf("FaaS cold-start scenario: AWFY '%s' as the function body\n\n",
              Name.c_str());

  BenchmarkSpec Spec = awfyBenchmark(Name);
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  RunConfig Run;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 2001;
  CollectedProfiles Prof = collectProfiles(*P, InstrCfg, Run);

  BuildConfig Base;
  Base.Seed = 3;
  NativeImage Baseline = buildNativeImage(*P, Base);

  BuildConfig Opt = Base;
  Opt.CodeOrder = CodeStrategy::CuOrder;
  Opt.CodeProf = &Prof.Cu;
  Opt.UseHeapOrder = true;
  Opt.HeapOrder = HeapStrategy::HeapPath;
  Opt.HeapProf = &Prof.HeapPath;
  NativeImage Optimized = buildNativeImage(*P, Opt);

  // Simulate repeated cold invocations (caches dropped between requests,
  // as the platform evicted the function in between).
  const int Invocations = 5;
  double BaseTotal = 0, OptTotal = 0;
  for (int I = 0; I < Invocations; ++I) {
    RunStats B = runImage(Baseline, Run);
    RunStats O = runImage(Optimized, Run);
    BaseTotal += B.TimeNs;
    OptTotal += O.TimeNs;
    if (I == 0) {
      std::printf("function output: %s",
                  O.Output.substr(0, O.Output.find('\n') + 1).c_str());
      std::printf("per-invocation faults: baseline %llu, optimized %llu\n\n",
                  (unsigned long long)B.totalFaults(),
                  (unsigned long long)O.totalFaults());
    }
  }
  double BaseMs = BaseTotal / Invocations / 1e6;
  double OptMs = OptTotal / Invocations / 1e6;
  std::printf("mean cold start: baseline %.2f ms, optimized %.2f ms "
              "(speedup %.2fx)\n",
              BaseMs, OptMs, BaseMs / OptMs);

  // SLA framing (Sec. 1: faster startup lets the platform evict idle
  // functions more aggressively without breaking the latency percentile).
  double BudgetMs = BaseMs * 1.05; // a budget the baseline barely meets
  std::printf("\nwith a %.2f ms p99 cold-start budget:\n", BudgetMs);
  std::printf("  baseline headroom:  %6.2f ms\n", BudgetMs - BaseMs);
  std::printf("  optimized headroom: %6.2f ms — the platform can evict "
              "sooner and still meet the SLA\n",
              BudgetMs - OptMs);
  return 0;
}
